package dbsvec

import (
	"io"

	"dbsvec/internal/cluster"
	"dbsvec/internal/plot"
)

// PlotOptions controls WriteSVG rendering.
type PlotOptions struct {
	// Width and Height set the canvas in pixels (default 800×600).
	Width, Height int
	// PointRadius sets the marker size (default 1.5).
	PointRadius float64
	// Title is drawn at the top when non-empty.
	Title string
	// XDim and YDim pick the projected dimensions (default 0 and 1).
	XDim, YDim int
}

// WriteDecisionSVG renders the dataset scatter over a shaded background
// marking where inField reports true — e.g. the interior of a one-class
// SVDD boundary (the paper's Figure 3 visualization). For data with more
// than two dimensions, the non-plotted coordinates of the probe points are
// fixed at the dataset mean.
func WriteDecisionSVG(w io.Writer, d *Dataset, res *Result, inField func(p []float64) bool, opts PlotOptions) error {
	po := plot.Options{
		Width:       opts.Width,
		Height:      opts.Height,
		PointRadius: opts.PointRadius,
		Title:       opts.Title,
		XDim:        opts.XDim,
		YDim:        opts.YDim,
	}
	var inner *cluster.Result
	if res != nil {
		inner = res.inner
	}
	return plot.DecisionSVG(w, d.ds, inner, inField, 0, po)
}

// WriteSVG renders a 2-D scatter plot of the dataset on w, colored by the
// clustering result (nil renders all points gray). Higher-dimensional data
// is projected onto the XDim/YDim axes. This is how the repository
// regenerates the paper's Figure 1.
func WriteSVG(w io.Writer, d *Dataset, res *Result, opts PlotOptions) error {
	po := plot.Options{
		Width:       opts.Width,
		Height:      opts.Height,
		PointRadius: opts.PointRadius,
		Title:       opts.Title,
		XDim:        opts.XDim,
		YDim:        opts.YDim,
	}
	if res == nil {
		return plot.SVG(w, d.ds, nil, po)
	}
	return plot.SVG(w, d.ds, res.inner, po)
}
