// Package dbsvec is a density-based clustering library built around DBSVEC
// (Wang, Zhang, Qi, Yuan — ICDE 2019): an approximate DBSCAN that performs
// range queries only on the core support vectors of expanding sub-clusters,
// discovered with Support Vector Domain Description, instead of on every
// point. On clustered data it produces (near-)identical results to DBSCAN
// at a fraction of the cost.
//
// The package also ships exact DBSCAN and the paper's comparison baselines
// (ρ-approximate DBSCAN, DBSCAN-LSH, NQ-DBSCAN, k-means), spatial indexes
// (kd-tree, R*-tree, grid), and the evaluation metrics used in the paper
// (pair recall, silhouette compactness, Davies–Bouldin separation).
//
// Quickstart:
//
//	ds, err := dbsvec.NewDataset(points) // [][]float64
//	res, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: 3, MinPts: 10})
//	for i, label := range res.Labels { ... } // -1 = noise
package dbsvec

import (
	"io"

	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

// Dataset is an immutable collection of n points in d dimensions.
type Dataset struct {
	ds *vec.Dataset
}

// Precision selects a Dataset's point-storage layout; see ToPrecision.
type Precision = vec.Precision

// Storage precisions.
const (
	// PrecisionF64 stores coordinates as float64 (the default).
	PrecisionF64 = vec.F64
	// PrecisionF32 stores a float32 mirror alongside a float64 master that is
	// the mirror's exact widening. Coordinates are quantized to float32 once
	// at conversion; every distance afterwards is computed in float64, so
	// clustering a converted dataset is deterministic — and halving the bytes
	// roughly doubles memory-bound scan throughput on large datasets.
	PrecisionF32 = vec.F32
)

// ParsePrecision parses the CLI spelling of a precision: "f64"/"float64"/""
// and "f32"/"float32".
func ParsePrecision(s string) (Precision, error) { return vec.ParsePrecision(s) }

// Precision returns the dataset's storage precision.
func (d *Dataset) Precision() Precision { return d.ds.Precision() }

// ToPrecision returns a dataset with the requested storage precision. A
// matching precision returns the receiver; conversions never mutate it.
// Converting to PrecisionF32 is the single rounding step of float32 mode and
// fails when a coordinate overflows the float32 range; converting back to
// PrecisionF64 keeps the quantized values (the original float64 input is not
// recovered).
func (d *Dataset) ToPrecision(p Precision) (*Dataset, error) {
	ds, err := d.ds.ToPrecision(p)
	if err != nil {
		return nil, err
	}
	if ds == d.ds {
		return d, nil
	}
	return &Dataset{ds: ds}, nil
}

// NewDataset copies a row-per-point matrix into a Dataset. All rows must
// share one length and contain only finite values.
func NewDataset(rows [][]float64) (*Dataset, error) {
	ds, err := vec.FromRows(rows)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// FromFlat wraps a flat coordinate slice of length n*d without copying.
// The caller must not mutate coords afterwards.
func FromFlat(coords []float64, dim int) (*Dataset, error) {
	ds, err := vec.NewDataset(coords, dim)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// ReadCSV parses comma-separated numeric rows (optional header, '#'
// comments) into a Dataset.
func ReadCSV(r io.Reader) (*Dataset, error) {
	ds, err := data.ReadCSV(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// ReadBinary parses a dataset written by WriteBinary (the format cmd/datagen
// -format bin produces and RunShardedFile streams). Float32 files come back
// in PrecisionF32 storage.
func ReadBinary(r io.Reader) (*Dataset, error) {
	ds, err := data.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// WriteBinary streams the dataset to w in the binary dataset format; the
// dataset's precision selects the on-disk value width.
func (d *Dataset) WriteBinary(w io.Writer) error {
	return data.WriteBinary(w, d.ds)
}

// WriteCSV writes the dataset as CSV, appending each point's cluster label
// as a last column when res is non-nil.
func (d *Dataset) WriteCSV(w io.Writer, res *Result) error {
	if res == nil {
		return data.WriteCSV(w, d.ds, nil)
	}
	return data.WriteCSV(w, d.ds, res.inner)
}

// Len returns the number of points.
func (d *Dataset) Len() int { return d.ds.Len() }

// Dim returns the dimensionality.
func (d *Dataset) Dim() int { return d.ds.Dim() }

// Point returns a read-only view of point i; do not modify it.
func (d *Dataset) Point(i int) []float64 { return d.ds.Point(i) }

// Normalize linearly rescales every dimension to [0, scale] in place (the
// paper normalizes to [0, 10^5]) and returns the dataset for chaining.
// Call it before clustering, never between runs you intend to compare.
func (d *Dataset) Normalize(scale float64) *Dataset {
	d.ds.NormalizeTo(scale)
	return d
}
