package dbsvec

import (
	"fmt"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/shard"
	"dbsvec/internal/vec"
)

// ShardStats reports a sharded run: the slab plan (axis, cuts), per-shard
// execution stats (each with its own index-build time, phase breakdown and
// θ-model counters), halo-merge work, and the sampled peak live heap — the
// number the out-of-core memory cap bounds.
type ShardStats = shard.Stats

// ShardStat is one shard's execution report inside ShardStats.
type ShardStat = shard.ShardStat

// RunSharded clusters the dataset in Options.Shards eps-halo spatial slabs
// and merges the per-shard results into the exact global clustering: labels
// are identical to Cluster for Shards=1 and label-permutation-identical for
// any shard count, worker count and precision on data where DBSVEC is
// DBSCAN-exact (see DESIGN.md "Sharded execution & out-of-core streaming").
// Peak memory is O(ShardConcurrency × slab) beyond the dataset itself; use
// RunShardedFile to stream slabs from disk and drop the dataset term too.
//
// Options.Budget applies per shard: a tripped shard contributes its valid
// partial clustering and the merged Result comes back with a
// *BudgetExceededError. Options.WarmFrom is not supported in sharded mode.
func RunSharded(d *Dataset, opts Options) (*Result, error) {
	if d == nil {
		return nil, core.ErrNilDataset
	}
	return runSharded(shard.NewMemSource(d.ds), d.Dim(), d.Precision(), opts)
}

// RunShardedFile is RunSharded over a binary dataset file (WriteBinary
// format) streamed out-of-core: each slab is block-read from disk, clustered,
// reduced to its boundary summary, and released before the next slab loads,
// so the whole dataset is never resident — peak heap stays at
// O(ShardConcurrency × slab + per-point bookkeeping).
func RunShardedFile(path string, opts Options) (*Result, error) {
	fs, err := shard.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	// The effective precision matches what ReadBinary would produce: the
	// file's own storage precision, further quantized when the process
	// default is F32.
	prec := fs.Header().Precision()
	if vec.DefaultPrecision() == vec.F32 {
		prec = vec.F32
	}
	return runSharded(fs, fs.Dim(), prec, opts)
}

func runSharded(src shard.Source, dim int, prec Precision, opts Options) (*Result, error) {
	if opts.WarmFrom != nil {
		return nil, fmt.Errorf("%w: WarmFrom is not supported in sharded mode", ErrInvalidParams)
	}
	build, err := opts.Index.ctxBuilder(opts.Eps, dim, opts.Workers)
	if err != nil {
		return nil, err
	}
	so := shard.Options{
		Core: core.Options{
			Eps:              opts.Eps,
			MinPts:           opts.MinPts,
			Nu:               opts.Nu,
			NuMin:            opts.NuMin,
			MemoryFactor:     opts.MemoryFactor,
			LearnThreshold:   opts.LearnThreshold,
			DisableWeights:   opts.DisableWeights,
			RandomKernel:     opts.RandomKernel,
			Seed:             opts.Seed,
			IndexBuilderCtx:  build,
			Workers:          opts.Workers,
			MaxSVDDTarget:    opts.MaxSVDDTarget,
			DisableWarmStart: opts.DisableWarmStart,
			Budget:           opts.Budget,
		},
		Shards:      opts.Shards,
		Concurrency: opts.ShardConcurrency,
		Retain:      true,
	}
	res, models, sst, err := shard.Run(src, so)
	if err != nil && res == nil {
		return nil, err
	}
	out := wrapResult(res)
	retained := make([]core.RetainedModel, len(models))
	for i, m := range models {
		retained[i] = m.RetainedModel
	}
	out.model = newModelDims(dim, prec, opts, res, retained)
	out.Stats = aggregateShardStats(&sst)
	return out, err
}

// aggregateShardStats sums the per-shard θ-model counters and wall clocks
// into the top-level Stats and attaches the full sharding report.
func aggregateShardStats(sst *ShardStats) Stats {
	st := Stats{Sharding: sst}
	for i := range sst.Shards {
		c := &sst.Shards[i].Core
		st.Seeds += c.Seeds
		st.SupportVectors += c.SupportVectors
		st.Merges += c.Merges
		st.NoiseList += c.NoiseList
		st.RangeQueries += c.RangeQueries
		st.RangeCounts += c.RangeCounts
		st.SVDDTrainings += c.SVDDTrainings
		st.Degraded += c.Degraded
		st.WarmRestarts += c.WarmRestarts
		st.RetainedModels += c.RetainedModels
		st.IndexBuild += sst.Shards[i].IndexBuild
		st.Phases.Init += c.Phases.Init
		st.Phases.Expand += c.Phases.Expand
		st.Phases.Verify += c.Phases.Verify
		st.SVDD.Fill += c.SVDD.Fill
		st.SVDD.Solve += c.SVDD.Solve
		st.SVDD.Finish += c.SVDD.Finish
		st.SVDD.Rounds += c.SVDD.Rounds
		st.SVDD.NotConverged += c.SVDD.NotConverged
	}
	return st
}

// newModelDims builds the model artifact when no Dataset object exists (the
// out-of-core path knows only the file's shape and precision).
func newModelDims(dim int, prec Precision, opts Options, res *cluster.Result, retained []core.RetainedModel) *Model {
	entries := make([]data.ModelEntry, len(retained))
	for i, e := range retained {
		entries[i] = data.ModelEntry{Cluster: e.Cluster, Degraded: e.Degraded, Snap: e.Snap}
	}
	mp := data.ModelPrecisionF64
	if prec == PrecisionF32 {
		mp = data.ModelPrecisionF32
	}
	return &Model{art: &data.ModelArtifact{
		Kind:      data.ModelKindClustering,
		Precision: mp,
		Eps:       opts.Eps,
		MinPts:    opts.MinPts,
		Dim:       dim,
		Clusters:  res.Clusters,
		Entries:   entries,
	}}
}
