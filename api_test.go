package dbsvec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func blobRows(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, n)
	for i := 0; i < n/2; i++ {
		rows = append(rows, []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2})
	}
	for i := n / 2; i < n; i++ {
		rows = append(rows, []float64{60 + rng.NormFloat64()*2, 60 + rng.NormFloat64()*2})
	}
	return rows
}

func TestPublicClusterQuickstart(t *testing.T) {
	ds, err := NewDataset(blobRows(400, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds, Options{Eps: 4, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("Clusters = %d, want 2", res.Clusters)
	}
	if len(res.Labels) != 400 {
		t.Fatalf("Labels length %d", len(res.Labels))
	}
	if res.Stats.RangeQueries == 0 || res.Stats.SVDDTrainings == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	sizes := res.ClusterSizes()
	if len(sizes) != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
}

func TestAllAlgorithmsAgreeOnEasyData(t *testing.T) {
	ds, _ := NewDataset(blobRows(600, 2))
	exact, err := DBSCAN(ds, 4, 8, IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	type runner struct {
		name string
		run  func() (*Result, error)
	}
	runners := []runner{
		{"dbsvec", func() (*Result, error) { return Cluster(ds, Options{Eps: 4, MinPts: 8}) }},
		{"dbsvec-kdtree", func() (*Result, error) { return Cluster(ds, Options{Eps: 4, MinPts: 8, Index: IndexKDTree}) }},
		{"dbsvec-grid", func() (*Result, error) { return Cluster(ds, Options{Eps: 4, MinPts: 8, Index: IndexGrid}) }},
		{"dbsvec-pyramid", func() (*Result, error) { return Cluster(ds, Options{Eps: 4, MinPts: 8, Index: IndexPyramid}) }},
		{"dbsvec-vptree", func() (*Result, error) { return Cluster(ds, Options{Eps: 4, MinPts: 8, Index: IndexVPTree}) }},
		{"dbsvec-rproj", func() (*Result, error) { return Cluster(ds, Options{Eps: 4, MinPts: 8, Index: IndexRProj}) }},
		{"dbscan-parallel", func() (*Result, error) { return DBSCANParallel(ds, 4, 8, IndexParallel, 0) }},
		{"rho", func() (*Result, error) { return RhoApproximate(ds, RhoOptions{Eps: 4, MinPts: 8}) }},
		{"nq", func() (*Result, error) { return NQDBSCAN(ds, 4, 8) }},
		{"dbscan-kd", func() (*Result, error) { return DBSCAN(ds, 4, 8, IndexKDTree) }},
		{"dbscan-grid", func() (*Result, error) { return DBSCAN(ds, 4, 8, IndexGrid) }},
	}
	for _, r := range runners {
		got, err := r.run()
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		rec, err := PairRecall(exact, got)
		if err != nil {
			t.Fatalf("%s: %v", r.name, err)
		}
		if rec < 0.99 {
			t.Errorf("%s: recall %v on trivially separable data", r.name, rec)
		}
	}
	// DBSCAN-LSH is allowed to be lossier but must still work.
	lshRes, err := DBSCANLSH(ds, LSHOptions{Eps: 4, MinPts: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rec, _ := PairRecall(exact, lshRes); rec < 0.5 {
		t.Errorf("lsh recall %v unreasonably low", rec)
	}
}

func TestKMeansPublic(t *testing.T) {
	ds, _ := NewDataset(blobRows(200, 3))
	km, err := KMeans(ds, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if km.Clusters != 2 || len(km.Centers) != 2 {
		t.Fatalf("k-means: %d clusters, %d centers", km.Clusters, len(km.Centers))
	}
	if km.Inertia <= 0 {
		t.Errorf("inertia = %v", km.Inertia)
	}
	c, err := Compactness(ds, km.Result)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Separation(ds, km.Result)
	if err != nil {
		t.Fatal(err)
	}
	if c < 0.5 {
		t.Errorf("compactness %v low for separated blobs", c)
	}
	if s <= 0 {
		t.Errorf("separation %v", s)
	}
}

// Theorem 1 as a metric statement: DBSVEC's pair precision against DBSCAN
// must be (near) perfect — splits cost recall, never precision.
func TestTheorem1AsPrecision(t *testing.T) {
	ds, _ := NewDataset(blobRows(800, 21))
	exact, err := DBSCAN(ds, 4, 8, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Cluster(ds, Options{Eps: 4, MinPts: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	prec, err := PairPrecision(exact, fast)
	if err != nil {
		t.Fatal(err)
	}
	if prec < 0.999 {
		t.Errorf("pair precision %v, Theorem 1 predicts ~1", prec)
	}
	f1, err := PairF1(exact, fast)
	if err != nil {
		t.Fatal(err)
	}
	if f1 < 0.98 {
		t.Errorf("pair F1 %v unexpectedly low", f1)
	}
}

func TestNoiseAgreementPublic(t *testing.T) {
	ds, _ := NewDataset(blobRows(300, 4))
	a, err := Cluster(ds, Options{Eps: 4, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DBSCAN(ds, 4, 8, IndexLinear)
	if err != nil {
		t.Fatal(err)
	}
	agree, err := NoiseAgreement(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Errorf("noise agreement = %v, want 1 (Theorem 3)", agree)
	}
}

func TestCSVPublicRoundTrip(t *testing.T) {
	in := "x,y\n1,2\n3,4\n100,200\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Dim() != 2 {
		t.Fatalf("parsed %dx%d", ds.Len(), ds.Dim())
	}
	res, err := Cluster(ds, Options{Eps: 5, MinPts: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("wrote %d lines", len(lines))
	}
	for _, l := range lines {
		if strings.Count(l, ",") != 2 {
			t.Fatalf("line %q should have 3 columns", l)
		}
	}
}

func TestNormalize(t *testing.T) {
	ds, _ := NewDataset([][]float64{{0, 0}, {10, 5}})
	ds.Normalize(1e5)
	if got := ds.Point(1)[0]; got != 1e5 {
		t.Errorf("normalized max = %v, want 1e5", got)
	}
}

func TestPublicErrors(t *testing.T) {
	if _, err := Cluster(nil, Options{Eps: 1, MinPts: 2}); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := DBSCAN(nil, 1, 2, IndexLinear); err == nil {
		t.Error("nil dataset should error")
	}
	ds, _ := NewDataset([][]float64{{0, 0}})
	if _, err := Cluster(ds, Options{Eps: -1, MinPts: 2}); err == nil {
		t.Error("bad eps should error")
	}
	if _, err := Cluster(ds, Options{Eps: 1, MinPts: 2, Index: IndexKind(99)}); err == nil {
		t.Error("unknown index should error")
	}
	if _, err := FromFlat([]float64{1, 2, 3}, 2); err == nil {
		t.Error("misaligned flat data should error")
	}
	if _, err := KMeans(nil, 2, 0); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := NQDBSCAN(nil, 1, 2); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := RhoApproximate(nil, RhoOptions{Eps: 1, MinPts: 2}); err == nil {
		t.Error("nil dataset should error")
	}
	if _, err := DBSCANLSH(nil, LSHOptions{Eps: 1, MinPts: 2}); err == nil {
		t.Error("nil dataset should error")
	}
}
