package dbsvec

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dbsvec/internal/data"
	"dbsvec/internal/leakcheck"
)

func blobDataset(t *testing.T, n, d, k int, seed int64) *Dataset {
	t.Helper()
	raw := data.Blobs(n, d, k, 2, 100, 0.05, seed)
	ds, err := FromFlat(append([]float64(nil), raw.Coords()...), d)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestModelSaveLoadAssign is the headline acceptance path: a model trained
// by Cluster is saved, loaded as if in a fresh process, and Assign labels
// the original training points consistently with Result.Labels (non-noise
// agreement >= 0.99); save → load → save is byte-identical.
func TestModelSaveLoadAssign(t *testing.T) {
	for _, spec := range []struct {
		n, d, k int
		seed    int64
	}{
		{1500, 2, 4, 3},
		{1000, 3, 3, 4},
		{800, 5, 2, 5},
	} {
		ds := blobDataset(t, spec.n, spec.d, spec.k, spec.seed)
		res, err := Cluster(ds, Options{Eps: 3, MinPts: 8, Seed: 3})
		if err != nil {
			t.Fatalf("d=%d: %v", spec.d, err)
		}
		m := res.Model()
		if m == nil {
			t.Fatalf("d=%d: Cluster retained no model", spec.d)
		}
		if m.Clusters() != res.Clusters || m.Dim() != spec.d || m.Eps() != 3 || m.MinPts() != 8 {
			t.Fatalf("d=%d: model parameters drifted: %d clusters dim %d eps %g minPts %d",
				spec.d, m.Clusters(), m.Dim(), m.Eps(), m.MinPts())
		}
		if res.Stats.RetainedModels == 0 || m.Snapshots() == 0 {
			t.Fatalf("d=%d: no snapshots retained", spec.d)
		}

		var buf bytes.Buffer
		if err := m.Save(&buf); err != nil {
			t.Fatalf("d=%d save: %v", spec.d, err)
		}
		first := append([]byte(nil), buf.Bytes()...)
		loaded, err := LoadModel(bytes.NewReader(first))
		if err != nil {
			t.Fatalf("d=%d load: %v", spec.d, err)
		}
		var buf2 bytes.Buffer
		if err := loaded.Save(&buf2); err != nil {
			t.Fatalf("d=%d re-save: %v", spec.d, err)
		}
		if !bytes.Equal(first, buf2.Bytes()) {
			t.Fatalf("d=%d: save → load → save is not byte-identical", spec.d)
		}

		labels, err := loaded.Assign(ds, 1)
		if err != nil {
			t.Fatalf("d=%d assign: %v", spec.d, err)
		}
		agree, total := 0, 0
		for i, want := range res.Labels {
			if want == Noise {
				continue
			}
			total++
			if labels[i] == want {
				agree++
			}
		}
		if total == 0 {
			t.Fatalf("d=%d: clustering labeled nothing", spec.d)
		}
		if frac := float64(agree) / float64(total); frac < 0.99 {
			t.Errorf("d=%d: Assign agrees with Result.Labels on %.4f of non-noise points, want >= 0.99",
				spec.d, frac)
		}
	}
}

// TestAssignWorkerConformance pins the determinism discipline on the scoring
// path: a 100k-point batch assigned with any worker count produces
// bit-identical labels, because the range partition is deterministic and
// every point's work is independent.
func TestAssignWorkerConformance(t *testing.T) {
	train := blobDataset(t, 4000, 2, 4, 7)
	res, err := Cluster(train, Options{Eps: 3, MinPts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model()

	batch := blobDataset(t, 100_000, 2, 4, 8)
	want, err := m.Assign(batch, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 5, 8, 16, 0} {
		got, err := m.Assign(batch, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: label %d differs (%d != %d)", workers, i, got[i], want[i])
			}
		}
	}
}

// TestClusterWarmFrom drives the warm-restart path through the public API
// and a full save/load cycle: re-clustering unchanged data from the loaded
// model must reproduce the original clustering (ARI >= 0.99) and actually
// seed SVDD rounds from the snapshots.
func TestClusterWarmFrom(t *testing.T) {
	ds := blobDataset(t, 1500, 2, 4, 3)
	opts := Options{Eps: 3, MinPts: 8, Seed: 3}
	cold, err := Cluster(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := cold.Model().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}

	wopts := opts
	wopts.WarmFrom = loaded
	warm, err := Cluster(ds, wopts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.WarmRestarts == 0 {
		t.Fatal("no SVDD round was warm-restarted from the loaded model")
	}
	ari, err := ARI(cold, warm)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.99 {
		t.Errorf("warm-from-loaded-model ARI = %v, want >= 0.99", ari)
	}
}

// TestModelAssignRejectsMismatchedDim: dimension mismatches fail up front
// instead of producing garbage labels.
func TestModelAssignRejectsMismatchedDim(t *testing.T) {
	ds := blobDataset(t, 600, 2, 2, 9)
	res, err := Cluster(ds, Options{Eps: 3, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	wrong := blobDataset(t, 10, 3, 1, 9)
	if _, err := res.Model().Assign(wrong, 1); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("Assign on wrong dimensionality: err = %v, want ErrInvalidParams", err)
	}
	if err := res.Model().CheckAssignable(wrong); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("CheckAssignable on wrong dimensionality: err = %v, want ErrInvalidParams", err)
	}
	var nilModel *Model
	if err := nilModel.CheckAssignable(ds); !errors.Is(err, ErrInvalidParams) {
		t.Fatalf("CheckAssignable on nil model: err = %v, want ErrInvalidParams", err)
	}
}

// TestLoadModelRejectsKindMismatch: the two loaders reject each other's
// artifacts with ErrMalformed.
func TestLoadModelRejectsKindMismatch(t *testing.T) {
	ds := blobDataset(t, 300, 2, 1, 11)
	oc, err := TrainOneClass(ds, OneClassOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var ocBuf bytes.Buffer
	if err := oc.Save(&ocBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bytes.NewReader(ocBuf.Bytes())); !errors.Is(err, ErrMalformed) {
		t.Fatalf("LoadModel on a one-class artifact: err = %v, want ErrMalformed", err)
	}

	res, err := Cluster(ds, Options{Eps: 3, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	var cBuf bytes.Buffer
	if err := res.Model().Save(&cBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadOneClass(bytes.NewReader(cBuf.Bytes())); !errors.Is(err, ErrMalformed) {
		t.Fatalf("LoadOneClass on a clustering artifact: err = %v, want ErrMalformed", err)
	}
}

// pollCancelCtx is a context whose Err() flips to context.Canceled after a
// fixed number of Err() polls. AssignContext only ever consults ctx.Err()
// (never Done()), so this drives mid-fan-out cancellation deterministically:
// the budget is spent strictly inside the worker loops.
type pollCancelCtx struct {
	context.Context
	polls atomic.Int64
}

func (c *pollCancelCtx) Err() error {
	if c.polls.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestAssignContextCancelledMidFanOut: cancellation that lands while the
// assign fan-out is running aborts the batch with ctx's error and leaks no
// goroutines. The poll budget (3) survives AssignContext's two whole-batch
// checks plus the first in-loop poll, so the cancel is observed strictly
// inside the worker loop.
func TestAssignContextCancelledMidFanOut(t *testing.T) {
	leakcheck.Check(t)
	ds := blobDataset(t, 2000, 2, 3, 21)
	res, err := Cluster(ds, Options{Eps: 3, MinPts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model()

	ctx := &pollCancelCtx{Context: context.Background()}
	ctx.polls.Store(3)
	if _, err := m.AssignContext(ctx, ds, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-fan-out cancel: err = %v, want context.Canceled", err)
	}

	// A pre-cancelled context never starts the fan-out.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.AssignContext(done, ds, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled: err = %v, want context.Canceled", err)
	}

	// And the model still works afterwards.
	labels, err := m.Assign(ds, 4)
	if err != nil || len(labels) != ds.Len() {
		t.Fatalf("post-cancel Assign: labels %d err %v", len(labels), err)
	}
}

// TestAssignNearestContext: the degraded-path entry point is deterministic
// across worker counts, labels stay in range, and it broadly agrees with
// the full boundary path on training data (the nearest-SV fallback is the
// final tiebreak of the full path, so most points coincide).
func TestAssignNearestContext(t *testing.T) {
	ds := blobDataset(t, 1200, 2, 3, 25)
	res, err := Cluster(ds, Options{Eps: 3, MinPts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model()
	ctx := context.Background()

	one, err := m.AssignNearestContext(ctx, ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	four, err := m.AssignNearestContext(ctx, ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range one {
		if one[i] != four[i] {
			t.Fatalf("nearest assignment depends on worker count at %d: %d vs %d", i, one[i], four[i])
		}
		if one[i] != -1 && (one[i] < 0 || int(one[i]) >= m.Clusters()) {
			t.Fatalf("nearest label[%d] = %d outside [-1, %d)", i, one[i], m.Clusters())
		}
	}

	full, err := m.Assign(ds, 1)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i := range full {
		if full[i] == one[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(full)); frac < 0.8 {
		t.Fatalf("nearest path agrees with the full path on only %.2f of points", frac)
	}
}
