package dbsvec

import "dbsvec/internal/eval"

// PairRecall returns the fraction of point pairs co-clustered by the
// reference result that the candidate result also co-clusters — the
// accuracy metric of the paper's Table III (after Lulli et al.). 1 means
// the candidate preserves every reference pair.
func PairRecall(reference, candidate *Result) (float64, error) {
	return eval.PairRecall(reference.inner, candidate.inner)
}

// Compactness returns the mean silhouette coefficient of a clustering
// (higher is better) — the "C" column of the paper's Table IV. O(n²·d);
// sample large datasets first.
func Compactness(d *Dataset, res *Result) (float64, error) {
	return eval.Silhouette(d.ds, res.inner)
}

// Separation returns the Davies–Bouldin index of a clustering (lower is
// better) — the "S" column of the paper's Table IV.
func Separation(d *Dataset, res *Result) (float64, error) {
	return eval.DaviesBouldin(d.ds, res.inner)
}

// PairPrecision returns the fraction of point pairs co-clustered by the
// candidate that the reference also co-clusters. Theorem 1 (every DBSVEC
// cluster ⊆ some DBSCAN cluster) predicts 1.0 for DBSVEC against DBSCAN,
// up to border-point ties.
func PairPrecision(reference, candidate *Result) (float64, error) {
	return eval.PairPrecision(reference.inner, candidate.inner)
}

// PairF1 returns the harmonic mean of PairRecall and PairPrecision.
func PairF1(reference, candidate *Result) (float64, error) {
	return eval.PairF1(reference.inner, candidate.inner)
}

// ARI returns the Adjusted Rand Index between two clusterings: 1 for
// identical partitions, ~0 for independent ones. Noise points count as
// singleton clusters.
func ARI(a, b *Result) (float64, error) {
	return eval.AdjustedRandIndex(a.inner, b.inner)
}

// NoiseAgreement returns the fraction of points whose noise/clustered
// status matches between two results (Theorem 3 predicts 1.0 for DBSVEC vs
// DBSCAN).
func NoiseAgreement(a, b *Result) (float64, error) {
	return eval.NoiseAgreement(a.inner, b.inner)
}
