// Benchmarks mapping one testing.B to every table and figure of the
// paper's evaluation (Section V). They time the same algorithm/workload
// pairs the corresponding experiment regenerates; run the cmd/benchall
// harness for the full printed tables.
package dbsvec

import (
	"fmt"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/eval"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/kmeans"
	"dbsvec/internal/lshdbscan"
	"dbsvec/internal/nqdbscan"
	"dbsvec/internal/rhodbscan"
	"dbsvec/internal/vec"
)

// benchSpreader caches generated datasets across sub-benchmarks.
var benchCache = map[string]*vec.Dataset{}

func spreader(n, d int) *vec.Dataset {
	key := fmt.Sprintf("s/%d/%d", n, d)
	if ds, ok := benchCache[key]; ok {
		return ds
	}
	ds := data.SeedSpreader{N: n, D: d, Seed: 1}.Generate()
	benchCache[key] = ds
	return ds
}

// BenchmarkFig1_T48K times DBSCAN vs DBSVEC on the t4.8k analogue with the
// paper's parameters (MinPts=20, eps=8.5) — Figure 1.
func BenchmarkFig1_T48K(b *testing.B) {
	ds := data.Chameleon48K(1)
	b.Run("DBSCAN", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := dbscan.Run(ds, dbscan.Params{Eps: 8.5, MinPts: 20}, rtree.Build); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DBSVEC", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Run(ds, core.Options{Eps: 8.5, MinPts: 20, Seed: 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable3_Recall times the four accuracy contenders on a Table III
// dataset (t7.10k analogue) and reports the recall each achieves.
func BenchmarkTable3_Recall(b *testing.B) {
	e, err := data.SuiteByName("t7.10k")
	if err != nil {
		b.Fatal(err)
	}
	ds := e.Gen(1)
	truth, _, err := dbscan.Run(ds, dbscan.Params{Eps: e.Eps, MinPts: e.MinPts}, rtree.Build)
	if err != nil {
		b.Fatal(err)
	}
	report := func(b *testing.B, res *benchResult) {
		rec, err := eval.PairRecall(truth, res.r)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rec, "recall")
	}
	b.Run("DBSVEC", func(b *testing.B) {
		var last *benchResult
		for i := 0; i < b.N; i++ {
			r, _, err := core.Run(ds, core.Options{Eps: e.Eps, MinPts: e.MinPts, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			last = &benchResult{r}
		}
		report(b, last)
	})
	b.Run("DBSVECmin", func(b *testing.B) {
		var last *benchResult
		for i := 0; i < b.N; i++ {
			r, _, err := core.Run(ds, core.Options{Eps: e.Eps, MinPts: e.MinPts, NuMin: true, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			last = &benchResult{r}
		}
		report(b, last)
	})
	b.Run("RhoApprox", func(b *testing.B) {
		var last *benchResult
		for i := 0; i < b.N; i++ {
			r, _, err := rhodbscan.Run(ds, rhodbscan.Params{Eps: e.Eps, MinPts: e.MinPts, Rho: 0.001})
			if err != nil {
				b.Fatal(err)
			}
			last = &benchResult{r}
		}
		report(b, last)
	})
	b.Run("DBSCANLSH", func(b *testing.B) {
		var last *benchResult
		for i := 0; i < b.N; i++ {
			r, _, err := lshdbscan.Run(ds, lshdbscan.Params{Eps: e.Eps, MinPts: e.MinPts})
			if err != nil {
				b.Fatal(err)
			}
			last = &benchResult{r}
		}
		report(b, last)
	})
}

type benchResult struct{ r *cluster.Result }

// BenchmarkTable4_Validation times DBSVEC vs k-MEANS plus the validation
// metrics on the Dim64 stand-in — Table IV.
func BenchmarkTable4_Validation(b *testing.B) {
	e, err := data.SuiteByName("Dim64")
	if err != nil {
		b.Fatal(err)
	}
	ds := e.Gen(1)
	b.Run("DBSVEC+metrics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, _, err := core.Run(ds, core.Options{Eps: e.Eps, MinPts: e.MinPts, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eval.Silhouette(ds, res); err != nil {
				b.Fatal(err)
			}
			if _, err := eval.DaviesBouldin(ds, res); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KMeans+metrics", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, _, _, err := kmeans.Run(ds, kmeans.Params{K: 16, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := eval.Silhouette(ds, res); err != nil {
				b.Fatal(err)
			}
			if _, err := eval.DaviesBouldin(ds, res); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig6a_Cardinality times the main contenders across cardinalities
// (d=8, MinPts=100, eps=5000) — Figure 6a.
func BenchmarkFig6a_Cardinality(b *testing.B) {
	for _, n := range []int{5000, 20000} {
		ds := spreader(n, 8)
		b.Run(fmt.Sprintf("DBSVEC/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("kdDBSCAN/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dbscan.Run(ds, dbscan.Params{Eps: 5000, MinPts: 100}, kdtree.Build); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("RhoApprox/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := rhodbscan.Run(ds, rhodbscan.Params{Eps: 5000, MinPts: 100, Rho: 0.001}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6b_Dimensionality times DBSVEC and ρ-approximate across
// dimensionalities — Figure 6b (ρ-approx deteriorates with d).
func BenchmarkFig6b_Dimensionality(b *testing.B) {
	for _, d := range []int{2, 8, 16} {
		ds := spreader(10000, d)
		b.Run(fmt.Sprintf("DBSVEC/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("RhoApprox/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := rhodbscan.Run(ds, rhodbscan.Params{Eps: 5000, MinPts: 100, Rho: 0.001}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7_Radius times DBSVEC and kd-DBSCAN across radii — Figure 7.
func BenchmarkFig7_Radius(b *testing.B) {
	ds := spreader(10000, 8)
	for _, eps := range []float64{5000, 25000, 45000} {
		b.Run(fmt.Sprintf("DBSVEC/eps=%.0f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: eps, MinPts: 100, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("kdDBSCAN/eps=%.0f", eps), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dbscan.Run(ds, dbscan.Params{Eps: eps, MinPts: 100}, kdtree.Build); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8_Nu times DBSVEC as ν grows — Figure 8 (runtime increases
// with ν).
func BenchmarkFig8_Nu(b *testing.B) {
	ds := spreader(10000, 8)
	for _, nu := range []float64{0.005, 0.02, 0.08, 0.3} {
		b.Run(fmt.Sprintf("nu=%.3f", nu), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Nu: nu, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9a_Ablation times the accuracy-affecting SVDD ablations on
// the t4.8k analogue — Figure 9a.
func BenchmarkFig9a_Ablation(b *testing.B) {
	ds := data.Chameleon48K(1)
	variants := map[string]core.Options{
		"NoWeights": {Eps: 8.5, MinPts: 20, DisableWeights: true, Seed: 1},
		"Full":      {Eps: 8.5, MinPts: 20, Seed: 1},
	}
	for name, opts := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9b_Ablation times the efficiency-affecting SVDD ablations on
// 8-d synthetic data — Figure 9b.
func BenchmarkFig9b_Ablation(b *testing.B) {
	ds := spreader(10000, 8)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"NoIncremental", core.Options{Eps: 5000, MinPts: 100, LearnThreshold: -1, Seed: 1}},
		{"RandomKernel", core.Options{Eps: 5000, MinPts: 100, RandomKernel: true, Seed: 1}},
		{"Full", core.Options{Eps: 5000, MinPts: 100, Seed: 1}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, v.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkersScaling times DBSVEC on 8-d synthetic data as the
// query-engine worker count grows — the acceptance check for the batched
// execution engine. Labels and θ-term stats are identical across worker
// counts (see TestWorkersDeterminism); only wall-clock should move.
func BenchmarkWorkersScaling(b *testing.B) {
	ds := spreader(20000, 8)
	for _, workers := range []int{1, 2, 4, 0} { // 0 = all CPUs
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=NumCPU"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Seed: 1, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelDBSCANWorkers times the engine-backed parallel DBSCAN
// baseline across worker counts on the same workload.
func BenchmarkParallelDBSCANWorkers(b *testing.B) {
	ds := spreader(20000, 8)
	for _, workers := range []int{1, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=NumCPU"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := dbscan.RunParallel(ds, dbscan.Params{Eps: 5000, MinPts: 100}, kdtree.Build, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNQ_DBSCAN times the NQ-DBSCAN baseline (Table II complexity
// context).
func BenchmarkNQ_DBSCAN(b *testing.B) {
	ds := spreader(10000, 8)
	for i := 0; i < b.N; i++ {
		if _, _, err := nqdbscan.Run(ds, nqdbscan.Params{Eps: 5000, MinPts: 100}); err != nil {
			b.Fatal(err)
		}
	}
}
