// Ablation benchmarks for the design choices DESIGN.md calls out: the
// range-query backend behind DBSVEC, bulk vs dynamic R*-tree construction,
// the SVDD target-set cap, and the incremental-learning threshold.
package dbsvec

import (
	"fmt"
	"testing"

	"dbsvec/internal/core"
	"dbsvec/internal/index"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/svdd"
	"dbsvec/internal/vec"
)

// BenchmarkAblationIndexBackend compares DBSVEC's range-query backends.
// The paper runs DBSVEC index-free (linear); an index trades build time for
// query time.
func BenchmarkAblationIndexBackend(b *testing.B) {
	ds := spreader(20000, 8)
	backends := []struct {
		name  string
		build index.Builder
	}{
		{"linear", index.BuildLinear},
		{"parallel", index.BuildParallel},
		{"kdtree", kdtree.Build},
		{"rtree", rtree.Build},
	}
	for _, be := range backends {
		b.Run(be.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Seed: 1, IndexBuilder: be.build}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRTreeBuild compares STR bulk loading against one-at-a-
// time R* insertion (build cost and query cost).
func BenchmarkAblationRTreeBuild(b *testing.B) {
	ds := spreader(50000, 4)
	b.Run("bulk-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.Bulk(ds)
		}
	})
	b.Run("dynamic-build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rtree.BuildDynamic(ds)
		}
	})
	bulk := rtree.Bulk(ds)
	dyn := rtree.BuildDynamic(ds)
	var buf []int32
	b.Run("bulk-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = bulk.RangeQuery(ds.Point(i%ds.Len()), 5000, buf[:0])
		}
	})
	b.Run("dynamic-query", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = dyn.RangeQuery(ds.Point(i%ds.Len()), 5000, buf[:0])
		}
	})
}

// BenchmarkAblationSVDDTargetCap sweeps the SVDD target-set cap: larger
// caps mean more kernel work per training but potentially fewer rounds.
func BenchmarkAblationSVDDTargetCap(b *testing.B) {
	ds := spreader(20000, 8)
	for _, cap := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("cap=%d", cap), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Seed: 1, MaxSVDDTarget: cap}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLearnThreshold sweeps the incremental-learning threshold
// T (Section IV-B1; the paper recommends 2–4, default 3).
func BenchmarkAblationLearnThreshold(b *testing.B) {
	ds := spreader(20000, 8)
	for _, T := range []int{1, 3, 6, -1} {
		name := fmt.Sprintf("T=%d", T)
		if T == -1 {
			name = "T=inf"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Run(ds, core.Options{Eps: 5000, MinPts: 100, Seed: 1, LearnThreshold: T}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSVDDTrain isolates one SVDD training across target sizes
// (the O(ñ) claim of Section IV-D).
func BenchmarkAblationSVDDTrain(b *testing.B) {
	ds := spreader(20000, 8)
	for _, n := range []int{128, 512, 2048} {
		ids := vec.Iota(n)
		times := make([]int, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if m, err := svdd.Train(ds, ids, svdd.Config{Dim: 8, MinPts: 100, Times: times}); err != nil && m == nil {
					b.Fatal(err)
				}
			}
		})
	}
}
