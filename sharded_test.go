package dbsvec

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// stripRows generates line clusters spanning the full extent of axis 0 —
// the DBSCAN-exact regime the sharded merge is proven for (see
// internal/shard): a jittered axis-0 lattice makes every point core, strips
// are > 2*eps apart on axis 1, and the gap-free axis-0 histogram forces every
// slab cut to slice every cluster, so the halo merge is exercised.
func stripRows(nStrips, perStrip int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, nStrips*perStrip)
	for s := 0; s < nStrips; s++ {
		for i := 0; i < perStrip; i++ {
			rows = append(rows, []float64{
				(float64(i)+0.5)*0.2 + (rng.Float64()-0.5)*0.1,
				float64(s)*8 + rng.Float64()*0.5,
			})
		}
	}
	return rows
}

// TestRunShardedMatchesCluster: the public sharded entry point reproduces
// Cluster's labels exactly across shard counts and index kinds, and threads
// the sharding stats through.
func TestRunShardedMatchesCluster(t *testing.T) {
	ds, err := NewDataset(stripRows(6, 220, 3))
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Eps: 3, MinPts: 10}
	want, err := Cluster(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Clusters != 6 {
		t.Fatalf("single-shot found %d clusters, want 6", want.Clusters)
	}
	for _, shards := range []int{1, 4, 8} {
		for _, kind := range []IndexKind{IndexLinear, IndexKDTree} {
			o := opts
			o.Shards = shards
			o.ShardConcurrency = 2
			o.Index = kind
			res, err := RunSharded(ds, o)
			if err != nil {
				t.Fatalf("shards=%d kind=%d: %v", shards, kind, err)
			}
			if res.Clusters != want.Clusters {
				t.Fatalf("shards=%d: %d clusters, want %d", shards, res.Clusters, want.Clusters)
			}
			for i := range want.Labels {
				if res.Labels[i] != want.Labels[i] {
					t.Fatalf("shards=%d kind=%d: label[%d] = %d, want %d", shards, kind, i, res.Labels[i], want.Labels[i])
				}
			}
			if res.Stats.Sharding == nil {
				t.Fatal("Stats.Sharding not populated")
			}
			if got := len(res.Stats.Sharding.Shards); got > shards {
				t.Fatalf("sharding stats report %d shards for k=%d", got, shards)
			}
			if res.Stats.Seeds == 0 || res.Stats.RangeQueries == 0 {
				t.Fatalf("aggregated stats not populated: %+v", res.Stats)
			}
			if res.Stats.Sharding.PeakHeapBytes == 0 {
				t.Fatal("peak heap not sampled")
			}
		}
	}
}

// TestRunShardedModel: the sharded run retains a usable model artifact that
// assigns the training points back to their clusters and round-trips through
// Save/LoadModel.
func TestRunShardedModel(t *testing.T) {
	ds, err := NewDataset(stripRows(4, 200, 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSharded(ds, Options{Eps: 3, MinPts: 10, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model()
	if m == nil {
		t.Fatal("sharded run returned no model")
	}
	if m.Clusters() != res.Clusters || m.Dim() != 2 {
		t.Fatalf("model clusters=%d dim=%d, want %d/2", m.Clusters(), m.Dim(), res.Clusters)
	}
	if m.Snapshots() == 0 {
		t.Fatal("model retained no snapshots")
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := loaded.Assign(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for i, l := range labels {
		if l == res.Labels[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(labels)); frac < 0.9 {
		t.Fatalf("model assigns only %.2f of training points to their clusters", frac)
	}
}

// TestRunShardedFile: the out-of-core entry point matches the in-memory
// sharded run bit-for-bit, for both file precisions.
func TestRunShardedFile(t *testing.T) {
	dir := t.TempDir()
	for _, prec := range []Precision{PrecisionF64, PrecisionF32} {
		ds, err := NewDataset(stripRows(5, 180, 5))
		if err != nil {
			t.Fatal(err)
		}
		ds, err = ds.ToPrecision(prec)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "pts_"+prec.String()+".bin")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := ds.WriteBinary(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		opts := Options{Eps: 3, MinPts: 10, Shards: 4}
		want, err := RunSharded(ds, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunShardedFile(path, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Labels {
			if got.Labels[i] != want.Labels[i] {
				t.Fatalf("%v: file label[%d] = %d, want %d", prec, i, got.Labels[i], want.Labels[i])
			}
		}
		if got.Model() == nil || got.Model().Precision() != prec {
			t.Fatalf("%v: file-run model precision wrong", prec)
		}

		// And the public binary round trip itself.
		raw, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ReadBinary(raw)
		raw.Close()
		if err != nil {
			t.Fatal(err)
		}
		if back.Len() != ds.Len() || back.Precision() != prec {
			t.Fatalf("%v: ReadBinary len=%d prec=%v", prec, back.Len(), back.Precision())
		}
	}
}

// TestRunShardedRejectsWarmFrom: warm restarts reference whole-dataset point
// ids and are rejected up front in sharded mode.
func TestRunShardedRejectsWarmFrom(t *testing.T) {
	ds, err := NewDataset(stripRows(2, 100, 6))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Cluster(ds, Options{Eps: 3, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunSharded(ds, Options{Eps: 3, MinPts: 10, Shards: 2, WarmFrom: res.Model()})
	if err == nil {
		t.Fatal("WarmFrom accepted in sharded mode")
	}
}
