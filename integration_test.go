package dbsvec

import (
	"bytes"
	"strings"
	"testing"

	"dbsvec/internal/data"
)

// TestEndToEndPipeline drives the full public workflow: generate → cluster
// with every algorithm → score → render → serialize → re-load.
func TestEndToEndPipeline(t *testing.T) {
	raw := data.Blobs(1500, 2, 4, 2, 100, 0.05, 3)
	ds, err := FromFlat(append([]float64(nil), raw.Coords()...), 2)
	if err != nil {
		t.Fatal(err)
	}
	const (
		eps    = 3.0
		minPts = 8
	)

	exact, err := DBSCAN(ds, eps, minPts, IndexKDTree)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Clusters != 4 {
		t.Logf("note: ground truth found %d clusters (expected ~4)", exact.Clusters)
	}

	fast, err := Cluster(ds, Options{Eps: eps, MinPts: minPts, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Quality gates.
	rec, err := PairRecall(exact, fast)
	if err != nil {
		t.Fatal(err)
	}
	if rec < 0.98 {
		t.Errorf("pipeline recall %v below 0.98", rec)
	}
	agree, err := NoiseAgreement(exact, fast)
	if err != nil {
		t.Fatal(err)
	}
	if agree != 1 {
		t.Errorf("noise agreement %v, want 1", agree)
	}
	comp, err := Compactness(ds, fast)
	if err != nil {
		t.Fatal(err)
	}
	sep, err := Separation(ds, fast)
	if err != nil {
		t.Fatal(err)
	}
	if comp <= 0 {
		t.Errorf("compactness %v should be positive for separated blobs", comp)
	}
	if sep <= 0 {
		t.Errorf("separation %v should be positive", sep)
	}

	// Render.
	var svg bytes.Buffer
	if err := WriteSVG(&svg, ds, fast, PlotOptions{Title: "pipeline"}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(svg.String(), "<circle") != ds.Len() {
		t.Errorf("SVG circle count %d != %d points", strings.Count(svg.String(), "<circle"), ds.Len())
	}

	// Serialize with labels and re-load the coordinates.
	var csv bytes.Buffer
	if err := ds.WriteCSV(&csv, fast); err != nil {
		t.Fatal(err)
	}
	reloaded, err := ReadCSV(strings.NewReader(csv.String()))
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != ds.Len() || reloaded.Dim() != 3 { // 2 dims + label column
		t.Errorf("reloaded %dx%d, want %dx3", reloaded.Len(), reloaded.Dim(), ds.Len())
	}
	// The label column must match the result labels.
	for i := 0; i < reloaded.Len(); i++ {
		if int32(reloaded.Point(i)[2]) != fast.Labels[i] {
			t.Fatalf("label column mismatch at %d", i)
		}
	}
}

// TestCrossAlgorithmARI checks that every exact algorithm achieves ARI 1
// against DBSCAN (up to noise conventions) while the approximations stay
// high.
func TestCrossAlgorithmARI(t *testing.T) {
	raw := data.Blobs(1000, 3, 3, 2, 100, 0.03, 4)
	ds, err := FromFlat(append([]float64(nil), raw.Coords()...), 3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := DBSCAN(ds, 4, 8, IndexRTree)
	if err != nil {
		t.Fatal(err)
	}
	nq, err := NQDBSCAN(ds, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := ARI(exact, nq)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.9999 {
		t.Errorf("NQ-DBSCAN ARI %v, want 1 (exact algorithm)", ari)
	}
	fast, err := Cluster(ds, Options{Eps: 4, MinPts: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ari, err = ARI(exact, fast)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.98 {
		t.Errorf("DBSVEC ARI %v below 0.98", ari)
	}
}

// TestParallelIndexMatchesLinear ensures the parallel backend changes
// nothing about DBSVEC's output.
func TestParallelIndexMatchesLinear(t *testing.T) {
	raw := data.Blobs(800, 2, 2, 2, 100, 0.05, 5)
	ds, err := FromFlat(append([]float64(nil), raw.Coords()...), 2)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Cluster(ds, Options{Eps: 3, MinPts: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Cluster(ds, Options{Eps: 3, MinPts: 8, Seed: 5, Index: IndexParallel})
	if err != nil {
		t.Fatal(err)
	}
	if a.Clusters != b.Clusters {
		t.Fatalf("cluster counts differ: %d vs %d", a.Clusters, b.Clusters)
	}
	for i := range a.Labels {
		if (a.Labels[i] == Noise) != (b.Labels[i] == Noise) {
			t.Fatalf("noise status differs at %d", i)
		}
	}
}
