// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on this repository's implementations and synthetic
// dataset stand-ins. Each experiment prints the same rows/series the paper
// reports; EXPERIMENTS.md records paper-vs-measured values.
//
// The package is shared between cmd/benchall (human-facing runs) and the
// repository-level testing.B benchmarks.
package experiments

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"time"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/lshdbscan"
	"dbsvec/internal/nqdbscan"
	"dbsvec/internal/rhodbscan"
	"dbsvec/internal/vec"
)

// clusterResult aliases the shared result type so experiment tables can
// name it without importing the cluster package everywhere.
type clusterResult = cluster.Result

// Config steers experiment scale.
type Config struct {
	// Quick selects reduced cardinalities so the whole harness finishes in
	// minutes; Full approaches the paper's scales (hours).
	Quick bool
	// Seed drives all dataset generation and randomized algorithms.
	Seed int64
	// Budget is a soft per-algorithm-run time limit standing in for the
	// paper's 10-hour cap: runs predicted (by prior samples) to exceed it
	// are skipped and reported as "-". 0 selects 30s in quick mode, 10min
	// otherwise.
	Budget time.Duration
	// Workers sets the query-engine worker count for DBSVEC runs
	// (core.Options.Workers); 0 selects all CPUs.
	Workers int
	// RunTimeout, when positive, arms a hard per-run wall-clock budget
	// (core.Budget.MaxDuration) on every DBSVEC run. Unlike Budget — which
	// skips runs predicted to be slow — a tripped RunTimeout stops the run
	// in flight and the experiment proceeds with the partial clustering.
	RunTimeout time.Duration
	// SVDDJSONPath, when non-empty, makes the "svdd" experiment write its
	// machine-readable report (SVDDBenchReport) to this file.
	SVDDJSONPath string
	// IndexJSONPath, when non-empty, makes the "index" experiment write its
	// machine-readable report (IndexBenchReport) to this file.
	IndexJSONPath string
	// HighdimJSONPath, when non-empty, makes the "highdim" experiment write
	// its machine-readable report (HighdimReport) to this file.
	HighdimJSONPath string
	// ShardJSONPath, when non-empty, makes the "shard" experiment write its
	// machine-readable report (ShardReport) to this file.
	ShardJSONPath string
	// Precision selects the point-storage mode datasets are generated in
	// (vec.F64 default). The precision-dimension sections of the svdd and
	// index benchmarks measure both modes regardless; this knob converts the
	// main experiment datasets, mirroring the CLI -precision flag.
	Precision vec.Precision
}

// dataset applies the configured storage precision to a generated dataset.
// Conversion to F32 cannot fail for the bounded synthetic generators, so the
// error path collapses to a panic guard.
func (c Config) dataset(ds *vec.Dataset) *vec.Dataset {
	out, err := ds.ToPrecision(c.Precision)
	if err != nil {
		panic(fmt.Sprintf("experiments: precision conversion: %v", err))
	}
	return out
}

func (c Config) budget() time.Duration {
	if c.Budget != 0 {
		return c.Budget
	}
	if c.Quick {
		return 30 * time.Second
	}
	return 10 * time.Minute
}

// algoResult is one timed clustering run.
type algoResult struct {
	res     *cluster.Result
	elapsed time.Duration
	skipped bool
}

// timed runs fn and captures elapsed wall time.
func timed(fn func() (*cluster.Result, error)) (algoResult, error) {
	start := time.Now()
	res, err := fn()
	if err != nil {
		return algoResult{}, err
	}
	return algoResult{res: res, elapsed: time.Since(start)}, nil
}

// skipped is the placeholder for runs beyond the budget.
func skipped() algoResult { return algoResult{skipped: true} }

func fmtDur(a algoResult) string {
	if a.skipped {
		return "-"
	}
	return fmt.Sprintf("%.3fs", a.elapsed.Seconds())
}

// Algorithms. Each returns a runnable closure for the given dataset and
// parameters, used uniformly across experiments.

func runDBSVEC(ds *vec.Dataset, eps float64, minPts int, cfg Config) func() (*cluster.Result, error) {
	return runDBSVECOpts(ds, core.Options{
		Eps: eps, MinPts: minPts, Seed: cfg.Seed, Workers: cfg.Workers,
		Budget: core.Budget{MaxDuration: cfg.RunTimeout},
	})
}

func runDBSVECOpts(ds *vec.Dataset, opts core.Options) func() (*cluster.Result, error) {
	return func() (*cluster.Result, error) {
		res, _, err := core.Run(ds, opts)
		// A tripped run budget still carries a valid partial clustering;
		// experiments report it rather than aborting the whole table.
		var be *core.BudgetExceededError
		if errors.As(err, &be) && res != nil {
			return res, nil
		}
		return res, err
	}
}

func runRDBSCAN(ds *vec.Dataset, eps float64, minPts int) func() (*cluster.Result, error) {
	return func() (*cluster.Result, error) {
		res, _, err := dbscan.Run(ds, dbscan.Params{Eps: eps, MinPts: minPts}, rtree.Build)
		return res, err
	}
}

func runKDDBSCAN(ds *vec.Dataset, eps float64, minPts int) func() (*cluster.Result, error) {
	return func() (*cluster.Result, error) {
		res, _, err := dbscan.Run(ds, dbscan.Params{Eps: eps, MinPts: minPts}, kdtree.Build)
		return res, err
	}
}

func runRho(ds *vec.Dataset, eps float64, minPts int) func() (*cluster.Result, error) {
	return func() (*cluster.Result, error) {
		res, _, err := rhodbscan.Run(ds, rhodbscan.Params{Eps: eps, MinPts: minPts, Rho: 0.001})
		return res, err
	}
}

func runLSH(ds *vec.Dataset, eps float64, minPts int, seed int64) func() (*cluster.Result, error) {
	return func() (*cluster.Result, error) {
		p := lshdbscan.Params{Eps: eps, MinPts: minPts}
		p.Hash.Seed = seed
		res, _, err := lshdbscan.Run(ds, p)
		return res, err
	}
}

func runNQ(ds *vec.Dataset, eps float64, minPts int) func() (*cluster.Result, error) {
	return func() (*cluster.Result, error) {
		res, _, err := nqdbscan.Run(ds, nqdbscan.Params{Eps: eps, MinPts: minPts})
		return res, err
	}
}

// sampleForMetrics returns up to cap point ids drawn without replacement,
// used to keep O(n²) quality metrics tractable.
func sampleForMetrics(n, cap int, seed int64) []int32 {
	if n <= cap {
		return vec.Iota(n)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:cap]
	ids := make([]int32, cap)
	for i, p := range perm {
		ids[i] = int32(p)
	}
	return ids
}

// subResult restricts a clustering result to the given point ids.
func subResult(res *cluster.Result, ids []int32) *cluster.Result {
	labels := make([]int32, len(ids))
	for i, id := range ids {
		labels[i] = res.Labels[id]
	}
	out := &cluster.Result{Labels: labels}
	return out.Compact()
}

// header prints an experiment banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}
