package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"dbsvec/internal/data"
	"dbsvec/internal/engine"
	"dbsvec/internal/svdd"
	"dbsvec/internal/vec"
)

// SVDD training fast-path micro-benchmark. Unlike the figure experiments it
// measures one component (svdd.Train) in isolation, at the paper's default
// maximum target size ñ = 1024's historical half (ñ = 512, d = 8), so the
// three fast-path layers — parallel kernel fill, shrinking SMO and
// warm-started incremental rounds — can be attributed individually.

// svddBenchN and svddBenchD pin the benchmark shape; the acceptance target
// for the fast path (≥2x vs the serial baseline at 8 workers) is recorded
// against exactly this shape in internal/svdd/README.md.
const (
	svddBenchN = 512
	svddBenchD = 8
)

// SVDDBenchVariant is one solver configuration's accumulated timings.
type SVDDBenchVariant struct {
	// Name identifies the configuration: "serial" (workers=1, no
	// shrinking — the pre-fast-path baseline), "parallel-fill",
	// "parallel+shrink", the float32-storage "parallel+shrink-f32", and the
	// incremental pair "incremental-cold" / "incremental-warm".
	Name string `json:"name"`
	// Precision is the dataset storage mode the variant trained on
	// ("f64"/"f32"); only the -f32 variant uses float32 storage.
	Precision string `json:"precision"`
	// Workers is the kernel-fill worker count used.
	Workers int `json:"workers"`
	// Shrink and WarmStart record which fast-path layers were active.
	Shrink    bool `json:"shrink"`
	WarmStart bool `json:"warm_start"`
	// Rounds is the number of svdd.Train calls timed.
	Rounds int `json:"rounds"`
	// Iterations is the total SMO pair updates across all rounds.
	Iterations int `json:"smo_iterations"`
	// Per-stage wall clock summed over all rounds, in nanoseconds.
	FillNs   int64 `json:"fill_ns"`
	SolveNs  int64 `json:"solve_ns"`
	FinishNs int64 `json:"finish_ns"`
	TotalNs  int64 `json:"total_ns"`
	// Speedup is TotalNs of this variant's baseline divided by its own:
	// the serial variant for the fixed-target configurations, the f64
	// parallel+shrink variant for the f32 one, and the cold incremental
	// variant for the warm one. 1.0 for the baselines themselves.
	Speedup float64 `json:"speedup_vs_baseline"`
}

// SVDDBenchReport is the machine-readable result benchall writes to
// BENCH_svdd.json.
type SVDDBenchReport struct {
	N                 int                `json:"n"`
	Dim               int                `json:"dim"`
	Seed              int64              `json:"seed"`
	Repeats           int                `json:"repeats"`
	IncrementalRounds int                `json:"incremental_rounds"`
	Variants          []SVDDBenchVariant `json:"variants"`
}

// accumulate folds one trained model's timings into the variant.
func (v *SVDDBenchVariant) accumulate(m *svdd.Model) {
	v.Rounds++
	v.Iterations += m.Iterations
	v.FillNs += m.Times.Fill.Nanoseconds()
	v.SolveNs += m.Times.Solve.Nanoseconds()
	v.FinishNs += m.Times.Finish.Nanoseconds()
	v.TotalNs += m.Times.Total().Nanoseconds()
}

// svddBenchConfig is the shared solver setup: adaptive weights on (as in a
// real DBSVEC round) with fresh zero counts, second-order selection off.
func svddBenchConfig(n int) svdd.Config {
	return svdd.Config{
		Nu:     0.1,
		Times:  make([]int, n),
		Tol:    1e-4,
		Dim:    svddBenchD,
		MinPts: 100,
	}
}

// RunSVDDBench executes the micro-benchmark and returns the report. Workers
// comes from cfg (0 = all CPUs); repeats scale with cfg.Quick.
func RunSVDDBench(cfg Config) (*SVDDBenchReport, error) {
	repeats := 20
	if cfg.Quick {
		repeats = 5
	}
	workers := engine.ResolveWorkers(cfg.Workers)
	ds := data.Blobs(svddBenchN, svddBenchD, 4, 30, 1000, 0.02, cfg.Seed)
	ids := vec.Iota(ds.Len())

	rep := &SVDDBenchReport{
		N:       svddBenchN,
		Dim:     svddBenchD,
		Seed:    cfg.Seed,
		Repeats: repeats,
	}

	// Float32-storage twin of the dataset: one quantization, then bit-exact
	// float64 arithmetic over the mirror (see internal/vec). The -f32 variant
	// measures what the storage mode buys the kernel fill.
	ds32, err := ds.ToPrecision(vec.F32)
	if err != nil {
		return nil, fmt.Errorf("svdd bench f32 conversion: %w", err)
	}

	// Fixed-target configurations: the same 512-point training repeated,
	// layers switched on one at a time; the last swaps in float32 storage on
	// top of the full fast path.
	fixed := []SVDDBenchVariant{
		{Name: "serial", Precision: "f64", Workers: 1},
		{Name: "parallel-fill", Precision: "f64", Workers: workers},
		{Name: "parallel+shrink", Precision: "f64", Workers: workers, Shrink: true},
		{Name: "parallel+shrink-f32", Precision: "f32", Workers: workers, Shrink: true},
	}
	for vi := range fixed {
		v := &fixed[vi]
		vds := ds
		if v.Precision == "f32" {
			vds = ds32
		}
		for r := 0; r < repeats; r++ {
			c := svddBenchConfig(len(ids))
			c.Workers = v.Workers
			c.NoShrink = !v.Shrink
			m, err := svdd.Train(vds, ids, c)
			if err != nil && m == nil {
				return nil, fmt.Errorf("svdd bench %s: %w", v.Name, err)
			}
			v.accumulate(m)
		}
	}
	serialTotal := fixed[0].TotalNs
	for vi := range fixed {
		fixed[vi].Speedup = speedup(serialTotal, fixed[vi].TotalNs)
	}
	// The f32 variant's headline number is vs the same configuration in f64.
	fixed[3].Speedup = speedup(fixed[2].TotalNs, fixed[3].TotalNs)

	// Incremental configurations: a growing target (256 → 512 in steps of
	// 64, mirroring expansion rounds absorbing new points), cold-started vs
	// warm-started from the previous round's multipliers.
	steps := []int{256, 320, 384, 448, svddBenchN}
	rep.IncrementalRounds = len(steps)
	inc := []SVDDBenchVariant{
		{Name: "incremental-cold", Precision: "f64", Workers: workers, Shrink: true},
		{Name: "incremental-warm", Precision: "f64", Workers: workers, Shrink: true, WarmStart: true},
	}
	for vi := range inc {
		v := &inc[vi]
		for r := 0; r < repeats; r++ {
			var prev *svdd.Model
			for _, n := range steps {
				c := svddBenchConfig(n)
				c.Workers = v.Workers
				c.NoShrink = !v.Shrink
				if v.WarmStart && prev != nil {
					// Surviving ids are the prefix; new points carry 0.
					warm := make([]float64, n)
					copy(warm, prev.Alpha)
					c.WarmAlpha = warm
				}
				m, err := svdd.Train(ds, ids[:n], c)
				if err != nil && m == nil {
					return nil, fmt.Errorf("svdd bench %s: %w", v.Name, err)
				}
				v.accumulate(m)
				prev = m
			}
		}
	}
	coldTotal := inc[0].TotalNs
	for vi := range inc {
		inc[vi].Speedup = speedup(coldTotal, inc[vi].TotalNs)
	}

	rep.Variants = append(fixed, inc...)
	return rep, nil
}

func speedup(baseline, own int64) float64 {
	if own <= 0 {
		return 0
	}
	return float64(baseline) / float64(own)
}

// SVDDPerf is the registry entry: it prints the variant table and, when
// cfg.SVDDJSONPath is set, writes the machine-readable report there.
func SVDDPerf(w io.Writer, cfg Config) error {
	header(w, "SVDD training fast path (n=512, d=8): parallel fill, shrinking, warm start")
	rep, err := RunSVDDBench(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-20s %5s %8s %8s %10s %12s %12s %12s %9s\n",
		"variant", "prec", "workers", "rounds", "smoIters", "fill", "solve", "total", "speedup")
	for _, v := range rep.Variants {
		fmt.Fprintf(w, "%-20s %5s %8d %8d %10d %11.3fms %11.3fms %11.3fms %8.2fx\n",
			v.Name, v.Precision, v.Workers, v.Rounds, v.Iterations,
			float64(v.FillNs)/1e6, float64(v.SolveNs)/1e6, float64(v.TotalNs)/1e6, v.Speedup)
	}
	if cfg.SVDDJSONPath != "" {
		if err := WriteSVDDBenchJSON(cfg.SVDDJSONPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.SVDDJSONPath)
	}
	return nil
}

// WriteSVDDBenchJSON writes the report as indented JSON.
func WriteSVDDBenchJSON(path string, rep *SVDDBenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
