package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/eval"
	"dbsvec/internal/shard"
	"dbsvec/internal/vec"
)

// Sharded out-of-core execution benchmark: eps-halo slab runs against the
// single-shot baseline on the paper's SeedSpreader workload (d=8, eps=2000,
// minPts=100 on the [0,1e5] domain — eps a fifth of the fig6a radius, the
// regime sharding targets: halos a small fraction of the axis span). Three
// modes per cardinality and storage precision:
//
//   - single: one core.Run over the whole dataset (the baseline), peak heap
//     sampled the same way the sharded runs sample theirs;
//   - sharded: shard.Run over an in-memory source, one slab in flight —
//     range queries scan O(slab) instead of O(n), which is where the
//     wall-clock win comes from even on one CPU;
//   - outofcore: shard.Run streaming slabs from a temporary binary file with
//     the dataset dropped from memory first, so the sampled peak heap shows
//     the O(slab) footprint against the dataset's in-RAM size.
//
// Every non-single entry reports its ARI against the same-precision single
// run; on this workload the sharded merge is expected to reproduce the
// single-shot labeling (ARI 1.0, modulo DBSVEC's own approximation at
// cluster borders).

// Benchmark shape pinned for the committed BENCH_shard.json.
const (
	shardBenchDim    = 8
	shardBenchEps    = 2000
	shardBenchMinPts = 100
)

// ShardEntry is one timed run of one mode.
type ShardEntry struct {
	Mode      string `json:"mode"` // single | sharded | outofcore
	Precision string `json:"precision"`
	N         int    `json:"n"`
	Dim       int    `json:"dim"`
	Shards    int    `json:"shards"`
	ElapsedNs int64  `json:"elapsed_ns"`
	Clusters  int    `json:"clusters"`
	// ARIVsSingle compares against the same-precision single run (1.0 for
	// the single rows themselves).
	ARIVsSingle float64 `json:"ari_vs_single"`
	// SpeedupVsSingle is the single run's wall clock divided by this one's.
	SpeedupVsSingle float64 `json:"speedup_vs_single"`
	// PeakHeapBytes is the sampled peak live heap during the run;
	// DatasetBytes the dataset's in-RAM coordinate footprint (f32 storage
	// carries a float64 master plus the float32 mirror). Their ratio is the
	// out-of-core story: outofcore rows stay well below 1.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	DatasetBytes  int64  `json:"dataset_bytes"`
	// BoundaryPoints / CrossMerges report the halo-merge work (0 for single).
	BoundaryPoints int `json:"boundary_points"`
	CrossMerges    int `json:"cross_merges"`
}

// ShardReport is the machine-readable result benchall writes to
// BENCH_shard.json.
type ShardReport struct {
	Seed    int64        `json:"seed"`
	Eps     float64      `json:"eps"`
	MinPts  int          `json:"min_pts"`
	Dim     int          `json:"dim"`
	Ns      []int        `json:"ns"`
	Shards  []int        `json:"shards"`
	Workers int          `json:"workers"`
	Entries []ShardEntry `json:"entries"`
}

// datasetBytes is the in-RAM coordinate footprint of n points in d
// dimensions at the given precision: a float64 master always, plus the
// float32 mirror in F32 storage.
func datasetBytes(n, d int, prec vec.Precision) int64 {
	per := int64(8)
	if prec == vec.F32 {
		per = 12
	}
	return int64(n) * int64(d) * per
}

// RunShardBench executes the benchmark and returns the report.
func RunShardBench(cfg Config) (*ShardReport, error) {
	ns := []int{100_000, 300_000, 1_000_000}
	shardCounts := []int{4, 8}
	if cfg.Quick {
		ns = []int{10_000, 30_000}
		shardCounts = []int{2, 4}
	}
	rep := &ShardReport{
		Seed:    cfg.Seed,
		Eps:     shardBenchEps,
		MinPts:  shardBenchMinPts,
		Dim:     shardBenchDim,
		Ns:      ns,
		Shards:  shardCounts,
		Workers: cfg.Workers,
	}
	for _, n := range ns {
		for _, prec := range []vec.Precision{vec.F64, vec.F32} {
			if err := runShardBenchPoint(cfg, rep, n, prec); err != nil {
				return nil, err
			}
		}
	}
	return rep, nil
}

// runShardBenchPoint measures every mode at one cardinality and precision.
func runShardBenchPoint(cfg Config, rep *ShardReport, n int, prec vec.Precision) error {
	copts := core.Options{
		Eps: shardBenchEps, MinPts: shardBenchMinPts, Seed: cfg.Seed, Workers: cfg.Workers,
		Budget: core.Budget{MaxDuration: cfg.RunTimeout},
	}
	footprint := datasetBytes(n, shardBenchDim, prec)
	precName := "f64"
	if prec == vec.F32 {
		precName = "f32"
	}

	// Generate, run the in-memory modes, and spill the binary file — inside a
	// closure so the dataset itself becomes collectible before the
	// out-of-core run measures its peak heap.
	var (
		single   *clusterResult
		singleNs int64
		binPath  string
	)
	err := func() error {
		ds := data.SeedSpreader{N: n, D: shardBenchDim, Seed: cfg.Seed}.Generate()
		ds, err := ds.ToPrecision(prec)
		if err != nil {
			return fmt.Errorf("shard bench precision: %w", err)
		}

		start := time.Now()
		peak, err := shard.MeasurePeakHeap(0, func() error {
			single, _, err = core.Run(ds, copts)
			return err
		})
		if err != nil {
			return fmt.Errorf("shard bench single n=%d: %w", n, err)
		}
		singleNs = time.Since(start).Nanoseconds()
		rep.Entries = append(rep.Entries, ShardEntry{
			Mode: "single", Precision: precName, N: n, Dim: shardBenchDim, Shards: 1,
			ElapsedNs: singleNs, Clusters: single.Clusters,
			ARIVsSingle: 1, SpeedupVsSingle: 1,
			PeakHeapBytes: peak, DatasetBytes: footprint,
		})

		for _, k := range rep.Shards {
			start := time.Now()
			res, _, sst, err := shard.Run(shard.NewMemSource(ds), shard.Options{
				Core: copts, Shards: k, Concurrency: 1,
			})
			if err != nil {
				return fmt.Errorf("shard bench sharded k=%d n=%d: %w", k, n, err)
			}
			e, err := shardEntry("sharded", precName, n, k, time.Since(start).Nanoseconds(), res, &sst, single, singleNs, footprint)
			if err != nil {
				return err
			}
			rep.Entries = append(rep.Entries, e)
		}

		f, err := os.CreateTemp("", "dbsvec-shardbench-*.bin")
		if err != nil {
			return err
		}
		binPath = f.Name()
		if err := data.WriteBinary(f, ds); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}()
	if err != nil {
		if binPath != "" {
			os.Remove(binPath)
		}
		return err
	}
	defer os.Remove(binPath)

	// Out-of-core: the dataset now lives only on disk. Settle the heap so the
	// sampled peak reflects the streaming run, not the generation garbage.
	// Every shard count runs, because footprint is not monotone in k: more
	// slabs mean smaller owned sets but force cuts into denser mass, growing
	// the halo bands the boundary pass copies.
	runtime.GC()
	fs, err := shard.OpenFile(binPath)
	if err != nil {
		return err
	}
	defer fs.Close()
	for _, k := range rep.Shards {
		start := time.Now()
		res, _, sst, err := shard.Run(fs, shard.Options{Core: copts, Shards: k, Concurrency: 1})
		if err != nil {
			return fmt.Errorf("shard bench outofcore n=%d: %w", n, err)
		}
		e, err := shardEntry("outofcore", precName, n, k, time.Since(start).Nanoseconds(), res, &sst, single, singleNs, footprint)
		if err != nil {
			return err
		}
		rep.Entries = append(rep.Entries, e)
		runtime.GC()
	}
	return nil
}

// shardEntry folds one sharded run into a report row.
func shardEntry(mode, prec string, n, k int, elapsedNs int64, res *clusterResult, sst *shard.Stats, single *clusterResult, singleNs int64, footprint int64) (ShardEntry, error) {
	ari, err := eval.AdjustedRandIndex(single, res)
	if err != nil {
		return ShardEntry{}, fmt.Errorf("shard bench ari: %w", err)
	}
	return ShardEntry{
		Mode: mode, Precision: prec, N: n, Dim: shardBenchDim, Shards: k,
		ElapsedNs: elapsedNs, Clusters: res.Clusters,
		ARIVsSingle: ari, SpeedupVsSingle: speedup(singleNs, elapsedNs),
		PeakHeapBytes: sst.PeakHeapBytes, DatasetBytes: footprint,
		BoundaryPoints: sst.BoundaryPoints, CrossMerges: sst.CrossMerges,
	}, nil
}

// ShardBench is the registry entry: it prints the comparison table and, when
// cfg.ShardJSONPath is set, writes the machine-readable report there.
func ShardBench(w io.Writer, cfg Config) error {
	header(w, "Sharded out-of-core execution: slabs vs single-shot")
	rep, err := RunShardBench(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "eps=%g minPts=%d d=%d (SeedSpreader)\n\n", rep.Eps, rep.MinPts, rep.Dim)
	fmt.Fprintf(w, "%-10s %5s %9s %7s %11s %9s %8s %8s %10s %10s\n",
		"mode", "prec", "n", "shards", "elapsed", "clusters", "ARI", "speedup", "peakheap", "dataset")
	for _, e := range rep.Entries {
		fmt.Fprintf(w, "%-10s %5s %9d %7d %10.3fs %9d %8.4f %7.2fx %9.1fM %9.1fM\n",
			e.Mode, e.Precision, e.N, e.Shards, float64(e.ElapsedNs)/1e9, e.Clusters,
			e.ARIVsSingle, e.SpeedupVsSingle,
			float64(e.PeakHeapBytes)/1e6, float64(e.DatasetBytes)/1e6)
	}
	if cfg.ShardJSONPath != "" {
		if err := WriteShardJSON(cfg.ShardJSONPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.ShardJSONPath)
	}
	return nil
}

// WriteShardJSON writes the report as indented JSON.
func WriteShardJSON(path string, rep *ShardReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
