package experiments

import (
	"strings"
	"testing"
)

func TestCompareShapeAccepts(t *testing.T) {
	cases := []struct{ name, cur, base string }{
		{"identical", `{"a":1,"b":[{"x":2}]}`, `{"a":1,"b":[{"x":3}]}`},
		{"different values", `{"a":99,"s":"other"}`, `{"a":1,"s":"text"}`},
		{"different array lengths", `{"v":[1,2,3,4,5]}`, `{"v":[9]}`},
		{"both empty arrays", `{"v":[]}`, `{"v":[]}`},
		{"null baseline", `{"v":{"anything":1}}`, `{"v":null}`},
	}
	for _, tc := range cases {
		if err := CompareShape([]byte(tc.cur), []byte(tc.base)); err != nil {
			t.Errorf("%s: unexpected mismatch: %v", tc.name, err)
		}
	}
}

func TestCompareShapeRejects(t *testing.T) {
	cases := []struct{ name, cur, base, wantIn string }{
		{"missing key", `{"a":1}`, `{"a":1,"b":2}`, `missing key "b"`},
		{"extra key", `{"a":1,"b":2}`, `{"a":1}`, `unexpected key "b"`},
		{"type change", `{"a":"1"}`, `{"a":1}`, "expected number"},
		{"object became array", `{"a":[1]}`, `{"a":{"x":1}}`, "expected object"},
		{"emptied array", `{"v":[]}`, `{"v":[1]}`, "emptiness differs"},
		{"nested element drift", `{"v":[{"x":1}]}`, `{"v":[{"y":1}]}`, `missing key "y"`},
		{"invalid current", `{`, `{}`, "not valid JSON"},
		{"invalid baseline", `{}`, `{`, "not valid JSON"},
	}
	for _, tc := range cases {
		err := CompareShape([]byte(tc.cur), []byte(tc.base))
		if err == nil {
			t.Errorf("%s: mismatch not detected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantIn) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantIn)
		}
	}
}
