package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dbsvec/internal/vec"
)

// tinyCfg keeps experiment smoke tests fast.
func tinyCfg() Config {
	return Config{Quick: true, Seed: 1, Budget: 5 * time.Second}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(all))
	}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		got, err := ByID(e.ID)
		if err != nil || got.ID != e.ID {
			t.Errorf("ByID(%s) = %+v, %v", e.ID, got, err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("want error for unknown id")
	}
}

func TestFig1Smoke(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DBSCAN", "DBSVEC", "pair recall"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestFig8Smoke(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg()
	if err := Fig8(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "nu*") {
		t.Errorf("fig8 output unexpected:\n%s", buf.String())
	}
}

func TestTable2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("table2 runs several clusterings")
	}
	var buf bytes.Buffer
	if err := Table2(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "theta/n") {
		t.Errorf("table2 output missing theta column:\n%s", out)
	}
}

func TestIndexPerfSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("index bench builds several large structures")
	}
	var buf bytes.Buffer
	if err := IndexPerf(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"kdtree", "rtree", "vptree", "grid", "speedup", "queries/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("index bench output missing %q:\n%s", want, out)
		}
	}
}

func TestHighdimSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("highdim bench builds several large structures")
	}
	var buf bytes.Buffer
	if err := Highdim(&buf, tinyCfg()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"rproj", "linear", "speedup", "ARI vs linear", "1.0000"} {
		if !strings.Contains(out, want) {
			t.Errorf("highdim output missing %q:\n%s", want, out)
		}
	}
}

func TestSampleForMetrics(t *testing.T) {
	ids := sampleForMetrics(10, 20, 1)
	if len(ids) != 10 {
		t.Errorf("small n should return all ids, got %d", len(ids))
	}
	ids = sampleForMetrics(100, 20, 1)
	if len(ids) != 20 {
		t.Errorf("capped sample size = %d", len(ids))
	}
	seen := map[int32]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id in sample")
		}
		if id < 0 || id >= 100 {
			t.Fatalf("id %d out of range", id)
		}
		seen[id] = true
	}
}

func TestSubResult(t *testing.T) {
	res := &clusterResult{Labels: []int32{5, 5, -1, 7}}
	sub := subResult(res, []int32{0, 3, 2})
	if sub.Labels[0] != 0 || sub.Labels[1] != 1 || sub.Labels[2] != -1 {
		t.Errorf("subResult labels = %v", sub.Labels)
	}
	if sub.Clusters != 2 {
		t.Errorf("subResult clusters = %d", sub.Clusters)
	}
}

func TestShardBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("shard bench runs several clusterings")
	}
	rep := &ShardReport{
		Seed: 1, Eps: shardBenchEps, MinPts: shardBenchMinPts, Dim: shardBenchDim,
		Ns: []int{4000}, Shards: []int{2},
	}
	if err := runShardBenchPoint(tinyCfg(), rep, 4000, vec.F64); err != nil {
		t.Fatal(err)
	}
	if len(rep.Entries) != 3 {
		t.Fatalf("expected single+sharded+outofcore entries, got %d", len(rep.Entries))
	}
	modes := []string{"single", "sharded", "outofcore"}
	for i, e := range rep.Entries {
		if e.Mode != modes[i] {
			t.Errorf("entry %d mode = %q, want %q", i, e.Mode, modes[i])
		}
		if e.ElapsedNs <= 0 || e.Clusters == 0 {
			t.Errorf("%s entry not populated: %+v", e.Mode, e)
		}
		if e.ARIVsSingle < 0.99 {
			t.Errorf("%s ARI vs single = %v, want ~1", e.Mode, e.ARIVsSingle)
		}
		if e.DatasetBytes != 4000*shardBenchDim*8 {
			t.Errorf("%s dataset bytes = %d", e.Mode, e.DatasetBytes)
		}
	}

	path := t.TempDir() + "/shard.json"
	if err := WriteShardJSON(path, rep); err != nil {
		t.Fatal(err)
	}
	if err := CheckBaseline(path, path); err != nil {
		t.Errorf("report does not match its own schema: %v", err)
	}
}
