package experiments

import (
	"fmt"
	"io"
	"math"

	"dbsvec/internal/core"
	"dbsvec/internal/data"
)

// Table2 validates the complexity claims of Table II and Section III-D
// empirically: it runs DBSVEC over growing cardinalities and reports every
// term of θ = s + 1 + k + m + MinPts·l together with θ/n, which must stay
// far below 1 and shrink as n grows for the O(θn) analysis to hold. It also
// reports the growth exponent of DBSVEC's wall time between consecutive
// sizes (≈1 for the claimed near-linear behaviour, vs ≈2 for DBSCAN).
func Table2(w io.Writer, cfg Config) error {
	header(w, "Table II / Section III-D: empirical validation of the O(θn) cost model")
	sizes := []int{25000, 50000, 100000, 200000}
	if cfg.Quick {
		sizes = []int{5000, 10000, 20000, 40000}
	}
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %10s %10s %10s %10s\n",
		"n", "s", "k", "m", "l", "theta", "theta/n", "time", "exponent")
	var prevTime float64
	var prevN int
	for _, n := range sizes {
		ds := cfg.dataset(data.SeedSpreader{N: n, D: 8, Seed: cfg.Seed}.Generate())
		run, err := timed(func() (*clusterResult, error) {
			res, st, err := core.Run(ds, core.Options{Eps: effEps, MinPts: effMinPts, Seed: cfg.Seed, Workers: cfg.Workers})
			if err != nil {
				return nil, err
			}
			lastStats = st
			return res, nil
		})
		if err != nil {
			return err
		}
		st := lastStats
		theta := st.Theta(effMinPts)
		expStr := "-"
		secs := run.elapsed.Seconds()
		if prevN > 0 && prevTime > 0 {
			exp := math.Log(secs/prevTime) / math.Log(float64(n)/float64(prevN))
			expStr = fmt.Sprintf("%.2f", exp)
		}
		fmt.Fprintf(w, "%-10d %8d %8d %8d %8d %10.0f %10.4f %10.3fs %10s\n",
			n, st.Seeds, st.SupportVectors, st.Merges, st.NoiseList, theta,
			theta/float64(n), secs, expStr)
		prevTime, prevN = secs, n
	}
	fmt.Fprintln(w, "(theta/n must be << 1; paper claims s, k, m, l are all far smaller than n)")
	return nil
}

// lastStats smuggles the run statistics out of the timed closure; Table2 is
// single-threaded so a package variable is safe and keeps the timed helper
// uniform.
var lastStats core.Stats
