package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// CheckBaseline compares a freshly written machine-readable report against a
// committed baseline snapshot, by schema/shape rather than by value: the CI
// smoke must catch accidental report-format drift (renamed fields, dropped
// sections) without failing on timings, machine-dependent array lengths
// (e.g. worker-count sweeps sized by GOMAXPROCS), or run-to-run noise.
func CheckBaseline(reportPath, baselinePath string) error {
	cur, err := os.ReadFile(reportPath)
	if err != nil {
		return fmt.Errorf("experiments: reading report: %w", err)
	}
	base, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("experiments: reading baseline: %w", err)
	}
	if err := CompareShape(cur, base); err != nil {
		return fmt.Errorf("experiments: report %s drifted from baseline %s: %w", reportPath, baselinePath, err)
	}
	return nil
}

// CompareShape recursively checks that two JSON documents share one schema:
// objects must carry identical key sets, arrays must agree on emptiness and
// on the shape of their first element (lengths are machine-dependent and
// deliberately not compared), and scalars must have the same JSON type.
// Values are never compared.
func CompareShape(current, baseline []byte) error {
	var cur, base any
	if err := json.Unmarshal(current, &cur); err != nil {
		return fmt.Errorf("current report is not valid JSON: %w", err)
	}
	if err := json.Unmarshal(baseline, &base); err != nil {
		return fmt.Errorf("baseline is not valid JSON: %w", err)
	}
	return compareShape("$", cur, base)
}

func compareShape(path string, cur, base any) error {
	switch b := base.(type) {
	case map[string]any:
		c, ok := cur.(map[string]any)
		if !ok {
			return fmt.Errorf("%s: expected object, got %T", path, cur)
		}
		keys := make([]string, 0, len(b))
		for k := range b {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			cv, ok := c[k]
			if !ok {
				return fmt.Errorf("%s: missing key %q", path, k)
			}
			if err := compareShape(path+"."+k, cv, b[k]); err != nil {
				return err
			}
		}
		for k := range c {
			if _, ok := b[k]; !ok {
				return fmt.Errorf("%s: unexpected key %q", path, k)
			}
		}
		return nil
	case []any:
		c, ok := cur.([]any)
		if !ok {
			return fmt.Errorf("%s: expected array, got %T", path, cur)
		}
		if len(b) == 0 || len(c) == 0 {
			if len(b) != len(c) {
				return fmt.Errorf("%s: array emptiness differs (%d vs baseline %d elements)", path, len(c), len(b))
			}
			return nil
		}
		// Element shapes are homogeneous in every report; comparing the
		// first element catches schema drift without pinning lengths.
		return compareShape(path+"[0]", c[0], b[0])
	case float64:
		if _, ok := cur.(float64); !ok {
			return fmt.Errorf("%s: expected number, got %T", path, cur)
		}
	case string:
		if _, ok := cur.(string); !ok {
			return fmt.Errorf("%s: expected string, got %T", path, cur)
		}
	case bool:
		if _, ok := cur.(bool); !ok {
			return fmt.Errorf("%s: expected bool, got %T", path, cur)
		}
	case nil:
		// Baseline null pins nothing.
	}
	return nil
}
