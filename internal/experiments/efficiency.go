package experiments

import (
	"fmt"
	"io"
	"time"

	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/eval"
	"dbsvec/internal/svdd"
	"dbsvec/internal/vec"
)

// Paper defaults for the efficiency experiments (Section V-C): coordinates
// normalized to [0,10^5], MinPts=100, eps=5000.
const (
	effEps    = 5000.0
	effMinPts = 100
)

// sweepAlgo is one competitor in an efficiency sweep. disabled latches true
// once a run exceeds the budget, standing in for the paper's 10-hour cap.
type sweepAlgo struct {
	name     string
	run      func(ds *vec.Dataset) func() (*clusterResult, error)
	disabled bool
}

func effAlgos(cfg Config) []*sweepAlgo {
	return []*sweepAlgo{
		{name: "DBSVEC", run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return runDBSVEC(ds, effEps, effMinPts, cfg)
		}},
		{name: "R-DBSCAN", run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return runRDBSCAN(ds, effEps, effMinPts)
		}},
		{name: "kd-DBSCAN", run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return runKDDBSCAN(ds, effEps, effMinPts)
		}},
		{name: "rho-Appr", run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return runRho(ds, effEps, effMinPts)
		}},
		{name: "DBSCAN-LSH", run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return runLSH(ds, effEps, effMinPts, cfg.Seed)
		}},
		{name: "NQ-DBSCAN", run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return runNQ(ds, effEps, effMinPts)
		}},
	}
}

// runSweep times every algorithm on every dataset of the sweep, printing a
// row per dataset. Algorithms whose previous run blew the budget are
// skipped for the remaining (larger) inputs.
func runSweep(w io.Writer, algos []*sweepAlgo, labels []string, gen func(i int) *vec.Dataset, budget time.Duration) error {
	fmt.Fprintf(w, "%-12s", "")
	for _, a := range algos {
		fmt.Fprintf(w, " %12s", a.name)
	}
	fmt.Fprintln(w)
	for i, label := range labels {
		ds := gen(i)
		fmt.Fprintf(w, "%-12s", label)
		for _, a := range algos {
			if a.disabled {
				fmt.Fprintf(w, " %12s", "-")
				continue
			}
			run, err := timed(a.run(ds))
			if err != nil {
				return fmt.Errorf("%s on %s: %w", a.name, label, err)
			}
			if run.elapsed > budget {
				a.disabled = true
			}
			fmt.Fprintf(w, " %12s", fmtDur(run))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig6a reproduces Figure 6a: runtime vs cardinality on 8-dimensional
// synthetic data (paper: 100k..10M; quick mode: 5k..100k).
func Fig6a(w io.Writer, cfg Config) error {
	header(w, "Figure 6a: effect of cardinality n (d=8, MinPts=100, eps=5000)")
	sizes := []int{100000, 500000, 1000000, 2000000, 5000000, 10000000}
	if cfg.Quick {
		sizes = []int{5000, 10000, 20000, 50000, 100000}
	}
	labels := make([]string, len(sizes))
	for i, n := range sizes {
		labels[i] = fmt.Sprintf("n=%d", n)
	}
	return runSweep(w, effAlgos(cfg), labels, func(i int) *vec.Dataset {
		return cfg.dataset(data.SeedSpreader{N: sizes[i], D: 8, Seed: cfg.Seed}.Generate())
	}, cfg.budget())
}

// Fig6b reproduces Figure 6b: runtime vs dimensionality at fixed
// cardinality (paper: d=2..24 at n=2M; quick mode n=20k).
func Fig6b(w io.Writer, cfg Config) error {
	header(w, "Figure 6b: effect of dimensionality d (MinPts=100, eps=5000)")
	n := 2000000
	if cfg.Quick {
		n = 20000
	}
	dims := []int{2, 4, 8, 16, 24}
	labels := make([]string, len(dims))
	for i, d := range dims {
		labels[i] = fmt.Sprintf("d=%d", d)
	}
	return runSweep(w, effAlgos(cfg), labels, func(i int) *vec.Dataset {
		return cfg.dataset(data.SeedSpreader{N: n, D: dims[i], Seed: cfg.Seed}.Generate())
	}, cfg.budget())
}

// Fig7 reproduces Figure 7: runtime vs radius eps on the synthetic dataset
// (a) and the three real-world stand-ins (b: PAMAP2, c: Sensors,
// d: Corel-Image).
func Fig7(w io.Writer, cfg Config) error {
	radii := []float64{5000, 15000, 25000, 35000, 45000, 55000}
	nSynth, nReal := 2000000, 0 // real suites use their full cardinality
	if cfg.Quick {
		nSynth, nReal = 20000, 20000
	}

	sweepEps := func(title string, ds *vec.Dataset) error {
		header(w, title)
		algos := effAlgos(cfg)
		labels := make([]string, len(radii))
		for i, r := range radii {
			labels[i] = fmt.Sprintf("eps=%.0f", r)
		}
		fmt.Fprintf(w, "%-12s", "")
		for _, a := range algos {
			fmt.Fprintf(w, " %12s", a.name)
		}
		fmt.Fprintln(w)
		for i, label := range labels {
			eps := radii[i]
			fmt.Fprintf(w, "%-12s", label)
			for _, a := range algos {
				if a.disabled {
					fmt.Fprintf(w, " %12s", "-")
					continue
				}
				// Re-bind eps by shadowing the standard runners.
				var fn func() (*clusterResult, error)
				switch a.name {
				case "DBSVEC":
					fn = runDBSVEC(ds, eps, effMinPts, cfg)
				case "R-DBSCAN":
					fn = runRDBSCAN(ds, eps, effMinPts)
				case "kd-DBSCAN":
					fn = runKDDBSCAN(ds, eps, effMinPts)
				case "rho-Appr":
					fn = runRho(ds, eps, effMinPts)
				case "DBSCAN-LSH":
					fn = runLSH(ds, eps, effMinPts, cfg.Seed)
				case "NQ-DBSCAN":
					fn = runNQ(ds, eps, effMinPts)
				}
				run, err := timed(fn)
				if err != nil {
					return fmt.Errorf("%s at %s: %w", a.name, label, err)
				}
				if run.elapsed > cfg.budget() {
					a.disabled = true
				}
				fmt.Fprintf(w, " %12s", fmtDur(run))
			}
			fmt.Fprintln(w)
		}
		return nil
	}

	synth := cfg.dataset(data.SeedSpreader{N: nSynth, D: 8, Seed: cfg.Seed}.Generate())
	if err := sweepEps("Figure 7a: effect of eps (synthetic, d=8)", synth); err != nil {
		return err
	}
	for _, e := range data.RealWorldSuite() {
		n := e.FullN
		if nReal > 0 && n > nReal {
			n = nReal
		}
		ds := cfg.dataset(e.Gen(n, cfg.Seed).NormalizeTo(1e5))
		if err := sweepEps(fmt.Sprintf("Figure 7: effect of eps (%s stand-in, n=%d, d=%d)", e.Name, n, e.D), ds); err != nil {
			return err
		}
	}
	return nil
}

// Fig8 reproduces Figure 8: DBSVEC runtime as the penalty factor ν grows
// (multiples of ν*), on synthetic data and a real-world stand-in.
func Fig8(w io.Writer, cfg Config) error {
	header(w, "Figure 8: effect of penalty factor nu (multiples of nu*)")
	n := 2000000
	if cfg.Quick {
		n = 20000
	}
	ds := cfg.dataset(data.SeedSpreader{N: n, D: 8, Seed: cfg.Seed}.Generate())
	mults := []float64{1, 2, 4, 8, 16}
	// Estimate the typical target size from MinPts-scale neighborhoods to
	// report nu* context.
	nuStar := svdd.NuStar(8, effMinPts, 1024)
	fmt.Fprintf(w, "(nu* at a 1024-point target: %.4f)\n", nuStar)
	fmt.Fprintf(w, "%-12s %12s %12s\n", "nu", "time", "clusters")
	for _, m := range mults {
		nu := nuStar * m
		if nu > 1 {
			nu = 1
		}
		run, err := timed(runDBSVECOpts(ds, core.Options{Eps: effEps, MinPts: effMinPts, Nu: nu, Seed: cfg.Seed, Workers: cfg.Workers}))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12s %12d\n", fmt.Sprintf("%.1fx nu*", m), fmtDur(run), run.res.Clusters)
	}
	return nil
}

// Fig9b reproduces Figure 9b: the efficiency effect of incremental learning
// (\IL disables it) and kernel parameter selection (\OK randomizes σ) on
// 8-dimensional synthetic data.
func Fig9b(w io.Writer, cfg Config) error {
	header(w, "Figure 9b: effect of SVDD improvements on efficiency")
	n := 2000000
	if cfg.Quick {
		n = 20000
	}
	ds := cfg.dataset(data.SeedSpreader{N: n, D: 8, Seed: cfg.Seed}.Generate())
	variants := []struct {
		name string
		opts core.Options
	}{
		{"DBSVEC\\IL", core.Options{Eps: effEps, MinPts: effMinPts, LearnThreshold: -1, Seed: cfg.Seed, Workers: cfg.Workers}},
		{"DBSVEC\\OK", core.Options{Eps: effEps, MinPts: effMinPts, RandomKernel: true, Seed: cfg.Seed, Workers: cfg.Workers}},
		{"DBSVEC", core.Options{Eps: effEps, MinPts: effMinPts, Seed: cfg.Seed, Workers: cfg.Workers}},
	}
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "variant", "time", "clusters", "recallVsFull")
	var full *clusterResult
	// Run the full variant first to serve as the reference.
	ref, err := timed(runDBSVECOpts(ds, variants[2].opts))
	if err != nil {
		return err
	}
	full = ref.res
	for _, v := range variants {
		var run algoResult
		if v.name == "DBSVEC" {
			run = ref
		} else {
			run, err = timed(runDBSVECOpts(ds, v.opts))
			if err != nil {
				return err
			}
		}
		rec, err := eval.PairRecall(full, run.res)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %12s %12d %12.3f\n", v.name, fmtDur(run), run.res.Clusters, rec)
	}
	return nil
}
