package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID is the harness name (e.g. "fig6a").
	ID string
	// Title describes the paper artifact.
	Title string
	// Run regenerates it.
	Run func(w io.Writer, cfg Config) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Figure 1: DBSCAN vs DBSVEC on t4.8k", Fig1},
		{"table2", "Table II / Sec III-D: O(theta*n) cost model validation", Table2},
		{"table3", "Table III: clustering accuracy (recall)", Table3},
		{"table4", "Table IV: clustering validation vs k-MEANS", Table4},
		{"fig6a", "Figure 6a: runtime vs cardinality", Fig6a},
		{"fig6b", "Figure 6b: runtime vs dimensionality", Fig6b},
		{"fig7", "Figure 7: runtime vs radius (synthetic + real stand-ins)", Fig7},
		{"fig8", "Figure 8: runtime vs penalty factor nu", Fig8},
		{"fig9a", "Figure 9a: SVDD improvements, recall", Fig9a},
		{"fig9b", "Figure 9b: SVDD improvements, efficiency", Fig9b},
		{"svdd", "SVDD training fast path micro-benchmark (BENCH_svdd.json)", SVDDPerf},
		{"index", "Index construction micro-benchmark (BENCH_index.json)", IndexPerf},
		{"highdim", "High-dimensional rproj vs linear benchmark (BENCH_highdim.json)", Highdim},
		{"shard", "Sharded out-of-core execution benchmark (BENCH_shard.json)", ShardBench},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAll executes every experiment against w.
func RunAll(w io.Writer, cfg Config) error {
	for _, e := range All() {
		if err := e.Run(w, cfg); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
