package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dbsvec/internal/cluster"
	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

// The sweep budget must latch: once an algorithm exceeds it, later (larger)
// inputs print "-" instead of running.
func TestRunSweepBudgetLatches(t *testing.T) {
	calls := 0
	slow := &sweepAlgo{
		name: "slow",
		run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return func() (*clusterResult, error) {
				calls++
				// Burn measurable wall time so budget 1ns is exceeded.
				deadline := time.Now().Add(2 * time.Millisecond)
				for time.Now().Before(deadline) {
				}
				return &cluster.Result{Labels: make([]int32, ds.Len())}, nil
			}
		},
	}
	fast := &sweepAlgo{
		name: "fast",
		run: func(ds *vec.Dataset) func() (*clusterResult, error) {
			return func() (*clusterResult, error) {
				return &cluster.Result{Labels: make([]int32, ds.Len())}, nil
			}
		},
	}
	var buf bytes.Buffer
	gen := func(i int) *vec.Dataset { return data.Uniform(10, 2, 1, int64(i)) }
	err := runSweep(&buf, []*sweepAlgo{slow, fast}, []string{"a", "b", "c"}, gen, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("slow algorithm ran %d times, want 1 (budget latch)", calls)
	}
	out := buf.String()
	if strings.Count(out, "-") < 2 {
		t.Errorf("expected skip markers for rows b and c:\n%s", out)
	}
	if !slow.disabled {
		t.Error("slow algorithm should be disabled")
	}
	if fast.disabled {
		t.Error("fast algorithm should not be disabled")
	}
}

func TestFmtDur(t *testing.T) {
	if got := fmtDur(skipped()); got != "-" {
		t.Errorf("skipped duration = %q", got)
	}
	if got := fmtDur(algoResult{elapsed: 1500 * time.Millisecond}); got != "1.500s" {
		t.Errorf("duration format = %q", got)
	}
}
