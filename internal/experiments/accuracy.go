package experiments

import (
	"fmt"
	"io"

	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/eval"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/kmeans"
)

// Fig1 reproduces Figure 1: DBSCAN vs DBSVEC on the t4.8k analogue
// (MinPts=20, ε=8.5). It reports both cluster structures, the pair recall,
// and the speedup.
func Fig1(w io.Writer, cfg Config) error {
	header(w, "Figure 1: clustering quality on t4.8k (MinPts=20, eps=8.5)")
	ds := cfg.dataset(data.Chameleon48K(cfg.Seed))
	exact, err := timed(runRDBSCAN(ds, 8.5, 20))
	if err != nil {
		return err
	}
	approx, err := timed(runDBSVEC(ds, 8.5, 20, cfg))
	if err != nil {
		return err
	}
	rec, err := eval.PairRecall(exact.res, approx.res)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "algorithm", "clusters", "noise", "time")
	fmt.Fprintf(w, "%-12s %10d %10d %10s\n", "DBSCAN", exact.res.Clusters, exact.res.NoiseCount(), fmtDur(exact))
	fmt.Fprintf(w, "%-12s %10d %10d %10s\n", "DBSVEC", approx.res.Clusters, approx.res.NoiseCount(), fmtDur(approx))
	speedup := exact.elapsed.Seconds() / approx.elapsed.Seconds()
	fmt.Fprintf(w, "pair recall = %.3f, speedup = %.1fx (paper: identical clusters, 7.7x)\n", rec, speedup)
	return nil
}

// Table3 reproduces Table III: pair recall of DBSVEC (ν*), DBSVEC_min
// (ν=1/ñ), ρ-approximate and DBSCAN-LSH against exact DBSCAN over the open
// dataset stand-ins.
func Table3(w io.Writer, cfg Config) error {
	header(w, "Table III: clustering accuracy (pair recall vs exact DBSCAN)")
	suite := data.OpenSuite()
	fmt.Fprintf(w, "%-10s %8s %8s | %10s %10s %10s %10s\n",
		"dataset", "n", "d", "DBSVECmin", "DBSVEC", "rho-Appr", "LSH")
	for _, e := range suite {
		ds := cfg.dataset(e.Gen(cfg.Seed))
		truth, err := timed(runRDBSCAN(ds, e.Eps, e.MinPts))
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		algos := []struct {
			name string
			run  func() (*clusterResult, error)
		}{
			{"min", runDBSVECOpts(ds, core.Options{Eps: e.Eps, MinPts: e.MinPts, NuMin: true, Seed: cfg.Seed, Workers: cfg.Workers})},
			{"star", runDBSVEC(ds, e.Eps, e.MinPts, cfg)},
			{"rho", runRho(ds, e.Eps, e.MinPts)},
			{"lsh", runLSH(ds, e.Eps, e.MinPts, cfg.Seed)},
		}
		var row []string
		for _, alg := range algos {
			res, err := alg.run()
			if err != nil {
				return fmt.Errorf("%s/%s: %w", e.Name, alg.name, err)
			}
			rec, err := eval.PairRecall(truth.res, res)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%10.3f", rec))
		}
		fmt.Fprintf(w, "%-10s %8d %8d | %s %s %s %s\n", e.Name, e.N, e.D, row[0], row[1], row[2], row[3])
	}
	return nil
}

// Table4 reproduces Table IV: internal validation (silhouette compactness
// "C", Davies–Bouldin separation "S") of DBSVEC vs k-MEANS on the Miss.,
// Breast. and Dim64 stand-ins. Metrics are computed on a sample capped at
// 3000 points to bound the O(n²) silhouette.
func Table4(w io.Writer, cfg Config) error {
	header(w, "Table IV: clustering validation (C=compactness higher better, S=separation lower better)")
	names := []string{"Miss.", "Breast.", "Dim64"}
	fmt.Fprintf(w, "%-10s | %12s %12s | %12s %12s\n", "dataset", "DBSVEC C", "DBSVEC S", "k-MEANS C", "k-MEANS S")
	for _, name := range names {
		e, err := data.SuiteByName(name)
		if err != nil {
			return err
		}
		ds := cfg.dataset(e.Gen(cfg.Seed))
		sv, err := timed(runDBSVEC(ds, e.Eps, e.MinPts, cfg))
		if err != nil {
			return err
		}
		k := sv.res.Clusters
		if k < 2 {
			k = 2
		}
		kmRes, _, _, err := kmeans.Run(ds, kmeans.Params{K: k, Seed: cfg.Seed})
		if err != nil {
			return err
		}
		ids := sampleForMetrics(ds.Len(), 3000, cfg.Seed)
		sub := ds.Subset(ids)
		svSub := subResult(sv.res, ids)
		kmSub := subResult(kmRes, ids)
		svC, err := eval.Silhouette(sub, svSub)
		if err != nil {
			return err
		}
		svS, err := eval.DaviesBouldin(sub, svSub)
		if err != nil {
			return err
		}
		kmC, err := eval.Silhouette(sub, kmSub)
		if err != nil {
			return err
		}
		kmS, err := eval.DaviesBouldin(sub, kmSub)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-10s | %12.3f %12.3f | %12.3f %12.3f\n", name, svC, svS, kmC, kmS)
	}
	return nil
}

// Fig9a reproduces Figure 9a: the recall effect of the adaptive penalty
// weights (\WF removes them) and of incremental learning (\IL removes it)
// across the accuracy suite.
func Fig9a(w io.Writer, cfg Config) error {
	header(w, "Figure 9a: effect of SVDD improvements on recall")
	suite := data.OpenSuite()
	if cfg.Quick {
		suite = suite[:6]
	}
	fmt.Fprintf(w, "%-10s | %12s %12s %12s\n", "dataset", "DBSVEC\\WF", "DBSVEC\\IL", "DBSVEC")
	for _, e := range suite {
		ds := cfg.dataset(e.Gen(cfg.Seed))
		truth, err := timed(runRDBSCAN(ds, e.Eps, e.MinPts))
		if err != nil {
			return err
		}
		variants := []core.Options{
			{Eps: e.Eps, MinPts: e.MinPts, DisableWeights: true, Seed: cfg.Seed, Workers: cfg.Workers},
			{Eps: e.Eps, MinPts: e.MinPts, LearnThreshold: -1, Seed: cfg.Seed, Workers: cfg.Workers},
			{Eps: e.Eps, MinPts: e.MinPts, Seed: cfg.Seed, Workers: cfg.Workers},
		}
		var cols []string
		for _, opt := range variants {
			run, err := timed(runDBSVECOpts(ds, opt))
			if err != nil {
				return err
			}
			rec, err := eval.PairRecall(truth.res, run.res)
			if err != nil {
				return err
			}
			cols = append(cols, fmt.Sprintf("%12.3f", rec))
		}
		fmt.Fprintf(w, "%-10s | %s %s %s\n", e.Name, cols[0], cols[1], cols[2])
	}
	return nil
}

// CoreMaskCheck is a diagnostic (not in the paper) verifying Theorem 1/3 on
// a suite entry: DBSVEC core points clustered identically and noise sets
// equal. It returns the noise agreement fraction.
func CoreMaskCheck(name string, cfg Config) (float64, error) {
	e, err := data.SuiteByName(name)
	if err != nil {
		return 0, err
	}
	ds := cfg.dataset(e.Gen(cfg.Seed))
	truth, _, err := dbscan.Run(ds, dbscan.Params{Eps: e.Eps, MinPts: e.MinPts}, rtree.Build)
	if err != nil {
		return 0, err
	}
	got, _, err := core.Run(ds, core.Options{Eps: e.Eps, MinPts: e.MinPts, Seed: cfg.Seed, Workers: cfg.Workers})
	if err != nil {
		return 0, err
	}
	return eval.NoiseAgreement(truth, got)
}
