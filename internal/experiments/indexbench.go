package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"dbsvec/internal/data"
	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/index/grid"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/index/vptree"
	"dbsvec/internal/vec"
)

// Index construction micro-benchmark. The figure experiments measure whole
// clustering runs; this one isolates the range-query backends so the
// parallel, cache-conscious bulk loads (and the packed-leaf query layout)
// can be attributed individually: build wall-clock per backend x cardinality
// x worker count, plus range-query throughput on the finished structures.
// The build-time columns reported next to Figures 6/7 in EXPERIMENTS.md come
// from this experiment's BENCH_index.json.

// indexBenchDim and indexBenchEps pin the benchmark shape; measured numbers
// in internal/index/README.md refer to exactly this shape.
const (
	indexBenchDim = 3
	indexBenchEps = 25.0
)

// IndexBuildEntry is one backend's build time at one cardinality and worker
// count, best of Repeats runs.
type IndexBuildEntry struct {
	Backend string `json:"backend"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	BuildNs int64  `json:"build_ns"`
	// Speedup is the serial (workers=1) build time of the same backend and
	// cardinality divided by this entry's; 1.0 for the serial rows.
	Speedup float64 `json:"speedup_vs_serial"`
}

// IndexQueryEntry is one backend's range-query throughput at one
// cardinality and storage precision, measured on the serial-built structure
// (parallel builds are bit-identical, so query cost does not depend on the
// build worker count).
type IndexQueryEntry struct {
	Backend       string  `json:"backend"`
	Precision     string  `json:"precision"`
	N             int     `json:"n"`
	Queries       int     `json:"queries"`
	TotalNs       int64   `json:"total_ns"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	AvgResultSize float64 `json:"avg_result_size"`
}

// IndexScanEntry is one storage precision's batch linear-scan throughput at
// the embeddings-like shape (scanN × scanDim): the memory-bound regime the
// float32 storage mode targets. Queries are fused whole-dataset FilterWithin
// scans, so bytes streamed per query is exactly n·d·(8 or 4).
type IndexScanEntry struct {
	Precision     string  `json:"precision"`
	N             int     `json:"n"`
	Dim           int     `json:"dim"`
	Queries       int     `json:"queries"`
	TotalNs       int64   `json:"total_ns"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	// SpeedupVsF64 is the f64 entry's TotalNs divided by this entry's; 1.0
	// for the f64 row itself.
	SpeedupVsF64 float64 `json:"speedup_vs_f64"`
}

// IndexBenchReport is the machine-readable result benchall writes to
// BENCH_index.json.
type IndexBenchReport struct {
	Dim          int               `json:"dim"`
	Eps          float64           `json:"eps"`
	Seed         int64             `json:"seed"`
	Repeats      int               `json:"repeats"`
	Sizes        []int             `json:"sizes"`
	WorkerCounts []int             `json:"worker_counts"`
	Builds       []IndexBuildEntry `json:"builds"`
	Queries      []IndexQueryEntry `json:"queries"`
	ScanN        int               `json:"scan_n"`
	ScanDim      int               `json:"scan_dim"`
	Scans        []IndexScanEntry  `json:"scans"`
}

// indexBenchBackend names one backend and its workers-parameterized builder.
type indexBenchBackend struct {
	name  string
	build func(ds *vec.Dataset, workers int) index.Index
}

func indexBenchBackends() []indexBenchBackend {
	gridWidth := indexBenchEps / math.Sqrt(float64(indexBenchDim))
	return []indexBenchBackend{
		{"kdtree", func(ds *vec.Dataset, w int) index.Index { return kdtree.NewWorkers(ds, w) }},
		{"rtree", func(ds *vec.Dataset, w int) index.Index { return rtree.BulkWorkers(ds, w) }},
		{"vptree", func(ds *vec.Dataset, w int) index.Index { return vptree.NewWorkers(ds, w) }},
		{"grid", func(ds *vec.Dataset, w int) index.Index { return grid.NewWorkers(ds, gridWidth, w) }},
	}
}

// indexBenchWorkerCounts returns the deduplicated, ascending worker counts
// to sweep: serial, 2, and the resolved session worker count.
func indexBenchWorkerCounts(cfg Config) []int {
	set := map[int]bool{1: true, 2: true, engine.ResolveWorkers(cfg.Workers): true}
	counts := make([]int, 0, len(set))
	for w := range set {
		counts = append(counts, w)
	}
	sort.Ints(counts)
	return counts
}

// RunIndexBench executes the micro-benchmark and returns the report.
func RunIndexBench(cfg Config) (*IndexBenchReport, error) {
	sizes := []int{100_000, 500_000}
	repeats, queries := 5, 1000
	if cfg.Quick {
		sizes = []int{20_000, 50_000}
		repeats, queries = 3, 400
	}
	workerCounts := indexBenchWorkerCounts(cfg)

	rep := &IndexBenchReport{
		Dim:          indexBenchDim,
		Eps:          indexBenchEps,
		Seed:         cfg.Seed,
		Repeats:      repeats,
		Sizes:        sizes,
		WorkerCounts: workerCounts,
	}

	for _, n := range sizes {
		ds := data.Blobs(n, indexBenchDim, 16, 30, 1000, 0.02, cfg.Seed)
		ds32, err := ds.ToPrecision(vec.F32)
		if err != nil {
			return nil, fmt.Errorf("index bench f32 conversion: %w", err)
		}
		for _, b := range indexBenchBackends() {
			serialNs := int64(0)
			for _, workers := range workerCounts {
				best := int64(math.MaxInt64)
				for r := 0; r < repeats; r++ {
					start := time.Now()
					b.build(ds, workers)
					if ns := time.Since(start).Nanoseconds(); ns < best {
						best = ns
					}
				}
				if workers == 1 {
					serialNs = best
				}
				rep.Builds = append(rep.Builds, IndexBuildEntry{
					Backend: b.name,
					N:       n,
					Workers: workers,
					BuildNs: best,
					Speedup: speedup(serialNs, best),
				})
			}

			// Query throughput on the serial-built structure; parallel builds
			// produce bit-identical trees, so one measurement covers them all.
			// Both storage precisions are measured — identical result sets,
			// different leaf-scan bandwidth.
			for _, pv := range []struct {
				prec string
				ds   *vec.Dataset
			}{{"f64", ds}, {"f32", ds32}} {
				idx := b.build(pv.ds, 1)
				stride := pv.ds.Len() / queries
				if stride < 1 {
					stride = 1
				}
				var results int64
				buf := make([]int32, 0, 4096)
				start := time.Now()
				for q := 0; q < queries; q++ {
					buf = idx.RangeQuery(pv.ds.Point(q*stride%pv.ds.Len()), indexBenchEps, buf[:0])
					results += int64(len(buf))
				}
				total := time.Since(start).Nanoseconds()
				qps := 0.0
				if total > 0 {
					qps = float64(queries) / (float64(total) / 1e9)
				}
				rep.Queries = append(rep.Queries, IndexQueryEntry{
					Backend:       b.name,
					Precision:     pv.prec,
					N:             n,
					Queries:       queries,
					TotalNs:       total,
					QueriesPerSec: qps,
					AvgResultSize: float64(results) / float64(queries),
				})
			}
		}
	}

	if err := runScanBench(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// scanBenchN and scanBenchDim pin the batch-scan section's shape: an
// embeddings-like 100k × 32 dataset whose 25.6 MB (f64) working set defeats
// every cache level, so throughput is memory bandwidth and halving the bytes
// should approach 2x. The shape is identical in quick and full mode — the
// committed BENCH_index.json numbers are the acceptance measurement for the
// float32 storage mode.
const (
	scanBenchN   = 100_000
	scanBenchDim = 32
)

// runScanBench measures fused whole-dataset FilterWithin scans at the
// embeddings shape for both storage precisions and appends the section to
// rep. Best-of-repeats over a fixed query batch.
func runScanBench(cfg Config, rep *IndexBenchReport) error {
	queries := 64
	if cfg.Quick {
		queries = 24
	}
	rep.ScanN = scanBenchN
	rep.ScanDim = scanBenchDim

	ds := data.Uniform(scanBenchN, scanBenchDim, 1000, cfg.Seed)
	ds32, err := ds.ToPrecision(vec.F32)
	if err != nil {
		return fmt.Errorf("scan bench f32 conversion: %w", err)
	}
	// eps sized to catch a small neighborhood: scan cost is n·d regardless of
	// the hit count (the fused kernels never early-exit), so the radius only
	// keeps the append path realistic without swamping it.
	const scanEps = 300.0
	eps2 := scanEps * scanEps

	var f64Total int64
	for _, pv := range []struct {
		prec string
		ds   *vec.Dataset
	}{{"f64", ds}, {"f32", ds32}} {
		stride := pv.ds.Len() / queries
		best := int64(math.MaxInt64)
		buf := make([]int32, 0, 4096)
		for r := 0; r < rep.Repeats; r++ {
			start := time.Now()
			for q := 0; q < queries; q++ {
				buf = pv.ds.FilterWithin(pv.ds.Point(q*stride), eps2, buf[:0])
			}
			if ns := time.Since(start).Nanoseconds(); ns < best {
				best = ns
			}
		}
		if pv.prec == "f64" {
			f64Total = best
		}
		qps := 0.0
		if best > 0 {
			qps = float64(queries) / (float64(best) / 1e9)
		}
		rep.Scans = append(rep.Scans, IndexScanEntry{
			Precision:     pv.prec,
			N:             scanBenchN,
			Dim:           scanBenchDim,
			Queries:       queries,
			TotalNs:       best,
			QueriesPerSec: qps,
			SpeedupVsF64:  speedup(f64Total, best),
		})
	}
	return nil
}

// IndexPerf is the registry entry: it prints the build and query tables and,
// when cfg.IndexJSONPath is set, writes the machine-readable report there.
func IndexPerf(w io.Writer, cfg Config) error {
	header(w, "Index construction: parallel bulk loads + packed leaf blocks")
	rep, err := RunIndexBench(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %9s %8s %12s %9s\n", "backend", "n", "workers", "build", "speedup")
	for _, e := range rep.Builds {
		fmt.Fprintf(w, "%-8s %9d %8d %11.3fms %8.2fx\n",
			e.Backend, e.N, e.Workers, float64(e.BuildNs)/1e6, e.Speedup)
	}
	fmt.Fprintf(w, "\n%-8s %5s %9s %8s %12s %14s %10s\n", "backend", "prec", "n", "queries", "total", "queries/s", "avg|hood|")
	for _, e := range rep.Queries {
		fmt.Fprintf(w, "%-8s %5s %9d %8d %11.3fms %14.0f %10.1f\n",
			e.Backend, e.Precision, e.N, e.Queries, float64(e.TotalNs)/1e6, e.QueriesPerSec, e.AvgResultSize)
	}
	fmt.Fprintf(w, "\nbatch linear scans (n=%d, d=%d):\n", rep.ScanN, rep.ScanDim)
	fmt.Fprintf(w, "%-5s %8s %12s %14s %9s\n", "prec", "queries", "total", "queries/s", "speedup")
	for _, e := range rep.Scans {
		fmt.Fprintf(w, "%-5s %8d %11.3fms %14.1f %8.2fx\n",
			e.Precision, e.Queries, float64(e.TotalNs)/1e6, e.QueriesPerSec, e.SpeedupVsF64)
	}
	if cfg.IndexJSONPath != "" {
		if err := WriteIndexBenchJSON(cfg.IndexJSONPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.IndexJSONPath)
	}
	return nil
}

// WriteIndexBenchJSON writes the report as indented JSON.
func WriteIndexBenchJSON(path string, rep *IndexBenchReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
