package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"time"

	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/engine"
	"dbsvec/internal/eval"
	"dbsvec/internal/index"
	"dbsvec/internal/index/rproj"
	"dbsvec/internal/vec"
)

// High-dimensional neighborhood benchmark: the rproj backend against the
// linear oracle on embeddings-like data (unit-norm Gaussian clusters, the
// geometry every spatial backend degrades on). Two sections: batched
// range-query throughput across dimensions and storage precisions, and an
// end-to-end DBSCAN agreement check — rproj is exact, so the ARI against
// the linear-indexed clustering must be 1.0, and any smaller value is a
// correctness regression, not a tuning matter.

// Benchmark shape pinned for the committed BENCH_highdim.json: 16 unit-norm
// cluster directions perturbed by noise 0.35 (tight angular clusters, well
// separated), queried at the radius that captures same-cluster
// neighborhoods (~0.49 expected same-cluster distance) while excluding
// other clusters (>= 1.0 away).
const (
	highdimClusters = 16
	highdimNoise    = 0.35
	highdimEps      = 0.5
	highdimMinPts   = 8
)

// HighdimQueryEntry is one backend's batched range-query throughput at one
// dimension and storage precision, best of repeats, plus its build time.
type HighdimQueryEntry struct {
	Backend       string  `json:"backend"`
	Precision     string  `json:"precision"`
	N             int     `json:"n"`
	Dim           int     `json:"dim"`
	Queries       int     `json:"queries"`
	BuildNs       int64   `json:"build_ns"`
	TotalNs       int64   `json:"total_ns"`
	QueriesPerSec float64 `json:"queries_per_sec"`
	AvgResultSize float64 `json:"avg_result_size"`
	// SpeedupVsLinear is the linear entry's TotalNs at the same dim and
	// precision divided by this entry's; 1.0 for the linear rows.
	SpeedupVsLinear float64 `json:"speedup_vs_linear"`
	// Cells/MaxCell are the rproj partition diagnostics (0 for linear).
	Cells   int `json:"cells"`
	MaxCell int `json:"max_cell"`
}

// HighdimARIEntry is one backend's end-to-end DBSCAN run on the embeddings
// dataset.
type HighdimARIEntry struct {
	Backend     string  `json:"backend"`
	ElapsedNs   int64   `json:"elapsed_ns"`
	Clusters    int     `json:"clusters"`
	ARIVsLinear float64 `json:"ari_vs_linear"`
}

// HighdimReport is the machine-readable result benchall writes to
// BENCH_highdim.json.
type HighdimReport struct {
	Seed     int64   `json:"seed"`
	Eps      float64 `json:"eps"`
	Clusters int     `json:"clusters"`
	Noise    float64 `json:"noise"`
	N        int     `json:"n"`
	Dims     []int   `json:"dims"`
	BatchQ   int     `json:"batch_queries"`
	Workers  int     `json:"workers"`
	Repeats  int     `json:"repeats"`

	Queries []HighdimQueryEntry `json:"queries"`

	ARIN   int               `json:"ari_n"`
	ARIDim int               `json:"ari_dim"`
	ARI    []HighdimARIEntry `json:"ari"`
}

// RunHighdim executes the benchmark and returns the report.
func RunHighdim(cfg Config) (*HighdimReport, error) {
	n, batchQ, repeats := 100_000, 64, 3
	ariN, ariDim := 30_000, 64
	if cfg.Quick {
		n, batchQ, repeats = 10_000, 32, 2
		ariN = 4_000
	}
	workers := engine.ResolveWorkers(cfg.Workers)
	rep := &HighdimReport{
		Seed:     cfg.Seed,
		Eps:      highdimEps,
		Clusters: highdimClusters,
		Noise:    highdimNoise,
		N:        n,
		Dims:     []int{64, 128, 256, 512},
		BatchQ:   batchQ,
		Workers:  workers,
		Repeats:  repeats,
		ARIN:     ariN,
		ARIDim:   ariDim,
	}

	for _, dim := range rep.Dims {
		ds := data.Embeddings(n, dim, highdimClusters, highdimNoise, cfg.Seed)
		ds32, err := ds.ToPrecision(vec.F32)
		if err != nil {
			return nil, fmt.Errorf("highdim f32 conversion: %w", err)
		}
		for _, pv := range []struct {
			prec string
			ds   *vec.Dataset
		}{{"f64", ds}, {"f32", ds32}} {
			// Queries stride across the dataset so every cluster is probed.
			qids := make([]int32, batchQ)
			stride := pv.ds.Len() / batchQ
			for i := range qids {
				qids[i] = int32(i * stride)
			}
			qs := index.Queries{N: batchQ, At: func(i int, _ []float64) []float64 {
				return pv.ds.Point(int(qids[i]))
			}}

			var linearNs int64
			for _, backend := range []string{"linear", "rproj"} {
				var idx index.Index
				buildNs := int64(0)
				if backend == "rproj" {
					start := time.Now()
					idx = rproj.NewWorkers(pv.ds, workers)
					buildNs = time.Since(start).Nanoseconds()
				} else {
					idx = index.BuildLinear(pv.ds)
				}
				batch := index.Batch(idx)
				var out [][]int32
				best := int64(math.MaxInt64)
				var results int64
				for r := 0; r < repeats; r++ {
					start := time.Now()
					out, err = batch.BatchRangeQuery(nil, qs, highdimEps, workers, out)
					if err != nil {
						return nil, fmt.Errorf("highdim %s batch: %w", backend, err)
					}
					if ns := time.Since(start).Nanoseconds(); ns < best {
						best = ns
					}
				}
				results = 0
				for _, row := range out {
					results += int64(len(row))
				}
				if backend == "linear" {
					linearNs = best
				}
				qps := 0.0
				if best > 0 {
					qps = float64(batchQ) / (float64(best) / 1e9)
				}
				e := HighdimQueryEntry{
					Backend:         backend,
					Precision:       pv.prec,
					N:               n,
					Dim:             dim,
					Queries:         batchQ,
					BuildNs:         buildNs,
					TotalNs:         best,
					QueriesPerSec:   qps,
					AvgResultSize:   float64(results) / float64(batchQ),
					SpeedupVsLinear: speedup(linearNs, best),
				}
				if x, ok := idx.(*rproj.Index); ok {
					e.Cells, e.MaxCell = x.Cells()
				}
				rep.Queries = append(rep.Queries, e)
			}
		}
	}

	if err := runHighdimARI(cfg, rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// runHighdimARI clusters the embeddings dataset end to end with the linear
// oracle and with rproj and appends both runs with their label agreement.
func runHighdimARI(cfg Config, rep *HighdimReport) error {
	ds := data.Embeddings(rep.ARIN, rep.ARIDim, highdimClusters, highdimNoise, cfg.Seed+1)
	params := dbscan.Params{Eps: highdimEps, MinPts: highdimMinPts}

	type run struct {
		name  string
		build index.Builder
	}
	var linear *clusterResult
	for _, r := range []run{
		{"linear", index.BuildLinear},
		{"rproj", rproj.Build},
	} {
		start := time.Now()
		res, _, err := dbscan.Run(ds, params, r.build)
		if err != nil {
			return fmt.Errorf("highdim ari %s: %w", r.name, err)
		}
		elapsed := time.Since(start).Nanoseconds()
		ari := 1.0
		if linear == nil {
			linear = res
		} else {
			if ari, err = eval.AdjustedRandIndex(linear, res); err != nil {
				return fmt.Errorf("highdim ari: %w", err)
			}
		}
		rep.ARI = append(rep.ARI, HighdimARIEntry{
			Backend:     r.name,
			ElapsedNs:   elapsed,
			Clusters:    res.Clusters,
			ARIVsLinear: ari,
		})
	}
	return nil
}

// Highdim is the registry entry: it prints the throughput and agreement
// tables and, when cfg.HighdimJSONPath is set, writes the machine-readable
// report there.
func Highdim(w io.Writer, cfg Config) error {
	header(w, "High-dimensional neighborhoods: rproj vs linear on embeddings")
	rep, err := RunHighdim(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-7s %5s %5s %9s %12s %12s %12s %10s %8s %7s\n",
		"backend", "prec", "dim", "n", "build", "batch", "queries/s", "avg|hood|", "speedup", "cells")
	for _, e := range rep.Queries {
		fmt.Fprintf(w, "%-7s %5s %5d %9d %11.3fms %11.3fms %12.0f %10.1f %7.2fx %7d\n",
			e.Backend, e.Precision, e.Dim, e.N, float64(e.BuildNs)/1e6,
			float64(e.TotalNs)/1e6, e.QueriesPerSec, e.AvgResultSize, e.SpeedupVsLinear, e.Cells)
	}
	fmt.Fprintf(w, "\nend-to-end DBSCAN (n=%d, d=%d, eps=%g, minPts=%d):\n",
		rep.ARIN, rep.ARIDim, rep.Eps, highdimMinPts)
	fmt.Fprintf(w, "%-7s %12s %9s %14s\n", "backend", "elapsed", "clusters", "ARI vs linear")
	for _, e := range rep.ARI {
		fmt.Fprintf(w, "%-7s %11.3fms %9d %14.4f\n",
			e.Backend, float64(e.ElapsedNs)/1e6, e.Clusters, e.ARIVsLinear)
	}
	if cfg.HighdimJSONPath != "" {
		if err := WriteHighdimJSON(cfg.HighdimJSONPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", cfg.HighdimJSONPath)
	}
	return nil
}

// WriteHighdimJSON writes the report as indented JSON.
func WriteHighdimJSON(path string, rep *HighdimReport) error {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
