// Package cluster defines the labeling conventions shared by every
// clustering algorithm in this repository and small helpers over them.
package cluster

// Label values. Non-negative labels are cluster ids (dense, starting at 0).
const (
	// Noise marks points assigned to no cluster.
	Noise int32 = -1
	// Unclassified marks points not yet visited; it never appears in a
	// finished Result.
	Unclassified int32 = -2
)

// Result is the outcome of a clustering run.
type Result struct {
	// Labels holds one entry per input point: a cluster id in
	// [0, Clusters) or Noise.
	Labels []int32
	// Clusters is the number of distinct clusters found.
	Clusters int
}

// NoiseCount returns the number of noise points.
func (r *Result) NoiseCount() int {
	n := 0
	for _, l := range r.Labels {
		if l == Noise {
			n++
		}
	}
	return n
}

// Sizes returns the size of each cluster, indexed by cluster id.
func (r *Result) Sizes() []int {
	s := make([]int, r.Clusters)
	for _, l := range r.Labels {
		if l >= 0 {
			s[l]++
		}
	}
	return s
}

// Members returns the point ids of each cluster, indexed by cluster id.
func (r *Result) Members() [][]int32 {
	m := make([][]int32, r.Clusters)
	for i, l := range r.Labels {
		if l >= 0 {
			m[l] = append(m[l], int32(i))
		}
	}
	return m
}

// Compact renumbers labels so cluster ids are dense in first-appearance
// order and recomputes Clusters. Noise is preserved. It returns the receiver
// for chaining. Algorithms whose internal ids become sparse (e.g. after
// union-find merging) call this before returning.
func (r *Result) Compact() *Result {
	remap := make(map[int32]int32)
	next := int32(0)
	for i, l := range r.Labels {
		if l < 0 {
			r.Labels[i] = Noise
			continue
		}
		c, ok := remap[l]
		if !ok {
			c = next
			remap[l] = c
			next++
		}
		r.Labels[i] = c
	}
	r.Clusters = int(next)
	return r
}
