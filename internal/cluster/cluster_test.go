package cluster

import (
	"reflect"
	"testing"
)

func TestNoiseCountSizesMembers(t *testing.T) {
	r := &Result{Labels: []int32{0, 0, 1, Noise, 1, 1}, Clusters: 2}
	if got := r.NoiseCount(); got != 1 {
		t.Errorf("NoiseCount = %d", got)
	}
	if got := r.Sizes(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("Sizes = %v", got)
	}
	m := r.Members()
	if !reflect.DeepEqual(m[0], []int32{0, 1}) || !reflect.DeepEqual(m[1], []int32{2, 4, 5}) {
		t.Errorf("Members = %v", m)
	}
}

func TestCompact(t *testing.T) {
	r := &Result{Labels: []int32{7, 7, 3, Noise, 3, 12}}
	r.Compact()
	if r.Clusters != 3 {
		t.Fatalf("Clusters = %d, want 3", r.Clusters)
	}
	want := []int32{0, 0, 1, Noise, 1, 2}
	if !reflect.DeepEqual(r.Labels, want) {
		t.Errorf("Labels = %v, want %v", r.Labels, want)
	}
}

func TestCompactAllNoise(t *testing.T) {
	r := &Result{Labels: []int32{Noise, Unclassified, Noise}}
	r.Compact()
	if r.Clusters != 0 {
		t.Errorf("Clusters = %d, want 0", r.Clusters)
	}
	for i, l := range r.Labels {
		if l != Noise {
			t.Errorf("label %d = %d, want Noise", i, l)
		}
	}
}

func TestCompactEmpty(t *testing.T) {
	r := &Result{}
	r.Compact()
	if r.Clusters != 0 || len(r.Labels) != 0 {
		t.Error("empty compact should stay empty")
	}
}
