// Package data provides the dataset generators and loaders used by tests,
// examples and the experiment harness. Real datasets from the paper (UCI,
// Mopsi, chameleon, Fränti suites) are not redistributable, so each has a
// synthetic analogue with the same cardinality and dimensionality and a
// qualitatively similar density structure (see DESIGN.md §3).
package data

import (
	"math"
	"math/rand"

	"dbsvec/internal/vec"
)

// Blobs generates k isotropic Gaussian clusters of roughly equal size in
// [0, span]^d plus a fraction of uniform noise. Cluster centers are drawn
// uniformly but rejected until they are at least 4·sd apart (best effort:
// after 100 tries the draw is accepted as-is).
func Blobs(n, d, k int, sd, span, noiseFrac float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := spreadCenters(rng, k, d, span, 4*sd)
	noise := int(float64(n) * noiseFrac)
	clustered := n - noise
	coords := make([]float64, 0, n*d)
	for i := 0; i < clustered; i++ {
		c := centers[i%k]
		for j := 0; j < d; j++ {
			coords = append(coords, clamp(c[j]+rng.NormFloat64()*sd, 0, span))
		}
	}
	for i := 0; i < noise; i++ {
		for j := 0; j < d; j++ {
			coords = append(coords, rng.Float64()*span)
		}
	}
	ds, _ := vec.NewDatasetUnchecked(coords, d)
	return ds
}

// spreadCenters draws k centers in [0,span]^d with pairwise separation of
// at least minSep when achievable.
func spreadCenters(rng *rand.Rand, k, d int, span, minSep float64) [][]float64 {
	centers := make([][]float64, 0, k)
	for len(centers) < k {
		c := make([]float64, d)
		for j := range c {
			c[j] = span*0.1 + rng.Float64()*span*0.8
		}
		ok := true
		for tries := 0; tries < 100; tries++ {
			ok = true
			for _, o := range centers {
				if vec.Dist(c, o) < minSep {
					ok = false
					break
				}
			}
			if ok {
				break
			}
			for j := range c {
				c[j] = span*0.1 + rng.Float64()*span*0.8
			}
		}
		centers = append(centers, c)
	}
	return centers
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Embeddings generates n unit-norm points in d dimensions around k
// unit-norm cluster directions — the geometry of learned embedding vectors
// (normalized neural representations), where density lives on the sphere
// and coordinate-aligned structure is absent. Each point is
// normalize(center + noise·g/√d) with g standard Gaussian, so noise is the
// expected perturbation norm before renormalization: small values give
// tight angular clusters, values near 1 approach uniform on the sphere.
// Centers are Gaussian directions redrawn until pairwise angles stay wide
// (best effort, like Blobs' center spreading).
func Embeddings(n, d, k int, noise float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, k)
	for c := range centers {
		v := make([]float64, d)
		for tries := 0; ; tries++ {
			gaussianDir(rng, v)
			ok := true
			for _, o := range centers[:c] {
				if vec.Dot(v, o) > 0.5 { // within 60°: too close
					ok = false
					break
				}
			}
			if ok || tries >= 100 {
				break
			}
		}
		centers[c] = v
	}
	scale := noise / math.Sqrt(float64(d))
	coords := make([]float64, 0, n*d)
	g := make([]float64, d)
	for i := 0; i < n; i++ {
		c := centers[i%k]
		for j := range g {
			g[j] = c[j] + rng.NormFloat64()*scale
		}
		normalize(g)
		coords = append(coords, g...)
	}
	ds, _ := vec.NewDatasetUnchecked(coords, d)
	return ds
}

// gaussianDir fills v with a uniformly random unit direction.
func gaussianDir(rng *rand.Rand, v []float64) {
	for j := range v {
		v[j] = rng.NormFloat64()
	}
	normalize(v)
}

// normalize scales v to unit norm (no-op on the zero vector).
func normalize(v []float64) {
	var s float64
	for _, x := range v {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := 1 / math.Sqrt(s)
	for j := range v {
		v[j] *= inv
	}
}

// SeedSpreader reproduces the flavor of the synthetic generator of Gan &
// Tao (SIGMOD 2015) used for the paper's efficiency experiments
// (Section V-C): a spreader performs a random walk confined to a compact
// cluster region in [0, span]^d, emitting points in a small ball around its
// position; after a region's quota it teleports, starting a new dense
// region. The walk is reflected at the region boundary, so clusters stay
// dense and compact (a few ε at the paper's default ε = 5000) rather than
// stretching into long filaments. A noise fraction is scattered uniformly.
// Defaults follow the paper: coordinates in [0, 10^5].
type SeedSpreader struct {
	// N is the number of points; D the dimensionality.
	N, D int
	// Span is the domain extent per dimension (default 1e5).
	Span float64
	// Clusters is the approximate number of dense regions (default 10).
	Clusters int
	// ClusterRadius bounds each region's extent (default Span/50, keeping
	// clusters dense and compact as in the original generator).
	ClusterRadius float64
	// LocalRadius is the emission radius around the spreader (default
	// ClusterRadius/10).
	LocalRadius float64
	// StepSize is the random-walk step (default LocalRadius).
	StepSize float64
	// NoiseFrac is the uniform-noise fraction (default 1e-4).
	NoiseFrac float64
	// Seed drives the generator.
	Seed int64
}

// Generate materializes the dataset.
func (s SeedSpreader) Generate() *vec.Dataset {
	coords := make([]float64, 0, s.N*s.D)
	s.Stream(func(p []float64) error {
		coords = append(coords, p...)
		return nil
	})
	ds, _ := vec.NewDatasetUnchecked(coords, s.D)
	return ds
}

// Stream emits the dataset's points one at a time in generation order —
// exactly the points Generate materializes — without holding more than one
// point in memory. The emit buffer is reused between calls; a non-nil error
// from emit aborts the stream and is returned.
func (s SeedSpreader) Stream(emit func(point []float64) error) error {
	span := s.Span
	if span == 0 {
		span = 1e5
	}
	clusters := s.Clusters
	if clusters == 0 {
		clusters = 10
	}
	clusterR := s.ClusterRadius
	if clusterR == 0 {
		clusterR = span / 50
	}
	localR := s.LocalRadius
	if localR == 0 {
		localR = clusterR / 10
	}
	step := s.StepSize
	if step == 0 {
		step = localR
	}
	noiseFrac := s.NoiseFrac
	if noiseFrac == 0 {
		noiseFrac = 1e-4
	}
	rng := rand.New(rand.NewSource(s.Seed))

	noise := int(float64(s.N) * noiseFrac)
	clustered := s.N - noise
	perRegion := clustered / clusters
	if perRegion < 1 {
		perRegion = 1
	}

	point := make([]float64, s.D)
	center := make([]float64, s.D)
	pos := make([]float64, s.D)
	emitted := 0
	for emitted < clustered {
		// Teleport to a new region.
		for j := range center {
			center[j] = clusterR + rng.Float64()*(span-2*clusterR)
		}
		copy(pos, center)
		regionTarget := perRegion
		if clustered-emitted < 2*perRegion {
			regionTarget = clustered - emitted // absorb the remainder
		}
		for e := 0; e < regionTarget; e++ {
			// Emit a point near the spreader.
			for j := 0; j < s.D; j++ {
				point[j] = clamp(pos[j]+rng.NormFloat64()*localR, 0, span)
			}
			if err := emit(point); err != nil {
				return err
			}
			emitted++
			// Walk, reflected into the region box.
			for j := range pos {
				p := pos[j] + (rng.Float64()*2-1)*step
				if p < center[j]-clusterR {
					p = center[j] - clusterR
				}
				if p > center[j]+clusterR {
					p = center[j] + clusterR
				}
				pos[j] = p
			}
		}
	}
	for i := 0; i < noise; i++ {
		for j := 0; j < s.D; j++ {
			point[j] = rng.Float64() * span
		}
		if err := emit(point); err != nil {
			return err
		}
	}
	return nil
}

// Ring generates n points on a circle of radius r centered at the origin
// (Eq. 14 of the paper) with optional Gaussian jitter.
func Ring(n int, r, jitter float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		theta := 2 * math.Pi * float64(i) / float64(n)
		coords = append(coords,
			r*math.Cos(theta)+rng.NormFloat64()*jitter,
			r*math.Sin(theta)+rng.NormFloat64()*jitter)
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// DimSet mimics the Fränti DIM032/DIM064 benchmarks: 16 well-separated
// Gaussian clusters in a d-dimensional hypercube, n points total, no noise.
func DimSet(n, d int, seed int64) *vec.Dataset {
	return Blobs(n, d, 16, 2, 1000, 0, seed)
}

// D31 mimics Veenman's D31 benchmark: 31 Gaussian clusters of equal size in
// 2D.
func D31(seed int64) *vec.Dataset {
	return Blobs(3100, 2, 31, 1.1, 100, 0, seed)
}

// UCIAnalog generates a stand-in for a real tabular dataset with the given
// cardinality, dimensionality and class count: anisotropic Gaussian
// clusters (random per-dimension scales) plus light uniform noise.
func UCIAnalog(n, d, k int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	span := 100.0
	centers := spreadCenters(rng, k, d, span, 25)
	// Per-cluster, per-dimension scales in [1, 4].
	scales := make([][]float64, k)
	for c := range scales {
		scales[c] = make([]float64, d)
		for j := range scales[c] {
			scales[c][j] = 1 + rng.Float64()*3
		}
	}
	noise := n / 50
	clustered := n - noise
	coords := make([]float64, 0, n*d)
	for i := 0; i < clustered; i++ {
		c := i % k
		for j := 0; j < d; j++ {
			coords = append(coords, clamp(centers[c][j]+rng.NormFloat64()*scales[c][j], 0, span))
		}
	}
	for i := 0; i < noise; i++ {
		for j := 0; j < d; j++ {
			coords = append(coords, rng.Float64()*span)
		}
	}
	ds, _ := vec.NewDatasetUnchecked(coords, d)
	return ds
}

// Uniform scatters n points uniformly in [0, span]^d — the all-noise
// stress case.
func Uniform(n, d int, span float64, seed int64) *vec.Dataset {
	coords := make([]float64, 0, n*d)
	UniformStream(n, d, span, seed, func(p []float64) error {
		coords = append(coords, p...)
		return nil
	})
	ds, _ := vec.NewDatasetUnchecked(coords, d)
	return ds
}

// UniformStream emits Uniform's points one at a time in generation order
// (reused emit buffer, error aborts) without materializing the dataset.
func UniformStream(n, d int, span float64, seed int64, emit func(point []float64) error) error {
	rng := rand.New(rand.NewSource(seed))
	point := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range point {
			point[j] = rng.Float64() * span
		}
		if err := emit(point); err != nil {
			return err
		}
	}
	return nil
}
