package data

import (
	"math"
	"math/rand"

	"dbsvec/internal/vec"
)

// Distribution is one entry of the ten-distribution robustness suite the
// paper refers to in Section III-C ("confirmed by experiments ... on
// datasets of ten different distributions"): DBSVEC's split conditions must
// stay rare across qualitatively different density structures.
type Distribution struct {
	Name   string
	Eps    float64
	MinPts int
	Gen    func(n int, seed int64) *vec.Dataset
}

// Distributions returns the ten-distribution suite. Every generator yields
// 2-D data in roughly [0,100]² so one (Eps, MinPts) works per entry.
func Distributions() []Distribution {
	return []Distribution{
		{Name: "gaussian-blobs", Eps: 3, MinPts: 8,
			Gen: func(n int, seed int64) *vec.Dataset { return Blobs(n, 2, 4, 2, 100, 0.02, seed) }},
		{Name: "uniform-noise", Eps: 3, MinPts: 8,
			Gen: func(n int, seed int64) *vec.Dataset { return Uniform(n, 2, 100, seed) }},
		{Name: "moons", Eps: 3, MinPts: 8, Gen: Moons},
		{Name: "spirals", Eps: 3.5, MinPts: 6, Gen: Spirals},
		{Name: "anisotropic", Eps: 3, MinPts: 8, Gen: Anisotropic},
		{Name: "varied-density", Eps: 3, MinPts: 8, Gen: VariedDensity},
		{Name: "lattice", Eps: 4, MinPts: 6, Gen: Lattice},
		{Name: "ring-and-core", Eps: 4, MinPts: 8, Gen: RingAndCore},
		{Name: "exponential", Eps: 3, MinPts: 8, Gen: ExponentialClusters},
		{Name: "filaments", Eps: 3, MinPts: 6,
			Gen: func(n int, seed int64) *vec.Dataset { return RoadMap(n, 6, seed) }},
	}
}

// Moons generates two interleaving half-moons, the classic non-convex
// clustering benchmark.
func Moons(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	half := n / 2
	for i := 0; i < half; i++ {
		theta := math.Pi * rng.Float64()
		coords = append(coords,
			50+30*math.Cos(theta)+rng.NormFloat64()*1.5,
			30+30*math.Sin(theta)+rng.NormFloat64()*1.5)
	}
	for i := half; i < n; i++ {
		theta := math.Pi * rng.Float64()
		coords = append(coords,
			65-30*math.Cos(theta)+rng.NormFloat64()*1.5,
			45-30*math.Sin(theta)+rng.NormFloat64()*1.5)
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// Spirals generates two interleaved Archimedean spirals.
func Spirals(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	half := n / 2
	emit := func(count int, phase float64) {
		for i := 0; i < count; i++ {
			t := 0.5 + 3*math.Pi*float64(i)/float64(count)
			r := 2.2 * t
			coords = append(coords,
				50+r*math.Cos(t+phase)+rng.NormFloat64()*0.8,
				50+r*math.Sin(t+phase)+rng.NormFloat64()*0.8)
		}
	}
	emit(half, 0)
	emit(n-half, math.Pi)
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// Anisotropic generates stretched, rotated Gaussian clusters.
func Anisotropic(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{25, 25}, {70, 30}, {45, 75}}
	angles := []float64{0.5, 2.0, 1.1}
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		c := i % len(centers)
		x := rng.NormFloat64() * 6 // long axis
		y := rng.NormFloat64() * 1 // short axis
		sin, cos := math.Sin(angles[c]), math.Cos(angles[c])
		coords = append(coords,
			centers[c][0]+x*cos-y*sin,
			centers[c][1]+x*sin+y*cos)
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// VariedDensity generates three clusters with very different densities.
func VariedDensity(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	specs := []struct {
		cx, cy, sd float64
		frac       float64
	}{
		{20, 20, 1.0, 0.5}, // dense
		{60, 30, 3.0, 0.3}, // medium
		{40, 75, 6.0, 0.2}, // sparse
	}
	for _, s := range specs {
		count := int(float64(n) * s.frac)
		for i := 0; i < count; i++ {
			coords = append(coords, s.cx+rng.NormFloat64()*s.sd, s.cy+rng.NormFloat64()*s.sd)
		}
	}
	for len(coords) < n*2 {
		coords = append(coords, rng.Float64()*100, rng.Float64()*100)
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// Lattice scatters points around a grid of lattice nodes — many small
// clusters in a regular arrangement.
func Lattice(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	const cells = 4
	for i := 0; i < n; i++ {
		gx := float64(rng.Intn(cells))
		gy := float64(rng.Intn(cells))
		coords = append(coords,
			12+gx*25+rng.NormFloat64()*1.2,
			12+gy*25+rng.NormFloat64()*1.2)
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// RingAndCore generates a dense core surrounded by a separate ring — the
// shape that defeats centroid methods and motivates density clustering.
func RingAndCore(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*2)
	half := n / 2
	for i := 0; i < half; i++ { // core
		coords = append(coords, 50+rng.NormFloat64()*4, 50+rng.NormFloat64()*4)
	}
	for i := half; i < n; i++ { // ring
		theta := rng.Float64() * 2 * math.Pi
		r := 30 + rng.NormFloat64()*1.5
		coords = append(coords, 50+r*math.Cos(theta), 50+r*math.Sin(theta))
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

// ExponentialClusters draws cluster offsets from an exponential
// distribution, producing dense cores with heavy one-sided tails.
func ExponentialClusters(n int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := [][2]float64{{20, 20}, {70, 60}}
	coords := make([]float64, 0, n*2)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		coords = append(coords,
			c[0]+rng.ExpFloat64()*3*sign(rng),
			c[1]+rng.ExpFloat64()*3*sign(rng))
	}
	ds, _ := vec.NewDatasetUnchecked(coords, 2)
	return ds
}

func sign(rng *rand.Rand) float64 {
	if rng.Intn(2) == 0 {
		return -1
	}
	return 1
}
