package data

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dbsvec/internal/vec"
)

// Property: CSV round trips preserve every coordinate bit-for-bit for
// random datasets (the 'g'/-1 float format is lossless).
func TestQuickCSVRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		d := 1 + rng.Intn(6)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * 1e6
			}
		}
		ds, _ := vec.FromRows(rows)
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds, nil); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if got.Len() != n || got.Dim() != d {
			return false
		}
		for i, v := range ds.Coords() {
			if got.Coords()[i] != v {
				t.Logf("seed %d: coord %d %v != %v", seed, i, got.Coords()[i], v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: binary round trips preserve coordinates exactly too.
func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200)
		d := 1 + rng.Intn(8)
		coords := make([]float64, n*d)
		for i := range coords {
			coords[i] = rng.NormFloat64()
		}
		ds, _ := vec.NewDataset(coords, d)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, ds); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if got.Len() != n || got.Dim() != d {
			return false
		}
		for i, v := range coords {
			if got.Coords()[i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Fuzz-flavored robustness: arbitrary junk lines must produce an error or a
// valid dataset, never a panic.
func TestReadCSVNeverPanics(t *testing.T) {
	inputs := []string{
		"",
		",,,\n",
		"1,2\n,\n",
		"1e309,2\n", // overflow parses to +Inf -> must be rejected
		"#only,a,comment\n",
		"a,b\n1,2\n3,x\n",
		strings.Repeat("1,2,3\n", 1000) + "oops\n",
		"\x00\x01\x02\n",
		"1,2\r\n3,4\r\n", // CRLF
	}
	for i, in := range inputs {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("input %d panicked: %v", i, r)
				}
			}()
			ds, err := ReadCSV(strings.NewReader(in))
			if err == nil && ds != nil {
				if verr := ds.Validate(); verr != nil {
					t.Errorf("input %d: accepted invalid data: %v", i, verr)
				}
			}
		}()
	}
}

func TestReadCSVCRLF(t *testing.T) {
	ds, err := ReadCSV(strings.NewReader("1,2\r\n3,4\r\n"))
	if err != nil {
		t.Fatalf("CRLF input rejected: %v", err)
	}
	if ds.Len() != 2 || ds.Point(0)[1] != 2 {
		t.Errorf("CRLF parse wrong: %+v", ds.Coords())
	}
}
