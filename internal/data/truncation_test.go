package data

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestReadModelTruncationTable: every strict prefix of a valid model stream
// — from zero bytes up to one byte short of the full artifact — is rejected
// with an error classifying as ErrMalformed. A truncated file (partial
// download, torn write) must never surface a raw io.EOF that callers could
// mistake for a clean end of input, and must never be accepted.
func TestReadModelTruncationTable(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, a); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if len(full) < 64 {
		t.Fatalf("test artifact implausibly small (%d bytes)", len(full))
	}

	for cut := 0; cut < len(full); cut++ {
		_, err := ReadModel(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("cut %d/%d: truncated model accepted", cut, len(full))
		}
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("cut %d/%d: err = %v, want ErrMalformed", cut, len(full), err)
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			t.Fatalf("cut %d/%d: raw EOF escaped unclassified", cut, len(full))
		}
	}

	// And the untruncated stream still loads.
	if _, err := ReadModel(bytes.NewReader(full)); err != nil {
		t.Fatalf("full stream: %v", err)
	}
}
