package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dbsvec/internal/svdd"
)

// Model artifact format: one versioned little-endian container shared by the
// clustering model (per-sub-cluster SVDD snapshots plus run parameters) and
// the standalone one-class model (a single snapshot). Every variable-length
// section is length-prefixed and the counts are overflow-checked before any
// allocation, mirroring the dataset binary format in binio.go; float64
// values round-trip bit-exactly (encoded via Float64bits), so
// save → load → save is byte-identical.
//
//	offset  size  field
//	0       4     magic "DBSM"
//	4       4     format version (uint32, currently 2)
//	8       1     kind (1 = clustering, 2 = one-class)
//	9       1     precision (0 = float64, 1 = float32 storage; v2 only)
//	10      8     eps (float64 bits; 0 for one-class)
//	18      4     minPts (uint32; 0 for one-class)
//	22      4     dim (uint32)
//	26      4     clusters (uint32; 0 for one-class)
//	30      4     entry count (uint32)
//	34      ...   entries
//
// Version 1 files lack the precision byte (the layout above shifted up by
// one); readers accept both and map v1 to precision 0. The precision byte
// records the storage mode of the training dataset so a loaded model can
// report how it was produced; snapshot coordinates are float64 bits in every
// version (in float32 storage they are exact widenings, so nothing is lost).
//
// Each entry:
//
//	0       4     cluster id (int32; final compacted id, 0 for one-class)
//	4       1     flags (bit 0 = degraded, bit 1 = snapshot present)
//	5       ...   snapshot, when present
//
// Each snapshot:
//
//	0       4     dim (uint32, must equal the header dim)
//	4       4     support-vector count k (uint32, >= 1)
//	8       8*5   nu, sigma, r2, alphaDot (float64 bits), iterations (uint64)
//	48      1     converged (0/1)
//	49      4*k   support-vector ids (int32)
//	...     8*k   alphas (float64 bits)
//	...     8*k   boundary scores (float64 bits)
//	...     8*k*dim coordinates, row-major (float64 bits)
const (
	modelMagic     = "DBSM"
	modelVersion   = 2
	modelVersionV1 = 1
)

// Model artifact kinds.
const (
	ModelKindClustering byte = 1
	ModelKindOneClass   byte = 2
)

// Model precision values (ModelArtifact.Precision).
const (
	ModelPrecisionF64 byte = 0
	ModelPrecisionF32 byte = 1
)

const (
	modelFlagDegraded = 1 << 0
	modelFlagSnapshot = 1 << 1

	// maxModelDim / maxModelEntries / maxModelValues bound hostile headers
	// before any count-driven allocation. maxModelValues matches binio's
	// 1 TiB cap on the coordinate payload.
	maxModelDim     = 1 << 20
	maxModelEntries = 1 << 24
	maxModelValues  = (1 << 40) / 8
)

// ModelEntry is one retained sub-cluster model inside a ModelArtifact.
type ModelEntry struct {
	// Cluster is the final (compacted) cluster id the model belongs to;
	// several entries may share one id when sub-clusters merged.
	Cluster int32
	// Degraded marks a sub-cluster whose SVDD training failed recoverably
	// and was completed by exact range expansion; Snap may still be present
	// (the best feasible iterate) or nil (no usable model).
	Degraded bool
	// Snap is the serialized SVDD state; nil only for degraded entries.
	Snap *svdd.Snapshot
}

// ModelArtifact is the deserialized form of a model file: the run
// parameters needed to reproduce assignment semantics plus the retained
// snapshots. Kind distinguishes the clustering container from the
// standalone one-class one (a single entry, no eps/minPts/clusters).
type ModelArtifact struct {
	Kind byte
	// Precision records the storage mode of the training dataset
	// (ModelPrecisionF64 / ModelPrecisionF32). Files written before the field
	// existed (format v1) load as ModelPrecisionF64.
	Precision byte
	Eps       float64
	MinPts    int
	Dim       int
	Clusters  int
	Entries   []ModelEntry
}

// validate rejects artifacts the reader would refuse, so WriteModel can
// never produce an unreadable file.
func (a *ModelArtifact) validate() error {
	if a.Kind != ModelKindClustering && a.Kind != ModelKindOneClass {
		return fmt.Errorf("data: unknown model kind %d", a.Kind)
	}
	if a.Precision > ModelPrecisionF32 {
		return fmt.Errorf("data: unknown model precision %d", a.Precision)
	}
	if a.Dim <= 0 || a.Dim > maxModelDim {
		return fmt.Errorf("data: model dimensionality %d out of range", a.Dim)
	}
	if math.IsNaN(a.Eps) || math.IsInf(a.Eps, 0) || a.Eps < 0 {
		return fmt.Errorf("data: model eps %g invalid", a.Eps)
	}
	if a.MinPts < 0 || a.Clusters < 0 {
		return fmt.Errorf("data: negative model counts")
	}
	if len(a.Entries) > maxModelEntries {
		return fmt.Errorf("data: %d model entries exceed the format cap", len(a.Entries))
	}
	if a.Kind == ModelKindOneClass && len(a.Entries) != 1 {
		return fmt.Errorf("data: one-class artifact must hold exactly one entry, has %d", len(a.Entries))
	}
	for i := range a.Entries {
		e := &a.Entries[i]
		if a.Kind == ModelKindClustering && (e.Cluster < 0 || int(e.Cluster) >= a.Clusters) {
			return fmt.Errorf("data: entry %d cluster id %d outside [0,%d)", i, e.Cluster, a.Clusters)
		}
		if e.Snap == nil {
			if !e.Degraded {
				return fmt.Errorf("data: entry %d has no snapshot and is not degraded", i)
			}
			continue
		}
		if e.Snap.Dim != a.Dim {
			return fmt.Errorf("data: entry %d snapshot dim %d != artifact dim %d", i, e.Snap.Dim, a.Dim)
		}
		if err := snapshotWritable(e.Snap); err != nil {
			return fmt.Errorf("data: entry %d: %w", i, err)
		}
	}
	return nil
}

// snapshotWritable checks the structural and finiteness invariants the
// reader enforces.
func snapshotWritable(s *svdd.Snapshot) error {
	k := len(s.IDs)
	if k == 0 || k > maxModelValues/max(1, s.Dim) {
		return fmt.Errorf("snapshot with %d support vectors out of range", k)
	}
	if len(s.Alpha) != k || len(s.Score) != k || len(s.Coords) != k*s.Dim {
		return fmt.Errorf("snapshot slice lengths inconsistent")
	}
	if !(s.Sigma > 0) || math.IsInf(s.Sigma, 0) {
		return fmt.Errorf("snapshot sigma %g invalid", s.Sigma)
	}
	if s.Iterations < 0 {
		return fmt.Errorf("snapshot iteration count negative")
	}
	for _, v := range [...]float64{s.Nu, s.R2, s.AlphaDot} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("snapshot scalar %g not finite", v)
		}
	}
	if !floatsFinite(s.Alpha) || !floatsFinite(s.Score) || !floatsFinite(s.Coords) {
		return fmt.Errorf("snapshot carries non-finite values")
	}
	return nil
}

func floatsFinite(vs []float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// modelWriter accumulates little-endian primitives with sticky errors.
type modelWriter struct {
	w   *bufio.Writer
	err error
}

func (mw *modelWriter) bytes(b []byte) {
	if mw.err == nil {
		_, mw.err = mw.w.Write(b)
	}
}

func (mw *modelWriter) u8(v byte) { mw.bytes([]byte{v}) }

func (mw *modelWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	mw.bytes(b[:])
}

func (mw *modelWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	mw.bytes(b[:])
}

func (mw *modelWriter) f64(v float64) { mw.u64(math.Float64bits(v)) }

func (mw *modelWriter) i32s(vs []int32) {
	for _, v := range vs {
		mw.u32(uint32(v))
	}
}

func (mw *modelWriter) f64s(vs []float64) {
	for _, v := range vs {
		mw.f64(v)
	}
}

// WriteModel streams the artifact to w in the versioned binary format. The
// encoding is canonical — field order is fixed and no map iteration is
// involved — so equal artifacts always serialize to equal bytes.
func WriteModel(w io.Writer, a *ModelArtifact) error {
	if a == nil {
		return fmt.Errorf("data: nil model artifact")
	}
	if err := a.validate(); err != nil {
		return err
	}
	mw := &modelWriter{w: bufio.NewWriterSize(w, 1<<16)}
	mw.bytes([]byte(modelMagic))
	mw.u32(modelVersion)
	mw.u8(a.Kind)
	mw.u8(a.Precision)
	mw.f64(a.Eps)
	mw.u32(uint32(a.MinPts))
	mw.u32(uint32(a.Dim))
	mw.u32(uint32(a.Clusters))
	mw.u32(uint32(len(a.Entries)))
	for i := range a.Entries {
		e := &a.Entries[i]
		mw.u32(uint32(e.Cluster))
		var flags byte
		if e.Degraded {
			flags |= modelFlagDegraded
		}
		if e.Snap != nil {
			flags |= modelFlagSnapshot
		}
		mw.u8(flags)
		if s := e.Snap; s != nil {
			mw.u32(uint32(s.Dim))
			mw.u32(uint32(len(s.IDs)))
			mw.f64(s.Nu)
			mw.f64(s.Sigma)
			mw.f64(s.R2)
			mw.f64(s.AlphaDot)
			mw.u64(uint64(s.Iterations))
			if s.Converged {
				mw.u8(1)
			} else {
				mw.u8(0)
			}
			mw.i32s(s.IDs)
			mw.f64s(s.Alpha)
			mw.f64s(s.Score)
			mw.f64s(s.Coords)
		}
	}
	if mw.err != nil {
		return mw.err
	}
	return mw.w.Flush()
}

// modelReader consumes little-endian primitives with sticky errors; every
// short read is classified as ErrMalformed (a model file is self-delimiting,
// so EOF mid-structure is always truncation, not end of input).
type modelReader struct {
	r   *bufio.Reader
	err error
}

func (mr *modelReader) fail(format string, args ...any) {
	if mr.err == nil {
		mr.err = fmt.Errorf("%w: "+format, append([]any{ErrMalformed}, args...)...)
	}
}

func (mr *modelReader) bytes(b []byte) {
	if mr.err != nil {
		return
	}
	if _, err := io.ReadFull(mr.r, b); err != nil {
		mr.err = fmt.Errorf("%w: truncated model: %w", ErrMalformed, err)
	}
}

func (mr *modelReader) u8() byte {
	var b [1]byte
	mr.bytes(b[:])
	return b[0]
}

func (mr *modelReader) u32() uint32 {
	var b [4]byte
	mr.bytes(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (mr *modelReader) u64() uint64 {
	var b [8]byte
	mr.bytes(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (mr *modelReader) f64() float64 { return math.Float64frombits(mr.u64()) }

func (mr *modelReader) finite(name string) float64 {
	v := mr.f64()
	if mr.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		mr.fail("%s %g not finite", name, v)
	}
	return v
}

func (mr *modelReader) i32s(n int) []int32 {
	if mr.err != nil {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(mr.u32())
		if mr.err != nil {
			return nil
		}
	}
	return out
}

func (mr *modelReader) f64s(n int, name string) []float64 {
	if mr.err != nil {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = mr.f64()
		if mr.err != nil {
			return nil
		}
		if math.IsNaN(out[i]) || math.IsInf(out[i], 0) {
			mr.fail("%s[%d] not finite", name, i)
			return nil
		}
	}
	return out
}

// ReadModel parses a model artifact written by WriteModel. Malformed input —
// bad magic, unsupported version, implausible counts, truncated sections
// (including a stream that ends inside the header, or an empty stream),
// non-finite values, inconsistent dimensions — is rejected with an error
// wrapping ErrMalformed; genuine I/O failures of the underlying reader pass
// through unwrapped. A short read is never surfaced as a raw io.EOF /
// io.ErrUnexpectedEOF: a model file is self-delimiting, so running out of
// bytes anywhere is truncation, not end of input.
func ReadModel(r io.Reader) (*ModelArtifact, error) {
	mr := &modelReader{r: bufio.NewReaderSize(r, 1<<16)}
	var magic [4]byte
	if _, err := io.ReadFull(mr.r, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("%w: truncated model header: %w", ErrMalformed, err)
		}
		return nil, fmt.Errorf("data: reading model header: %w", err)
	}
	if string(magic[:]) != modelMagic {
		return nil, fmt.Errorf("%w: bad model magic %q", ErrMalformed, magic[:])
	}
	version := mr.u32()
	if mr.err == nil && version != modelVersion && version != modelVersionV1 {
		return nil, fmt.Errorf("%w: unsupported model version %d (supported: %d, %d)", ErrMalformed, version, modelVersionV1, modelVersion)
	}
	a := &ModelArtifact{}
	a.Kind = mr.u8()
	if version >= modelVersion {
		a.Precision = mr.u8()
	}
	a.Eps = mr.finite("eps")
	a.MinPts = int(mr.u32())
	a.Dim = int(mr.u32())
	a.Clusters = int(mr.u32())
	entries := mr.u32()
	if mr.err != nil {
		return nil, mr.err
	}
	if a.Kind != ModelKindClustering && a.Kind != ModelKindOneClass {
		return nil, fmt.Errorf("%w: unknown model kind %d", ErrMalformed, a.Kind)
	}
	if a.Precision > ModelPrecisionF32 {
		return nil, fmt.Errorf("%w: unknown model precision %d", ErrMalformed, a.Precision)
	}
	if a.Eps < 0 {
		return nil, fmt.Errorf("%w: negative eps %g", ErrMalformed, a.Eps)
	}
	if a.Dim <= 0 || a.Dim > maxModelDim {
		return nil, fmt.Errorf("%w: implausible model dimensionality %d", ErrMalformed, a.Dim)
	}
	if entries > maxModelEntries {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrMalformed, entries)
	}
	if a.Kind == ModelKindOneClass && entries != 1 {
		return nil, fmt.Errorf("%w: one-class artifact with %d entries", ErrMalformed, entries)
	}
	a.Entries = make([]ModelEntry, 0, entries)
	for i := 0; i < int(entries); i++ {
		cid := int32(mr.u32())
		flags := mr.u8()
		if mr.err != nil {
			return nil, mr.err
		}
		if flags&^(modelFlagDegraded|modelFlagSnapshot) != 0 {
			return nil, fmt.Errorf("%w: entry %d has unknown flags %#x", ErrMalformed, i, flags)
		}
		e := ModelEntry{Cluster: cid, Degraded: flags&modelFlagDegraded != 0}
		if a.Kind == ModelKindClustering && (cid < 0 || int(cid) >= a.Clusters) {
			return nil, fmt.Errorf("%w: entry %d cluster id %d outside [0,%d)", ErrMalformed, i, cid, a.Clusters)
		}
		if flags&modelFlagSnapshot != 0 {
			snap, err := mr.readSnapshot(a.Dim)
			if err != nil {
				return nil, err
			}
			e.Snap = snap
		} else if !e.Degraded {
			return nil, fmt.Errorf("%w: entry %d has no snapshot and is not degraded", ErrMalformed, i)
		}
		a.Entries = append(a.Entries, e)
	}
	// A model file holds exactly one artifact; trailing bytes mean the
	// stream is not what it claims to be.
	if _, err := mr.r.ReadByte(); err != io.EOF {
		if err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("%w: trailing bytes after model artifact", ErrMalformed)
	}
	return a, nil
}

// readSnapshot parses one snapshot section, bounding every count before the
// corresponding allocation.
func (mr *modelReader) readSnapshot(wantDim int) (*svdd.Snapshot, error) {
	dim := int(mr.u32())
	k := int(mr.u32())
	if mr.err != nil {
		return nil, mr.err
	}
	if dim != wantDim {
		return nil, fmt.Errorf("%w: snapshot dim %d != artifact dim %d", ErrMalformed, dim, wantDim)
	}
	// Reject oversized counts before computing k*dim: the product can wrap
	// for hostile pairs and sneak past a cap checked only on the product
	// (the same guard binio applies to n×d).
	if k <= 0 || k > maxModelValues/dim {
		return nil, fmt.Errorf("%w: implausible support-vector count %d (dim %d)", ErrMalformed, k, dim)
	}
	s := &svdd.Snapshot{Dim: dim}
	s.Nu = mr.finite("nu")
	s.Sigma = mr.f64()
	s.R2 = mr.finite("r2")
	s.AlphaDot = mr.finite("alphaDot")
	iters := mr.u64()
	conv := mr.u8()
	if mr.err != nil {
		return nil, mr.err
	}
	if !(s.Sigma > 0) || math.IsInf(s.Sigma, 0) {
		return nil, fmt.Errorf("%w: snapshot sigma %g invalid", ErrMalformed, s.Sigma)
	}
	if iters > math.MaxInt32 {
		return nil, fmt.Errorf("%w: implausible iteration count %d", ErrMalformed, iters)
	}
	if conv > 1 {
		return nil, fmt.Errorf("%w: invalid converged byte %d", ErrMalformed, conv)
	}
	s.Iterations = int(iters)
	s.Converged = conv == 1
	s.IDs = mr.i32s(k)
	s.Alpha = mr.f64s(k, "alpha")
	s.Score = mr.f64s(k, "score")
	s.Coords = mr.f64s(k*dim, "coords")
	if mr.err != nil {
		return nil, mr.err
	}
	return s, nil
}
