package data

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

func TestBlobsShape(t *testing.T) {
	ds := Blobs(500, 3, 4, 2, 100, 0.1, 1)
	if ds.Len() != 500 || ds.Dim() != 3 {
		t.Fatalf("n=%d d=%d", ds.Len(), ds.Dim())
	}
	lo, hi := ds.Bounds()
	for j := 0; j < 3; j++ {
		if lo[j] < 0 || hi[j] > 100 {
			t.Errorf("dim %d out of [0,100]: [%v,%v]", j, lo[j], hi[j])
		}
	}
	if err := ds.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBlobsDeterministic(t *testing.T) {
	a := Blobs(100, 2, 3, 1, 50, 0, 7)
	b := Blobs(100, 2, 3, 1, 50, 0, 7)
	for i := range a.Coords() {
		if a.Coords()[i] != b.Coords()[i] {
			t.Fatal("same seed must give identical data")
		}
	}
	c := Blobs(100, 2, 3, 1, 50, 0, 8)
	same := true
	for i := range a.Coords() {
		if a.Coords()[i] != c.Coords()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestEmbeddings(t *testing.T) {
	ds := Embeddings(400, 64, 8, 0.3, 3)
	if ds.Len() != 400 || ds.Dim() != 64 {
		t.Fatalf("shape %dx%d", ds.Len(), ds.Dim())
	}
	for i := 0; i < ds.Len(); i++ {
		if n := vec.Norm(ds.Point(i)); math.Abs(n-1) > 1e-9 {
			t.Fatalf("point %d norm %v, want 1", i, n)
		}
	}
	// Same seed reproduces; points assigned round-robin to the same center
	// should be angularly closer on average than cross-cluster pairs.
	ds2 := Embeddings(400, 64, 8, 0.3, 3)
	for i := 0; i < ds.Len(); i += 41 {
		if vec.Dist(ds.Point(i), ds2.Point(i)) != 0 {
			t.Fatalf("point %d not reproducible", i)
		}
	}
	var same, cross float64
	for i := 0; i+9 < ds.Len(); i += 8 {
		same += vec.Dot(ds.Point(i), ds.Point(i+8))
		cross += vec.Dot(ds.Point(i), ds.Point(i+9))
	}
	if same <= cross {
		t.Fatalf("same-cluster mean dot %v not above cross-cluster %v", same, cross)
	}
}

func TestSeedSpreader(t *testing.T) {
	ds := SeedSpreader{N: 2000, D: 8, Seed: 3}.Generate()
	if ds.Len() != 2000 || ds.Dim() != 8 {
		t.Fatalf("n=%d d=%d", ds.Len(), ds.Dim())
	}
	lo, hi := ds.Bounds()
	for j := 0; j < 8; j++ {
		if lo[j] < 0 || hi[j] > 1e5 {
			t.Errorf("dim %d out of domain: [%v,%v]", j, lo[j], hi[j])
		}
	}
	// Density structure: mean nearest-neighbor distance of clustered points
	// must be far below the uniform expectation.
	if err := ds.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRing(t *testing.T) {
	ds := Ring(100, 5, 0, 1)
	tol := 1e-9
	if vec.DefaultPrecision() == vec.F32 {
		// Under a global f32 storage default the generator's coordinates are
		// quantized once; the radius moves by at most a few float32 ULPs.
		tol = 1e-6
	}
	for i := 0; i < ds.Len(); i++ {
		r := math.Hypot(ds.Point(i)[0], ds.Point(i)[1])
		if math.Abs(r-5) > tol {
			t.Fatalf("point %d radius %v, want 5", i, r)
		}
	}
}

func TestDimSetAndD31(t *testing.T) {
	ds := DimSet(1024, 32, 2)
	if ds.Len() != 1024 || ds.Dim() != 32 {
		t.Fatalf("DimSet n=%d d=%d", ds.Len(), ds.Dim())
	}
	d31 := D31(2)
	if d31.Len() != 3100 || d31.Dim() != 2 {
		t.Fatalf("D31 n=%d d=%d", d31.Len(), d31.Dim())
	}
}

func TestShapes(t *testing.T) {
	t48 := Chameleon48K(1)
	if t48.Len() != 8000 || t48.Dim() != 2 {
		t.Fatalf("t4.8k n=%d d=%d", t48.Len(), t48.Dim())
	}
	t710 := Chameleon710K(1)
	if t710.Len() != 10000 || t710.Dim() != 2 {
		t.Fatalf("t7.10k n=%d d=%d", t710.Len(), t710.Dim())
	}
	rm := RoadMap(6014, 12, 1)
	if rm.Len() != 6014 || rm.Dim() != 2 {
		t.Fatalf("RoadMap n=%d d=%d", rm.Len(), rm.Dim())
	}
}

func TestOpenSuiteShapes(t *testing.T) {
	for _, e := range OpenSuite() {
		ds := e.Gen(1)
		if ds.Len() != e.N || ds.Dim() != e.D {
			t.Errorf("%s: generated %dx%d, want %dx%d", e.Name, ds.Len(), ds.Dim(), e.N, e.D)
		}
		if e.Eps <= 0 || e.MinPts < 1 {
			t.Errorf("%s: missing parameters", e.Name)
		}
	}
}

func TestSuiteByName(t *testing.T) {
	e, err := SuiteByName("t4.8k")
	if err != nil || e.N != 8000 {
		t.Errorf("SuiteByName(t4.8k) = %+v, %v", e, err)
	}
	if _, err := SuiteByName("nonexistent"); err == nil {
		t.Error("want error for unknown dataset")
	}
}

func TestRealWorldSuite(t *testing.T) {
	for _, e := range RealWorldSuite() {
		ds := e.Gen(1000, 1)
		if ds.Len() != 1000 || ds.Dim() != e.D {
			t.Errorf("%s: %dx%d, want 1000x%d", e.Name, ds.Len(), ds.Dim(), e.D)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{1.5, -2}, {3, 4.25}})
	res := &cluster.Result{Labels: []int32{0, cluster.Noise}, Clusters: 1}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds, res); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1.5,-2,0") || !strings.Contains(out, "3,4.25,-1") {
		t.Fatalf("unexpected csv output:\n%s", out)
	}
	// Read back without the label column.
	var buf2 bytes.Buffer
	if err := WriteCSV(&buf2, ds, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Dim() != 2 || got.Point(1)[1] != 4.25 {
		t.Errorf("round trip mismatch: %+v", got.Coords())
	}
}

func TestReadCSVHeaderAndComments(t *testing.T) {
	in := "x,y\n# comment\n1,2\n\n3,4\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 {
		t.Errorf("n = %d, want 2", ds.Len())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := Blobs(500, 7, 3, 2, 100, 0.05, 9)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() || got.Dim() != ds.Dim() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Len(), got.Dim(), ds.Len(), ds.Dim())
	}
	for i, v := range ds.Coords() {
		if got.Coords()[i] != v {
			t.Fatalf("coordinate %d differs: %v vs %v", i, got.Coords()[i], v)
		}
	}
}

func TestBinaryEmpty(t *testing.T) {
	ds, _ := vec.NewDataset(nil, 3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dim() != 3 {
		t.Errorf("empty round trip: %dx%d", got.Len(), got.Dim())
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a dataset")); err == nil {
		t.Error("garbage should error")
	}
	// Valid header, truncated body.
	ds := Blobs(100, 2, 2, 1, 50, 0, 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated stream should error")
	}
	// Wrong magic.
	bad := append([]byte("XXXX"), buf.Bytes()[4:]...)
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic should error")
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("1,2\nfoo,bar\n")); err == nil {
		t.Error("want error for non-numeric data row")
	}
	if _, err := ReadCSV(strings.NewReader("1,2\n3\n")); err == nil {
		t.Error("want error for ragged rows")
	}
	if _, err := ReadCSV(strings.NewReader("1,NaN\n")); err == nil {
		t.Error("want error for NaN")
	}
}

func TestDistributionsSuite(t *testing.T) {
	suite := Distributions()
	if len(suite) != 10 {
		t.Fatalf("want 10 distributions, got %d", len(suite))
	}
	seen := map[string]bool{}
	for _, d := range suite {
		if seen[d.Name] {
			t.Errorf("duplicate distribution name %q", d.Name)
		}
		seen[d.Name] = true
		ds := d.Gen(200, 1)
		if ds.Len() != 200 || ds.Dim() != 2 {
			t.Errorf("%s: generated %dx%d, want 200x2", d.Name, ds.Len(), ds.Dim())
		}
		if err := ds.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.Eps <= 0 || d.MinPts < 1 {
			t.Errorf("%s: missing parameters", d.Name)
		}
		// Determinism per seed.
		again := d.Gen(200, 1)
		for i := range ds.Coords() {
			if ds.Coords()[i] != again.Coords()[i] {
				t.Errorf("%s: not deterministic", d.Name)
				break
			}
		}
	}
}

func TestMoonsAndSpiralsShape(t *testing.T) {
	m := Moons(400, 2)
	lo, hi := m.Bounds()
	if hi[0]-lo[0] < 40 {
		t.Error("moons should span a wide x range")
	}
	s := Spirals(400, 2)
	if s.Len() != 400 {
		t.Errorf("spirals n = %d", s.Len())
	}
}

func TestUniform(t *testing.T) {
	ds := Uniform(100, 4, 10, 5)
	if ds.Len() != 100 || ds.Dim() != 4 {
		t.Fatal("shape wrong")
	}
	lo, hi := ds.Bounds()
	for j := 0; j < 4; j++ {
		if lo[j] < 0 || hi[j] > 10 {
			t.Errorf("dim %d out of range", j)
		}
	}
}
