package data

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

// ReadCSV parses comma-separated numeric rows into a dataset. Blank lines
// and lines starting with '#' are skipped; a first row that fails numeric
// parsing entirely is treated as a header. All data rows must share one
// dimensionality and contain only finite values.
func ReadCSV(r io.Reader) (*vec.Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var rows [][]float64
	lineNo := 0
	headerAllowed := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		row := make([]float64, 0, len(fields))
		ok := true
		for _, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				ok = false
				break
			}
			row = append(row, v)
		}
		if !ok {
			if headerAllowed {
				headerAllowed = false
				continue
			}
			return nil, fmt.Errorf("%w: line %d: non-numeric field", ErrMalformed, lineNo)
		}
		headerAllowed = false
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("data: reading csv: %w", err)
	}
	ds, err := vec.FromRows(rows)
	if err != nil {
		// Ragged rows and non-finite values are input defects, not I/O
		// failures; fold them into the malformed taxonomy.
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	return ds, nil
}

// WriteCSV writes the dataset as comma-separated rows, optionally appending
// each point's cluster label as a final column when res is non-nil.
func WriteCSV(w io.Writer, ds *vec.Dataset, res *cluster.Result) error {
	bw := bufio.NewWriter(w)
	d := ds.Dim()
	for i := 0; i < ds.Len(); i++ {
		p := ds.Point(i)
		for j := 0; j < d; j++ {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.FormatFloat(p[j], 'g', -1, 64)); err != nil {
				return err
			}
		}
		if res != nil {
			if _, err := fmt.Fprintf(bw, ",%d", res.Labels[i]); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
