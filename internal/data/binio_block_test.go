package data

import (
	"bytes"
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

// TestBinaryBlockMatchesSlurp is the block-read property test: for both
// on-disk precisions and arbitrary block partitions (including single-point
// blocks and one full-file block), reassembling the coordinate section from
// ReadBinaryBlock calls over io.ReaderAt is bit-identical to the bufio slurp
// path's widened master.
func TestBinaryBlockMatchesSlurp(t *testing.T) {
	for _, prec := range []vec.Precision{vec.F64, vec.F32} {
		t.Run(prec.String(), func(t *testing.T) {
			ds, err := Blobs(257, 6, 3, 2, 100, 0.05, 11).ToPrecision(prec)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteBinary(&buf, ds); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()

			slurped, err := ReadBinary(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}

			ra := bytes.NewReader(raw)
			h, err := ReadBinaryHeader(ra)
			if err != nil {
				t.Fatal(err)
			}
			if h.N != ds.Len() || h.D != ds.Dim() || h.Precision() != prec {
				t.Fatalf("header = %+v (prec %v), want n=%d d=%d prec %v",
					h, h.Precision(), ds.Len(), ds.Dim(), prec)
			}

			rng := rand.New(rand.NewSource(41))
			for trial := 0; trial < 20; trial++ {
				coords := make([]float64, h.N*h.D)
				start := 0
				for start < h.N {
					count := 1 + rng.Intn(h.N-start)
					if trial == 0 {
						count = h.N // one full-file block
					} else if trial == 1 {
						count = 1 // point-at-a-time
					}
					if err := ReadBinaryBlock(ra, h, start, count, coords[start*h.D:]); err != nil {
						t.Fatalf("block [%d,%d): %v", start, start+count, err)
					}
					start += count
				}
				for i, v := range coords {
					if v != slurped.Coords()[i] {
						t.Fatalf("trial %d: value %d differs from slurp path", trial, i)
					}
				}
			}
		})
	}
}

// TestBinaryBlockBounds rejects out-of-range and undersized-buffer reads.
func TestBinaryBlockBounds(t *testing.T) {
	ds := Blobs(10, 3, 2, 2, 100, 0.05, 7)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	ra := bytes.NewReader(buf.Bytes())
	h, err := ReadBinaryHeader(ra)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 100)
	for _, bad := range []struct{ start, count int }{
		{-1, 2}, {0, -1}, {9, 2}, {11, 0}, {0, 11},
	} {
		if err := ReadBinaryBlock(ra, h, bad.start, bad.count, out); err == nil {
			t.Fatalf("block [%d,%d) accepted", bad.start, bad.start+bad.count)
		}
	}
	if err := ReadBinaryBlock(ra, h, 0, 4, make([]float64, 4*h.D-1)); err == nil {
		t.Fatal("undersized buffer accepted")
	}
	if err := ReadBinaryBlock(ra, h, 3, 0, nil); err != nil {
		t.Fatalf("empty block: %v", err)
	}
}

// TestBinaryWriterMatchesWriteBinary pins the streaming writer byte-identical
// to WriteBinary on the materialized dataset, for both precisions and for
// chunked as well as point-at-a-time appends.
func TestBinaryWriterMatchesWriteBinary(t *testing.T) {
	for _, prec := range []vec.Precision{vec.F64, vec.F32} {
		t.Run(prec.String(), func(t *testing.T) {
			ds, err := Blobs(123, 4, 2, 2, 100, 0.05, 13).ToPrecision(prec)
			if err != nil {
				t.Fatal(err)
			}
			var want bytes.Buffer
			if err := WriteBinary(&want, ds); err != nil {
				t.Fatal(err)
			}

			for _, chunk := range []int{1, 7, ds.Len()} {
				var got bytes.Buffer
				bw, err := NewBinaryWriter(&got, ds.Len(), ds.Dim(), prec)
				if err != nil {
					t.Fatal(err)
				}
				for start := 0; start < ds.Len(); start += chunk {
					end := start + chunk
					if end > ds.Len() {
						end = ds.Len()
					}
					if err := bw.WritePoints(ds.Coords()[start*ds.Dim() : end*ds.Dim()]); err != nil {
						t.Fatal(err)
					}
				}
				if err := bw.Close(); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got.Bytes(), want.Bytes()) {
					t.Fatalf("chunk %d: streamed bytes differ from WriteBinary", chunk)
				}
			}
		})
	}
}

// TestBinaryWriterCountMismatch: Close refuses a short stream, and appending
// past the declared count fails immediately.
func TestBinaryWriterCountMismatch(t *testing.T) {
	var buf bytes.Buffer
	bw, err := NewBinaryWriter(&buf, 3, 2, vec.F64)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WritePoints([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := bw.Close(); err == nil {
		t.Fatal("Close accepted 2 of 3 declared points")
	}

	bw, err = NewBinaryWriter(&buf, 1, 2, vec.F64)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.WritePoints([]float64{1, 2, 3, 4}); err == nil {
		t.Fatal("writer accepted more points than declared")
	}
	if err := bw.WritePoints([]float64{1, 2, 3}); err == nil {
		t.Fatal("writer accepted a ragged chunk")
	}
}
