package data

import (
	"fmt"

	"dbsvec/internal/vec"
)

// SuiteEntry describes one dataset of the accuracy suite (the stand-ins for
// Table III's open datasets) together with the clustering parameters used
// for it.
type SuiteEntry struct {
	// Name matches the paper's dataset label.
	Name string
	// N and D are the original dataset's cardinality and dimensionality,
	// which the stand-in reproduces exactly.
	N, D int
	// Eps and MinPts are the clustering parameters used in experiments.
	Eps    float64
	MinPts int
	// Gen materializes the stand-in.
	Gen func(seed int64) *vec.Dataset
}

// OpenSuite returns the stand-ins for the eleven open datasets of
// Table III, in the paper's column order. Every entry keeps the original
// (n, d); densities are calibrated so DBSCAN produces meaningful clusters
// at the listed parameters.
func OpenSuite() []SuiteEntry {
	return []SuiteEntry{
		{Name: "Seeds", N: 210, D: 7, Eps: 7, MinPts: 5,
			Gen: func(seed int64) *vec.Dataset { return UCIAnalog(210, 7, 3, seed) }},
		{Name: "Map-Jo.", N: 6014, D: 2, Eps: 8, MinPts: 8,
			Gen: func(seed int64) *vec.Dataset { return RoadMap(6014, 12, seed) }},
		{Name: "Map-Fi.", N: 13467, D: 2, Eps: 8, MinPts: 8,
			Gen: func(seed int64) *vec.Dataset { return RoadMap(13467, 25, seed) }},
		{Name: "Breast.", N: 669, D: 9, Eps: 9, MinPts: 5,
			Gen: func(seed int64) *vec.Dataset { return UCIAnalog(669, 9, 2, seed) }},
		{Name: "House", N: 34112, D: 3, Eps: 3, MinPts: 10,
			Gen: func(seed int64) *vec.Dataset { return UCIAnalog(34112, 3, 10, seed) }},
		{Name: "Miss.", N: 6480, D: 16, Eps: 14, MinPts: 8,
			Gen: func(seed int64) *vec.Dataset { return UCIAnalog(6480, 16, 6, seed) }},
		{Name: "Dim32", N: 1024, D: 32, Eps: 25, MinPts: 8,
			Gen: func(seed int64) *vec.Dataset { return DimSet(1024, 32, seed) }},
		{Name: "Dim64", N: 1024, D: 64, Eps: 35, MinPts: 8,
			Gen: func(seed int64) *vec.Dataset { return DimSet(1024, 64, seed) }},
		{Name: "Data31", N: 3100, D: 2, Eps: 2.5, MinPts: 8,
			Gen: func(seed int64) *vec.Dataset { return D31(seed) }},
		{Name: "t4.8k", N: 8000, D: 2, Eps: 8.5, MinPts: 20,
			Gen: Chameleon48K},
		{Name: "t7.10k", N: 10000, D: 2, Eps: 8.5, MinPts: 18,
			Gen: Chameleon710K},
	}
}

// SuiteByName returns the entry with the given name.
func SuiteByName(name string) (SuiteEntry, error) {
	for _, e := range OpenSuite() {
		if e.Name == name {
			return e, nil
		}
	}
	return SuiteEntry{}, fmt.Errorf("data: unknown suite dataset %q", name)
}

// RealWorldEntry is a stand-in for one of the paper's large real datasets
// (Section V-C). Cardinality is scalable so the harness can run reduced
// sizes; Scale(1) reproduces the original cardinality.
type RealWorldEntry struct {
	Name string
	// FullN and D are the original cardinality and dimensionality.
	FullN, D int
	// Gen materializes the stand-in with the requested cardinality.
	Gen func(n int, seed int64) *vec.Dataset
}

// RealWorldSuite returns stand-ins for PAMAP2 (17-d activity monitoring),
// Sensors (11-d sensor readings) and Corel-Image (32-d image features),
// used by the Figure 7 radius sweeps.
func RealWorldSuite() []RealWorldEntry {
	return []RealWorldEntry{
		{Name: "PAMAP2", FullN: 1050199, D: 17,
			Gen: func(n int, seed int64) *vec.Dataset {
				return SeedSpreader{N: n, D: 17, Clusters: 12, Seed: seed}.Generate()
			}},
		{Name: "Sensors", FullN: 919438, D: 11,
			Gen: func(n int, seed int64) *vec.Dataset {
				return SeedSpreader{N: n, D: 11, Clusters: 15, Seed: seed}.Generate()
			}},
		{Name: "Corel-Image", FullN: 68040, D: 32,
			Gen: func(n int, seed int64) *vec.Dataset {
				return Blobs(n, 32, 60, 900, 1e5, 0.01, seed)
			}},
	}
}
