package data

import "errors"

// ErrMalformed is the root of the loader error taxonomy: every rejection of
// malformed input — non-numeric CSV fields, ragged rows, non-finite values,
// bad binary headers, truncated coordinate blocks — wraps it, so callers can
// classify any parse failure with errors.Is(err, ErrMalformed) and surface
// the specific violation from the message. I/O failures of the underlying
// reader are NOT malformed input and do not wrap it.
var ErrMalformed = errors.New("data: malformed input")
