package data

import (
	"math"
	"math/rand"

	"dbsvec/internal/vec"
)

// shapeEmitter accumulates 2-D points for the arbitrary-shape benchmark
// analogues.
type shapeEmitter struct {
	rng    *rand.Rand
	coords []float64
}

func (e *shapeEmitter) point(x, y float64) {
	e.coords = append(e.coords, x, y)
}

// band emits n points along the parametric curve fn(t), t in [0,1], with
// the given orthogonal thickness.
func (e *shapeEmitter) band(n int, thickness float64, fn func(t float64) (x, y float64)) {
	for i := 0; i < n; i++ {
		t := e.rng.Float64()
		x, y := fn(t)
		e.point(x+e.rng.NormFloat64()*thickness, y+e.rng.NormFloat64()*thickness)
	}
}

// disk emits n points uniformly in a disk.
func (e *shapeEmitter) disk(n int, cx, cy, r float64) {
	for i := 0; i < n; i++ {
		theta := e.rng.Float64() * 2 * math.Pi
		rr := r * math.Sqrt(e.rng.Float64())
		e.point(cx+rr*math.Cos(theta), cy+rr*math.Sin(theta))
	}
}

// annulus emits n points in a ring between r0 and r1.
func (e *shapeEmitter) annulus(n int, cx, cy, r0, r1 float64) {
	for i := 0; i < n; i++ {
		theta := e.rng.Float64() * 2 * math.Pi
		rr := r0 + (r1-r0)*e.rng.Float64()
		e.point(cx+rr*math.Cos(theta), cy+rr*math.Sin(theta))
	}
}

// uniformNoise scatters n points in the box [0,w]×[0,h].
func (e *shapeEmitter) uniformNoise(n int, w, h float64) {
	for i := 0; i < n; i++ {
		e.point(e.rng.Float64()*w, e.rng.Float64()*h)
	}
}

// Chameleon48K is an analogue of the chameleon benchmark t4.8k (Karypis et
// al.): 8000 2-D points forming six arbitrary shapes — two sine bands, a
// horizontal bar, two disks and an annulus — over ~10% uniform noise, in a
// [0,640]×[0,320] canvas (the original raster extent).
func Chameleon48K(seed int64) *vec.Dataset {
	e := &shapeEmitter{rng: rand.New(rand.NewSource(seed))}
	const w, h = 640.0, 320.0
	// Upper sine band.
	e.band(1500, 6, func(t float64) (float64, float64) {
		return 40 + t*560, 240 + 40*math.Sin(t*4*math.Pi)
	})
	// Lower sine band, phase shifted.
	e.band(1500, 6, func(t float64) (float64, float64) {
		return 40 + t*560, 120 + 40*math.Sin(t*4*math.Pi+math.Pi)
	})
	// Horizontal bar.
	e.band(1200, 5, func(t float64) (float64, float64) {
		return 80 + t*480, 40
	})
	// Two dense disks.
	e.disk(1200, 150, 180, 28)
	e.disk(1200, 460, 180, 28)
	// Annulus around the right disk region.
	e.annulus(600, 320, 60, 22, 30)
	// ~10% noise.
	e.uniformNoise(800, w, h)
	ds, _ := vec.NewDatasetUnchecked(e.coords, 2)
	return ds
}

// Chameleon710K is an analogue of chameleon t7.10k: 10000 2-D points in
// nine snake-like and compact shapes over uniform noise.
func Chameleon710K(seed int64) *vec.Dataset {
	e := &shapeEmitter{rng: rand.New(rand.NewSource(seed))}
	const w, h = 700.0, 500.0
	// Three nested arcs.
	for k := 0; k < 3; k++ {
		r := 80 + float64(k)*35
		e.band(900, 5, func(t float64) (float64, float64) {
			theta := math.Pi * (0.15 + 0.7*t)
			return 220 + r*math.Cos(theta), 120 + r*math.Sin(theta)
		})
	}
	// An S-curve.
	e.band(1100, 6, func(t float64) (float64, float64) {
		return 420 + 120*t, 250 + 90*math.Sin(t*2*math.Pi)
	})
	// Diagonal filament.
	e.band(900, 5, func(t float64) (float64, float64) {
		return 60 + 250*t, 350 + 120*t
	})
	// Two disks and two small annuli.
	e.disk(1300, 560, 120, 35)
	e.disk(1200, 120, 80, 30)
	e.annulus(700, 600, 380, 25, 35)
	e.annulus(700, 350, 420, 20, 30)
	// Noise.
	e.uniformNoise(1400, w, h)
	ds, _ := vec.NewDatasetUnchecked(e.coords, 2)
	return ds
}

// RoadMap is an analogue of the Mopsi location datasets (Map-Joensuu,
// Map-Finland): n 2-D points scattered along a network of random polyline
// "roads" connecting town hubs, with towns contributing dense disks.
func RoadMap(n int, towns int, seed int64) *vec.Dataset {
	e := &shapeEmitter{rng: rand.New(rand.NewSource(seed))}
	const w, h = 1000.0, 1000.0
	hubs := make([][2]float64, towns)
	for i := range hubs {
		hubs[i] = [2]float64{e.rng.Float64() * w, e.rng.Float64() * h}
	}
	townPts := n / 2
	roadPts := n - townPts
	// Towns: dense disks of varying radius.
	for i := 0; i < townPts; i++ {
		hb := hubs[e.rng.Intn(towns)]
		r := 8 + e.rng.Float64()*20
		theta := e.rng.Float64() * 2 * math.Pi
		rr := r * math.Sqrt(e.rng.Float64())
		e.point(hb[0]+rr*math.Cos(theta), hb[1]+rr*math.Sin(theta))
	}
	// Roads: points jittered along hub-to-hub segments.
	for i := 0; i < roadPts; i++ {
		a := hubs[e.rng.Intn(towns)]
		b := hubs[e.rng.Intn(towns)]
		t := e.rng.Float64()
		x := a[0] + t*(b[0]-a[0])
		y := a[1] + t*(b[1]-a[1])
		e.point(x+e.rng.NormFloat64()*3, y+e.rng.NormFloat64()*3)
	}
	ds, _ := vec.NewDatasetUnchecked(e.coords, 2)
	return ds
}
