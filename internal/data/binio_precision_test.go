package data

import (
	"bytes"
	"encoding/binary"
	"testing"

	"dbsvec/internal/vec"
)

// TestBinaryF32RoundTrip: a float32-storage dataset writes the half-size v2
// format and reads back in float32 storage with both views intact.
func TestBinaryF32RoundTrip(t *testing.T) {
	ds, err := Blobs(300, 5, 3, 2, 100, 0.05, 9).ToPrecision(vec.F32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(buf.Bytes()[4:]); v != binVersionF32 {
		t.Fatalf("version = %d, want %d", v, binVersionF32)
	}
	if want := 4 + 20 + 4*300*5; buf.Len() != want {
		t.Fatalf("v2 file is %d bytes, want %d (half-size payload)", buf.Len(), want)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Precision() != vec.F32 {
		t.Fatalf("read precision = %v, want F32", got.Precision())
	}
	gm, dm := got.Matrix32(), ds.Matrix32()
	for i := range dm.Coords {
		if gm.Coords[i] != dm.Coords[i] {
			t.Fatalf("mirror[%d] differs after round trip", i)
		}
		if got.Coords()[i] != ds.Coords()[i] {
			t.Fatalf("master[%d] differs after round trip", i)
		}
	}
}

// TestBinaryV1ByteIdentical pins backward compatibility in the write
// direction: a float64 dataset must still produce the exact v1 bytes files
// written before float32 storage existed.
func TestBinaryV1ByteIdentical(t *testing.T) {
	ds, err := Blobs(50, 3, 2, 2, 100, 0.05, 3).ToPrecision(vec.F64)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if string(b[:4]) != binMagic {
		t.Fatalf("magic %q", b[:4])
	}
	if v := binary.LittleEndian.Uint32(b[4:]); v != binVersion {
		t.Fatalf("f64 dataset wrote version %d, want %d", v, binVersion)
	}
	if want := 4 + 20 + 8*50*3; len(b) != want {
		t.Fatalf("v1 file is %d bytes, want %d", len(b), want)
	}
}

// TestBinaryPrecisionConversionRoundTrip: writing the F32 conversion and the
// original through their own formats yields datasets whose distances agree
// exactly with in-memory ToPrecision — the codec never adds a rounding step.
func TestBinaryPrecisionConversionRoundTrip(t *testing.T) {
	src := Blobs(120, 4, 2, 2, 100, 0.05, 5)
	ds32, err := src.ToPrecision(vec.F32)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, ds32); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < src.Len(); i++ {
		for j := range back.Point(i) {
			if back.Point(i)[j] != ds32.Point(i)[j] {
				t.Fatalf("point %d coordinate %d drifted through the codec", i, j)
			}
		}
	}
}
