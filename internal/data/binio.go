package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dbsvec/internal/vec"
)

// Binary dataset format: a fixed little-endian header followed by the flat
// coordinate array. Used by the full-scale harness to cache multi-million
// point generated datasets across runs (parsing CSV at 10M×8 floats costs
// more than generating the data).
//
//	offset  size  field
//	0       4     magic "DBSV"
//	4       4     format version (uint32: 1 = float64, 2 = float32)
//	8       8     n (uint64)
//	16      8     d (uint64)
//	24      …     coordinates, row-major: float64 bits (v1) / float32 bits (v2)
//
// The version doubles as the storage precision: float64 datasets write
// version 1 — byte-identical to files produced before float32 storage
// existed — while float32 datasets write version 2 with the mirror's float32
// bits (half the file, no information lost: the master is the mirror's exact
// widening). Readers accept both and return a dataset of the file's
// precision.
const (
	binMagic      = "DBSV"
	binVersion    = 1
	binVersionF32 = 2

	// binHeaderSize is the fixed byte length of the header preceding the
	// coordinate section.
	binHeaderSize = 4 + 4 + 8 + 8
)

// BinHeader describes a binary dataset file without loading its coordinates.
// It is the contract between the out-of-core readers: the header fixes the
// value width and the offset of every point, so arbitrary point ranges can be
// read directly via io.ReaderAt.
type BinHeader struct {
	// Version is the on-disk format version (1 = float64, 2 = float32).
	Version uint32
	// N and D are the point count and dimensionality.
	N, D int
}

// Precision returns the storage precision the file's version encodes.
func (h BinHeader) Precision() vec.Precision {
	if h.Version == binVersionF32 {
		return vec.F32
	}
	return vec.F64
}

// valueWidth returns the byte width of one coordinate value.
func (h BinHeader) valueWidth() int {
	if h.Version == binVersionF32 {
		return 4
	}
	return 8
}

// PointBytes returns the byte length of one row-major point record.
func (h BinHeader) PointBytes() int64 { return int64(h.D) * int64(h.valueWidth()) }

// DataOffset returns the file offset of point 0.
func (h BinHeader) DataOffset() int64 { return binHeaderSize }

// parseBinHeader validates a raw header block. Shared by the streaming
// ReadBinary path and the io.ReaderAt probe so both enforce identical bounds.
func parseBinHeader(head []byte) (BinHeader, error) {
	if string(head[:4]) != binMagic {
		return BinHeader{}, fmt.Errorf("%w: bad magic %q", ErrMalformed, head[:4])
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version != binVersion && version != binVersionF32 {
		return BinHeader{}, fmt.Errorf("%w: unsupported binary version %d", ErrMalformed, version)
	}
	n := binary.LittleEndian.Uint64(head[8:])
	d := binary.LittleEndian.Uint64(head[16:])
	if d == 0 || d > 1<<20 {
		return BinHeader{}, fmt.Errorf("%w: implausible dimensionality %d", ErrMalformed, d)
	}
	// Reject oversized headers before computing n*d: the product itself can
	// wrap around uint64 for hostile (n, d) pairs and sneak past a cap
	// checked only on the product.
	const maxValues = (1 << 40) / 8
	if n > maxValues/d {
		return BinHeader{}, fmt.Errorf("%w: dataset too large: %d x %d values", ErrMalformed, n, d)
	}
	return BinHeader{Version: version, N: int(n), D: int(d)}, nil
}

// ReadBinaryHeader probes the fixed-size header of a binary dataset file
// without touching the coordinate section. The returned header drives
// ReadBinaryBlock for random access to point ranges.
func ReadBinaryHeader(r io.ReaderAt) (BinHeader, error) {
	var head [binHeaderSize]byte
	if _, err := r.ReadAt(head[:], 0); err != nil {
		return BinHeader{}, fmt.Errorf("data: reading binary header: %w", err)
	}
	return parseBinHeader(head[:])
}

// ReadBinaryBlock reads the half-open point range [start, start+count) into
// out, widening float32 files to float64 exactly as ReadBinary does (the
// widened values re-quantize bit-identically, so callers needing F32 storage
// convert via vec ToPrecision without loss). out must hold count*D values.
func ReadBinaryBlock(r io.ReaderAt, h BinHeader, start, count int, out []float64) error {
	if start < 0 || count < 0 || start > h.N-count {
		return fmt.Errorf("%w: block [%d,%d) outside %d points", ErrMalformed, start, start+count, h.N)
	}
	if len(out) < count*h.D {
		return fmt.Errorf("data: block buffer holds %d values, need %d", len(out), count*h.D)
	}
	if count == 0 {
		return nil
	}
	width := h.valueWidth()
	raw := make([]byte, count*h.D*width)
	off := h.DataOffset() + int64(start)*h.PointBytes()
	if _, err := r.ReadAt(raw, off); err != nil {
		return fmt.Errorf("%w: truncated coordinates: %w", ErrMalformed, err)
	}
	decodeBinCoords(raw, h.Version, out[:count*h.D])
	return nil
}

// decodeBinCoords decodes little-endian coordinate bytes into out. The slices
// must agree in length (len(raw) == len(out)*width).
func decodeBinCoords(raw []byte, version uint32, out []float64) {
	if version == binVersionF32 {
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
		}
		return
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
}

// WriteBinary streams the dataset to w in the binary format. The precision of
// ds selects the format version (see the format comment above).
func WriteBinary(w io.Writer, ds *vec.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	version := uint32(binVersion)
	if ds.Precision() == vec.F32 {
		version = binVersionF32
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(ds.Len()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(ds.Dim()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if version == binVersionF32 {
		var buf [4]byte
		for _, v := range ds.Matrix32().Coords {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	var buf [8]byte
	for _, v := range ds.Coords() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset written by WriteBinary. Version 2 files come
// back in float32 storage; version 1 files take the process default precision
// (quantizing once when DBSVEC_PRECISION=f32), matching what the same data
// would get when loaded from CSV.
func ReadBinary(r io.Reader) (*vec.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, binHeaderSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("data: reading binary header: %w", err)
	}
	h, err := parseBinHeader(head)
	if err != nil {
		return nil, err
	}
	coords := make([]float64, h.N*h.D)
	width := h.valueWidth()
	raw := make([]byte, width*4096)
	idx := 0
	for idx < len(coords) {
		want := (len(coords) - idx) * width
		if want > len(raw) {
			want = len(raw)
		}
		if _, err := io.ReadFull(br, raw[:want]); err != nil {
			return nil, fmt.Errorf("%w: truncated coordinates: %w", ErrMalformed, err)
		}
		decodeBinCoords(raw[:want], h.Version, coords[idx:idx+want/width])
		idx += want / width
	}
	ds, err := vec.NewDataset(coords, h.D)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if h.Version == binVersionF32 {
		// Widened float32 values re-quantize exactly; this only rebuilds the
		// mirror (no-op when the process default already quantized above).
		ds, err = ds.ToPrecision(vec.F32)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
		}
	}
	return ds, nil
}

// BinaryWriter streams a dataset to the binary format one point (or chunk of
// points) at a time, so datasets larger than RAM can be produced without ever
// materializing them. The header is written up front from the declared count;
// Close fails if the number of points written disagrees, leaving no silently
// short file. The byte stream is identical to WriteBinary on a materialized
// dataset of the same precision: float32 mode quantizes each value with the
// same single float32(v) rounding step vec ToPrecision applies.
type BinaryWriter struct {
	bw      *bufio.Writer
	prec    vec.Precision
	d       int
	n       int
	written int
	err     error
}

// NewBinaryWriter writes the format header for n points of dimension d in the
// given precision and returns a writer ready to append points.
func NewBinaryWriter(w io.Writer, n, d int, prec vec.Precision) (*BinaryWriter, error) {
	if n < 0 || d <= 0 || d > 1<<20 {
		return nil, fmt.Errorf("data: binary writer: implausible shape %d x %d", n, d)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return nil, err
	}
	version := uint32(binVersion)
	if prec == vec.F32 {
		version = binVersionF32
	}
	var hdr [binHeaderSize - 4]byte
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(n))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &BinaryWriter{bw: bw, prec: prec, d: d, n: n}, nil
}

// WritePoints appends len(coords)/d points from a flat row-major chunk.
func (w *BinaryWriter) WritePoints(coords []float64) error {
	if w.err != nil {
		return w.err
	}
	if len(coords)%w.d != 0 {
		w.err = fmt.Errorf("data: binary writer: %d values is not a multiple of dimension %d", len(coords), w.d)
		return w.err
	}
	pts := len(coords) / w.d
	if w.written+pts > w.n {
		w.err = fmt.Errorf("data: binary writer: %d points exceeds declared %d", w.written+pts, w.n)
		return w.err
	}
	if w.prec == vec.F32 {
		var buf [4]byte
		for _, v := range coords {
			f := float32(v)
			if math.IsInf(float64(f), 0) && !math.IsInf(v, 0) {
				w.err = fmt.Errorf("data: binary writer: %g overflows float32", v)
				return w.err
			}
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(f))
			if _, err := w.bw.Write(buf[:]); err != nil {
				w.err = err
				return err
			}
		}
	} else {
		var buf [8]byte
		for _, v := range coords {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := w.bw.Write(buf[:]); err != nil {
				w.err = err
				return err
			}
		}
	}
	w.written += pts
	return nil
}

// Close flushes buffered bytes and verifies the declared point count was
// delivered in full.
func (w *BinaryWriter) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.written != w.n {
		w.err = fmt.Errorf("data: binary writer: wrote %d of %d declared points", w.written, w.n)
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}
