package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dbsvec/internal/vec"
)

// Binary dataset format: a fixed little-endian header followed by the flat
// coordinate array. Used by the full-scale harness to cache multi-million
// point generated datasets across runs (parsing CSV at 10M×8 floats costs
// more than generating the data).
//
//	offset  size  field
//	0       4     magic "DBSV"
//	4       4     format version (uint32: 1 = float64, 2 = float32)
//	8       8     n (uint64)
//	16      8     d (uint64)
//	24      …     coordinates, row-major: float64 bits (v1) / float32 bits (v2)
//
// The version doubles as the storage precision: float64 datasets write
// version 1 — byte-identical to files produced before float32 storage
// existed — while float32 datasets write version 2 with the mirror's float32
// bits (half the file, no information lost: the master is the mirror's exact
// widening). Readers accept both and return a dataset of the file's
// precision.
const (
	binMagic      = "DBSV"
	binVersion    = 1
	binVersionF32 = 2
)

// WriteBinary streams the dataset to w in the binary format. The precision of
// ds selects the format version (see the format comment above).
func WriteBinary(w io.Writer, ds *vec.Dataset) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binMagic); err != nil {
		return err
	}
	version := uint32(binVersion)
	if ds.Precision() == vec.F32 {
		version = binVersionF32
	}
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], version)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(ds.Len()))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(ds.Dim()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if version == binVersionF32 {
		var buf [4]byte
		for _, v := range ds.Matrix32().Coords {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
		return bw.Flush()
	}
	var buf [8]byte
	for _, v := range ds.Coords() {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a dataset written by WriteBinary. Version 2 files come
// back in float32 storage; version 1 files take the process default precision
// (quantizing once when DBSVEC_PRECISION=f32), matching what the same data
// would get when loaded from CSV.
func ReadBinary(r io.Reader) (*vec.Dataset, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, 4+20)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("data: reading binary header: %w", err)
	}
	if string(head[:4]) != binMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrMalformed, head[:4])
	}
	version := binary.LittleEndian.Uint32(head[4:])
	if version != binVersion && version != binVersionF32 {
		return nil, fmt.Errorf("%w: unsupported binary version %d", ErrMalformed, version)
	}
	n := binary.LittleEndian.Uint64(head[8:])
	d := binary.LittleEndian.Uint64(head[16:])
	if d == 0 || d > 1<<20 {
		return nil, fmt.Errorf("%w: implausible dimensionality %d", ErrMalformed, d)
	}
	// Reject oversized headers before computing n*d: the product itself can
	// wrap around uint64 for hostile (n, d) pairs and sneak past a cap
	// checked only on the product.
	const maxValues = (1 << 40) / 8
	if n > maxValues/d {
		return nil, fmt.Errorf("%w: dataset too large: %d x %d values", ErrMalformed, n, d)
	}
	total := n * d
	coords := make([]float64, total)
	width := 8
	if version == binVersionF32 {
		width = 4
	}
	raw := make([]byte, width*4096)
	idx := 0
	for idx < len(coords) {
		want := (len(coords) - idx) * width
		if want > len(raw) {
			want = len(raw)
		}
		if _, err := io.ReadFull(br, raw[:want]); err != nil {
			return nil, fmt.Errorf("%w: truncated coordinates: %w", ErrMalformed, err)
		}
		if version == binVersionF32 {
			for off := 0; off < want; off += 4 {
				coords[idx] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[off:])))
				idx++
			}
		} else {
			for off := 0; off < want; off += 8 {
				coords[idx] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
				idx++
			}
		}
	}
	ds, err := vec.NewDataset(coords, int(d))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if err := ds.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
	}
	if version == binVersionF32 {
		// Widened float32 values re-quantize exactly; this only rebuilds the
		// mirror (no-op when the process default already quantized above).
		ds, err = ds.ToPrecision(vec.F32)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrMalformed, err)
		}
	}
	return ds, nil
}
