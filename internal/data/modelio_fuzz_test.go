package data

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"dbsvec/internal/svdd"
)

// fuzzSeedArtifact builds a tiny valid artifact by hand (no SVDD training in
// the fuzz path, which must stay fast).
func fuzzSeedArtifact() *ModelArtifact {
	snap := fuzzSeedSnapshot()
	return &ModelArtifact{
		Kind:     ModelKindClustering,
		Eps:      2,
		MinPts:   3,
		Dim:      2,
		Clusters: 2,
		Entries: []ModelEntry{
			{Cluster: 0, Snap: snap},
			{Cluster: 1, Degraded: true},
		},
	}
}

func fuzzSeedSnapshot() *svdd.Snapshot {
	return &svdd.Snapshot{
		Dim:      2,
		Nu:       0.1,
		Sigma:    1.5,
		R2:       0.25,
		AlphaDot: 0.5,
		IDs:      []int32{4, 9, 17},
		Alpha:    []float64{0.5, 0.25, 0.25},
		Score:    []float64{0.3, 0.2, 0.1},
		Coords:   []float64{0, 1, 2, 3, 4, 5},
	}
}

// FuzzReadModel drives the codec with arbitrary bytes: it must never panic,
// classify every rejection as ErrMalformed (or a plain read error on an
// empty/short magic), and — when it does accept an input — re-encode it to a
// byte-identical stream (canonical-form invariant).
func FuzzReadModel(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteModel(&buf, fuzzSeedArtifact()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("DBSM"))
	f.Add([]byte{})
	corrupted := append([]byte(nil), buf.Bytes()...)
	corrupted[len(corrupted)/2] ^= 0xff
	f.Add(corrupted)
	f.Add(buf.Bytes()[:buf.Len()-3])

	f.Fuzz(func(t *testing.T, in []byte) {
		a, err := ReadModel(bytes.NewReader(in))
		if err != nil {
			if !errors.Is(err, ErrMalformed) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
				t.Fatalf("unclassified error: %v", err)
			}
			return
		}
		var out bytes.Buffer
		if err := WriteModel(&out, a); err != nil {
			t.Fatalf("accepted artifact cannot be re-written: %v", err)
		}
		if !bytes.Equal(in, out.Bytes()) {
			t.Fatalf("accepted input is not in canonical form: %d bytes in, %d bytes out", len(in), out.Len())
		}
	})
}
