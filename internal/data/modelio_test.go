package data

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"dbsvec/internal/svdd"
	"dbsvec/internal/vec"
)

// testSnapshot trains a small SVDD model and snapshots it.
func testSnapshot(t *testing.T, n, d int, seed int64) *svdd.Snapshot {
	t.Helper()
	ds := Blobs(n, d, 2, 15, 300, 0.02, seed)
	m, err := svdd.Train(ds, vec.Iota(ds.Len()), svdd.Config{Nu: 0.1, Dim: d, MinPts: 8})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return m.Snapshot()
}

func testArtifact(t *testing.T) *ModelArtifact {
	t.Helper()
	return &ModelArtifact{
		Kind:      ModelKindClustering,
		Precision: ModelPrecisionF32,
		Eps:       4.5,
		MinPts:    8,
		Dim:       3,
		Clusters:  2,
		Entries: []ModelEntry{
			{Cluster: 0, Snap: testSnapshot(t, 120, 3, 1)},
			{Cluster: 1, Snap: testSnapshot(t, 90, 3, 2)},
			{Cluster: 1, Degraded: true, Snap: testSnapshot(t, 60, 3, 3)},
			{Cluster: 0, Degraded: true}, // degraded without a usable model
		},
	}
}

// TestModelRoundTrip: write → read reproduces every field bit-exactly, and
// re-writing the read artifact produces byte-identical output (the canonical
// encoding the save→load→save acceptance criterion pins).
func TestModelRoundTrip(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	first := append([]byte(nil), buf.Bytes()...)

	got, err := ReadModel(bytes.NewReader(first))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Kind != a.Kind || got.Precision != a.Precision || got.Eps != a.Eps ||
		got.MinPts != a.MinPts || got.Dim != a.Dim || got.Clusters != a.Clusters ||
		len(got.Entries) != len(a.Entries) {
		t.Fatalf("header drifted: %+v", got)
	}
	for i := range a.Entries {
		w, r := &a.Entries[i], &got.Entries[i]
		if w.Cluster != r.Cluster || w.Degraded != r.Degraded || (w.Snap == nil) != (r.Snap == nil) {
			t.Fatalf("entry %d meta drifted", i)
		}
		if w.Snap == nil {
			continue
		}
		ws, rs := w.Snap, r.Snap
		if ws.Dim != rs.Dim || ws.Nu != rs.Nu || ws.Sigma != rs.Sigma || ws.R2 != rs.R2 ||
			ws.AlphaDot != rs.AlphaDot || ws.Iterations != rs.Iterations || ws.Converged != rs.Converged {
			t.Fatalf("entry %d snapshot scalars drifted", i)
		}
		for j := range ws.IDs {
			if ws.IDs[j] != rs.IDs[j] || ws.Alpha[j] != rs.Alpha[j] || ws.Score[j] != rs.Score[j] {
				t.Fatalf("entry %d sv %d drifted", i, j)
			}
		}
		for j := range ws.Coords {
			if ws.Coords[j] != rs.Coords[j] {
				t.Fatalf("entry %d coord %d drifted (want bit-exact float64 round trip)", i, j)
			}
		}
	}

	var buf2 bytes.Buffer
	if err := WriteModel(&buf2, got); err != nil {
		t.Fatalf("re-write: %v", err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("save → load → save is not byte-identical")
	}
}

// TestModelOneClassRoundTrip covers the shared-format one-class container.
func TestModelOneClassRoundTrip(t *testing.T) {
	a := &ModelArtifact{
		Kind:    ModelKindOneClass,
		Dim:     3,
		Entries: []ModelEntry{{Snap: testSnapshot(t, 100, 3, 9)}},
	}
	var buf bytes.Buffer
	if err := WriteModel(&buf, a); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Kind != ModelKindOneClass || len(got.Entries) != 1 || got.Entries[0].Snap == nil {
		t.Fatalf("one-class artifact drifted: %+v", got)
	}
}

// TestReadModelMalformed exercises the rejection taxonomy: every corruption
// is wrapped in ErrMalformed and none panics.
func TestReadModelMalformed(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, a); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	mutate := func(f func(b []byte) []byte) []byte {
		cp := append([]byte(nil), valid...)
		return f(cp)
	}
	cases := []struct {
		name string
		in   []byte
	}{
		{"empty", nil},
		{"short magic", valid[:2]},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"future version", mutate(func(b []byte) []byte { b[4] = 99; return b })},
		{"bad kind", mutate(func(b []byte) []byte { b[8] = 7; return b })},
		{"bad precision", mutate(func(b []byte) []byte { b[9] = 7; return b })},
		{"nan eps", mutate(func(b []byte) []byte {
			putF64(b[10:], math.NaN())
			return b
		})},
		{"huge dim", mutate(func(b []byte) []byte {
			putU32(b[22:], 1<<30)
			return b
		})},
		{"zero dim", mutate(func(b []byte) []byte {
			putU32(b[22:], 0)
			return b
		})},
		{"huge entry count", mutate(func(b []byte) []byte {
			putU32(b[30:], 1<<30)
			return b
		})},
		{"truncated mid-entry", valid[:40]},
		{"truncated mid-coords", valid[:len(valid)-9]},
		{"trailing bytes", mutate(func(b []byte) []byte { return append(b, 0) })},
	}
	for _, tc := range cases {
		_, err := ReadModel(bytes.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !errors.Is(err, ErrMalformed) && tc.name != "empty" && tc.name != "short magic" {
			t.Errorf("%s: error %v does not wrap ErrMalformed", tc.name, err)
		}
	}
}

// TestReadModelV1Compat pins backward compatibility: a version-1 file — the
// layout without the precision byte — still loads, with Precision mapped to
// float64 storage. The fixture is hand-built because the current writer only
// emits version 2.
func TestReadModelV1Compat(t *testing.T) {
	a := testArtifact(t)
	var buf bytes.Buffer
	if err := WriteModel(&buf, a); err != nil {
		t.Fatal(err)
	}
	v2 := buf.Bytes()
	// Downgrade: version 1 and the precision byte (offset 9) removed.
	v1 := append([]byte(nil), v2[:9]...)
	v1 = append(v1, v2[10:]...)
	putU32(v1[4:], modelVersionV1)

	got, err := ReadModel(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("read v1: %v", err)
	}
	if got.Precision != ModelPrecisionF64 {
		t.Fatalf("v1 precision = %d, want ModelPrecisionF64", got.Precision)
	}
	if got.Kind != a.Kind || got.Eps != a.Eps || got.MinPts != a.MinPts ||
		got.Dim != a.Dim || got.Clusters != a.Clusters || len(got.Entries) != len(a.Entries) {
		t.Fatalf("v1 header drifted: %+v", got)
	}
	for i := range a.Entries {
		w, r := &a.Entries[i], &got.Entries[i]
		if w.Cluster != r.Cluster || w.Degraded != r.Degraded || (w.Snap == nil) != (r.Snap == nil) {
			t.Fatalf("v1 entry %d meta drifted", i)
		}
		if w.Snap != nil && (w.Snap.R2 != r.Snap.R2 || !bytes.Equal(int32Bytes(w.Snap.IDs), int32Bytes(r.Snap.IDs))) {
			t.Fatalf("v1 entry %d snapshot drifted", i)
		}
	}
}

func int32Bytes(vs []int32) []byte {
	out := make([]byte, 0, len(vs)*4)
	for _, v := range vs {
		out = append(out, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return out
}

// TestReadModelSizeOverflow mirrors the binio n×d wrap-around guard: a
// support-vector count and dimension whose product wraps uint64 must be
// rejected by the per-factor bound, never allocated.
func TestReadModelSizeOverflow(t *testing.T) {
	// Hand-build a header advertising one snapshot entry with k chosen so
	// that k*dim overflows while each factor alone looks plausible.
	var b []byte
	app32 := func(v uint32) { b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24)) }
	app64 := func(v uint64) {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	b = append(b, "DBSM"...)
	app32(1)                           // version
	b = append(b, ModelKindClustering) // kind
	app64(math.Float64bits(1))         // eps
	app32(4)                           // minPts
	app32(1 << 19)                     // dim (inside the dim cap)
	app32(1)                           // clusters
	app32(1)                           // entries
	app32(0)                           // entry cluster id
	b = append(b, modelFlagSnapshot)   // flags
	app32(1 << 19)                     // snapshot dim
	app32(1 << 30)                     // k: k*dim*8 would be 2^52 bytes
	_, err := ReadModel(bytes.NewReader(b))
	if err == nil {
		t.Fatal("accepted overflow-sized snapshot header")
	}
	if !errors.Is(err, ErrMalformed) {
		t.Fatalf("overflow error %v does not wrap ErrMalformed", err)
	}
}

// TestWriteModelRejectsInvalid: the writer enforces the same invariants as
// the reader, so no unreadable file can be produced.
func TestWriteModelRejectsInvalid(t *testing.T) {
	snap := testSnapshot(t, 80, 3, 4)
	cases := []struct {
		name string
		a    *ModelArtifact
	}{
		{"nil", nil},
		{"bad kind", &ModelArtifact{Kind: 9, Dim: 3}},
		{"zero dim", &ModelArtifact{Kind: ModelKindClustering, Dim: 0}},
		{"negative eps", &ModelArtifact{Kind: ModelKindClustering, Dim: 3, Eps: -1}},
		{"cluster out of range", &ModelArtifact{
			Kind: ModelKindClustering, Dim: 3, Clusters: 1,
			Entries: []ModelEntry{{Cluster: 5, Snap: snap}},
		}},
		{"dim mismatch", &ModelArtifact{
			Kind: ModelKindClustering, Dim: 2, Clusters: 1,
			Entries: []ModelEntry{{Cluster: 0, Snap: snap}},
		}},
		{"non-degraded without snapshot", &ModelArtifact{
			Kind: ModelKindClustering, Dim: 3, Clusters: 1,
			Entries: []ModelEntry{{Cluster: 0}},
		}},
		{"one-class multi entry", &ModelArtifact{
			Kind: ModelKindOneClass, Dim: 3,
			Entries: []ModelEntry{{Snap: snap}, {Snap: snap}},
		}},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := WriteModel(&buf, tc.a); err == nil {
			t.Errorf("%s: writer accepted invalid artifact", tc.name)
		}
	}
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}
