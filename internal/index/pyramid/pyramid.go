// Package pyramid implements the Pyramid technique (Berchtold, Böhm &
// Kriegel, SIGMOD 1998) as an in-memory range-query index — the lineage the
// paper cites (its P⁺-tree reference) for accelerating queries in high
// dimensional spaces where tree-based indexes stop pruning.
//
// Every point in the normalized space [0,1]^d maps to a single pyramid
// value: the data space is cut into 2d pyramids meeting at the center, a
// point belongs to the pyramid of its dominant deviation dimension, and its
// height within the pyramid is that deviation. Points are kept sorted by
// pyramid value (the static in-memory equivalent of the original's
// B⁺-tree), so a range query becomes at most 2d binary-searched scans of
// candidate runs followed by exact filtering.
package pyramid

import (
	"math"
	"sort"

	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Index is an immutable pyramid-technique index. Safe for concurrent
// readers.
type Index struct {
	ds  *vec.Dataset
	d   int
	lo  []float64 // per-dimension offset for normalization
	inv []float64 // per-dimension 1/extent
	// ids sorted by pyramid value, with the parallel value array.
	ids  []int32
	pval []float64
}

// New builds the index over ds.
func New(ds *vec.Dataset) *Index {
	d := ds.Dim()
	px := &Index{ds: ds, d: d}
	px.lo, px.inv = normalization(ds)
	n := ds.Len()
	px.ids = vec.Iota(n)
	px.pval = make([]float64, n)
	norm := make([]float64, d)
	for i := 0; i < n; i++ {
		px.normalize(ds.Point(i), norm)
		px.pval[i] = pyramidValue(norm)
	}
	sort.Sort(byValue{px})
	return px
}

// Build is an index.Builder.
func Build(ds *vec.Dataset) index.Index { return New(ds) }

func normalization(ds *vec.Dataset) (lo, inv []float64) {
	d := ds.Dim()
	bLo, bHi := ds.Bounds()
	lo = make([]float64, d)
	inv = make([]float64, d)
	for j := 0; j < d; j++ {
		ext := 1.0
		if bLo != nil {
			lo[j] = bLo[j]
			if e := bHi[j] - bLo[j]; e > 0 {
				ext = e
			}
		}
		inv[j] = 1 / ext
	}
	return lo, inv
}

// normalize maps p into [0,1]^d (points outside the build-time bounds are
// clamped; only queries can be outside).
func (px *Index) normalize(p []float64, dst []float64) {
	for j := 0; j < px.d; j++ {
		v := (p[j] - px.lo[j]) * px.inv[j]
		dst[j] = v
	}
}

// pyramidValue returns i + h for a normalized point: pyramid i in [0, 2d)
// and height h in [0, 0.5].
func pyramidValue(v []float64) float64 {
	jmax, hmax := 0, math.Abs(v[0]-0.5)
	for j := 1; j < len(v); j++ {
		if h := math.Abs(v[j] - 0.5); h > hmax {
			jmax, hmax = j, h
		}
	}
	i := jmax
	if v[jmax] >= 0.5 {
		i += len(v)
	}
	if hmax > 0.5 {
		hmax = 0.5 // clamped: only possible for out-of-bounds queries
	}
	return float64(i) + hmax
}

type byValue struct{ px *Index }

func (s byValue) Len() int { return len(s.px.ids) }
func (s byValue) Less(i, j int) bool {
	if s.px.pval[i] != s.px.pval[j] {
		return s.px.pval[i] < s.px.pval[j]
	}
	return s.px.ids[i] < s.px.ids[j]
}
func (s byValue) Swap(i, j int) {
	s.px.ids[i], s.px.ids[j] = s.px.ids[j], s.px.ids[i]
	s.px.pval[i], s.px.pval[j] = s.px.pval[j], s.px.pval[i]
}

// Len returns the number of indexed points.
func (px *Index) Len() int { return px.ds.Len() }

// forCandidates invokes fn with each contiguous run of candidate ids whose
// pyramid values fall in a run that can intersect the normalized query box
// [qlo, qhi]; fn returns false to stop the scan. Runs are handed out whole
// so callers can feed them to the batched distance kernels.
func (px *Index) forCandidates(qlo, qhi []float64, fn func(ids []int32) bool) {
	d := px.d
	// Shared refinement: any box point has |v̂_j| at least the minimum
	// absolute centered value of the box in every dimension, and pyramid
	// height dominates all of them.
	hFloor := 0.0
	for j := 0; j < d; j++ {
		lo := qlo[j] - 0.5
		hi := qhi[j] - 0.5
		var m float64
		switch {
		case lo <= 0 && hi >= 0:
			m = 0
		case lo > 0:
			m = lo
		default:
			m = -hi
		}
		if m > hFloor {
			hFloor = m
		}
	}
	if hFloor > 0.5 {
		return // query box entirely outside the data space
	}
	for i := 0; i < 2*d; i++ {
		j := i % d
		neg := i < d
		// Height interval induced by the query box along dimension j.
		var hmin, hmax float64
		if neg { // v_j < 0.5, h = 0.5 - v_j
			hmin = 0.5 - qhi[j]
			hmax = 0.5 - qlo[j]
		} else { // v_j >= 0.5, h = v_j - 0.5
			hmin = qlo[j] - 0.5
			hmax = qhi[j] - 0.5
		}
		if hmax < 0 {
			continue // box does not reach this pyramid's half-space
		}
		if hmin < hFloor {
			hmin = hFloor
		}
		if hmin < 0 {
			hmin = 0
		}
		if hmax > 0.5 {
			hmax = 0.5
		}
		if hmin > hmax {
			continue
		}
		loV := float64(i) + hmin
		hiV := float64(i) + hmax
		start := sort.SearchFloat64s(px.pval, loV)
		end := start
		for end < len(px.pval) && px.pval[end] <= hiV {
			end++
		}
		if end > start && !fn(px.ids[start:end]) {
			return
		}
	}
}

// queryBox computes the normalized bounding box of the eps-sphere at q.
func (px *Index) queryBox(q []float64, eps float64) (qlo, qhi []float64) {
	qlo = make([]float64, px.d)
	qhi = make([]float64, px.d)
	for j := 0; j < px.d; j++ {
		qlo[j] = (q[j] - eps - px.lo[j]) * px.inv[j]
		qhi[j] = (q[j] + eps - px.lo[j]) * px.inv[j]
	}
	return qlo, qhi
}

// RangeQuery implements index.Index.
func (px *Index) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if px.ds.Len() == 0 {
		return buf
	}
	eps2 := eps * eps
	qlo, qhi := px.queryBox(q, eps)
	px.forCandidates(qlo, qhi, func(ids []int32) bool {
		buf = px.ds.FilterWithinIDs(q, eps2, ids, buf)
		return true
	})
	return buf
}

// RangeCount implements index.Index.
func (px *Index) RangeCount(q []float64, eps float64, limit int) int {
	if px.ds.Len() == 0 {
		return 0
	}
	eps2 := eps * eps
	qlo, qhi := px.queryBox(q, eps)
	count := 0
	px.forCandidates(qlo, qhi, func(ids []int32) bool {
		rem := 0
		if limit > 0 {
			rem = limit - count
		}
		count += px.ds.CountWithinIDs(q, eps2, ids, rem)
		return limit <= 0 || count < limit
	})
	return count
}

var _ index.Index = (*Index)(nil)
