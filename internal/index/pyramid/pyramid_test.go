package pyramid

import (
	"math/rand"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "pyramid", Build)
}

func TestConformanceF32(t *testing.T) {
	indextest.RunF32(t, "pyramid", Build)
}

func TestDynamicConformance(t *testing.T) {
	indextest.Run(t, "pyramid-dynamic", BuildDynamic)
}

func TestDynamicMatchesStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 600)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	static := New(ds)
	dyn := BuildDynamic(ds)
	for iter := 0; iter < 40; iter++ {
		q := rows[rng.Intn(len(rows))]
		eps := 5 + rng.Float64()*40
		if a, b := static.RangeCount(q, eps, 0), dyn.RangeCount(q, eps, 0); a != b {
			t.Fatalf("static %d != dynamic %d (eps=%g)", a, b, eps)
		}
	}
}

func TestPyramidValueAssignment(t *testing.T) {
	// Center maps to height 0; corners to height 0.5.
	if v := pyramidValue([]float64{0.5, 0.5}); v != float64(int(v)) {
		t.Errorf("center should have zero height, got %v", v)
	}
	v := pyramidValue([]float64{1, 0.5})
	if v != 2+0.5 { // dim 0, positive side => pyramid d+0 = 2 for d=2
		t.Errorf("corner value = %v, want 2.5", v)
	}
	v = pyramidValue([]float64{0, 0.5})
	if v != 0+0.5 { // dim 0, negative side => pyramid 0
		t.Errorf("corner value = %v, want 0.5", v)
	}
}

func TestHighDimensionalQueries(t *testing.T) {
	// The pyramid technique must stay exact in high dimensions.
	rng := rand.New(rand.NewSource(3))
	d := 24
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Float64() * 1000
		}
	}
	ds, _ := vec.FromRows(rows)
	px := New(ds)
	oracle := index.NewLinear(ds)
	for iter := 0; iter < 30; iter++ {
		q := rows[rng.Intn(len(rows))]
		eps := 200 + rng.Float64()*800
		got := px.RangeCount(q, eps, 0)
		want := oracle.RangeCount(q, eps, 0)
		if got != want {
			t.Fatalf("d=24 count %d != %d (eps=%g)", got, want, eps)
		}
	}
}

func TestQueryOutsideDataSpace(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {10, 10}})
	px := New(ds)
	// Far outside: nothing in range.
	if got := px.RangeQuery([]float64{100, 100}, 5, nil); len(got) != 0 {
		t.Errorf("far query returned %v", got)
	}
	// Outside but reaching in.
	if got := px.RangeQuery([]float64{-3, -3}, 5, nil); len(got) != 1 {
		t.Errorf("reaching query returned %v, want the origin point", got)
	}
}

func TestDegenerateDimensions(t *testing.T) {
	// A constant dimension must not break normalization.
	ds, _ := vec.FromRows([][]float64{{1, 7}, {2, 7}, {3, 7}})
	px := New(ds)
	got := px.RangeQuery([]float64{2, 7}, 1.1, nil)
	if len(got) != 3 {
		t.Errorf("got %d ids, want 3", len(got))
	}
}

func BenchmarkRangeQuery16D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	d := 16
	coords := make([]float64, 50000*d)
	for i := range coords {
		coords[i] = rng.Float64() * 1e5
	}
	ds, _ := vec.NewDataset(coords, d)
	px := New(ds)
	var buf []int32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = px.RangeQuery(ds.Point(i%ds.Len()), 20000, buf[:0])
	}
}
