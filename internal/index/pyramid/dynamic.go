package pyramid

import (
	"dbsvec/internal/btree"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Dynamic is the pyramid technique over a B+-tree, as in the original
// design: points can be added after construction (the data-space
// normalization is fixed at build time, so later points should fall inside
// the initial bounds for good pyramid balance — out-of-bounds points are
// still indexed correctly, only less selectively).
type Dynamic struct {
	ds   *vec.Dataset
	d    int
	lo   []float64
	inv  []float64
	tree btree.Tree
	n    int
}

// NewDynamic builds an empty dynamic pyramid index whose normalization is
// derived from ds's current bounds; call Insert to add points.
func NewDynamic(ds *vec.Dataset) *Dynamic {
	px := &Dynamic{ds: ds, d: ds.Dim()}
	px.lo, px.inv = normalization(ds)
	return px
}

// BuildDynamic is an index.Builder that inserts every point one at a time.
func BuildDynamic(ds *vec.Dataset) index.Index {
	px := NewDynamic(ds)
	for i := 0; i < ds.Len(); i++ {
		px.Insert(int32(i))
	}
	return px
}

// Insert indexes point id.
func (px *Dynamic) Insert(id int32) {
	norm := make([]float64, px.d)
	px.normalizeInto(px.ds.Point(int(id)), norm)
	px.tree.Insert(pyramidValue(norm), id)
	px.n++
}

func (px *Dynamic) normalizeInto(p, dst []float64) {
	for j := 0; j < px.d; j++ {
		dst[j] = (p[j] - px.lo[j]) * px.inv[j]
	}
}

// Len returns the number of indexed points.
func (px *Dynamic) Len() int { return px.n }

// RangeQuery implements index.Index.
func (px *Dynamic) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if px.n == 0 {
		return buf
	}
	eps2 := eps * eps
	px.forRuns(q, eps, func(lo, hi float64) bool {
		px.tree.AscendRange(lo, hi, func(_ float64, id int32) bool {
			if px.ds.Dist2To(int(id), q) <= eps2 {
				buf = append(buf, id)
			}
			return true
		})
		return true
	})
	return buf
}

// RangeCount implements index.Index.
func (px *Dynamic) RangeCount(q []float64, eps float64, limit int) int {
	if px.n == 0 {
		return 0
	}
	eps2 := eps * eps
	count := 0
	px.forRuns(q, eps, func(lo, hi float64) bool {
		stop := false
		px.tree.AscendRange(lo, hi, func(_ float64, id int32) bool {
			if px.ds.Dist2To(int(id), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					stop = true
					return false
				}
			}
			return true
		})
		return !stop
	})
	return count
}

// forRuns computes the candidate pyramid-value intervals for the eps-sphere
// at q (the same derivation as the static index) and passes each to fn; fn
// returns false to stop.
func (px *Dynamic) forRuns(q []float64, eps float64, fn func(lo, hi float64) bool) {
	d := px.d
	qlo := make([]float64, d)
	qhi := make([]float64, d)
	for j := 0; j < d; j++ {
		qlo[j] = (q[j] - eps - px.lo[j]) * px.inv[j]
		qhi[j] = (q[j] + eps - px.lo[j]) * px.inv[j]
	}
	hFloor := 0.0
	for j := 0; j < d; j++ {
		lo := qlo[j] - 0.5
		hi := qhi[j] - 0.5
		var m float64
		switch {
		case lo <= 0 && hi >= 0:
			m = 0
		case lo > 0:
			m = lo
		default:
			m = -hi
		}
		if m > hFloor {
			hFloor = m
		}
	}
	if hFloor > 0.5 {
		return
	}
	for i := 0; i < 2*d; i++ {
		j := i % d
		var hmin, hmax float64
		if i < d {
			hmin = 0.5 - qhi[j]
			hmax = 0.5 - qlo[j]
		} else {
			hmin = qlo[j] - 0.5
			hmax = qhi[j] - 0.5
		}
		if hmax < 0 {
			continue
		}
		if hmin < hFloor {
			hmin = hFloor
		}
		if hmin < 0 {
			hmin = 0
		}
		if hmax > 0.5 {
			hmax = 0.5
		}
		if hmin > hmax {
			continue
		}
		if !fn(float64(i)+hmin, float64(i)+hmax) {
			return
		}
	}
}

var _ index.Index = (*Dynamic)(nil)
