package index_test

import (
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/vec"
)

func TestParallelConformance(t *testing.T) {
	indextest.Run(t, "parallel", index.BuildParallel)
}

func TestParallelConformanceF32(t *testing.T) {
	indextest.RunF32(t, "parallel", index.BuildParallel)
}

func TestParallelWorkerCounts(t *testing.T) {
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{float64(i), 0}
	}
	ds, _ := vec.FromRows(rows)
	oracle := index.NewLinear(ds)
	for _, workers := range []int{1, 2, 3, 7, 100, 1000} {
		p := index.NewParallel(ds, workers)
		got := p.RangeQuery([]float64{50, 0}, 10.5, nil)
		want := oracle.RangeQuery([]float64{50, 0}, 10.5, nil)
		if len(got) != len(want) {
			t.Errorf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		if c := p.RangeCount([]float64{50, 0}, 10.5, 0); c != len(want) {
			t.Errorf("workers=%d: count %d, want %d", workers, c, len(want))
		}
		if c := p.RangeCount([]float64{50, 0}, 10.5, 3); c > len(want) || c < 3 {
			t.Errorf("workers=%d: limited count %d out of range", workers, c)
		}
	}
}

func TestParallelDeterministicOrder(t *testing.T) {
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{float64(i % 10), float64(i / 10)}
	}
	ds, _ := vec.FromRows(rows)
	p := index.NewParallel(ds, 4)
	a := p.RangeQuery([]float64{5, 25}, 20, nil)
	for iter := 0; iter < 10; iter++ {
		b := p.RangeQuery([]float64{5, 25}, 20, nil)
		if len(a) != len(b) {
			t.Fatal("length varies across runs")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("order varies across runs")
			}
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	p := index.NewParallel(ds, 4)
	if p.Len() != 0 {
		t.Error("Len should be 0")
	}
	if got := p.RangeQuery([]float64{0}, 1, nil); len(got) != 0 {
		t.Error("query on empty index should return nothing")
	}
	if got := p.RangeCount([]float64{0}, 1, 0); got != 0 {
		t.Error("count on empty index should be 0")
	}
}
