package rtree

import (
	"math/rand"
	"slices"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/vec"
)

func TestConformanceBulk(t *testing.T) {
	indextest.Run(t, "rtree-bulk", Build)
}

func TestConformanceF32(t *testing.T) {
	indextest.RunF32(t, "rtree-bulk", Build)
}

func TestConformanceDynamic(t *testing.T) {
	indextest.Run(t, "rtree-dynamic", BuildDynamic)
}

func TestConformanceParallelBulk(t *testing.T) {
	indextest.Run(t, "rtree-parallel", BuildWorkers(4))
}

func TestBuildDeterminism(t *testing.T) {
	indextest.RunBuildDeterminism(t, "rtree", func(ds *vec.Dataset, workers int) index.Index {
		return BulkWorkers(ds, workers)
	})
}

// TestParallelStructureIdentical: STR tiling with the id tie-break is a
// total order, so parallel bulk loads must reproduce the serial tree node
// for node.
func TestParallelStructureIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	rows := make([][]float64, 7000)
	for i := range rows {
		// Heavy coordinate duplication exercises the tie-break.
		rows[i] = []float64{float64(int(rng.Float64() * 40)), float64(int(rng.Float64() * 40)), rng.Float64() * 40}
	}
	ds, _ := vec.FromRows(rows)
	serial := BulkWorkers(ds, 1)
	for _, workers := range []int{2, 5, 16} {
		par := BulkWorkers(ds, workers)
		if !sameTree(serial.root, par.root) {
			t.Fatalf("workers=%d: tree structure differs from serial build", workers)
		}
	}
}

// sameTree compares two subtrees entry for entry (rects, ids, recursion).
func sameTree(a, b *nodeT) bool {
	if a.leaf != b.leaf || len(a.entries) != len(b.entries) {
		return false
	}
	for i := range a.entries {
		ea, eb := &a.entries[i], &b.entries[i]
		if ea.id != eb.id || !slices.Equal(ea.rect.Lo, eb.rect.Lo) || !slices.Equal(ea.rect.Hi, eb.rect.Hi) {
			return false
		}
		if (ea.child == nil) != (eb.child == nil) {
			return false
		}
		if ea.child != nil && !sameTree(ea.child, eb.child) {
			return false
		}
	}
	return true
}

func TestInvariantsAfterInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := make([][]float64, 3000)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	for i := 0; i < ds.Len(); i++ {
		tr.Insert(int32(i))
		if i%500 == 499 {
			if err := tr.checkInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatalf("final invariants: %v", err)
	}
	if tr.Len() != ds.Len() {
		t.Errorf("Len = %d, want %d", tr.Len(), ds.Len())
	}
	if tr.Depth() < 2 {
		t.Errorf("tree of 3000 points should have split: depth=%d", tr.Depth())
	}
}

func TestInvariantsAfterBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{0, 1, 31, 32, 33, 1000, 5000} {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 1000, rng.Float64() * 1000, rng.Float64() * 1000}
		}
		ds, _ := vec.FromRows(rows)
		if n == 0 {
			ds, _ = vec.NewDataset(nil, 3)
		}
		tr := Bulk(ds)
		if err := tr.checkInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.Len() != n {
			t.Errorf("n=%d: Len=%d", n, tr.Len())
		}
	}
}

func TestBulkMatchesDynamic(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	rows := make([][]float64, 800)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 50, rng.NormFloat64() * 50}
	}
	ds, _ := vec.FromRows(rows)
	bulk := Bulk(ds)
	dyn := New(ds)
	for i := 0; i < ds.Len(); i++ {
		dyn.Insert(int32(i))
	}
	for iter := 0; iter < 50; iter++ {
		q := []float64{rng.NormFloat64() * 60, rng.NormFloat64() * 60}
		eps := 5 + rng.Float64()*40
		a := bulk.RangeCount(q, eps, 0)
		b := dyn.RangeCount(q, eps, 0)
		if a != b {
			t.Fatalf("bulk count %d != dynamic count %d (q=%v eps=%g)", a, b, q, eps)
		}
	}
}

func BenchmarkBulkLoad100k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	coords := make([]float64, 100000*4)
	for i := range coords {
		coords[i] = rng.Float64() * 1e5
	}
	ds, _ := vec.NewDataset(coords, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bulk(ds)
	}
}

func BenchmarkRangeQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	coords := make([]float64, 100000*4)
	for i := range coords {
		coords[i] = rng.Float64() * 1e5
	}
	ds, _ := vec.NewDataset(coords, 4)
	tr := Bulk(ds)
	buf := make([]int32, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tr.RangeQuery(ds.Point(i%ds.Len()), 5000, buf[:0])
	}
	_ = buf
}
