// Package rtree implements an in-memory R*-tree (Beckmann et al., SIGMOD
// 1990) over point data. It backs the R-DBSCAN baseline — the configuration
// the paper uses as clustering ground truth.
//
// Two construction paths are provided:
//
//   - New + Insert: dynamic insertion with the R* ChooseSubtree and the
//     topological split (margin-driven axis selection, minimum-overlap
//     distribution). Forced reinsertion is omitted; for the static
//     clustering workloads in this repository it does not change query
//     results and measurably slows the build.
//   - Bulk: Sort-Tile-Recursive (STR) bulk loading, which yields tightly
//     packed leaves and is the default for the benchmark harness.
package rtree

import (
	"cmp"
	"context"
	"math"
	"slices"
	"sync"
	"sync/atomic"

	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Fanout constants. MinEntries = 40% of MaxEntries per the R* paper.
const (
	MaxEntries = 32
	MinEntries = 13
)

// Tree is an in-memory R*-tree over the points of a dataset. After the last
// Insert it is safe for concurrent readers.
type Tree struct {
	ds   *vec.Dataset
	root *nodeT
	size int
	dim  int
}

type entry struct {
	rect  vec.Rect
	child *nodeT // nil for leaf entries
	id    int32  // point id for leaf entries
}

type nodeT struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree over ds; points are added with Insert.
func New(ds *vec.Dataset) *Tree {
	return &Tree{ds: ds, dim: ds.Dim(), root: &nodeT{leaf: true}}
}

// Bulk STR-loads all points of ds on the calling goroutine and returns the
// resulting tree.
func Bulk(ds *vec.Dataset) *Tree { return BulkWorkers(ds, 1) }

// BulkWorkers STR-loads all points of ds using up to workers goroutines
// (<= 0 selects all CPUs): the per-tile slabs of the STR recursion are
// sorted concurrently and the leaf nodes with their bounding rectangles are
// computed in parallel. Tile boundaries, sort keys (with an id tie-break)
// and output slots are all fixed before any task runs, so the tree is
// bit-identical for every worker count.
func BulkWorkers(ds *vec.Dataset, workers int) *Tree {
	t, _ := BulkWorkersCtx(context.Background(), ds, workers)
	return t
}

// BulkWorkersCtx STR-loads like BulkWorkers but honours ctx: cancellation is
// checked at the entry of every slab of spawnMin points or more, and a
// cancelled build abandons its partial tiling and returns ctx's error. An
// uncancelled build is bit-identical to BulkWorkers.
func BulkWorkersCtx(ctx context.Context, ds *vec.Dataset, workers int) (*Tree, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	t := &Tree{ds: ds, dim: ds.Dim()}
	n := ds.Len()
	if n == 0 {
		t.root = &nodeT{leaf: true}
		return t, nil
	}
	workers = engine.ResolveWorkers(workers)
	leaves, cancelled := t.strPack(vec.Iota(n), workers, ctx)
	if cancelled {
		return nil, ctx.Err()
	}
	t.size = n
	t.root = t.buildUpward(leaves, workers)
	return t, nil
}

// Build is an index.Builder using STR bulk loading (serial build).
func Build(ds *vec.Dataset) index.Index { return Bulk(ds) }

// BuildWorkers returns an index.Builder that STR bulk-loads with the given
// worker count (<= 0: all CPUs).
func BuildWorkers(workers int) index.Builder {
	return func(ds *vec.Dataset) index.Index { return BulkWorkers(ds, workers) }
}

// BuildWorkersCtx returns an index.CtxBuilder with mid-build cancellation
// (see BulkWorkersCtx).
func BuildWorkersCtx(workers int) index.CtxBuilder {
	return func(ctx context.Context, ds *vec.Dataset) (index.Index, error) {
		t, err := BulkWorkersCtx(ctx, ds, workers)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
}

// BuildDynamic is an index.Builder using one-at-a-time R* insertion.
func BuildDynamic(ds *vec.Dataset) index.Index {
	t := New(ds)
	for i := 0; i < ds.Len(); i++ {
		t.Insert(int32(i))
	}
	return t
}

// spawnMin is the smallest slab a parallel bulk load hands to another
// worker.
const spawnMin = 2048

// sortIDsByDim sorts ids by the given coordinate, breaking ties by id.
// The id tie-break makes the order — and with it the whole STR tiling — a
// total order independent of the incoming permutation, which pins the tree
// shape across build configurations (pdqsort is unstable, so without the
// tie-break equal coordinates could land in input-dependent order).
func (t *Tree) sortIDsByDim(ids []int32, dim int) {
	slices.SortFunc(ids, func(a, b int32) int {
		va, vb := t.ds.Point(int(a))[dim], t.ds.Point(int(b))[dim]
		if va != vb {
			return cmp.Compare(va, vb)
		}
		return cmp.Compare(a, b)
	})
}

// strPack tile-sorts point ids into leaf nodes. ctx (nil on the plain path)
// allows mid-build cancellation: slabs of spawnMin points or more check the
// sticky cancelled flag at entry and bail out, and the second return value
// reports whether that happened (the partial tiling must then be discarded).
func (t *Tree) strPack(ids []int32, workers int, ctx context.Context) ([]entry, bool) {
	tasks := engine.NewTasks(workers)
	var cancelled atomic.Bool
	stop := func() bool {
		if ctx == nil {
			return false
		}
		if cancelled.Load() {
			return true
		}
		if ctx.Err() != nil {
			cancelled.Store(true)
			return true
		}
		return false
	}
	// Recursive tiling over dimensions: sort by dim 0, slice into vertical
	// runs, recurse with dim 1, etc. Each slab is independent after its
	// boundaries are cut, so slabs run as parallel tasks; their group lists
	// land in pre-assigned slots and are concatenated in slab order.
	var pack func(ids []int32, dim int) [][]int32
	pack = func(ids []int32, dim int) [][]int32 {
		if len(ids) >= spawnMin && stop() {
			return nil
		}
		t.sortIDsByDim(ids, dim)
		if dim == t.dim-1 || len(ids) <= MaxEntries {
			var out [][]int32
			for s := 0; s < len(ids); s += MaxEntries {
				e := s + MaxEntries
				if e > len(ids) {
					e = len(ids)
				}
				out = append(out, ids[s:e])
			}
			return out
		}
		nLeaves := (len(ids) + MaxEntries - 1) / MaxEntries
		// Number of slabs along this axis ~ ceil(nLeaves^(1/(remaining dims))).
		rem := t.dim - dim
		slabs := int(math.Ceil(math.Pow(float64(nLeaves), 1/float64(rem))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(ids) + slabs - 1) / slabs
		var bounds [][2]int
		for s := 0; s < len(ids); s += per {
			e := s + per
			if e > len(ids) {
				e = len(ids)
			}
			bounds = append(bounds, [2]int{s, e})
		}
		parts := make([][][]int32, len(bounds))
		var wg sync.WaitGroup
		for i := range bounds {
			i := i
			slab := ids[bounds[i][0]:bounds[i][1]]
			run := func() { parts[i] = pack(slab, dim+1) }
			wg.Add(1)
			if len(slab) >= spawnMin && tasks.Try(func() { defer wg.Done(); run() }) {
				continue
			}
			run()
			wg.Done()
		}
		wg.Wait()
		var out [][]int32
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	groups := pack(ids, 0)
	tasks.Wait()
	if cancelled.Load() {
		return nil, true
	}

	// Materialize leaf nodes and their MBRs in parallel; leaves[i] depends
	// only on groups[i].
	leaves := make([]entry, len(groups))
	engine.ForRanges(workers, len(groups), nil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := groups[i]
			nd := &nodeT{leaf: true, entries: make([]entry, 0, len(g))}
			for _, id := range g {
				nd.entries = append(nd.entries, entry{rect: vec.RectOf(t.ds.Point(int(id))), id: id})
			}
			leaves[i] = entry{rect: nodeRect(nd, t.dim), child: nd}
		}
	})
	return leaves, false
}

// buildUpward packs child entries level by level until one root remains.
// Each level's nodes are cut at fixed MaxEntries boundaries, so node
// construction and MBR computation parallelize over disjoint chunks.
func (t *Tree) buildUpward(children []entry, workers int) *nodeT {
	for len(children) > 1 {
		chunks := (len(children) + MaxEntries - 1) / MaxEntries
		next := make([]entry, chunks)
		engine.ForRanges(workers, chunks, nil, func(lo, hi int) {
			for c := lo; c < hi; c++ {
				s := c * MaxEntries
				e := s + MaxEntries
				if e > len(children) {
					e = len(children)
				}
				nd := &nodeT{entries: append([]entry(nil), children[s:e]...)}
				next[c] = entry{rect: nodeRect(nd, t.dim), child: nd}
			}
		})
		children = next
	}
	if len(children) == 0 {
		return &nodeT{leaf: true}
	}
	return children[0].child
}

func nodeRect(nd *nodeT, dim int) vec.Rect {
	r := vec.NewRect(dim)
	for i := range nd.entries {
		r.ExtendRect(nd.entries[i].rect)
	}
	return r
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Insert adds point id to the tree using R* ChooseSubtree and splitting.
func (t *Tree) Insert(id int32) {
	e := entry{rect: vec.RectOf(t.ds.Point(int(id))), id: id}
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &nodeT{entries: []entry{
			{rect: nodeRect(old, t.dim), child: old},
			{rect: nodeRect(split, t.dim), child: split},
		}}
	}
	t.size++
}

// insert places e under nd; a non-nil return is the new sibling produced by
// a split at this level.
func (t *Tree) insert(nd *nodeT, e entry) *nodeT {
	if nd.leaf {
		nd.entries = append(nd.entries, e)
		if len(nd.entries) > MaxEntries {
			return t.split(nd)
		}
		return nil
	}
	best := t.chooseSubtree(nd, e.rect)
	child := nd.entries[best].child
	split := t.insert(child, e)
	nd.entries[best].rect.ExtendRect(e.rect)
	if split != nil {
		nd.entries[best].rect = nodeRect(child, t.dim)
		nd.entries = append(nd.entries, entry{rect: nodeRect(split, t.dim), child: split})
		if len(nd.entries) > MaxEntries {
			return t.split(nd)
		}
	}
	return nil
}

// chooseSubtree implements the R* rule: for nodes pointing at leaves choose
// minimal overlap enlargement; otherwise minimal area enlargement; ties by
// smaller area.
func (t *Tree) chooseSubtree(nd *nodeT, r vec.Rect) int {
	pointsAtLeaves := len(nd.entries) > 0 && nd.entries[0].child != nil && nd.entries[0].child.leaf
	best := 0
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range nd.entries {
		er := nd.entries[i].rect
		area := er.Area()
		enlarge := er.EnlargedArea(r) - area
		overlap := 0.0
		if pointsAtLeaves {
			// Overlap enlargement of entry i caused by absorbing r.
			grown := er.Clone()
			grown.ExtendRect(r)
			for j := range nd.entries {
				if j == i {
					continue
				}
				overlap += grown.OverlapArea(nd.entries[j].rect) - er.OverlapArea(nd.entries[j].rect)
			}
		}
		if overlap < bestOverlap ||
			(overlap == bestOverlap && enlarge < bestEnlarge) ||
			(overlap == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = i, overlap, enlarge, area
		}
	}
	return best
}

// split performs the R* topological split of an overfull node and returns
// the new sibling. nd keeps the first distribution group.
func (t *Tree) split(nd *nodeT) *nodeT {
	ents := nd.entries
	// Choose split axis: minimal total margin over all distributions.
	bestAxis, bestMargin := 0, math.Inf(1)
	for axis := 0; axis < t.dim; axis++ {
		sortEntriesByAxis(ents, axis)
		margin := 0.0
		for k := MinEntries; k <= len(ents)-MinEntries; k++ {
			margin += groupRect(ents[:k], t.dim).Margin() + groupRect(ents[k:], t.dim).Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	sortEntriesByAxis(ents, bestAxis)
	// Choose split index: minimal overlap, ties by minimal combined area.
	bestK, bestOverlap, bestArea := MinEntries, math.Inf(1), math.Inf(1)
	for k := MinEntries; k <= len(ents)-MinEntries; k++ {
		r1 := groupRect(ents[:k], t.dim)
		r2 := groupRect(ents[k:], t.dim)
		ov := r1.OverlapArea(r2)
		ar := r1.Area() + r2.Area()
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, ar
		}
	}
	sib := &nodeT{leaf: nd.leaf, entries: append([]entry(nil), ents[bestK:]...)}
	nd.entries = ents[:bestK:bestK]
	return sib
}

// sortEntriesByAxis orders split candidates by (Lo, Hi, id) along the axis.
// The id tie-break settles point entries with identical rectangles
// deterministically; branch entries (id 0) with fully equal keys keep an
// arbitrary but reproducible order, as pdqsort is deterministic for a given
// input permutation.
func sortEntriesByAxis(ents []entry, axis int) {
	slices.SortFunc(ents, func(a, b entry) int {
		if c := cmp.Compare(a.rect.Lo[axis], b.rect.Lo[axis]); c != 0 {
			return c
		}
		if c := cmp.Compare(a.rect.Hi[axis], b.rect.Hi[axis]); c != 0 {
			return c
		}
		return cmp.Compare(a.id, b.id)
	})
}

func groupRect(ents []entry, dim int) vec.Rect {
	r := vec.NewRect(dim)
	for i := range ents {
		r.ExtendRect(ents[i].rect)
	}
	return r
}

// RangeQuery implements index.Index. Leaf entries hold degenerate point
// rects, so the per-entry MinDist2 prune there would just recompute the
// exact distance; leaves instead gather their ids and run the fused filter
// kernel in one pass. Internal nodes keep the rectangle prune.
func (t *Tree) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	eps2 := eps * eps
	scratch := make([]int32, 0, MaxEntries)
	var rec func(nd *nodeT)
	rec = func(nd *nodeT) {
		if nd.leaf {
			scratch = scratch[:0]
			for i := range nd.entries {
				scratch = append(scratch, nd.entries[i].id)
			}
			buf = t.ds.FilterWithinIDs(q, eps2, scratch, buf)
			return
		}
		for i := range nd.entries {
			e := &nd.entries[i]
			if e.rect.MinDist2(q) <= eps2 {
				rec(e.child)
			}
		}
	}
	rec(t.root)
	return buf
}

// RangeCount implements index.Index (see RangeQuery for the leaf strategy).
func (t *Tree) RangeCount(q []float64, eps float64, limit int) int {
	eps2 := eps * eps
	count := 0
	scratch := make([]int32, 0, MaxEntries)
	var rec func(nd *nodeT) bool
	rec = func(nd *nodeT) bool {
		if nd.leaf {
			scratch = scratch[:0]
			for i := range nd.entries {
				scratch = append(scratch, nd.entries[i].id)
			}
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			count += t.ds.CountWithinIDs(q, eps2, scratch, rem)
			return limit > 0 && count >= limit
		}
		for i := range nd.entries {
			e := &nd.entries[i]
			if e.rect.MinDist2(q) <= eps2 && rec(e.child) {
				return true
			}
		}
		return false
	}
	rec(t.root)
	return count
}

// Depth returns the height of the tree (1 for a tree that is a single leaf).
func (t *Tree) Depth() int {
	d := 1
	nd := t.root
	for !nd.leaf {
		d++
		nd = nd.entries[0].child
	}
	return d
}

// checkInvariants validates entry counts and bounding rectangles; used by
// tests.
func (t *Tree) checkInvariants() error {
	return checkNode(t.root, t.dim, true)
}

var _ index.Index = (*Tree)(nil)
