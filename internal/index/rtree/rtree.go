// Package rtree implements an in-memory R*-tree (Beckmann et al., SIGMOD
// 1990) over point data. It backs the R-DBSCAN baseline — the configuration
// the paper uses as clustering ground truth.
//
// Two construction paths are provided:
//
//   - New + Insert: dynamic insertion with the R* ChooseSubtree and the
//     topological split (margin-driven axis selection, minimum-overlap
//     distribution). Forced reinsertion is omitted; for the static
//     clustering workloads in this repository it does not change query
//     results and measurably slows the build.
//   - Bulk: Sort-Tile-Recursive (STR) bulk loading, which yields tightly
//     packed leaves and is the default for the benchmark harness.
package rtree

import (
	"math"
	"sort"

	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Fanout constants. MinEntries = 40% of MaxEntries per the R* paper.
const (
	MaxEntries = 32
	MinEntries = 13
)

// Tree is an in-memory R*-tree over the points of a dataset. After the last
// Insert it is safe for concurrent readers.
type Tree struct {
	ds   *vec.Dataset
	root *nodeT
	size int
	dim  int
}

type entry struct {
	rect  vec.Rect
	child *nodeT // nil for leaf entries
	id    int32  // point id for leaf entries
}

type nodeT struct {
	leaf    bool
	entries []entry
}

// New returns an empty tree over ds; points are added with Insert.
func New(ds *vec.Dataset) *Tree {
	return &Tree{ds: ds, dim: ds.Dim(), root: &nodeT{leaf: true}}
}

// Bulk STR-loads all points of ds and returns the resulting tree.
func Bulk(ds *vec.Dataset) *Tree {
	t := &Tree{ds: ds, dim: ds.Dim()}
	n := ds.Len()
	if n == 0 {
		t.root = &nodeT{leaf: true}
		return t
	}
	leaves := t.strPack(vec.Iota(n))
	t.size = n
	t.root = t.buildUpward(leaves)
	return t
}

// Build is an index.Builder using STR bulk loading.
func Build(ds *vec.Dataset) index.Index { return Bulk(ds) }

// BuildDynamic is an index.Builder using one-at-a-time R* insertion.
func BuildDynamic(ds *vec.Dataset) index.Index {
	t := New(ds)
	for i := 0; i < ds.Len(); i++ {
		t.Insert(int32(i))
	}
	return t
}

// strPack tile-sorts point ids into leaf nodes.
func (t *Tree) strPack(ids []int32) []entry {
	// Recursive tiling over dimensions: sort by dim 0, slice into vertical
	// runs, recurse with dim 1, etc.
	var pack func(ids []int32, dim int) [][]int32
	pack = func(ids []int32, dim int) [][]int32 {
		if dim == t.dim-1 || len(ids) <= MaxEntries {
			sort.Slice(ids, func(a, b int) bool {
				return t.ds.Point(int(ids[a]))[dim] < t.ds.Point(int(ids[b]))[dim]
			})
			var out [][]int32
			for s := 0; s < len(ids); s += MaxEntries {
				e := s + MaxEntries
				if e > len(ids) {
					e = len(ids)
				}
				out = append(out, ids[s:e])
			}
			return out
		}
		sort.Slice(ids, func(a, b int) bool {
			return t.ds.Point(int(ids[a]))[dim] < t.ds.Point(int(ids[b]))[dim]
		})
		nLeaves := (len(ids) + MaxEntries - 1) / MaxEntries
		// Number of slabs along this axis ~ ceil(nLeaves^(1/(remaining dims))).
		rem := t.dim - dim
		slabs := int(math.Ceil(math.Pow(float64(nLeaves), 1/float64(rem))))
		if slabs < 1 {
			slabs = 1
		}
		per := (len(ids) + slabs - 1) / slabs
		var out [][]int32
		for s := 0; s < len(ids); s += per {
			e := s + per
			if e > len(ids) {
				e = len(ids)
			}
			out = append(out, pack(ids[s:e], dim+1)...)
		}
		return out
	}
	groups := pack(ids, 0)
	leaves := make([]entry, 0, len(groups))
	for _, g := range groups {
		nd := &nodeT{leaf: true, entries: make([]entry, 0, len(g))}
		for _, id := range g {
			nd.entries = append(nd.entries, entry{rect: vec.RectOf(t.ds.Point(int(id))), id: id})
		}
		leaves = append(leaves, entry{rect: nodeRect(nd, t.dim), child: nd})
	}
	return leaves
}

// buildUpward packs child entries level by level until one root remains.
func (t *Tree) buildUpward(children []entry) *nodeT {
	for len(children) > 1 {
		var next []entry
		for s := 0; s < len(children); s += MaxEntries {
			e := s + MaxEntries
			if e > len(children) {
				e = len(children)
			}
			nd := &nodeT{entries: append([]entry(nil), children[s:e]...)}
			next = append(next, entry{rect: nodeRect(nd, t.dim), child: nd})
		}
		children = next
	}
	if len(children) == 0 {
		return &nodeT{leaf: true}
	}
	return children[0].child
}

func nodeRect(nd *nodeT, dim int) vec.Rect {
	r := vec.NewRect(dim)
	for i := range nd.entries {
		r.ExtendRect(nd.entries[i].rect)
	}
	return r
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Insert adds point id to the tree using R* ChooseSubtree and splitting.
func (t *Tree) Insert(id int32) {
	e := entry{rect: vec.RectOf(t.ds.Point(int(id))), id: id}
	split := t.insert(t.root, e)
	if split != nil {
		old := t.root
		t.root = &nodeT{entries: []entry{
			{rect: nodeRect(old, t.dim), child: old},
			{rect: nodeRect(split, t.dim), child: split},
		}}
	}
	t.size++
}

// insert places e under nd; a non-nil return is the new sibling produced by
// a split at this level.
func (t *Tree) insert(nd *nodeT, e entry) *nodeT {
	if nd.leaf {
		nd.entries = append(nd.entries, e)
		if len(nd.entries) > MaxEntries {
			return t.split(nd)
		}
		return nil
	}
	best := t.chooseSubtree(nd, e.rect)
	child := nd.entries[best].child
	split := t.insert(child, e)
	nd.entries[best].rect.ExtendRect(e.rect)
	if split != nil {
		nd.entries[best].rect = nodeRect(child, t.dim)
		nd.entries = append(nd.entries, entry{rect: nodeRect(split, t.dim), child: split})
		if len(nd.entries) > MaxEntries {
			return t.split(nd)
		}
	}
	return nil
}

// chooseSubtree implements the R* rule: for nodes pointing at leaves choose
// minimal overlap enlargement; otherwise minimal area enlargement; ties by
// smaller area.
func (t *Tree) chooseSubtree(nd *nodeT, r vec.Rect) int {
	pointsAtLeaves := len(nd.entries) > 0 && nd.entries[0].child != nil && nd.entries[0].child.leaf
	best := 0
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i := range nd.entries {
		er := nd.entries[i].rect
		area := er.Area()
		enlarge := er.EnlargedArea(r) - area
		overlap := 0.0
		if pointsAtLeaves {
			// Overlap enlargement of entry i caused by absorbing r.
			grown := er.Clone()
			grown.ExtendRect(r)
			for j := range nd.entries {
				if j == i {
					continue
				}
				overlap += grown.OverlapArea(nd.entries[j].rect) - er.OverlapArea(nd.entries[j].rect)
			}
		}
		if overlap < bestOverlap ||
			(overlap == bestOverlap && enlarge < bestEnlarge) ||
			(overlap == bestOverlap && enlarge == bestEnlarge && area < bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = i, overlap, enlarge, area
		}
	}
	return best
}

// split performs the R* topological split of an overfull node and returns
// the new sibling. nd keeps the first distribution group.
func (t *Tree) split(nd *nodeT) *nodeT {
	ents := nd.entries
	// Choose split axis: minimal total margin over all distributions.
	bestAxis, bestMargin := 0, math.Inf(1)
	for axis := 0; axis < t.dim; axis++ {
		sortEntriesByAxis(ents, axis)
		margin := 0.0
		for k := MinEntries; k <= len(ents)-MinEntries; k++ {
			margin += groupRect(ents[:k], t.dim).Margin() + groupRect(ents[k:], t.dim).Margin()
		}
		if margin < bestMargin {
			bestAxis, bestMargin = axis, margin
		}
	}
	sortEntriesByAxis(ents, bestAxis)
	// Choose split index: minimal overlap, ties by minimal combined area.
	bestK, bestOverlap, bestArea := MinEntries, math.Inf(1), math.Inf(1)
	for k := MinEntries; k <= len(ents)-MinEntries; k++ {
		r1 := groupRect(ents[:k], t.dim)
		r2 := groupRect(ents[k:], t.dim)
		ov := r1.OverlapArea(r2)
		ar := r1.Area() + r2.Area()
		if ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, ar
		}
	}
	sib := &nodeT{leaf: nd.leaf, entries: append([]entry(nil), ents[bestK:]...)}
	nd.entries = ents[:bestK:bestK]
	return sib
}

func sortEntriesByAxis(ents []entry, axis int) {
	sort.Slice(ents, func(a, b int) bool {
		if ents[a].rect.Lo[axis] != ents[b].rect.Lo[axis] {
			return ents[a].rect.Lo[axis] < ents[b].rect.Lo[axis]
		}
		return ents[a].rect.Hi[axis] < ents[b].rect.Hi[axis]
	})
}

func groupRect(ents []entry, dim int) vec.Rect {
	r := vec.NewRect(dim)
	for i := range ents {
		r.ExtendRect(ents[i].rect)
	}
	return r
}

// RangeQuery implements index.Index. Leaf entries hold degenerate point
// rects, so the per-entry MinDist2 prune there would just recompute the
// exact distance; leaves instead gather their ids and run the fused filter
// kernel in one pass. Internal nodes keep the rectangle prune.
func (t *Tree) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	eps2 := eps * eps
	scratch := make([]int32, 0, MaxEntries)
	var rec func(nd *nodeT)
	rec = func(nd *nodeT) {
		if nd.leaf {
			scratch = scratch[:0]
			for i := range nd.entries {
				scratch = append(scratch, nd.entries[i].id)
			}
			buf = t.ds.FilterWithinIDs(q, eps2, scratch, buf)
			return
		}
		for i := range nd.entries {
			e := &nd.entries[i]
			if e.rect.MinDist2(q) <= eps2 {
				rec(e.child)
			}
		}
	}
	rec(t.root)
	return buf
}

// RangeCount implements index.Index (see RangeQuery for the leaf strategy).
func (t *Tree) RangeCount(q []float64, eps float64, limit int) int {
	eps2 := eps * eps
	count := 0
	scratch := make([]int32, 0, MaxEntries)
	var rec func(nd *nodeT) bool
	rec = func(nd *nodeT) bool {
		if nd.leaf {
			scratch = scratch[:0]
			for i := range nd.entries {
				scratch = append(scratch, nd.entries[i].id)
			}
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			count += t.ds.CountWithinIDs(q, eps2, scratch, rem)
			return limit > 0 && count >= limit
		}
		for i := range nd.entries {
			e := &nd.entries[i]
			if e.rect.MinDist2(q) <= eps2 && rec(e.child) {
				return true
			}
		}
		return false
	}
	rec(t.root)
	return count
}

// Depth returns the height of the tree (1 for a tree that is a single leaf).
func (t *Tree) Depth() int {
	d := 1
	nd := t.root
	for !nd.leaf {
		d++
		nd = nd.entries[0].child
	}
	return d
}

// checkInvariants validates entry counts and bounding rectangles; used by
// tests.
func (t *Tree) checkInvariants() error {
	return checkNode(t.root, t.dim, true)
}

var _ index.Index = (*Tree)(nil)
