package rtree

import (
	"container/heap"
	"math"
)

// Nearest returns the id of the indexed point closest to q and its squared
// distance, or (-1, +Inf) on an empty tree.
func (t *Tree) Nearest(q []float64) (int32, float64) {
	ids, d2 := t.KNearest(q, 1, nil, nil)
	if len(ids) == 0 {
		return -1, math.Inf(1)
	}
	return ids[0], d2[0]
}

// KNearest returns the ids of the k points nearest to q in ascending
// distance order, along with their squared distances. Reusable output
// buffers may be passed (or nil). Fewer than k results are returned when
// the tree holds fewer points.
//
// The search is best-first branch-and-bound over entry rectangles: nodes
// are visited in order of MinDist² and pruned once k candidates closer than
// the node's rectangle are known.
func (t *Tree) KNearest(q []float64, k int, ids []int32, dists []float64) ([]int32, []float64) {
	ids = ids[:0]
	dists = dists[:0]
	if k <= 0 || t.size == 0 {
		return ids, dists
	}

	// Max-heap of the best k candidates so far.
	best := &candHeap{}
	worst := func() float64 {
		if best.Len() < k {
			return math.Inf(1)
		}
		return (*best)[0].d2
	}

	// Min-heap of pending nodes by rectangle MinDist².
	pq := &nodeHeap{{d2: 0, node: t.root}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(nodeItem)
		if it.d2 > worst() {
			break // every remaining node is farther than the kth candidate
		}
		for i := range it.node.entries {
			e := &it.node.entries[i]
			if it.node.leaf {
				d2 := t.ds.Dist2To(int(e.id), q)
				if d2 < worst() {
					if best.Len() == k {
						heap.Pop(best)
					}
					heap.Push(best, cand{d2: d2, id: e.id})
				}
			} else {
				d2 := e.rect.MinDist2(q)
				if d2 <= worst() {
					heap.Push(pq, nodeItem{d2: d2, node: e.child})
				}
			}
		}
	}

	// Drain the max-heap into ascending order.
	n := best.Len()
	ids = append(ids, make([]int32, n)...)
	dists = append(dists, make([]float64, n)...)
	for i := n - 1; i >= 0; i-- {
		c := heap.Pop(best).(cand)
		ids[i] = c.id
		dists[i] = c.d2
	}
	return ids, dists
}

type cand struct {
	d2 float64
	id int32
}

// candHeap is a max-heap on distance.
type candHeap []cand

func (h candHeap) Len() int            { return len(h) }
func (h candHeap) Less(i, j int) bool  { return h[i].d2 > h[j].d2 }
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(cand)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

type nodeItem struct {
	d2   float64
	node *nodeT
}

// nodeHeap is a min-heap on rectangle distance.
type nodeHeap []nodeItem

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].d2 < h[j].d2 }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(nodeItem)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
