package rtree

import "fmt"

// checkNode recursively verifies structural invariants:
//   - every non-root node has between MinEntries and MaxEntries entries
//     (dynamic inserts guarantee this; STR-packed trees only guarantee the
//     upper bound, so the lower bound is enforced loosely: >= 1),
//   - every internal entry's rectangle tightly covers its child's contents.
func checkNode(nd *nodeT, dim int, isRoot bool) error {
	if !isRoot && len(nd.entries) < 1 {
		return fmt.Errorf("rtree: empty non-root node")
	}
	if len(nd.entries) > MaxEntries {
		return fmt.Errorf("rtree: node has %d entries > max %d", len(nd.entries), MaxEntries)
	}
	if nd.leaf {
		for i := range nd.entries {
			if nd.entries[i].child != nil {
				return fmt.Errorf("rtree: leaf entry %d has a child", i)
			}
		}
		return nil
	}
	for i := range nd.entries {
		e := &nd.entries[i]
		if e.child == nil {
			return fmt.Errorf("rtree: internal entry %d has no child", i)
		}
		want := nodeRect(e.child, dim)
		for j := 0; j < dim; j++ {
			if e.rect.Lo[j] > want.Lo[j] || e.rect.Hi[j] < want.Hi[j] {
				return fmt.Errorf("rtree: entry %d rect does not cover child (dim %d: [%g,%g] vs child [%g,%g])",
					i, j, e.rect.Lo[j], e.rect.Hi[j], want.Lo[j], want.Hi[j])
			}
		}
		if err := checkNode(e.child, dim, false); err != nil {
			return err
		}
	}
	return nil
}
