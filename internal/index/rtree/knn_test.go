package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dbsvec/internal/vec"
)

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	rows := make([][]float64, 800)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	tr := Bulk(ds)
	for iter := 0; iter < 40; iter++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		k := 1 + rng.Intn(20)
		ids, dists := tr.KNearest(q, k, nil, nil)
		if len(ids) != k {
			t.Fatalf("got %d results, want %d", len(ids), k)
		}
		// Brute force reference.
		ref := make([]float64, ds.Len())
		for i := range ref {
			ref[i] = ds.Dist2To(i, q)
		}
		sorted := append([]float64(nil), ref...)
		sort.Float64s(sorted)
		for i := 0; i < k; i++ {
			if math.Abs(dists[i]-sorted[i]) > 1e-9 {
				t.Fatalf("k=%d rank %d: got %v, want %v", k, i, dists[i], sorted[i])
			}
			if math.Abs(ref[ids[i]]-dists[i]) > 1e-9 {
				t.Fatalf("returned distance does not match returned id")
			}
		}
		// Ascending order.
		for i := 1; i < k; i++ {
			if dists[i] < dists[i-1] {
				t.Fatal("results not in ascending order")
			}
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	empty, _ := vec.FromRows(nil)
	te := Bulk(empty)
	if ids, _ := te.KNearest([]float64{0}, 3, nil, nil); len(ids) != 0 {
		t.Error("empty tree should return nothing")
	}
	id, d2 := te.Nearest([]float64{0})
	if id != -1 || !math.IsInf(d2, 1) {
		t.Error("Nearest on empty tree wrong")
	}

	ds, _ := vec.FromRows([][]float64{{1, 1}, {2, 2}})
	tr := Bulk(ds)
	if ids, _ := tr.KNearest([]float64{0, 0}, 10, nil, nil); len(ids) != 2 {
		t.Errorf("k > n should return n results, got %d", len(ids))
	}
	if ids, _ := tr.KNearest([]float64{0, 0}, 0, nil, nil); len(ids) != 0 {
		t.Error("k=0 should return nothing")
	}
	id, _ = tr.Nearest([]float64{1.1, 1.1})
	if id != 0 {
		t.Errorf("Nearest = %d, want 0", id)
	}
}

func TestKNearestBufferReuse(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {5, 5}, {9, 9}})
	tr := Bulk(ds)
	ids := make([]int32, 0, 8)
	dists := make([]float64, 0, 8)
	ids, dists = tr.KNearest([]float64{0, 0}, 2, ids, dists)
	if len(ids) != 2 || ids[0] != 0 {
		t.Fatalf("first query wrong: %v", ids)
	}
	ids, dists = tr.KNearest([]float64{9, 9}, 2, ids, dists)
	if len(ids) != 2 || ids[0] != 2 {
		t.Fatalf("buffer reuse broke results: %v %v", ids, dists)
	}
}
