// Package vptree implements a vantage-point tree (Yianilos, SODA 1993): a
// metric-space index that partitions points by distance to a chosen
// vantage point instead of by coordinates. Unlike kd-trees and R-trees,
// whose axis-aligned pruning decays with dimensionality, VP-trees prune
// with the triangle inequality alone, making them a useful exact backend
// for the high-dimensional workloads in Figures 6b and 7.
package vptree

import (
	"math/rand"

	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// LeafSize is the maximum number of points stored in a leaf.
const LeafSize = 16

// Tree is an immutable vantage-point tree. Safe for concurrent readers.
type Tree struct {
	ds    *vec.Dataset
	nodes []node
	ids   []int32 // leaf storage, contiguous runs
}

type node struct {
	// Internal: vp is the vantage point id, radius the median distance;
	// inside/outside are child node indices.
	vp      int32
	radius  float64
	inside  int32
	outside int32
	// Leaf: [start, end) into ids; leaf nodes have inside == -1.
	start, end int32
}

// New builds a VP-tree over ds. Vantage points are chosen with a
// deterministic PRNG so builds are reproducible.
func New(ds *vec.Dataset) *Tree {
	t := &Tree{ds: ds}
	n := ds.Len()
	ids := vec.Iota(n)
	rng := rand.New(rand.NewSource(1))
	t.ids = make([]int32, 0, n)
	if n > 0 {
		t.build(ids, rng)
	}
	return t
}

// Build is an index.Builder.
func Build(ds *vec.Dataset) index.Index { return New(ds) }

// build recursively partitions ids and returns the node index.
func (t *Tree) build(ids []int32, rng *rand.Rand) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{inside: -1, outside: -1})
	if len(ids) <= LeafSize {
		start := int32(len(t.ids))
		t.ids = append(t.ids, ids...)
		t.nodes[self].start = start
		t.nodes[self].end = start + int32(len(ids))
		return self
	}
	// Choose a vantage point and move it out of the working set.
	vi := rng.Intn(len(ids))
	vp := ids[vi]
	ids[vi] = ids[len(ids)-1]
	rest := ids[:len(ids)-1]

	// Partition rest by the median distance to vp.
	dists := make([]float64, len(rest))
	vpPoint := t.ds.Point(int(vp))
	for i, id := range rest {
		dists[i] = vec.Dist(t.ds.Point(int(id)), vpPoint)
	}
	mid := len(rest) / 2
	quickselect(rest, dists, mid)
	radius := dists[mid]

	// The vantage point itself lives in the inside subtree (distance 0).
	insideIDs := append([]int32{vp}, rest[:mid]...)
	outsideIDs := rest[mid:]

	t.nodes[self].vp = vp
	t.nodes[self].radius = radius
	inside := t.build(insideIDs, rng)
	outside := t.build(outsideIDs, rng)
	t.nodes[self].inside = inside
	t.nodes[self].outside = outside
	return self
}

// quickselect partially sorts (ids, dists) so the element with rank nth is
// in place.
func quickselect(ids []int32, dists []float64, nth int) {
	lo, hi := 0, len(ids)-1
	for lo < hi {
		pivot := dists[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for dists[i] < pivot {
				i++
			}
			for dists[j] > pivot {
				j--
			}
			if i <= j {
				dists[i], dists[j] = dists[j], dists[i]
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		if nth <= j {
			hi = j
		} else if nth >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.ds.Len() }

// RangeQuery implements index.Index.
func (t *Tree) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if t.ds.Len() == 0 {
		return buf
	}
	eps2 := eps * eps
	var rec func(ni int32)
	rec = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.inside < 0 { // leaf
			buf = t.ds.FilterWithinIDs(q, eps2, t.ids[nd.start:nd.end], buf)
			return
		}
		d := vec.Dist(t.ds.Point(int(nd.vp)), q)
		// Triangle inequality pruning: the inside ball holds points with
		// dist(p, vp) <= radius, the outside shell the rest.
		if d-eps <= nd.radius {
			rec(nd.inside)
		}
		if d+eps >= nd.radius {
			rec(nd.outside)
		}
	}
	rec(0)
	return buf
}

// RangeCount implements index.Index.
func (t *Tree) RangeCount(q []float64, eps float64, limit int) int {
	if t.ds.Len() == 0 {
		return 0
	}
	eps2 := eps * eps
	count := 0
	var rec func(ni int32) bool
	rec = func(ni int32) bool {
		nd := &t.nodes[ni]
		if nd.inside < 0 {
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			count += t.ds.CountWithinIDs(q, eps2, t.ids[nd.start:nd.end], rem)
			return limit > 0 && count >= limit
		}
		d := vec.Dist(t.ds.Point(int(nd.vp)), q)
		if d-eps <= nd.radius && rec(nd.inside) {
			return true
		}
		if d+eps >= nd.radius && rec(nd.outside) {
			return true
		}
		return false
	}
	rec(0)
	return count
}

// Depth returns the height of the tree.
func (t *Tree) Depth() int {
	var rec func(ni int32) int
	rec = func(ni int32) int {
		nd := &t.nodes[ni]
		if nd.inside < 0 {
			return 1
		}
		di := rec(nd.inside)
		do := rec(nd.outside)
		if do > di {
			di = do
		}
		return di + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return rec(0)
}

var _ index.Index = (*Tree)(nil)
