// Package vptree implements a vantage-point tree (Yianilos, SODA 1993): a
// metric-space index that partitions points by distance to a chosen
// vantage point instead of by coordinates. Unlike kd-trees and R-trees,
// whose axis-aligned pruning decays with dimensionality, VP-trees prune
// with the triangle inequality alone, making them a useful exact backend
// for the high-dimensional workloads in Figures 6b and 7.
//
// Construction partitions the id slice in place around the median distance
// to the vantage point, so every subtree owns a contiguous id range and the
// preorder node layout — like the kd-tree's — is a pure function of the
// input size. Vantage points are drawn from a per-node hash rather than a
// sequential PRNG, which keeps the choice reproducible AND independent of
// build order, so subtrees can be constructed concurrently (NewWorkers)
// with bit-identical results for every worker count. Leaf points are packed
// into a contiguous leaf-ordered matrix for cache-friendly leaf scans.
package vptree

import (
	"context"
	"sync/atomic"

	"dbsvec/internal/dist"
	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// LeafSize is the maximum number of points stored in a leaf.
const LeafSize = 16

// spawnMin is the smallest subtree a parallel build hands to another worker.
const spawnMin = 2048

// Tree is an immutable vantage-point tree. Safe for concurrent readers.
type Tree struct {
	ds    *vec.Dataset
	nodes []node
	ids   []int32 // permutation of 0..n-1; every subtree owns a contiguous run
	// packed holds the points in leaf order (Row(k) is the point with id
	// ids[k]); see the kd-tree for the streaming-leaf-scan rationale.
	// Float32-storage datasets pack into packed32 instead.
	packed   dist.Matrix
	packed32 dist.Matrix32
}

type node struct {
	// Internal: vp is the vantage point id, radius the median distance;
	// inside/outside are child node indices.
	vp      int32
	radius  float64
	inside  int32
	outside int32
	// Leaf: [start, end) into ids; leaf nodes have inside == -1.
	start, end int32
}

// New builds a VP-tree over ds on the calling goroutine. Vantage points are
// chosen by a deterministic per-node hash so builds are reproducible.
func New(ds *vec.Dataset) *Tree { return NewWorkers(ds, 1) }

// NewWorkers builds a VP-tree over ds using up to workers goroutines (<= 0
// selects all CPUs). The tree is bit-identical for every worker count.
func NewWorkers(ds *vec.Dataset, workers int) *Tree {
	t, _ := NewWorkersCtx(context.Background(), ds, workers)
	return t
}

// NewWorkersCtx builds like NewWorkers but honours ctx: cancellation is
// checked at the entry of every subtree of spawnMin points or more, and a
// cancelled build abandons its partial structure and returns ctx's error.
// An uncancelled build is bit-identical to NewWorkers.
func NewWorkersCtx(ctx context.Context, ds *vec.Dataset, workers int) (*Tree, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	n := ds.Len()
	t := &Tree{ds: ds, ids: vec.Iota(n)}
	if n == 0 {
		return t, nil
	}
	workers = engine.ResolveWorkers(workers)
	memo := subtreeSizes(n)
	t.nodes = make([]node, memo[sizeKey(n)])
	b := &buildState{t: t, memo: memo, tasks: engine.NewTasks(workers), ctx: ctx}
	b.build(0, 0, n, make([]float64, n-1))
	b.tasks.Wait()
	if b.cancelled.Load() {
		return nil, ctx.Err()
	}
	t.packLeaves(workers)
	return t, nil
}

// Build is an index.Builder (serial build).
func Build(ds *vec.Dataset) index.Index { return New(ds) }

// BuildWorkers returns an index.Builder that constructs the tree with the
// given worker count (<= 0: all CPUs).
func BuildWorkers(workers int) index.Builder {
	return func(ds *vec.Dataset) index.Index { return NewWorkers(ds, workers) }
}

// BuildWorkersCtx returns an index.CtxBuilder with mid-build cancellation
// (see NewWorkersCtx).
func BuildWorkersCtx(workers int) index.CtxBuilder {
	return func(ctx context.Context, ds *vec.Dataset) (index.Index, error) {
		t, err := NewWorkersCtx(ctx, ds, workers)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
}

// sizeKey normalizes a range length for the subtree-size memo.
func sizeKey(m int) int {
	if m <= LeafSize {
		return LeafSize
	}
	return m
}

// subtreeSizes returns the node count of a subtree over every range length
// reachable from n: a range of m points splits into an inside half of
// (m-1)/2 + 1 points (the vantage point plus everything within the median
// radius) and an outside half holding the rest.
func subtreeSizes(n int) map[int]int32 {
	memo := make(map[int]int32)
	var count func(m int) int32
	count = func(m int) int32 {
		if m <= LeafSize {
			return 1
		}
		if c, ok := memo[m]; ok {
			return c
		}
		in := (m-1)/2 + 1
		c := 1 + count(in) + count(m-in)
		memo[m] = c
		return c
	}
	memo[LeafSize] = 1
	memo[sizeKey(n)] = count(n)
	return memo
}

// vantageIndex picks the vantage position within a subtree's id range by
// hashing the node's preorder slot (splitmix64 finalizer). The draw depends
// only on (slot, range length), never on which goroutine builds the
// subtree.
func vantageIndex(self int32, m int) int {
	x := uint64(self)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return int(x % uint64(m))
}

type buildState struct {
	t     *Tree
	memo  map[int]int32
	tasks *engine.Tasks
	// ctx and the sticky cancelled flag implement mid-build cancellation
	// (see the kd-tree's buildState; checks happen only at subtrees of
	// spawnMin points or more).
	ctx       context.Context
	cancelled atomic.Bool
}

// stop reports whether the build has been cancelled.
func (b *buildState) stop() bool {
	if b.ctx == nil {
		return false
	}
	if b.cancelled.Load() {
		return true
	}
	if b.ctx.Err() != nil {
		b.cancelled.Store(true)
		return true
	}
	return false
}

// build constructs the subtree over ids[off:off+m) into node slot self.
// dscratch is a distance buffer of at least m-1 entries owned by the
// calling goroutine.
func (b *buildState) build(self int32, off, m int, dscratch []float64) {
	t := b.t
	if m >= spawnMin && b.stop() {
		return
	}
	if m <= LeafSize {
		t.nodes[self] = node{inside: -1, outside: -1, start: int32(off), end: int32(off + m)}
		return
	}
	seg := t.ids[off : off+m]

	// Move the vantage point to the front; it stays in the inside subtree
	// (distance 0 to itself).
	vi := vantageIndex(self, m)
	seg[0], seg[vi] = seg[vi], seg[0]
	vp := seg[0]
	rest := seg[1:]

	// Partition rest in place by the median distance to vp.
	dists := dscratch[:len(rest)]
	vpPoint := t.ds.Point(int(vp))
	for i, id := range rest {
		dists[i] = vec.Dist(t.ds.Point(int(id)), vpPoint)
	}
	mid := len(rest) / 2
	quickselect(rest, dists, mid)
	radius := dists[mid]

	in := mid + 1 // vp + rest[:mid]
	inside := self + 1
	outside := inside + b.memo[sizeKey(in)]
	t.nodes[self] = node{vp: vp, radius: radius, inside: inside, outside: outside}
	if m-in >= spawnMin && b.tasks.Try(func() {
		b.build(outside, off+in, m-in, make([]float64, m-in-1))
	}) {
		b.build(inside, off, in, dscratch)
		return
	}
	b.build(inside, off, in, dscratch)
	b.build(outside, off+in, m-in, dscratch)
}

// packLeaves copies the points into leaf order (see kdtree.packLeaves).
func (t *Tree) packLeaves(workers int) {
	d := t.ds.Dim()
	if m32 := t.ds.Matrix32(); m32.Coords != nil {
		coords := make([]float32, len(t.ids)*d)
		engine.ForRanges(workers, len(t.ids), nil, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				copy(coords[k*d:(k+1)*d], m32.Row(int(t.ids[k])))
			}
		})
		t.packed32 = dist.Matrix32{Coords: coords, Dim: d}
		return
	}
	coords := make([]float64, len(t.ids)*d)
	engine.ForRanges(workers, len(t.ids), nil, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			copy(coords[k*d:(k+1)*d], t.ds.Point(int(t.ids[k])))
		}
	})
	t.packed = dist.Matrix{Coords: coords, Dim: d}
}

// quickselect partially sorts (ids, dists) so the element with rank nth is
// in place.
func quickselect(ids []int32, dists []float64, nth int) {
	lo, hi := 0, len(ids)-1
	for lo < hi {
		pivot := dists[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for dists[i] < pivot {
				i++
			}
			for dists[j] > pivot {
				j--
			}
			if i <= j {
				dists[i], dists[j] = dists[j], dists[i]
				ids[i], ids[j] = ids[j], ids[i]
				i++
				j--
			}
		}
		if nth <= j {
			hi = j
		} else if nth >= i {
			lo = i
		} else {
			return
		}
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.ds.Len() }

// scanLeaf appends leaf nd's points within eps2 of q, streaming the packed
// block when available (bit-identical to the gather path; see kdtree).
func (t *Tree) scanLeaf(nd *node, q []float64, eps2 float64, buf []int32) []int32 {
	if t.packed32.Coords != nil {
		mark := len(buf)
		buf = dist.FilterWithinRange32(t.packed32, q, eps2, int(nd.start), int(nd.end), buf)
		for i := mark; i < len(buf); i++ {
			buf[i] = t.ids[buf[i]]
		}
		return buf
	}
	if t.packed.Coords == nil {
		return t.ds.FilterWithinIDs(q, eps2, t.ids[nd.start:nd.end], buf)
	}
	mark := len(buf)
	buf = dist.FilterWithinRange(t.packed, q, eps2, int(nd.start), int(nd.end), buf)
	for i := mark; i < len(buf); i++ {
		buf[i] = t.ids[buf[i]]
	}
	return buf
}

// countLeaf counts leaf nd's points within eps2 of q (see scanLeaf).
func (t *Tree) countLeaf(nd *node, q []float64, eps2 float64, limit int) int {
	if t.packed32.Coords != nil {
		return dist.CountWithinRange32(t.packed32, q, eps2, int(nd.start), int(nd.end), limit)
	}
	if t.packed.Coords == nil {
		return t.ds.CountWithinIDs(q, eps2, t.ids[nd.start:nd.end], limit)
	}
	return dist.CountWithinRange(t.packed, q, eps2, int(nd.start), int(nd.end), limit)
}

// RangeQuery implements index.Index.
func (t *Tree) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if t.ds.Len() == 0 {
		return buf
	}
	eps2 := eps * eps
	var rec func(ni int32)
	rec = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.inside < 0 { // leaf
			buf = t.scanLeaf(nd, q, eps2, buf)
			return
		}
		d := vec.Dist(t.ds.Point(int(nd.vp)), q)
		// Triangle inequality pruning: the inside ball holds points with
		// dist(p, vp) <= radius, the outside shell the rest.
		if d-eps <= nd.radius {
			rec(nd.inside)
		}
		if d+eps >= nd.radius {
			rec(nd.outside)
		}
	}
	rec(0)
	return buf
}

// RangeCount implements index.Index.
func (t *Tree) RangeCount(q []float64, eps float64, limit int) int {
	if t.ds.Len() == 0 {
		return 0
	}
	eps2 := eps * eps
	count := 0
	var rec func(ni int32) bool
	rec = func(ni int32) bool {
		nd := &t.nodes[ni]
		if nd.inside < 0 {
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			count += t.countLeaf(nd, q, eps2, rem)
			return limit > 0 && count >= limit
		}
		d := vec.Dist(t.ds.Point(int(nd.vp)), q)
		if d-eps <= nd.radius && rec(nd.inside) {
			return true
		}
		if d+eps >= nd.radius && rec(nd.outside) {
			return true
		}
		return false
	}
	rec(0)
	return count
}

// Depth returns the height of the tree.
func (t *Tree) Depth() int {
	var rec func(ni int32) int
	rec = func(ni int32) int {
		nd := &t.nodes[ni]
		if nd.inside < 0 {
			return 1
		}
		di := rec(nd.inside)
		do := rec(nd.outside)
		if do > di {
			di = do
		}
		return di + 1
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return rec(0)
}

var _ index.Index = (*Tree)(nil)
