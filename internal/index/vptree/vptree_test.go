package vptree

import (
	"math/rand"
	"slices"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "vptree", Build)
}

func TestConformanceF32(t *testing.T) {
	indextest.RunF32(t, "vptree", Build)
}

func TestConformanceParallelBuild(t *testing.T) {
	indextest.Run(t, "vptree-parallel", BuildWorkers(4))
}

func TestBuildDeterminism(t *testing.T) {
	indextest.RunBuildDeterminism(t, "vptree", func(ds *vec.Dataset, workers int) index.Index {
		return NewWorkers(ds, workers)
	})
}

// TestParallelStructureIdentical: parallel builds must reproduce the serial
// build's node array, id permutation and packed matrix exactly (vantage
// selection hashes the preorder slot, so it cannot depend on scheduling).
func TestParallelStructureIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 6000)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	serial := NewWorkers(ds, 1)
	for _, workers := range []int{2, 6, 16} {
		par := NewWorkers(ds, workers)
		if !slices.Equal(par.ids, serial.ids) {
			t.Fatalf("workers=%d: id permutation differs", workers)
		}
		if !slices.Equal(par.nodes, serial.nodes) {
			t.Fatalf("workers=%d: node layout differs", workers)
		}
		if !slices.Equal(par.packed.Coords, serial.packed.Coords) {
			t.Fatalf("workers=%d: packed matrix differs", workers)
		}
	}
}

// TestPackedMatchesGather: streaming the packed leaf blocks is bitwise
// equivalent to the gather-by-id leaf scan (see the kdtree sibling test).
func TestPackedMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := 6
	rows := make([][]float64, 2500)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Float64() * 100
		}
	}
	ds, _ := vec.FromRows(rows)
	packed := New(ds)
	gather := &Tree{ds: packed.ds, ids: packed.ids, nodes: packed.nodes}
	for iter := 0; iter < 60; iter++ {
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.Float64() * 100
		}
		eps := 10 + rng.Float64()*40
		if got, want := packed.RangeQuery(q, eps, nil), gather.RangeQuery(q, eps, nil); !slices.Equal(got, want) {
			t.Fatalf("eps=%g: packed %v != gather %v", eps, got, want)
		}
		if g, w := packed.RangeCount(q, eps, 5), gather.RangeCount(q, eps, 5); g != w {
			t.Fatalf("packed limited count %d != gather %d", g, w)
		}
	}
}

func TestHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 32
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Float64() * 1000
		}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	oracle := index.NewLinear(ds)
	for iter := 0; iter < 30; iter++ {
		q := rows[rng.Intn(len(rows))]
		eps := 500 + rng.Float64()*2000
		if got, want := tr.RangeCount(q, eps, 0), oracle.RangeCount(q, eps, 0); got != want {
			t.Fatalf("d=32 count %d != %d", got, want)
		}
	}
}

func TestDepthBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	// Median splits give ~log2(4096/16) + 1 = 9 levels; allow slack for
	// duplicate-distance ties.
	if d := tr.Depth(); d > 20 {
		t.Errorf("depth %d suggests unbalanced splits", d)
	}
}

func TestDuplicateHeavy(t *testing.T) {
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{float64(i % 3), 0}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	got := tr.RangeQuery([]float64{0, 0}, 0.5, nil)
	if len(got) != 100 {
		t.Errorf("got %d duplicates, want 100", len(got))
	}
}
