package vptree

import (
	"math/rand"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "vptree", Build)
}

func TestHighDimensional(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := 32
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Float64() * 1000
		}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	oracle := index.NewLinear(ds)
	for iter := 0; iter < 30; iter++ {
		q := rows[rng.Intn(len(rows))]
		eps := 500 + rng.Float64()*2000
		if got, want := tr.RangeCount(q, eps, 0), oracle.RangeCount(q, eps, 0); got != want {
			t.Fatalf("d=32 count %d != %d", got, want)
		}
	}
}

func TestDepthBalanced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 4096)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	// Median splits give ~log2(4096/16) + 1 = 9 levels; allow slack for
	// duplicate-distance ties.
	if d := tr.Depth(); d > 20 {
		t.Errorf("depth %d suggests unbalanced splits", d)
	}
}

func TestDuplicateHeavy(t *testing.T) {
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{float64(i % 3), 0}
	}
	ds, _ := vec.FromRows(rows)
	tr := New(ds)
	got := tr.RangeQuery([]float64{0, 0}, 0.5, nil)
	if len(got) != 100 {
		t.Errorf("got %d duplicates, want 100", len(got))
	}
}
