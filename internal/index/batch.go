package index

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dbsvec/internal/fault"
)

// Queries addresses a batch of query points by position. The batch executor
// calls At from multiple goroutines, so At must be safe for concurrent use.
//
// At receives a per-worker scratch slice of capacity ScratchCap: sources
// that must materialize coordinates (rather than return a view into
// existing storage) append into scratch[:0], keeping the fan-out
// allocation-free. Sources that only return views leave ScratchCap zero and
// ignore scratch.
type Queries struct {
	// N is the number of queries in the batch.
	N int
	// ScratchCap is the float64 scratch capacity each worker provisions for
	// At; zero when At returns views into existing storage.
	ScratchCap int
	// At returns the coordinates of query i. The result is read before the
	// next At call by the same worker, never retained.
	At func(i int, scratch []float64) []float64
}

// PointQueries adapts a materialized query matrix.
func PointQueries(pts [][]float64) Queries {
	return Queries{N: len(pts), At: func(i int, _ []float64) []float64 { return pts[i] }}
}

// BatchIndex is the batched-query capability: a whole set of range queries
// is submitted as one schedulable unit, fanned across a worker pool, with
// results delivered in query order so callers stay deterministic regardless
// of the worker count. Backends without a native implementation are served
// by the Batch fallback adapter.
type BatchIndex interface {
	Index

	// BatchRangeQuery answers query i into out[i] (appending to out[i][:0],
	// so passing the previous batch's out makes steady-state rounds
	// allocation-free). A nil out allocates. workers <= 0 selects
	// GOMAXPROCS. ctx is checked throughout the batch; on cancellation the
	// partial results are discarded and ctx's error is returned.
	BatchRangeQuery(ctx context.Context, qs Queries, eps float64, workers int, out [][]int32) ([][]int32, error)

	// BatchRangeCount is the counting analogue: out[i] receives the
	// (limit-clamped, as in RangeCount) neighbor count of query i.
	BatchRangeCount(ctx context.Context, qs Queries, eps float64, limit, workers int, out []int) ([]int, error)
}

// Batch upgrades idx to a BatchIndex: indexes with a native batch
// implementation are returned as-is, every other backend is wrapped in a
// fan-out adapter over its per-query methods (valid because Index
// implementations are safe for concurrent readers).
func Batch(idx Index) BatchIndex {
	if b, ok := idx.(BatchIndex); ok {
		return b
	}
	return &fanout{Index: idx}
}

// ClampWorkers resolves a worker-count option against a batch of m queries:
// non-positive selects GOMAXPROCS, and the result never exceeds m.
func ClampWorkers(workers, m int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// batchStride is the number of consecutive queries a worker claims per
// work-stealing step: large enough to amortize the shared counter and the
// context check, small enough to balance skewed neighborhoods.
const batchStride = 8

// fanout serves batches on any Index by fanning the per-query calls across
// workers that claim strides of query indexes from a shared atomic counter.
// Results are keyed by query index, so output is independent of scheduling.
type fanout struct {
	Index
}

func (f *fanout) BatchRangeQuery(ctx context.Context, qs Queries, eps float64, workers int, out [][]int32) ([][]int32, error) {
	out = growSlices(out, qs.N)
	err := f.run(ctx, qs, workers, func(i int, q []float64) {
		out[i] = f.Index.RangeQuery(q, eps, out[i][:0])
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func (f *fanout) BatchRangeCount(ctx context.Context, qs Queries, eps float64, limit, workers int, out []int) ([]int, error) {
	if cap(out) < qs.N {
		out = make([]int, qs.N)
	}
	out = out[:qs.N]
	err := f.run(ctx, qs, workers, func(i int, q []float64) {
		out[i] = f.Index.RangeCount(q, eps, limit)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// run executes fn(i, At(i)) for every query index, fanned across workers.
//
// Worker panics are contained: each worker recovers its own panic, records
// it keyed by the query index being processed, and raises a stop flag so the
// remaining workers abandon the batch at their next stride claim. After the
// barrier the panic with the lowest query index is returned as a typed
// *fault.WorkerPanicError — a deterministic choice when one query
// deterministically panics, independent of which worker claimed it. The
// sequential path converts a panic the same way, so both paths report
// batch failures as errors rather than crashing the caller.
func (f *fanout) run(ctx context.Context, qs Queries, workers int, fn func(i int, q []float64)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	m := qs.N
	if m == 0 {
		return ctx.Err()
	}
	workers = ClampWorkers(workers, m)
	if workers == 1 {
		// Sequential fast path on the calling goroutine.
		return func() (err error) {
			defer fault.RecoverTo(&err)
			fault.PanicNow(fault.WorkerPanic)
			scratch := scratchFor(qs)
			for i := 0; i < m; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				fn(i, qs.At(i, scratch))
			}
			return nil
		}()
	}
	var next atomic.Int64
	var stop atomic.Bool
	var mu sync.Mutex
	panicIdx := -1
	var panicErr *fault.WorkerPanicError
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			cur := -1
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					pe := fault.AsWorkerPanic(v)
					mu.Lock()
					if panicErr == nil || (cur >= 0 && cur < panicIdx) {
						panicErr, panicIdx = pe, cur
					}
					mu.Unlock()
					stop.Store(true)
				}
			}()
			fault.PanicNow(fault.WorkerPanic)
			scratch := scratchFor(qs)
			for {
				start := int(next.Add(batchStride)) - batchStride
				if start >= m || stop.Load() || ctx.Err() != nil {
					return
				}
				end := start + batchStride
				if end > m {
					end = m
				}
				for i := start; i < end; i++ {
					cur = i
					fn(i, qs.At(i, scratch))
				}
			}
		}()
	}
	wg.Wait()
	if panicErr != nil {
		return panicErr
	}
	return ctx.Err()
}

// scratchFor provisions one worker's query scratch.
func scratchFor(qs Queries) []float64 {
	if qs.ScratchCap <= 0 {
		return nil
	}
	return make([]float64, 0, qs.ScratchCap)
}

// growSlices extends out to length m, preserving existing entries (whose
// capacity the next batch reuses) and past-length entries still held in the
// backing array from earlier, larger batches.
func growSlices(out [][]int32, m int) [][]int32 {
	if cap(out) < m {
		out = append(out[:cap(out)], make([][]int32, m-cap(out))...)
	}
	return out[:m]
}
