// Package indextest provides a reusable conformance suite that validates any
// index.Index implementation against the linear-scan oracle on randomized
// workloads. Each index package's tests call Run with its Builder.
package indextest

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Run exercises the builder on a battery of datasets and query mixes and
// fails the test on any divergence from the linear-scan oracle.
func Run(t *testing.T, name string, build index.Builder) {
	t.Helper()
	t.Run(name+"/uniform2d", func(t *testing.T) { compare(t, build, uniform(400, 2, 1), 25, 2) })
	t.Run(name+"/uniform5d", func(t *testing.T) { compare(t, build, uniform(400, 5, 2), 35, 3) })
	t.Run(name+"/clustered3d", func(t *testing.T) { compare(t, build, clustered(500, 3, 3), 12, 4) })
	t.Run(name+"/duplicates", func(t *testing.T) { compare(t, build, duplicates(200, 2, 5), 10, 6) })
	t.Run(name+"/line1d", func(t *testing.T) { compare(t, build, uniform(300, 1, 7), 8, 8) })
	t.Run(name+"/tiny", func(t *testing.T) { compare(t, build, uniform(3, 2, 9), 50, 10) })
	t.Run(name+"/single", func(t *testing.T) { compare(t, build, uniform(1, 4, 11), 50, 12) })
	t.Run(name+"/empty", func(t *testing.T) {
		ds, _ := vec.FromRows(nil)
		idx := build(ds)
		if idx.Len() != 0 {
			t.Errorf("Len = %d on empty dataset", idx.Len())
		}
	})
	t.Run(name+"/batch", func(t *testing.T) { batchCompare(t, build, clustered(500, 3, 15), 12) })
	t.Run(name+"/batch-uniform", func(t *testing.T) { batchCompare(t, build, uniform(300, 5, 16), 35) })
	t.Run(name+"/batch-cancel", func(t *testing.T) { batchCancel(t, build, uniform(200, 2, 17), 25) })
	t.Run(name+"/zeroeps", func(t *testing.T) {
		ds := duplicates(100, 2, 13)
		idx := build(ds)
		oracle := index.NewLinear(ds)
		for i := 0; i < ds.Len(); i += 7 {
			got := sorted(idx.RangeQuery(ds.Point(i), 0, nil))
			want := sorted(oracle.RangeQuery(ds.Point(i), 0, nil))
			if !equal(got, want) {
				t.Fatalf("eps=0 query %d: got %v want %v", i, got, want)
			}
		}
	})
}

// RunF32 is the float32-storage conformance suite: the same battery as Run
// but with every dataset converted to F32 storage, plus the cross-precision
// determinism property. The oracle comparison inside compare already runs on
// the converted dataset (linear routes to the f32 kernels too); the extra
// widened-master check pins that an index built over F32 storage answers
// bit-identically to one built over the F64 view of the same quantized
// coordinates — i.e. that the f32 leaf scans are a pure bandwidth swap.
func RunF32(t *testing.T, name string, build index.Builder) {
	t.Helper()
	corpus := []struct {
		label string
		ds    *vec.Dataset
		eps   float64
		seed  int64
	}{
		{"uniform2d", uniform(400, 2, 31), 25, 2},
		{"uniform5d", uniform(400, 5, 32), 35, 3},
		{"clustered3d", clustered(500, 3, 33), 12, 4},
		{"duplicates", duplicates(200, 2, 34), 10, 6},
	}
	for _, tc := range corpus {
		tc := tc
		ds32, err := tc.ds.ToPrecision(vec.F32)
		if err != nil {
			t.Fatalf("%s: F32 conversion: %v", tc.label, err)
		}
		t.Run(name+"/f32/"+tc.label, func(t *testing.T) {
			compare(t, build, ds32, tc.eps, tc.seed)
		})
		t.Run(name+"/f32-vs-widened/"+tc.label, func(t *testing.T) {
			master, err := ds32.ToPrecision(vec.F64)
			if err != nil {
				t.Fatal(err)
			}
			idx32 := build(ds32)
			idx64 := build(master)
			rng := rand.New(rand.NewSource(tc.seed + 100))
			lo, hi := ds32.Bounds()
			for iter := 0; iter < 40; iter++ {
				var q []float64
				if iter%2 == 0 {
					q = ds32.Point(rng.Intn(ds32.Len()))
				} else {
					q = make([]float64, ds32.Dim())
					for j := range q {
						span := hi[j] - lo[j]
						q[j] = lo[j] - 0.2*span + rng.Float64()*1.4*span
					}
				}
				e := tc.eps * (0.2 + rng.Float64()*1.6)
				got := idx32.RangeQuery(q, e, nil)
				want := idx64.RangeQuery(q, e, nil)
				if !equal(got, want) {
					t.Fatalf("RangeQuery(q=%v eps=%g): f32 index %v, widened-master index %v", q, e, got, want)
				}
				if g, w := idx32.RangeCount(q, e, 0), idx64.RangeCount(q, e, 0); g != w {
					t.Fatalf("RangeCount: f32 %d, widened-master %d", g, w)
				}
			}
		})
	}
}

func compare(t *testing.T, build index.Builder, ds *vec.Dataset, eps float64, seed int64) {
	t.Helper()
	idx := build(ds)
	oracle := index.NewLinear(ds)
	if idx.Len() != ds.Len() {
		t.Fatalf("Len = %d, want %d", idx.Len(), ds.Len())
	}
	rng := rand.New(rand.NewSource(seed))
	lo, hi := ds.Bounds()
	for iter := 0; iter < 60; iter++ {
		var q []float64
		if iter%2 == 0 && ds.Len() > 0 {
			q = ds.Point(rng.Intn(ds.Len())) // on-point queries
		} else {
			q = make([]float64, ds.Dim())
			for j := range q {
				span := hi[j] - lo[j]
				q[j] = lo[j] - 0.2*span + rng.Float64()*1.4*span // may fall outside
			}
		}
		e := eps * (0.2 + rng.Float64()*1.6)
		got := sorted(idx.RangeQuery(q, e, nil))
		want := sorted(oracle.RangeQuery(q, e, nil))
		if !equal(got, want) {
			t.Fatalf("RangeQuery(q=%v eps=%g): got %d ids %v, want %d ids %v", q, e, len(got), got, len(want), want)
		}
		if c := idx.RangeCount(q, e, 0); c != len(want) {
			t.Fatalf("RangeCount(q=%v eps=%g) = %d, want %d", q, e, c, len(want))
		}
		if len(want) >= 2 {
			if c := idx.RangeCount(q, e, 2); c != 2 {
				t.Fatalf("RangeCount limit=2 = %d, want 2", c)
			}
		}
	}
}

// batchCompare is the BatchIndex conformance property: for every backend,
// BatchRangeQuery/BatchRangeCount over a random query mix must equal the
// per-query RangeQuery/RangeCount results, for several worker counts, in
// both owned and buffer-reuse modes, including computed (scratch-backed)
// query points.
func batchCompare(t *testing.T, build index.Builder, ds *vec.Dataset, eps float64) {
	t.Helper()
	idx := build(ds)
	b := index.Batch(idx)
	lo, hi := ds.Bounds()
	d := ds.Dim()

	const m = 120
	// Queries mix on-point views with perturbed points materialized into the
	// per-worker scratch (exercising the ScratchCap path).
	qs := index.Queries{
		N:          m,
		ScratchCap: d,
		At: func(i int, scratch []float64) []float64 {
			if i%2 == 0 {
				return ds.Point((i * 7) % ds.Len())
			}
			q := scratch[:0]
			for j := 0; j < d; j++ {
				span := hi[j] - lo[j]
				frac := float64((i*13+j*5)%97) / 96
				q = append(q, lo[j]-0.1*span+1.2*span*frac)
			}
			return q
		},
	}
	want := make([][]int32, m)
	wantN := make([]int, m)
	scratch := make([]float64, 0, d)
	for i := 0; i < m; i++ {
		q := qs.At(i, scratch)
		want[i] = sorted(idx.RangeQuery(q, eps, nil))
		wantN[i] = idx.RangeCount(q, eps, 0)
	}

	var reuse [][]int32
	var reuseN []int
	for _, workers := range []int{1, 3, 8} {
		got, err := b.BatchRangeQuery(context.Background(), qs, eps, workers, nil)
		if err != nil {
			t.Fatalf("BatchRangeQuery(workers=%d): %v", workers, err)
		}
		if len(got) != m {
			t.Fatalf("BatchRangeQuery(workers=%d) returned %d results, want %d", workers, len(got), m)
		}
		for i := range got {
			if !equal(sorted(got[i]), want[i]) {
				t.Fatalf("BatchRangeQuery(workers=%d) query %d: got %v want %v", workers, i, got[i], want[i])
			}
		}
		// Reuse mode: hand the previous batch's buffers back in.
		reuse, err = b.BatchRangeQuery(context.Background(), qs, eps, workers, reuse)
		if err != nil {
			t.Fatalf("BatchRangeQuery(reuse, workers=%d): %v", workers, err)
		}
		for i := range reuse {
			if !equal(sorted(reuse[i]), want[i]) {
				t.Fatalf("BatchRangeQuery(reuse, workers=%d) query %d: got %v want %v", workers, i, reuse[i], want[i])
			}
		}
		reuseN, err = b.BatchRangeCount(context.Background(), qs, eps, 0, workers, reuseN)
		if err != nil {
			t.Fatalf("BatchRangeCount(workers=%d): %v", workers, err)
		}
		for i := range reuseN {
			if reuseN[i] != wantN[i] {
				t.Fatalf("BatchRangeCount(workers=%d) query %d = %d, want %d", workers, i, reuseN[i], wantN[i])
			}
		}
		// Limited counts clamp exactly like RangeCount.
		limN, err := b.BatchRangeCount(context.Background(), qs, eps, 2, workers, nil)
		if err != nil {
			t.Fatalf("BatchRangeCount(limit=2, workers=%d): %v", workers, err)
		}
		for i := range limN {
			wantLim := wantN[i]
			if wantLim > 2 {
				wantLim = 2
			}
			if limN[i] < wantLim {
				t.Fatalf("BatchRangeCount(limit=2, workers=%d) query %d = %d, want >= %d", workers, i, limN[i], wantLim)
			}
		}
	}
}

// batchCancel checks that a cancelled context aborts the batch with the
// context's error.
func batchCancel(t *testing.T, build index.Builder, ds *vec.Dataset, eps float64) {
	t.Helper()
	b := index.Batch(build(ds))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	qs := index.Queries{N: ds.Len(), At: func(i int, _ []float64) []float64 { return ds.Point(i) }}
	if _, err := b.BatchRangeQuery(ctx, qs, eps, 4, nil); err != context.Canceled {
		t.Fatalf("BatchRangeQuery on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := b.BatchRangeCount(ctx, qs, eps, 0, 4, nil); err != context.Canceled {
		t.Fatalf("BatchRangeCount on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// WorkersBuilder constructs an index over ds using up to workers
// goroutines; it is the constructor shape shared by the parallel-build
// backends (kdtree.NewWorkers, rtree.BulkWorkers, …).
type WorkersBuilder func(ds *vec.Dataset, workers int) index.Index

// nearester is the optional exact nearest-neighbor capability some backends
// expose; when present it participates in the determinism comparison.
type nearester interface {
	Nearest(q []float64) (int32, float64)
}

// RunBuildDeterminism is the parallel-build conformance property: an index
// built with workers=1 and one built with workers=N must answer every query
// bit-identically — same ids in the same order from RangeQuery, same
// RangeCount (limited and exhaustive), same Nearest id and squared distance
// where exposed — on the fuzz corpus. Backends guarantee this by fixing the
// work partition before any goroutine runs, so this check pins that no
// scheduling dependence has crept into construction.
func RunBuildDeterminism(t *testing.T, name string, build WorkersBuilder) {
	t.Helper()
	corpus := []struct {
		label string
		ds    *vec.Dataset
		eps   float64
	}{
		{"uniform2d", uniform(4000, 2, 21), 4},
		{"uniform5d", uniform(3000, 5, 22), 30},
		{"clustered3d", clustered(5000, 3, 23), 10},
		{"duplicates", duplicates(2000, 2, 24), 8},
		{"tiny", uniform(5, 3, 25), 50},
	}
	for _, tc := range corpus {
		tc := tc
		t.Run(name+"/build-determinism/"+tc.label, func(t *testing.T) {
			serial := build(tc.ds, 1)
			rng := rand.New(rand.NewSource(26))
			lo, hi := tc.ds.Bounds()
			for _, workers := range []int{2, 3, 8} {
				par := build(tc.ds, workers)
				if par.Len() != serial.Len() {
					t.Fatalf("workers=%d: Len %d != %d", workers, par.Len(), serial.Len())
				}
				for iter := 0; iter < 40; iter++ {
					var q []float64
					if iter%2 == 0 {
						q = tc.ds.Point(rng.Intn(tc.ds.Len()))
					} else {
						q = make([]float64, tc.ds.Dim())
						for j := range q {
							span := hi[j] - lo[j]
							q[j] = lo[j] - 0.2*span + rng.Float64()*1.4*span
						}
					}
					e := tc.eps * (0.2 + rng.Float64()*1.6)
					got := par.RangeQuery(q, e, nil)
					want := serial.RangeQuery(q, e, nil)
					// Exact slice equality: parallel builds must preserve
					// result *order*, not just the id set.
					if !equal(got, want) {
						t.Fatalf("workers=%d RangeQuery(q=%v eps=%g): got %v want %v", workers, q, e, got, want)
					}
					if g, w := par.RangeCount(q, e, 0), serial.RangeCount(q, e, 0); g != w {
						t.Fatalf("workers=%d RangeCount = %d, want %d", workers, g, w)
					}
					if len(want) >= 3 {
						if g, w := par.RangeCount(q, e, 3), serial.RangeCount(q, e, 3); g != w {
							t.Fatalf("workers=%d RangeCount(limit=3) = %d, want %d", workers, g, w)
						}
					}
					pn, pok := par.(nearester)
					sn, sok := serial.(nearester)
					if pok && sok {
						gid, gd := pn.Nearest(q)
						wid, wd := sn.Nearest(q)
						if gid != wid || gd != wd {
							t.Fatalf("workers=%d Nearest = (%d,%v), want (%d,%v)", workers, gid, gd, wid, wd)
						}
					}
				}
			}
		})
	}
}

func uniform(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64() * 100
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

func clustered(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 5)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 100
		}
	}
	coords := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(len(centers))]
		for j := 0; j < d; j++ {
			coords = append(coords, c[j]+rng.NormFloat64()*3)
		}
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

func duplicates(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	distinct := n / 4
	pts := make([][]float64, distinct)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * 50
		}
	}
	coords := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		coords = append(coords, pts[rng.Intn(distinct)]...)
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

func sorted(ids []int32) []int32 {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
