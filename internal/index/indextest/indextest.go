// Package indextest provides a reusable conformance suite that validates any
// index.Index implementation against the linear-scan oracle on randomized
// workloads. Each index package's tests call Run with its Builder.
package indextest

import (
	"math/rand"
	"sort"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Run exercises the builder on a battery of datasets and query mixes and
// fails the test on any divergence from the linear-scan oracle.
func Run(t *testing.T, name string, build index.Builder) {
	t.Helper()
	t.Run(name+"/uniform2d", func(t *testing.T) { compare(t, build, uniform(400, 2, 1), 25, 2) })
	t.Run(name+"/uniform5d", func(t *testing.T) { compare(t, build, uniform(400, 5, 2), 35, 3) })
	t.Run(name+"/clustered3d", func(t *testing.T) { compare(t, build, clustered(500, 3, 3), 12, 4) })
	t.Run(name+"/duplicates", func(t *testing.T) { compare(t, build, duplicates(200, 2, 5), 10, 6) })
	t.Run(name+"/line1d", func(t *testing.T) { compare(t, build, uniform(300, 1, 7), 8, 8) })
	t.Run(name+"/tiny", func(t *testing.T) { compare(t, build, uniform(3, 2, 9), 50, 10) })
	t.Run(name+"/single", func(t *testing.T) { compare(t, build, uniform(1, 4, 11), 50, 12) })
	t.Run(name+"/empty", func(t *testing.T) {
		ds, _ := vec.FromRows(nil)
		idx := build(ds)
		if idx.Len() != 0 {
			t.Errorf("Len = %d on empty dataset", idx.Len())
		}
	})
	t.Run(name+"/zeroeps", func(t *testing.T) {
		ds := duplicates(100, 2, 13)
		idx := build(ds)
		oracle := index.NewLinear(ds)
		for i := 0; i < ds.Len(); i += 7 {
			got := sorted(idx.RangeQuery(ds.Point(i), 0, nil))
			want := sorted(oracle.RangeQuery(ds.Point(i), 0, nil))
			if !equal(got, want) {
				t.Fatalf("eps=0 query %d: got %v want %v", i, got, want)
			}
		}
	})
}

func compare(t *testing.T, build index.Builder, ds *vec.Dataset, eps float64, seed int64) {
	t.Helper()
	idx := build(ds)
	oracle := index.NewLinear(ds)
	if idx.Len() != ds.Len() {
		t.Fatalf("Len = %d, want %d", idx.Len(), ds.Len())
	}
	rng := rand.New(rand.NewSource(seed))
	lo, hi := ds.Bounds()
	for iter := 0; iter < 60; iter++ {
		var q []float64
		if iter%2 == 0 && ds.Len() > 0 {
			q = ds.Point(rng.Intn(ds.Len())) // on-point queries
		} else {
			q = make([]float64, ds.Dim())
			for j := range q {
				span := hi[j] - lo[j]
				q[j] = lo[j] - 0.2*span + rng.Float64()*1.4*span // may fall outside
			}
		}
		e := eps * (0.2 + rng.Float64()*1.6)
		got := sorted(idx.RangeQuery(q, e, nil))
		want := sorted(oracle.RangeQuery(q, e, nil))
		if !equal(got, want) {
			t.Fatalf("RangeQuery(q=%v eps=%g): got %d ids %v, want %d ids %v", q, e, len(got), got, len(want), want)
		}
		if c := idx.RangeCount(q, e, 0); c != len(want) {
			t.Fatalf("RangeCount(q=%v eps=%g) = %d, want %d", q, e, c, len(want))
		}
		if len(want) >= 2 {
			if c := idx.RangeCount(q, e, 2); c != 2 {
				t.Fatalf("RangeCount limit=2 = %d, want 2", c)
			}
		}
	}
}

func uniform(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64() * 100
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

func clustered(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 5)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 100
		}
	}
	coords := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		c := centers[rng.Intn(len(centers))]
		for j := 0; j < d; j++ {
			coords = append(coords, c[j]+rng.NormFloat64()*3)
		}
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

func duplicates(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	distinct := n / 4
	pts := make([][]float64, distinct)
	for i := range pts {
		pts[i] = make([]float64, d)
		for j := range pts[i] {
			pts[i][j] = rng.Float64() * 50
		}
	}
	coords := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		coords = append(coords, pts[rng.Intn(distinct)]...)
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

func sorted(ids []int32) []int32 {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
