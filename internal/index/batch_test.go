package index

import (
	"context"
	"sync/atomic"
	"testing"

	"dbsvec/internal/vec"
)

func batchTestDataset(t *testing.T) *vec.Dataset {
	t.Helper()
	coords := make([]float64, 0, 200*2)
	for i := 0; i < 200; i++ {
		coords = append(coords, float64(i%20), float64(i/20))
	}
	ds, err := vec.NewDataset(coords, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBatchReturnsNativeImplementation(t *testing.T) {
	ds := batchTestDataset(t)
	p := NewParallel(ds, 4)
	if got := Batch(p); got != BatchIndex(p) {
		t.Errorf("Batch(Parallel) = %T, want the native implementation", got)
	}
	lin := NewLinear(ds)
	if _, ok := Batch(lin).(*fanout); !ok {
		t.Errorf("Batch(Linear) = %T, want the fan-out adapter", Batch(lin))
	}
}

func TestFanoutMatchesPerQuery(t *testing.T) {
	ds := batchTestDataset(t)
	lin := NewLinear(ds)
	b := Batch(lin)
	qs := Queries{N: ds.Len(), At: func(i int, _ []float64) []float64 { return ds.Point(i) }}
	for _, workers := range []int{1, 2, 7, 100} {
		got, err := b.BatchRangeQuery(context.Background(), qs, 1.5, workers, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range got {
			want := lin.RangeQuery(ds.Point(i), 1.5, nil)
			if len(got[i]) != len(want) {
				t.Fatalf("workers=%d query %d: got %v want %v", workers, i, got[i], want)
			}
			for j := range want {
				if got[i][j] != want[j] {
					t.Fatalf("workers=%d query %d: got %v want %v (order must match the per-query call)", workers, i, got[i], want)
				}
			}
		}
	}
}

func TestFanoutEmptyBatch(t *testing.T) {
	ds := batchTestDataset(t)
	b := Batch(NewLinear(ds))
	out, err := b.BatchRangeQuery(context.Background(), Queries{N: 0}, 1, 4, nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: out=%v err=%v", out, err)
	}
	counts, err := b.BatchRangeCount(context.Background(), Queries{N: 0}, 1, 0, 4, nil)
	if err != nil || len(counts) != 0 {
		t.Fatalf("empty count batch: out=%v err=%v", counts, err)
	}
}

func TestFanoutNilContext(t *testing.T) {
	ds := batchTestDataset(t)
	b := Batch(NewLinear(ds))
	qs := Queries{N: 3, At: func(i int, _ []float64) []float64 { return ds.Point(i) }}
	if _, err := b.BatchRangeQuery(nil, qs, 1, 2, nil); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

// cancellingIndex cancels the shared context after a fixed number of
// queries, simulating cancellation arriving mid-batch.
type cancellingIndex struct {
	Index
	cancel context.CancelFunc
	after  int64
	seen   atomic.Int64
}

func (c *cancellingIndex) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if c.seen.Add(1) == c.after {
		c.cancel()
	}
	return c.Index.RangeQuery(q, eps, buf)
}

func TestFanoutCancelMidBatch(t *testing.T) {
	ds := batchTestDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ci := &cancellingIndex{Index: NewLinear(ds), cancel: cancel, after: 10}
	b := Batch(Index(ci))
	qs := Queries{N: ds.Len(), At: func(i int, _ []float64) []float64 { return ds.Point(i) }}
	if _, err := b.BatchRangeQuery(ctx, qs, 1.5, 4, nil); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen := ci.seen.Load(); seen >= int64(ds.Len()) {
		t.Errorf("batch ran to completion (%d queries) despite cancellation", seen)
	}
}

func TestClampWorkers(t *testing.T) {
	cases := []struct{ w, m, min, max int }{
		{0, 100, 1, 10000}, // GOMAXPROCS, whatever it is
		{5, 100, 5, 5},
		{5, 3, 3, 3},
		{-1, 0, 1, 1},
	}
	for _, c := range cases {
		got := ClampWorkers(c.w, c.m)
		if got < c.min || got > c.max {
			t.Errorf("ClampWorkers(%d, %d) = %d, want in [%d,%d]", c.w, c.m, got, c.min, c.max)
		}
	}
}

func TestCountingIndexBatch(t *testing.T) {
	ds := batchTestDataset(t)
	c := NewCounting(NewLinear(ds))
	qs := Queries{N: 10, At: func(i int, _ []float64) []float64 { return ds.Point(i) }}
	if _, err := Batch(Index(c)).BatchRangeQuery(context.Background(), qs, 1.5, 4, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Batch(Index(c)).BatchRangeCount(context.Background(), qs, 1.5, 3, 4, nil); err != nil {
		t.Fatal(err)
	}
	if c.Queries != 10 || c.Counts != 10 {
		t.Errorf("counters = %d,%d want 10,10", c.Queries, c.Counts)
	}
}
