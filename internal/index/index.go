// Package index defines the spatial-index contract shared by every
// clustering algorithm in this repository and provides the brute-force
// linear-scan implementation that serves both as the correctness oracle in
// property tests and as DBSVEC's default backend (the paper's DBSVEC needs
// no extra index structure).
package index

import (
	"context"
	"sync/atomic"

	"dbsvec/internal/vec"
)

// Index answers Euclidean range queries over a fixed dataset. Implementations
// are safe for concurrent readers after construction.
//
// Query results contain point ids (0..n-1) including the query point itself
// when the query coincides with an indexed point; order is unspecified.
type Index interface {
	// RangeQuery appends the ids of all points within distance eps of q to
	// buf and returns the extended slice. Passing a reused buf[:0] keeps the
	// hot path allocation free.
	RangeQuery(q []float64, eps float64, buf []int32) []int32

	// RangeCount returns |{p : dist(p,q) <= eps}| without materializing ids.
	// limit > 0 allows early exit once the count reaches limit; limit <= 0
	// counts exhaustively.
	RangeCount(q []float64, eps float64, limit int) int

	// Len returns the number of indexed points.
	Len() int
}

// Builder constructs an Index over a dataset. Algorithms that accept a
// pluggable index take a Builder so each run indexes its own data.
type Builder func(ds *vec.Dataset) Index

// CtxBuilder is the cancellable, error-returning construction contract: a
// build observing ctx's cancellation abandons its partial structure and
// returns ctx's error. The tree backends provide native CtxBuilders that
// check the context at subtree granularity; WithContext adapts any plain
// Builder with entry/exit checks.
type CtxBuilder func(ctx context.Context, ds *vec.Dataset) (Index, error)

// WithContext adapts a plain Builder to the CtxBuilder contract. The build
// itself is not interruptible — the context is checked before and after —
// so backends with long builds should provide a native CtxBuilder instead.
func WithContext(b Builder) CtxBuilder {
	return func(ctx context.Context, ds *vec.Dataset) (Index, error) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		idx := b(ds)
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		return idx, nil
	}
}

// Linear is the exhaustive-scan index: O(n) per query, zero build cost,
// no extra memory. It is the ground-truth oracle for all other indexes.
type Linear struct {
	ds *vec.Dataset
}

// NewLinear wraps a dataset in a linear-scan index.
func NewLinear(ds *vec.Dataset) *Linear { return &Linear{ds: ds} }

// BuildLinear is a Builder for Linear.
func BuildLinear(ds *vec.Dataset) Index { return NewLinear(ds) }

// Len returns the number of indexed points.
func (l *Linear) Len() int { return l.ds.Len() }

// RangeQuery implements Index via the fused filter kernel.
func (l *Linear) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	return l.ds.FilterWithin(q, eps*eps, buf)
}

// RangeCount implements Index via the fused count kernel.
func (l *Linear) RangeCount(q []float64, eps float64, limit int) int {
	return l.ds.CountWithin(q, eps*eps, limit)
}

var _ Index = (*Linear)(nil)

// CountingIndex wraps another index and counts the number of range queries
// and range counts issued through it. It is used by the experiment harness
// to validate the paper's O(θn) cost analysis (Section III-D). Counters are
// updated atomically so the index stays safe under the batch executor;
// read them only after the queries of interest have completed.
type CountingIndex struct {
	Inner   Index
	Queries int64
	Counts  int64
}

// NewCounting wraps inner.
func NewCounting(inner Index) *CountingIndex { return &CountingIndex{Inner: inner} }

// Len returns the number of indexed points.
func (c *CountingIndex) Len() int { return c.Inner.Len() }

// RangeQuery implements Index and increments the query counter.
func (c *CountingIndex) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	atomic.AddInt64(&c.Queries, 1)
	return c.Inner.RangeQuery(q, eps, buf)
}

// RangeCount implements Index and increments the count counter.
func (c *CountingIndex) RangeCount(q []float64, eps float64, limit int) int {
	atomic.AddInt64(&c.Counts, 1)
	return c.Inner.RangeCount(q, eps, limit)
}

// BatchRangeQuery implements BatchIndex: the batch counts once as qs.N
// queries, then runs on the inner index's batch path directly so the
// per-query counting wrapper is not re-entered concurrently.
func (c *CountingIndex) BatchRangeQuery(ctx context.Context, qs Queries, eps float64, workers int, out [][]int32) ([][]int32, error) {
	atomic.AddInt64(&c.Queries, int64(qs.N))
	return Batch(c.Inner).BatchRangeQuery(ctx, qs, eps, workers, out)
}

// BatchRangeCount implements BatchIndex (see BatchRangeQuery).
func (c *CountingIndex) BatchRangeCount(ctx context.Context, qs Queries, eps float64, limit, workers int, out []int) ([]int, error) {
	atomic.AddInt64(&c.Counts, int64(qs.N))
	return Batch(c.Inner).BatchRangeCount(ctx, qs, eps, limit, workers, out)
}

var _ Index = (*CountingIndex)(nil)
var _ BatchIndex = (*CountingIndex)(nil)
