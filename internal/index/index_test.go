package index

import (
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

func randomDataset(t testing.TB, n, d int, seed int64) *vec.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64() * 100
	}
	ds, err := vec.NewDataset(coords, d)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	return ds
}

func TestLinearRangeQuery(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 0}, {5, 5}, {0.5, 0.5}})
	idx := NewLinear(ds)
	got := idx.RangeQuery([]float64{0, 0}, 1.1, nil)
	want := map[int32]bool{0: true, 1: true, 3: true}
	if len(got) != len(want) {
		t.Fatalf("got %v, want ids %v", got, want)
	}
	for _, id := range got {
		if !want[id] {
			t.Errorf("unexpected id %d", id)
		}
	}
}

func TestLinearRangeQueryBoundary(t *testing.T) {
	// Distance exactly eps must be included (<= in Definition 1).
	ds, _ := vec.FromRows([][]float64{{0}, {2}})
	idx := NewLinear(ds)
	got := idx.RangeQuery([]float64{0}, 2, nil)
	if len(got) != 2 {
		t.Errorf("boundary point excluded: got %v", got)
	}
}

func TestLinearRangeCountLimit(t *testing.T) {
	ds := randomDataset(t, 100, 2, 1)
	idx := NewLinear(ds)
	full := idx.RangeCount(ds.Point(0), 50, 0)
	if full < 2 {
		t.Fatalf("expected several points in range, got %d", full)
	}
	if got := idx.RangeCount(ds.Point(0), 50, 3); got != 3 {
		t.Errorf("limited count = %d, want 3", got)
	}
	if got := idx.RangeCount(ds.Point(0), 50, full+10); got != full {
		t.Errorf("count with generous limit = %d, want %d", got, full)
	}
}

func TestLinearEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	idx := NewLinear(ds)
	if idx.Len() != 0 {
		t.Error("Len should be 0")
	}
	if got := idx.RangeQuery([]float64{0}, 1, nil); len(got) != 0 {
		t.Errorf("query on empty index returned %v", got)
	}
}

func TestCountingIndex(t *testing.T) {
	ds := randomDataset(t, 10, 2, 2)
	c := NewCounting(NewLinear(ds))
	c.RangeQuery(ds.Point(0), 1, nil)
	c.RangeQuery(ds.Point(1), 1, nil)
	c.RangeCount(ds.Point(2), 1, 0)
	if c.Queries != 2 || c.Counts != 1 {
		t.Errorf("counters = %d,%d want 2,1", c.Queries, c.Counts)
	}
	if c.Len() != 10 {
		t.Errorf("Len = %d", c.Len())
	}
}
