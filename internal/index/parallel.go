package index

import (
	"context"
	"runtime"
	"sync"

	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

// Parallel is a linear-scan index that fans each range query out across
// worker goroutines, each scanning a contiguous shard of the dataset. The
// paper notes that spatial indexing (and parallel indexing in particular,
// citing parallelizable R-trees) can further reduce DBSVEC's O(n)
// range-query factor; this backend provides the simplest such reduction
// with zero build cost and exact semantics.
type Parallel struct {
	ds      *vec.Dataset
	workers int
	shards  [][2]int // [start, end) per worker
}

// NewParallel builds a parallel scan over ds with the given worker count
// (<= 0 selects GOMAXPROCS).
func NewParallel(ds *vec.Dataset, workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := ds.Len()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	p := &Parallel{ds: ds, workers: workers}
	per := (n + workers - 1) / workers
	for s := 0; s < n; s += per {
		e := s + per
		if e > n {
			e = n
		}
		p.shards = append(p.shards, [2]int{s, e})
	}
	return p
}

// BuildParallel is a Builder using all available CPUs.
func BuildParallel(ds *vec.Dataset) Index { return NewParallel(ds, 0) }

// Len returns the number of indexed points.
func (p *Parallel) Len() int { return p.ds.Len() }

// RangeQuery implements Index. Results from all shards are concatenated in
// shard order, so output is deterministic.
func (p *Parallel) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if len(p.shards) <= 1 {
		return p.scanShard(q, eps, 0, p.ds.Len(), buf)
	}
	eps2 := eps * eps
	m32 := p.ds.Matrix32()
	m := p.ds.Matrix()
	parts := make([][]int32, len(p.shards))
	var wg sync.WaitGroup
	for w, sh := range p.shards {
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			if m32.Coords != nil {
				parts[w] = dist.FilterWithinRange32(m32, q, eps2, start, end, nil)
			} else {
				parts[w] = dist.FilterWithinRange(m, q, eps2, start, end, nil)
			}
		}(w, sh[0], sh[1])
	}
	wg.Wait()
	for _, part := range parts {
		buf = append(buf, part...)
	}
	return buf
}

func (p *Parallel) scanShard(q []float64, eps float64, start, end int, buf []int32) []int32 {
	if m32 := p.ds.Matrix32(); m32.Coords != nil {
		return dist.FilterWithinRange32(m32, q, eps*eps, start, end, buf)
	}
	return dist.FilterWithinRange(p.ds.Matrix(), q, eps*eps, start, end, buf)
}

// RangeCount implements Index. The limit is honored best-effort: workers
// stop early once the shared count passes it, and the result is clamped.
func (p *Parallel) RangeCount(q []float64, eps float64, limit int) int {
	if len(p.shards) <= 1 {
		return NewLinear(p.ds).RangeCount(q, eps, limit)
	}
	eps2 := eps * eps
	m32 := p.ds.Matrix32()
	m := p.ds.Matrix()
	counts := make([]int, len(p.shards))
	var wg sync.WaitGroup
	for w, sh := range p.shards {
		wg.Add(1)
		go func(w, start, end int) {
			defer wg.Done()
			if m32.Coords != nil {
				counts[w] = dist.CountWithinRange32(m32, q, eps2, start, end, limit)
			} else {
				counts[w] = dist.CountWithinRange(m, q, eps2, start, end, limit)
			}
		}(w, sh[0], sh[1])
	}
	wg.Wait()
	total := 0
	for _, c := range counts {
		total += c
	}
	if limit > 0 && total > limit {
		total = limit
	}
	return total
}

// BatchRangeQuery implements BatchIndex natively: a batch already saturates
// the CPUs by running whole queries concurrently, so each query scans the
// dataset sequentially instead of nesting the per-shard fan-out (which
// would oversubscribe the scheduler and allocate per shard). Results are
// identical — both orders are ascending by point id.
func (p *Parallel) BatchRangeQuery(ctx context.Context, qs Queries, eps float64, workers int, out [][]int32) ([][]int32, error) {
	if workers <= 0 {
		workers = p.workers
	}
	return (&fanout{Index: NewLinear(p.ds)}).BatchRangeQuery(ctx, qs, eps, workers, out)
}

// BatchRangeCount implements BatchIndex natively (see BatchRangeQuery).
func (p *Parallel) BatchRangeCount(ctx context.Context, qs Queries, eps float64, limit, workers int, out []int) ([]int, error) {
	if workers <= 0 {
		workers = p.workers
	}
	return (&fanout{Index: NewLinear(p.ds)}).BatchRangeCount(ctx, qs, eps, limit, workers, out)
}

var _ Index = (*Parallel)(nil)
var _ BatchIndex = (*Parallel)(nil)
