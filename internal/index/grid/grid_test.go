package grid

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "grid", func(ds *vec.Dataset) index.Index {
		w := 10.0
		if ds.Dim() > 0 {
			w = 10 / math.Sqrt(float64(ds.Dim()))
		}
		return New(ds, w)
	})
}

func TestConformanceF32(t *testing.T) {
	indextest.RunF32(t, "grid", func(ds *vec.Dataset) index.Index {
		w := 10.0
		if ds.Dim() > 0 {
			w = 10 / math.Sqrt(float64(ds.Dim()))
		}
		return New(ds, w)
	})
}

func TestConformanceParallelBuild(t *testing.T) {
	indextest.Run(t, "grid-parallel", func(ds *vec.Dataset) index.Index {
		w := 10.0
		if ds.Dim() > 0 {
			w = 10 / math.Sqrt(float64(ds.Dim()))
		}
		return NewWorkers(ds, w, 4)
	})
}

func TestBuildDeterminism(t *testing.T) {
	indextest.RunBuildDeterminism(t, "grid", func(ds *vec.Dataset, workers int) index.Index {
		return NewWorkers(ds, 7.5, workers)
	})
}

// TestParallelBinningIdentical: the two-pass counting-sort build must
// reproduce the serial build's cell directory exactly — same keys, same
// coordinates, same ascending id runs.
func TestParallelBinningIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{0, 1, 3, 4096} {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 200, rng.Float64() * 200}
		}
		ds, _ := vec.FromRows(rows)
		if n == 0 {
			ds, _ = vec.NewDataset(nil, 2)
		}
		serial := NewWorkers(ds, 3, 1)
		for _, workers := range []int{2, 8} {
			par := NewWorkers(ds, 3, workers)
			if len(par.cells) != len(serial.cells) {
				t.Fatalf("n=%d workers=%d: %d cells != %d", n, workers, len(par.cells), len(serial.cells))
			}
			for k, want := range serial.cells {
				got, ok := par.cells[k]
				if !ok || !slices.Equal(got, want) {
					t.Fatalf("n=%d workers=%d: cell %q ids %v != %v", n, workers, k, got, want)
				}
				if !slices.Equal(par.coords[k], serial.coords[k]) {
					t.Fatalf("n=%d workers=%d: cell %q coords differ", n, workers, k)
				}
			}
			if !slices.Equal(par.origin, serial.origin) {
				t.Fatalf("n=%d workers=%d: origin %v != %v", n, workers, par.origin, serial.origin)
			}
		}
	}
}

func TestCellBucketing(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0.5, 0.5}, {0.6, 0.4}, {5.5, 5.5}})
	g := New(ds, 1.0)
	if g.NumCells() != 2 {
		t.Fatalf("NumCells = %d, want 2", g.NumCells())
	}
	k := g.CellOf([]float64{0.5, 0.5})
	if got := g.Points(k); len(got) != 2 {
		t.Errorf("cell should hold 2 points, got %v", got)
	}
}

func TestCellsIteration(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {10, 10}, {20, 20}})
	g := New(ds, 1.0)
	total := 0
	g.Cells(func(_ string, pts []int32) { total += len(pts) })
	if total != 3 {
		t.Errorf("iterated %d points, want 3", total)
	}
}

func TestApproxRangeCountSemantics(t *testing.T) {
	// Points at distances 1, 2, 3 from origin; eps=2, rho=0.5 -> outer=3.
	// Exact in-eps points (d<=2) must always count; d=3 is optional; beyond
	// outer must never count.
	ds, _ := vec.FromRows([][]float64{{0}, {1}, {2}, {2.9}, {10}})
	g := New(ds, 0.5)
	got := g.ApproxRangeCount([]float64{0}, 2, 0.5, 0)
	if got < 3 {
		t.Errorf("approx count %d must include the 3 points within eps", got)
	}
	if got > 4 {
		t.Errorf("approx count %d must exclude the point at distance 10", got)
	}
}

func TestApproxRangeCountMatchesExactWhenRhoZero(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	g := New(ds, 3.0)
	oracle := index.NewLinear(ds)
	for iter := 0; iter < 40; iter++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100}
		eps := 2 + rng.Float64()*20
		got := g.ApproxRangeCount(q, eps, 0, 0)
		want := oracle.RangeCount(q, eps, 0)
		if got != want {
			t.Fatalf("rho=0 approx=%d exact=%d (q=%v eps=%g)", got, want, q, eps)
		}
	}
}

func TestApproxRangeCountBounds(t *testing.T) {
	// For any rho, exact(eps) <= approx <= exact(eps*(1+rho)).
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, 600)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	oracle := index.NewLinear(ds)
	for _, rho := range []float64{0.001, 0.1, 0.5} {
		g := New(ds, 5.0)
		for iter := 0; iter < 30; iter++ {
			q := rows[rng.Intn(len(rows))]
			eps := 5 + rng.Float64()*25
			got := g.ApproxRangeCount(q, eps, rho, 0)
			lo := oracle.RangeCount(q, eps, 0)
			hi := oracle.RangeCount(q, eps*(1+rho), 0)
			if got < lo || got > hi {
				t.Fatalf("rho=%g: approx=%d outside [%d,%d]", rho, got, lo, hi)
			}
		}
	}
}

func TestApproxRangeCountLimit(t *testing.T) {
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{0, 0}
	}
	ds, _ := vec.FromRows(rows)
	g := New(ds, 1.0)
	if got := g.ApproxRangeCount([]float64{0, 0}, 1, 0.001, 7); got != 7 {
		t.Errorf("limited approx count = %d, want 7", got)
	}
}

func TestHighDimDirectoryScanPath(t *testing.T) {
	// d large enough that offset enumeration would explode; the directory
	// scan must still answer exactly.
	rng := rand.New(rand.NewSource(8))
	d := 20
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = make([]float64, d)
		for j := range rows[i] {
			rows[i][j] = rng.Float64() * 10
		}
	}
	ds, _ := vec.FromRows(rows)
	g := New(ds, 0.5)
	oracle := index.NewLinear(ds)
	for iter := 0; iter < 20; iter++ {
		q := rows[rng.Intn(len(rows))]
		eps := 2 + rng.Float64()*8
		if got, want := g.RangeCount(q, eps, 0), oracle.RangeCount(q, eps, 0); got != want {
			t.Fatalf("high-dim count %d != %d", got, want)
		}
	}
}

func TestNonPositiveWidthPanics(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for width 0")
		}
	}()
	New(ds, 0)
}

func TestNegativeCoordinates(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{-5.5, -3.3}, {-5.4, -3.2}, {4, 4}})
	g := New(ds, 1.0)
	got := g.RangeQuery([]float64{-5.45, -3.25}, 0.2, nil)
	if len(got) != 2 {
		t.Errorf("negative-coordinate query returned %v, want 2 ids", got)
	}
}
