// Package grid implements the hashed cell grid that underpins the
// ρ-approximate DBSCAN baseline (Gan & Tao, SIGMOD 2015) and serves as a
// general exact range-query index in low dimensions.
//
// Points are bucketed into axis-aligned cells of a fixed width. Cells are
// stored sparsely in a hash map keyed by their integer coordinates, so
// memory is proportional to the number of *occupied* cells, not the volume
// of the data space. Neighbor enumeration switches between offset
// enumeration ((2k+1)^d candidates) and scanning the cell directory,
// whichever is smaller — the directory scan keeps the structure functional
// in high dimensions where offset enumeration explodes, while preserving
// the characteristic exponential cost growth the paper reports.
package grid

import (
	"encoding/binary"
	"math"
	"sync"

	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Grid buckets dataset points into cells of side Width.
type Grid struct {
	ds     *vec.Dataset
	width  float64
	origin []float64 // per-dimension minimum, anchors cell 0
	cells  map[string][]int32
	coords map[string][]int32 // cell key -> integer cell coordinates
	order  []string           // cell keys in first-encounter (ascending id) order
}

// New builds a grid over ds with the given cell width on the calling
// goroutine. Width must be positive; callers typically pass eps/sqrt(d) so
// that any two points in the same cell are within eps of each other. A
// non-positive width is a caller bug and panics.
func New(ds *vec.Dataset, width float64) *Grid { return NewWorkers(ds, width, 1) }

// NewWorkers builds a grid using up to workers goroutines (<= 0 selects all
// CPUs). Binning is a two-pass counting sort: pass one computes every
// point's cell key in parallel (the float math dominates the build), pass
// two bins ids serially in ascending order into one flat slice the cell map
// slices into. Cell contents, directory and origin are bit-identical to the
// serial build for every worker count.
func NewWorkers(ds *vec.Dataset, width float64, workers int) *Grid {
	if width <= 0 {
		panic("grid: cell width must be positive")
	}
	workers = engine.ResolveWorkers(workers)
	g := &Grid{
		ds:     ds,
		width:  width,
		cells:  make(map[string][]int32),
		coords: make(map[string][]int32),
	}
	g.origin = boundsLo(ds, workers)
	if g.origin == nil {
		g.origin = make([]float64, ds.Dim())
	}
	n, d := ds.Len(), ds.Dim()
	if n == 0 {
		return g
	}
	kw := 4 * d // key width in bytes
	keys := make([]byte, n*kw)
	engine.ForRanges(workers, n, nil, func(lo, hi int) {
		cc := make([]int32, d)
		for i := lo; i < hi; i++ {
			g.cellCoords(ds.Point(i), cc)
			for j, c := range cc {
				binary.LittleEndian.PutUint32(keys[i*kw+4*j:], uint32(c))
			}
		}
	})
	// Serial binning pass: assign cell slots in first-encounter order and
	// count, then place ids ascending into a flat arena shared by all cells
	// (one allocation instead of one append chain per cell).
	slotOf := make(map[string]int)
	var slotKey []string
	var counts []int32
	for i := 0; i < n; i++ {
		k := keys[i*kw : (i+1)*kw]
		slot, ok := slotOf[string(k)]
		if !ok {
			slot = len(slotKey)
			slotOf[string(k)] = slot
			slotKey = append(slotKey, string(k))
			counts = append(counts, 0)
		}
		counts[slot]++
	}
	offsets := make([]int32, len(counts)+1)
	for s, c := range counts {
		offsets[s+1] = offsets[s] + c
	}
	flat := make([]int32, n)
	cursor := append([]int32(nil), offsets[:len(counts)]...)
	for i := 0; i < n; i++ {
		slot := slotOf[string(keys[i*kw:(i+1)*kw])]
		flat[cursor[slot]] = int32(i)
		cursor[slot]++
	}
	for s, k := range slotKey {
		g.cells[k] = flat[offsets[s]:offsets[s+1]:offsets[s+1]]
		cc := make([]int32, d)
		for j := range cc {
			cc[j] = int32(binary.LittleEndian.Uint32([]byte(k)[4*j:]))
		}
		g.coords[k] = cc
	}
	g.order = slotKey
	return g
}

// boundsLo returns the per-dimension minimum over all points, computed over
// parallel shards. Min is associative and commutative over the finite
// coordinates a Dataset admits, so the shard merge is order-insensitive and
// the result matches Dataset.Bounds exactly.
func boundsLo(ds *vec.Dataset, workers int) []float64 {
	n, d := ds.Len(), ds.Dim()
	if n == 0 {
		return nil
	}
	bounds := engine.Ranges(workers, n)
	los := make([][]float64, len(bounds)-1)
	var wg sync.WaitGroup
	for r := 0; r+1 < len(bounds); r++ {
		r, lo, hi := r, bounds[r], bounds[r+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			sl := make([]float64, d)
			copy(sl, ds.Point(lo))
			for i := lo + 1; i < hi; i++ {
				p := ds.Point(i)
				for j, v := range p {
					if v < sl[j] {
						sl[j] = v
					}
				}
			}
			los[r] = sl
		}()
	}
	wg.Wait()
	out := los[0]
	for _, sl := range los[1:] {
		for j, v := range sl {
			if v < out[j] {
				out[j] = v
			}
		}
	}
	return out
}

// BuildWidth returns an index.Builder that uses the given cell width
// (serial build).
func BuildWidth(width float64) index.Builder {
	return func(ds *vec.Dataset) index.Index { return New(ds, width) }
}

// BuildWidthWorkers returns an index.Builder binning with the given worker
// count (<= 0: all CPUs).
func BuildWidthWorkers(width float64, workers int) index.Builder {
	return func(ds *vec.Dataset) index.Index { return NewWorkers(ds, width, workers) }
}

// Width returns the cell side length.
func (g *Grid) Width() float64 { return g.width }

// Len returns the number of indexed points.
func (g *Grid) Len() int { return g.ds.Len() }

// NumCells returns the number of occupied cells.
func (g *Grid) NumCells() int { return len(g.cells) }

// cellCoords writes the integer cell coordinates of p into dst.
func (g *Grid) cellCoords(p []float64, dst []int32) {
	for j, v := range p {
		dst[j] = int32(math.Floor((v - g.origin[j]) / g.width))
	}
}

// CellOf returns the key of the cell containing p.
func (g *Grid) CellOf(p []float64) string {
	cc := make([]int32, len(p))
	g.cellCoords(p, cc)
	return key(cc)
}

// Points returns the ids bucketed in the cell with the given key.
func (g *Grid) Points(cellKey string) []int32 { return g.cells[cellKey] }

// Cells iterates over every occupied cell in first-encounter (ascending id)
// order, passing its key and point ids. The order is a build invariant, not
// map iteration order, so repeated walks and walks over identically built
// grids agree.
func (g *Grid) Cells(fn func(key string, pts []int32)) {
	for _, k := range g.order {
		fn(k, g.cells[k])
	}
}

func key(cc []int32) string {
	b := make([]byte, 4*len(cc))
	for j, c := range cc {
		binary.LittleEndian.PutUint32(b[4*j:], uint32(c))
	}
	return string(b)
}

// CellRect returns the bounding rectangle of the cell with integer
// coordinates cc.
func (g *Grid) CellRect(cc []int32) vec.Rect {
	d := len(cc)
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j, c := range cc {
		lo[j] = g.origin[j] + float64(c)*g.width
		hi[j] = lo[j] + g.width
	}
	return vec.Rect{Lo: lo, Hi: hi}
}

// RectOfKey returns the bounding rectangle of the cell with the given key.
func (g *Grid) RectOfKey(k string) vec.Rect { return g.CellRect(g.coords[k]) }

// NeighborCells invokes fn for every occupied cell whose rectangle is within
// Euclidean distance radius of point q (including q's own cell). fn receives
// the cell key, its point ids, and the squared min/max distance from q to
// the cell rectangle. Enumeration strategy is chosen by cost: offset
// enumeration when (2k+1)^d is small, otherwise a scan of the cell
// directory.
func (g *Grid) NeighborCells(q []float64, radius float64, fn func(key string, pts []int32, minD2, maxD2 float64)) {
	r2 := radius * radius
	d := g.ds.Dim()
	k := int(math.Ceil(radius / g.width))
	// Cost of offset enumeration vs directory scan.
	enumCost := math.Pow(float64(2*k+1), float64(d))
	if enumCost <= float64(len(g.cells)) && enumCost < 1e7 {
		base := make([]int32, d)
		g.cellCoords(q, base)
		cur := make([]int32, d)
		var rec func(j int)
		rec = func(j int) {
			if j == d {
				ck := key(cur)
				pts, ok := g.cells[ck]
				if !ok {
					return
				}
				rect := g.CellRect(cur)
				minD2 := rect.MinDist2(q)
				if minD2 > r2 {
					return
				}
				fn(ck, pts, minD2, rect.MaxDist2(q))
				return
			}
			for off := int32(-int32(k)); off <= int32(k); off++ {
				cur[j] = base[j] + off
				rec(j + 1)
			}
		}
		rec(0)
		return
	}
	// Directory scan in first-encounter order: deterministic, unlike ranging
	// over the map, so query results are reproducible across runs and builds.
	for _, ck := range g.order {
		rect := g.CellRect(g.coords[ck])
		minD2 := rect.MinDist2(q)
		if minD2 > r2 {
			continue
		}
		fn(ck, g.cells[ck], minD2, rect.MaxDist2(q))
	}
}

// RangeQuery implements index.Index with exact semantics.
func (g *Grid) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	eps2 := eps * eps
	g.NeighborCells(q, eps, func(_ string, pts []int32, minD2, maxD2 float64) {
		if maxD2 <= eps2 {
			buf = append(buf, pts...)
			return
		}
		buf = g.ds.FilterWithinIDs(q, eps2, pts, buf)
	})
	return buf
}

// RangeCount implements index.Index with exact semantics. The limit is
// applied best-effort: the scan stops visiting cells once reached.
func (g *Grid) RangeCount(q []float64, eps float64, limit int) int {
	eps2 := eps * eps
	count := 0
	g.NeighborCells(q, eps, func(_ string, pts []int32, minD2, maxD2 float64) {
		if limit > 0 && count >= limit {
			return
		}
		if maxD2 <= eps2 {
			count += len(pts)
			return
		}
		rem := 0
		if limit > 0 {
			rem = limit - count
		}
		count += g.ds.CountWithinIDs(q, eps2, pts, rem)
	})
	if limit > 0 && count > limit {
		count = limit
	}
	return count
}

// ApproxRangeCount counts with ρ-approximate semantics: points within eps
// are always counted, points beyond eps*(1+rho) never, and points in
// between may or may not be counted (they are, whenever their whole cell
// fits inside eps*(1+rho)). This is the query primitive of ρ-approximate
// DBSCAN.
func (g *Grid) ApproxRangeCount(q []float64, eps, rho float64, limit int) int {
	eps2 := eps * eps
	outer := eps * (1 + rho)
	outer2 := outer * outer
	count := 0
	g.NeighborCells(q, outer, func(_ string, pts []int32, minD2, maxD2 float64) {
		if limit > 0 && count >= limit {
			return
		}
		if minD2 > eps2 && minD2 > outer2 {
			return
		}
		if maxD2 <= outer2 && minD2 <= eps2 {
			// Whole cell inside the tolerance band: count wholesale.
			count += len(pts)
			return
		}
		rem := 0
		if limit > 0 {
			rem = limit - count
		}
		count += g.ds.CountWithinIDs(q, eps2, pts, rem)
	})
	if limit > 0 && count > limit {
		count = limit
	}
	return count
}

var _ index.Index = (*Grid)(nil)
