package rproj

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	"dbsvec/internal/leakcheck"
	"dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "rproj", Build)
}

func TestConformanceF32(t *testing.T) {
	indextest.RunF32(t, "rproj", Build)
}

func TestConformanceParallelBuild(t *testing.T) {
	indextest.Run(t, "rproj-parallel", BuildWorkers(4))
}

func TestConformanceMoreProjections(t *testing.T) {
	indextest.Run(t, "rproj-k6", BuildParams(Params{Projections: 6, TargetCells: 512, Seed: 42}, 2))
}

func TestBuildDeterminism(t *testing.T) {
	indextest.RunBuildDeterminism(t, "rproj", func(ds *vec.Dataset, workers int) index.Index {
		return NewWorkers(ds, workers)
	})
}

func TestParamsValidation(t *testing.T) {
	for i, p := range []Params{
		{Projections: -1},
		{Projections: 17},
		{TargetCells: -5},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: want error for %+v", i, p)
		}
	}
	if err := (Params{}).Validate(); err != nil {
		t.Errorf("zero params must validate: %v", err)
	}
}

func TestBuildParamsPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BuildParams accepted invalid params")
		}
	}()
	BuildParams(Params{Projections: 99}, 1)
}

// TestSeedInvariantResults pins the exactness claim directly: the seed
// changes the partition, never what a query returns.
func TestSeedInvariantResults(t *testing.T) {
	ds := randDS(800, 8, 1)
	a, err := NewParams(context.Background(), ds, Params{Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewParams(context.Background(), ds, Params{Seed: 99}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB []int32
	for i := 0; i < ds.Len(); i += 37 {
		bufA = a.RangeQuery(ds.Point(i), 20, bufA[:0])
		bufB = b.RangeQuery(ds.Point(i), 20, bufB[:0])
		if len(bufA) != len(bufB) {
			t.Fatalf("query %d: %d vs %d results across seeds", i, len(bufA), len(bufB))
		}
		for k := range bufA {
			if bufA[k] != bufB[k] {
				t.Fatalf("query %d: results diverge at %d", i, k)
			}
		}
	}
}

func TestCellsStats(t *testing.T) {
	ds := randDS(2000, 6, 2)
	x := New(ds)
	cells, maxSize := x.Cells()
	if cells < 2 || cells > ds.Len() {
		t.Fatalf("cells = %d out of range", cells)
	}
	if maxSize < 1 || maxSize > ds.Len() {
		t.Fatalf("maxSize = %d out of range", maxSize)
	}
	total := 0
	for c := 0; c < cells; c++ {
		total += int(x.offsets[c+1] - x.offsets[c])
	}
	if total != ds.Len() {
		t.Fatalf("cells hold %d points, want %d", total, ds.Len())
	}
}

type countingCtx struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return nil }

func randDS(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, d)
		for j := range row {
			row[j] = rng.Float64() * 100
		}
		rows[i] = row
	}
	ds, _ := vec.FromRows(rows)
	return ds
}

func TestBuildCancelledUpFront(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	x, err := NewWorkersCtx(ctx, randDS(100, 3, 1), 4)
	if !errors.Is(err, context.Canceled) || x != nil {
		t.Fatalf("x=%v err=%v, want nil index and context.Canceled", x, err)
	}
}

func TestBuildCancelledMidBuild(t *testing.T) {
	leakcheck.Check(t)
	// after=1 passes the entry check and cancels at the first between-phase
	// poll: the build is abandoned strictly mid-construction.
	ctx := &countingCtx{Context: context.Background(), after: 1}
	x, err := NewWorkersCtx(ctx, randDS(5000, 4, 2), 4)
	if !errors.Is(err, context.Canceled) || x != nil {
		t.Fatalf("x=%v err=%v, want nil index and context.Canceled", x, err)
	}
}

func TestCtxBuilderMatchesPlainBuild(t *testing.T) {
	ds := randDS(3000, 5, 3)
	x, err := BuildWorkersCtx(4)(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if x.Len() != ds.Len() {
		t.Fatalf("Len = %d, want %d", x.Len(), ds.Len())
	}
}
