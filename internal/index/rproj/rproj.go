// Package rproj implements the random-projection cell backend for
// high-dimensional range queries. The build projects every point onto a
// handful of random Gaussian directions (one dense matrix product per
// direction through the dist dot kernels) and splits each direction at its
// median, giving every point a k-bit sign-pattern key; the occupied
// patterns seed a one-pass Lloyd refinement that reassigns every point to
// its nearest seed centroid, and the refined assignment is counting-sorted
// into flat cells in first-encounter order — the same arena layout as the
// grid's cells and the lsh buckets, but Voronoi-coherent in the original
// space, so the partition stays compact at dimensions where a spatial grid
// degenerates.
//
// Queries never touch the projections. Each cell carries its exact centroid
// and a conservative radius upper bound; a range query walks the cell
// directory and classifies every cell with the triangle inequality:
//
//	dist(q, centroid) - radius > eps  →  prune (no member can pass)
//	dist(q, centroid) + radius ≤ eps  →  take every member, no distances
//	otherwise                         →  exact scan of the packed cell block
//
// The centroid distance is evaluated through the cached-norms identity
// (‖c‖² + ‖q‖² − 2c·q) and widened into a [low, high] interval by the
// identity's documented error bound plus a relative slack that dwarfs every
// rounding effect, so both shortcuts are taken only when the exact kernels
// would agree on every member. Scanned cells run the same FilterWithinRange
// kernels as the Linear oracle over a packed coordinate block (the float32
// storage mode packs the half-width mirror and scans through the widening
// AVX kernels), and results are sorted ascending — the backend is exact and
// bit-identical to Linear for any input, any precision and any worker
// count; the projections only decide how well cells separate, never what a
// query returns.
package rproj

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"slices"

	"dbsvec/internal/dist"
	"dbsvec/internal/engine"
	"dbsvec/internal/fault"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Params configures the cell build.
type Params struct {
	// Projections is the number of random median-split directions — the
	// seed key is the k-bit sign pattern, so up to 2^k refinement seeds
	// (1..16); 0 derives it from TargetCells.
	Projections int
	// TargetCells is the approximate cell-count ceiling used to derive
	// Projections when it is 0: k = ceil(log2(TargetCells)). 0 selects
	// 4·√n, the usual balance between directory-walk overhead (grows with
	// cells) and scan width (shrinks with cells); the Lloyd refinement can
	// only lower the count (emptied seeds disappear).
	TargetCells int
	// Seed drives the random directions. The seed affects only how well the
	// partition separates the data — query results are exact regardless.
	Seed int64
}

const maxProjections = 16

// Validate checks parameter sanity (after zero-value defaulting).
func (p Params) Validate() error {
	if p.Projections < 0 || p.Projections > maxProjections {
		return errors.New("rproj: Projections must be in [1, 16] (0 for default)")
	}
	if p.TargetCells < 0 {
		return errors.New("rproj: TargetCells must be non-negative")
	}
	return nil
}

// projections resolves the split count for an n-point build.
func (p Params) projections(n int) int {
	if p.Projections > 0 {
		return p.Projections
	}
	target := p.TargetCells
	if target == 0 {
		target = int(4 * math.Sqrt(float64(n)))
	}
	k := 1
	for 1<<k < target && k < maxProjections {
		k++
	}
	return k
}

// ballSlack is the relative margin added around every centroid-distance
// bound and radius: ~1e5 times larger than the worst accumulated rounding
// at any supported dimension, and small enough (measure ~1e-9 of the eps
// shell) that it never costs a measurable number of extra scans. Cells
// inside the margin simply fall through to the exact scan, so correctness
// never depends on it — only the shortcut rate does.
const ballSlack = 1e-9

// Index is the built cell directory.
type Index struct {
	ds  *vec.Dataset
	f32 bool
	dim int

	// Cell arena: cell c owns packed positions offsets[c]..offsets[c+1] and
	// idByPos maps a packed position back to its dataset id (ascending
	// within each cell, cells in first-encounter order of the build keys).
	offsets []int32
	idByPos []int32

	// Packed coordinate block in position order — one contiguous matrix per
	// storage precision, so a cell scan is a cache-linear FilterWithinRange.
	packed   dist.Matrix
	packed32 dist.Matrix32

	// Per-cell ball bounds: exact centroids (always float64, computed from
	// the master coordinates), their cached norms, and a conservative upper
	// bound on the farthest member distance.
	cent      dist.Matrix
	centNorms []float64
	radii     []float64

	// slackCoef scales the cached-identity error bound for this dimension.
	slackCoef float64
}

// New builds the index over ds with default parameters on the calling
// goroutine.
func New(ds *vec.Dataset) *Index { return NewWorkers(ds, 1) }

// NewWorkers builds with up to workers goroutines (<= 0 selects all CPUs).
// The built structure — cell order, packed layout, centroids and radii — is
// bit-identical for every worker count: the projection and packing passes
// write disjoint ranges whose contents do not depend on the partition, and
// the quantization and binning passes are serial.
func NewWorkers(ds *vec.Dataset, workers int) *Index {
	x, _ := NewParams(context.Background(), ds, Params{}, workers)
	return x
}

// NewWorkersCtx builds like NewWorkers but honours ctx between build
// phases; on cancellation the partial structure is abandoned and ctx's
// error returned.
func NewWorkersCtx(ctx context.Context, ds *vec.Dataset, workers int) (*Index, error) {
	return NewParams(ctx, ds, Params{}, workers)
}

// NewParams is the full-control constructor behind every other one.
func NewParams(ctx context.Context, ds *vec.Dataset, p Params, workers int) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n, d := ds.Len(), ds.Dim()
	x := &Index{
		ds:        ds,
		f32:       ds.Precision() == vec.F32,
		dim:       d,
		slackCoef: 4 * float64(d+8) * 0x1p-53,
	}
	if n == 0 {
		x.offsets = []int32{0}
		return x, nil
	}
	workers = engine.ResolveWorkers(workers)
	k := p.projections(n)

	// Phase 1: project. One column of dots per direction, sharded over rows;
	// each row's dot is independent of the shard boundaries, so the columns
	// are bit-identical for every worker count (and across storage
	// precisions: the widening f32 kernels match the widened master).
	rng := rand.New(rand.NewSource(p.Seed))
	proj := dist.Matrix{Coords: make([]float64, k*d), Dim: d}
	for j := range proj.Coords {
		proj.Coords[j] = rng.NormFloat64()
	}
	dots := make([]float64, k*n)
	m, m32 := ds.Matrix(), ds.Matrix32()
	engine.ForRanges(workers, n, nil, func(lo, hi int) {
		for j := 0; j < k; j++ {
			col := dots[j*n : (j+1)*n]
			if x.f32 {
				dist.DotsToRange32(m32, proj.Row(j), lo, hi, col[lo:hi])
			} else {
				dist.DotsToRange(m, proj.Row(j), lo, hi, col[lo:hi])
			}
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: quantize and bin (serial). Each direction is split at its
	// median dot — one random hyperplane through the middle of the data —
	// and a point's cell key is its k-bit sign pattern. Median splits keep
	// every plane balanced regardless of outliers, and a pair of separated
	// clusters lands in different cells unless it agrees on all k planes
	// (vanishing for well-spread data), which is what keeps cells compact
	// enough for the ball bounds to prune. A two-pass counting sort scatters
	// ids into the flat arena in first-encounter cell order, ascending
	// within each cell.
	keys := make([]uint64, n)
	med := make([]float64, n)
	for j := 0; j < k; j++ {
		col := dots[j*n : (j+1)*n]
		copy(med, col)
		slices.Sort(med)
		split := med[n/2]
		for i, v := range col {
			if v >= split {
				keys[i] |= 1 << j
			}
		}
	}
	x.binKeys(keys)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2.5: refine. Sign cells separate well-spread clusters but mix
	// their projected tails (points whose pattern happens to match another
	// cluster's), which inflates the mixed cells' radii and defeats the
	// ball pruning exactly where it matters. One Lloyd half-step repairs
	// this in the original space: the sign cells act only as seeds — every
	// point is reassigned to its nearest seed centroid (argmin over
	// ‖c‖² − 2·p·c via one DotsToAll against the centroid matrix), making
	// the final cells Voronoi-coherent. Mixed seeds sit between clusters
	// with shrunken norms, so cluster-pure centroids win their own points
	// back and the mixed cells empty out. The pass is sharded over points
	// with a fixed centroid matrix, so the assignment — and everything
	// downstream — stays bit-identical for every worker count.
	seeds := x.computeCentroids(m, workers)
	seedNorms := dist.Norms(seeds)
	engine.ForRanges(workers, n, nil, func(lo, hi int) {
		scores := make([]float64, seeds.Len())
		for i := lo; i < hi; i++ {
			dist.DotsToAll(seeds, m.Row(i), scores)
			best, bestScore := 0, math.Inf(1)
			for c, dot := range scores {
				if s := seedNorms[c] - 2*dot; s < bestScore {
					best, bestScore = c, s
				}
			}
			keys[i] = uint64(best)
		}
	})
	x.binKeys(keys)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: per-cell centroids and radii, sharded over cells weighted by
	// occupancy. Both come from the float64 master coordinates for either
	// storage precision, so the float32 build prunes identically to its
	// widened twin. The radius upper bound absorbs the (relative, the sums
	// are cancellation-free) rounding of SqDist and the sqrt.
	cells := len(x.offsets) - 1
	x.cent = x.computeCentroids(m, workers)
	x.radii = make([]float64, cells)
	engine.ForRanges(workers, cells, func(c int) int64 {
		return int64(x.offsets[c+1]-x.offsets[c]) + 1
	}, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			crow := x.cent.Row(c)
			maxSq := 0.0
			for _, id := range x.idByPos[x.offsets[c]:x.offsets[c+1]] {
				if s := dist.SqDist(m.Row(int(id)), crow); s > maxSq {
					maxSq = s
				}
			}
			x.radii[c] = math.Sqrt(maxSq) * (1 + ballSlack)
		}
	})
	x.centNorms = dist.Norms(x.cent)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 4: pack coordinates in position order (disjoint row copies). The
	// query-time scan precision mirrors the dataset's, so scanned cells run
	// the exact same kernels as the Linear oracle.
	if x.f32 {
		x.packed32 = dist.Matrix32{Coords: make([]float32, n*d), Dim: d}
		engine.ForRanges(workers, n, nil, func(lo, hi int) {
			for pos := lo; pos < hi; pos++ {
				copy(x.packed32.Coords[pos*d:(pos+1)*d], m32.Row(int(x.idByPos[pos])))
			}
		})
	} else {
		x.packed = dist.Matrix{Coords: make([]float64, n*d), Dim: d}
		engine.ForRanges(workers, n, nil, func(lo, hi int) {
			for pos := lo; pos < hi; pos++ {
				copy(x.packed.Coords[pos*d:(pos+1)*d], m.Row(int(x.idByPos[pos])))
			}
		})
	}
	return x, nil
}

// computeCentroids returns the exact centroid of every cell in the current
// arena, accumulated from the float64 master coordinates in member order
// (ascending ids — the arena's layout), sharded over cells weighted by
// occupancy. The per-cell sums are independent of the sharding, so the
// result is bit-identical for every worker count and storage precision.
func (x *Index) computeCentroids(m dist.Matrix, workers int) dist.Matrix {
	cells := len(x.offsets) - 1
	cent := dist.Matrix{Coords: make([]float64, cells*x.dim), Dim: x.dim}
	engine.ForRanges(workers, cells, func(c int) int64 {
		return int64(x.offsets[c+1]-x.offsets[c]) + 1
	}, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			members := x.idByPos[x.offsets[c]:x.offsets[c+1]]
			crow := cent.Row(c)
			for _, id := range members {
				row := m.Row(int(id))
				for t := range crow {
					crow[t] += row[t]
				}
			}
			inv := 1 / float64(len(members))
			for t := range crow {
				crow[t] *= inv
			}
		}
	})
	return cent
}

// binKeys counting-sorts point ids by cell key, assigning cells in
// first-encounter order (the same layout as the grid's cells and the lsh
// bucket arenas).
func (x *Index) binKeys(keys []uint64) {
	slotOf := make(map[uint64]int32)
	slots := make([]int32, len(keys))
	var counts []int32
	for i, key := range keys {
		s, ok := slotOf[key]
		if !ok {
			s = int32(len(counts))
			slotOf[key] = s
			counts = append(counts, 0)
		}
		slots[i] = s
		counts[s]++
	}
	x.offsets = make([]int32, len(counts)+1)
	for s, c := range counts {
		x.offsets[s+1] = x.offsets[s] + c
	}
	x.idByPos = make([]int32, len(keys))
	next := counts // reuse as per-cell write cursors
	copy(next, x.offsets[:len(counts)])
	for i := range keys {
		s := slots[i]
		x.idByPos[next[s]] = int32(i)
		next[s]++
	}
}

// Build is an index.Builder for Index (serial build, default parameters).
func Build(ds *vec.Dataset) index.Index { return New(ds) }

// BuildWorkers returns an index.Builder building with the given worker
// count (<= 0: all CPUs).
func BuildWorkers(workers int) index.Builder {
	return func(ds *vec.Dataset) index.Index { return NewWorkers(ds, workers) }
}

// BuildWorkersCtx returns an index.CtxBuilder with between-phase
// cancellation (see NewWorkersCtx).
func BuildWorkersCtx(workers int) index.CtxBuilder {
	return func(ctx context.Context, ds *vec.Dataset) (index.Index, error) {
		x, err := NewWorkersCtx(ctx, ds, workers)
		if err != nil {
			return nil, err
		}
		return x, nil
	}
}

// BuildParams returns an index.Builder with explicit parameters; invalid
// parameters panic (builders have no error channel, and Params mistakes are
// programming errors).
func BuildParams(p Params, workers int) index.Builder {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return func(ds *vec.Dataset) index.Index {
		x, err := NewParams(context.Background(), ds, p, workers)
		if err != nil {
			panic(err) // unreachable: params pre-validated, ctx never cancels
		}
		return x
	}
}

// Len returns the number of indexed points.
func (x *Index) Len() int { return x.ds.Len() }

// Cells returns the number of occupied cells and the largest cell size —
// the balance diagnostics surfaced by the benchmarks.
func (x *Index) Cells() (cells, maxSize int) {
	cells = len(x.offsets) - 1
	for c := 0; c < cells; c++ {
		if size := int(x.offsets[c+1] - x.offsets[c]); size > maxSize {
			maxSize = size
		}
	}
	return cells, maxSize
}

// centBounds returns a certain interval around the true distance from q to
// cell c's centroid: the cached identity's value widened by its error bound
// and the relative slack.
func (x *Index) centBounds(c int, q []float64, qNorm float64) (dLo, dUp float64) {
	cn := x.centNorms[c]
	dot := dist.Dot(x.cent.Row(c), q)
	d2 := cn + qNorm - 2*dot
	slack := x.slackCoef * (cn + qNorm + 2*math.Abs(dot))
	lo2 := d2 - slack
	if lo2 < 0 {
		lo2 = 0
	}
	up2 := d2 + slack
	if up2 < 0 {
		up2 = 0
	}
	dLo = math.Sqrt(lo2) * (1 - ballSlack)
	dUp = math.Sqrt(up2) * (1 + ballSlack)
	return dLo, dUp
}

// RangeQuery appends the ids of every point within eps of q to buf, sorted
// ascending — bit-identical to the Linear oracle: shortcut cells are taken
// only when the exact predicate provably agrees on every member, and
// scanned cells run the oracle's own kernels.
func (x *Index) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if len(x.idByPos) == 0 {
		return buf
	}
	if eps < 0 {
		eps = -eps // the predicate is on eps², like the oracle's
	}
	eps2 := eps * eps
	qNorm := dist.Norm2(q)
	pruneAt := eps * (1 + ballSlack)
	includeAt := eps * (1 - ballSlack)
	start := len(buf)
	cells := len(x.offsets) - 1
	for c := 0; c < cells; c++ {
		dLo, dUp := x.centBounds(c, q, qNorm)
		r := x.radii[c]
		if dLo-r > pruneAt {
			continue
		}
		lo, hi := int(x.offsets[c]), int(x.offsets[c+1])
		if dUp+r <= includeAt {
			buf = append(buf, x.idByPos[lo:hi]...)
			continue
		}
		cellStart := len(buf)
		if x.f32 {
			buf = dist.FilterWithinRange32(x.packed32, q, eps2, lo, hi, buf)
		} else {
			buf = dist.FilterWithinRange(x.packed, q, eps2, lo, hi, buf)
		}
		// The range kernels append packed positions; remap to dataset ids.
		for t := cellStart; t < len(buf); t++ {
			buf[t] = x.idByPos[buf[t]]
		}
	}
	slices.Sort(buf[start:])
	return buf
}

// RangeCount counts the points within eps of q, stopping early at limit
// (> 0) and returning at most limit, like the counting oracle.
func (x *Index) RangeCount(q []float64, eps float64, limit int) int {
	if len(x.idByPos) == 0 {
		return 0
	}
	if eps < 0 {
		eps = -eps
	}
	eps2 := eps * eps
	qNorm := dist.Norm2(q)
	pruneAt := eps * (1 + ballSlack)
	includeAt := eps * (1 - ballSlack)
	count := 0
	cells := len(x.offsets) - 1
	for c := 0; c < cells; c++ {
		dLo, dUp := x.centBounds(c, q, qNorm)
		r := x.radii[c]
		if dLo-r > pruneAt {
			continue
		}
		lo, hi := int(x.offsets[c]), int(x.offsets[c+1])
		if dUp+r <= includeAt {
			count += hi - lo
		} else {
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			if x.f32 {
				count += dist.CountWithinRange32(x.packed32, q, eps2, lo, hi, rem)
			} else {
				count += dist.CountWithinRange(x.packed, q, eps2, lo, hi, rem)
			}
		}
		if limit > 0 && count >= limit {
			return limit
		}
	}
	return count
}

// BatchRangeQuery is the native batched fan-out: deterministic contiguous
// query ranges through engine.ForRanges (results are per-query, so output
// is identical for every worker count), with the same panic containment
// and cancellation contract as the generic index fan-out.
func (x *Index) BatchRangeQuery(ctx context.Context, qs index.Queries, eps float64, workers int, out [][]int32) ([][]int32, error) {
	out = growSlices(out, qs.N)
	if err := x.batch(ctx, qs, workers, func(i int, q []float64) {
		out[i] = x.RangeQuery(q, eps, out[i][:0])
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// BatchRangeCount is the counting analogue of BatchRangeQuery.
func (x *Index) BatchRangeCount(ctx context.Context, qs index.Queries, eps float64, limit, workers int, out []int) ([]int, error) {
	if cap(out) < qs.N {
		out = make([]int, qs.N)
	}
	out = out[:qs.N]
	if err := x.batch(ctx, qs, workers, func(i int, q []float64) {
		out[i] = x.RangeCount(q, eps, limit)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// batch runs fn(i, At(i)) for every query index across deterministic
// contiguous ranges. Worker panics surface as one *fault.WorkerPanicError
// (ForRanges re-panics the lowest range's; the recover boundary here
// converts it), and cancellation returns ctx's error with partial results
// discarded by the callers.
func (x *Index) batch(ctx context.Context, qs index.Queries, workers int, fn func(i int, q []float64)) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if qs.N == 0 {
		return ctx.Err()
	}
	workers = index.ClampWorkers(workers, qs.N)
	defer fault.RecoverTo(&err)
	engine.ForRanges(workers, qs.N, nil, func(lo, hi int) {
		fault.PanicNow(fault.WorkerPanic)
		var scratch []float64
		if qs.ScratchCap > 0 {
			scratch = make([]float64, 0, qs.ScratchCap)
		}
		for i := lo; i < hi; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i, qs.At(i, scratch))
		}
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// growSlices extends out to length m, preserving existing entries (whose
// capacity the next batch reuses), mirroring the generic fan-out's helper.
func growSlices(out [][]int32, m int) [][]int32 {
	if cap(out) < m {
		out = append(out[:cap(out)], make([][]int32, m-cap(out))...)
	}
	return out[:m]
}
