package kdtree

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"testing"

	"dbsvec/internal/index"
	"dbsvec/internal/index/indextest"
	dbssrc "dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "kdtree", Build)
}

func TestConformanceF32(t *testing.T) {
	indextest.RunF32(t, "kdtree", Build)
}

func TestConformanceParallelBuild(t *testing.T) {
	indextest.Run(t, "kdtree-parallel", BuildWorkers(4))
}

func TestBuildDeterminism(t *testing.T) {
	indextest.RunBuildDeterminism(t, "kdtree", func(ds *dbssrc.Dataset, workers int) index.Index {
		return NewWorkers(ds, workers)
	})
}

// TestParallelStructureIdentical pins the stronger internal property behind
// RunBuildDeterminism: parallel builds produce the very same node array, id
// permutation and packed matrix as the serial build, not merely the same
// query answers.
func TestParallelStructureIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 17, 5000} {
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		}
		ds, _ := dbssrc.FromRows(rows)
		serial := NewWorkers(ds, 1)
		for _, workers := range []int{2, 5, 16} {
			par := NewWorkers(ds, workers)
			if !slices.Equal(par.ids, serial.ids) {
				t.Fatalf("n=%d workers=%d: id permutation differs", n, workers)
			}
			if !slices.Equal(par.nodes, serial.nodes) {
				t.Fatalf("n=%d workers=%d: node layout differs", n, workers)
			}
			if !slices.Equal(par.packed.Coords, serial.packed.Coords) {
				t.Fatalf("n=%d workers=%d: packed matrix differs", n, workers)
			}
		}
	}
}

// TestPackedMatchesGather pins the acceptance property of the packed-leaf
// layout: streaming the contiguous leaf blocks must yield bitwise-identical
// results — same ids, same order, same counts — as the historical
// gather-by-id leaf scan.
func TestPackedMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, d := range []int{2, 3, 5, 9} {
		n := 3000
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.Float64() * 100
			}
		}
		ds, _ := dbssrc.FromRows(rows)
		packed := New(ds)
		gather := &Tree{ds: packed.ds, ids: packed.ids, nodes: packed.nodes} // packed matrix absent: leaf scans gather by id
		for iter := 0; iter < 60; iter++ {
			q := make([]float64, d)
			for j := range q {
				q[j] = rng.Float64() * 100
			}
			eps := 5 + rng.Float64()*30
			got := packed.RangeQuery(q, eps, nil)
			want := gather.RangeQuery(q, eps, nil)
			if !slices.Equal(got, want) {
				t.Fatalf("d=%d eps=%g: packed %v != gather %v", d, eps, got, want)
			}
			if g, w := packed.RangeCount(q, eps, 0), gather.RangeCount(q, eps, 0); g != w {
				t.Fatalf("d=%d: packed count %d != gather %d", d, g, w)
			}
			if g, w := packed.RangeCount(q, eps, 7), gather.RangeCount(q, eps, 7); g != w {
				t.Fatalf("d=%d: packed limited count %d != gather %d", d, g, w)
			}
		}
	}
}

func TestNearest(t *testing.T) {
	ds, _ := dbssrc.FromRows([][]float64{{0, 0}, {10, 10}, {3, 4}})
	tr := New(ds)
	id, d2 := tr.Nearest([]float64{2.9, 4.1})
	if id != 2 {
		t.Errorf("Nearest id = %d, want 2", id)
	}
	if math.Abs(d2-(0.1*0.1+0.1*0.1)) > 1e-9 {
		t.Errorf("Nearest d2 = %v", d2)
	}
}

func TestNearestEmpty(t *testing.T) {
	ds, _ := dbssrc.FromRows(nil)
	tr := New(ds)
	id, d2 := tr.Nearest([]float64{0})
	if id != -1 || !math.IsInf(d2, 1) {
		t.Errorf("Nearest on empty = %d,%v", id, d2)
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := dbssrc.FromRows(rows)
	tr := New(ds)
	for iter := 0; iter < 100; iter++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		_, gotD := tr.Nearest(q)
		bestD := math.Inf(1)
		for i := 0; i < ds.Len(); i++ {
			if d := ds.Dist2To(i, q); d < bestD {
				bestD = d
			}
		}
		if math.Abs(gotD-bestD) > 1e-9 {
			t.Fatalf("Nearest distance %v, brute force %v", gotD, bestD)
		}
	}
}

func benchDataset(n, d int) *dbssrc.Dataset {
	rng := rand.New(rand.NewSource(9))
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64() * 1000
	}
	ds, _ := dbssrc.NewDataset(coords, d)
	return ds
}

func BenchmarkBuild100k(b *testing.B) {
	ds := benchDataset(100000, 4)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewWorkers(ds, workers)
			}
		})
	}
}

// BenchmarkLeafScan100k contrasts the packed contiguous leaf blocks against
// the historical gather-by-id leaf scan on the same tree (both paths return
// bitwise-identical results; see TestPackedMatchesGather).
func BenchmarkLeafScan100k(b *testing.B) {
	ds := benchDataset(100000, 4)
	packed := New(ds)
	gather := &Tree{ds: packed.ds, ids: packed.ids, nodes: packed.nodes}
	variants := []struct {
		name string
		tr   *Tree
	}{{"packed", packed}, {"gather", gather}}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			buf := make([]int32, 0, 1024)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buf = v.tr.RangeQuery(ds.Point(i%ds.Len()), 100, buf[:0])
			}
			_ = buf
		})
	}
}

func TestBuildSortedInput(t *testing.T) {
	// Pre-sorted input exercises the median-of-three path.
	rows := make([][]float64, 2000)
	for i := range rows {
		rows[i] = []float64{float64(i), float64(i % 7)}
	}
	ds, _ := dbssrc.FromRows(rows)
	tr := New(ds)
	got := tr.RangeQuery([]float64{1000, 3}, 5, nil)
	if len(got) == 0 {
		t.Error("expected hits near the middle of a sorted run")
	}
}
