package kdtree

import (
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/index/indextest"
	dbssrc "dbsvec/internal/vec"
)

func TestConformance(t *testing.T) {
	indextest.Run(t, "kdtree", Build)
}

func TestNearest(t *testing.T) {
	ds, _ := dbssrc.FromRows([][]float64{{0, 0}, {10, 10}, {3, 4}})
	tr := New(ds)
	id, d2 := tr.Nearest([]float64{2.9, 4.1})
	if id != 2 {
		t.Errorf("Nearest id = %d, want 2", id)
	}
	if math.Abs(d2-(0.1*0.1+0.1*0.1)) > 1e-9 {
		t.Errorf("Nearest d2 = %v", d2)
	}
}

func TestNearestEmpty(t *testing.T) {
	ds, _ := dbssrc.FromRows(nil)
	tr := New(ds)
	id, d2 := tr.Nearest([]float64{0})
	if id != -1 || !math.IsInf(d2, 1) {
		t.Errorf("Nearest on empty = %d,%v", id, d2)
	}
}

func TestNearestMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := dbssrc.FromRows(rows)
	tr := New(ds)
	for iter := 0; iter < 100; iter++ {
		q := []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
		_, gotD := tr.Nearest(q)
		bestD := math.Inf(1)
		for i := 0; i < ds.Len(); i++ {
			if d := ds.Dist2To(i, q); d < bestD {
				bestD = d
			}
		}
		if math.Abs(gotD-bestD) > 1e-9 {
			t.Fatalf("Nearest distance %v, brute force %v", gotD, bestD)
		}
	}
}

func TestBuildSortedInput(t *testing.T) {
	// Pre-sorted input exercises the median-of-three path.
	rows := make([][]float64, 2000)
	for i := range rows {
		rows[i] = []float64{float64(i), float64(i % 7)}
	}
	ds, _ := dbssrc.FromRows(rows)
	tr := New(ds)
	got := tr.RangeQuery([]float64{1000, 3}, 5, nil)
	if len(got) == 0 {
		t.Error("expected hits near the middle of a sorted run")
	}
}
