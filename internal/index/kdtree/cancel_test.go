package kdtree

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"dbsvec/internal/leakcheck"
	dbssrc "dbsvec/internal/vec"
)

type countingCtx struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return nil }

func cancelDS(n int, seed int64) *dbssrc.Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := dbssrc.FromRows(rows)
	return ds
}

func TestBuildCancelledUpFront(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tree, err := NewWorkersCtx(ctx, cancelDS(100, 1), 4)
	if !errors.Is(err, context.Canceled) || tree != nil {
		t.Fatalf("tree=%v err=%v, want nil tree and context.Canceled", tree, err)
	}
}

func TestBuildCancelledMidBuild(t *testing.T) {
	leakcheck.Check(t)
	// after=1 passes the entry check and cancels on the first subtree-entry
	// poll: the build is abandoned strictly mid-construction.
	ctx := &countingCtx{Context: context.Background(), after: 1}
	tree, err := NewWorkersCtx(ctx, cancelDS(10000, 2), 4)
	if !errors.Is(err, context.Canceled) || tree != nil {
		t.Fatalf("tree=%v err=%v, want nil tree and context.Canceled", tree, err)
	}
}

func TestCtxBuilderMatchesPlainBuild(t *testing.T) {
	ds := cancelDS(5000, 3)
	tree, err := BuildWorkersCtx(4)(context.Background(), ds)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != ds.Len() {
		t.Fatalf("Len = %d, want %d", tree.Len(), ds.Len())
	}
}
