// Package kdtree implements a static bulk-loaded kd-tree (Bentley, 1975)
// over a vec.Dataset. It backs the kd-DBSCAN baseline from the paper's
// experiment section and doubles as a general exact range-query index.
//
// The tree is built once by recursive median splitting (Hoare selection on
// the widest-spread dimension). Nodes are stored in preorder: a node's left
// child immediately follows it and the right child follows the whole left
// subtree, whose size is a pure function of the range length. That layout is
// fixed before construction starts, so independent subtrees can be built
// concurrently (see NewWorkers) and still produce a tree bit-identical to
// the serial build. Leaves hold small runs of point ids that are scanned
// linearly, which in practice beats splitting to single points.
//
// After the structure is built the leaf points are additionally packed into
// a contiguous leaf-ordered matrix, so range queries stream each leaf as one
// cache-friendly block scan instead of gathering rows by id; hits are
// remapped to original ids through the leaf permutation.
package kdtree

import (
	"context"
	"math"
	"sync/atomic"

	"dbsvec/internal/dist"
	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// LeafSize is the maximum number of points kept in a leaf before splitting.
const LeafSize = 16

// spawnMin is the smallest range a parallel build hands to another worker;
// below it the task overhead exceeds the split work.
const spawnMin = 2048

// Tree is an immutable kd-tree. Safe for concurrent readers.
type Tree struct {
	ds    *vec.Dataset
	ids   []int32 // permutation of 0..n-1; leaves own contiguous runs
	nodes []node
	// packed holds the points in leaf order (Row(k) is the point with id
	// ids[k]), so leaf scans stream contiguous memory. An empty matrix
	// falls back to gathering rows by id; both paths are bit-identical.
	// Datasets in float32 storage pack into packed32 instead — the same leaf
	// order at half the bytes per scan, still bit-identical to the gather
	// path because the f32 kernels accumulate in float64 over coordinates
	// that equal the widened master exactly.
	packed   dist.Matrix
	packed32 dist.Matrix32
}

type node struct {
	// Internal nodes: split dimension and value; leaf == false.
	// Leaf nodes: [start,end) run in ids; leaf == true.
	splitDim int32
	splitVal float64
	start    int32
	end      int32
	left     int32 // index of left child node, -1 for leaf
	right    int32
}

// New bulk-loads a kd-tree over ds on the calling goroutine.
func New(ds *vec.Dataset) *Tree { return NewWorkers(ds, 1) }

// NewWorkers bulk-loads a kd-tree over ds using up to workers goroutines
// (<= 0 selects all CPUs). The resulting tree — node layout, id permutation
// and packed leaf matrix — is bit-identical for every worker count: median
// splitting is deterministic and the preorder node layout is computed ahead
// of construction, so workers only pick up pre-assigned subtree slots.
func NewWorkers(ds *vec.Dataset, workers int) *Tree {
	t, _ := NewWorkersCtx(context.Background(), ds, workers)
	return t
}

// NewWorkersCtx bulk-loads like NewWorkers but honours ctx: the build checks
// for cancellation at the entry of every subtree of spawnMin points or more
// and, when ctx is cancelled, abandons the partial structure and returns
// ctx's error. An uncancelled build is bit-identical to NewWorkers.
func NewWorkersCtx(ctx context.Context, ds *vec.Dataset, workers int) (*Tree, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	n := ds.Len()
	t := &Tree{ds: ds, ids: vec.Iota(n)}
	if n == 0 {
		return t, nil
	}
	workers = engine.ResolveWorkers(workers)
	memo := subtreeSizes(n)
	t.nodes = make([]node, memo[sizeKey(n)])
	b := &buildState{t: t, memo: memo, tasks: engine.NewTasks(workers), ctx: ctx}
	b.build(0, 0, n, newBuildScratch(ds.Dim()))
	b.tasks.Wait()
	if b.cancelled.Load() {
		return nil, ctx.Err()
	}
	t.packLeaves(workers)
	return t, nil
}

// Build is an index.Builder for Tree (serial build).
func Build(ds *vec.Dataset) index.Index { return New(ds) }

// BuildWorkers returns an index.Builder that constructs the tree with the
// given worker count (<= 0: all CPUs).
func BuildWorkers(workers int) index.Builder {
	return func(ds *vec.Dataset) index.Index { return NewWorkers(ds, workers) }
}

// BuildWorkersCtx returns an index.CtxBuilder with mid-build cancellation
// (see NewWorkersCtx).
func BuildWorkersCtx(workers int) index.CtxBuilder {
	return func(ctx context.Context, ds *vec.Dataset) (index.Index, error) {
		t, err := NewWorkersCtx(ctx, ds, workers)
		if err != nil {
			return nil, err
		}
		return t, nil
	}
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.ds.Len() }

// sizeKey normalizes a range length for the subtree-size memo; lengths at or
// below LeafSize all map to a single leaf.
func sizeKey(m int) int {
	if m <= LeafSize {
		return LeafSize
	}
	return m
}

// subtreeSizes returns the node count of a subtree over every range length
// reachable from n. A range of length m splits into floor(m/2) and
// ceil(m/2), so the reachable set — and with it the whole preorder node
// layout — depends only on n, never on coordinates or scheduling.
func subtreeSizes(n int) map[int]int32 {
	memo := make(map[int]int32)
	var count func(m int) int32
	count = func(m int) int32 {
		if m <= LeafSize {
			return 1
		}
		if c, ok := memo[m]; ok {
			return c
		}
		c := 1 + count(m/2) + count(m-m/2)
		memo[m] = c
		return c
	}
	memo[LeafSize] = 1
	memo[sizeKey(n)] = count(n)
	return memo
}

// buildScratch holds the per-goroutine lo/hi buffers of widestDim, hoisted
// out of the recursion so a build performs O(workers) bound-buffer
// allocations instead of one pair per internal node.
type buildScratch struct {
	lo, hi []float64
}

func newBuildScratch(d int) *buildScratch {
	return &buildScratch{lo: make([]float64, d), hi: make([]float64, d)}
}

// buildState carries the shared read-only build inputs: the precomputed
// subtree-size memo (frozen before any task spawns) and the task budget.
// ctx and the sticky cancelled flag implement mid-build cancellation; both
// are ignored on the plain NewWorkers path (Background is never cancelled).
type buildState struct {
	t         *Tree
	memo      map[int]int32
	tasks     *engine.Tasks
	ctx       context.Context
	cancelled atomic.Bool
}

// stop reports whether the build has been cancelled. Checked only at
// subtrees of spawnMin points or more, so the serial hot path stays free of
// per-node overhead while cancellation latency stays bounded by one small
// subtree's build time.
func (b *buildState) stop() bool {
	if b.ctx == nil {
		return false
	}
	if b.cancelled.Load() {
		return true
	}
	if b.ctx.Err() != nil {
		b.cancelled.Store(true)
		return true
	}
	return false
}

// build constructs the subtree over ids[start:end) into node slot self. The
// slot indices of both children are derived from the memo, so concurrent
// builds write disjoint node ranges.
func (b *buildState) build(self int32, start, end int, sc *buildScratch) {
	t := b.t
	if end-start >= spawnMin && b.stop() {
		return
	}
	if end-start <= LeafSize {
		t.nodes[self] = node{start: int32(start), end: int32(end), left: -1, right: -1}
		return
	}
	dim := t.widestDim(start, end, sc)
	mid := (start + end) / 2
	t.selectNth(start, end, mid, dim)
	splitVal := t.ds.Point(int(t.ids[mid]))[dim]
	left := self + 1
	right := left + b.memo[sizeKey(mid-start)]
	t.nodes[self] = node{splitDim: int32(dim), splitVal: splitVal, left: left, right: right}
	if end-mid >= spawnMin && b.tasks.Try(func() {
		b.build(right, mid, end, newBuildScratch(t.ds.Dim()))
	}) {
		b.build(left, start, mid, sc)
		return
	}
	b.build(left, start, mid, sc)
	b.build(right, mid, end, sc)
}

// packLeaves copies the points into leaf order so every leaf owns a
// contiguous block of the packed matrix. Float32-storage datasets pack the
// float32 mirror (same permutation, half the scan bandwidth).
func (t *Tree) packLeaves(workers int) {
	d := t.ds.Dim()
	if m32 := t.ds.Matrix32(); m32.Coords != nil {
		coords := make([]float32, len(t.ids)*d)
		engine.ForRanges(workers, len(t.ids), nil, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				copy(coords[k*d:(k+1)*d], m32.Row(int(t.ids[k])))
			}
		})
		t.packed32 = dist.Matrix32{Coords: coords, Dim: d}
		return
	}
	coords := make([]float64, len(t.ids)*d)
	engine.ForRanges(workers, len(t.ids), nil, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			copy(coords[k*d:(k+1)*d], t.ds.Point(int(t.ids[k])))
		}
	})
	t.packed = dist.Matrix{Coords: coords, Dim: d}
}

// widestDim returns the dimension with the largest coordinate spread over
// ids[start:end).
func (t *Tree) widestDim(start, end int, sc *buildScratch) int {
	d := t.ds.Dim()
	lo, hi := sc.lo[:d], sc.hi[:d]
	p0 := t.ds.Point(int(t.ids[start]))
	copy(lo, p0)
	copy(hi, p0)
	for i := start + 1; i < end; i++ {
		p := t.ds.Point(int(t.ids[i]))
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	best, bestExt := 0, hi[0]-lo[0]
	for j := 1; j < d; j++ {
		if ext := hi[j] - lo[j]; ext > bestExt {
			best, bestExt = j, ext
		}
	}
	return best
}

// selectNth partially sorts ids[start:end) so that the element with rank
// nth sits at position nth (quickselect with median-of-three pivot).
func (t *Tree) selectNth(start, end, nth, dim int) {
	key := func(i int) float64 { return t.ds.Point(int(t.ids[i]))[dim] }
	lo, hi := start, end-1
	for lo < hi {
		// Median-of-three pivot selection resists sorted inputs.
		mid := (lo + hi) / 2
		if key(mid) < key(lo) {
			t.ids[mid], t.ids[lo] = t.ids[lo], t.ids[mid]
		}
		if key(hi) < key(lo) {
			t.ids[hi], t.ids[lo] = t.ids[lo], t.ids[hi]
		}
		if key(hi) < key(mid) {
			t.ids[hi], t.ids[mid] = t.ids[mid], t.ids[hi]
		}
		pivot := key(mid)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				t.ids[i], t.ids[j] = t.ids[j], t.ids[i]
				i++
				j--
			}
		}
		if nth <= j {
			hi = j
		} else if nth >= i {
			lo = i
		} else {
			return
		}
	}
}

// scanLeaf appends the ids of leaf nd's points within eps2 of q. The packed
// path streams the leaf's contiguous block and remaps positions to original
// ids; the gather path reads rows by id. Both visit the same points in the
// same order with the same distance kernel, so output is bit-identical.
func (t *Tree) scanLeaf(nd *node, q []float64, eps2 float64, buf []int32) []int32 {
	if t.packed32.Coords != nil {
		mark := len(buf)
		buf = dist.FilterWithinRange32(t.packed32, q, eps2, int(nd.start), int(nd.end), buf)
		for i := mark; i < len(buf); i++ {
			buf[i] = t.ids[buf[i]]
		}
		return buf
	}
	if t.packed.Coords == nil {
		return t.ds.FilterWithinIDs(q, eps2, t.ids[nd.start:nd.end], buf)
	}
	mark := len(buf)
	buf = dist.FilterWithinRange(t.packed, q, eps2, int(nd.start), int(nd.end), buf)
	for i := mark; i < len(buf); i++ {
		buf[i] = t.ids[buf[i]]
	}
	return buf
}

// countLeaf counts leaf nd's points within eps2 of q (see scanLeaf).
func (t *Tree) countLeaf(nd *node, q []float64, eps2 float64, limit int) int {
	if t.packed32.Coords != nil {
		return dist.CountWithinRange32(t.packed32, q, eps2, int(nd.start), int(nd.end), limit)
	}
	if t.packed.Coords == nil {
		return t.ds.CountWithinIDs(q, eps2, t.ids[nd.start:nd.end], limit)
	}
	return dist.CountWithinRange(t.packed, q, eps2, int(nd.start), int(nd.end), limit)
}

// RangeQuery implements index.Index.
func (t *Tree) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if t.ds.Len() == 0 {
		return buf
	}
	eps2 := eps * eps
	var rec func(ni int32)
	rec = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.left < 0 { // leaf
			buf = t.scanLeaf(nd, q, eps2, buf)
			return
		}
		diff := q[nd.splitDim] - nd.splitVal
		if diff <= eps {
			rec(nd.left)
		}
		if diff >= -eps {
			rec(nd.right)
		}
	}
	rec(0)
	return buf
}

// RangeCount implements index.Index.
func (t *Tree) RangeCount(q []float64, eps float64, limit int) int {
	if t.ds.Len() == 0 {
		return 0
	}
	eps2 := eps * eps
	count := 0
	var rec func(ni int32) bool // returns true when limit reached
	rec = func(ni int32) bool {
		nd := &t.nodes[ni]
		if nd.left < 0 {
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			count += t.countLeaf(nd, q, eps2, rem)
			return limit > 0 && count >= limit
		}
		diff := q[nd.splitDim] - nd.splitVal
		if diff <= eps && rec(nd.left) {
			return true
		}
		if diff >= -eps && rec(nd.right) {
			return true
		}
		return false
	}
	rec(0)
	return count
}

// Nearest returns the id of the indexed point closest to q and the squared
// distance to it. It returns (-1, +Inf) on an empty tree. Ties break toward
// the lower id encountered first in traversal order.
func (t *Tree) Nearest(q []float64) (int32, float64) {
	if t.ds.Len() == 0 {
		return -1, math.Inf(1)
	}
	best := int32(-1)
	bestD := math.Inf(1)
	var rec func(ni int32)
	rec = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.left < 0 {
			if id, d := dist.NearestIDs(t.ds.Matrix(), q, t.ids[nd.start:nd.end], bestD); id >= 0 {
				best, bestD = id, d
			}
			return
		}
		diff := q[nd.splitDim] - nd.splitVal
		near, far := nd.left, nd.right
		if diff > 0 {
			near, far = far, near
		}
		rec(near)
		if diff*diff < bestD {
			rec(far)
		}
	}
	rec(0)
	return best, bestD
}

var _ index.Index = (*Tree)(nil)
