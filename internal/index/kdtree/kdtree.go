// Package kdtree implements a static bulk-loaded kd-tree (Bentley, 1975)
// over a vec.Dataset. It backs the kd-DBSCAN baseline from the paper's
// experiment section and doubles as a general exact range-query index.
//
// The tree is built once by recursive median splitting (Hoare selection on
// the widest-spread dimension) and stored in an implicit array layout: node
// i has children 2i+1 and 2i+2. Leaves hold small runs of point ids that are
// scanned linearly, which in practice beats splitting to single points.
package kdtree

import (
	"math"

	"dbsvec/internal/dist"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// LeafSize is the maximum number of points kept in a leaf before splitting.
const LeafSize = 16

// Tree is an immutable kd-tree. Safe for concurrent readers.
type Tree struct {
	ds    *vec.Dataset
	ids   []int32 // permutation of 0..n-1; leaves own contiguous runs
	nodes []node
}

type node struct {
	// Internal nodes: split dimension and value; leaf == false.
	// Leaf nodes: [start,end) run in ids; leaf == true.
	splitDim int32
	splitVal float64
	start    int32
	end      int32
	left     int32 // index of left child node, -1 for leaf
	right    int32
}

// New bulk-loads a kd-tree over ds.
func New(ds *vec.Dataset) *Tree {
	n := ds.Len()
	t := &Tree{ds: ds, ids: vec.Iota(n)}
	if n > 0 {
		t.build(0, n)
	}
	return t
}

// Build is an index.Builder for Tree.
func Build(ds *vec.Dataset) index.Index { return New(ds) }

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.ds.Len() }

// build recursively partitions ids[start:end) and returns the node index.
func (t *Tree) build(start, end int) int32 {
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{})
	if end-start <= LeafSize {
		t.nodes[self] = node{start: int32(start), end: int32(end), left: -1, right: -1}
		return self
	}
	dim := t.widestDim(start, end)
	mid := (start + end) / 2
	t.selectNth(start, end, mid, dim)
	splitVal := t.ds.Point(int(t.ids[mid]))[dim]
	left := t.build(start, mid)
	right := t.build(mid, end)
	t.nodes[self] = node{splitDim: int32(dim), splitVal: splitVal, left: left, right: right}
	return self
}

// widestDim returns the dimension with the largest coordinate spread over
// ids[start:end).
func (t *Tree) widestDim(start, end int) int {
	d := t.ds.Dim()
	lo := make([]float64, d)
	hi := make([]float64, d)
	p0 := t.ds.Point(int(t.ids[start]))
	copy(lo, p0)
	copy(hi, p0)
	for i := start + 1; i < end; i++ {
		p := t.ds.Point(int(t.ids[i]))
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	best, bestExt := 0, hi[0]-lo[0]
	for j := 1; j < d; j++ {
		if ext := hi[j] - lo[j]; ext > bestExt {
			best, bestExt = j, ext
		}
	}
	return best
}

// selectNth partially sorts ids[start:end) so that the element with rank
// nth sits at position nth (quickselect with median-of-three pivot).
func (t *Tree) selectNth(start, end, nth, dim int) {
	key := func(i int) float64 { return t.ds.Point(int(t.ids[i]))[dim] }
	lo, hi := start, end-1
	for lo < hi {
		// Median-of-three pivot selection resists sorted inputs.
		mid := (lo + hi) / 2
		if key(mid) < key(lo) {
			t.ids[mid], t.ids[lo] = t.ids[lo], t.ids[mid]
		}
		if key(hi) < key(lo) {
			t.ids[hi], t.ids[lo] = t.ids[lo], t.ids[hi]
		}
		if key(hi) < key(mid) {
			t.ids[hi], t.ids[mid] = t.ids[mid], t.ids[hi]
		}
		pivot := key(mid)
		i, j := lo, hi
		for i <= j {
			for key(i) < pivot {
				i++
			}
			for key(j) > pivot {
				j--
			}
			if i <= j {
				t.ids[i], t.ids[j] = t.ids[j], t.ids[i]
				i++
				j--
			}
		}
		if nth <= j {
			hi = j
		} else if nth >= i {
			lo = i
		} else {
			return
		}
	}
}

// RangeQuery implements index.Index.
func (t *Tree) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if t.ds.Len() == 0 {
		return buf
	}
	eps2 := eps * eps
	var rec func(ni int32)
	rec = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.left < 0 { // leaf
			buf = t.ds.FilterWithinIDs(q, eps2, t.ids[nd.start:nd.end], buf)
			return
		}
		diff := q[nd.splitDim] - nd.splitVal
		if diff <= eps {
			rec(nd.left)
		}
		if diff >= -eps {
			rec(nd.right)
		}
	}
	rec(0)
	return buf
}

// RangeCount implements index.Index.
func (t *Tree) RangeCount(q []float64, eps float64, limit int) int {
	if t.ds.Len() == 0 {
		return 0
	}
	eps2 := eps * eps
	count := 0
	var rec func(ni int32) bool // returns true when limit reached
	rec = func(ni int32) bool {
		nd := &t.nodes[ni]
		if nd.left < 0 {
			rem := 0
			if limit > 0 {
				rem = limit - count
			}
			count += t.ds.CountWithinIDs(q, eps2, t.ids[nd.start:nd.end], rem)
			return limit > 0 && count >= limit
		}
		diff := q[nd.splitDim] - nd.splitVal
		if diff <= eps && rec(nd.left) {
			return true
		}
		if diff >= -eps && rec(nd.right) {
			return true
		}
		return false
	}
	rec(0)
	return count
}

// Nearest returns the id of the indexed point closest to q and the squared
// distance to it. It returns (-1, +Inf) on an empty tree. Ties break toward
// the lower id encountered first in traversal order.
func (t *Tree) Nearest(q []float64) (int32, float64) {
	if t.ds.Len() == 0 {
		return -1, math.Inf(1)
	}
	best := int32(-1)
	bestD := math.Inf(1)
	var rec func(ni int32)
	rec = func(ni int32) {
		nd := &t.nodes[ni]
		if nd.left < 0 {
			if id, d := dist.NearestIDs(t.ds.Matrix(), q, t.ids[nd.start:nd.end], bestD); id >= 0 {
				best, bestD = id, d
			}
			return
		}
		diff := q[nd.splitDim] - nd.splitVal
		near, far := nd.left, nd.right
		if diff > 0 {
			near, far = far, near
		}
		rec(near)
		if diff*diff < bestD {
			rec(far)
		}
	}
	rec(0)
	return best, bestD
}

var _ index.Index = (*Tree)(nil)
