package dbscan

import (
	"math/rand"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/eval"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/vec"
)

func TestParallelMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ds, _ := twoBlobs(500, seed)
		p := Params{Eps: 3, MinPts: 6}
		seq, _, err := Run(ds, p, kdtree.Build)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			par, st, err := RunParallel(ds, p, kdtree.Build, workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if par.Clusters != seq.Clusters {
				t.Fatalf("seed %d workers %d: clusters %d != %d", seed, workers, par.Clusters, seq.Clusters)
			}
			rec, err := eval.PairRecall(seq, par)
			if err != nil {
				t.Fatal(err)
			}
			if rec < 0.999 {
				t.Fatalf("seed %d workers %d: recall %v", seed, workers, rec)
			}
			// Noise sets must be identical (noise is unambiguous).
			for i := range par.Labels {
				if (par.Labels[i] == cluster.Noise) != (seq.Labels[i] == cluster.Noise) {
					t.Fatalf("seed %d: noise mismatch at %d", seed, i)
				}
			}
			if st.RangeQueries != int64(ds.Len()) {
				t.Errorf("RangeQueries = %d, want %d", st.RangeQueries, ds.Len())
			}
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	empty, _ := vec.FromRows(nil)
	res, _, err := RunParallel(empty, Params{Eps: 1, MinPts: 2}, nil, 4)
	if err != nil || res.Clusters != 0 {
		t.Errorf("empty: %v %v", res, err)
	}
	if _, _, err := RunParallel(nil, Params{Eps: 1, MinPts: 2}, nil, 4); err == nil {
		t.Error("nil dataset should error")
	}
	if _, _, err := RunParallel(empty, Params{Eps: -1, MinPts: 2}, nil, 4); err == nil {
		t.Error("bad params should error")
	}
	one, _ := vec.FromRows([][]float64{{5, 5}})
	res, _, err = RunParallel(one, Params{Eps: 1, MinPts: 1}, nil, 8)
	if err != nil || res.Clusters != 1 {
		t.Errorf("single self-core point: clusters=%d err=%v", res.Clusters, err)
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 50, rng.Float64() * 50}
	}
	ds, _ := vec.FromRows(rows)
	p := Params{Eps: 3, MinPts: 5}
	first, _, err := RunParallel(ds, p, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, _, err := RunParallel(ds, p, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Labels {
			if first.Labels[i] != again.Labels[i] {
				t.Fatalf("run %d: nondeterministic label at %d", run, i)
			}
		}
	}
}

// TestParallelWorkersDeterminism pins the engine guarantee for parallel
// DBSCAN: because the batch engine merges neighborhoods in query-index
// order and phases 2–3 are sequential, every worker count yields
// bit-identical labels — not merely equivalent clusterings.
func TestParallelWorkersDeterminism(t *testing.T) {
	ds, _ := twoBlobs(800, 3)
	p := Params{Eps: 3, MinPts: 6}
	base, baseStats, err := RunParallel(ds, p, kdtree.Build, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		res, st, err := RunParallel(ds, p, kdtree.Build, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range base.Labels {
			if res.Labels[i] != base.Labels[i] {
				t.Fatalf("workers=%d: label[%d] = %d, want %d", workers, i, res.Labels[i], base.Labels[i])
			}
		}
		if res.Clusters != base.Clusters {
			t.Fatalf("workers=%d: clusters %d != %d", workers, res.Clusters, base.Clusters)
		}
		if st.RangeQueries != baseStats.RangeQueries {
			t.Errorf("workers=%d: RangeQueries %d != %d", workers, st.RangeQueries, baseStats.RangeQueries)
		}
	}
}

func BenchmarkParallelVsSequential(b *testing.B) {
	ds, _ := twoBlobs(20000, 1)
	p := Params{Eps: 3, MinPts: 10}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := Run(ds, p, kdtree.Build); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := RunParallel(ds, p, kdtree.Build, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
