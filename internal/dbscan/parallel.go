package dbscan

import (
	"context"

	"dbsvec/internal/cluster"
	"dbsvec/internal/engine"
	"dbsvec/internal/fault"
	"dbsvec/internal/index"
	"dbsvec/internal/unionfind"
	"dbsvec/internal/vec"
)

// RunParallel clusters ds with exact DBSCAN semantics using a two-phase
// parallel formulation (the disjoint-set approach of Patwary et al.):
//
//  1. every point's ε-neighborhood is materialized as one batch on the
//     shared execution engine, deciding core membership;
//  2. core points are unioned with their core neighbors (a connected-
//     components pass over the core graph), then border points attach to
//     an arbitrary adjacent core point, exactly as sequential DBSCAN would
//     up to border-point tie-breaking.
//
// The output is therefore identical to Run up to the usual border-point
// ambiguity (a border point within ε of two clusters may land in either),
// and identical across worker counts (the engine returns neighborhoods in
// point order and phases 2–3 are sequential). workers <= 0 selects
// GOMAXPROCS.
func RunParallel(ds *vec.Dataset, p Params, build index.Builder, workers int) (res *cluster.Result, st Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fault.AsWorkerPanic(v)
		}
	}()
	if ds == nil {
		return nil, st, ErrNilDataset
	}
	if err := p.Validate(); err != nil {
		return nil, st, err
	}
	if build == nil {
		build = index.BuildLinear
	}
	n := ds.Len()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = cluster.Noise
	}
	res = &cluster.Result{Labels: labels}
	if n == 0 {
		return res, st, nil
	}

	// Phase 1: batched neighborhood materialization + core test.
	eng := engine.New(ds, build(ds), p.Eps, workers)
	sw := engine.StartPhase()
	hoods, err := eng.AllNeighborhoodsOwned(context.Background())
	if err != nil {
		return nil, st, err
	}
	st.RangeQueries = int64(n)
	isCore := make([]bool, n)
	for i, h := range hoods {
		if len(h) >= p.MinPts {
			isCore[i] = true
			st.CorePoints++
		}
	}
	sw.Stop(&st.Phases.Init)

	// Phase 2: union core points with their core neighbors (sequential;
	// union-find dominates nothing next to phase 1).
	sw = engine.StartPhase()
	dsu := unionfind.New(n)
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		for _, nb := range hoods[i] {
			if isCore[nb] {
				dsu.Union(int32(i), nb)
			}
		}
	}
	sw.Stop(&st.Phases.Expand)

	// Phase 3: label core components, then attach border points.
	sw = engine.StartPhase()
	for i := 0; i < n; i++ {
		if isCore[i] {
			labels[i] = dsu.Find(int32(i))
		}
	}
	for i := 0; i < n; i++ {
		if isCore[i] || len(hoods[i]) == 0 {
			continue
		}
		for _, nb := range hoods[i] {
			if isCore[nb] {
				labels[i] = labels[nb]
				break
			}
		}
	}
	res.Compact()
	sw.Stop(&st.Phases.Verify)
	return res, st, nil
}
