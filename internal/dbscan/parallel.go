package dbscan

import (
	"runtime"
	"sync"

	"dbsvec/internal/cluster"
	"dbsvec/internal/index"
	"dbsvec/internal/unionfind"
	"dbsvec/internal/vec"
)

// RunParallel clusters ds with exact DBSCAN semantics using a two-phase
// parallel formulation (the disjoint-set approach of Patwary et al.):
//
//  1. every point's ε-neighborhood is materialized concurrently, deciding
//     core membership;
//  2. core points are unioned with their core neighbors (a connected-
//     components pass over the core graph), then border points attach to
//     an arbitrary adjacent core point, exactly as sequential DBSCAN would
//     up to border-point tie-breaking.
//
// The output is therefore identical to Run up to the usual border-point
// ambiguity (a border point within ε of two clusters may land in either).
// workers <= 0 selects GOMAXPROCS.
func RunParallel(ds *vec.Dataset, p Params, build index.Builder, workers int) (*cluster.Result, Stats, error) {
	var st Stats
	if ds == nil {
		return nil, st, ErrNilDataset
	}
	if err := p.Validate(); err != nil {
		return nil, st, err
	}
	if build == nil {
		build = index.BuildLinear
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := ds.Len()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = cluster.Noise
	}
	res := &cluster.Result{Labels: labels}
	if n == 0 {
		return res, st, nil
	}
	idx := build(ds)

	// Phase 1: parallel neighborhood materialization + core test.
	hoods := make([][]int32, n)
	isCore := make([]bool, n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	var queries int64
	var queriesMu sync.Mutex
	for w := 0; w < workers; w++ {
		start := w * chunk
		end := start + chunk
		if end > n {
			end = n
		}
		if start >= end {
			break
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			local := int64(0)
			for i := start; i < end; i++ {
				h := idx.RangeQuery(ds.Point(i), p.Eps, nil)
				local++
				hoods[i] = h
				isCore[i] = len(h) >= p.MinPts
			}
			queriesMu.Lock()
			queries += local
			queriesMu.Unlock()
		}(start, end)
	}
	wg.Wait()
	st.RangeQueries = queries
	for _, c := range isCore {
		if c {
			st.CorePoints++
		}
	}

	// Phase 2: union core points with their core neighbors (sequential;
	// union-find dominates nothing next to phase 1).
	dsu := unionfind.New(n)
	for i := 0; i < n; i++ {
		if !isCore[i] {
			continue
		}
		for _, nb := range hoods[i] {
			if isCore[nb] {
				dsu.Union(int32(i), nb)
			}
		}
	}

	// Phase 3: label core components, then attach border points.
	for i := 0; i < n; i++ {
		if isCore[i] {
			labels[i] = dsu.Find(int32(i))
		}
	}
	for i := 0; i < n; i++ {
		if isCore[i] || len(hoods[i]) == 0 {
			continue
		}
		for _, nb := range hoods[i] {
			if isCore[nb] {
				labels[i] = labels[nb]
				break
			}
		}
	}
	res.Compact()
	return res, st, nil
}
