package dbscan

import (
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/index"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/index/rtree"
	"dbsvec/internal/vec"
)

// twoBlobs returns two well separated Gaussian blobs plus isolated noise.
func twoBlobs(n int, seed int64) (*vec.Dataset, int) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, n+2)
	half := n / 2
	for i := 0; i < half; i++ {
		rows = append(rows, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := half; i < n; i++ {
		rows = append(rows, []float64{100 + rng.NormFloat64(), 100 + rng.NormFloat64()})
	}
	// Two isolated noise points.
	rows = append(rows, []float64{50, 50}, []float64{-50, 70})
	ds, _ := vec.FromRows(rows)
	return ds, half
}

func TestTwoBlobs(t *testing.T) {
	ds, half := twoBlobs(400, 1)
	res, st, err := Run(ds, Params{Eps: 3, MinPts: 5}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Clusters != 2 {
		t.Fatalf("Clusters = %d, want 2", res.Clusters)
	}
	if res.NoiseCount() != 2 {
		t.Errorf("NoiseCount = %d, want 2", res.NoiseCount())
	}
	// All first-half points share a label; all second-half points share the
	// other.
	l0 := res.Labels[0]
	for i := 1; i < half; i++ {
		if res.Labels[i] != l0 {
			t.Fatalf("point %d label %d != %d", i, res.Labels[i], l0)
		}
	}
	l1 := res.Labels[half]
	if l1 == l0 {
		t.Fatal("blobs merged")
	}
	for i := half + 1; i < 2*half; i++ {
		if res.Labels[i] != l1 {
			t.Fatalf("point %d label %d != %d", i, res.Labels[i], l1)
		}
	}
	if st.RangeQueries != int64(ds.Len()) {
		t.Errorf("RangeQueries = %d, want one per point = %d", st.RangeQueries, ds.Len())
	}
}

func TestAllNoise(t *testing.T) {
	rows := [][]float64{{0, 0}, {10, 10}, {20, 20}}
	ds, _ := vec.FromRows(rows)
	res, _, err := Run(ds, Params{Eps: 1, MinPts: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 || res.NoiseCount() != 3 {
		t.Errorf("clusters=%d noise=%d, want 0,3", res.Clusters, res.NoiseCount())
	}
}

func TestSingleCluster(t *testing.T) {
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{float64(i) * 0.1, 0}
	}
	ds, _ := vec.FromRows(rows)
	res, _, err := Run(ds, Params{Eps: 0.15, MinPts: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 || res.NoiseCount() != 0 {
		t.Errorf("clusters=%d noise=%d, want 1,0", res.Clusters, res.NoiseCount())
	}
}

func TestMinPtsOne(t *testing.T) {
	// With MinPts=1 every point is a core point; isolated points become
	// singleton clusters, never noise.
	ds, _ := vec.FromRows([][]float64{{0, 0}, {100, 100}})
	res, _, err := Run(ds, Params{Eps: 1, MinPts: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 || res.NoiseCount() != 0 {
		t.Errorf("clusters=%d noise=%d, want 2,0", res.Clusters, res.NoiseCount())
	}
}

func TestEpsZeroDuplicates(t *testing.T) {
	// eps=0: only exact duplicates are neighbors.
	ds, _ := vec.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {2, 2}})
	res, _, err := Run(ds, Params{Eps: 0, MinPts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Fatalf("clusters=%d, want 1", res.Clusters)
	}
	if res.Labels[3] != cluster.Noise {
		t.Error("singleton should be noise")
	}
}

func TestEmptyDataset(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	res, _, err := Run(ds, Params{Eps: 1, MinPts: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 || len(res.Labels) != 0 {
		t.Error("empty dataset should yield empty result")
	}
}

func TestNilDataset(t *testing.T) {
	if _, _, err := Run(nil, Params{Eps: 1, MinPts: 2}, nil); err == nil {
		t.Error("want error for nil dataset")
	}
}

func TestBadParams(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0}})
	if _, _, err := Run(ds, Params{Eps: -1, MinPts: 2}, nil); err == nil {
		t.Error("want error for negative eps")
	}
	if _, _, err := Run(ds, Params{Eps: 1, MinPts: 0}, nil); err == nil {
		t.Error("want error for MinPts 0")
	}
}

func TestBorderPointAssignment(t *testing.T) {
	// A chain: core points at 0 and 1 apart, one border point reachable from
	// the last core point but itself non-core.
	rows := [][]float64{
		{0, 0}, {0.5, 0}, {1, 0}, {1.5, 0}, // dense run: all core with MinPts=3, eps=0.6
		{2.0, 0}, // border: within 0.6 of {1.5,0} but has only 2 neighbors
	}
	ds, _ := vec.FromRows(rows)
	res, _, err := Run(ds, Params{Eps: 0.6, MinPts: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Fatalf("clusters=%d, want 1", res.Clusters)
	}
	if res.Labels[4] != res.Labels[0] {
		t.Errorf("border point should join the cluster, got label %d", res.Labels[4])
	}
}

// Labeling must be identical across index implementations.
func TestIndexAgnostic(t *testing.T) {
	ds, _ := twoBlobs(600, 7)
	p := Params{Eps: 2.5, MinPts: 8}
	base, _, err := Run(ds, p, index.BuildLinear)
	if err != nil {
		t.Fatal(err)
	}
	for name, b := range map[string]index.Builder{
		"kdtree": kdtree.Build,
		"rtree":  rtree.Build,
	} {
		got, _, err := Run(ds, p, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Clusters != base.Clusters {
			t.Fatalf("%s: clusters %d != %d", name, got.Clusters, base.Clusters)
		}
		for i := range got.Labels {
			if (got.Labels[i] == cluster.Noise) != (base.Labels[i] == cluster.Noise) {
				t.Fatalf("%s: noise disagreement at %d", name, i)
			}
		}
	}
}

// Invariant: every noise point has no core point within eps; every clustered
// point has at least one core point within eps (or is core itself).
func TestLabelInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 40, rng.Float64() * 40}
	}
	ds, _ := vec.FromRows(rows)
	p := Params{Eps: 2, MinPts: 4}
	res, _, err := Run(ds, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	coreMask, err := CoreMask(ds, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	eps2 := p.Eps * p.Eps
	for i := 0; i < ds.Len(); i++ {
		hasCoreNeighbor := false
		var coreLabel int32 = cluster.Noise
		for j := 0; j < ds.Len(); j++ {
			if coreMask[j] && ds.Dist2(i, j) <= eps2 {
				hasCoreNeighbor = true
				coreLabel = res.Labels[j]
				break
			}
		}
		if res.Labels[i] == cluster.Noise && hasCoreNeighbor {
			t.Fatalf("noise point %d has core neighbor", i)
		}
		if res.Labels[i] != cluster.Noise && !hasCoreNeighbor {
			t.Fatalf("clustered point %d has no core neighbor", i)
		}
		if coreMask[i] && res.Labels[i] == cluster.Noise {
			t.Fatalf("core point %d labeled noise", i)
		}
		_ = coreLabel
	}
	// Core-point symmetry: two core points within eps share a cluster.
	for i := 0; i < ds.Len(); i++ {
		if !coreMask[i] {
			continue
		}
		for j := i + 1; j < ds.Len(); j++ {
			if coreMask[j] && ds.Dist2(i, j) <= eps2 && res.Labels[i] != res.Labels[j] {
				t.Fatalf("core points %d,%d within eps but in different clusters", i, j)
			}
		}
	}
}

// Worst case sanity: a uniformly spread dataset where eps covers everything
// puts all points in one cluster.
func TestEpsCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 100)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64()}
	}
	ds, _ := vec.FromRows(rows)
	res, _, err := Run(ds, Params{Eps: math.Sqrt2, MinPts: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 || res.NoiseCount() != 0 {
		t.Errorf("clusters=%d noise=%d, want 1,0", res.Clusters, res.NoiseCount())
	}
}
