// Package dbscan implements exact DBSCAN (Ester et al., KDD 1996) exactly as
// written in Algorithm 1 of the DBSVEC paper, parameterized over any spatial
// index. Its output is the ground truth that the approximate algorithms in
// this repository are scored against.
package dbscan

import (
	"context"
	"errors"
	"fmt"

	"dbsvec/internal/cluster"
	"dbsvec/internal/engine"
	"dbsvec/internal/fault"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// Params are the two classic DBSCAN parameters.
type Params struct {
	// Eps is the ε-neighborhood radius (Definition 1). Must be >= 0.
	Eps float64
	// MinPts is the density threshold (Definition 2), counting the point
	// itself. Must be >= 1.
	MinPts int
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Eps < 0 {
		return fmt.Errorf("dbscan: eps %g must be non-negative", p.Eps)
	}
	if p.MinPts < 1 {
		return fmt.Errorf("dbscan: MinPts %d must be at least 1", p.MinPts)
	}
	return nil
}

// ErrNilDataset is returned when Run receives a nil dataset.
var ErrNilDataset = errors.New("dbscan: nil dataset")

// Stats reports work performed during a run.
type Stats struct {
	// RangeQueries is the number of ε-range queries issued; exact DBSCAN
	// issues exactly one per point.
	RangeQueries int64
	// CorePoints is the number of points satisfying the core condition.
	CorePoints int
	// Phases is the per-phase wall-clock breakdown; RunParallel fills it
	// (Init = neighborhood materialization, Expand = core-graph union,
	// Verify = border attachment), the sequential Run leaves it zero.
	Phases engine.PhaseTimes
}

// Run clusters ds with the given parameters using the index produced by
// build (index.BuildLinear when nil). A panic inside the run (index
// construction included) is contained and returned as a
// *fault.WorkerPanicError.
func Run(ds *vec.Dataset, p Params, build index.Builder) (res *cluster.Result, st Stats, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, fault.AsWorkerPanic(v)
		}
	}()
	if ds == nil {
		return nil, st, ErrNilDataset
	}
	if err := p.Validate(); err != nil {
		return nil, st, err
	}
	if build == nil {
		build = index.BuildLinear
	}
	n := ds.Len()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = cluster.Unclassified
	}
	res = &cluster.Result{Labels: labels}
	if n == 0 {
		return res, st, nil
	}
	idx := build(ds)

	isCore := make([]bool, n)
	var cid int32 = -1
	var buf []int32
	// seeds is the expansion frontier S of the current cluster (Algorithm 1
	// lines 6-12), holding point ids still awaiting their range query.
	var seeds []int32

	for i := 0; i < n; i++ {
		if labels[i] != cluster.Unclassified {
			continue
		}
		buf = idx.RangeQuery(ds.Point(i), p.Eps, buf[:0])
		st.RangeQueries++
		if len(buf) < p.MinPts {
			labels[i] = cluster.Noise
			continue
		}
		// New cluster seeded at i.
		cid++
		isCore[i] = true
		st.CorePoints++
		labels[i] = cid
		seeds = seeds[:0]
		for _, nb := range buf {
			if nb == int32(i) {
				continue
			}
			if labels[nb] == cluster.Unclassified || labels[nb] == cluster.Noise {
				labels[nb] = cid
				seeds = append(seeds, nb)
			}
		}
		for len(seeds) > 0 {
			j := seeds[len(seeds)-1]
			seeds = seeds[:len(seeds)-1]
			buf = idx.RangeQuery(ds.Point(int(j)), p.Eps, buf[:0])
			st.RangeQueries++
			if len(buf) < p.MinPts {
				continue // j is a border point of cid
			}
			isCore[j] = true
			st.CorePoints++
			for _, nb := range buf {
				switch labels[nb] {
				case cluster.Unclassified:
					labels[nb] = cid
					seeds = append(seeds, nb)
				case cluster.Noise:
					// Previously misjudged noise becomes a border point.
					labels[nb] = cid
				}
			}
		}
	}
	res.Clusters = int(cid) + 1
	return res, st, nil
}

// CoreMask runs only the core-point test for every point and returns the
// boolean mask, batching the counting queries across all CPUs. Used by
// tests and metrics.
func CoreMask(ds *vec.Dataset, p Params, build index.Builder) ([]bool, error) {
	if ds == nil {
		return nil, ErrNilDataset
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if build == nil {
		build = index.BuildLinear
	}
	eng := engine.New(ds, build(ds), p.Eps, 0)
	counts, err := eng.AllCountsOwned(context.Background(), p.MinPts)
	if err != nil {
		return nil, err
	}
	mask := make([]bool, ds.Len())
	for i := range mask {
		mask[i] = counts[i] >= p.MinPts
	}
	return mask, nil
}
