// Package plot renders 2-D clusterings as SVG scatter plots — enough to
// regenerate the paper's Figure 1 side-by-side comparison without any
// external plotting dependency. Noise points render gray; clusters cycle
// through a color-blind-safe palette.
package plot

import (
	"fmt"
	"io"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

// palette is the Okabe–Ito color-blind-safe cycle.
var palette = []string{
	"#0072B2", "#E69F00", "#009E73", "#CC79A7",
	"#56B4E9", "#D55E00", "#F0E442", "#999999",
	"#332288", "#44AA99", "#882255", "#117733",
}

const noiseColor = "#CCCCCC"

// Options controls rendering.
type Options struct {
	// Width and Height are the SVG canvas size in pixels; 0 selects 800×600.
	Width, Height int
	// PointRadius is the marker radius in pixels; 0 selects 1.5.
	PointRadius float64
	// Title is drawn at the top when non-empty.
	Title string
	// XDim and YDim pick which dataset dimensions to plot (default 0 and 1).
	XDim, YDim int
}

func (o *Options) defaults(d int) error {
	if o.Width == 0 {
		o.Width = 800
	}
	if o.Height == 0 {
		o.Height = 600
	}
	if o.PointRadius == 0 {
		o.PointRadius = 1.5
	}
	if o.XDim < 0 || o.XDim >= d || o.YDim < 0 || o.YDim >= d {
		return fmt.Errorf("plot: dimensions (%d,%d) out of range for %d-d data", o.XDim, o.YDim, d)
	}
	return nil
}

// Color returns the fill color used for the given cluster label.
func Color(label int32) string {
	if label < 0 {
		return noiseColor
	}
	return palette[int(label)%len(palette)]
}

// SVG renders the clustering of ds as an SVG document on w. The dataset
// must be at least 2-dimensional (higher dimensions are projected onto
// XDim/YDim).
func SVG(w io.Writer, ds *vec.Dataset, res *cluster.Result, opts Options) error {
	if ds.Dim() < 2 {
		return fmt.Errorf("plot: need at least 2 dimensions, have %d", ds.Dim())
	}
	if res != nil && len(res.Labels) != ds.Len() {
		return fmt.Errorf("plot: %d labels for %d points", len(res.Labels), ds.Len())
	}
	if err := opts.defaults(ds.Dim()); err != nil {
		return err
	}

	lo, hi := ds.Bounds()
	margin := 20.0
	topPad := margin
	if opts.Title != "" {
		topPad += 24
	}
	spanX := 1.0
	spanY := 1.0
	if ds.Len() > 0 {
		if s := hi[opts.XDim] - lo[opts.XDim]; s > 0 {
			spanX = s
		}
		if s := hi[opts.YDim] - lo[opts.YDim]; s > 0 {
			spanY = s
		}
	}
	plotW := float64(opts.Width) - 2*margin
	plotH := float64(opts.Height) - margin - topPad

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
			opts.Width/2, xmlEscape(opts.Title))
	}
	for i := 0; i < ds.Len(); i++ {
		p := ds.Point(i)
		x := margin + (p[opts.XDim]-lo[opts.XDim])/spanX*plotW
		// SVG y grows downward; flip so the plot reads like a math plot.
		y := topPad + (1-(p[opts.YDim]-lo[opts.YDim])/spanY)*plotH
		color := noiseColor
		if res != nil {
			color = Color(res.Labels[i])
		}
		if _, err := fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n",
			x, y, opts.PointRadius, color); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

// DecisionSVG renders the scatter plot of SVG plus a shaded background
// showing the region where inField reports true (e.g. the inside of an SVDD
// sphere — the paper's Figure 3 dashed boundary, rasterized). The plot area
// is sampled on a gridRes×gridRes lattice; cells inside the field are
// shaded. gridRes <= 0 selects 80.
func DecisionSVG(w io.Writer, ds *vec.Dataset, res *cluster.Result, inField func(p []float64) bool, gridRes int, opts Options) error {
	if ds.Dim() < 2 {
		return fmt.Errorf("plot: need at least 2 dimensions, have %d", ds.Dim())
	}
	if err := opts.defaults(ds.Dim()); err != nil {
		return err
	}
	if gridRes <= 0 {
		gridRes = 80
	}
	lo, hi := ds.Bounds()
	if lo == nil {
		return fmt.Errorf("plot: empty dataset")
	}
	margin := 20.0
	topPad := margin
	if opts.Title != "" {
		topPad += 24
	}
	spanX := hi[opts.XDim] - lo[opts.XDim]
	spanY := hi[opts.YDim] - lo[opts.YDim]
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	plotW := float64(opts.Width) - 2*margin
	plotH := float64(opts.Height) - margin - topPad

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		opts.Width, opts.Height, opts.Width, opts.Height); err != nil {
		return err
	}
	fmt.Fprintf(w, `<rect width="%d" height="%d" fill="white"/>`+"\n", opts.Width, opts.Height)
	if opts.Title != "" {
		fmt.Fprintf(w, `<text x="%d" y="24" font-family="sans-serif" font-size="16" text-anchor="middle">%s</text>`+"\n",
			opts.Width/2, xmlEscape(opts.Title))
	}
	// Background field: probe at cell centers with the means of the
	// non-plotted dimensions (so d>2 inputs still render a slice).
	probe := make([]float64, ds.Dim())
	mean := ds.Mean(vec.Iota(ds.Len()))
	copy(probe, mean)
	cellW := plotW / float64(gridRes)
	cellH := plotH / float64(gridRes)
	for gy := 0; gy < gridRes; gy++ {
		for gx := 0; gx < gridRes; gx++ {
			probe[opts.XDim] = lo[opts.XDim] + (float64(gx)+0.5)/float64(gridRes)*spanX
			probe[opts.YDim] = lo[opts.YDim] + (1-(float64(gy)+0.5)/float64(gridRes))*spanY
			if inField(probe) {
				x := margin + float64(gx)*cellW
				y := topPad + float64(gy)*cellH
				fmt.Fprintf(w, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#E8F1FA"/>`+"\n",
					x, y, cellW+0.5, cellH+0.5)
			}
		}
	}
	for i := 0; i < ds.Len(); i++ {
		p := ds.Point(i)
		x := margin + (p[opts.XDim]-lo[opts.XDim])/spanX*plotW
		y := topPad + (1-(p[opts.YDim]-lo[opts.YDim])/spanY)*plotH
		color := "#444444"
		if res != nil {
			color = Color(res.Labels[i])
		}
		if _, err := fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s"/>`+"\n",
			x, y, opts.PointRadius, color); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "</svg>\n")
	return err
}

func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '"':
			out = append(out, "&quot;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
