package plot

import (
	"bytes"
	"strings"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

func TestSVGBasics(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {10, 10}, {5, 5}})
	res := &cluster.Result{Labels: []int32{0, 1, cluster.Noise}, Clusters: 2}
	var buf bytes.Buffer
	if err := SVG(&buf, ds, res, Options{Title: "test & demo"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	if strings.Count(out, "<circle") != 3 {
		t.Errorf("expected 3 circles, got %d", strings.Count(out, "<circle"))
	}
	if !strings.Contains(out, noiseColor) {
		t.Error("noise color missing")
	}
	if !strings.Contains(out, "test &amp; demo") {
		t.Error("title not escaped/rendered")
	}
}

func TestSVGNilResult(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	var buf bytes.Buffer
	if err := SVG(&buf, ds, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<circle") != 2 {
		t.Error("expected 2 unlabeled circles")
	}
}

func TestSVGErrors(t *testing.T) {
	one, _ := vec.FromRows([][]float64{{1}})
	if err := SVG(&bytes.Buffer{}, one, nil, Options{}); err == nil {
		t.Error("1-d data should error")
	}
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	bad := &cluster.Result{Labels: []int32{0, 0}}
	if err := SVG(&bytes.Buffer{}, ds, bad, Options{}); err == nil {
		t.Error("label/point mismatch should error")
	}
	if err := SVG(&bytes.Buffer{}, ds, nil, Options{XDim: 5}); err == nil {
		t.Error("out-of-range dimension should error")
	}
}

func TestSVGDegenerateExtent(t *testing.T) {
	// All points identical: spans are zero; must not divide by zero.
	ds, _ := vec.FromRows([][]float64{{3, 3}, {3, 3}})
	var buf bytes.Buffer
	if err := SVG(&buf, ds, nil, Options{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("NaN leaked into coordinates")
	}
}

func TestDecisionSVG(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {10, 10}, {5, 5}})
	var buf bytes.Buffer
	// Field: inside the left half.
	err := DecisionSVG(&buf, ds, nil, func(p []float64) bool { return p[0] < 5 }, 10, Options{Title: "field"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	shaded := strings.Count(out, `fill="#E8F1FA"`)
	if shaded == 0 || shaded >= 100 {
		t.Errorf("expected a partial shading, got %d cells", shaded)
	}
	if strings.Count(out, "<circle") != 3 {
		t.Errorf("points missing from decision plot")
	}
}

func TestDecisionSVGErrors(t *testing.T) {
	one, _ := vec.FromRows([][]float64{{1}})
	if err := DecisionSVG(&bytes.Buffer{}, one, nil, func([]float64) bool { return true }, 10, Options{}); err == nil {
		t.Error("1-d data should error")
	}
	empty, _ := vec.FromRows(nil)
	if err := DecisionSVG(&bytes.Buffer{}, empty, nil, func([]float64) bool { return true }, 10, Options{}); err == nil {
		t.Error("empty data should error")
	}
}

func TestColorCycle(t *testing.T) {
	if Color(cluster.Noise) != noiseColor {
		t.Error("noise color wrong")
	}
	if Color(0) == Color(1) {
		t.Error("adjacent clusters share a color")
	}
	if Color(0) != Color(int32(len(palette))) {
		t.Error("palette should cycle")
	}
}

func TestSVGProjection(t *testing.T) {
	// 3-d data projected onto dims 0,2.
	ds, _ := vec.FromRows([][]float64{{0, 99, 0}, {10, -99, 10}})
	var buf bytes.Buffer
	if err := SVG(&buf, ds, nil, Options{XDim: 0, YDim: 2}); err != nil {
		t.Fatal(err)
	}
	if strings.Count(buf.String(), "<circle") != 2 {
		t.Error("projection lost points")
	}
}
