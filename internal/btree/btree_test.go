package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var tr Tree
	if tr.Len() != 0 || tr.Depth() != 0 {
		t.Error("zero value should be empty")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty should report !ok")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty should report !ok")
	}
	called := false
	tr.AscendRange(0, 100, func(float64, int32) bool { called = true; return true })
	if called {
		t.Error("range over empty tree should not call fn")
	}
}

func TestInsertAndScan(t *testing.T) {
	var tr Tree
	for i := 0; i < 1000; i++ {
		tr.Insert(float64(999-i), int32(999-i))
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	var got []float64
	tr.AscendRange(100, 199.5, func(k float64, v int32) bool {
		if float64(v) != k {
			t.Fatalf("value %d does not match key %g", v, k)
		}
		got = append(got, k)
		return true
	})
	if len(got) != 100 || got[0] != 100 || got[99] != 199 {
		t.Fatalf("range scan wrong: %d results, first %v last %v", len(got), got[0], got[len(got)-1])
	}
	if !sort.Float64sAreSorted(got) {
		t.Error("scan not sorted")
	}
	k, _, _ := tr.Min()
	if k != 0 {
		t.Errorf("Min = %v", k)
	}
	k, _, _ = tr.Max()
	if k != 999 {
		t.Errorf("Max = %v", k)
	}
	if tr.Depth() < 2 {
		t.Errorf("1000 entries should split: depth %d", tr.Depth())
	}
}

func TestDuplicateKeys(t *testing.T) {
	var tr Tree
	for i := 0; i < 200; i++ {
		tr.Insert(7, int32(i))
	}
	if err := tr.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	count := 0
	tr.AscendRange(7, 7, func(k float64, v int32) bool {
		count++
		return true
	})
	if count != 200 {
		t.Errorf("scanned %d duplicates, want 200", count)
	}
}

func TestEarlyStop(t *testing.T) {
	var tr Tree
	for i := 0; i < 100; i++ {
		tr.Insert(float64(i), int32(i))
	}
	count := 0
	tr.AscendRange(0, 99, func(float64, int32) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop visited %d", count)
	}
}

// Property: tree scan matches a sorted reference for random insert
// sequences, and invariants hold throughout.
func TestAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(500)
		var tr Tree
		ref := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			k := float64(rng.Intn(50)) + rng.Float64() // duplicates likely
			tr.Insert(k, int32(i))
			ref = append(ref, k)
		}
		if err := tr.checkInvariants(); err != nil {
			t.Log(err)
			return false
		}
		sort.Float64s(ref)
		lo := ref[rng.Intn(len(ref))]
		hi := lo + rng.Float64()*20
		var want []float64
		for _, k := range ref {
			if k >= lo && k <= hi {
				want = append(want, k)
			}
		}
		var got []float64
		tr.AscendRange(lo, hi, func(k float64, _ int32) bool {
			got = append(got, k)
			return true
		})
		if len(got) != len(want) {
			t.Logf("seed %d: got %d entries, want %d", seed, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	var tr Tree
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Float64()*1e6, int32(i))
	}
}
