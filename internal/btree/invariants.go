package btree

import (
	"fmt"
	"math"
)

// checkNode verifies key ordering and separator correctness, returning the
// subtree's min and max keys.
func checkNode(n *node, isRoot bool) (min, max float64, err error) {
	if n.leaf {
		if len(n.keys) != len(n.vals) {
			return 0, 0, fmt.Errorf("btree: leaf keys/vals length mismatch")
		}
		if len(n.keys) >= degree {
			return 0, 0, fmt.Errorf("btree: leaf overfull: %d", len(n.keys))
		}
		if !isRoot && len(n.keys) == 0 {
			return 0, 0, fmt.Errorf("btree: empty non-root leaf")
		}
		for i := 1; i < len(n.keys); i++ {
			if n.keys[i] < n.keys[i-1] {
				return 0, 0, fmt.Errorf("btree: leaf keys out of order at %d", i)
			}
		}
		if len(n.keys) == 0 {
			return math.Inf(1), math.Inf(-1), nil
		}
		return n.keys[0], n.keys[len(n.keys)-1], nil
	}
	if len(n.children) != len(n.keys)+1 {
		return 0, 0, fmt.Errorf("btree: internal children %d != keys %d + 1", len(n.children), len(n.keys))
	}
	if len(n.children) > degree {
		return 0, 0, fmt.Errorf("btree: internal overfull: %d children", len(n.children))
	}
	min, max = math.Inf(1), math.Inf(-1)
	for i, c := range n.children {
		cmin, cmax, err := checkNode(c, false)
		if err != nil {
			return 0, 0, err
		}
		if i > 0 && cmin < n.keys[i-1] {
			return 0, 0, fmt.Errorf("btree: child %d min %g below separator %g", i, cmin, n.keys[i-1])
		}
		if i < len(n.keys) && cmax > n.keys[i] {
			return 0, 0, fmt.Errorf("btree: child %d max %g above separator %g", i, cmax, n.keys[i])
		}
		if cmin < min {
			min = cmin
		}
		if cmax > max {
			max = cmax
		}
	}
	return min, max, nil
}

// checkLeafChain verifies the linked leaf list visits exactly size entries
// in non-decreasing key order.
func (t *Tree) checkLeafChain() error {
	n := t.root
	for !n.leaf {
		n = n.children[0]
	}
	count := 0
	last := math.Inf(-1)
	for leaf := n; leaf != nil; leaf = leaf.next {
		for _, k := range leaf.keys {
			if k < last {
				return fmt.Errorf("btree: leaf chain key %g after %g", k, last)
			}
			last = k
			count++
		}
	}
	if count != t.size {
		return fmt.Errorf("btree: leaf chain has %d entries, size says %d", count, t.size)
	}
	return nil
}
