// Package btree implements an in-memory B+-tree keyed by float64 with
// int32 payloads — the classic database index structure the original
// Pyramid technique (and the paper's P⁺-tree reference) is built on. Keys
// may repeat; range scans visit entries in non-decreasing key order with
// ties in insertion order.
package btree

import "sort"

// degree is the fan-out: internal nodes hold up to degree children, leaves
// up to degree-1 entries.
const degree = 32

// Tree is a B+-tree from float64 keys to int32 values. The zero value is
// an empty tree ready for use. Not safe for concurrent writers.
type Tree struct {
	root *node
	size int
}

type node struct {
	leaf bool
	// Leaf nodes: keys/vals hold entries, next links the leaf chain.
	// Internal nodes: keys[i] is the smallest key in children[i+1]'s
	// subtree; len(children) == len(keys)+1.
	keys     []float64
	vals     []int32
	children []*node
	next     *node
}

// Len returns the number of stored entries.
func (t *Tree) Len() int { return t.size }

// Insert adds a key/value pair.
func (t *Tree) Insert(key float64, val int32) {
	if t.root == nil {
		t.root = &node{leaf: true}
	}
	splitKey, sibling := t.root.insert(key, val)
	if sibling != nil {
		t.root = &node{
			keys:     []float64{splitKey},
			children: []*node{t.root, sibling},
		}
	}
	t.size++
}

// insert places the pair under n. A non-nil sibling return means n split;
// splitKey is the smallest key of the sibling's subtree.
func (n *node) insert(key float64, val int32) (float64, *node) {
	if n.leaf {
		// Insert after the last equal key to keep ties in insertion order.
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
		n.keys = append(n.keys, 0)
		n.vals = append(n.vals, 0)
		copy(n.keys[i+1:], n.keys[i:])
		copy(n.vals[i+1:], n.vals[i:])
		n.keys[i] = key
		n.vals[i] = val
		if len(n.keys) < degree {
			return 0, nil
		}
		// Split leaf.
		mid := len(n.keys) / 2
		sib := &node{
			leaf: true,
			keys: append([]float64(nil), n.keys[mid:]...),
			vals: append([]int32(nil), n.vals[mid:]...),
			next: n.next,
		}
		n.keys = n.keys[:mid:mid]
		n.vals = n.vals[:mid:mid]
		n.next = sib
		return sib.keys[0], sib
	}
	// Internal: descend into the child covering key.
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
	splitKey, sib := n.children[i].insert(key, val)
	if sib == nil {
		return 0, nil
	}
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = splitKey
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = sib
	if len(n.children) <= degree {
		return 0, nil
	}
	// Split internal node: middle key moves up.
	midKey := len(n.keys) / 2
	up := n.keys[midKey]
	sibN := &node{
		keys:     append([]float64(nil), n.keys[midKey+1:]...),
		children: append([]*node(nil), n.children[midKey+1:]...),
	}
	n.keys = n.keys[:midKey:midKey]
	n.children = n.children[: midKey+1 : midKey+1]
	return up, sibN
}

// leafFor returns the leftmost leaf that can contain key. Because
// duplicates may straddle a separator (the separator is the smallest key of
// the right subtree, and equal keys can remain in the left one), descent
// takes the lower-bound branch.
func (t *Tree) leafFor(key float64) *node {
	n := t.root
	if n == nil {
		return nil
	}
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		n = n.children[i]
	}
	return n
}

// AscendRange invokes fn for every entry with lo <= key <= hi in key order;
// fn returns false to stop early.
func (t *Tree) AscendRange(lo, hi float64, fn func(key float64, val int32) bool) {
	leaf := t.leafFor(lo)
	for leaf != nil {
		start := sort.Search(len(leaf.keys), func(i int) bool { return leaf.keys[i] >= lo })
		for i := start; i < len(leaf.keys); i++ {
			if leaf.keys[i] > hi {
				return
			}
			if !fn(leaf.keys[i], leaf.vals[i]) {
				return
			}
		}
		leaf = leaf.next
	}
}

// Min returns the smallest key and its value; ok is false on an empty tree.
func (t *Tree) Min() (key float64, val int32, ok bool) {
	n := t.root
	if n == nil || t.size == 0 {
		return 0, 0, false
	}
	for !n.leaf {
		n = n.children[0]
	}
	if len(n.keys) == 0 {
		return 0, 0, false
	}
	return n.keys[0], n.vals[0], true
}

// Max returns the largest key and its value; ok is false on an empty tree.
func (t *Tree) Max() (key float64, val int32, ok bool) {
	n := t.root
	if n == nil || t.size == 0 {
		return 0, 0, false
	}
	for !n.leaf {
		n = n.children[len(n.children)-1]
	}
	if len(n.keys) == 0 {
		return 0, 0, false
	}
	return n.keys[len(n.keys)-1], n.vals[len(n.vals)-1], true
}

// Depth returns the tree height (0 for empty, 1 for a single leaf).
func (t *Tree) Depth() int {
	if t.root == nil {
		return 0
	}
	d := 1
	n := t.root
	for !n.leaf {
		d++
		n = n.children[0]
	}
	return d
}

// checkInvariants validates ordering and structural rules; used by tests.
func (t *Tree) checkInvariants() error {
	if t.root == nil {
		return nil
	}
	_, _, err := checkNode(t.root, true)
	if err != nil {
		return err
	}
	return t.checkLeafChain()
}
