//go:build faultinject

package fault

// TagEnabled reports whether the build carries the faultinject tag; see
// tag_off.go.
const TagEnabled = true
