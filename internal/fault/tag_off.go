//go:build !faultinject

package fault

// TagEnabled reports whether the build carries the faultinject tag. The
// injector itself works in every build (activation is a runtime decision);
// the tag only gates the exhaustive CI sweep tests, which are too slow for
// the default test run.
const TagEnabled = false
