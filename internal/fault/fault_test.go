package fault

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestInactiveSitesAreNoOps(t *testing.T) {
	if Armed(WorkerPanic) {
		t.Error("Armed fired without an active injector")
	}
	if err := Error(IndexQueryError); err != nil {
		t.Errorf("Error = %v without an active injector", err)
	}
	PanicNow(WorkerPanic) // must not panic
}

func TestNthFiresExactlyOnce(t *testing.T) {
	in := NewInjector(1).Arm(SolverNonConverge, Nth(3))
	defer Activate(in)()
	fired := 0
	for i := 0; i < 10; i++ {
		if Armed(SolverNonConverge) {
			if i != 2 {
				t.Errorf("fired on occurrence %d, want 3", i+1)
			}
			fired++
		}
	}
	if fired != 1 {
		t.Errorf("fired %d times, want 1", fired)
	}
	if got := in.Occurrences(SolverNonConverge); got != 10 {
		t.Errorf("Occurrences = %d, want 10", got)
	}
}

func TestAlwaysAndRestore(t *testing.T) {
	restore := Activate(NewInjector(1).Arm(DeadlineFire, Always()))
	if !Armed(DeadlineFire) || !Armed(DeadlineFire) {
		t.Error("Always mode did not fire on every occurrence")
	}
	restore()
	if Armed(DeadlineFire) {
		t.Error("site still armed after restore")
	}
}

func TestProbIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) string {
		in := NewInjector(seed).Arm(IndexQueryError, Prob(0.5))
		defer Activate(in)()
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if Armed(IndexQueryError) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Errorf("same seed produced different patterns:\n%s\n%s", a, b)
	}
	if c := pattern(8); c == a {
		t.Errorf("different seeds produced identical pattern %s", a)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Errorf("Prob(0.5) pattern degenerate: %s", a)
	}
}

func TestInjectedErrorMatchesSentinel(t *testing.T) {
	err := fmt.Errorf("wrapped: %w", &InjectedError{P: WorkerPanic})
	if !errors.Is(err, ErrInjected) {
		t.Error("InjectedError does not match ErrInjected")
	}
	var ie *InjectedError
	if !errors.As(err, &ie) || ie.P != WorkerPanic {
		t.Errorf("errors.As failed or wrong point: %v", ie)
	}
}

func TestAsWorkerPanicPassthrough(t *testing.T) {
	orig := &WorkerPanicError{Value: "boom", Stack: []byte("stack")}
	if got := AsWorkerPanic(orig); got != orig {
		t.Error("existing WorkerPanicError was rewrapped")
	}
	if got := AsWorkerPanic(nil); got != nil {
		t.Errorf("AsWorkerPanic(nil) = %v", got)
	}
	pe := AsWorkerPanic("kaboom")
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Errorf("conversion lost value or stack: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("Error() = %q", pe.Error())
	}
}

func TestRecoverTo(t *testing.T) {
	f := func() (err error) {
		defer RecoverTo(&err)
		panic("deep failure")
	}
	err := f()
	var pe *WorkerPanicError
	if !errors.As(err, &pe) || pe.Value != "deep failure" {
		t.Fatalf("err = %v, want WorkerPanicError carrying the panic value", err)
	}
}
