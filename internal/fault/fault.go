// Package fault is the leaf dependency of the robustness layer: it defines
// the typed worker-panic error shared by the engine and the index fan-out
// (which cannot import each other's packages without a cycle) and a
// deterministic, seed-driven fault injector that CI uses to exercise every
// recovery path of the pipeline reproducibly.
//
// Injection is opt-in and global: production code calls the cheap site
// helpers (Armed, Error, PanicNow), which are no-ops — a single atomic
// pointer load — until a test activates an Injector. Each injection point
// counts its occurrences atomically, so "fire on the k-th occurrence" is
// reproducible even when the occurrences happen on worker goroutines.
package fault

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
)

// WorkerPanicError is a panic recovered from a worker goroutine, converted
// to an error so batch APIs can propagate it and recover boundaries can
// return it instead of crashing the process. Value is the original panic
// value and Stack the panicking goroutine's stack trace.
type WorkerPanicError struct {
	Value any
	Stack []byte
}

func (e *WorkerPanicError) Error() string {
	return fmt.Sprintf("worker panic: %v", e.Value)
}

// AsWorkerPanic converts a recovered panic value into a *WorkerPanicError.
// A value that already is one (re-panicked across a spawn boundary, or
// recovered a second time at an outer boundary) passes through unchanged so
// the original worker's stack survives. nil returns nil.
func AsWorkerPanic(v any) *WorkerPanicError {
	if v == nil {
		return nil
	}
	if pe, ok := v.(*WorkerPanicError); ok {
		return pe
	}
	buf := make([]byte, 16<<10)
	buf = buf[:runtime.Stack(buf, false)]
	return &WorkerPanicError{Value: v, Stack: buf}
}

// RecoverTo is a defer helper for recover boundaries: it converts an
// in-flight panic into a *WorkerPanicError stored in *err. Use as
//
//	defer fault.RecoverTo(&err)
func RecoverTo(err *error) {
	if v := recover(); v != nil {
		*err = AsWorkerPanic(v)
	}
}

// Point identifies one injection site class.
type Point uint8

// The injection points exercised by the fault-injection CI job.
const (
	// SolverNonConverge forces svdd.Train to exhaust MaxIter after a single
	// iteration, exercising the ErrNotConverged degradation path.
	SolverNonConverge Point = iota
	// WorkerPanic panics inside a spawned worker goroutine (engine.ForRanges,
	// engine.Tasks, index batch fan-out), exercising panic containment.
	WorkerPanic
	// IndexQueryError makes an engine query batch return an injected error,
	// exercising error propagation out of expansion rounds.
	IndexQueryError
	// DeadlineFire makes a budget checkpoint behave as if the wall-clock
	// deadline had fired, exercising the partial-result path without waiting.
	DeadlineFire
	// HandlerSlow stalls a server request handler (context-aware) after
	// admission, exercising deadline propagation and queue pressure under
	// slow handling.
	HandlerSlow
	// AssignPanic panics inside a model-assign worker goroutine, exercising
	// the serving layer's panic-to-500 containment on top of the engine's
	// worker-panic recovery.
	AssignPanic
	// LoadSpike makes the admission gate shed the request as if capacity
	// were exhausted, exercising load shedding and the degradation trigger.
	LoadSpike

	numPoints
)

func (p Point) String() string {
	switch p {
	case SolverNonConverge:
		return "solver-non-converge"
	case WorkerPanic:
		return "worker-panic"
	case IndexQueryError:
		return "index-query-error"
	case DeadlineFire:
		return "deadline-fire"
	case HandlerSlow:
		return "slow-handler"
	case AssignPanic:
		return "panic-in-assign"
	case LoadSpike:
		return "load-spike"
	}
	return fmt.Sprintf("point(%d)", uint8(p))
}

// Points lists every injection point, for sweep tests. The server-side
// points (HandlerSlow, AssignPanic, LoadSpike) have no sites inside the
// clustering pipeline, so pipeline sweeps that arm them simply run clean.
func Points() []Point {
	return []Point{SolverNonConverge, WorkerPanic, IndexQueryError, DeadlineFire, HandlerSlow, AssignPanic, LoadSpike}
}

// ServerPoints lists the injection points with sites in the serving layer,
// for the server fault sweep.
func ServerPoints() []Point {
	return []Point{HandlerSlow, AssignPanic, LoadSpike}
}

// ErrInjected is matched (via errors.Is) by every error the injector
// produces.
var ErrInjected = errors.New("fault: injected error")

// InjectedError is the typed error returned by Error sites and carried as
// the panic value by PanicNow sites.
type InjectedError struct {
	P Point
}

func (e *InjectedError) Error() string { return fmt.Sprintf("fault: injected %s", e.P) }

// Is reports ErrInjected as a match so callers can classify injected
// failures without knowing the point.
func (e *InjectedError) Is(target error) bool { return target == ErrInjected }

// Mode decides on which occurrences of a point an armed injector fires.
type Mode struct {
	always bool
	nth    int64
	prob   float64
}

// Always fires on every occurrence.
func Always() Mode { return Mode{always: true} }

// Nth fires exactly once, on the n-th occurrence (1-based).
func Nth(n int64) Mode { return Mode{nth: n} }

// Prob fires independently on each occurrence with probability p, decided by
// a deterministic hash of (seed, point, occurrence) — the same seed replays
// the same firing pattern.
func Prob(p float64) Mode { return Mode{prob: p} }

type arm struct {
	enabled bool
	mode    Mode
	count   atomic.Int64
}

// Injector holds the armed points. Arm it before Activate; the occurrence
// counters are updated atomically so sites on worker goroutines are safe.
type Injector struct {
	seed int64
	arms [numPoints]arm
}

// NewInjector returns an injector whose Prob draws derive from seed.
func NewInjector(seed int64) *Injector { return &Injector{seed: seed} }

// Arm enables p with the given mode and returns the injector for chaining.
func (in *Injector) Arm(p Point, m Mode) *Injector {
	in.arms[p].enabled = true
	in.arms[p].mode = m
	return in
}

// Occurrences returns how many times point p was reached (fired or not)
// since activation.
func (in *Injector) Occurrences(p Point) int64 { return in.arms[p].count.Load() }

// fires counts one occurrence of p and reports whether it should fire.
func (in *Injector) fires(p Point) bool {
	a := &in.arms[p]
	if !a.enabled {
		return false
	}
	k := a.count.Add(1)
	switch {
	case a.mode.always:
		return true
	case a.mode.nth > 0:
		return k == a.mode.nth
	default:
		return splitmix(uint64(in.seed)^(uint64(p)<<56)^uint64(k)) < a.mode.prob
	}
}

// splitmix maps x to a uniform float64 in [0, 1).
func splitmix(x uint64) float64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// active is the globally installed injector; nil (the default) makes every
// site helper a no-op after one atomic load.
var active atomic.Pointer[Injector]

// Activate installs in as the process-wide injector and returns a restore
// function that reinstalls the previous one. Tests must call the restore
// (typically via defer or t.Cleanup) and must not run in parallel with other
// injector users.
func Activate(in *Injector) (restore func()) {
	prev := active.Swap(in)
	return func() { active.Swap(prev) }
}

// Armed counts one occurrence of p on the active injector and reports
// whether the site should alter its behaviour.
func Armed(p Point) bool {
	in := active.Load()
	return in != nil && in.fires(p)
}

// Error returns a typed *InjectedError when p fires, nil otherwise.
func Error(p Point) error {
	if Armed(p) {
		return &InjectedError{P: p}
	}
	return nil
}

// PanicNow panics with a typed *InjectedError when p fires.
func PanicNow(p Point) {
	if Armed(p) {
		panic(&InjectedError{P: p})
	}
}
