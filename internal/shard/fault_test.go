package shard

import (
	"errors"
	"fmt"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/fault"
)

// TestShardedDegradationExact pins the acceptance requirement that a
// shard-level SVDD degradation must not corrupt the merge: with the solver
// forced to non-converge (every shard falls back to exact range expansion),
// the merged labels still match the clean single-shot run exactly — the
// degraded path is DBSCAN-exact, so the halo agreement argument is
// unaffected.
func TestShardedDegradationExact(t *testing.T) {
	ds := strips(t, 6, 250, 2, 9)
	want := singleShot(t, ds, 1) // clean baseline, no injection active

	for _, m := range []struct {
		name string
		mode fault.Mode
	}{
		{"always", fault.Always()},
		{"third", fault.Nth(3)},
	} {
		t.Run(m.name, func(t *testing.T) {
			restore := fault.Activate(fault.NewInjector(7).Arm(fault.SolverNonConverge, m.mode))
			defer restore()
			opts := Options{
				Core:       core.Options{Eps: boxEps, MinPts: boxMinPts},
				Shards:     4,
				HeapSample: -1,
			}
			res, _, st, err := Run(NewMemSource(ds), opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, want, res, "degraded sharded run")
			degraded := 0
			for _, ss := range st.Shards {
				degraded += ss.Core.Degraded
			}
			if m.name == "always" && degraded == 0 {
				t.Fatal("injection armed but no shard degraded; the test exercised nothing")
			}
		})
	}
}

// TestShardedFaultContainment sweeps the other injection points: a sharded
// run never crashes — it ends in a valid clustering, a valid partial with a
// BudgetExceededError, or a typed error.
func TestShardedFaultContainment(t *testing.T) {
	ds := strips(t, 4, 150, 2, 10)
	for _, p := range fault.Points() {
		for _, m := range []struct {
			name string
			mode fault.Mode
		}{
			{"first", fault.Nth(1)},
			{"prob25", fault.Prob(0.25)},
		} {
			t.Run(fmt.Sprintf("%s/%s", p, m.name), func(t *testing.T) {
				restore := fault.Activate(fault.NewInjector(11).Arm(p, m.mode))
				defer restore()
				opts := Options{
					Core:        core.Options{Eps: boxEps, MinPts: boxMinPts, Workers: 2},
					Shards:      4,
					Concurrency: 2,
					HeapSample:  -1,
				}
				res, _, _, err := Run(NewMemSource(ds), opts)
				switch {
				case err == nil:
					checkValid(t, res)
				default:
					var be *core.BudgetExceededError
					var wp *fault.WorkerPanicError
					switch {
					case errors.As(err, &be):
						if res == nil {
							t.Fatal("budget error must come with a partial result")
						}
						checkValid(t, res)
					case errors.As(err, &wp), errors.Is(err, fault.ErrInjected):
						if res != nil {
							t.Error("hard failure must not return a result")
						}
					default:
						t.Fatalf("untyped error escaped: %v", err)
					}
				}
			})
		}
	}
}

func checkValid(tb testing.TB, res *cluster.Result) {
	tb.Helper()
	if res == nil {
		tb.Fatal("nil result with nil error")
	}
	for i, l := range res.Labels {
		if l != cluster.Noise && (l < 0 || int(l) >= res.Clusters) {
			tb.Fatalf("label[%d] = %d outside [0,%d)", i, l, res.Clusters)
		}
	}
}
