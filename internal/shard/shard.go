// Package shard runs DBSVEC out-of-core over axis-aligned spatial slabs with
// eps-wide halo overlap and merges the per-shard clusterings into the exact
// global result.
//
// The partition is one-dimensional: the widest-extent axis is cut into k
// slabs, starting from equal-count quantiles and sliding each cut to the
// sparsest nearby histogram edge so halos stay small (exactness never depends
// on where the cuts land). Shard s owns the points whose axis
// value falls in [c_s, c_{s+1}) and works on the eps-dilated window
// [c_s − eps, c_{s+1} + eps). Two facts make the merge exact:
//
//  1. An owned point's entire eps-ball lies inside the owner's working set
//     (any neighbor is within eps along the axis too), so the owner's
//     core-point test and cluster label for every point it owns are the ones
//     the full dataset would produce.
//  2. Any two core points p, q within eps of each other are each inside the
//     other owner's working set (axis distance ≤ Euclidean distance ≤ eps),
//     so every cross-shard density connection is witnessed by a halo point
//     that is owner-confirmed core and carries a non-noise label in both
//     shards — a union-find edge between the two local clusters.
//
// Merging therefore unions, for every halo point whose owner confirms it
// core, all non-noise local labels the point received across shards, then
// relabels owner-side labels through the union-find. See DESIGN.md "Sharded
// execution & out-of-core streaming" for the full argument.
package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/unionfind"
	"dbsvec/internal/vec"
)

// MaxShards bounds the slab count; ownership bookkeeping is one byte per
// point.
const MaxShards = 256

// planBins is the histogram resolution of the cut planner.
const planBins = 8192

// Options configures a sharded run.
type Options struct {
	// Core holds the per-shard DBSVEC options (Eps and MinPts required).
	// Context and Budget apply per shard: a budget-tripped shard contributes
	// its valid partial clustering and the run reports the first trip.
	// WarmModels is not supported in sharded mode (snapshots reference
	// whole-dataset point ids) and must be nil.
	Core core.Options
	// Shards is the slab count k (default 1 = single-shot semantics).
	Shards int
	// Concurrency caps the shards in flight, bounding peak memory at
	// O(Concurrency × slab). Default 1: fully sequential, minimum footprint.
	Concurrency int
	// Retain keeps each shard's per-sub-cluster SVDD snapshots
	// (core.RunRetained), remapped to final global cluster ids.
	Retain bool
	// HeapSample sets the peak-heap polling interval (0 = 10ms, negative
	// disables sampling and leaves Stats.PeakHeapBytes zero).
	HeapSample time.Duration
}

// ShardStat reports one shard's execution.
type ShardStat struct {
	// N is the working-set size (owned + halo), Owned the owned point count,
	// Boundary the shard's working-set points that fall in any halo band.
	N, Owned, Boundary int
	// Clusters is the shard-local cluster count before merging.
	Clusters int
	// IndexBuild and Elapsed are the shard's index-construction and total
	// wall clock (slab load through boundary summary).
	IndexBuild, Elapsed time.Duration
	// Core is the inner DBSVEC run's statistics.
	Core core.Stats
}

// Stats reports a sharded run.
type Stats struct {
	// Axis is the split axis (-1 when Shards == 1 and no planning ran).
	Axis int
	// Cuts are the k-1 slab boundaries along Axis.
	Cuts []float64
	// Shards holds per-shard execution stats in shard order.
	Shards []ShardStat
	// BoundaryPoints counts distinct points in any halo band; CrossMerges
	// counts the union-find merges the halo agreement pass performed.
	BoundaryPoints, CrossMerges int
	// Plan and Merge are the wall clocks of the planning scans and of the
	// boundary merge + final relabeling.
	Plan, Merge time.Duration
	// PeakHeapBytes is the sampled peak live heap across the run (0 when
	// sampling is disabled).
	PeakHeapBytes uint64
}

// Model is a retained per-sub-cluster SVDD snapshot tagged with the shard
// that trained it; Cluster references the final merged cluster ids.
type Model struct {
	Shard int
	core.RetainedModel
}

// plan is the slab decomposition: for every point its owning shard, and for
// every shard the sorted working-set ids. Boundary points (members of ≥2
// working sets) get dense indices for the merge bookkeeping.
type plan struct {
	axis    int
	cuts    []float64
	ownerOf []uint8
	work    [][]int32
	ownedN  []int
	bIdx    []int32 // point id → dense boundary index, -1 for interior
	bN      int
}

// Run executes DBSVEC over the source in Shards eps-halo slabs and returns
// the exact merged clustering. With Shards == 1 the result is identical to a
// single-shot core.Run over the materialized source; for any shard count the
// merged labels are a permutation of the single-shot labels whenever the
// per-shard runs are DBSCAN-exact on their working sets (see the package
// comment). The retained model list is nil unless Options.Retain is set.
func Run(src Source, o Options) (*cluster.Result, []Model, Stats, error) {
	var stats Stats
	if src == nil {
		return nil, nil, stats, fmt.Errorf("%w: nil source", core.ErrInvalidParams)
	}
	k := o.Shards
	if k == 0 {
		k = 1
	}
	if k < 1 || k > MaxShards {
		return nil, nil, stats, fmt.Errorf("%w: Shards %d outside [1, %d]", core.ErrInvalidParams, o.Shards, MaxShards)
	}
	conc := o.Concurrency
	if conc == 0 {
		conc = 1
	}
	if conc < 0 {
		return nil, nil, stats, fmt.Errorf("%w: Concurrency %d must be non-negative", core.ErrInvalidParams, o.Concurrency)
	}
	if o.Core.Eps < 0 {
		return nil, nil, stats, fmt.Errorf("%w: Eps %g must be non-negative", core.ErrInvalidParams, o.Core.Eps)
	}
	if len(o.Core.WarmModels) > 0 {
		return nil, nil, stats, fmt.Errorf("%w: WarmModels are not supported in sharded mode", core.ErrInvalidParams)
	}
	n := src.Len()
	if n == 0 {
		stats.Axis = -1
		return &cluster.Result{Labels: []int32{}}, nil, stats, nil
	}

	var sampler *heapSampler
	if o.HeapSample >= 0 {
		interval := o.HeapSample
		if interval == 0 {
			interval = 10 * time.Millisecond
		}
		sampler = startHeapSampler(interval)
		defer func() {
			if sampler != nil {
				stats.PeakHeapBytes = sampler.Stop()
			}
		}()
	}

	planStart := time.Now()
	p, err := buildPlan(src, o.Core.Eps, k)
	if err != nil {
		return nil, nil, stats, err
	}
	stats.Plan = time.Since(planStart)
	stats.Axis = p.axis
	stats.Cuts = p.cuts
	stats.BoundaryPoints = p.bN
	k = len(p.work)

	// Per-shard execution. Shard goroutines write owner-local labels into
	// disjoint rawLocal entries and reduce everything else to a boundary
	// summary before releasing the slab; merging below is sequential in
	// shard order, so results do not depend on completion order.
	rawLocal := make([]int32, n)
	outs := make([]*shardOut, k)
	errs := make([]error, k)
	parent := o.Core.Context
	if parent == nil {
		parent = context.Background()
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	sem := make(chan struct{}, conc)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[s] = err
				return
			}
			out, err := runShard(ctx, src, o, p, s, rawLocal)
			p.work[s] = nil // merge only needs bIdx/ownerOf; release the id list
			if err != nil {
				errs[s] = err
				cancel() // hard failure: stop remaining shards
				return
			}
			outs[s] = out
		}(s)
	}
	wg.Wait()
	// Prefer the shard error that caused the cancellation over the
	// context.Canceled echoes of the shards it stopped.
	var firstErr error
	for s, err := range errs {
		if err == nil {
			continue
		}
		wrapped := fmt.Errorf("shard %d: %w", s, err)
		if firstErr == nil {
			firstErr = wrapped
		}
		if !errors.Is(err, context.Canceled) {
			firstErr = wrapped
			break
		}
	}
	if firstErr != nil {
		return nil, nil, stats, firstErr
	}

	mergeStart := time.Now()
	res, models, budgetErr := merge(p, outs, rawLocal, o.Retain, &stats)
	stats.Merge = time.Since(mergeStart)
	if sampler != nil {
		stats.PeakHeapBytes = sampler.Stop()
		sampler = nil
	}
	return res, models, stats, budgetErr
}

// buildPlan scans the source (bounds, axis histogram, assignment) and
// produces the slab decomposition. Three sequential streaming passes keep
// planning memory at O(blocks + id lists).
func buildPlan(src Source, eps float64, k int) (*plan, error) {
	n, d := src.Len(), src.Dim()
	p := &plan{axis: -1}
	if k == 1 {
		// No cuts, no boundary: one shard owns everything. Skip the scans so
		// Shards=1 adds no planning overhead over a single-shot run.
		p.ownerOf = make([]uint8, n)
		p.work = [][]int32{vec.Iota(n)}
		p.ownedN = []int{n}
		p.bIdx = make([]int32, n)
		for i := range p.bIdx {
			p.bIdx[i] = -1
		}
		return p, nil
	}

	// Pass 1: per-dimension bounds pick the widest axis.
	lo := make([]float64, d)
	hi := make([]float64, d)
	first := true
	err := src.Scan(func(start int, coords []float64) error {
		i := 0
		if first {
			copy(lo, coords[:d])
			copy(hi, coords[:d])
			first = false
			i = 1
		}
		for ; i < len(coords)/d; i++ {
			row := coords[i*d : (i+1)*d]
			for j, v := range row {
				if v < lo[j] {
					lo[j] = v
				}
				if v > hi[j] {
					hi[j] = v
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	axis := 0
	for j := 1; j < d; j++ {
		if hi[j]-lo[j] > hi[axis]-lo[axis] {
			axis = j
		}
	}
	p.axis = axis

	// Pass 2: density-aware cuts from an axis histogram. Cut values are bin
	// edges, so they are a deterministic function of the data alone.
	span := hi[axis] - lo[axis]
	if span > 0 {
		counts := make([]int64, planBins)
		err = src.Scan(func(start int, coords []float64) error {
			for i := 0; i < len(coords)/d; i++ {
				b := int(float64(planBins) * (coords[i*d+axis] - lo[axis]) / span)
				if b >= planBins {
					b = planBins - 1
				}
				counts[b]++
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Cut placement: start from the equal-count quantile edges (balanced
		// slabs), then slide each cut within a bounded window to the edge
		// whose eps-halo holds the fewest points, among edges that keep the
		// cumulative mass within half a slab of the quantile. On clustered
		// data the quantiles land inside dense regions — a halo there swallows
		// whole clusters and the boundary pass dominates the run — while a cut
		// whose entire [cut−eps, cut+eps) band is sparse costs almost nothing.
		// The mass constraint keeps every slab under ~2n/k owned points, so
		// halo-chasing cannot concentrate the dataset into one shard (that
		// would defeat the bounded-peak-memory goal of sharding). Correctness
		// never depends on placement (the halo-merge argument holds for any
		// cuts); this is purely a work minimizer, and it stays deterministic:
		// the leftmost minimal-halo edge wins ties.
		prefix := make([]int64, planBins+1)
		for b, c := range counts {
			prefix[b+1] = prefix[b] + c
		}
		// Halo population of a cut at edge e, conservatively rounded out to
		// whole bins.
		epsBins := int(float64(planBins)*eps/span) + 1
		haloN := func(e int) int64 {
			from, to := e-epsBins, e+epsBins
			if from < 0 {
				from = 0
			}
			if to > planBins {
				to = planBins
			}
			return prefix[to] - prefix[from]
		}
		// Half the mean quantile spacing: wide enough to escape a dense blob
		// whose radius is a modest fraction of the span, narrow enough that a
		// cut cannot cross its neighboring quantiles.
		window := planBins / (2 * k)
		if window < 1 {
			window = 1
		}
		maxSkew := int64(n) / int64(2*k)
		cuts := make([]float64, 0, k-1)
		prevEdge := 0
		for j := 1; j < k; j++ {
			target := int64(j) * int64(n) / int64(k)
			q := sort.Search(planBins+1, func(e int) bool { return prefix[e] >= target })
			loE := q - window
			if loE <= prevEdge {
				loE = prevEdge + 1
			}
			hiE := q + window
			if hiE > planBins-1 {
				hiE = planBins - 1
			}
			balanced := func(e int) bool {
				skew := prefix[e] - target
				return skew >= -maxSkew && skew <= maxSkew
			}
			// Fallback when no window edge satisfies the mass constraint (or
			// the window is degenerate, loE > hiE): the bound nearest the
			// quantile in mass.
			best := hiE
			if loE <= hiE && prefix[loE]-target > maxSkew {
				best = loE
			}
			for e := loE; e <= hiE; e++ {
				if balanced(e) && (!balanced(best) || haloN(e) < haloN(best)) {
					best = e
				}
			}
			prevEdge = best
			cuts = append(cuts, lo[axis]+span*float64(best)/planBins)
		}
		p.cuts = cuts
	}
	// span == 0 (all points identical on every axis) leaves cuts empty:
	// shard 0 owns everything, the others are empty.

	// Pass 3: assignment. A point with axis value x is owned by the slab
	// [c_s, c_{s+1}) containing x and belongs to the working set of every
	// shard t with c_t − eps ≤ x < c_{t+1} + eps — a contiguous range
	// [wLo, wHi]. Points with wLo < wHi sit in a halo band and get dense
	// boundary indices.
	cuts := p.cuts
	kEff := len(cuts) + 1
	p.ownerOf = make([]uint8, n)
	p.work = make([][]int32, kEff)
	p.ownedN = make([]int, kEff)
	p.bIdx = make([]int32, n)
	err = src.Scan(func(start int, coords []float64) error {
		for i := 0; i < len(coords)/d; i++ {
			id := int32(start + i)
			x := coords[i*d+axis]
			owner := sort.Search(len(cuts), func(j int) bool { return cuts[j] > x })
			wLo := sort.Search(len(cuts), func(j int) bool { return cuts[j]+eps > x })
			wHi := sort.Search(len(cuts), func(j int) bool { return cuts[j]-eps > x })
			p.ownerOf[id] = uint8(owner)
			p.ownedN[owner]++
			for t := wLo; t <= wHi; t++ {
				p.work[t] = append(p.work[t], id)
			}
			if wLo < wHi {
				p.bIdx[id] = int32(p.bN)
				p.bN++
			} else {
				p.bIdx[id] = -1
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// bEntry records one non-noise local label a boundary point received.
type bEntry struct {
	b     int32 // dense boundary index
	local int32 // shard-local cluster id
}

// shardOut is a shard's boundary summary: everything the merge needs after
// the slab, index and engine are released.
type shardOut struct {
	clusters  int
	entries   []bEntry
	coreB     []int32 // dense boundary indices owner-confirmed core
	retained  []core.RetainedModel
	stat      ShardStat
	budgetErr error
}

// runShard materializes one shard's working set, runs DBSVEC on it, and
// reduces the result to a boundary summary. Owner-local labels are written
// into rawLocal (disjoint per shard, so concurrent shards never race).
func runShard(ctx context.Context, src Source, o Options, p *plan, s int, rawLocal []int32) (*shardOut, error) {
	startT := time.Now()
	out := &shardOut{}
	work := p.work[s]
	out.stat.N = len(work)
	out.stat.Owned = p.ownedN[s]
	if len(work) == 0 {
		return out, nil
	}
	slab, err := src.Slab(work)
	if err != nil {
		return nil, err
	}

	// Build the index once, timed, and inject it into the core run so the
	// boundary core tests below reuse it.
	build := o.Core.IndexBuilderCtx
	if build == nil {
		if o.Core.IndexBuilder != nil {
			build = index.WithContext(o.Core.IndexBuilder)
		} else {
			build = index.WithContext(index.BuildLinear)
		}
	}
	idxStart := time.Now()
	idx, err := build(ctx, slab)
	if err != nil {
		return nil, err
	}
	out.stat.IndexBuild = time.Since(idxStart)

	copts := o.Core
	copts.Context = ctx
	copts.IndexBuilderCtx = func(context.Context, *vec.Dataset) (index.Index, error) { return idx, nil }
	var res *cluster.Result
	var st core.Stats
	if o.Retain {
		res, out.retained, st, err = core.RunRetained(slab, copts)
	} else {
		res, st, err = core.Run(slab, copts)
	}
	if err != nil {
		var be *core.BudgetExceededError
		if !errors.As(err, &be) || res == nil {
			return nil, err
		}
		out.budgetErr = err // valid partial clustering: keep going
	}
	idx = nil
	copts.IndexBuilderCtx = nil // drop the captured index: only labels matter now
	out.clusters = res.Clusters
	out.stat.Clusters = res.Clusters
	out.stat.Core = st

	// Boundary summary: every non-noise label a halo-band point received in
	// this shard, plus exact core flags for the band points this shard owns.
	var ownedBandLocal []int32
	var ownedBandDense []int32
	for li, id := range work {
		b := p.bIdx[id]
		if p.ownerOf[id] == uint8(s) {
			rawLocal[id] = res.Labels[li]
			if b >= 0 {
				ownedBandLocal = append(ownedBandLocal, int32(li))
				ownedBandDense = append(ownedBandDense, b)
			}
		}
		if b >= 0 {
			out.stat.Boundary++
			if res.Labels[li] != cluster.Noise {
				out.entries = append(out.entries, bEntry{b: b, local: res.Labels[li]})
			}
		}
	}
	if len(ownedBandLocal) > 0 {
		// The owner's working set contains the full eps-ball of every owned
		// band point, so counting neighbors inside the slab decides the global
		// core property. Every such neighbor also lies within 2*eps of the
		// point's cut along the axis, so the count can run against just the
		// slab's sub-band near the cuts: the confirmation pass scales with the
		// band, not the slab, even when every candidate cut placement was
		// dense. A kd-tree over the sub-band keeps each counting query cheap
		// regardless of the index kind the clustering itself used.
		twoEps := 2 * o.Core.Eps
		sub := make([]int32, 0, 2*len(ownedBandLocal))
		subPos := make([]int32, len(work))
		for li := range work {
			x := slab.Point(li)[p.axis]
			j := sort.SearchFloat64s(p.cuts, x)
			near := (j < len(p.cuts) && p.cuts[j]-x <= twoEps) ||
				(j > 0 && x-p.cuts[j-1] <= twoEps)
			subPos[li] = -1
			if near {
				subPos[li] = int32(len(sub))
				sub = append(sub, int32(li))
			}
		}
		subSlab := slab.Subset(sub)
		slab = nil // the sub-band copy is all the confirmation pass needs
		bandIdx, err := index.WithContext(kdtree.Build)(ctx, subSlab)
		if err != nil {
			return nil, err
		}
		qs := make([]int32, len(ownedBandLocal))
		for i, li := range ownedBandLocal {
			qs[i] = subPos[li]
		}
		eng := engine.New(subSlab, bandIdx, o.Core.Eps, o.Core.Workers)
		counts, err := eng.Counts(ctx, qs, o.Core.MinPts)
		if err != nil {
			return nil, err
		}
		for i, c := range counts {
			if c >= o.Core.MinPts {
				out.coreB = append(out.coreB, ownedBandDense[i])
			}
		}
	}
	out.stat.Elapsed = time.Since(startT)
	return out, nil
}

// merge stitches the per-shard summaries into the final clustering: local
// cluster ids get disjoint global ranges, halo agreement edges union them,
// and owner-side labels are relabeled densely in point order (the same
// first-appearance order cluster.Result.Compact uses, so a Shards=1 run
// reproduces the single-shot labels exactly).
func merge(p *plan, outs []*shardOut, rawLocal []int32, retain bool, stats *Stats) (*cluster.Result, []Model, error) {
	k := len(outs)
	off := make([]int32, k+1)
	for s, out := range outs {
		off[s+1] = off[s] + int32(out.clusters)
		stats.Shards = append(stats.Shards, out.stat)
	}
	totalRaw := int(off[k])

	// Owner-confirmed core flags per dense boundary index. Owners are
	// unique, so shard order does not matter here.
	ownerCore := make([]bool, p.bN)
	for _, out := range outs {
		for _, b := range out.coreB {
			ownerCore[b] = true
		}
	}

	// Anchor of each boundary point: its owner's raw global label. The owner
	// of a core point always assigns it a cluster (its exact neighborhood
	// has ≥ MinPts members), so every owner-core point has an anchor.
	anchor := make([]int32, p.bN)
	for i := range anchor {
		anchor[i] = cluster.Noise
	}
	for id, b := range p.bIdx {
		if b >= 0 && rawLocal[id] != cluster.Noise {
			anchor[b] = off[p.ownerOf[id]] + rawLocal[id]
		}
	}

	// Halo agreement: union every non-noise label an owner-core boundary
	// point received with its anchor, in shard order (the final labeling is
	// union-order-invariant anyway — pinned by the unionfind tests).
	dsu := unionfind.New(totalRaw)
	var pairs []int32
	for s, out := range outs {
		for _, e := range out.entries {
			if ownerCore[e.b] && anchor[e.b] >= 0 {
				pairs = append(pairs, anchor[e.b], off[s]+e.local)
			}
		}
	}
	stats.CrossMerges = dsu.UnionBatch(pairs)
	canon := dsu.Canonical()

	// Final labels: owner's label through the union-find, densified in point
	// order.
	labels := make([]int32, len(rawLocal))
	remap := make([]int32, totalRaw)
	for i := range remap {
		remap[i] = -1
	}
	next := int32(0)
	for id, l := range rawLocal {
		if l == cluster.Noise {
			labels[id] = cluster.Noise
			continue
		}
		c := canon[off[p.ownerOf[id]]+l]
		if remap[c] < 0 {
			remap[c] = next
			next++
		}
		labels[id] = remap[c]
	}
	res := &cluster.Result{Labels: labels, Clusters: int(next)}

	var models []Model
	if retain {
		for s, out := range outs {
			for _, rm := range out.retained {
				if rm.Cluster < 0 || int(rm.Cluster) >= out.clusters {
					continue
				}
				f := remap[canon[off[s]+rm.Cluster]]
				if f < 0 {
					continue // halo-only cluster: no owned point carries it
				}
				rm.Cluster = f
				models = append(models, Model{Shard: s, RetainedModel: rm})
			}
		}
	}

	var budgetErr error
	for _, out := range outs {
		if out.budgetErr != nil {
			budgetErr = out.budgetErr
			break
		}
	}
	return res, models, budgetErr
}
