package shard

import (
	"fmt"
	"os"

	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

// Source feeds points to the sharded runner. The planner streams the whole
// source a few times (sequential block reads); each shard then materializes
// only its working set via Slab, so a FileSource never holds more than one
// block plus the slabs currently in flight.
type Source interface {
	// Len and Dim describe the point set.
	Len() int
	Dim() int
	// Scan streams the points in id order as flat row-major blocks. fn
	// receives the id of the block's first point and the block's widened
	// float64 coordinates; returning an error stops the scan.
	Scan(fn func(start int, coords []float64) error) error
	// Slab materializes the points with the given ids (sorted ascending) as
	// a dataset whose precision matches a whole-source load, so per-shard
	// runs are bit-compatible with a single-shot run over the same source.
	Slab(ids []int32) (*vec.Dataset, error)
}

// MemSource adapts an in-memory dataset. Slabs are precision-preserving
// subsets of the master, so the sharded run sees the exact same coordinate
// bits as a single-shot run over ds.
type MemSource struct {
	ds *vec.Dataset
}

// NewMemSource wraps ds.
func NewMemSource(ds *vec.Dataset) *MemSource { return &MemSource{ds: ds} }

// Len implements Source.
func (s *MemSource) Len() int { return s.ds.Len() }

// Dim implements Source.
func (s *MemSource) Dim() int { return s.ds.Dim() }

// Scan implements Source with a single whole-dataset block: the master
// coordinates of an F32 dataset are already the widened mirror values, so
// this matches what a file scan of the same data would deliver.
func (s *MemSource) Scan(fn func(start int, coords []float64) error) error {
	if s.ds.Len() == 0 {
		return nil
	}
	return fn(0, s.ds.Coords())
}

// Slab implements Source via a precision-preserving subset copy.
func (s *MemSource) Slab(ids []int32) (*vec.Dataset, error) {
	return s.ds.Subset(ids), nil
}

// FileSource streams a binary dataset file (data.WriteBinary format) through
// bounded block reads: Scan and Slab never hold more than BlockPoints points
// of scratch beyond the slab being assembled. ReadAt keeps it safe for
// concurrent Slab calls from shards in flight.
type FileSource struct {
	f *os.File
	h data.BinHeader
	// BlockPoints is the read granularity in points (default 8192).
	BlockPoints int
}

// OpenFile probes the header of the binary dataset at path. Close releases
// the underlying file.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	h, err := data.ReadBinaryHeader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileSource{f: f, h: h}, nil
}

// Close releases the underlying file handle.
func (s *FileSource) Close() error { return s.f.Close() }

// Header exposes the probed file header.
func (s *FileSource) Header() data.BinHeader { return s.h }

// Len implements Source.
func (s *FileSource) Len() int { return s.h.N }

// Dim implements Source.
func (s *FileSource) Dim() int { return s.h.D }

func (s *FileSource) block() int {
	if s.BlockPoints > 0 {
		return s.BlockPoints
	}
	return 8192
}

// Scan implements Source with sequential bounded block reads.
func (s *FileSource) Scan(fn func(start int, coords []float64) error) error {
	b := s.block()
	buf := make([]float64, b*s.h.D)
	for start := 0; start < s.h.N; start += b {
		count := min(b, s.h.N-start)
		if err := data.ReadBinaryBlock(s.f, s.h, start, count, buf); err != nil {
			return err
		}
		if err := fn(start, buf[:count*s.h.D]); err != nil {
			return err
		}
	}
	return nil
}

// Slab implements Source by gathering the requested rows block by block.
// The dataset is constructed exactly like data.ReadBinary would construct the
// whole file — widened values through vec.NewDataset (honoring the process
// default precision) with float32 files re-quantized losslessly — so a slab
// is bitwise the subset of a whole-file load.
func (s *FileSource) Slab(ids []int32) (*vec.Dataset, error) {
	d := s.h.D
	out := make([]float64, len(ids)*d)
	b := s.block()
	buf := make([]float64, b*d)
	for i := 0; i < len(ids); {
		id := int(ids[i])
		if id < 0 || id >= s.h.N {
			return nil, fmt.Errorf("shard: slab id %d outside %d points", id, s.h.N)
		}
		start := (id / b) * b
		count := min(b, s.h.N-start)
		if err := data.ReadBinaryBlock(s.f, s.h, start, count, buf); err != nil {
			return nil, err
		}
		for ; i < len(ids) && int(ids[i]) < start+count; i++ {
			if int(ids[i]) < start {
				return nil, fmt.Errorf("shard: slab ids not sorted ascending at %d", i)
			}
			copy(out[i*d:(i+1)*d], buf[(int(ids[i])-start)*d:(int(ids[i])-start+1)*d])
		}
	}
	ds, err := vec.NewDataset(out, d)
	if err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if s.h.Precision() == vec.F32 {
		return ds.ToPrecision(vec.F32)
	}
	return ds, nil
}
