package shard

import (
	"runtime"
	"runtime/metrics"
	"time"
)

// liveHeapMetric is the runtime metric the sampler polls: heap bytes that
// were live (reachable) as of the most recent garbage collection. Unlike
// MemStats.HeapAlloc it excludes garbage awaiting collection, so it tracks
// the footprint the out-of-core memory bound is actually about rather than
// the GC-slack-inflated allocation watermark (~2x live at GOGC=100).
const liveHeapMetric = "/gc/heap/live:bytes"

// heapSampler polls the live-heap metric in the background so Stats can
// report the peak live heap of a sharded run. The metric only updates at GC
// points and sampling misses sub-interval spikes; the benchmarks use it for
// order-of-magnitude footprint comparisons, not byte accounting.
type heapSampler struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

// readLiveHeap returns the current value of the live-heap metric (0 if the
// runtime does not export it).
func readLiveHeap(sample []metrics.Sample) uint64 {
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return sample[0].Value.Uint64()
}

// startHeapSampler begins polling at the given interval.
func startHeapSampler(interval time.Duration) *heapSampler {
	s := &heapSampler{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		sample := []metrics.Sample{{Name: liveHeapMetric}}
		for {
			if v := readLiveHeap(sample); v > s.peak {
				s.peak = v
			}
			select {
			case <-s.stop:
				return
			case <-ticker.C:
			}
		}
	}()
	return s
}

// Stop ends sampling and returns the observed peak live heap in bytes. A
// short run may finish without the runtime ever garbage-collecting, leaving
// the metric at zero or stale; Stop forces one collection and folds the
// resulting reading into the peak so the returned value is never zero for a
// run that allocated.
func (s *heapSampler) Stop() uint64 {
	close(s.stop)
	<-s.done
	runtime.GC()
	sample := []metrics.Sample{{Name: liveHeapMetric}}
	if v := readLiveHeap(sample); v > s.peak {
		s.peak = v
	}
	return s.peak
}

// MeasurePeakHeap runs fn while sampling the live heap at the given interval
// (0 selects the 10ms default) and returns the observed peak alongside fn's
// error — the same measurement a sharded run reports in Stats.PeakHeapBytes,
// usable for single-shot comparison baselines.
func MeasurePeakHeap(interval time.Duration, fn func() error) (uint64, error) {
	if interval == 0 {
		interval = 10 * time.Millisecond
	}
	s := startHeapSampler(interval)
	err := fn()
	return s.Stop(), err
}
