package shard

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/core"
	"dbsvec/internal/data"
	"dbsvec/internal/eval"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/vec"
)

// strips generates nStrips line clusters that all span the full extent of
// axis 0 — the DBSCAN-exact regime the sharded merge is proven for, built so
// every slab cut must slice every cluster: points sit on a jittered lattice
// along axis 0 (spacing 0.2 with jitter ±0.05 guarantees >= 14 neighbors
// within eps=3, so every point is core and each strip is one cluster), strips
// are > 2*eps apart on axis 1 (no border ambiguity), and the axis-0 histogram
// is gap-free, so the density-aware cut planner has no sparse region to
// retreat to and the halo merge always has work to do. Axis 0 must end up the
// widest axis, which bounds perStrip from below.
func strips(tb testing.TB, nStrips, perStrip, d int, seed int64) *vec.Dataset {
	tb.Helper()
	const (
		gap = 0.2 // axis-0 lattice spacing
		sep = 8.0 // strip separation on axis 1
	)
	if float64(perStrip)*gap <= float64(nStrips-1)*sep+0.5 {
		tb.Fatalf("strips(%d,%d): axis 0 would not be the widest axis", nStrips, perStrip)
	}
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, nStrips*perStrip*d)
	for s := 0; s < nStrips; s++ {
		for i := 0; i < perStrip; i++ {
			coords = append(coords, (float64(i)+0.5)*gap+(rng.Float64()-0.5)*0.1)
			coords = append(coords, float64(s)*sep+rng.Float64()*0.5)
			for j := 2; j < d; j++ {
				coords = append(coords, rng.Float64()*0.5)
			}
		}
	}
	ds, err := vec.NewDataset(coords, d)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

const (
	boxEps    = 3.0
	boxMinPts = 10
)

func singleShot(tb testing.TB, ds *vec.Dataset, workers int) *cluster.Result {
	tb.Helper()
	res, _, err := core.Run(ds, core.Options{Eps: boxEps, MinPts: boxMinPts, Workers: workers})
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func requireIdentical(tb testing.TB, want, got *cluster.Result, context string) {
	tb.Helper()
	ari, err := eval.AdjustedRandIndex(want, got)
	if err != nil {
		tb.Fatal(err)
	}
	if ari != 1.0 {
		tb.Fatalf("%s: ARI = %v, want exactly 1.0", context, ari)
	}
	if got.Clusters != want.Clusters {
		tb.Fatalf("%s: %d clusters, want %d", context, got.Clusters, want.Clusters)
	}
	for i := range want.Labels {
		if want.Labels[i] != got.Labels[i] {
			tb.Fatalf("%s: label[%d] = %d, want %d (partition identical but "+
				"first-appearance order diverged)", context, i, got.Labels[i], want.Labels[i])
		}
	}
}

// TestShardedMatchesSingleShot is the tentpole acceptance test: for shard
// counts {1,2,4,8}, several worker counts and both precisions, the sharded
// run must be label-permutation-identical (ARI exactly 1.0 — and, in this
// regime, label-identical) to the single-shot run.
func TestShardedMatchesSingleShot(t *testing.T) {
	for _, prec := range []vec.Precision{vec.F64, vec.F32} {
		ds, err := strips(t, 6, 250, 2, 1).ToPrecision(prec)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3} {
			want := singleShot(t, ds, workers)
			if want.Clusters != 6 {
				t.Fatalf("single-shot found %d clusters, want 6", want.Clusters)
			}
			for _, shards := range []int{1, 2, 4, 8} {
				opts := Options{
					Core:       core.Options{Eps: boxEps, MinPts: boxMinPts, Workers: workers},
					Shards:     shards,
					HeapSample: -1,
				}
				res, _, st, err := Run(NewMemSource(ds), opts)
				if err != nil {
					t.Fatalf("%v/w%d/k%d: %v", prec, workers, shards, err)
				}
				requireIdentical(t, want, res, "sharded run")
				if len(st.Shards) > shards {
					t.Fatalf("stats report %d shards for k=%d", len(st.Shards), shards)
				}
				if shards > 1 && st.BoundaryPoints == 0 {
					t.Fatalf("k=%d produced no boundary points; the merge was not exercised", shards)
				}
				if shards > 1 && st.CrossMerges == 0 {
					t.Fatalf("k=%d performed no cross-shard merges; cuts missed every cluster", shards)
				}
			}
		}
	}
}

// TestShardedIndexKinds: injecting a non-default index builder per shard
// (kd-tree) preserves exactness.
func TestShardedIndexKinds(t *testing.T) {
	ds := strips(t, 5, 200, 3, 2)
	want := singleShot(t, ds, 2)
	opts := Options{
		Core:       core.Options{Eps: boxEps, MinPts: boxMinPts, Workers: 2, IndexBuilder: kdtree.Build},
		Shards:     4,
		HeapSample: -1,
	}
	res, _, _, err := Run(NewMemSource(ds), opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, want, res, "kd-tree sharded run")
}

// TestShardedConcurrencyDeterminism: the shard-level concurrency cap changes
// scheduling only — labels and merge statistics are identical for any cap.
func TestShardedConcurrencyDeterminism(t *testing.T) {
	ds := strips(t, 6, 250, 2, 3)
	var want *cluster.Result
	wantMerges := -1
	for _, conc := range []int{1, 2, 8} {
		opts := Options{
			Core:        core.Options{Eps: boxEps, MinPts: boxMinPts, Workers: 2},
			Shards:      8,
			Concurrency: conc,
			HeapSample:  -1,
		}
		res, _, st, err := Run(NewMemSource(ds), opts)
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want, wantMerges = res, st.CrossMerges
			continue
		}
		requireIdentical(t, want, res, "concurrency variant")
		if st.CrossMerges != wantMerges {
			t.Fatalf("conc %d: %d cross merges, want %d", conc, st.CrossMerges, wantMerges)
		}
	}
}

// TestShardedFileMatchesMem: streaming the same data from a binary file
// through small blocks yields bit-identical labels to the in-memory source,
// for both on-disk precisions.
func TestShardedFileMatchesMem(t *testing.T) {
	dir := t.TempDir()
	for _, prec := range []vec.Precision{vec.F64, vec.F32} {
		ds, err := strips(t, 5, 180, 2, 4).ToPrecision(prec)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "pts_"+prec.String()+".bin")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := data.WriteBinary(f, ds); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}

		opts := Options{
			Core:        core.Options{Eps: boxEps, MinPts: boxMinPts, Workers: 1},
			Shards:      4,
			Concurrency: 2,
			HeapSample:  -1,
		}
		memRes, _, _, err := Run(NewMemSource(ds), opts)
		if err != nil {
			t.Fatal(err)
		}

		fs, err := OpenFile(path)
		if err != nil {
			t.Fatal(err)
		}
		fs.BlockPoints = 64
		fileRes, _, _, err := Run(fs, opts)
		fs.Close()
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, memRes, fileRes, "file-sourced run "+prec.String())
	}
}

// TestShardedRetainedModels: Retain returns per-shard snapshots whose Cluster
// fields reference final merged ids.
func TestShardedRetainedModels(t *testing.T) {
	ds := strips(t, 4, 200, 2, 5)
	opts := Options{
		Core:       core.Options{Eps: boxEps, MinPts: boxMinPts},
		Shards:     4,
		Retain:     true,
		HeapSample: -1,
	}
	res, models, _, err := Run(NewMemSource(ds), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(models) == 0 {
		t.Fatal("Retain returned no models")
	}
	seen := make(map[int32]bool)
	for _, m := range models {
		if m.Cluster < 0 || int(m.Cluster) >= res.Clusters {
			t.Fatalf("model cluster %d outside final [0,%d)", m.Cluster, res.Clusters)
		}
		if m.Shard < 0 || m.Shard >= 4 {
			t.Fatalf("model shard %d", m.Shard)
		}
		seen[m.Cluster] = true
	}
	if len(seen) != res.Clusters {
		t.Fatalf("models cover %d of %d final clusters", len(seen), res.Clusters)
	}
}

// TestShardedBudgetPartial: a per-shard budget trip surfaces the
// BudgetExceededError while still returning a valid merged clustering.
func TestShardedBudgetPartial(t *testing.T) {
	ds := strips(t, 6, 250, 2, 6)
	opts := Options{
		Core: core.Options{
			Eps: boxEps, MinPts: boxMinPts,
			Budget: core.Budget{MaxRangeQueries: 5},
		},
		Shards:     4,
		HeapSample: -1,
	}
	res, _, _, err := Run(NewMemSource(ds), opts)
	var be *core.BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want BudgetExceededError", err)
	}
	if res == nil {
		t.Fatal("budget trip must still return the merged partial clustering")
	}
	for i, l := range res.Labels {
		if l != cluster.Noise && (l < 0 || int(l) >= res.Clusters) {
			t.Fatalf("label[%d] = %d invalid in partial result", i, l)
		}
	}
}

// TestShardedEdgeCases: empty source, invalid options, heap sampling on.
func TestShardedEdgeCases(t *testing.T) {
	empty, err := vec.NewDataset(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, _, _, err := Run(NewMemSource(empty), Options{Core: core.Options{Eps: 1, MinPts: 2}, Shards: 4, HeapSample: -1})
	if err != nil || len(res.Labels) != 0 {
		t.Fatalf("empty source: res=%v err=%v", res, err)
	}

	ds := strips(t, 2, 60, 2, 7)
	if _, _, _, err := Run(nil, Options{}); !errors.Is(err, core.ErrInvalidParams) {
		t.Fatalf("nil source: %v", err)
	}
	if _, _, _, err := Run(NewMemSource(ds), Options{Core: core.Options{Eps: 1, MinPts: 2}, Shards: MaxShards + 1}); !errors.Is(err, core.ErrInvalidParams) {
		t.Fatalf("oversized shard count: %v", err)
	}
	if _, _, _, err := Run(NewMemSource(ds), Options{Core: core.Options{Eps: 1, MinPts: 2}, Concurrency: -1}); !errors.Is(err, core.ErrInvalidParams) {
		t.Fatalf("negative concurrency: %v", err)
	}

	// Heap sampling on: the stat must come back non-zero.
	_, _, st, err := Run(NewMemSource(ds), Options{Core: core.Options{Eps: boxEps, MinPts: boxMinPts}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakHeapBytes == 0 {
		t.Fatal("heap sampler reported zero peak")
	}
}

// TestPlanShape: cuts are sorted, owned counts sum to n, working sets cover
// their owners, and the k=1 fast path skips planning scans.
func TestPlanShape(t *testing.T) {
	ds := strips(t, 6, 220, 2, 8)
	p, err := buildPlan(NewMemSource(ds), boxEps, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.axis != 0 {
		t.Fatalf("axis = %d, want 0 (widest)", p.axis)
	}
	for i := 1; i < len(p.cuts); i++ {
		if p.cuts[i] < p.cuts[i-1] {
			t.Fatalf("cuts not sorted: %v", p.cuts)
		}
	}
	sum := 0
	for s, o := range p.ownedN {
		sum += o
		// Every owned point must be in its own shard's working set.
		inWork := make(map[int32]bool, len(p.work[s]))
		for _, id := range p.work[s] {
			inWork[id] = true
		}
		for id, owner := range p.ownerOf {
			if int(owner) == s && !inWork[int32(id)] {
				t.Fatalf("point %d owned by %d but not in its working set", id, s)
			}
		}
	}
	if sum != ds.Len() {
		t.Fatalf("owned counts sum to %d, want %d", sum, ds.Len())
	}

	p1, err := buildPlan(NewMemSource(ds), boxEps, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p1.axis != -1 || len(p1.work) != 1 || len(p1.work[0]) != ds.Len() {
		t.Fatalf("k=1 plan: axis=%d work=%d", p1.axis, len(p1.work))
	}
}

func BenchmarkRunSharded(b *testing.B) {
	ds := strips(b, 6, 400, 2, 42)
	o := Options{Core: core.Options{Eps: boxEps, MinPts: boxMinPts}, Shards: 4, Concurrency: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Run(NewMemSource(ds), o); err != nil {
			b.Fatal(err)
		}
	}
}
