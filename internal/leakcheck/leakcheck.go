// Package leakcheck asserts that a test leaves no goroutines behind — the
// observable invariant of correct cancellation: every worker spawned by an
// aborted batch, build or solve must exit, not linger blocked on a channel.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the goroutine count and registers a cleanup that fails the
// test if the count has not returned to the snapshot within two seconds.
// Call it first in any test that cancels or aborts parallel work.
//
// The tolerance below absorbs runtime-internal goroutines that appear
// lazily (e.g. the first timer); worker pools in this repository are sized
// in the tens, so a real leak clears it by a wide margin.
func Check(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			now := runtime.NumGoroutine()
			if now <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				buf = buf[:runtime.Stack(buf, true)]
				t.Errorf("goroutine leak: %d before, %d after; stacks:\n%s", before, now, buf)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
