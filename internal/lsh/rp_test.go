package lsh

import (
	"math"
	"testing"

	"dbsvec/internal/data"
	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

func TestRPValidation(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	bad := []RPParams{
		{Projections: 0, TopVectors: 1, TopPoints: 1},
		{Projections: 65, TopVectors: 1, TopPoints: 1},
		{Projections: 4, TopVectors: 0, TopPoints: 1},
		{Projections: 4, TopVectors: 5, TopPoints: 1},
		{Projections: 4, TopVectors: 2, TopPoints: 0},
	}
	for i, p := range bad {
		if _, err := NewRP(ds, p); err == nil {
			t.Errorf("case %d: want error for %+v", i, p)
		}
	}
}

func TestRPDeterministicAndDeduplicated(t *testing.T) {
	ds := data.Blobs(400, 8, 4, 2, 100, 0, 3)
	p := RPParams{Projections: 8, TopVectors: 2, TopPoints: 60, Seed: 5}
	r1, err := NewRP(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRP(ds, p)
	seen := make([]bool, ds.Len())
	for i := 0; i < ds.Len(); i += 17 {
		c1 := r1.Candidates(i, nil, seen)
		c2 := r2.Candidates(i, nil, seen)
		if len(c1) != len(c2) {
			t.Fatalf("point %d: candidate counts differ (%d vs %d)", i, len(c1), len(c2))
		}
		counts := map[int32]int{}
		for k, id := range c1 {
			if id != c2[k] {
				t.Fatalf("point %d: candidate order differs at %d", i, k)
			}
			counts[id]++
		}
		for id, n := range counts {
			if n != 1 {
				t.Errorf("point %d: candidate %d appears %d times", i, id, n)
			}
		}
		for k, s := range seen {
			if s {
				t.Fatalf("seen[%d] not reset", k)
			}
		}
	}
}

// TestRPNeighborsWithin checks the three contracts of the approximate
// pipeline on clustered data: returned neighbors really are within eps
// (modulo the cached identity's documented ULP slack), the point itself is
// always present, and recall against the exact neighborhoods is high when
// the retained lists are generous.
func TestRPNeighborsWithin(t *testing.T) {
	ds := data.Blobs(600, 16, 3, 2, 100, 0, 7)
	eps := 6.0
	r, err := NewRP(ds, RPParams{Projections: 12, TopVectors: 4, TopPoints: 250, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.Len())
	var cand, buf []int32
	var truePairs, foundPairs int
	for i := 0; i < ds.Len(); i++ {
		buf = r.NeighborsWithin(i, eps, cand, buf[:0], seen)
		self := false
		got := make(map[int32]bool, len(buf))
		for _, id := range buf {
			if int(id) == i {
				self = true
			}
			got[id] = true
			d := math.Sqrt(ds.Dist2To(int(id), ds.Point(i)))
			if d > eps*(1+1e-9) {
				t.Fatalf("point %d: neighbor %d at distance %v > eps %v", i, id, d, eps)
			}
		}
		if !self {
			t.Fatalf("point %d missing from its own neighborhood", i)
		}
		exact := ds.FilterWithin(ds.Point(i), eps*eps, nil)
		for _, id := range exact {
			truePairs++
			if got[id] {
				foundPairs++
			}
		}
	}
	if recall := float64(foundPairs) / float64(truePairs); recall < 0.9 {
		t.Errorf("recall %v < 0.9 (%d/%d pairs)", recall, foundPairs, truePairs)
	}
}

// TestRPTopPointsClamped pins the m > n edge: lists clamp to the dataset
// and every point still reaches every other through its candidates.
func TestRPTopPointsClamped(t *testing.T) {
	ds := data.Blobs(20, 4, 2, 2, 50, 0, 9)
	r, err := NewRP(ds, RPParams{Projections: 4, TopVectors: 1, TopPoints: 1000, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.Len())
	cand := r.Candidates(0, nil, seen)
	if len(cand) != ds.Len() {
		t.Fatalf("clamped candidates = %d, want %d", len(cand), ds.Len())
	}
}

// TestRPF32MatchesF64 pins the storage-precision independence of the
// structure: building from float32 storage must produce identical retained
// lists and candidates, because the widening dot kernels are bit-identical
// on the widened master.
func TestRPF32MatchesF64(t *testing.T) {
	ds := data.Blobs(300, 12, 3, 2, 100, 0, 15)
	ds32, err := ds.ToPrecision(vec.F32)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the f64 twin from the widened master so both see the same
	// coordinates.
	widened, err := ds32.ToPrecision(vec.F64)
	if err != nil {
		t.Fatal(err)
	}
	p := RPParams{Projections: 6, TopVectors: 2, TopPoints: 50, Seed: 17}
	r32, err := NewRP(ds32, p)
	if err != nil {
		t.Fatal(err)
	}
	r64, err := NewRP(widened, p)
	if err != nil {
		t.Fatal(err)
	}
	for k := range r32.closest {
		if r32.closest[k] != r64.closest[k] || r32.furthest[k] != r64.furthest[k] {
			t.Fatalf("retained lists differ at %d", k)
		}
	}
	for k := range r32.dots {
		if r32.dots[k] != r64.dots[k] {
			t.Fatalf("dots differ at %d: %v vs %v", k, r32.dots[k], r64.dots[k])
		}
	}
	if got, want := dist.Norms(ds32.Matrix()), dist.Norms(widened.Matrix()); got[0] != want[0] {
		t.Fatalf("norm caches differ")
	}
}
