package lsh

import (
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

func TestValidation(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	bad := []Params{
		{Tables: 0, Funcs: 2, Width: 1},
		{Tables: 2, Funcs: 0, Width: 1},
		{Tables: 2, Funcs: 2, Width: 0},
		{Tables: 2, Funcs: 2, Width: -5},
	}
	for i, p := range bad {
		if _, err := New(ds, p); err == nil {
			t.Errorf("case %d: want error for %+v", i, p)
		}
	}
}

func TestSelfCollision(t *testing.T) {
	// Every point must be among its own candidates.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 200)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	h, err := New(ds, Params{Tables: 4, Funcs: 2, Width: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.Len())
	for i := 0; i < ds.Len(); i++ {
		cand := h.Candidates(ds.Point(i), nil, seen)
		found := false
		for _, c := range cand {
			if int(c) == i {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("point %d not in its own candidate set", i)
		}
	}
}

func TestNearPointsCollideOften(t *testing.T) {
	// Points much closer than Width should collide in at least one of
	// several tables nearly always; far points rarely.
	rng := rand.New(rand.NewSource(2))
	var rows [][]float64
	for i := 0; i < 100; i++ {
		base := []float64{rng.Float64() * 1000, rng.Float64() * 1000}
		rows = append(rows, base, []float64{base[0] + 0.1, base[1] + 0.1})
	}
	ds, _ := vec.FromRows(rows)
	h, err := New(ds, Params{Tables: 8, Funcs: 2, Width: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.Len())
	hits := 0
	for i := 0; i < ds.Len(); i += 2 {
		cand := h.Candidates(ds.Point(i), nil, seen)
		for _, c := range cand {
			if int(c) == i+1 {
				hits++
				break
			}
		}
	}
	if frac := float64(hits) / 100; frac < 0.9 {
		t.Errorf("near-pair collision rate %v < 0.9", frac)
	}
}

func TestCandidatesDeduplicated(t *testing.T) {
	// A point hashed into the same bucket across many tables must appear
	// exactly once in the candidate list.
	rows := [][]float64{{0, 0}, {0.01, 0.01}, {500, 500}}
	ds, _ := vec.FromRows(rows)
	h, err := New(ds, Params{Tables: 6, Funcs: 1, Width: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.Len())
	cand := h.Candidates(ds.Point(0), nil, seen)
	counts := map[int32]int{}
	for _, c := range cand {
		counts[c]++
	}
	for id, n := range counts {
		if n != 1 {
			t.Errorf("candidate %d appears %d times", id, n)
		}
	}
	// seen must be reset.
	for i, s := range seen {
		if s {
			t.Errorf("seen[%d] not reset", i)
		}
	}
}

func TestBucketStats(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {0, 0}, {100, 100}})
	h, err := New(ds, Params{Tables: 2, Funcs: 2, Width: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	buckets, maxSize := h.BucketStats()
	if buckets == 0 || maxSize < 2 {
		t.Errorf("BucketStats = %d,%d; duplicates must share a bucket", buckets, maxSize)
	}
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
}

// TestCandidatesAllocFree pins the satellite contract of the uint64 bucket
// keys: probing allocates nothing — no signature slice, no byte-serialized
// map key — once the candidate buffer has capacity.
func TestCandidatesAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	rows := make([][]float64, 500)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100}
	}
	ds, _ := vec.FromRows(rows)
	h, err := New(ds, Params{Tables: 8, Funcs: 3, Width: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, ds.Len())
	buf := make([]int32, 0, ds.Len())
	q := ds.Point(42)
	if allocs := testing.AllocsPerRun(100, func() {
		buf = h.Candidates(q, buf[:0], seen)
	}); allocs != 0 {
		t.Fatalf("Candidates allocates %v objects per probe, want 0", allocs)
	}
}

// TestBucketsAscendingWithin pins the counting-sort arena layout: ids within
// a bucket come out in ascending order, so downstream exact filters see a
// deterministic candidate order.
func TestBucketsAscendingWithin(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	rows := make([][]float64, 300)
	for i := range rows {
		rows[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
	}
	ds, _ := vec.FromRows(rows)
	h, err := New(ds, Params{Tables: 3, Funcs: 2, Width: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for t0 := range h.tables {
		tb := &h.tables[t0]
		total := 0
		for s := 0; s+1 < len(tb.offsets); s++ {
			seg := tb.flat[tb.offsets[s]:tb.offsets[s+1]]
			total += len(seg)
			for k := 1; k < len(seg); k++ {
				if seg[k-1] >= seg[k] {
					t.Fatalf("table %d bucket %d not ascending: %v", t0, s, seg)
				}
			}
		}
		if total != ds.Len() {
			t.Fatalf("table %d holds %d ids, want %d", t0, total, ds.Len())
		}
	}
}

func TestFloor64(t *testing.T) {
	cases := map[float64]int64{2.7: 2, -2.7: -3, 0: 0, -3: -3, 3: 3, -0.1: -1}
	for in, want := range cases {
		if got := floor64(in); got != want {
			t.Errorf("floor64(%v) = %d, want %d", in, got, want)
		}
	}
}
