package lsh

// sDBSCAN-style random-projection candidate generation (Scalable
// Density-based Clustering with Random Projections): every point is
// projected onto D random Gaussian directions; for each direction the m
// points with the largest dots (angularly closest to the direction) and the
// m with the smallest (closest to its negation) are retained. A point's
// candidate neighbors are the retained lists of its own top-k closest and
// top-k furthest directions — points that agree with it about which
// directions they hug. Unlike the bucket Hasher above, this mode has no
// width parameter and degrades gracefully on unit-norm embeddings where
// every pairwise gap is small relative to the radius; it is approximate
// (candidates can miss true neighbors), so callers must treat the output as
// a recall-bounded candidate set, never an exact neighborhood.

import (
	"errors"
	"math/rand"
	"sort"

	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

// RPParams configures the random-projection candidate structure.
type RPParams struct {
	// Projections is the number D of random Gaussian directions (max 64).
	Projections int
	// TopVectors is how many closest and furthest directions each point
	// consults when gathering candidates (k in sDBSCAN).
	TopVectors int
	// TopPoints is how many points each direction retains in its closest
	// and furthest lists (m in sDBSCAN); clamped to the dataset size.
	TopPoints int
	// Seed drives the random directions.
	Seed int64
}

// Validate checks parameter sanity.
func (p RPParams) Validate() error {
	if p.Projections < 1 || p.Projections > 64 {
		return errors.New("lsh: Projections must be in [1, 64]")
	}
	if p.TopVectors < 1 || p.TopVectors > p.Projections {
		return errors.New("lsh: TopVectors must be in [1, Projections]")
	}
	if p.TopPoints < 1 {
		return errors.New("lsh: TopPoints must be at least 1")
	}
	return nil
}

// RP is the built candidate structure.
type RP struct {
	ds     *vec.Dataset
	params RPParams
	m      int // effective TopPoints (clamped to n)
	// dots is direction-major: dots[j*n+i] = direction(j) · point(i),
	// filled by one DotsToAll per direction.
	dots []float64
	// closest/furthest are D × m arenas: direction j retains ids
	// closest[j*m:(j+1)*m] with the largest dots (descending, ties by
	// ascending id) and furthest[...] with the smallest (ascending).
	closest  []int32
	furthest []int32
	// norms caches ‖point(i)‖² for the fused cached-identity filter in
	// NeighborsWithin.
	norms []float64
}

// NewRP projects ds onto Projections random directions and builds the
// per-direction retained lists.
func NewRP(ds *vec.Dataset, p RPParams) (*RP, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n, d := ds.Len(), ds.Dim()
	D := p.Projections
	m := p.TopPoints
	if m > n {
		m = n
	}
	r := &RP{
		ds:       ds,
		params:   p,
		m:        m,
		dots:     make([]float64, D*n),
		closest:  make([]int32, D*m),
		furthest: make([]int32, D*m),
		norms:    dist.Norms(ds.Matrix()),
	}
	dir := make([]float64, d)
	mat := ds.Matrix()
	mat32 := ds.Matrix32()
	f32 := ds.Precision() == vec.F32
	order := make([]int32, n)
	for j := 0; j < D; j++ {
		for k := range dir {
			dir[k] = rng.NormFloat64()
		}
		col := r.dots[j*n : (j+1)*n]
		if f32 {
			dist.DotsToAll32(mat32, dir, col)
		} else {
			dist.DotsToAll(mat, dir, col)
		}
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := col[order[a]], col[order[b]]
			if da != db {
				return da > db
			}
			return order[a] < order[b]
		})
		copy(r.closest[j*m:(j+1)*m], order[:m])
		ft := r.furthest[j*m : (j+1)*m]
		for k := 0; k < m; k++ {
			ft[k] = order[n-1-k]
		}
	}
	return r, nil
}

// Len returns the number of indexed points.
func (r *RP) Len() int { return r.ds.Len() }

// Candidates appends the candidate neighbors of point i to buf: the
// retained lists of its TopVectors closest and TopVectors furthest
// directions, deduplicated via the seen scratch (length >= Len(),
// false-initialized, reset before return). The point itself is not
// guaranteed to appear.
func (r *RP) Candidates(i int, buf []int32, seen []bool) []int32 {
	n := r.ds.Len()
	D := r.params.Projections
	start := len(buf)
	var used uint64
	// TopVectors passes picking the unconsumed max, then min, of point i's
	// direction dots; ties break toward the lower direction index.
	for pass := 0; pass < r.params.TopVectors; pass++ {
		best := -1
		for j := 0; j < D; j++ {
			if used&(1<<j) != 0 {
				continue
			}
			if best < 0 || r.dots[j*n+i] > r.dots[best*n+i] {
				best = j
			}
		}
		used |= 1 << best
		buf = r.appendUnseen(r.closest[best*r.m:(best+1)*r.m], buf, seen)
	}
	for pass := 0; pass < r.params.TopVectors; pass++ {
		best := -1
		for j := 0; j < D; j++ {
			if used&(1<<j) != 0 {
				continue
			}
			if best < 0 || r.dots[j*n+i] < r.dots[best*n+i] {
				best = j
			}
		}
		if best < 0 {
			break // TopVectors*2 > Projections: every direction consumed
		}
		used |= 1 << best
		buf = r.appendUnseen(r.furthest[best*r.m:(best+1)*r.m], buf, seen)
	}
	for _, id := range buf[start:] {
		seen[id] = false
	}
	return buf
}

func (r *RP) appendUnseen(ids, buf []int32, seen []bool) []int32 {
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			buf = append(buf, id)
		}
	}
	return buf
}

// NeighborsWithin appends to buf the candidates of point i that pass the
// eps test, evaluated through the fused cached-norms identity filter (one
// dot product per candidate against the precomputed norm cache), plus the
// point itself. cand is reusable candidate scratch, seen as in Candidates.
// The accept boundary is the cached identity's, ULP-divergent from the
// exact kernels — this is the approximate pipeline, not a range query.
func (r *RP) NeighborsWithin(i int, eps float64, cand, buf []int32, seen []bool) []int32 {
	cand = r.Candidates(i, cand[:0], seen)
	q := r.ds.Point(i)
	start := len(buf)
	buf = dist.FilterWithinCachedIDs(r.ds.Matrix(), q, r.norms[i], r.norms, eps*eps, cand, buf)
	for _, id := range buf[start:] {
		if id == int32(i) {
			return buf
		}
	}
	return append(buf, int32(i))
}
