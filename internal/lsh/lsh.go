// Package lsh implements p-stable locality-sensitive hashing (Datar et al.,
// SoCG 2004) for Euclidean space: h(x) = ⌊(a·x + b)/W⌋ with a drawn from a
// standard Gaussian (2-stable) distribution and b uniform in [0, W). It
// backs the DBSCAN-LSH baseline and, through the sDBSCAN-style candidate
// mode in rp.go, the approximate high-dimensional pipelines.
//
// The hot structure is laid out for batch work: all Tables×Funcs projection
// vectors live in one contiguous row-major matrix, so hashing the dataset is
// a sequence of dense matrix-vector products through the dist dot kernels
// (one DotsToAll per hash function — the float32 storage mode streams the
// half-width mirror through the AVX path); buckets are flat counting-sort
// arenas in first-encounter order, like the grid backend's cells, rather
// than per-table map[string][]int32. Bucket keys are a fixed uint64 mix
// (splitmix64 finalizer) folded over the k concatenated hash integers, so
// probing a query allocates nothing; a key collision merges two buckets,
// which can only ever add candidates — callers exact-filter candidates, so
// correctness is unaffected (probability ~2⁻⁶⁴ per pair regardless).
package lsh

import (
	"errors"
	"math/rand"

	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

// Params configures a hash structure.
type Params struct {
	// Tables is the number of independent hash tables L.
	Tables int
	// Funcs is the number of concatenated hash functions k per table.
	Funcs int
	// Width is the quantization width W, typically set near the query
	// radius.
	Width float64
	// Seed drives the random projections.
	Seed int64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Tables < 1 || p.Funcs < 1 {
		return errors.New("lsh: Tables and Funcs must be at least 1")
	}
	if p.Width <= 0 {
		return errors.New("lsh: Width must be positive")
	}
	return nil
}

// Hasher holds L tables of buckets over a dataset.
type Hasher struct {
	ds     *vec.Dataset
	params Params
	// proj is the contiguous (Tables*Funcs) × d projection matrix; row
	// t*Funcs+f is the Gaussian vector of function f in table t. offs
	// carries the matching uniform offsets b.
	proj dist.Matrix
	offs []float64
	// tables[t] is the flat bucket directory of table t.
	tables []table
}

// table is one hash table's bucket arena: slotOf maps a mixed bucket key to
// its slot in first-encounter order, and slot s owns ids
// flat[offsets[s]:offsets[s+1]] in ascending order — the same two-pass
// counting-sort layout as the grid backend's cells.
type table struct {
	slotOf  map[uint64]int32
	offsets []int32
	flat    []int32
}

// New builds the hash tables over every point of ds.
func New(ds *vec.Dataset, p Params) (*Hasher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := ds.Dim()
	nf := p.Tables * p.Funcs
	h := &Hasher{
		ds:     ds,
		params: p,
		proj:   dist.Matrix{Coords: make([]float64, nf*d), Dim: d},
		offs:   make([]float64, nf),
		tables: make([]table, p.Tables),
	}
	for f := 0; f < nf; f++ {
		row := h.proj.Coords[f*d : (f+1)*d]
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		h.offs[f] = rng.Float64() * p.Width
	}

	n := ds.Len()
	m := ds.Matrix()
	m32 := ds.Matrix32()
	f32 := ds.Precision() == vec.F32
	// Batch hashing: one dense matrix-vector product per hash function
	// fills dots, the mixed keys fold in per function, then a counting
	// sort bins each table. keys/slots scratch is reused across tables.
	dots := make([]float64, n)
	keys := make([]uint64, n)
	slots := make([]int32, n)
	for t := 0; t < p.Tables; t++ {
		for i := range keys {
			keys[i] = keySeed
		}
		for f := 0; f < p.Funcs; f++ {
			g := t*p.Funcs + f
			if f32 {
				dist.DotsToAll32(m32, h.proj.Row(g), dots)
			} else {
				dist.DotsToAll(m, h.proj.Row(g), dots)
			}
			b, w := h.offs[g], p.Width
			for i, dot := range dots {
				keys[i] = mixKey(keys[i], floor64((dot+b)/w))
			}
		}
		h.tables[t] = binKeys(keys, slots)
	}
	return h, nil
}

// binKeys counting-sorts point ids by bucket key: first pass assigns slots
// in first-encounter order and counts occupancy, second pass scatters ids
// into the flat arena, ascending within each bucket. slots is reusable
// scratch of length len(keys).
func binKeys(keys []uint64, slots []int32) table {
	tb := table{slotOf: make(map[uint64]int32)}
	var counts []int32
	for i, k := range keys {
		s, ok := tb.slotOf[k]
		if !ok {
			s = int32(len(counts))
			tb.slotOf[k] = s
			counts = append(counts, 0)
		}
		slots[i] = s
		counts[s]++
	}
	tb.offsets = make([]int32, len(counts)+1)
	for s, c := range counts {
		tb.offsets[s+1] = tb.offsets[s] + c
	}
	tb.flat = make([]int32, len(keys))
	next := counts // reuse as per-slot write cursors
	copy(next, tb.offsets[:len(counts)])
	for i := range keys {
		s := slots[i]
		tb.flat[next[s]] = int32(i)
		next[s]++
	}
	return tb
}

// keySeed is the initial accumulator of the bucket-key mix.
const keySeed uint64 = 0x8e98_cbc2_1e6a_8f29

// mixKey folds one hash integer into the running bucket key with the
// splitmix64 finalizer: a fixed, allocation-free replacement for the
// byte-serialized string keys the package used to build per probe.
func mixKey(key uint64, h int64) uint64 {
	z := key ^ uint64(h)
	z += 0x9e37_79b9_7f4a_7c15
	z ^= z >> 30
	z *= 0xbf58_476d_1ce4_e5b9
	z ^= z >> 27
	z *= 0x94d0_49bb_1331_11eb
	z ^= z >> 31
	return z
}

func floor64(v float64) int64 {
	i := int64(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}

// Candidates appends the ids of every point sharing at least one bucket
// with q across all tables to buf (deduplicated via the seen scratch slice,
// which must have length >= Len() and be false-initialized; it is reset
// before return). Probing allocates nothing beyond buf growth.
func (h *Hasher) Candidates(q []float64, buf []int32, seen []bool) []int32 {
	start := len(buf)
	for t := range h.tables {
		key := keySeed
		for f := 0; f < h.params.Funcs; f++ {
			g := t*h.params.Funcs + f
			v := (dist.Dot(h.proj.Row(g), q) + h.offs[g]) / h.params.Width
			key = mixKey(key, floor64(v))
		}
		tb := &h.tables[t]
		s, ok := tb.slotOf[key]
		if !ok {
			continue
		}
		for _, id := range tb.flat[tb.offsets[s]:tb.offsets[s+1]] {
			if !seen[id] {
				seen[id] = true
				buf = append(buf, id)
			}
		}
	}
	for _, id := range buf[start:] {
		seen[id] = false
	}
	return buf
}

// Len returns the number of hashed points.
func (h *Hasher) Len() int { return h.ds.Len() }

// BucketStats returns the number of buckets and the largest bucket size
// across all tables; useful for diagnosing collision behaviour.
func (h *Hasher) BucketStats() (buckets, maxSize int) {
	for t := range h.tables {
		tb := &h.tables[t]
		buckets += len(tb.offsets) - 1
		for s := 0; s+1 < len(tb.offsets); s++ {
			if size := int(tb.offsets[s+1] - tb.offsets[s]); size > maxSize {
				maxSize = size
			}
		}
	}
	return buckets, maxSize
}
