// Package lsh implements p-stable locality-sensitive hashing (Datar et al.,
// SoCG 2004) for Euclidean space: h(x) = ⌊(a·x + b)/W⌋ with a drawn from a
// standard Gaussian (2-stable) distribution and b uniform in [0, W). It
// backs the DBSCAN-LSH baseline.
package lsh

import (
	"encoding/binary"
	"errors"
	"math/rand"

	"dbsvec/internal/vec"
)

// Params configures a hash structure.
type Params struct {
	// Tables is the number of independent hash tables L.
	Tables int
	// Funcs is the number of concatenated hash functions k per table.
	Funcs int
	// Width is the quantization width W, typically set near the query
	// radius.
	Width float64
	// Seed drives the random projections.
	Seed int64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.Tables < 1 || p.Funcs < 1 {
		return errors.New("lsh: Tables and Funcs must be at least 1")
	}
	if p.Width <= 0 {
		return errors.New("lsh: Width must be positive")
	}
	return nil
}

// Hasher holds L tables of buckets over a dataset.
type Hasher struct {
	ds     *vec.Dataset
	params Params
	// projections: per table, per function, a d-vector a and offset b.
	proj    [][]projection
	buckets []map[string][]int32 // one bucket map per table
}

type projection struct {
	a []float64
	b float64
}

// New builds the hash tables over every point of ds.
func New(ds *vec.Dataset, p Params) (*Hasher, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := ds.Dim()
	h := &Hasher{ds: ds, params: p}
	h.proj = make([][]projection, p.Tables)
	h.buckets = make([]map[string][]int32, p.Tables)
	for t := 0; t < p.Tables; t++ {
		h.proj[t] = make([]projection, p.Funcs)
		for f := 0; f < p.Funcs; f++ {
			a := make([]float64, d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			h.proj[t][f] = projection{a: a, b: rng.Float64() * p.Width}
		}
		h.buckets[t] = make(map[string][]int32)
	}
	sig := make([]int64, p.Funcs)
	for i := 0; i < ds.Len(); i++ {
		pt := ds.Point(i)
		for t := 0; t < p.Tables; t++ {
			h.signature(t, pt, sig)
			k := sigKey(sig)
			h.buckets[t][k] = append(h.buckets[t][k], int32(i))
		}
	}
	return h, nil
}

// signature writes the k-slot signature of pt under table t into sig.
func (h *Hasher) signature(t int, pt []float64, sig []int64) {
	for f := 0; f < h.params.Funcs; f++ {
		pr := &h.proj[t][f]
		v := (vec.Dot(pr.a, pt) + pr.b) / h.params.Width
		sig[f] = floor64(v)
	}
}

func floor64(v float64) int64 {
	i := int64(v)
	if v < 0 && float64(i) != v {
		i--
	}
	return i
}

func sigKey(sig []int64) string {
	b := make([]byte, 8*len(sig))
	for i, s := range sig {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(s))
	}
	return string(b)
}

// Candidates appends the ids of every point sharing at least one bucket
// with q across all tables to buf (deduplicated via the seen scratch slice,
// which must have length >= Len() and be false-initialized; it is reset
// before return).
func (h *Hasher) Candidates(q []float64, buf []int32, seen []bool) []int32 {
	sig := make([]int64, h.params.Funcs)
	start := len(buf)
	for t := 0; t < h.params.Tables; t++ {
		h.signature(t, q, sig)
		for _, id := range h.buckets[t][sigKey(sig)] {
			if !seen[id] {
				seen[id] = true
				buf = append(buf, id)
			}
		}
	}
	for _, id := range buf[start:] {
		seen[id] = false
	}
	return buf
}

// Len returns the number of hashed points.
func (h *Hasher) Len() int { return h.ds.Len() }

// BucketStats returns the number of buckets and the largest bucket size
// across all tables; useful for diagnosing collision behaviour.
func (h *Hasher) BucketStats() (buckets, maxSize int) {
	for _, tb := range h.buckets {
		buckets += len(tb)
		for _, ids := range tb {
			if len(ids) > maxSize {
				maxSize = len(ids)
			}
		}
	}
	return buckets, maxSize
}
