// Package eval provides the cluster-quality metrics used in the paper's
// evaluation: pairwise recall against a reference clustering (Lulli et al.,
// PVLDB 2016 — Section III-C of the paper), silhouette compactness
// (Rousseeuw 1987, "C" in Table IV) and Davies–Bouldin separation (Davies &
// Bouldin 1979, "S" in Table IV).
package eval

import (
	"errors"
	"math"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

// ErrLengthMismatch is returned when two labelings cover different numbers
// of points.
var ErrLengthMismatch = errors.New("eval: labelings have different lengths")

// PairRecall returns the ratio of point pairs co-clustered by the reference
// clustering that are also co-clustered by the candidate clustering. Noise
// points form no pairs. A reference with no co-clustered pairs yields
// recall 1 by convention.
//
// The computation runs in O(n) using the contingency decomposition
// Σ_{ij} C(n_ij, 2) / Σ_i C(a_i, 2), where n_ij counts points in reference
// cluster i and candidate cluster j, and a_i the size of reference cluster
// i.
func PairRecall(reference, candidate *cluster.Result) (float64, error) {
	if len(reference.Labels) != len(candidate.Labels) {
		return 0, ErrLengthMismatch
	}
	refSizes := make(map[int32]int64)
	joint := make(map[[2]int32]int64)
	for idx, rl := range reference.Labels {
		if rl < 0 {
			continue
		}
		refSizes[rl]++
		cl := candidate.Labels[idx]
		if cl < 0 {
			continue
		}
		joint[[2]int32{rl, cl}]++
	}
	var refPairs, bothPairs int64
	for _, c := range refSizes {
		refPairs += c * (c - 1) / 2
	}
	for _, c := range joint {
		bothPairs += c * (c - 1) / 2
	}
	if refPairs == 0 {
		return 1, nil
	}
	return float64(bothPairs) / float64(refPairs), nil
}

// PairPrecision returns the ratio of point pairs co-clustered by the
// candidate that are also co-clustered by the reference. For DBSVEC the
// paper's Theorem 1 (every DBSVEC cluster is a subset of a DBSCAN cluster)
// predicts precision 1 up to border-point ties. A candidate with no
// co-clustered pairs yields 1 by convention.
func PairPrecision(reference, candidate *cluster.Result) (float64, error) {
	// Precision(ref, cand) is recall with the roles swapped.
	return PairRecall(candidate, reference)
}

// PairF1 returns the harmonic mean of pair recall and pair precision.
func PairF1(reference, candidate *cluster.Result) (float64, error) {
	r, err := PairRecall(reference, candidate)
	if err != nil {
		return 0, err
	}
	p, err := PairPrecision(reference, candidate)
	if err != nil {
		return 0, err
	}
	if r+p == 0 {
		return 0, nil
	}
	return 2 * r * p / (r + p), nil
}

// Silhouette returns the mean silhouette coefficient over all clustered
// points (noise excluded): for each point, (b−a)/max(a,b) with a the mean
// intra-cluster distance and b the smallest mean distance to another
// cluster. Higher is better; the paper's Table IV reports it as
// "Compactness". Runs in O(n²·d); sample large inputs before calling.
//
// Points in singleton clusters contribute 0, matching the scikit-learn
// convention. Results with fewer than 2 clusters return 0.
func Silhouette(ds *vec.Dataset, res *cluster.Result) (float64, error) {
	if ds.Len() != len(res.Labels) {
		return 0, ErrLengthMismatch
	}
	if res.Clusters < 2 {
		return 0, nil
	}
	sizes := res.Sizes()
	n := ds.Len()
	var total float64
	var counted int
	sums := make([]float64, res.Clusters)
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		li := res.Labels[i]
		if li < 0 {
			continue
		}
		if sizes[li] <= 1 {
			counted++ // silhouette 0 for singletons
			continue
		}
		for c := range sums {
			sums[c] = 0
		}
		ds.SqDistsToAll(ds.Point(i), dists)
		for j := 0; j < n; j++ {
			lj := res.Labels[j]
			if lj < 0 || j == i {
				continue
			}
			sums[lj] += math.Sqrt(dists[j])
		}
		a := sums[li] / float64(sizes[li]-1)
		b := math.Inf(1)
		for c := range sums {
			if int32(c) == li || sizes[c] == 0 {
				continue
			}
			if m := sums[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			counted++
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0, nil
	}
	return total / float64(counted), nil
}

// DaviesBouldin returns the Davies–Bouldin index: the mean over clusters of
// the worst ratio (s_i + s_j)/d(c_i, c_j), where s is the mean distance of
// members to their centroid and d the centroid separation. Lower is better;
// the paper's Table IV reports it as "Separation". Noise is excluded.
// Results with fewer than 2 clusters return 0.
func DaviesBouldin(ds *vec.Dataset, res *cluster.Result) (float64, error) {
	if ds.Len() != len(res.Labels) {
		return 0, ErrLengthMismatch
	}
	members := res.Members()
	// Drop empty clusters defensively.
	var cents [][]float64
	var scatter []float64
	var scratch []float64
	for _, ids := range members {
		if len(ids) == 0 {
			continue
		}
		c := ds.Mean(ids)
		if cap(scratch) < len(ids) {
			scratch = make([]float64, len(ids))
		}
		row := scratch[:len(ids)]
		ds.SqDistsTo(c, ids, row)
		var s float64
		for _, d2 := range row {
			s += math.Sqrt(d2)
		}
		cents = append(cents, c)
		scatter = append(scatter, s/float64(len(ids)))
	}
	k := len(cents)
	if k < 2 {
		return 0, nil
	}
	var sum float64
	for i := 0; i < k; i++ {
		worst := 0.0
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			sep := vec.Dist(cents[i], cents[j])
			if sep == 0 {
				continue // coincident centroids: skip the degenerate pair
			}
			if r := (scatter[i] + scatter[j]) / sep; r > worst {
				worst = r
			}
		}
		sum += worst
	}
	return sum / float64(k), nil
}

// AdjustedRandIndex returns the ARI between two clusterings: 1 for
// identical partitions, ~0 for independent ones, negative for worse than
// chance. Noise points are treated as singleton clusters so that results
// with noise remain comparable. Runs in O(n) via the contingency table.
func AdjustedRandIndex(a, b *cluster.Result) (float64, error) {
	if len(a.Labels) != len(b.Labels) {
		return 0, ErrLengthMismatch
	}
	n := len(a.Labels)
	if n == 0 {
		return 1, nil
	}
	// Remap noise to unique negative singleton ids.
	key := func(l int32, idx int) int32 {
		if l >= 0 {
			return l
		}
		return int32(-(idx + 1))
	}
	aSizes := map[int32]int64{}
	bSizes := map[int32]int64{}
	joint := map[[2]int32]int64{}
	for i := 0; i < n; i++ {
		ka := key(a.Labels[i], i)
		kb := key(b.Labels[i], i)
		aSizes[ka]++
		bSizes[kb]++
		joint[[2]int32{ka, kb}]++
	}
	choose2 := func(c int64) float64 { return float64(c) * float64(c-1) / 2 }
	var sumJoint, sumA, sumB float64
	for _, c := range joint {
		sumJoint += choose2(c)
	}
	for _, c := range aSizes {
		sumA += choose2(c)
	}
	for _, c := range bSizes {
		sumB += choose2(c)
	}
	total := choose2(int64(n))
	if total == 0 {
		return 1, nil
	}
	expected := sumA * sumB / total
	maxIdx := (sumA + sumB) / 2
	if maxIdx == expected {
		return 1, nil // both partitions trivial (all singletons or one block)
	}
	return (sumJoint - expected) / (maxIdx - expected), nil
}

// NoiseAgreement returns the fraction of points whose noise/clustered
// status agrees between two results.
func NoiseAgreement(a, b *cluster.Result) (float64, error) {
	if len(a.Labels) != len(b.Labels) {
		return 0, ErrLengthMismatch
	}
	if len(a.Labels) == 0 {
		return 1, nil
	}
	agree := 0
	for i := range a.Labels {
		if (a.Labels[i] == cluster.Noise) == (b.Labels[i] == cluster.Noise) {
			agree++
		}
	}
	return float64(agree) / float64(len(a.Labels)), nil
}
