package eval

import (
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

func res(labels ...int32) *cluster.Result {
	max := int32(-1)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	return &cluster.Result{Labels: labels, Clusters: int(max) + 1}
}

func TestPairRecallIdentical(t *testing.T) {
	a := res(0, 0, 1, 1, cluster.Noise)
	r, err := PairRecall(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("recall = %v, want 1", r)
	}
}

func TestPairRecallSplit(t *testing.T) {
	// Reference: one cluster of 4 (6 pairs). Candidate splits it 2+2
	// (2 pairs kept).
	ref := res(0, 0, 0, 0)
	cand := res(0, 0, 1, 1)
	r, err := PairRecall(ref, cand)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 / 6.0; math.Abs(r-want) > 1e-12 {
		t.Errorf("recall = %v, want %v", r, want)
	}
}

func TestPairRecallNoiseMismatch(t *testing.T) {
	// Candidate turns one clustered point into noise: pairs involving it
	// are lost.
	ref := res(0, 0, 0)
	cand := &cluster.Result{Labels: []int32{0, 0, cluster.Noise}, Clusters: 1}
	r, err := PairRecall(ref, cand)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1.0 / 3.0; math.Abs(r-want) > 1e-12 {
		t.Errorf("recall = %v, want %v", r, want)
	}
}

func TestPairRecallMergeIsPerfect(t *testing.T) {
	// Candidate merging two reference clusters keeps all reference pairs:
	// recall 1 (precision would drop, but the metric is recall).
	ref := res(0, 0, 1, 1)
	cand := res(0, 0, 0, 0)
	r, err := PairRecall(ref, cand)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("recall = %v, want 1", r)
	}
}

func TestPairRecallNoPairs(t *testing.T) {
	ref := &cluster.Result{Labels: []int32{cluster.Noise, cluster.Noise}}
	cand := res(0, 1)
	r, err := PairRecall(ref, cand)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Errorf("recall with no reference pairs = %v, want 1", r)
	}
}

func TestPairRecallLengthMismatch(t *testing.T) {
	if _, err := PairRecall(res(0), res(0, 0)); err == nil {
		t.Error("want length mismatch error")
	}
}

// Brute-force cross-check of the contingency computation.
func TestPairRecallAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 50; iter++ {
		n := 2 + rng.Intn(40)
		ref := make([]int32, n)
		cand := make([]int32, n)
		for i := 0; i < n; i++ {
			ref[i] = int32(rng.Intn(4)) - 1 // -1..2
			cand[i] = int32(rng.Intn(4)) - 1
		}
		a := &cluster.Result{Labels: ref}
		b := &cluster.Result{Labels: cand}
		got, err := PairRecall(a, b)
		if err != nil {
			t.Fatal(err)
		}
		var refPairs, both int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if ref[i] >= 0 && ref[i] == ref[j] {
					refPairs++
					if cand[i] >= 0 && cand[i] == cand[j] {
						both++
					}
				}
			}
		}
		want := 1.0
		if refPairs > 0 {
			want = float64(both) / float64(refPairs)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("iter %d: got %v want %v (ref=%v cand=%v)", iter, got, want, ref, cand)
		}
	}
}

func TestPairPrecisionAndF1(t *testing.T) {
	// Candidate splits a reference cluster: recall drops, precision stays 1.
	ref := res(0, 0, 0, 0)
	cand := res(0, 0, 1, 1)
	p, err := PairPrecision(ref, cand)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("precision after split = %v, want 1", p)
	}
	// Candidate merges two reference clusters: precision drops, recall 1.
	ref2 := res(0, 0, 1, 1)
	cand2 := res(0, 0, 0, 0)
	p2, _ := PairPrecision(ref2, cand2)
	if want := 2.0 / 6.0; math.Abs(p2-want) > 1e-12 {
		t.Errorf("precision after merge = %v, want %v", p2, want)
	}
	f1, err := PairF1(ref2, cand2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 1 * (2.0 / 6.0) / (1 + 2.0/6.0); math.Abs(f1-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", f1, want)
	}
	// Identical: everything 1.
	if f1, _ := PairF1(ref, ref); f1 != 1 {
		t.Errorf("F1 identical = %v", f1)
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mk := func(sep float64) (*vec.Dataset, *cluster.Result) {
		rows := make([][]float64, 0, 200)
		labels := make([]int32, 0, 200)
		for i := 0; i < 100; i++ {
			rows = append(rows, []float64{rng.NormFloat64(), rng.NormFloat64()})
			labels = append(labels, 0)
		}
		for i := 0; i < 100; i++ {
			rows = append(rows, []float64{sep + rng.NormFloat64(), rng.NormFloat64()})
			labels = append(labels, 1)
		}
		ds, _ := vec.FromRows(rows)
		return ds, &cluster.Result{Labels: labels, Clusters: 2}
	}
	dsFar, rFar := mk(50)
	dsNear, rNear := mk(1)
	sFar, err := Silhouette(dsFar, rFar)
	if err != nil {
		t.Fatal(err)
	}
	sNear, err := Silhouette(dsNear, rNear)
	if err != nil {
		t.Fatal(err)
	}
	if sFar < 0.8 {
		t.Errorf("well separated silhouette %v, want > 0.8", sFar)
	}
	if sNear >= sFar {
		t.Errorf("overlapping silhouette %v should be below separated %v", sNear, sFar)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	one := &cluster.Result{Labels: []int32{0, 0}, Clusters: 1}
	if s, err := Silhouette(ds, one); err != nil || s != 0 {
		t.Errorf("single cluster silhouette = %v, %v; want 0, nil", s, err)
	}
	mismatch := &cluster.Result{Labels: []int32{0}}
	if _, err := Silhouette(ds, mismatch); err == nil {
		t.Error("want length mismatch error")
	}
}

func TestDaviesBouldinOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mk := func(sep float64) (*vec.Dataset, *cluster.Result) {
		rows := make([][]float64, 0, 120)
		labels := make([]int32, 0, 120)
		for c := 0; c < 3; c++ {
			for i := 0; i < 40; i++ {
				rows = append(rows, []float64{float64(c) * sep * 1.0, float64(c)*sep + rng.NormFloat64()})
				labels = append(labels, int32(c))
			}
		}
		ds, _ := vec.FromRows(rows)
		return ds, &cluster.Result{Labels: labels, Clusters: 3}
	}
	dsFar, rFar := mk(60)
	dsNear, rNear := mk(4)
	far, err := DaviesBouldin(dsFar, rFar)
	if err != nil {
		t.Fatal(err)
	}
	near, err := DaviesBouldin(dsNear, rNear)
	if err != nil {
		t.Fatal(err)
	}
	if far >= near {
		t.Errorf("DB far=%v should be lower than near=%v", far, near)
	}
	if far < 0 {
		t.Errorf("DB index must be non-negative: %v", far)
	}
}

func TestDaviesBouldinDegenerate(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	one := &cluster.Result{Labels: []int32{0, 0}, Clusters: 1}
	if v, err := DaviesBouldin(ds, one); err != nil || v != 0 {
		t.Errorf("single cluster DB = %v, %v; want 0, nil", v, err)
	}
}

func TestAdjustedRandIndex(t *testing.T) {
	a := res(0, 0, 1, 1, 2, 2)
	ident, err := AdjustedRandIndex(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ident-1) > 1e-12 {
		t.Errorf("ARI of identical partitions = %v, want 1", ident)
	}
	// Relabeled but identical partition.
	b := res(2, 2, 0, 0, 1, 1)
	if v, _ := AdjustedRandIndex(a, b); math.Abs(v-1) > 1e-12 {
		t.Errorf("ARI invariant to relabeling, got %v", v)
	}
	// A merge should reduce ARI below 1 but keep it positive.
	merged := res(0, 0, 0, 0, 1, 1)
	v, _ := AdjustedRandIndex(a, merged)
	if v >= 1 || v <= 0 {
		t.Errorf("ARI after merge = %v, want (0,1)", v)
	}
	// Independence: a partition of all-singletons vs all-one-block.
	ones := res(0, 0, 0, 0, 0, 0)
	singles := res(0, 1, 2, 3, 4, 5)
	if v, _ := AdjustedRandIndex(ones, singles); v > 0.2 {
		t.Errorf("ARI of unrelated partitions = %v, want ~0", v)
	}
	// Empty inputs agree trivially.
	if v, _ := AdjustedRandIndex(&cluster.Result{}, &cluster.Result{}); v != 1 {
		t.Errorf("empty ARI = %v", v)
	}
	if _, err := AdjustedRandIndex(a, res(0)); err == nil {
		t.Error("want length mismatch error")
	}
}

func TestAdjustedRandIndexNoiseAsSingletons(t *testing.T) {
	// Two results differing only in noise placement must not score 1.
	a := &cluster.Result{Labels: []int32{0, 0, cluster.Noise, cluster.Noise}}
	b := &cluster.Result{Labels: []int32{0, 0, 0, 0}}
	v, err := AdjustedRandIndex(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if v >= 1 {
		t.Errorf("ARI = %v, want < 1 when noise differs", v)
	}
}

func TestNoiseAgreement(t *testing.T) {
	a := &cluster.Result{Labels: []int32{0, cluster.Noise, 1, cluster.Noise}}
	b := &cluster.Result{Labels: []int32{5, cluster.Noise, cluster.Noise, cluster.Noise}}
	v, err := NoiseAgreement(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.75) > 1e-12 {
		t.Errorf("agreement = %v, want 0.75", v)
	}
	empty := &cluster.Result{}
	if v, err := NoiseAgreement(empty, empty); err != nil || v != 1 {
		t.Errorf("empty agreement = %v, %v", v, err)
	}
	if _, err := NoiseAgreement(a, empty); err == nil {
		t.Error("want length mismatch error")
	}
}
