// Package unionfind provides a disjoint-set forest with union by rank and
// path halving. DBSVEC uses it to implement the paper's Merge operation
// (Algorithm 2 line 11, Algorithm 3 line 13): cluster ids are union-find
// elements, and sub-cluster merges become O(α(n)) unions instead of
// relabeling scans.
package unionfind

// DSU is a disjoint-set forest over elements 0..n-1. The zero value is an
// empty forest; use New or Grow.
type DSU struct {
	parent []int32
	rank   []int8
	sets   int
}

// New returns a forest of n singleton sets.
func New(n int) *DSU {
	d := &DSU{}
	d.Grow(n)
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Sets returns the current number of disjoint sets.
func (d *DSU) Sets() int { return d.sets }

// Grow extends the forest to n elements, adding singletons.
func (d *DSU) Grow(n int) {
	for len(d.parent) < n {
		d.parent = append(d.parent, int32(len(d.parent)))
		d.rank = append(d.rank, 0)
		d.sets++
	}
}

// Add appends one new singleton element and returns its id.
func (d *DSU) Add() int32 {
	id := int32(len(d.parent))
	d.parent = append(d.parent, id)
	d.rank = append(d.rank, 0)
	d.sets++
	return id
}

// Find returns the canonical representative of x, compressing paths.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets containing a and b and reports whether a merge
// actually happened (false when they were already joined).
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	d.sets--
	return true
}

// UnionBatch merges every (pairs[2i], pairs[2i+1]) edge and returns the
// number of merges that actually happened. The shard boundary merge feeds
// thousands of halo agreement edges through this in one call; batching skips
// the per-call function overhead of repeated Union on the hot path while
// producing the identical partition (unions commute for the final sets).
func (d *DSU) UnionBatch(pairs []int32) int {
	merged := 0
	for i := 0; i+1 < len(pairs); i += 2 {
		if d.Union(pairs[i], pairs[i+1]) {
			merged++
		}
	}
	return merged
}

// Same reports whether a and b belong to the same set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// Canonical returns a dense relabeling: for every element, the 0-based index
// of its set in first-seen order. Useful for turning union-find state into
// final cluster ids.
func (d *DSU) Canonical() []int32 {
	out := make([]int32, len(d.parent))
	next := int32(0)
	remap := make(map[int32]int32, d.sets)
	for i := range d.parent {
		r := d.Find(int32(i))
		c, ok := remap[r]
		if !ok {
			c = next
			remap[r] = c
			next++
		}
		out[i] = c
	}
	return out
}
