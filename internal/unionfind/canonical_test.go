package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestCanonicalOrderInvariant pins the property the shard boundary merge
// depends on: Canonical() is a function of the resulting partition only.
// Feeding the same edge set in any permutation — and with either edge
// orientation — must yield the exact same dense labeling, because labels are
// assigned in first-seen element order (element 0 always gets label 0, the
// next element not in 0's set gets 1, …), independent of which representative
// the union picked internally.
func TestCanonicalOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(80)
		edges := make([][2]int32, 1+rng.Intn(120))
		for i := range edges {
			edges[i] = [2]int32{int32(rng.Intn(n)), int32(rng.Intn(n))}
		}

		base := New(n)
		for _, e := range edges {
			base.Union(e[0], e[1])
		}
		want := base.Canonical()

		for trial := 0; trial < 8; trial++ {
			perm := rng.Perm(len(edges))
			d := New(n)
			for _, pi := range perm {
				a, b := edges[pi][0], edges[pi][1]
				if rng.Intn(2) == 0 {
					a, b = b, a // orientation must not matter either
				}
				d.Union(a, b)
			}
			got := d.Canonical()
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
			if d.Sets() != base.Sets() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestUnionBatchMatchesUnion: the batch entry point produces the identical
// partition and merge count as element-wise Union, and tolerates an odd
// trailing element (ignored, not an index panic).
func TestUnionBatchMatchesUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 50
	pairs := make([]int32, 0, 2*70)
	for i := 0; i < 70; i++ {
		pairs = append(pairs, int32(rng.Intn(n)), int32(rng.Intn(n)))
	}

	a, b := New(n), New(n)
	wantMerged := 0
	for i := 0; i < len(pairs); i += 2 {
		if a.Union(pairs[i], pairs[i+1]) {
			wantMerged++
		}
	}
	if got := b.UnionBatch(pairs); got != wantMerged {
		t.Fatalf("UnionBatch merged %d, element-wise Union merged %d", got, wantMerged)
	}
	ca, cb := a.Canonical(), b.Canonical()
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("partition diverged at element %d", i)
		}
	}

	odd := New(4)
	if got := odd.UnionBatch([]int32{0, 1, 2}); got != 1 {
		t.Fatalf("odd-length batch merged %d, want 1 (trailing element ignored)", got)
	}
}

// BenchmarkUnionBatch measures the batched merge path on a halo-merge-shaped
// workload: a large element space with clustered, mostly-redundant edges.
func BenchmarkUnionBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	pairs := make([]int32, 0, 2*4*n)
	for i := 0; i < 4*n; i++ {
		base := int32(rng.Intn(n))
		other := base + int32(rng.Intn(16)) - 8
		if other < 0 || other >= int32(n) {
			other = base
		}
		pairs = append(pairs, base, other)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(n)
		d.UnionBatch(pairs)
	}
}
