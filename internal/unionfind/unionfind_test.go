package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasics(t *testing.T) {
	d := New(5)
	if d.Sets() != 5 || d.Len() != 5 {
		t.Fatalf("fresh forest: sets=%d len=%d", d.Sets(), d.Len())
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("repeat union should be a no-op")
	}
	if !d.Same(0, 1) || d.Same(0, 2) {
		t.Error("Same wrong after union")
	}
	if d.Sets() != 4 {
		t.Errorf("sets = %d, want 4", d.Sets())
	}
}

func TestAddGrow(t *testing.T) {
	d := New(0)
	id := d.Add()
	if id != 0 || d.Len() != 1 {
		t.Fatalf("Add returned %d, len %d", id, d.Len())
	}
	d.Grow(10)
	if d.Len() != 10 || d.Sets() != 10 {
		t.Fatalf("after Grow: len=%d sets=%d", d.Len(), d.Sets())
	}
	d.Grow(5) // shrink request is a no-op
	if d.Len() != 10 {
		t.Error("Grow must never shrink")
	}
}

func TestCanonical(t *testing.T) {
	d := New(6)
	d.Union(0, 3)
	d.Union(3, 5)
	d.Union(1, 2)
	c := d.Canonical()
	if c[0] != c[3] || c[3] != c[5] {
		t.Errorf("0,3,5 should share a label: %v", c)
	}
	if c[1] != c[2] || c[1] == c[0] {
		t.Errorf("1,2 should share a distinct label: %v", c)
	}
	if c[4] == c[0] || c[4] == c[1] {
		t.Errorf("4 should be alone: %v", c)
	}
	// Labels must be dense starting at 0.
	max := int32(0)
	for _, v := range c {
		if v > max {
			max = v
		}
	}
	if int(max)+1 != d.Sets() {
		t.Errorf("labels not dense: max=%d sets=%d", max, d.Sets())
	}
}

// Property: transitivity — after arbitrary unions, Same is an equivalence
// relation consistent with an independently tracked naive partition.
func TestAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		d := New(n)
		naive := make([]int, n)
		for i := range naive {
			naive[i] = i
		}
		relabel := func(from, to int) {
			for i := range naive {
				if naive[i] == from {
					naive[i] = to
				}
			}
		}
		for op := 0; op < 120; op++ {
			a, b := int32(rng.Intn(n)), int32(rng.Intn(n))
			merged := d.Union(a, b)
			if merged != (naive[a] != naive[b]) {
				return false
			}
			relabel(naive[b], naive[a])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(int32(i), int32(j)) != (naive[i] == naive[j]) {
					return false
				}
			}
		}
		// Sets() must equal distinct labels in naive.
		seen := map[int]bool{}
		for _, v := range naive {
			seen[v] = true
		}
		return d.Sets() == len(seen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUnionFind(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 10000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := New(n)
		for j := 0; j < n; j++ {
			d.Union(int32(rng.Intn(n)), int32(rng.Intn(n)))
		}
	}
}
