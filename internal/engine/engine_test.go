package engine

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

func testDataset(t *testing.T, n, d int, seed int64) *vec.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64() * 100
	}
	ds, err := vec.NewDataset(coords, d)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNeighborhoodsMatchSequential(t *testing.T) {
	ds := testDataset(t, 400, 3, 1)
	lin := index.NewLinear(ds)
	ids := []int32{0, 7, 399, 123, 7} // duplicates allowed
	for _, workers := range []int{1, 2, 8} {
		eng := New(ds, lin, 9, workers)
		hoods, err := eng.Neighborhoods(context.Background(), ids)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(hoods) != len(ids) {
			t.Fatalf("workers=%d: %d hoods for %d ids", workers, len(hoods), len(ids))
		}
		for i, id := range ids {
			want := lin.RangeQuery(ds.Point(int(id)), 9, nil)
			if len(hoods[i]) != len(want) {
				t.Fatalf("workers=%d id %d: got %d ids want %d", workers, id, len(hoods[i]), len(want))
			}
			for j := range want {
				if hoods[i][j] != want[j] {
					t.Fatalf("workers=%d id %d: got %v want %v", workers, id, hoods[i], want)
				}
			}
		}
	}
}

func TestArenaReuseAcrossRounds(t *testing.T) {
	ds := testDataset(t, 300, 2, 2)
	eng := New(ds, index.NewLinear(ds), 8, 4)
	lin := index.NewLinear(ds)
	// Varying round sizes exercise arena growth and shrink paths.
	rounds := [][]int32{{1, 2, 3, 4, 5, 6, 7, 8}, {9}, {10, 11, 12}, {13, 14, 15, 16, 17, 18, 19, 20, 21, 22}}
	for _, ids := range rounds {
		hoods, err := eng.Neighborhoods(context.Background(), ids)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			want := lin.RangeQuery(ds.Point(int(id)), 8, nil)
			if len(hoods[i]) != len(want) {
				t.Fatalf("round ids %v, id %d: got %d want %d", ids, id, len(hoods[i]), len(want))
			}
		}
		counts, err := eng.Counts(context.Background(), ids, 5)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ids {
			want := lin.RangeCount(ds.Point(int(id)), 8, 5)
			if counts[i] != want {
				t.Fatalf("count id %d = %d, want %d", id, counts[i], want)
			}
		}
	}
}

func TestAllNeighborhoodsOwned(t *testing.T) {
	ds := testDataset(t, 250, 2, 3)
	eng := New(ds, index.NewLinear(ds), 7, 0)
	hoods, err := eng.AllNeighborhoodsOwned(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(hoods) != ds.Len() {
		t.Fatalf("got %d hoods, want %d", len(hoods), ds.Len())
	}
	// Owned results must survive later engine calls.
	snapshot := append([]int32(nil), hoods[0]...)
	if _, err := eng.Neighborhoods(context.Background(), []int32{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	for i := range snapshot {
		if hoods[0][i] != snapshot[i] {
			t.Fatal("owned neighborhood mutated by a later engine call")
		}
	}
	counts, err := eng.AllCountsOwned(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range hoods {
		want := len(h)
		if want > 4 {
			want = 4
		}
		if counts[i] < want {
			t.Fatalf("count %d = %d, want >= %d", i, counts[i], want)
		}
	}
}

// cancellingIndex cancels the run's context after a fixed number of
// queries, simulating user cancellation arriving mid-batch.
type cancellingIndex struct {
	index.Index
	cancel context.CancelFunc
	after  int64
	seen   atomic.Int64
}

func (c *cancellingIndex) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if c.seen.Add(1) == c.after {
		c.cancel()
	}
	return c.Index.RangeQuery(q, eps, buf)
}

func TestCancellationInsideBatch(t *testing.T) {
	ds := testDataset(t, 500, 2, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ci := &cancellingIndex{Index: index.NewLinear(ds), cancel: cancel, after: 20}
	eng := New(ds, ci, 8, 4)
	_, err := eng.AllNeighborhoodsOwned(ctx)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if seen := ci.seen.Load(); seen >= int64(ds.Len()) {
		t.Errorf("batch ran to completion (%d queries) despite cancellation", seen)
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Errorf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d, want >= 1", got)
	}
}

func TestPhaseTimes(t *testing.T) {
	var p PhaseTimes
	sw := StartPhase()
	time.Sleep(time.Millisecond)
	sw.Stop(&p.Init)
	sw = StartPhase()
	sw.Stop(&p.Expand)
	if p.Init <= 0 {
		t.Errorf("Init = %v, want > 0", p.Init)
	}
	if p.Total() != p.Init+p.Expand+p.Verify {
		t.Errorf("Total mismatch")
	}
}
