package engine

import "sync"

// ForRanges partitions [0, n) into at most workers contiguous ranges of
// approximately equal total weight and runs fn once per non-empty range,
// concurrently when more than one range results. weight(i) is the relative
// cost of index i; nil selects uniform weights. The partition depends only
// on (workers, n, weight) — never on scheduling — so callers whose ranges
// write disjoint output produce bit-identical results for every worker
// count. This is the compute-side sibling of the query fan-out in
// internal/index: the SVDD kernel-matrix fill uses it to parallelize the
// dense triangular fill, whose per-row cost shrinks linearly with the row
// index (hence the weights).
//
// fn is called with half-open bounds [lo, hi). workers <= 1 or n <= 0 runs
// everything on the calling goroutine.
func ForRanges(workers, n int, weight func(i int) int64, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	bounds := splitWeighted(n, workers, weight)
	if len(bounds) == 2 {
		fn(bounds[0], bounds[1])
		return
	}
	var wg sync.WaitGroup
	for r := 0; r+1 < len(bounds); r++ {
		lo, hi := bounds[r], bounds[r+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn(lo, hi)
		}()
	}
	wg.Wait()
}

// splitWeighted returns parts+1 monotone boundaries over [0, n): range r is
// [bounds[r], bounds[r+1]). Ranges are chosen greedily so each carries
// roughly total/parts weight; empty trailing ranges are dropped, so every
// returned range is non-empty.
func splitWeighted(n, parts int, weight func(i int) int64) []int {
	var total int64
	if weight == nil {
		total = int64(n)
	} else {
		for i := 0; i < n; i++ {
			total += weight(i)
		}
	}
	if total <= 0 {
		// Degenerate weights: fall back to uniform splitting.
		total = int64(n)
		weight = nil
	}
	bounds := make([]int, 1, parts+1)
	bounds[0] = 0
	var acc int64
	next := 1
	for i := 0; i < n && next < parts; i++ {
		if weight == nil {
			acc++
		} else {
			acc += weight(i)
		}
		// Close the current range once it reaches its proportional share of
		// the remaining weight.
		if acc*int64(parts) >= total*int64(next) {
			bounds = append(bounds, i+1)
			next++
		}
	}
	if bounds[len(bounds)-1] < n {
		bounds = append(bounds, n)
	}
	return bounds
}
