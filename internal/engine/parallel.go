package engine

import (
	"sync"
	"sync/atomic"

	"dbsvec/internal/fault"
)

// ForRanges partitions [0, n) into at most workers contiguous ranges of
// approximately equal total weight and runs fn once per non-empty range,
// concurrently when more than one range results. weight(i) is the relative
// cost of index i; nil selects uniform weights. The partition depends only
// on (workers, n, weight) — never on scheduling — so callers whose ranges
// write disjoint output produce bit-identical results for every worker
// count. This is the compute-side sibling of the query fan-out in
// internal/index: the SVDD kernel-matrix fill uses it to parallelize the
// dense triangular fill, whose per-row cost shrinks linearly with the row
// index (hence the weights).
//
// fn is called with half-open bounds [lo, hi). workers <= 1 or n <= 0 runs
// everything on the calling goroutine.
func ForRanges(workers, n int, weight func(i int) int64, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	bounds := splitWeighted(n, workers, weight)
	if len(bounds) == 2 {
		fn(bounds[0], bounds[1])
		return
	}
	// Every spawned range recovers its own panic; after the barrier the
	// panic of the lowest range index — a pure function of the partition,
	// not of scheduling — is re-panicked on the caller as a typed
	// *WorkerPanicError, so an outer recover boundary sees one deterministic
	// error instead of a crashed process.
	var wg sync.WaitGroup
	panics := make([]*fault.WorkerPanicError, len(bounds)-1)
	for r := 0; r+1 < len(bounds); r++ {
		r, lo, hi := r, bounds[r], bounds[r+1]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[r] = fault.AsWorkerPanic(v)
				}
			}()
			fault.PanicNow(fault.WorkerPanic)
			fn(lo, hi)
		}()
	}
	wg.Wait()
	for _, pe := range panics {
		if pe != nil {
			panic(pe)
		}
	}
}

// Ranges returns the deterministic boundaries ForRanges(workers, n, nil, fn)
// would use: bounds[r], bounds[r+1] delimit range r, half-open. Exposed for
// callers that fan work out themselves but must merge per-range results in
// a fixed order (e.g. the grid's parallel bounds pass).
func Ranges(workers, n int) []int {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return []int{0, n}
	}
	return splitWeighted(n, workers, nil)
}

// Tasks is a bounded spawner for recursive divide-and-conquer work such as
// the parallel index builds: at a fork the caller offers one branch to Try
// and descends into the other itself, so at most `workers` goroutines
// (including the caller) ever run. Because the work partition of those
// builds is fixed before any task runs — node layouts and id ranges are
// precomputed, never negotiated between goroutines — the result is
// bit-identical for every worker count; Tasks only decides *where* a
// subtree is built, never *what* it contains.
//
// A nil *Tasks is valid and never spawns, which is the serial path.
//
// Panics inside spawned tasks are recovered and re-panicked on the caller by
// Wait as one typed *WorkerPanicError (the earliest spawned panicking task
// wins), so a failing subtree build surfaces at the caller's recover
// boundary instead of killing the process.
type Tasks struct {
	sem chan struct{}
	wg  sync.WaitGroup

	spawnSeq atomic.Int64
	mu       sync.Mutex
	panicSeq int64
	panicErr *fault.WorkerPanicError
}

// NewTasks returns a spawner allowing up to workers concurrent goroutines
// including the caller; workers <= 1 returns nil (everything runs inline).
func NewTasks(workers int) *Tasks {
	if workers <= 1 {
		return nil
	}
	return &Tasks{sem: make(chan struct{}, workers-1)}
}

// Try runs fn on a new goroutine when a worker slot is free and reports
// whether it did; on false the caller must run fn inline. Spawned tasks may
// themselves call Try.
func (g *Tasks) Try(fn func()) bool {
	if g == nil {
		return false
	}
	select {
	case g.sem <- struct{}{}:
	default:
		return false
	}
	g.wg.Add(1)
	seq := g.spawnSeq.Add(1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				pe := fault.AsWorkerPanic(v)
				g.mu.Lock()
				if g.panicErr == nil || seq < g.panicSeq {
					g.panicErr, g.panicSeq = pe, seq
				}
				g.mu.Unlock()
			}
			<-g.sem
			g.wg.Done()
		}()
		fault.PanicNow(fault.WorkerPanic)
		fn()
	}()
	return true
}

// Wait blocks until every spawned task has finished, then re-panicks the
// recorded worker panic (if any) on the calling goroutine. Safe on nil.
func (g *Tasks) Wait() {
	if g == nil {
		return
	}
	g.wg.Wait()
	g.mu.Lock()
	pe := g.panicErr
	g.panicErr = nil
	g.mu.Unlock()
	if pe != nil {
		panic(pe)
	}
}

// splitWeighted returns parts+1 monotone boundaries over [0, n): range r is
// [bounds[r], bounds[r+1]). Ranges are chosen greedily so each carries
// roughly total/parts weight; empty trailing ranges are dropped, so every
// returned range is non-empty.
func splitWeighted(n, parts int, weight func(i int) int64) []int {
	var total int64
	if weight == nil {
		total = int64(n)
	} else {
		for i := 0; i < n; i++ {
			total += weight(i)
		}
	}
	if total <= 0 {
		// Degenerate weights: fall back to uniform splitting.
		total = int64(n)
		weight = nil
	}
	bounds := make([]int, 1, parts+1)
	bounds[0] = 0
	var acc int64
	next := 1
	for i := 0; i < n && next < parts; i++ {
		if weight == nil {
			acc++
		} else {
			acc += weight(i)
		}
		// Close the current range once it reaches its proportional share of
		// the remaining weight.
		if acc*int64(parts) >= total*int64(next) {
			bounds = append(bounds, i+1)
			next++
		}
	}
	if bounds[len(bounds)-1] < n {
		bounds = append(bounds, n)
	}
	return bounds
}
