package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Every index of [0, n) must be visited exactly once, for any worker count
// and weight function.
func TestForRangesCoversExactlyOnce(t *testing.T) {
	weights := []func(i int) int64{
		nil,
		func(i int) int64 { return 1 },
		func(i int) int64 { return int64(i) }, // ascending
		func(i int) int64 { return int64(100 - i) }, // descending (triangular fill shape)
		func(i int) int64 { return int64(i % 3) },   // zeros interleaved
		func(i int) int64 { return 0 },              // all-zero: uniform fallback
	}
	for _, n := range []int{0, 1, 2, 7, 64, 100} {
		for _, workers := range []int{1, 2, 3, 8, 200} {
			for wi, weight := range weights {
				var mu sync.Mutex
				visits := make([]int, n)
				ForRanges(workers, n, weight, func(lo, hi int) {
					if lo >= hi {
						t.Errorf("n=%d workers=%d weight#%d: empty range [%d,%d)", n, workers, wi, lo, hi)
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						visits[i]++
					}
					mu.Unlock()
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d workers=%d weight#%d: index %d visited %d times", n, workers, wi, i, v)
					}
				}
			}
		}
	}
}

// The partition must depend only on (workers, n, weight), never on
// scheduling: repeated runs collect identical range sets.
func TestForRangesDeterministicPartition(t *testing.T) {
	weight := func(i int) int64 { return int64(512 - i) }
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		got := map[[2]int]bool{}
		ForRanges(8, 512, weight, func(lo, hi int) {
			mu.Lock()
			got[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return got
	}
	first := collect()
	for r := 0; r < 5; r++ {
		if got := collect(); !reflect.DeepEqual(got, first) {
			t.Fatalf("partition changed across runs: %v vs %v", got, first)
		}
	}
}

// Weighted splitting must roughly balance total weight across ranges: for
// the triangular fill workload no range may carry more than twice the ideal
// share (the greedy split can overshoot by at most one heavy row).
func TestForRangesWeightedBalance(t *testing.T) {
	n, workers := 1024, 8
	weight := func(i int) int64 { return int64(n - i - 1) }
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	ideal := total / int64(workers)
	var mu sync.Mutex
	var ranges [][2]int
	ForRanges(workers, n, weight, func(lo, hi int) {
		mu.Lock()
		ranges = append(ranges, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(ranges) < 2 {
		t.Fatalf("expected a multi-range partition, got %v", ranges)
	}
	for _, r := range ranges {
		var w int64
		for i := r[0]; i < r[1]; i++ {
			w += weight(i)
		}
		if w > 2*ideal {
			t.Errorf("range %v carries weight %d, more than 2x the ideal share %d", r, w, ideal)
		}
	}
}

// Disjoint range writes must be race-free and ordering-independent: filling
// a slice in parallel matches the serial fill exactly.
func TestForRangesDisjointWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4096
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()
	}
	fill := func(workers int) []float64 {
		out := make([]float64, n)
		ForRanges(workers, n, nil, func(lo, hi int) {
			copy(out[lo:hi], want[lo:hi])
		})
		return out
	}
	for _, workers := range []int{1, 2, 8, 16} {
		if got := fill(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel fill diverged", workers)
		}
	}
}

// Ranges must agree with the partition ForRanges executes, cover [0, n)
// exactly, and stay monotone for every (workers, n) pair.
func TestRangesBoundaries(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for _, workers := range []int{0, 1, 2, 3, 8, 2000} {
			bounds := Ranges(workers, n)
			if n == 0 {
				if bounds != nil {
					t.Fatalf("Ranges(%d, 0) = %v, want nil", workers, bounds)
				}
				continue
			}
			if bounds[0] != 0 || bounds[len(bounds)-1] != n {
				t.Fatalf("Ranges(%d, %d) = %v: does not span [0, %d)", workers, n, bounds, n)
			}
			for r := 0; r+1 < len(bounds); r++ {
				if bounds[r] >= bounds[r+1] {
					t.Fatalf("Ranges(%d, %d) = %v: range %d empty or non-monotone", workers, n, bounds, r)
				}
			}
			if got := len(bounds) - 1; workers >= 1 && got > workers {
				t.Fatalf("Ranges(%d, %d) produced %d ranges", workers, n, got)
			}
		}
	}
}

// Tasks must run every offered closure exactly once — whether spawned or
// declined — and Wait must not return before spawned work finishes.
func TestTasksRunsAllWork(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		g := NewTasks(workers)
		const jobs = 200
		var ran [jobs]int32
		var wg sync.WaitGroup
		for i := 0; i < jobs; i++ {
			i := i
			fn := func() { atomic.AddInt32(&ran[i], 1) }
			wg.Add(1)
			if !g.Try(func() { defer wg.Done(); fn() }) {
				fn()
				wg.Done()
			}
		}
		wg.Wait()
		g.Wait()
		for i, v := range ran {
			if v != 1 {
				t.Fatalf("workers=%d: job %d ran %d times", workers, i, v)
			}
		}
	}
}

// At most `workers` goroutines (caller included) may run concurrently; the
// serial nil spawner must never spawn at all.
func TestTasksBoundsConcurrency(t *testing.T) {
	if g := NewTasks(1); g != nil {
		t.Fatal("NewTasks(1) should be nil (serial)")
	}
	var nilTasks *Tasks
	if nilTasks.Try(func() { t.Error("nil Tasks must not spawn") }) {
		t.Fatal("nil Tasks reported a spawn")
	}
	nilTasks.Wait() // must not panic

	workers := 4
	g := NewTasks(workers)
	var cur, peak int32
	var body func(depth int)
	body = func(depth int) {
		// Count only the active section: inline recursion below happens after
		// the decrement, so cur tracks goroutines, not nesting depth.
		c := atomic.AddInt32(&cur, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if c <= p || atomic.CompareAndSwapInt32(&peak, p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&cur, -1)
		if depth < 3 {
			// Nested Try from spawned tasks must stay within the bound.
			var wg sync.WaitGroup
			wg.Add(1)
			if !g.Try(func() { defer wg.Done(); body(depth + 1) }) {
				body(depth + 1)
				wg.Done()
			}
			wg.Wait()
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		if !g.Try(func() { defer wg.Done(); body(0) }) {
			body(0)
			wg.Done()
		}
	}
	wg.Wait()
	g.Wait()
	// The caller plus workers-1 spawned goroutines.
	if peak > int32(workers) {
		t.Fatalf("observed %d concurrent tasks, bound is %d", peak, workers)
	}
}

func TestSVDDTimes(t *testing.T) {
	var acc SVDDTimes
	acc.Add(SVDDTimes{Fill: time.Millisecond, Solve: 2 * time.Millisecond, Finish: 3 * time.Millisecond})
	acc.Add(SVDDTimes{Fill: time.Millisecond})
	if acc.Fill != 2*time.Millisecond || acc.Solve != 2*time.Millisecond || acc.Finish != 3*time.Millisecond {
		t.Errorf("accumulation wrong: %+v", acc)
	}
	if acc.Total() != 7*time.Millisecond {
		t.Errorf("Total = %v, want 7ms", acc.Total())
	}
}
