package engine

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"
)

// Every index of [0, n) must be visited exactly once, for any worker count
// and weight function.
func TestForRangesCoversExactlyOnce(t *testing.T) {
	weights := []func(i int) int64{
		nil,
		func(i int) int64 { return 1 },
		func(i int) int64 { return int64(i) }, // ascending
		func(i int) int64 { return int64(100 - i) }, // descending (triangular fill shape)
		func(i int) int64 { return int64(i % 3) },   // zeros interleaved
		func(i int) int64 { return 0 },              // all-zero: uniform fallback
	}
	for _, n := range []int{0, 1, 2, 7, 64, 100} {
		for _, workers := range []int{1, 2, 3, 8, 200} {
			for wi, weight := range weights {
				var mu sync.Mutex
				visits := make([]int, n)
				ForRanges(workers, n, weight, func(lo, hi int) {
					if lo >= hi {
						t.Errorf("n=%d workers=%d weight#%d: empty range [%d,%d)", n, workers, wi, lo, hi)
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						visits[i]++
					}
					mu.Unlock()
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d workers=%d weight#%d: index %d visited %d times", n, workers, wi, i, v)
					}
				}
			}
		}
	}
}

// The partition must depend only on (workers, n, weight), never on
// scheduling: repeated runs collect identical range sets.
func TestForRangesDeterministicPartition(t *testing.T) {
	weight := func(i int) int64 { return int64(512 - i) }
	collect := func() map[[2]int]bool {
		var mu sync.Mutex
		got := map[[2]int]bool{}
		ForRanges(8, 512, weight, func(lo, hi int) {
			mu.Lock()
			got[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return got
	}
	first := collect()
	for r := 0; r < 5; r++ {
		if got := collect(); !reflect.DeepEqual(got, first) {
			t.Fatalf("partition changed across runs: %v vs %v", got, first)
		}
	}
}

// Weighted splitting must roughly balance total weight across ranges: for
// the triangular fill workload no range may carry more than twice the ideal
// share (the greedy split can overshoot by at most one heavy row).
func TestForRangesWeightedBalance(t *testing.T) {
	n, workers := 1024, 8
	weight := func(i int) int64 { return int64(n - i - 1) }
	var total int64
	for i := 0; i < n; i++ {
		total += weight(i)
	}
	ideal := total / int64(workers)
	var mu sync.Mutex
	var ranges [][2]int
	ForRanges(workers, n, weight, func(lo, hi int) {
		mu.Lock()
		ranges = append(ranges, [2]int{lo, hi})
		mu.Unlock()
	})
	if len(ranges) < 2 {
		t.Fatalf("expected a multi-range partition, got %v", ranges)
	}
	for _, r := range ranges {
		var w int64
		for i := r[0]; i < r[1]; i++ {
			w += weight(i)
		}
		if w > 2*ideal {
			t.Errorf("range %v carries weight %d, more than 2x the ideal share %d", r, w, ideal)
		}
	}
}

// Disjoint range writes must be race-free and ordering-independent: filling
// a slice in parallel matches the serial fill exactly.
func TestForRangesDisjointWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 4096
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()
	}
	fill := func(workers int) []float64 {
		out := make([]float64, n)
		ForRanges(workers, n, nil, func(lo, hi int) {
			copy(out[lo:hi], want[lo:hi])
		})
		return out
	}
	for _, workers := range []int{1, 2, 8, 16} {
		if got := fill(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: parallel fill diverged", workers)
		}
	}
}

func TestSVDDTimes(t *testing.T) {
	var acc SVDDTimes
	acc.Add(SVDDTimes{Fill: time.Millisecond, Solve: 2 * time.Millisecond, Finish: 3 * time.Millisecond})
	acc.Add(SVDDTimes{Fill: time.Millisecond})
	if acc.Fill != 2*time.Millisecond || acc.Solve != 2*time.Millisecond || acc.Finish != 3*time.Millisecond {
		t.Errorf("accumulation wrong: %+v", acc)
	}
	if acc.Total() != 7*time.Millisecond {
		t.Errorf("Total = %v, want 7ms", acc.Total())
	}
}
