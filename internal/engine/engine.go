// Package engine is the shared query-execution engine under DBSVEC and the
// baseline algorithms. The paper's cost model (Section III-D) makes range
// queries the dominant term, and every phase of every algorithm in this
// repository issues them in batches with no ordering dependency inside a
// batch — a round's core-support-vector set, a noise list's pending core
// tests, parallel DBSCAN's phase-1 materialization. The engine treats each
// such batch as the schedulable unit: it fans the queries of a batch across
// a configurable worker pool via the index layer's BatchIndex capability
// and returns results in query-index order, so callers that merge results
// sequentially produce bit-identical output for every worker count.
package engine

import (
	"context"
	"runtime"
	"time"

	"dbsvec/internal/fault"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

// WorkerPanicError is a panic recovered from a worker goroutine spawned by
// ForRanges, Tasks or the index batch fan-out, converted to a typed error.
// It is defined in internal/fault (the leaf package both the engine and the
// index layer can import) and aliased here as the engine is the public face
// of the worker machinery.
type WorkerPanicError = fault.WorkerPanicError

// Engine schedules batches of ε-range queries over one dataset and index.
// An Engine is owned by a single algorithm run; its batch methods reuse
// internal arenas, so results of a call are valid only until the next call
// (the *Owned variants hand ownership to the caller instead).
type Engine struct {
	ds      *vec.Dataset
	idx     index.BatchIndex
	eps     float64
	workers int

	hoods  [][]int32 // neighborhood arena reused across rounds
	counts []int     // count arena reused across rounds
}

// New builds an engine over ds serving queries from idx with the given
// ε radius. workers <= 0 selects GOMAXPROCS; workers == 1 executes batches
// on the calling goroutine.
func New(ds *vec.Dataset, idx index.Index, eps float64, workers int) *Engine {
	return &Engine{ds: ds, idx: index.Batch(idx), eps: eps, workers: ResolveWorkers(workers)}
}

// ResolveWorkers maps the Workers option convention (<= 0: all CPUs) to a
// concrete worker count.
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Workers returns the resolved worker count.
func (e *Engine) Workers() int { return e.workers }

// Index returns the engine's (batch-upgraded) index for callers that also
// issue individual queries.
func (e *Engine) Index() index.Index { return e.idx }

// idQueries addresses the points of ids as a query batch; coordinates are
// views into the dataset, so no scratch is needed.
func (e *Engine) idQueries(ids []int32) index.Queries {
	return index.Queries{N: len(ids), At: func(i int, _ []float64) []float64 { return e.ds.Point(int(ids[i])) }}
}

// allQueries addresses every dataset point as a query batch.
func (e *Engine) allQueries() index.Queries {
	return index.Queries{N: e.ds.Len(), At: func(i int, _ []float64) []float64 { return e.ds.Point(i) }}
}

// Neighborhoods materializes the ε-neighborhood of each id, in id order.
// The returned slices live in the engine's arena and are valid until the
// next batch call. ctx is honored inside the batch.
func (e *Engine) Neighborhoods(ctx context.Context, ids []int32) ([][]int32, error) {
	if err := fault.Error(fault.IndexQueryError); err != nil {
		return nil, err
	}
	hoods, err := e.idx.BatchRangeQuery(ctx, e.idQueries(ids), e.eps, e.workers, e.hoods)
	if err != nil {
		return nil, err
	}
	e.hoods = hoods
	return hoods, nil
}

// AllNeighborhoodsOwned materializes the ε-neighborhood of every dataset
// point; the caller owns the result (nothing is reused).
func (e *Engine) AllNeighborhoodsOwned(ctx context.Context) ([][]int32, error) {
	if err := fault.Error(fault.IndexQueryError); err != nil {
		return nil, err
	}
	return e.idx.BatchRangeQuery(ctx, e.allQueries(), e.eps, e.workers, nil)
}

// Counts runs a counting query per id with the given early-exit limit
// (RangeCount semantics), in id order. The returned slice lives in the
// engine's arena and is valid until the next batch call.
func (e *Engine) Counts(ctx context.Context, ids []int32, limit int) ([]int, error) {
	if err := fault.Error(fault.IndexQueryError); err != nil {
		return nil, err
	}
	counts, err := e.idx.BatchRangeCount(ctx, e.idQueries(ids), e.eps, limit, e.workers, e.counts)
	if err != nil {
		return nil, err
	}
	e.counts = counts
	return counts, nil
}

// AllCountsOwned runs a counting query for every dataset point; the caller
// owns the result.
func (e *Engine) AllCountsOwned(ctx context.Context, limit int) ([]int, error) {
	if err := fault.Error(fault.IndexQueryError); err != nil {
		return nil, err
	}
	return e.idx.BatchRangeCount(ctx, e.allQueries(), e.eps, limit, e.workers, nil)
}

// PhaseTimes is the unified per-phase wall-clock breakdown reported by the
// algorithms running on the engine. The mapping is:
//
//	DBSVEC          Init = seed sweep, Expand = SV expansion rounds,
//	                Verify = noise verification;
//	parallel DBSCAN Init = phase-1 neighborhood materialization,
//	                Expand = core-graph union, Verify = border attachment.
//
// Wall-clock varies run to run; determinism comparisons must ignore it.
type PhaseTimes struct {
	Init   time.Duration
	Expand time.Duration
	Verify time.Duration
}

// Total is the summed phase wall-clock.
func (p PhaseTimes) Total() time.Duration { return p.Init + p.Expand + p.Verify }

// SVDDTimes is the per-stage wall-clock breakdown of SVDD training,
// accumulated across every training round of a run: Fill covers the kernel
// matrix construction (including the adaptive-weight pass), Solve the SMO
// optimization, Finish the radius/score extraction. Like PhaseTimes it is
// wall-clock and must be ignored by determinism comparisons. Rounds and
// NotConverged are deterministic counters riding along: Rounds counts the
// trainings accumulated, NotConverged the subset that exhausted MaxIter
// before reaching the KKT tolerance (previously indistinguishable from
// converged models — see svdd.ErrNotConverged).
type SVDDTimes struct {
	Fill   time.Duration
	Solve  time.Duration
	Finish time.Duration

	Rounds       int
	NotConverged int
}

// Total is the summed training wall-clock.
func (s SVDDTimes) Total() time.Duration { return s.Fill + s.Solve + s.Finish }

// Add accumulates another training's stage times and counters.
func (s *SVDDTimes) Add(o SVDDTimes) {
	s.Fill += o.Fill
	s.Solve += o.Solve
	s.Finish += o.Finish
	s.Rounds += o.Rounds
	s.NotConverged += o.NotConverged
}

// Stopwatch accumulates phase wall-clock with the pattern
//
//	sw := engine.StartPhase()
//	... phase work ...
//	sw.Stop(&stats.Phases.Init)
type Stopwatch struct{ t0 time.Time }

// StartPhase starts a stopwatch.
func StartPhase() Stopwatch { return Stopwatch{t0: time.Now()} }

// Stop adds the elapsed time to *acc.
func (s Stopwatch) Stop(acc *time.Duration) { *acc += time.Since(s.t0) }
