package engine

import (
	"context"
	"errors"
	"testing"

	"dbsvec/internal/fault"
	"dbsvec/internal/index"
	"dbsvec/internal/leakcheck"
	"dbsvec/internal/vec"
)

func TestForRangesPanicTyped(t *testing.T) {
	leakcheck.Check(t)
	defer func() {
		v := recover()
		pe, ok := v.(*fault.WorkerPanicError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *fault.WorkerPanicError", v, v)
		}
		if pe.Value != "boom-2" {
			t.Errorf("Value = %v, want the lowest-range panic boom-2", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Error("panic lost its stack")
		}
	}()
	// Two ranges panic; the one covering the lower indices must win
	// deterministically regardless of scheduling.
	ForRanges(4, 1000, nil, func(lo, hi int) {
		if lo >= 500 {
			panic("boom-high")
		}
		if lo >= 250 {
			panic("boom-2")
		}
	})
	t.Fatal("ForRanges did not re-panic")
}

func TestForRangesSerialPanicPassesThrough(t *testing.T) {
	defer func() {
		if v := recover(); v != "serial" {
			t.Fatalf("recovered %v, want the raw serial panic", v)
		}
	}()
	ForRanges(1, 10, nil, func(lo, hi int) { panic("serial") })
}

func TestTasksPanicSurfacesAtWait(t *testing.T) {
	leakcheck.Check(t)
	g := NewTasks(4)
	for i := 0; i < 8; i++ {
		i := i
		fn := func() {
			if i == 0 {
				panic("task-zero")
			}
		}
		if !g.Try(fn) {
			fn()
		}
	}
	defer func() {
		v := recover()
		pe, ok := v.(*fault.WorkerPanicError)
		if !ok {
			t.Fatalf("recovered %v (%T), want *fault.WorkerPanicError", v, v)
		}
		if pe.Value != "task-zero" {
			t.Errorf("Value = %v, want task-zero", pe.Value)
		}
		// A second Wait must not replay the consumed panic.
		g.Wait()
	}()
	g.Wait()
	t.Fatal("Wait did not re-panic")
}

func TestBatchEntryInjectedError(t *testing.T) {
	rows := [][]float64{{0, 0}, {1, 0}, {0, 1}, {5, 5}}
	ds, _ := vec.FromRows(rows)
	eng := New(ds, index.NewLinear(ds), 2, 2)

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.IndexQueryError, fault.Always()))
	defer restore()
	if _, err := eng.Neighborhoods(context.Background(), []int32{0, 1}); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("Neighborhoods err = %v, want injected", err)
	}
	if _, err := eng.Counts(context.Background(), []int32{0, 1}, 2); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("Counts err = %v, want injected", err)
	}
	if _, err := eng.AllNeighborhoodsOwned(context.Background()); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("AllNeighborhoodsOwned err = %v, want injected", err)
	}
	if _, err := eng.AllCountsOwned(context.Background(), 2); !errors.Is(err, fault.ErrInjected) {
		t.Errorf("AllCountsOwned err = %v, want injected", err)
	}
}

func TestBatchWorkerPanicBecomesError(t *testing.T) {
	leakcheck.Check(t)
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = []float64{float64(i), 0}
	}
	ds, _ := vec.FromRows(rows)
	eng := New(ds, index.NewLinear(ds), 1.5, 4)

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.WorkerPanic, fault.Nth(1)))
	defer restore()
	ids := make([]int32, 64)
	for i := range ids {
		ids[i] = int32(i)
	}
	_, err := eng.Neighborhoods(context.Background(), ids)
	var wp *fault.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *fault.WorkerPanicError", err)
	}
}
