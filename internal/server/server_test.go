package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dbsvec"
	"dbsvec/internal/data"
	"dbsvec/internal/fault"
	"dbsvec/internal/leakcheck"
)

// trainedModel clusters a small blob dataset and returns the retained model
// plus the training points (handy as known-assignable queries).
func trainedModel(t testing.TB, n, d, k int, seed int64) (*dbsvec.Model, *dbsvec.Dataset) {
	t.Helper()
	raw := data.Blobs(n, d, k, 2, 100, 0.05, seed)
	ds, err := dbsvec.FromFlat(append([]float64(nil), raw.Coords()...), d)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dbsvec.Cluster(ds, dbsvec.Options{Eps: 3, MinPts: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model()
	if m == nil || m.Snapshots() == 0 {
		t.Fatal("training retained no model")
	}
	return m, ds
}

// newTestServer wires a Server with one model under httptest and returns
// the server, the base URL and a client. Cleanup closes everything before
// leakcheck runs.
func newTestServer(t testing.TB, cfg Config, m *dbsvec.Model) (*Server, string, *http.Client) {
	t.Helper()
	s := New(cfg)
	if m != nil {
		s.SetModel("m", m)
	}
	ts := httptest.NewServer(s.Handler())
	client := &http.Client{Timeout: 15 * time.Second}
	t.Cleanup(func() {
		client.CloseIdleConnections()
		ts.Close()
	})
	return s, ts.URL, client
}

func postJSON(t testing.TB, client *http.Client, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, out, resp.Header
}

func decodeAssign(t testing.TB, body []byte) assignResponse {
	t.Helper()
	var ar assignResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("assign response %q: %v", body, err)
	}
	return ar
}

func decodeError(t testing.TB, body []byte) errorInfo {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error response %q: %v", body, err)
	}
	return eb.Error
}

func checkLabels(t testing.TB, labels []int32, n, clusters int) {
	t.Helper()
	if len(labels) != n {
		t.Fatalf("%d labels for %d points", len(labels), n)
	}
	for i, l := range labels {
		if l != -1 && (l < 0 || int(l) >= clusters) {
			t.Fatalf("label[%d] = %d outside [-1, %d)", i, l, clusters)
		}
	}
}

// TestAssignSingleAndBatch: the happy path — batch labels match the library
// Assign bit-for-bit, the single-point form works, and metrics move.
func TestAssignSingleAndBatch(t *testing.T) {
	m, ds := trainedModel(t, 1200, 2, 3, 5)
	_, url, client := newTestServer(t, Config{}, m)

	points := make([][]float64, 50)
	for i := range points {
		points[i] = append([]float64(nil), ds.Point(i)...)
	}
	want, err := m.Assign(mustDataset(t, points), 1)
	if err != nil {
		t.Fatal(err)
	}

	status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"points": points})
	if status != http.StatusOK {
		t.Fatalf("batch assign: status %d body %s", status, body)
	}
	ar := decodeAssign(t, body)
	if ar.Model != "m" || ar.Clusters != m.Clusters() || ar.Degraded {
		t.Fatalf("response meta drifted: %+v", ar)
	}
	for i := range want {
		if ar.Labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, ar.Labels[i], want[i])
		}
	}

	status, body, _ = postJSON(t, client, url+"/v1/assign", map[string]any{"point": points[0]})
	if status != http.StatusOK {
		t.Fatalf("single assign: status %d body %s", status, body)
	}
	if ar := decodeAssign(t, body); len(ar.Labels) != 1 || ar.Labels[0] != want[0] {
		t.Fatalf("single assign labels %v, want [%d]", ar.Labels, want[0])
	}
}

func constPoints(n, d int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, d)
	}
	return rows
}

func mustDataset(t testing.TB, rows [][]float64) *dbsvec.Dataset {
	t.Helper()
	ds, err := dbsvec.NewDataset(rows)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestAssignValidation: malformed bodies, missing/unknown models, shape
// mismatches and over-capacity batches come back as their typed codes.
func TestAssignValidation(t *testing.T) {
	m, _ := trainedModel(t, 800, 2, 2, 7)
	_, url, client := newTestServer(t, Config{Capacity: 16}, m)

	for _, tc := range []struct {
		name   string
		body   any
		status int
		code   string
	}{
		{"no points", map[string]any{}, 400, CodeInvalidParams},
		{"both forms", map[string]any{"point": []float64{1, 2}, "points": [][]float64{{1, 2}}}, 400, CodeInvalidParams},
		{"wrong dim", map[string]any{"points": [][]float64{{1, 2, 3}}}, 400, CodeInvalidParams},
		{"ragged", map[string]any{"points": [][]float64{{1, 2}, {3}}}, 400, CodeInvalidParams},
		{"unknown model", map[string]any{"model": "nope", "point": []float64{1, 2}}, 404, CodeUnknownModel},
		{"over capacity", map[string]any{"points": constPoints(17, 2)}, 413, CodeBatchTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := postJSON(t, client, url+"/v1/assign", tc.body)
			if status != tc.status {
				t.Fatalf("status %d, want %d (body %s)", status, tc.status, body)
			}
			if ei := decodeError(t, body); ei.Code != tc.code {
				t.Fatalf("code %q, want %q", ei.Code, tc.code)
			}
		})
	}
	// Unparseable JSON.
	resp, err := client.Post(url+"/v1/assign", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("malformed JSON: status %d", resp.StatusCode)
	}
}

// TestBurstAdmission is the load acceptance test: with admission capacity C
// and slow handling, a burst of 4×C concurrent full-cost requests yields
// zero hung connections — every response is a valid assignment, a typed 429
// with Retry-After, or a typed deadline error — and the server emerges
// healthy. leakcheck pins that no request goroutines linger.
func TestBurstAdmission(t *testing.T) {
	leakcheck.Check(t)
	m, ds := trainedModel(t, 1000, 2, 3, 11)
	const capacity = 8
	cfg := Config{
		Capacity:       capacity,
		MaxQueue:       2,
		MaxQueueWait:   100 * time.Millisecond,
		DefaultTimeout: 2 * time.Second,
		Workers:        1,
	}
	_, url, client := newTestServer(t, cfg, m)

	// Slow handling makes every admitted request hold its seat ~50ms, so
	// the burst genuinely contends for admission.
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.HandlerSlow, fault.Always()))
	defer restore()

	batch := make([][]float64, capacity) // full-capacity cost: admissions serialize
	for i := range batch {
		batch[i] = append([]float64(nil), ds.Point(i)...)
	}

	const burst = 4 * capacity
	type outcome struct {
		status int
		body   []byte
		header http.Header
	}
	outcomes := make([]outcome, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, body, header := postJSON(t, client, url+"/v1/assign", map[string]any{"points": batch})
			outcomes[i] = outcome{status, body, header}
		}()
	}
	wg.Wait()

	counts := map[int]int{}
	for i, o := range outcomes {
		counts[o.status]++
		switch o.status {
		case http.StatusOK:
			ar := decodeAssign(t, o.body)
			checkLabels(t, ar.Labels, capacity, m.Clusters())
		case http.StatusTooManyRequests:
			if o.header.Get("Retry-After") == "" {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
			if ei := decodeError(t, o.body); ei.Code != CodeOverloaded {
				t.Errorf("request %d: 429 code %q", i, ei.Code)
			}
		case http.StatusGatewayTimeout:
			if ei := decodeError(t, o.body); ei.Code != CodeDeadlineExceeded {
				t.Errorf("request %d: 504 code %q", i, ei.Code)
			}
		default:
			t.Errorf("request %d: unexpected status %d (body %s)", i, o.status, o.body)
		}
	}
	if counts[http.StatusOK] == 0 {
		t.Error("burst produced no successful assignment")
	}
	if counts[http.StatusTooManyRequests] == 0 {
		t.Error("burst produced no admission shed; overload never engaged")
	}
	t.Logf("burst outcomes: %v", counts)

	// The server must be healthy after the burst.
	restore()
	status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": batch[0]})
	if status != http.StatusOK {
		t.Fatalf("post-burst assign: status %d body %s", status, body)
	}
}

// TestDeadlinePropagation: a request deadline shorter than the (injected)
// handler stall comes back as a typed 504 within the timeout's order of
// magnitude — never a hung connection.
func TestDeadlinePropagation(t *testing.T) {
	leakcheck.Check(t)
	m, ds := trainedModel(t, 800, 2, 2, 13)
	_, url, client := newTestServer(t, Config{}, m)

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.HandlerSlow, fault.Always()))
	defer restore()

	start := time.Now()
	status, body, _ := postJSON(t, client, url+"/v1/assign",
		map[string]any{"point": ds.Point(0), "timeout_ms": 10})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline response took %s", elapsed)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", status, body)
	}
	if ei := decodeError(t, body); ei.Code != CodeDeadlineExceeded {
		t.Fatalf("code %q, want %q", ei.Code, CodeDeadlineExceeded)
	}
}

// TestAssignPanicContained: a panic injected inside the assign fan-out is
// contained to a typed 500 worker_panic response and the server keeps
// serving.
func TestAssignPanicContained(t *testing.T) {
	leakcheck.Check(t)
	m, ds := trainedModel(t, 800, 2, 2, 17)
	_, url, client := newTestServer(t, Config{}, m)

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.AssignPanic, fault.Nth(1)))
	status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	restore()
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 (body %s)", status, body)
	}
	if ei := decodeError(t, body); ei.Code != CodeWorkerPanic {
		t.Fatalf("code %q, want %q", ei.Code, CodeWorkerPanic)
	}

	status, body, _ = postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	if status != http.StatusOK {
		t.Fatalf("post-panic assign: status %d body %s", status, body)
	}
}

// TestGracefulDegradation: sustained shed pressure flips the server into
// degraded mode — responses carry Degraded: true with valid labels — and
// the mode decays away once admissions run immediate again.
func TestGracefulDegradation(t *testing.T) {
	m, ds := trainedModel(t, 1000, 2, 3, 19)
	cfg := Config{Capacity: 64, MaxQueue: 0, DegradeAfter: 2}
	s, url, client := newTestServer(t, cfg, m)

	// Two injected load spikes = two pressured admissions: enters degraded.
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.LoadSpike, fault.Always()))
	for i := 0; i < 2; i++ {
		status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(i)})
		if status != http.StatusTooManyRequests {
			t.Fatalf("spike %d: status %d body %s", i, status, body)
		}
	}
	restore()
	if !s.DegradedMode() {
		t.Fatal("two pressured admissions did not engage degraded mode")
	}

	// First clean request: still degraded (score 2 → 1), served on the
	// nearest-SV path with a Degraded marker and valid labels.
	status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"points": [][]float64{ds.Point(0), ds.Point(1)}})
	if status != http.StatusOK {
		t.Fatalf("degraded assign: status %d body %s", status, body)
	}
	ar := decodeAssign(t, body)
	if !ar.Degraded {
		t.Fatal("first post-spike response not marked degraded")
	}
	checkLabels(t, ar.Labels, 2, m.Clusters())

	// Second clean request decays the score to 0: mode exits.
	status, body, _ = postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	if status != http.StatusOK {
		t.Fatalf("recovery assign: status %d body %s", status, body)
	}
	status, body, _ = postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	if status != http.StatusOK {
		t.Fatalf("recovered assign: status %d body %s", status, body)
	}
	if ar := decodeAssign(t, body); ar.Degraded {
		t.Fatal("degraded mode did not decay after immediate admissions")
	}
}

// TestModelEndpointsAndHotSwap: list/inspect/404/delete, hot-swap under
// concurrent assigns (responses always consistent with one of the two
// models), malformed upload rejected without touching the registry.
func TestModelEndpointsAndHotSwap(t *testing.T) {
	leakcheck.Check(t)
	mA, ds := trainedModel(t, 1000, 2, 3, 23)
	mB, _ := trainedModel(t, 900, 2, 2, 29)
	s, url, client := newTestServer(t, Config{}, mA)

	// List + inspect.
	resp, err := client.Get(url + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Models []modelInfo `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Models) != 1 || list.Models[0].Name != "m" || list.Models[0].Clusters != mA.Clusters() {
		t.Fatalf("model list %+v", list.Models)
	}
	resp, err = client.Get(url + "/v1/models/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("inspect unknown: status %d", resp.StatusCode)
	}

	// Hot-swap m → mB while assigns hammer the endpoint: every response is
	// consistent with exactly one of the two models.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
				if status != http.StatusOK {
					errs <- fmt.Sprintf("assign during swap: status %d body %s", status, body)
					return
				}
				ar := decodeAssign(t, body)
				if ar.Clusters != mA.Clusters() && ar.Clusters != mB.Clusters() {
					errs <- fmt.Sprintf("response from a torn model: clusters %d", ar.Clusters)
					return
				}
			}
		}()
	}
	var mbBytes bytes.Buffer
	if err := mB.Save(&mbBytes); err != nil {
		t.Fatal(err)
	}
	putReq, err := http.NewRequest(http.MethodPut, url+"/v1/models/m", bytes.NewReader(mbBytes.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	putResp, err := client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusOK {
		t.Fatalf("hot-swap PUT: status %d", putResp.StatusCode)
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}

	// Registry now serves mB.
	status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	if status != http.StatusOK || decodeAssign(t, body).Clusters != mB.Clusters() {
		t.Fatalf("post-swap assign: status %d body %s", status, body)
	}

	// Malformed upload: typed 400, registry untouched.
	putReq, _ = http.NewRequest(http.MethodPut, url+"/v1/models/m", strings.NewReader("not a model"))
	putResp, err = client.Do(putReq)
	if err != nil {
		t.Fatal(err)
	}
	badBody, _ := io.ReadAll(putResp.Body)
	putResp.Body.Close()
	if putResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed upload: status %d", putResp.StatusCode)
	}
	if ei := decodeError(t, badBody); ei.Code != CodeMalformedModel {
		t.Fatalf("malformed upload code %q", ei.Code)
	}
	if got := s.registry().byName["m"]; got == nil || got.Clusters() != mB.Clusters() {
		t.Fatal("failed upload disturbed the registry")
	}

	// Delete → readyz goes unready.
	delReq, _ := http.NewRequest(http.MethodDelete, url+"/v1/models/m", nil)
	delResp, err := client.Do(delReq)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	resp, err = client.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with no models: status %d", resp.StatusCode)
	}
}

// TestDrainLifecycle: BeginDrain flips readiness, rejects new work with the
// typed draining error, lets the in-flight request finish, and flushes
// queued admissions.
func TestDrainLifecycle(t *testing.T) {
	leakcheck.Check(t)
	m, ds := trainedModel(t, 800, 2, 2, 31)
	s, url, client := newTestServer(t, Config{Capacity: 1, MaxQueue: 4, MaxQueueWait: 5 * time.Second}, m)

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.HandlerSlow, fault.Always()))
	defer restore()

	// One in-flight slow request holding the whole capacity...
	inflight := make(chan outcomePair, 1)
	go func() {
		status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
		inflight <- outcomePair{status, body}
	}()
	// ...and one queued behind it.
	queued := make(chan outcomePair, 1)
	time.Sleep(10 * time.Millisecond)
	go func() {
		status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(1)})
		queued <- outcomePair{status, body}
	}()
	time.Sleep(10 * time.Millisecond)

	s.BeginDrain()
	resp, err := client.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: status %d", resp.StatusCode)
	}

	// New work is rejected with the typed draining code.
	status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("assign while draining: status %d body %s", status, body)
	}
	if ei := decodeError(t, body); ei.Code != CodeDraining {
		t.Fatalf("draining code %q", ei.Code)
	}

	// The in-flight request completes; the queued one is flushed with the
	// draining error (it never got a seat).
	in := <-inflight
	if in.status != http.StatusOK {
		t.Fatalf("in-flight request during drain: status %d body %s", in.status, in.body)
	}
	q := <-queued
	if q.status != http.StatusServiceUnavailable {
		t.Fatalf("queued request during drain: status %d body %s", q.status, q.body)
	}
}

type outcomePair struct {
	status int
	body   []byte
}

// TestMetricsEndpoint: counters and gauges render and move.
func TestMetricsEndpoint(t *testing.T) {
	m, ds := trainedModel(t, 800, 2, 2, 37)
	_, url, client := newTestServer(t, Config{}, m)
	status, _, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": ds.Point(0)})
	if status != http.StatusOK {
		t.Fatal("seed assign failed")
	}
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dbsvecd_requests_total", "dbsvecd_assign_total 1", "dbsvecd_assign_points_total 1",
		"dbsvecd_admission_capacity", "dbsvecd_models_loaded 1", "dbsvecd_draining 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestResponseErrorTaxonomy: the typed-error satellite for the serving
// layer — classification maps the library taxonomy onto stable codes and
// preserves errors.Is / errors.As through the response wrapping, exactly
// like the library's own layers do.
func TestResponseErrorTaxonomy(t *testing.T) {
	be := &dbsvec.BudgetExceededError{Limit: "duration", Elapsed: time.Second}
	ae := classify(fmt.Errorf("outer: %w", be))
	if ae.code != CodeBudgetExceeded || ae.status != http.StatusServiceUnavailable {
		t.Fatalf("budget classification: %+v", ae)
	}
	var beOut *dbsvec.BudgetExceededError
	if !errors.As(ae, &beOut) || beOut.Limit != "duration" {
		t.Fatal("errors.As lost *BudgetExceededError through the response layer")
	}

	wp := fault.AsWorkerPanic("boom")
	ae = classify(fmt.Errorf("outer: %w", error(wp)))
	if ae.code != CodeWorkerPanic || ae.status != http.StatusInternalServerError {
		t.Fatalf("panic classification: %+v", ae)
	}
	var wpOut *dbsvec.WorkerPanicError
	if !errors.As(ae, &wpOut) || wpOut.Value != "boom" {
		t.Fatal("errors.As lost *WorkerPanicError through the response layer")
	}

	ae = classify(fmt.Errorf("ctx: %w", context.DeadlineExceeded))
	if ae.code != CodeDeadlineExceeded || ae.status != http.StatusGatewayTimeout {
		t.Fatalf("deadline classification: %+v", ae)
	}
	if !errors.Is(ae, context.DeadlineExceeded) {
		t.Fatal("errors.Is lost context.DeadlineExceeded")
	}

	ae = classify(fmt.Errorf("%w: nope", dbsvec.ErrInvalidParams))
	if ae.code != CodeInvalidParams || !errors.Is(ae, dbsvec.ErrInvalidParams) {
		t.Fatalf("invalid-params classification: %+v", ae)
	}

	ae = classify(fmt.Errorf("%w: bad magic", dbsvec.ErrMalformed))
	if ae.code != CodeMalformedModel || !errors.Is(ae, dbsvec.ErrMalformed) {
		t.Fatalf("malformed classification: %+v", ae)
	}

	ae = classify(errors.New("mystery"))
	if ae.code != CodeInternal || ae.status != http.StatusInternalServerError {
		t.Fatalf("residual classification: %+v", ae)
	}
}
