package server

import (
	"context"
	"net/http"
	"time"

	"dbsvec"
	"dbsvec/internal/fault"
)

// assignRequest is the /v1/assign body. Exactly one of Point (single) or
// Points (batch) must be set. Model may be omitted when exactly one model is
// loaded. TimeoutMs overrides the server's default per-request deadline,
// clamped to the configured maximum.
type assignRequest struct {
	Model     string      `json:"model,omitempty"`
	Point     []float64   `json:"point,omitempty"`
	Points    [][]float64 `json:"points,omitempty"`
	TimeoutMs int64       `json:"timeout_ms,omitempty"`
}

// assignResponse is the /v1/assign success body. Labels holds one cluster id
// (or -1 for noise) per input point, in input order. Degraded marks a
// response computed on the stepped-down nearest-SV path under overload —
// the per-request form of the training-side degradation taxonomy.
type assignResponse struct {
	Model    string  `json:"model"`
	Clusters int     `json:"clusters"`
	Labels   []int32 `json:"labels"`
	Degraded bool    `json:"degraded"`
}

// slowHandlerDelay is the stall injected by the fault.HandlerSlow point —
// long enough to overlap a burst and outlive a short request deadline,
// short enough to keep fault sweeps quick.
const slowHandlerDelay = 50 * time.Millisecond

func (s *Server) handleAssign(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if s.draining.Load() {
		s.writeError(w, drainingError())
		return
	}
	var req assignRequest
	if ae := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); ae != nil {
		s.writeError(w, ae)
		return
	}
	rows := req.Points
	switch {
	case req.Point != nil && req.Points != nil:
		s.writeError(w, badRequest(CodeInvalidParams, `set "point" or "points", not both`))
		return
	case req.Point != nil:
		rows = [][]float64{req.Point}
	case len(rows) == 0:
		s.writeError(w, badRequest(CodeInvalidParams, `no points: set "point" or a non-empty "points"`))
		return
	}
	m, name, ae := s.lookup(req.Model)
	if ae != nil {
		s.writeError(w, ae)
		return
	}
	ds, err := dbsvec.NewDataset(rows)
	if err != nil {
		s.writeError(w, badRequest(CodeInvalidParams, "invalid points: %v", err))
		return
	}
	// Up-front shape validation: a dimensionality mismatch is a clear 400
	// before any admission or assignment work.
	if err := m.CheckAssignable(ds); err != nil {
		s.writeError(w, err)
		return
	}

	// Deadline propagation: the request-scoped deadline covers queueing AND
	// the assign fan-out. r.Context() already ends when the client goes
	// away, so an abandoned connection cancels its work too.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: seat the batch cost or return the typed shed error.
	cost := int64(len(rows))
	if err := s.gate.Acquire(ctx, cost); err != nil {
		s.writeError(w, err)
		return
	}
	defer s.gate.Release(cost)

	// Slow-handler injection stalls while holding the admission seat — the
	// worst-case slow request — but stays context-aware, so the deadline
	// still bounds it.
	if fault.Armed(fault.HandlerSlow) {
		t := time.NewTimer(slowHandlerDelay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
		}
	}

	// Graceful degradation: under sustained pressure step the fan-out down
	// to one worker and skip the boundary evaluations (nearest-SV path).
	degraded := s.gate.DegradedMode()
	var labels []int32
	if degraded {
		labels, err = m.AssignNearestContext(ctx, ds, 1)
	} else {
		labels, err = m.AssignContext(ctx, ds, s.cfg.Workers)
	}
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.metrics.assigns.Add(1)
	s.metrics.assignedPoints.Add(int64(len(labels)))
	if degraded {
		s.metrics.degraded.Add(1)
	}
	writeJSON(w, http.StatusOK, assignResponse{
		Model:    name,
		Clusters: m.Clusters(),
		Labels:   labels,
		Degraded: degraded,
	})
}

// modelInfo is the inspection record of one loaded model.
type modelInfo struct {
	Name             string  `json:"name"`
	Dim              int     `json:"dim"`
	Precision        string  `json:"precision"`
	Eps              float64 `json:"eps"`
	MinPts           int     `json:"min_pts"`
	Clusters         int     `json:"clusters"`
	Snapshots        int     `json:"snapshots"`
	SupportVectors   int     `json:"support_vectors"`
	DegradedClusters []int32 `json:"degraded_clusters,omitempty"`
}

func infoOf(name string, m *dbsvec.Model) modelInfo {
	return modelInfo{
		Name:             name,
		Dim:              m.Dim(),
		Precision:        m.Precision().String(),
		Eps:              m.Eps(),
		MinPts:           m.MinPts(),
		Clusters:         m.Clusters(),
		Snapshots:        m.Snapshots(),
		SupportVectors:   m.SupportVectors(),
		DegradedClusters: m.DegradedClusters(),
	}
}

func (s *Server) handleModelsList(w http.ResponseWriter, _ *http.Request) {
	s.metrics.requests.Add(1)
	set := s.registry()
	infos := make([]modelInfo, 0, len(set.names))
	for _, n := range set.names {
		infos = append(infos, infoOf(n, set.byName[n]))
	}
	writeJSON(w, http.StatusOK, struct {
		Models []modelInfo `json:"models"`
	}{Models: infos})
}

func (s *Server) handleModelGet(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	name := r.PathValue("name")
	m, _, ae := s.lookup(name)
	if ae != nil {
		s.writeError(w, ae)
		return
	}
	writeJSON(w, http.StatusOK, infoOf(name, m))
}

// handleModelPut hot-swaps (or first-loads) a model: the body is a binary
// model artifact (Model.Save bytes); on success the registry pointer is
// swapped atomically, so concurrent assigns see old or new, never a mix.
func (s *Server) handleModelPut(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if s.draining.Load() {
		s.writeError(w, drainingError())
		return
	}
	name := r.PathValue("name")
	m, err := dbsvec.LoadModel(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.writeError(w, err) // classify: ErrMalformed -> 400 malformed_model
		return
	}
	replaced := s.SetModel(name, m)
	s.metrics.modelSwaps.Add(1)
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, infoOf(name, m))
}

func (s *Server) handleModelDelete(w http.ResponseWriter, r *http.Request) {
	s.metrics.requests.Add(1)
	if s.draining.Load() {
		s.writeError(w, drainingError())
		return
	}
	name := r.PathValue("name")
	if !s.RemoveModel(name) {
		s.writeError(w, &apiError{status: http.StatusNotFound, code: CodeUnknownModel,
			msg: "model " + name + " is not loaded"})
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
