// Package server is the online half of the production story: dbsvecd's
// HTTP/JSON serving layer over retained model artifacts (dbsvec.Model). It
// loads one or more saved models, serves point-to-cluster assignment against
// their SVDD boundaries, and wraps the whole request path in a robustness
// layer built from the library's own machinery:
//
//   - Admission control: a weighted-semaphore gate sized in batch cost
//     (points) with a bounded FIFO queue. Overload sheds load as typed 429s
//     with Retry-After hints instead of collapsing into unbounded
//     concurrency — see admission.go.
//   - Deadline propagation: every request carries a deadline (its own
//     timeout_ms, clamped to the server maximum, or the server default)
//     threaded as a context through admission queueing and the assign
//     fan-out (Model.AssignContext polls it mid-batch), so an expired
//     request returns a typed 504 instead of a hung connection.
//   - Graceful degradation: sustained admission pressure flips the server
//     into degraded mode — assignment steps down to one worker and to the
//     nearest-SV fallback path (Model.AssignNearestContext), and every
//     response carries Degraded: true so clients see the accuracy/cost dial
//     move (the per-request form of the PR 5 degradation taxonomy).
//   - Lifecycle robustness: hot-swap of models behind an atomic pointer,
//     drain-aware readiness, and panic-to-500 containment reusing the
//     engine's WorkerPanicError recovery semantics.
//
// The package is transport + lifecycle only: assignment semantics live
// entirely in dbsvec.Model.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dbsvec"
	"dbsvec/internal/fault"
)

// Config sizes the serving layer. The zero value of any field selects the
// default documented on it.
type Config struct {
	// Capacity is the admission gate's total cost budget: the number of
	// points that may be in assignment flight at once. Default 4096.
	Capacity int64
	// MaxQueue bounds the admission queue: requests beyond it are shed
	// immediately with 429. Default 64.
	MaxQueue int
	// MaxQueueWait bounds how long an admitted-to-queue request may wait
	// for a seat before it is shed with 429. Default 1s.
	MaxQueueWait time.Duration
	// RetryAfter is the client backoff hint attached to 429 responses.
	// Default 1s.
	RetryAfter time.Duration
	// DefaultTimeout is the per-request deadline when the request does not
	// set timeout_ms. Default 5s.
	DefaultTimeout time.Duration
	// MaxTimeout clamps the per-request timeout_ms. Default 30s.
	MaxTimeout time.Duration
	// Workers sizes the assign fan-out per request (0 = all CPUs). Degraded
	// mode overrides it down to 1. Default 0.
	Workers int
	// DegradeAfter is the sustained-pressure threshold: the number of
	// consecutive pressured admissions (queued or shed) after which the
	// server enters degraded mode; it leaves once the score decays back to
	// zero. Default 8.
	DegradeAfter int
	// MaxBodyBytes bounds request bodies (assign JSON and model uploads).
	// Default 64 MiB.
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	} else if c.MaxQueue == 0 {
		c.MaxQueue = 64
	}
	if c.MaxQueueWait <= 0 {
		c.MaxQueueWait = time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Second
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// modelSet is the immutable model registry snapshot readers load through
// one atomic pointer; hot-swaps build a new set and swap the pointer, so an
// in-flight assign keeps the model it resolved for its whole batch.
type modelSet struct {
	byName map[string]*dbsvec.Model
	names  []string // sorted
}

// Server is the dbsvecd serving core: registry, admission gate, metrics and
// the HTTP handler tree. Create with New, mount Handler on an http.Server,
// call BeginDrain before http.Server.Shutdown.
type Server struct {
	cfg  Config
	gate *gate
	mux  *http.ServeMux

	swapMu sync.Mutex // serializes registry writers
	models atomic.Pointer[modelSet]

	draining atomic.Bool
	metrics  metrics
}

// New builds a Server with no models loaded; readiness stays 503 until the
// first SetModel.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		gate: newGate(cfg.Capacity, cfg.MaxQueue, cfg.MaxQueueWait, cfg.RetryAfter, cfg.DegradeAfter),
	}
	s.models.Store(&modelSet{byName: map[string]*dbsvec.Model{}})
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /v1/assign", s.handleAssign)
	mux.HandleFunc("GET /v1/models", s.handleModelsList)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModelGet)
	mux.HandleFunc("PUT /v1/models/{name}", s.handleModelPut)
	mux.HandleFunc("DELETE /v1/models/{name}", s.handleModelDelete)
	s.mux = mux
	return s
}

// Handler returns the server's HTTP handler: the route tree wrapped in the
// panic-containment boundary.
func (s *Server) Handler() http.Handler { return s.containPanics(s.mux) }

// registry loads the current model set snapshot.
func (s *Server) registry() *modelSet { return s.models.Load() }

// SetModel installs (or hot-swaps) a model under name via copy-on-write +
// atomic pointer swap: concurrent assigns see either the old or the new
// model, never a mix. Reports whether an existing model was replaced.
func (s *Server) SetModel(name string, m *dbsvec.Model) bool {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.registry()
	_, replaced := cur.byName[name]
	next := &modelSet{byName: make(map[string]*dbsvec.Model, len(cur.byName)+1)}
	for k, v := range cur.byName {
		next.byName[k] = v
	}
	next.byName[name] = m
	next.names = sortedNames(next.byName)
	s.models.Store(next)
	return replaced
}

// RemoveModel drops name from the registry; reports whether it was present.
func (s *Server) RemoveModel(name string) bool {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	cur := s.registry()
	if _, ok := cur.byName[name]; !ok {
		return false
	}
	next := &modelSet{byName: make(map[string]*dbsvec.Model, len(cur.byName)-1)}
	for k, v := range cur.byName {
		if k != name {
			next.byName[k] = v
		}
	}
	next.names = sortedNames(next.byName)
	s.models.Store(next)
	return true
}

func sortedNames(m map[string]*dbsvec.Model) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// lookup resolves a request's model: by name, or the single loaded model
// when the request names none.
func (s *Server) lookup(name string) (*dbsvec.Model, string, *apiError) {
	set := s.registry()
	if name == "" {
		if len(set.names) == 1 {
			n := set.names[0]
			return set.byName[n], n, nil
		}
		return nil, "", badRequest(CodeInvalidParams,
			"request names no model and %d models are loaded; set \"model\"", len(set.names))
	}
	if m, ok := set.byName[name]; ok {
		return m, name, nil
	}
	return nil, "", &apiError{status: http.StatusNotFound, code: CodeUnknownModel,
		msg: fmt.Sprintf("model %q is not loaded", name)}
}

// BeginDrain flips the server into draining: readiness goes 503, new assigns
// and model writes are rejected with the typed draining error, queued
// admissions are flushed with the same, and in-flight requests keep their
// seats until they finish. Safe to call more than once. Pair with
// http.Server.Shutdown, which then waits for the in-flight requests.
func (s *Server) BeginDrain() {
	if s.draining.Swap(true) {
		return
	}
	s.gate.Close()
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// DegradedMode reports whether sustained admission pressure currently has
// assignment on the stepped-down path.
func (s *Server) DegradedMode() bool { return s.gate.DegradedMode() }

// containPanics is the outermost recover boundary: a panic that escapes a
// handler — including a *WorkerPanicError re-panicked by the engine fan-out —
// becomes a typed 500 response and the server keeps serving. The engine
// already converted worker panics to typed errors with the original stack;
// AsWorkerPanic passes those through unchanged.
func (s *Server) containPanics(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler { // connection-level abort, not a failure
					panic(v)
				}
				pe := fault.AsWorkerPanic(v)
				s.writeError(w, &apiError{status: http.StatusInternalServerError,
					code: CodeWorkerPanic, msg: "panic contained", cause: pe})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case len(s.registry().names) == 0:
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "no models loaded")
	default:
		fmt.Fprintln(w, "ready")
	}
}

// writeError renders the typed error envelope (after classification) and
// counts it.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	ae := classify(err)
	s.metrics.count(ae)
	info := errorInfo{Code: ae.code, Message: ae.msg}
	if ae.cause != nil {
		info.Detail = ae.cause.Error()
	}
	if ae.retryAfter > 0 {
		secs := int64((ae.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
		info.RetryAfterMs = ae.retryAfter.Milliseconds()
	}
	writeJSON(w, ae.status, errorBody{Error: info})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decodeJSON parses a bounded JSON body into v with unknown fields rejected.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) *apiError {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return &apiError{status: http.StatusRequestEntityTooLarge, code: CodeBatchTooLarge,
				msg: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)}
		}
		return badRequest(CodeInvalidParams, "malformed JSON body: %v", err)
	}
	return nil
}
