package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dbsvec"
)

// API error codes: the stable machine-readable vocabulary of every non-2xx
// response body. Clients dispatch on these, never on message text.
const (
	// CodeInvalidParams rejects a request whose parameters cannot be served
	// (bad JSON, ragged/non-finite points, dimensionality mismatch). 400.
	CodeInvalidParams = "invalid_params"
	// CodeMalformedModel rejects a hot-swap upload that is not a valid model
	// artifact. 400.
	CodeMalformedModel = "malformed_model"
	// CodeUnknownModel rejects a request naming a model that is not loaded. 404.
	CodeUnknownModel = "unknown_model"
	// CodeBatchTooLarge rejects a batch whose admission cost exceeds the
	// gate's total capacity — it could never be admitted. 413.
	CodeBatchTooLarge = "batch_too_large"
	// CodeOverloaded sheds a request the admission gate cannot seat: the
	// queue is full, the queue wait timed out, or a load-spike fault fired.
	// Comes with a Retry-After header. 429.
	CodeOverloaded = "overloaded"
	// CodeDraining rejects new work while the server drains towards
	// shutdown; in-flight requests still complete. 503.
	CodeDraining = "draining"
	// CodeBudgetExceeded classifies a *dbsvec.BudgetExceededError crossing
	// the response layer. 503.
	CodeBudgetExceeded = "budget_exceeded"
	// CodeDeadlineExceeded reports that the request's deadline fired before
	// the assignment completed — the typed timeout response; the connection
	// is never left hanging. 504.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeWorkerPanic reports a panic contained by the engine's worker
	// recovery or the handler's recover boundary. 500.
	CodeWorkerPanic = "worker_panic"
	// CodeInternal is the residual class for unclassified failures. 500.
	CodeInternal = "internal"
)

// apiError is the typed error every handler failure is reduced to before it
// is written: an HTTP status, a stable code, a human-readable message, an
// optional retry hint, and the underlying cause. Unwrap preserves the cause
// so errors.Is / errors.As keep working through the response layer — the
// same contract the library keeps through its own wrapping layers.
type apiError struct {
	status     int
	code       string
	msg        string
	retryAfter time.Duration // > 0 adds a Retry-After header and hint field
	cause      error
}

func (e *apiError) Error() string {
	if e.cause != nil {
		return fmt.Sprintf("server: %s: %s: %v", e.code, e.msg, e.cause)
	}
	return fmt.Sprintf("server: %s: %s", e.code, e.msg)
}

func (e *apiError) Unwrap() error { return e.cause }

func badRequest(code, format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, code: code, msg: fmt.Sprintf(format, args...)}
}

func overloadedError(retryAfter time.Duration, cause error) *apiError {
	return &apiError{
		status:     http.StatusTooManyRequests,
		code:       CodeOverloaded,
		msg:        "admission gate full; retry after the hinted delay",
		retryAfter: retryAfter,
		cause:      cause,
	}
}

func drainingError() *apiError {
	return &apiError{status: http.StatusServiceUnavailable, code: CodeDraining, msg: "server is draining"}
}

func deadlineError(cause error) *apiError {
	return &apiError{
		status: http.StatusGatewayTimeout,
		code:   CodeDeadlineExceeded,
		msg:    "request deadline fired before assignment completed",
		cause:  cause,
	}
}

// classify reduces an arbitrary failure to its typed apiError. Already-typed
// errors pass through; library taxonomy errors map onto their codes; the
// residue is a 500. The cause is always retained, so a caller holding the
// classified error can still errors.As into *dbsvec.WorkerPanicError or
// *dbsvec.BudgetExceededError.
func classify(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var wp *dbsvec.WorkerPanicError
	if errors.As(err, &wp) {
		return &apiError{status: http.StatusInternalServerError, code: CodeWorkerPanic,
			msg: "worker panic contained during assignment", cause: err}
	}
	var be *dbsvec.BudgetExceededError
	if errors.As(err, &be) {
		return &apiError{status: http.StatusServiceUnavailable, code: CodeBudgetExceeded,
			msg: "work budget exhausted", cause: err}
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return deadlineError(err)
	}
	if errors.Is(err, dbsvec.ErrMalformed) {
		return &apiError{status: http.StatusBadRequest, code: CodeMalformedModel,
			msg: "model artifact rejected", cause: err}
	}
	if errors.Is(err, dbsvec.ErrInvalidParams) {
		return &apiError{status: http.StatusBadRequest, code: CodeInvalidParams,
			msg: "invalid request parameters", cause: err}
	}
	return &apiError{status: http.StatusInternalServerError, code: CodeInternal,
		msg: "internal error", cause: err}
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Detail       string `json:"detail,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}
