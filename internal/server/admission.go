package server

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"dbsvec/internal/fault"
)

// gate is the weighted-semaphore admission controller: every assign request
// must seat its cost (one unit per point) inside a fixed capacity before any
// assignment work runs. Requests that do not fit wait in a bounded FIFO
// queue; when the queue is full, the wait times out, or the request's own
// deadline fires first, the request is shed with a typed error instead of
// piling onto a collapsing server. Overload therefore degrades to fast,
// honest 429s — never to unbounded goroutines or hung connections.
//
// The gate doubles as the pressure sensor for graceful degradation: every
// admission that had to queue or was shed bumps a saturating "hot" score,
// every immediate admission decays it. The server enters degraded mode when
// the score reaches degradeAfter and leaves when it decays back to zero —
// hysteresis, so one burst does not flap the mode per request.
type gate struct {
	capacity     int64
	maxQueue     int
	maxWait      time.Duration
	retryAfter   time.Duration
	degradeAfter int64

	mu     sync.Mutex
	inUse  int64
	queue  []*waiter
	queued int
	closed bool

	hot      atomic.Int64
	degraded atomic.Bool
}

// waiter is one queued admission. ready is closed exactly once — either with
// err == nil and the cost already seated, or with err set and nothing held.
// abandoned waiters (deadline/timeout hit first) are skipped at grant time.
type waiter struct {
	cost      int64
	ready     chan struct{}
	err       *apiError
	granted   bool
	abandoned bool
}

func newGate(capacity int64, maxQueue int, maxWait, retryAfter time.Duration, degradeAfter int) *gate {
	if degradeAfter < 1 {
		degradeAfter = 1
	}
	return &gate{
		capacity:     capacity,
		maxQueue:     maxQueue,
		maxWait:      maxWait,
		retryAfter:   retryAfter,
		degradeAfter: int64(degradeAfter),
	}
}

// Acquire seats cost units, queueing within the request's deadline and the
// gate's maxWait. A nil return means the caller holds the cost and must
// Release it; every non-nil return is a typed *apiError and holds nothing.
func (g *gate) Acquire(ctx context.Context, cost int64) error {
	if cost <= 0 {
		cost = 1
	}
	if cost > g.capacity {
		return &apiError{status: 413, code: CodeBatchTooLarge,
			msg: "batch cost exceeds the admission capacity; split the batch"}
	}
	// Load-spike injection: behave exactly as if the queue were full, so
	// tests can drive the shed path (and the degradation trigger behind it)
	// deterministically.
	if err := fault.Error(fault.LoadSpike); err != nil {
		g.pressureUp()
		return overloadedError(g.retryAfter, err)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return drainingError()
	}
	if g.queued == 0 && g.inUse+cost <= g.capacity {
		g.inUse += cost
		g.mu.Unlock()
		g.pressureDown()
		return nil
	}
	if g.queued >= g.maxQueue {
		g.mu.Unlock()
		g.pressureUp()
		return overloadedError(g.retryAfter, nil)
	}
	w := &waiter{cost: cost, ready: make(chan struct{})}
	g.queue = append(g.queue, w)
	g.queued++
	g.mu.Unlock()
	g.pressureUp()

	var timeout <-chan time.Time
	if g.maxWait > 0 {
		t := time.NewTimer(g.maxWait)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		if w.err != nil {
			return w.err
		}
		return nil
	case <-ctx.Done():
		if g.abandon(w) {
			return deadlineError(ctx.Err())
		}
	case <-timeout:
		if g.abandon(w) {
			return overloadedError(g.retryAfter, nil)
		}
	}
	// Lost the race: the grant (or drain) landed before the abandon took
	// hold. Honor whatever the grant decided — a granted slot is held and
	// the caller proceeds (its own ctx check fires immediately if the
	// deadline already passed), a drain error holds nothing.
	<-w.ready
	if w.err != nil {
		return w.err
	}
	return nil
}

// Release returns cost units and seats as many queued waiters as now fit,
// in FIFO order.
func (g *gate) Release(cost int64) {
	if cost <= 0 {
		cost = 1
	}
	g.mu.Lock()
	g.inUse -= cost
	g.grantLocked()
	g.mu.Unlock()
}

// grantLocked seats queued waiters head-first while they fit. Abandoned
// entries are discarded; FIFO order is preserved (a large head blocks
// smaller followers, so admission order is fair, not size-greedy).
func (g *gate) grantLocked() {
	for len(g.queue) > 0 {
		w := g.queue[0]
		if w.abandoned {
			g.queue = g.queue[1:]
			continue
		}
		if g.inUse+w.cost > g.capacity {
			return
		}
		g.inUse += w.cost
		w.granted = true
		close(w.ready)
		g.queue = g.queue[1:]
		g.queued--
	}
}

// abandon detaches a waiter whose deadline or queue-wait fired. Reports
// false when the grant won the race — the caller then owns a seated slot.
func (g *gate) abandon(w *waiter) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.granted || w.err != nil {
		return false
	}
	w.abandoned = true
	g.queued--
	return true
}

// Close flips the gate into draining: queued waiters fail with the typed
// draining error, new admissions are rejected, in-flight work keeps its
// seats until Release.
func (g *gate) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.closed = true
	for _, w := range g.queue {
		if w.abandoned {
			continue
		}
		w.err = drainingError()
		close(w.ready)
	}
	g.queue = nil
	g.queued = 0
}

// InUse returns the currently seated cost.
func (g *gate) InUse() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inUse
}

// Queued returns the current queue depth.
func (g *gate) Queued() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.queued
}

// pressureUp bumps the saturating hot score (a queued or shed admission) and
// re-evaluates the degraded flag.
func (g *gate) pressureUp() {
	hotCap := 2 * g.degradeAfter
	for {
		h := g.hot.Load()
		nh := h + 1
		if nh > hotCap {
			nh = hotCap
		}
		if g.hot.CompareAndSwap(h, nh) {
			break
		}
	}
	g.updateDegraded()
}

// pressureDown decays the hot score (an immediate admission) and
// re-evaluates the degraded flag.
func (g *gate) pressureDown() {
	for {
		h := g.hot.Load()
		if h == 0 {
			break
		}
		if g.hot.CompareAndSwap(h, h-1) {
			break
		}
	}
	g.updateDegraded()
}

func (g *gate) updateDegraded() {
	switch h := g.hot.Load(); {
	case h >= g.degradeAfter:
		g.degraded.Store(true)
	case h == 0:
		g.degraded.Store(false)
	}
}

// DegradedMode reports whether sustained pressure has the server in
// degraded mode.
func (g *gate) DegradedMode() bool { return g.degraded.Load() }
