package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"
)

func statusOf(t *testing.T, err error) *apiError {
	t.Helper()
	var ae *apiError
	if !errors.As(err, &ae) {
		t.Fatalf("gate error %v is not an *apiError", err)
	}
	return ae
}

// TestGateSeatsAndQueues: immediate admission within capacity, FIFO queueing
// beyond it, and release-driven grants.
func TestGateSeatsAndQueues(t *testing.T) {
	g := newGate(10, 4, time.Second, time.Second, 8)
	ctx := context.Background()
	if err := g.Acquire(ctx, 6); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if got := g.InUse(); got != 10 {
		t.Fatalf("inUse %d, want 10", got)
	}

	// A third admission must queue until a release makes room.
	done := make(chan error, 1)
	go func() { done <- g.Acquire(ctx, 5) }()
	waitFor(t, func() bool { return g.Queued() == 1 })
	select {
	case err := <-done:
		t.Fatalf("queued acquire returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	g.Release(6)
	if err := <-done; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	if got := g.InUse(); got != 9 {
		t.Fatalf("inUse %d, want 9", got)
	}
	g.Release(4)
	g.Release(5)
	if got := g.InUse(); got != 0 {
		t.Fatalf("inUse %d after full release", got)
	}
}

// TestGateShedPaths: over-capacity cost is a 413; a full queue and an
// expired queue-wait are 429s; a request deadline in the queue is a
// deadline error; Close flushes the queue with the draining error.
func TestGateShedPaths(t *testing.T) {
	ctx := context.Background()

	g := newGate(4, 0, 10*time.Millisecond, time.Second, 8)
	if ae := statusOf(t, g.Acquire(ctx, 5)); ae.status != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-capacity status %d", ae.status)
	}
	if err := g.Acquire(ctx, 4); err != nil {
		t.Fatal(err)
	}
	// maxQueue 0: anything that cannot seat immediately sheds.
	if ae := statusOf(t, g.Acquire(ctx, 1)); ae.status != http.StatusTooManyRequests || ae.code != CodeOverloaded {
		t.Fatalf("queue-full shed: %+v", ae)
	}
	g.Release(4)

	// Queue-wait timeout.
	g = newGate(4, 2, 20*time.Millisecond, time.Second, 8)
	if err := g.Acquire(ctx, 4); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if ae := statusOf(t, g.Acquire(ctx, 1)); ae.code != CodeOverloaded {
		t.Fatalf("queue-wait shed code %q", ae.code)
	} else if time.Since(start) > time.Second {
		t.Fatal("queue-wait shed took way longer than maxWait")
	}

	// Request deadline while queued.
	dctx, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	if ae := statusOf(t, g.Acquire(dctx, 1)); ae.code != CodeDeadlineExceeded {
		t.Fatalf("queued-deadline code %q", ae.code)
	}

	// Close flushes the queue with the draining error and rejects new work.
	flushed := make(chan error, 1)
	go func() { flushed <- g.Acquire(ctx, 1) }()
	waitFor(t, func() bool { return g.Queued() == 1 })
	g.Close()
	if ae := statusOf(t, <-flushed); ae.code != CodeDraining {
		t.Fatalf("flushed waiter code %q", ae.code)
	}
	if ae := statusOf(t, g.Acquire(ctx, 1)); ae.code != CodeDraining {
		t.Fatalf("post-close acquire code %q", ae.code)
	}
	g.Release(4)
}

// TestGateConcurrentAccounting hammers the gate from many goroutines and
// checks the seat ledger balances back to zero — no leaked or double-freed
// cost under contention (meaningful under -race).
func TestGateConcurrentAccounting(t *testing.T) {
	g := newGate(16, 8, 50*time.Millisecond, time.Second, 8)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		cost := int64(1 + i%5)
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
			defer cancel()
			if err := g.Acquire(ctx, cost); err == nil {
				time.Sleep(time.Millisecond)
				g.Release(cost)
			}
		}()
	}
	wg.Wait()
	if got := g.InUse(); got != 0 {
		t.Fatalf("seat ledger off by %d after drain-down", got)
	}
	if got := g.Queued(); got != 0 {
		t.Fatalf("queue depth %d after drain-down", got)
	}
}

// TestGateDegradationHysteresis: the hot score saturates, engages the mode
// at the threshold, and only disengages at zero.
func TestGateDegradationHysteresis(t *testing.T) {
	g := newGate(4, 0, time.Millisecond, time.Second, 2)
	ctx := context.Background()
	if err := g.Acquire(ctx, 4); err != nil {
		t.Fatal(err)
	}
	if g.DegradedMode() {
		t.Fatal("fresh gate already degraded")
	}
	for i := 0; i < 3; i++ { // sheds: hot 1, 2, 3 (saturates at 4)
		if g.Acquire(ctx, 1) == nil {
			t.Fatal("shed expected")
		}
	}
	if !g.DegradedMode() {
		t.Fatal("mode did not engage at threshold")
	}
	g.Release(4)
	// Immediate admissions decay the score; the mode holds until zero.
	for i := 0; i < 2; i++ {
		if err := g.Acquire(ctx, 1); err != nil {
			t.Fatal(err)
		}
		g.Release(1)
		if !g.DegradedMode() {
			t.Fatalf("mode flapped off at decay step %d", i)
		}
	}
	if err := g.Acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	g.Release(1)
	if g.DegradedMode() {
		t.Fatal("mode did not disengage at zero")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never held")
		}
		time.Sleep(time.Millisecond)
	}
}
