package server

import (
	"bufio"
	"fmt"
	"net/http"
	"sync/atomic"
)

// metrics is the daemon's observable state: monotonic counters bumped on
// the request path plus gauges sampled from the gate and registry at scrape
// time. Exposed at /metrics in the plain "name value" text form.
type metrics struct {
	requests       atomic.Int64 // every API request received
	assigns        atomic.Int64 // successful assign responses
	assignedPoints atomic.Int64 // points labeled across successful assigns
	degraded       atomic.Int64 // successful assigns served on the degraded path
	overloaded     atomic.Int64 // 429 sheds (queue full, queue-wait timeout, load spike)
	tooLarge       atomic.Int64 // 413 over-capacity batches
	deadline       atomic.Int64 // 504 deadline expiries
	invalid        atomic.Int64 // 400 rejections
	notFound       atomic.Int64 // 404 unknown-model rejections
	drainRejected  atomic.Int64 // 503 rejections while draining
	panics         atomic.Int64 // panics contained to 500s
	internalErrors atomic.Int64 // residual 500s
	modelSwaps     atomic.Int64 // hot-swap loads accepted
}

// count records a finished request's outcome class.
func (m *metrics) count(ae *apiError) {
	if ae == nil {
		return
	}
	switch ae.code {
	case CodeOverloaded:
		m.overloaded.Add(1)
	case CodeBatchTooLarge:
		m.tooLarge.Add(1)
	case CodeDeadlineExceeded:
		m.deadline.Add(1)
	case CodeInvalidParams, CodeMalformedModel:
		m.invalid.Add(1)
	case CodeUnknownModel:
		m.notFound.Add(1)
	case CodeDraining:
		m.drainRejected.Add(1)
	case CodeWorkerPanic:
		m.panics.Add(1)
	default:
		m.internalErrors.Add(1)
	}
}

// handleMetrics renders the counters and live gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	bw := bufio.NewWriter(w)
	emit := func(name string, v int64) { fmt.Fprintf(bw, "dbsvecd_%s %d\n", name, v) }
	m := &s.metrics
	emit("requests_total", m.requests.Load())
	emit("assign_total", m.assigns.Load())
	emit("assign_points_total", m.assignedPoints.Load())
	emit("assign_degraded_total", m.degraded.Load())
	emit("rejected_overload_total", m.overloaded.Load())
	emit("rejected_too_large_total", m.tooLarge.Load())
	emit("rejected_draining_total", m.drainRejected.Load())
	emit("deadline_exceeded_total", m.deadline.Load())
	emit("invalid_requests_total", m.invalid.Load())
	emit("unknown_model_total", m.notFound.Load())
	emit("worker_panics_total", m.panics.Load())
	emit("internal_errors_total", m.internalErrors.Load())
	emit("model_swaps_total", m.modelSwaps.Load())
	emit("admission_capacity", s.gate.capacity)
	emit("admission_inflight_cost", s.gate.InUse())
	emit("admission_queue_depth", int64(s.gate.Queued()))
	emit("degraded_mode", boolGauge(s.gate.DegradedMode()))
	emit("draining", boolGauge(s.draining.Load()))
	emit("models_loaded", int64(len(s.registry().names)))
	bw.Flush()
}

func boolGauge(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
