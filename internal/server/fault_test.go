//go:build faultinject

package server

import (
	"net/http"
	"sync"
	"testing"
	"time"

	"dbsvec/internal/fault"
	"dbsvec/internal/leakcheck"
)

// TestServerFaultSweep drives concurrent assign bursts through every server
// fault point under every injection mode. The invariant is the serving
// contract, not any particular outcome: every response is one of the typed
// statuses, no connection hangs, no goroutine leaks, and after the injector
// is restored the server serves clean again.
func TestServerFaultSweep(t *testing.T) {
	leakcheck.Check(t)
	m, ds := trainedModel(t, 1000, 2, 3, 41)
	cfg := Config{
		Capacity:       8,
		MaxQueue:       2,
		MaxQueueWait:   50 * time.Millisecond,
		DefaultTimeout: 2 * time.Second,
		Workers:        2,
		DegradeAfter:   4,
	}
	_, url, client := newTestServer(t, cfg, m)

	batch := make([][]float64, 4)
	for i := range batch {
		batch[i] = append([]float64(nil), ds.Point(i)...)
	}
	allowed := map[int]string{
		http.StatusOK:                  "",
		http.StatusTooManyRequests:     CodeOverloaded,
		http.StatusGatewayTimeout:      CodeDeadlineExceeded,
		http.StatusInternalServerError: CodeWorkerPanic,
	}

	for _, p := range fault.ServerPoints() {
		for _, mode := range []struct {
			name string
			mode fault.Mode
		}{
			{"always", fault.Always()},
			{"nth2", fault.Nth(2)},
			{"prob", fault.Prob(0.5)},
		} {
			t.Run(p.String()+"/"+mode.name, func(t *testing.T) {
				restore := fault.Activate(fault.NewInjector(7).Arm(p, mode.mode))
				var wg sync.WaitGroup
				for g := 0; g < 12; g++ {
					g := g
					wg.Add(1)
					go func() {
						defer wg.Done()
						status, body, header := postJSON(t, client, url+"/v1/assign", map[string]any{"points": batch})
						wantCode, ok := allowed[status]
						if !ok {
							t.Errorf("goroutine %d: status %d outside the typed set (body %s)", g, status, body)
							return
						}
						switch status {
						case http.StatusOK:
							ar := decodeAssign(t, body)
							checkLabels(t, ar.Labels, len(batch), m.Clusters())
						default:
							if ei := decodeError(t, body); ei.Code != wantCode {
								t.Errorf("goroutine %d: status %d carries code %q, want %q", g, status, ei.Code, wantCode)
							}
							if status == http.StatusTooManyRequests && header.Get("Retry-After") == "" {
								t.Errorf("goroutine %d: 429 without Retry-After", g)
							}
						}
					}()
				}
				wg.Wait()
				restore()

				// The server must come back healthy once injection stops;
				// degraded responses are fine while pressure decays.
				deadline := time.Now().Add(5 * time.Second)
				for {
					status, body, _ := postJSON(t, client, url+"/v1/assign", map[string]any{"point": batch[0]})
					if status == http.StatusOK {
						checkLabels(t, decodeAssign(t, body).Labels, 1, m.Clusters())
						break
					}
					if time.Now().After(deadline) {
						t.Fatalf("server did not recover after %s sweep: status %d body %s", p, status, body)
					}
					time.Sleep(10 * time.Millisecond)
				}
			})
		}
	}
}
