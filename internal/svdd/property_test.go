package svdd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dbsvec/internal/vec"
)

// Property: for random datasets, ν values and weight vectors, Train always
// produces a feasible dual solution (Σα = 1, 0 ≤ α_i ≤ u_i) and a
// non-negative radius.
func TestQuickTrainFeasibility(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		d := 1 + rng.Intn(6)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * 10
			}
		}
		ds, _ := vec.FromRows(rows)
		ids := allIDs(n)
		cfg := Config{Nu: 0.01 + rng.Float64()*0.98}
		switch rng.Intn(3) {
		case 1:
			w := make([]float64, n)
			for i := range w {
				w[i] = rng.Float64() * 5
			}
			cfg.Weights = w
		case 2:
			times := make([]int, n)
			for i := range times {
				times[i] = rng.Intn(5)
			}
			cfg.Times = times
			cfg.Lambda = 1 + rng.Float64()
		}
		if rng.Intn(2) == 0 {
			cfg.SecondOrder = true
		}
		m, err := Train(ds, ids, cfg)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if s := m.SumAlpha(); math.Abs(s-1) > 1e-6 {
			t.Logf("seed %d: sum alpha %v", seed, s)
			return false
		}
		for i, a := range m.Alpha {
			if a < -1e-9 || a > m.Upper[i]+1e-9 {
				t.Logf("seed %d: alpha[%d]=%v cap=%v", seed, i, a, m.Upper[i])
				return false
			}
		}
		if m.R2 < -1e-9 {
			t.Logf("seed %d: negative R2 %v", seed, m.R2)
			return false
		}
		if len(m.SupportVectors()) == 0 {
			t.Logf("seed %d: no support vectors", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: Eval at each training point minus slack consistency — training
// points strictly inside the sphere (α = 0) must have non-positive Eval up
// to solver tolerance.
func TestQuickInteriorPointsInside(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(120)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		ds, _ := vec.FromRows(rows)
		m, err := Train(ds, allIDs(n), Config{Nu: 0.2})
		if err != nil {
			return false
		}
		for i, a := range m.Alpha {
			if a > svThreshold {
				continue // support vectors may sit on/outside the sphere
			}
			if m.Eval(ds.Point(i)) > 1e-2 {
				t.Logf("seed %d: interior point %d outside sphere (eval %v)", seed, i, m.Eval(ds.Point(i)))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
