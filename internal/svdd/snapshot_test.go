package svdd

import (
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

// testBlobs generates Gaussian blobs without importing internal/data (which
// imports this package for the model codec and would form a test cycle).
func testBlobs(t *testing.T, n, d int, seed int64) *vec.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 3)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 500
		}
	}
	coords := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		for j := 0; j < d; j++ {
			coords = append(coords, c[j]+rng.NormFloat64()*20)
		}
	}
	ds, err := vec.NewDataset(coords, d)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func trainedModel(t *testing.T, n, d int, seed int64) (*vec.Dataset, *Model) {
	t.Helper()
	ds := testBlobs(t, n, d, seed)
	m, err := Train(ds, vec.Iota(ds.Len()), Config{Nu: 0.1, Dim: d, MinPts: 10})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	return ds, m
}

// TestSnapshotEvalBitIdentical pins the detachment contract: a model rebuilt
// from its snapshot evaluates every query point to the exact same bits as
// the training-attached original — the snapshot keeps the SV iteration
// order, the multipliers, and the cached Eq. 12 terms unchanged.
func TestSnapshotEvalBitIdentical(t *testing.T) {
	_, m := trainedModel(t, 300, 4, 7)
	snap := m.Snapshot()
	det, err := FromSnapshot(snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 200; q++ {
		x := make([]float64, 4)
		for j := range x {
			x[j] = rng.Float64() * 500
		}
		if a, b := m.Eval(x), det.Eval(x); a != b {
			t.Fatalf("query %d: attached Eval %v != detached Eval %v", q, a, b)
		}
	}
}

// TestSnapshotPreservesSupportVectors checks ids, ranking and metadata
// survive the round trip.
func TestSnapshotPreservesSupportVectors(t *testing.T) {
	_, m := trainedModel(t, 300, 4, 11)
	snap := m.Snapshot()
	if snap.SVCount() == 0 {
		t.Fatal("no support vectors in snapshot")
	}
	det, err := FromSnapshot(snap)
	if err != nil {
		t.Fatalf("FromSnapshot: %v", err)
	}
	a, b := m.SupportVectors(), det.SupportVectors()
	if len(a) != len(b) {
		t.Fatalf("SV count %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SV %d: %d != %d", i, a[i], b[i])
		}
	}
	at, bt := m.TopSupportVectors(5), det.TopSupportVectors(5)
	for i := range at {
		if at[i] != bt[i] {
			t.Fatalf("TopSV %d: %d != %d", i, at[i], bt[i])
		}
	}
	if det.Nu != m.Nu || det.Sigma != m.Sigma || det.R2 != m.R2 {
		t.Fatalf("metadata drifted: nu %v/%v sigma %v/%v r2 %v/%v",
			det.Nu, m.Nu, det.Sigma, m.Sigma, det.R2, m.R2)
	}
	if det.Iterations != m.Iterations || det.Converged != m.Converged {
		t.Fatalf("solve outcome drifted")
	}
	if det.BoundedSupportVectors() != nil {
		t.Fatal("detached model must not report bounded SVs (no caps retained)")
	}
	// Σα over support vectors alone stays 1 up to the zero threshold times
	// the dropped count.
	if s := det.SumAlpha(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("detached Σα = %v, want ~1", s)
	}
}

// TestSnapshotOfDetachedModel: snapshotting a detached model reproduces the
// same snapshot (stability under repeated save/load cycles).
func TestSnapshotOfDetachedModel(t *testing.T) {
	_, m := trainedModel(t, 200, 3, 5)
	s1 := m.Snapshot()
	det, err := FromSnapshot(s1)
	if err != nil {
		t.Fatal(err)
	}
	s2 := det.Snapshot()
	if len(s1.IDs) != len(s2.IDs) {
		t.Fatalf("SV count changed: %d -> %d", len(s1.IDs), len(s2.IDs))
	}
	for i := range s1.IDs {
		if s1.IDs[i] != s2.IDs[i] || s1.Alpha[i] != s2.Alpha[i] || s1.Score[i] != s2.Score[i] {
			t.Fatalf("entry %d drifted", i)
		}
	}
	for i := range s1.Coords {
		if s1.Coords[i] != s2.Coords[i] {
			t.Fatalf("coord %d drifted", i)
		}
	}
	if s1.Sigma != s2.Sigma || s1.R2 != s2.R2 || s1.AlphaDot != s2.AlphaDot || s1.Nu != s2.Nu {
		t.Fatal("scalar terms drifted")
	}
}

// TestFromSnapshotRejectsInvalid exercises the validation taxonomy.
func TestFromSnapshotRejectsInvalid(t *testing.T) {
	_, m := trainedModel(t, 100, 2, 9)
	good := m.Snapshot()
	cases := []struct {
		name   string
		mutate func(s *Snapshot)
	}{
		{"zero dim", func(s *Snapshot) { s.Dim = 0 }},
		{"no svs", func(s *Snapshot) { s.IDs = nil }},
		{"alpha mismatch", func(s *Snapshot) { s.Alpha = s.Alpha[:1] }},
		{"score mismatch", func(s *Snapshot) { s.Score = append(s.Score, 0) }},
		{"coords mismatch", func(s *Snapshot) { s.Coords = s.Coords[:len(s.Coords)-1] }},
		{"zero sigma", func(s *Snapshot) { s.Sigma = 0 }},
		{"negative sigma", func(s *Snapshot) { s.Sigma = -1 }},
		{"inf sigma", func(s *Snapshot) { s.Sigma = math.Inf(1) }},
	}
	for _, tc := range cases {
		cp := *good
		cp.IDs = append([]int32(nil), good.IDs...)
		cp.Alpha = append([]float64(nil), good.Alpha...)
		cp.Score = append([]float64(nil), good.Score...)
		cp.Coords = append([]float64(nil), good.Coords...)
		tc.mutate(&cp)
		if _, err := FromSnapshot(&cp); err == nil {
			t.Errorf("%s: FromSnapshot accepted invalid snapshot", tc.name)
		}
	}
	if _, err := FromSnapshot(good); err != nil {
		t.Fatalf("control: valid snapshot rejected: %v", err)
	}
}

// TestTrainRecordsNu: Train records the ν it actually used, including the
// adaptive ν* resolution.
func TestTrainRecordsNu(t *testing.T) {
	ds := testBlobs(t, 128, 3, 3)
	ids := vec.Iota(ds.Len())
	m, err := Train(ds, ids, Config{Nu: 0.2, Dim: 3, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nu != 0.2 {
		t.Fatalf("explicit nu not recorded: %v", m.Nu)
	}
	m, err = Train(ds, ids, Config{Dim: 3, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if want := NuStar(3, 8, ds.Len()); m.Nu != want {
		t.Fatalf("adaptive nu* not recorded: got %v want %v", m.Nu, want)
	}
}
