package svdd

import (
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

func TestTopSupportVectorsBudget(t *testing.T) {
	ds, _ := blobWithOutliers(200, 21)
	m, err := Train(ds, allIDs(ds.Len()), Config{Nu: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	all := m.SupportVectors()
	if len(all) < 10 {
		t.Skipf("too few SVs (%d) for a meaningful budget test", len(all))
	}
	top := m.TopSupportVectors(5)
	if len(top) != 5 {
		t.Fatalf("budget 5 returned %d", len(top))
	}
	// Budget larger than SV count returns all.
	if got := m.TopSupportVectors(len(all) + 10); len(got) != len(all) {
		t.Errorf("oversized budget: %d, want %d", len(got), len(all))
	}
	// Budget 0 returns all.
	if got := m.TopSupportVectors(0); len(got) != len(all) {
		t.Errorf("zero budget: %d, want %d", len(got), len(all))
	}
	// Top SVs must be a subset of all SVs.
	set := map[int32]bool{}
	for _, id := range all {
		set[id] = true
	}
	for _, id := range top {
		if !set[id] {
			t.Errorf("top SV %d not in full SV set", id)
		}
	}
}

// The top-ranked support vectors (by feature-space distance from the
// center) must be farther from the input-space centroid on average than the
// bottom-ranked ones for a compact blob.
func TestTopSupportVectorsAreOutermost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	rows := make([][]float64, 400)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	ds, _ := vec.FromRows(rows)
	m, err := Train(ds, allIDs(400), Config{Nu: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	all := m.SupportVectors()
	if len(all) < 12 {
		t.Skipf("too few SVs: %d", len(all))
	}
	k := len(all) / 3
	top := m.TopSupportVectors(k)
	mean := ds.Mean(allIDs(400))
	avg := func(ids []int32) float64 {
		var s float64
		for _, id := range ids {
			s += vec.Dist(ds.Point(int(id)), mean)
		}
		return s / float64(len(ids))
	}
	topSet := map[int32]bool{}
	for _, id := range top {
		topSet[id] = true
	}
	var rest []int32
	for _, id := range all {
		if !topSet[id] {
			rest = append(rest, id)
		}
	}
	if avg(top) <= avg(rest) {
		t.Errorf("top SVs (avg dist %.3f) should be farther out than the rest (%.3f)", avg(top), avg(rest))
	}
}

// The internally computed adaptive weights must behave like the exact Eq. 7
// path: a freshly added far point should out-rank (i.e. be more likely a
// support vector than) a long-participating central point.
func TestTimesPathMatchesIntent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 300
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	// Append fresh frontier points far from the blob.
	for i := 0; i < 20; i++ {
		rows = append(rows, []float64{6 + rng.NormFloat64()*0.3, rng.NormFloat64() * 0.3})
	}
	ds, _ := vec.FromRows(rows)
	ids := allIDs(len(rows))
	times := make([]int, len(rows))
	for i := 0; i < n; i++ {
		times[i] = 3 // old points
	}
	m, err := Train(ds, ids, Config{Nu: 0.1, Times: times, Lambda: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	top := m.TopSupportVectors(10)
	freshCount := 0
	for _, id := range top {
		if int(id) >= n {
			freshCount++
		}
	}
	if freshCount < 5 {
		t.Errorf("only %d/10 top SVs are fresh frontier points", freshCount)
	}
}

// Second-order working-set selection must satisfy the same constraints and
// describe the same boundary as first-order, typically in fewer iterations.
func TestSecondOrderSelection(t *testing.T) {
	ds, _ := blobWithOutliers(400, 31)
	ids := allIDs(ds.Len())
	first, err := Train(ds, ids, Config{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := Train(ds, ids, Config{Nu: 0.1, SecondOrder: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := second.SumAlpha(); s < 0.999 || s > 1.001 {
		t.Fatalf("second-order sum alpha = %v", s)
	}
	for i, a := range second.Alpha {
		if a < -1e-12 || a > second.Upper[i]+1e-12 {
			t.Fatalf("second-order alpha[%d] out of bounds", i)
		}
	}
	// The two solvers optimize the same dual: their objective values
	// (αᵀKα, lower is better) must agree closely.
	if d := second.alphaDot - first.alphaDot; d > 0.01*first.alphaDot+1e-9 {
		t.Errorf("second-order objective %v notably worse than first-order %v", second.alphaDot, first.alphaDot)
	}
	t.Logf("iterations: first=%d second=%d", first.Iterations, second.Iterations)
	// Boundary agreement: both models classify far outliers outside.
	for _, probe := range [][]float64{{50, 50}, {-40, 10}} {
		if (first.Eval(probe) > 0) != (second.Eval(probe) > 0) {
			t.Errorf("solvers disagree on probe %v", probe)
		}
	}
}

// The lazy (pivot-sampled) weight path and the dense path must agree on the
// weight ordering for the same data. We exercise both by training once
// below and once above the dense cap.
func TestLazyMatrixPathAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	big := denseCap + 50
	rows := make([][]float64, big)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
	}
	ds, _ := vec.FromRows(rows)
	times := make([]int, big)
	m, err := Train(ds, allIDs(big), Config{Nu: 0.1, Times: times})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.SumAlpha(); s < 0.999 || s > 1.001 {
		t.Errorf("lazy path sum alpha = %v", s)
	}
	for i, a := range m.Alpha {
		if a < -1e-12 || a > m.Upper[i]+1e-12 {
			t.Errorf("lazy path alpha[%d]=%v out of bounds", i, a)
		}
	}
	// Boundary behaviour preserved: top SVs beyond median distance.
	mean := ds.Mean(allIDs(big))
	top := m.TopSupportVectors(10)
	beyond := 0
	for _, id := range top {
		if vec.Dist(ds.Point(int(id)), mean) > 2 {
			beyond++
		}
	}
	if beyond < 7 {
		t.Errorf("only %d/10 lazy-path top SVs on the boundary", beyond)
	}
}
