package svdd

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

// gaussCloud builds an n×d standard-normal cloud, scaled so the σ = r/√2
// rule yields a well-conditioned kernel.
func gaussCloud(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	coords := make([]float64, 0, n*d)
	for i := 0; i < n*d; i++ {
		coords = append(coords, rng.NormFloat64()*3)
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

// TestParallelFillBitIdentical pins the tentpole guarantee: the dense fill
// produces bit-identical matrices for every worker count. n=200 stays in
// the always-eager zone; n=512 exercises the parallel zone against the
// forced serial eager fill.
func TestParallelFillBitIdentical(t *testing.T) {
	for _, tc := range []struct{ n, d int }{{200, 4}, {200, 24}, {512, 8}, {512, 24}} {
		ds := gaussCloud(tc.n, tc.d, int64(tc.n+tc.d))
		ids := vec.Iota(tc.n)
		sigma := SigmaLowerBound(ds, ids)

		forceEagerFill = true
		ref := newKernelMatrix(ds, ids, sigma, 1)
		forceEagerFill = false
		if ref.full == nil {
			t.Fatalf("n=%d: forced serial fill is not dense", tc.n)
		}
		refCopy := append([]float64(nil), ref.full...)
		releaseMatrix(ref)

		for _, workers := range []int{2, 8} {
			km := newKernelMatrix(ds, ids, sigma, workers)
			if km.full == nil {
				t.Fatalf("n=%d workers=%d: parallel fill is not dense", tc.n, workers)
			}
			for i, v := range km.full {
				if v != refCopy[i] {
					t.Fatalf("n=%d d=%d workers=%d: entry (%d,%d) = %x, serial %x",
						tc.n, tc.d, workers, i/tc.n, i%tc.n, math.Float64bits(v), math.Float64bits(refCopy[i]))
				}
			}
			releaseMatrix(km)
		}
	}
}

// TestLazyRowsMatchDenseFill pins the other half of the storage-mode
// guarantee: lazily materialized rows (the serial path above
// weightsExactCap) hold bit-identical values to the eager dense fill,
// including the scalar at() fallback, in both the plain and cached-norms
// distance regimes.
func TestLazyRowsMatchDenseFill(t *testing.T) {
	for _, d := range []int{8, 24} { // below and above dist.NormCachedMinDim
		n := 300
		ds := gaussCloud(n, d, int64(d))
		ids := vec.Iota(n)
		sigma := SigmaLowerBound(ds, ids)

		lazy := newKernelMatrix(ds, ids, sigma, 1)
		if lazy.full != nil {
			t.Fatalf("d=%d: expected lazy storage at n=%d with one worker", d, n)
		}
		dense := newKernelMatrix(ds, ids, sigma, 2)
		if dense.full == nil {
			t.Fatalf("d=%d: expected dense storage with two workers", d)
		}

		// Scalar fallback before any row exists.
		for _, pair := range [][2]int{{0, n - 1}, {7, 3}, {n / 2, n/2 + 1}} {
			i, j := pair[0], pair[1]
			if got, want := lazy.at(i, j), dense.at(i, j); got != want {
				t.Errorf("d=%d: at(%d,%d) lazy %x dense %x", d, i, j,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
		// Full rows.
		for _, i := range []int{0, 1, n / 3, n - 1} {
			lr, dr := lazy.row(i), dense.row(i)
			for j := 0; j < n; j++ {
				if lr[j] != dr[j] {
					t.Fatalf("d=%d: row %d entry %d lazy %x dense %x", d, i, j,
						math.Float64bits(lr[j]), math.Float64bits(dr[j]))
				}
			}
		}
		releaseMatrix(lazy)
		releaseMatrix(dense)
	}
}

// TestTrainWorkersDeterministic verifies the end-to-end consequence: a
// training run is bit-identical across worker counts, storage modes
// included.
func TestTrainWorkersDeterministic(t *testing.T) {
	for _, d := range []int{8, 24} {
		ds := gaussCloud(400, d, 11)
		ids := vec.Iota(400)
		times := make([]int, 400)
		base, err := Train(ds, ids, Config{Nu: 0.1, Times: times, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			m, err := Train(ds, ids, Config{Nu: 0.1, Times: times, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			if m.Iterations != base.Iterations || m.R2 != base.R2 {
				t.Fatalf("d=%d workers=%d: iterations/R2 %d/%v differ from serial %d/%v",
					d, workers, m.Iterations, m.R2, base.Iterations, base.R2)
			}
			for i := range m.Alpha {
				if m.Alpha[i] != base.Alpha[i] {
					t.Fatalf("d=%d workers=%d: alpha[%d] differs", d, workers, i)
				}
			}
		}
	}
}

// kktViolation returns the maximal-violating-pair gap of a trained model:
// max over feasible down candidates of f_i minus min over feasible up
// candidates of f_j. Convergence means the gap is below tolerance.
func kktViolation(t *testing.T, ds *vec.Dataset, m *Model) float64 {
	t.Helper()
	km := newKernelMatrix(ds, m.IDs, m.Sigma, 1)
	defer releaseMatrix(km)
	n := len(m.IDs)
	upVal, downVal := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		var f float64
		row := km.row(i)
		for j := 0; j < n; j++ {
			f += m.Alpha[j] * row[j]
		}
		if m.Alpha[i] < m.Upper[i]-svThreshold && f < upVal {
			upVal = f
		}
		if m.Alpha[i] > svThreshold && f > downVal {
			downVal = f
		}
	}
	return downVal - upVal
}

// TestShrinkMatchesFullScan verifies that shrinking changes no observable
// output: the final full-pass KKT re-check makes the shrunk solver converge
// to a model satisfying the same conditions, and on these inputs the very
// same iterate path.
func TestShrinkMatchesFullScan(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		ds := gaussCloud(350, 6, seed)
		ids := vec.Iota(350)
		times := make([]int, 350)
		full, err := Train(ds, ids, Config{Nu: 0.05, Times: times, NoShrink: true})
		if err != nil {
			t.Fatal(err)
		}
		shrunk, err := Train(ds, ids, Config{Nu: 0.05, Times: times})
		if err != nil {
			t.Fatal(err)
		}
		if g := kktViolation(t, ds, shrunk); g >= defaultTol {
			t.Errorf("seed %d: shrunk model violates KKT by %g", seed, g)
		}
		// Shrinking may select different pairs after the first prune, so the
		// iterate paths can diverge — but both minimize the same convex dual
		// to the same KKT gap, bounding the objective difference by O(tol).
		if math.Abs(full.ObjectiveValue()-shrunk.ObjectiveValue()) > 1e-3 {
			t.Errorf("seed %d: objective %g (shrink) vs %g (full scan)",
				seed, shrunk.ObjectiveValue(), full.ObjectiveValue())
		}
		if s := shrunk.SumAlpha(); math.Abs(s-1) > 1e-9 {
			t.Errorf("seed %d: sum alpha = %g", seed, s)
		}
	}
}

// TestWarmStartEquivalent verifies a warm-started training converges to the
// same dual solution as a cold start at the same tolerance: equal objective
// within tolerance, full KKT satisfied, feasible simplex mass.
func TestWarmStartEquivalent(t *testing.T) {
	ds := gaussCloud(500, 4, 9)
	allIds := vec.Iota(500)
	prev, err := Train(ds, allIds[:400], Config{Nu: 0.08, Times: make([]int, 400)})
	if err != nil {
		t.Fatal(err)
	}
	warmAlpha := make([]float64, 500)
	copy(warmAlpha, prev.Alpha)

	cold, err := Train(ds, allIds, Config{Nu: 0.08, Times: make([]int, 500)})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Train(ds, allIds, Config{Nu: 0.08, Times: make([]int, 500), WarmAlpha: warmAlpha})
	if err != nil {
		t.Fatal(err)
	}
	if g := kktViolation(t, ds, warm); g >= defaultTol {
		t.Errorf("warm model violates KKT by %g", g)
	}
	if s := warm.SumAlpha(); math.Abs(s-1) > 1e-9 {
		t.Errorf("warm sum alpha = %g", s)
	}
	// Identical minima up to the solver tolerance: the dual is convex, so
	// both runs end within tol-induced distance of the optimum.
	if diff := math.Abs(warm.ObjectiveValue() - cold.ObjectiveValue()); diff > 1e-3 {
		t.Errorf("warm objective %g vs cold %g (diff %g)",
			warm.ObjectiveValue(), cold.ObjectiveValue(), diff)
	}
}

// TestWarmStartRejectsBadLength pins the config validation.
func TestWarmStartRejectsBadLength(t *testing.T) {
	ds := gaussCloud(20, 2, 1)
	if _, err := Train(ds, vec.Iota(20), Config{Nu: 0.5, WarmAlpha: make([]float64, 7)}); err == nil {
		t.Fatal("want error for mismatched WarmAlpha length")
	}
}

// TestInitAlpha covers the warm-start normalization cases directly.
func TestInitAlpha(t *testing.T) {
	upper := []float64{0.5, 0.5, 0.5, 0.5}
	sum := func(a []float64) float64 {
		var s float64
		for _, v := range a {
			s += v
		}
		return s
	}

	// Cold start: greedy cap-respecting fill.
	a := make([]float64, 4)
	initAlpha(a, upper, nil)
	if a[0] != 0.5 || a[1] != 0.5 || a[2] != 0 || sum(a) != 1 {
		t.Errorf("cold fill = %v", a)
	}

	// Excess mass scales down inside the boxes.
	a = make([]float64, 4)
	initAlpha(a, upper, []float64{0.5, 0.5, 0.5, 0.5})
	if math.Abs(sum(a)-1) > 1e-12 || a[0] != 0.25 {
		t.Errorf("scaled warm = %v", a)
	}

	// Deficit is pushed onto the nonzero entries first, keeping zeros zero.
	a = make([]float64, 4)
	initAlpha(a, upper, []float64{0.4, 0.2, 0, 0})
	if math.Abs(sum(a)-1) > 1e-12 || a[2] != 0 || a[3] != 0 {
		t.Errorf("sparse top-up = %v", a)
	}

	// Clamping: negatives and over-cap values land inside the box.
	a = make([]float64, 4)
	initAlpha(a, upper, []float64{2, -1, 0.25, 0})
	if a[0] != 0.5 || a[1] != 0 || math.Abs(sum(a)-1) > 1e-12 {
		t.Errorf("clamped warm = %v", a)
	}

	// All-zero warm vector falls back to the cold fill.
	a = make([]float64, 4)
	initAlpha(a, upper, []float64{0, 0, 0, 0})
	if a[0] != 0.5 || a[1] != 0.5 || sum(a) != 1 {
		t.Errorf("zero warm fill = %v", a)
	}
}

// TestTopSupportVectorsTieBreak pins the deterministic ordering when
// support vectors tie on boundary score: ids ascend.
func TestTopSupportVectorsTieBreak(t *testing.T) {
	m := &Model{
		IDs:     []int32{42, 7, 19, 3, 88},
		Alpha:   []float64{0.2, 0.2, 0.2, 0.2, 0.2},
		Upper:   []float64{1, 1, 1, 1, 1},
		svScore: []float64{0.5, 0.5, 0.5, 0.5, 0.5},
	}
	got := m.TopSupportVectors(3)
	want := []int32{3, 7, 19}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("equal-score tie break = %v, want %v", got, want)
		}
	}
	// Mixed scores: higher score first, ties among the rest by id.
	m.svScore = []float64{0.5, 0.9, 0.5, 0.5, 0.5}
	got = m.TopSupportVectors(3)
	want = []int32{7, 3, 19}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("mixed-score tie break = %v, want %v", got, want)
		}
	}
	// Nil svScore (untrained construction) must not panic and still order
	// by id on the all-equal scores.
	m.svScore = nil
	got = m.TopSupportVectors(2)
	want = []int32{3, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-score tie break = %v, want %v", got, want)
		}
	}
}

// benchTrainConfig mirrors a DBSVEC training round at the acceptance shape
// ñ=512, d=8.
func benchTrainConfig() Config {
	return Config{Nu: 0.1, Times: make([]int, 512), Dim: 8, MinPts: 100}
}

// BenchmarkTrain512d8 is the acceptance micro-benchmark recorded in
// internal/svdd/README.md. The serial baseline forces the non-adaptive
// eager fill with a full-scan solver; the fast variants layer the adaptive
// fill strategy, shrinking and parallel workers on top.
func BenchmarkTrain512d8(b *testing.B) {
	ds := gaussCloud(512, 8, 3)
	ids := vec.Iota(512)
	run := func(b *testing.B, cfg Config, eager bool) {
		forceEagerFill = eager
		defer func() { forceEagerFill = false }()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := Train(ds, ids, cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("baseline-eager-serial", func(b *testing.B) {
		cfg := benchTrainConfig()
		cfg.Workers, cfg.NoShrink = 1, true
		run(b, cfg, true)
	})
	b.Run("fast-serial", func(b *testing.B) {
		cfg := benchTrainConfig()
		cfg.Workers = 1
		run(b, cfg, false)
	})
	b.Run("fast-workers8", func(b *testing.B) {
		cfg := benchTrainConfig()
		cfg.Workers = 8
		run(b, cfg, false)
	})
}

// BenchmarkKernelFill512 isolates the dense fill the tentpole parallelizes.
func BenchmarkKernelFill512(b *testing.B) {
	ds := gaussCloud(512, 8, 3)
	ids := vec.Iota(512)
	sigma := SigmaLowerBound(ds, ids)
	for _, workers := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			forceEagerFill = true
			defer func() { forceEagerFill = false }()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				km := newKernelMatrix(ds, ids, sigma, workers)
				releaseMatrix(km)
			}
		})
	}
}
