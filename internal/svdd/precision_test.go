package svdd

import (
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

func precTestDataset(t *testing.T, rng *rand.Rand, n, d int, offset float64) *vec.Dataset {
	t.Helper()
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = offset + rng.Float64()*10
	}
	ds, err := vec.NewDataset(coords, d)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestFillDenseBlockedBitIdentical pins the cache-blocked dense fill against
// the straightforward one-row-at-a-time reference: for every storage mode
// and worker count the tiled fill must write exactly the same bits, since
// each entry is a per-pair-independent kernel evaluation.
func TestFillDenseBlockedBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, tc := range []struct {
		name string
		d    int
		prec vec.Precision
	}{
		{"f64-small-dim", 6, vec.F64},
		{"f64-norms", 24, vec.F64}, // d >= NormCachedMinDim: cached-norms rows
		{"f32", 6, vec.F32},
		{"f32-large-dim", 24, vec.F32}, // norms stay off in f32 mode
	} {
		t.Run(tc.name, func(t *testing.T) {
			// n > parallelFillMin and not a multiple of fillBlock, so the
			// parallel path and ragged final tiles are both exercised.
			n := parallelFillMin + 77
			ds := precTestDataset(t, rng, n, tc.d, 0)
			ds, err := ds.ToPrecision(tc.prec)
			if err != nil {
				t.Fatal(err)
			}
			ids := vec.Iota(n)
			sigma := SigmaLowerBound(ds, ids)

			// Reference: same sqRow routing, one full row remainder at a time
			// (the pre-blocking fill order).
			ref := newKernelMatrix(ds, ids, sigma, 1)
			want := make([]float64, n*n)
			row := make([]float64, n)
			for i := 0; i < n; i++ {
				want[i*n+i] = 1
				if i+1 < n {
					seg := row[:n-i-1]
					ref.sqRow(i, i+1, seg)
					for k, d2 := range seg {
						v := math.Exp(-d2 * ref.gamma)
						j := i + 1 + k
						want[i*n+j] = v
						want[j*n+i] = v
					}
				}
			}

			for _, workers := range []int{1, 3, 8} {
				km := newKernelMatrix(ds, ids, sigma, workers)
				if km.full == nil {
					t.Fatalf("workers=%d: expected dense fill", workers)
				}
				for idx := range want {
					if km.full[idx] != want[idx] {
						t.Fatalf("workers=%d: entry (%d,%d) = %v, reference %v",
							workers, idx/n, idx%n, km.full[idx], want[idx])
					}
				}
			}
		})
	}
}

// TestF32ModeDisablesNormsIdentity is the regression for the cached-norms
// cancellation hazard: in float32 storage mode the kernel matrix and
// KernelDistances must not route through the ‖a‖²+‖q‖²−2a·q identity even
// above NormCachedMinDim, because on large-magnitude coordinates the
// identity's cancellation error dwarfs the distances float32 mode cares
// about. The plain f32 kernels keep full accuracy: their kernel distances
// must agree with a direct SqDist evaluation to ULP precision where the
// norms identity would be off by orders of magnitude more.
func TestF32ModeDisablesNormsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const n, d = 60, 24 // d >= NormCachedMinDim
	// Coordinates near 1e6 with spread ~10: ‖a‖² ≈ 2.4e13 while distances are
	// ~1e3, the regime where the identity loses ~10 digits.
	ds64 := precTestDataset(t, rng, n, d, 1e6)
	ds, err := ds64.ToPrecision(vec.F32)
	if err != nil {
		t.Fatal(err)
	}
	ids := vec.Iota(n)
	sigma := SigmaLowerBound(ds, ids)

	if km := newKernelMatrix(ds, ids, sigma, 2); km.norms != nil {
		t.Fatal("f32-mode kernel matrix cached norms; the identity must be gated off")
	}
	// The F64 view of the same quantized coordinates does use the identity.
	master, err := ds.ToPrecision(vec.F64)
	if err != nil {
		t.Fatal(err)
	}
	if km := newKernelMatrix(master, ids, sigma, 2); km.norms == nil {
		t.Fatal("f64 kernel matrix at d>=NormCachedMinDim should cache norms")
	}

	got := KernelDistances(ds, ids, sigma)
	// Naive reference with plain full-precision distances.
	gamma := 1 / (2 * sigma * sigma)
	s := make([]float64, n)
	var double float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := math.Exp(-dist.SqDist(ds.Point(i), ds.Point(j)) * gamma)
			s[i] += v
		}
	}
	for i := 0; i < n; i++ {
		double += s[i]
	}
	for i := 0; i < n; i++ {
		want := double/float64(n*n) + 1 - 2*s[i]/float64(n)
		if want < 0 {
			want = 0
		}
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("KernelDistances[%d] = %v, plain-kernel reference %v", i, got[i], want)
		}
	}
}

// TestTrainF32MatchesWidenedMaster: below the norms threshold both storage
// modes run the very same float64 arithmetic, so training on float32 storage
// must reproduce the widened-master model bit for bit — support vectors,
// multipliers, radius and all.
func TestTrainF32MatchesWidenedMaster(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	const n, d = 200, 8
	ds64 := precTestDataset(t, rng, n, d, 0)
	ds32, err := ds64.ToPrecision(vec.F32)
	if err != nil {
		t.Fatal(err)
	}
	master, err := ds32.ToPrecision(vec.F64)
	if err != nil {
		t.Fatal(err)
	}
	ids := vec.Iota(n)
	cfg := func() Config {
		return Config{Nu: 0.1, Times: make([]int, n), Tol: 1e-4, Dim: d, MinPts: 20, Workers: 3}
	}
	m32, err := Train(ds32, ids, cfg())
	if err != nil {
		t.Fatal(err)
	}
	m64, err := Train(master, ids, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if m32.R2 != m64.R2 || m32.Iterations != m64.Iterations {
		t.Fatalf("f32 model (R2=%v, iters=%d) != widened-master model (R2=%v, iters=%d)",
			m32.R2, m32.Iterations, m64.R2, m64.Iterations)
	}
	if len(m32.Alpha) != len(m64.Alpha) {
		t.Fatalf("alpha lengths differ: %d vs %d", len(m32.Alpha), len(m64.Alpha))
	}
	for i := range m32.Alpha {
		if m32.Alpha[i] != m64.Alpha[i] {
			t.Fatalf("alpha[%d]: f32 %v != widened %v", i, m32.Alpha[i], m64.Alpha[i])
		}
	}
}
