// Package svdd implements Support Vector Domain Description (Tax & Duin,
// 1999) with the three DBSVEC enhancements from Section IV of the paper:
//
//  1. adaptive per-point penalty weights ω_i that cap each Lagrange
//     multiplier at ω_i·C (Eq. 8–11), steering support vectors toward
//     fresh points on the sub-cluster boundary;
//  2. the ν parameterization C = 1/(ν·ñ) with the adaptive choice ν*
//     (Eq. 20);
//  3. the kernel width lower bound σ = r/√2 that avoids overfitting
//     (Section IV-B2).
//
// The weighted dual (Eq. 11) is solved with a hand-rolled Sequential
// Minimal Optimization (SMO) solver: with the Gaussian kernel the dual is
//
//	minimize    αᵀKα
//	subject to  0 ≤ α_i ≤ ω_i·C,  Σ α_i = 1,
//
// optimized by repeatedly selecting the maximal-violating pair and moving
// mass between its two multipliers in closed form.
package svdd

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dbsvec/internal/vec"
)

// Config controls one SVDD training run.
type Config struct {
	// Nu in (0,1]: upper bound on the fraction of boundary support vectors
	// and lower bound on the fraction of support vectors (Schölkopf et al.).
	// When 0, ν* from Eq. 20 requires Dim and MinPts below.
	Nu float64
	// Sigma is the Gaussian kernel RMS width. When 0 the σ = r/√2 rule is
	// applied to the target set.
	Sigma float64
	// Weights are the penalty weights ω_i aligned with the target ids; nil
	// means uniform weights of 1 (plain SVDD).
	Weights []float64
	// Times, when non-nil, activates the adaptive penalty weights of Eq. 7
	// computed internally (reusing the kernel matrix, which is cheaper than
	// a separate KernelDistances pass): ω_i = λ^{Times[i]}·(1 − D_i/max D)
	// with λ = Lambda. Takes precedence over Weights.
	Times []int
	// Lambda is the memory factor λ > 1 used with Times; 0 selects 1.5.
	Lambda float64
	// Dim and MinPts feed the ν* rule when Nu == 0.
	Dim    int
	MinPts int
	// Tol is the KKT violation tolerance; 0 means 1e-4.
	Tol float64
	// MaxIter caps SMO iterations; 0 means 200·ñ + 10000.
	MaxIter int
	// SecondOrder switches working-set selection from the maximal-violating
	// pair to libsvm-style second-order selection (WSS2): the up candidate
	// is chosen by gradient and the down candidate by the largest predicted
	// objective decrease. Usually converges in fewer iterations at a higher
	// per-iteration cost.
	SecondOrder bool
}

// Model is a trained SVDD description of a target set.
type Model struct {
	// IDs are the global dataset ids of the target points, in training
	// order.
	IDs []int32
	// Alpha are the Lagrange multipliers aligned with IDs.
	Alpha []float64
	// Upper are the per-point caps ω_i·C aligned with IDs.
	Upper []float64
	// Sigma is the kernel width used.
	Sigma float64
	// R2 is the squared sphere radius in feature space.
	R2 float64
	// Iterations is the number of SMO pair updates performed.
	Iterations int

	ds       *vec.Dataset
	alphaDot float64   // αᵀKα, cached for Eval
	svScore  []float64 // feature-space distance² to the center, per target
}

// Errors returned by Train.
var (
	ErrEmptyTarget = errors.New("svdd: empty target set")
	ErrBadNu       = errors.New("svdd: nu must be in (0,1]")
)

const (
	defaultTol = 1e-4
	// svThreshold: multipliers below this fraction of the uniform value are
	// treated as zero when extracting support vectors.
	svThreshold = 1e-8
)

// Train fits a (weighted) SVDD model to the target points ids of ds.
func Train(ds *vec.Dataset, ids []int32, cfg Config) (*Model, error) {
	n := len(ids)
	if n == 0 {
		return nil, ErrEmptyTarget
	}
	if cfg.Nu < 0 || cfg.Nu > 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadNu, cfg.Nu)
	}
	nu := cfg.Nu
	if nu == 0 {
		nu = NuStar(cfg.Dim, cfg.MinPts, n)
	}
	sigma := cfg.Sigma
	if sigma == 0 {
		sigma = SigmaLowerBound(ds, ids)
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = defaultTol
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 200*n + 10000
	}

	m := &Model{
		IDs:   ids,
		Alpha: make([]float64, n),
		Sigma: sigma,
		ds:    ds,
	}
	if n == 1 {
		m.Upper = []float64{1}
		m.Alpha[0] = 1
		m.R2 = 0
		m.alphaDot = 1
		return m, nil
	}

	km := newKernelMatrix(ds, ids, sigma)

	weights := cfg.Weights
	if cfg.Times != nil {
		lambda := cfg.Lambda
		if lambda == 0 {
			lambda = 1.5
		}
		weights = adaptiveWeights(km, cfg.Times, lambda)
	}

	// Per-point upper bounds u_i = ω_i·C with C = 1/(ν·ñ). Guard
	// feasibility: Σu must exceed 1 for Σα = 1 to be reachable; rescale
	// degenerate weight vectors and floor individual weights so every point
	// stays eligible.
	c := 1 / (nu * float64(n))
	upper := make([]float64, n)
	var sumU float64
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 1e-3 {
				w = 1e-3
			}
		}
		upper[i] = w * c
		sumU += upper[i]
	}
	if sumU < 1.0000001 {
		scale := 1.05 / sumU
		for i := range upper {
			upper[i] *= scale
		}
	}
	m.Upper = upper

	m.solveSMO(km, tol, maxIter, cfg.SecondOrder)
	m.finish(km)
	releaseMatrix(km)
	return m, nil
}

// adaptiveWeights evaluates Eq. 7 from a prepared kernel matrix. For dense
// matrices the kernel distance D_i = c + 1 − (2/ñ)·Σ_j K_ij falls out of
// the exact row sums. For lazy matrices it is estimated from a fixed set of
// evenly spaced pivot rows: D̂_i = ĉ + 1 − (2/m)·Σ_{p∈pivots} K_ip. Only
// the *ranking* of distances matters for the weights (they are normalized
// by the maximum), so the estimate preserves the behaviour at a fraction of
// the O(ñ²) cost — this keeps each SVDD training linear in ñ as the paper's
// cost analysis assumes.
func adaptiveWeights(km *kernelMatrix, times []int, lambda float64) []float64 {
	n := km.n
	dists := make([]float64, n)
	if km.full != nil {
		rowSums := make([]float64, n)
		var double float64
		for i := 0; i < n; i++ {
			row := km.row(i)
			var s float64
			for _, v := range row {
				s += v
			}
			rowSums[i] = s
			double += s
		}
		nf := float64(n)
		c := double / (nf * nf)
		for i := 0; i < n; i++ {
			dists[i] = c + 1 - 2*rowSums[i]/nf
		}
	} else {
		const pivots = 96
		m := pivots
		if m > n {
			m = n
		}
		stride := float64(n) / float64(m)
		pivotIdx := make([]int, m)
		for p := 0; p < m; p++ {
			pivotIdx[p] = int(float64(p) * stride)
		}
		sums := make([]float64, n)
		var double float64
		for _, p := range pivotIdx {
			row := km.row(p)
			for i := 0; i < n; i++ {
				sums[i] += row[i]
			}
			for _, q := range pivotIdx {
				double += row[q]
			}
		}
		mf := float64(m)
		c := double / (mf * mf)
		for i := 0; i < n; i++ {
			dists[i] = c + 1 - 2*sums[i]/mf
		}
	}
	maxD := 0.0
	for i, d := range dists {
		if d < 0 {
			d = 0
			dists[i] = 0
		}
		if d > maxD {
			maxD = d
		}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		base := 1.0
		if maxD > 0 {
			base = 1 - dists[i]/maxD
		}
		w[i] = math.Pow(lambda, float64(times[i])) * base
	}
	return w
}

// solveSMO runs SMO on the dual with first-order (maximal violating pair)
// or second-order (WSS2) working-set selection.
func (m *Model) solveSMO(km *kernelMatrix, tol float64, maxIter int, secondOrder bool) {
	n := len(m.IDs)
	alpha := m.Alpha
	upper := m.Upper

	// Feasible start: distribute the unit mass greedily respecting caps.
	remaining := 1.0
	for i := 0; i < n && remaining > 0; i++ {
		a := math.Min(upper[i], remaining)
		alpha[i] = a
		remaining -= a
	}

	// f_i = Σ_j α_j K_ij maintained incrementally. The gradient of αᵀKα is
	// 2f; SMO moves mass from the max-gradient "down" candidate to the
	// min-gradient "up" candidate.
	f := make([]float64, n)
	for j := 0; j < n; j++ {
		if alpha[j] == 0 {
			continue
		}
		row := km.row(j)
		aj := alpha[j]
		for i := 0; i < n; i++ {
			f[i] += aj * row[i]
		}
	}

	for iter := 0; iter < maxIter; iter++ {
		// Select the up candidate (smallest gradient among points that can
		// grow) and the maximal-violation down candidate.
		up, down := -1, -1
		upVal, downVal := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			if alpha[i] < upper[i]-svThreshold && f[i] < upVal {
				upVal, up = f[i], i
			}
			if alpha[i] > svThreshold && f[i] > downVal {
				downVal, down = f[i], i
			}
		}
		if up < 0 || down < 0 || downVal-upVal < tol {
			m.Iterations = iter
			return
		}
		if secondOrder {
			// WSS2: re-pick the down candidate to maximize the predicted
			// objective decrease (f_j − f_up)² / η against up.
			rowUp := km.row(up)
			best, bestGain := -1, 0.0
			for j := 0; j < n; j++ {
				if alpha[j] <= svThreshold || f[j]-upVal < tol {
					continue
				}
				eta := 2 - 2*rowUp[j]
				if eta < 1e-12 {
					eta = 1e-12
				}
				diff := f[j] - upVal
				if gain := diff * diff / eta; gain > bestGain {
					best, bestGain = j, gain
				}
			}
			if best >= 0 {
				down = best
			}
		}
		i, j := up, down
		// Closed-form step: minimize along α_i += Δ, α_j -= Δ.
		eta := 2 - 2*km.at(i, j) // K_ii + K_jj − 2K_ij with Gaussian diag 1
		var delta float64
		if eta > 1e-12 {
			delta = (f[j] - f[i]) / eta
		} else {
			// Degenerate direction (duplicate points): move as far as the
			// box allows; the objective is linear with negative slope.
			delta = math.Inf(1)
		}
		if maxStep := upper[i] - alpha[i]; delta > maxStep {
			delta = maxStep
		}
		if delta > alpha[j] {
			delta = alpha[j]
		}
		if delta <= 0 {
			m.Iterations = iter
			return
		}
		alpha[i] += delta
		alpha[j] -= delta
		rowI := km.row(i)
		rowJ := km.row(j)
		for k := 0; k < n; k++ {
			f[k] += delta * (rowI[k] - rowJ[k])
		}
		m.Iterations = iter + 1
	}
}

// finish computes αᵀKα and the radius R² from the normal support vectors.
func (m *Model) finish(km *kernelMatrix) {
	n := len(m.IDs)
	var dot float64
	f := make([]float64, n)
	for j := 0; j < n; j++ {
		if m.Alpha[j] <= svThreshold {
			continue
		}
		row := km.row(j)
		aj := m.Alpha[j]
		for i := 0; i < n; i++ {
			f[i] += aj * row[i]
		}
	}
	for i := 0; i < n; i++ {
		dot += m.Alpha[i] * f[i]
	}
	m.alphaDot = dot

	// R² from NSVs (0 < α < upper): feature-space distance of an on-sphere
	// point to the center. Fall back to the max over all SVs when every SV
	// sits at its bound. The per-SV distances are kept as boundary scores
	// for TopSupportVectors.
	m.svScore = make([]float64, n)
	var sum float64
	var count int
	var maxAny float64
	for i := 0; i < n; i++ {
		if m.Alpha[i] <= svThreshold {
			continue
		}
		d := 1 - 2*f[i] + dot
		m.svScore[i] = d
		if d > maxAny {
			maxAny = d
		}
		if m.Alpha[i] < m.Upper[i]-svThreshold {
			sum += d
			count++
		}
	}
	if count > 0 {
		m.R2 = sum / float64(count)
	} else {
		m.R2 = maxAny
	}
}

// SupportVectors returns the global ids of all support vectors (α_i > 0).
func (m *Model) SupportVectors() []int32 {
	var out []int32
	for i, a := range m.Alpha {
		if a > svThreshold {
			out = append(out, m.IDs[i])
		}
	}
	return out
}

// TopSupportVectors returns the global ids of the (at most) k support
// vectors farthest from the sphere center in feature space — the
// boundary-most points, which the adaptive weights (Eq. 7) deliberately
// push outside the sphere. DBSVEC uses this to keep the number of range
// queries per training at the ν budget (Section IV-C: ν is a lower bound on
// the SV fraction, and the paper controls the query cost through it).
// k <= 0 returns every support vector.
func (m *Model) TopSupportVectors(k int) []int32 {
	type sv struct {
		id    int32
		score float64
	}
	var all []sv
	for i, a := range m.Alpha {
		if a > svThreshold {
			score := 0.0
			if m.svScore != nil {
				score = m.svScore[i]
			}
			all = append(all, sv{id: m.IDs[i], score: score})
		}
	}
	if k <= 0 || len(all) <= k {
		out := make([]int32, len(all))
		for i, s := range all {
			out[i] = s.id
		}
		return out
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].id < all[b].id // deterministic tie break
	})
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// BoundedSupportVectors returns the global ids of boundary support vectors
// (α_i at its cap, i.e. points on or outside the sphere).
func (m *Model) BoundedSupportVectors() []int32 {
	var out []int32
	for i, a := range m.Alpha {
		if a >= m.Upper[i]-svThreshold {
			out = append(out, m.IDs[i])
		}
	}
	return out
}

// Eval computes the discrimination value F(x) − R² of Eq. 12 for an
// arbitrary point: negative or zero inside the sphere, positive outside.
func (m *Model) Eval(x []float64) float64 {
	gamma := 1 / (2 * m.Sigma * m.Sigma)
	var s float64
	for i, a := range m.Alpha {
		if a <= svThreshold {
			continue
		}
		s += a * math.Exp(-vec.SqDist(m.ds.Point(int(m.IDs[i])), x)*gamma)
	}
	return 1 - 2*s + m.alphaDot - m.R2
}

// SumAlpha returns Σα (1 up to solver tolerance); exposed for tests.
func (m *Model) SumAlpha() float64 {
	var s float64
	for _, a := range m.Alpha {
		s += a
	}
	return s
}
