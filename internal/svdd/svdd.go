// Package svdd implements Support Vector Domain Description (Tax & Duin,
// 1999) with the three DBSVEC enhancements from Section IV of the paper:
//
//  1. adaptive per-point penalty weights ω_i that cap each Lagrange
//     multiplier at ω_i·C (Eq. 8–11), steering support vectors toward
//     fresh points on the sub-cluster boundary;
//  2. the ν parameterization C = 1/(ν·ñ) with the adaptive choice ν*
//     (Eq. 20);
//  3. the kernel width lower bound σ = r/√2 that avoids overfitting
//     (Section IV-B2).
//
// The weighted dual (Eq. 11) is solved with a hand-rolled Sequential
// Minimal Optimization (SMO) solver: with the Gaussian kernel the dual is
//
//	minimize    αᵀKα
//	subject to  0 ≤ α_i ≤ ω_i·C,  Σ α_i = 1,
//
// optimized by repeatedly selecting the maximal-violating pair and moving
// mass between its two multipliers in closed form. The training fast path
// adds three layers on top (see internal/svdd/README.md and the "SVDD
// solver internals" section of DESIGN.md): the dense kernel fill fans out
// across a worker pool, a shrinking heuristic drops bound-pinned
// multipliers from the working set (with a final full-pass KKT re-check so
// converged models are unchanged), and incremental rounds can warm-start
// from the previous round's multipliers.
package svdd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"dbsvec/internal/engine"
	"dbsvec/internal/fault"
	"dbsvec/internal/vec"
)

// Config controls one SVDD training run.
type Config struct {
	// Nu in (0,1]: upper bound on the fraction of boundary support vectors
	// and lower bound on the fraction of support vectors (Schölkopf et al.).
	// When 0, ν* from Eq. 20 requires Dim and MinPts below.
	Nu float64
	// Sigma is the Gaussian kernel RMS width. When 0 the σ = r/√2 rule is
	// applied to the target set.
	Sigma float64
	// Weights are the penalty weights ω_i aligned with the target ids; nil
	// means uniform weights of 1 (plain SVDD).
	Weights []float64
	// Times, when non-nil, activates the adaptive penalty weights of Eq. 7
	// computed internally (reusing the kernel matrix, which is cheaper than
	// a separate KernelDistances pass): ω_i = λ^{Times[i]}·(1 − D_i/max D)
	// with λ = Lambda. Takes precedence over Weights.
	Times []int
	// Lambda is the memory factor λ > 1 used with Times; 0 selects 1.5.
	Lambda float64
	// Dim and MinPts feed the ν* rule when Nu == 0.
	Dim    int
	MinPts int
	// Tol is the KKT violation tolerance; 0 means 1e-4.
	Tol float64
	// MaxIter caps SMO iterations; 0 means 200·ñ + 10000.
	MaxIter int
	// SecondOrder switches working-set selection from the maximal-violating
	// pair to libsvm-style second-order selection (WSS2): the up candidate
	// is chosen by gradient and the down candidate by the largest predicted
	// objective decrease. Usually converges in fewer iterations at a higher
	// per-iteration cost.
	SecondOrder bool
	// Workers fans the dense kernel-matrix fill across this many goroutines
	// with deterministic row-range partitioning (bit-identical to the
	// serial fill for every value). <= 1 fills on the calling goroutine.
	Workers int
	// WarmAlpha, when non-nil, warm-starts the solver from these Lagrange
	// multipliers (aligned with the target ids; new points carry 0). The
	// values are clamped into [0, ω_i·C] and renormalized to Σα = 1, so any
	// previous round's multipliers are a valid start. nil cold-starts with
	// the greedy cap-respecting fill.
	WarmAlpha []float64
	// NoShrink disables the shrinking working-set heuristic, restoring the
	// full scan over every multiplier each iteration. Kept for A/B
	// benchmarking and differential tests: converged models are the same
	// either way, because shrinking always ends with a full-pass KKT
	// re-check.
	NoShrink bool
	// Context, when non-nil, allows cancelling a long training: the solver
	// checks it every ~1k SMO iterations and Train returns ctx's error with
	// the partial model discarded. nil trainings run to completion.
	Context context.Context
}

// Model is a trained SVDD description of a target set.
type Model struct {
	// IDs are the global dataset ids of the target points, in training
	// order.
	IDs []int32
	// Alpha are the Lagrange multipliers aligned with IDs.
	Alpha []float64
	// Upper are the per-point caps ω_i·C aligned with IDs.
	Upper []float64
	// Sigma is the kernel width used.
	Sigma float64
	// Nu is the penalty factor the training actually used (Config.Nu, or
	// the adaptive ν* of Eq. 20 when that was 0).
	Nu float64
	// R2 is the squared sphere radius in feature space.
	R2 float64
	// Iterations is the number of SMO pair updates performed.
	Iterations int
	// Converged reports whether the solver reached the KKT tolerance;
	// false means MaxIter was exhausted first and the model is the best
	// iterate found (Train additionally returns ErrNotConverged so callers
	// cannot mistake a truncated model for a converged one).
	Converged bool
	// Times is the per-stage wall-clock of this training (kernel fill /
	// SMO solve / radius extraction), for the engine's run statistics; its
	// Rounds/NotConverged counters record this training's outcome.
	Times engine.SVDDTimes

	ds       *vec.Dataset
	alphaDot float64   // αᵀKα, cached for Eval
	svScore  []float64 // feature-space distance² to the center, per target
	// detached marks models rebuilt from a Snapshot: ds then holds only the
	// support-vector coordinates in IDs order (row i = IDs[i]), not the full
	// training dataset addressed by global id.
	detached bool
}

// Errors returned by Train. ErrNotConverged and ErrAllSupportVectors are
// *degradation* signals: they come WITH a usable model, and DBSVEC's core
// responds by falling back to exact range-query expansion for the affected
// sub-cluster rather than failing the run.
var (
	ErrEmptyTarget = errors.New("svdd: empty target set")
	ErrBadNu       = errors.New("svdd: nu must be in (0,1]")
	// ErrNotConverged reports that the SMO solver exhausted MaxIter before
	// reaching the KKT tolerance. The returned model is the best iterate
	// (feasible: box constraints and Σα = 1 hold at every iterate) — usable,
	// but its support-vector set may be unreliable.
	ErrNotConverged = errors.New("svdd: solver did not converge within the iteration cap")
	// ErrDegenerateSigma reports that the σ = r/√2 rule (Section IV-B2)
	// collapsed to its numeric floor because every target point coincides;
	// the Gaussian kernel carries no geometry at that width, so no model is
	// returned.
	ErrDegenerateSigma = errors.New("svdd: degenerate kernel width (coincident target set)")
	// ErrAllSupportVectors reports the blowup regime where every target
	// point became a support vector despite a small ν (ν bounds the SV
	// fraction from below, not above — Section IV-C): the sphere describes
	// nothing, and querying "the boundary" would query everything. Only
	// flagged for ν ≤ allSVNuCap on targets of allSVMinTarget points or
	// more; high-ν configurations (e.g. the ν → 1 regime of Eq. 20) make
	// every point a bounded SV by design and are not an error.
	ErrAllSupportVectors = errors.New("svdd: every target point became a support vector")
)

const (
	// degenerateSigmaCutoff flags σ values at the SigmaLowerBound floor
	// (1e-9, reached only when all target points coincide).
	degenerateSigmaCutoff = 1e-8
	// allSVNuCap and allSVMinTarget gate ErrAllSupportVectors; see above.
	allSVNuCap     = 0.25
	allSVMinTarget = 32
)

const (
	defaultTol = 1e-4
	// svThreshold: multipliers below this fraction of the uniform value are
	// treated as zero when extracting support vectors.
	svThreshold = 1e-8
)

// Train fits a (weighted) SVDD model to the target points ids of ds.
//
// Failure contract: ErrNotConverged and ErrAllSupportVectors are returned
// *with* a usable model; every other error returns a nil model. A panic
// anywhere inside training (including worker goroutines of the parallel
// kernel fill) is contained and returned as a *fault.WorkerPanicError.
func Train(ds *vec.Dataset, ids []int32, cfg Config) (model *Model, err error) {
	defer func() {
		if v := recover(); v != nil {
			model, err = nil, fault.AsWorkerPanic(v)
		}
	}()
	n := len(ids)
	if n == 0 {
		return nil, ErrEmptyTarget
	}
	if cfg.Nu < 0 || cfg.Nu > 1 {
		return nil, fmt.Errorf("%w: %g", ErrBadNu, cfg.Nu)
	}
	if cfg.WarmAlpha != nil && len(cfg.WarmAlpha) != n {
		return nil, fmt.Errorf("svdd: warm alphas length %d does not match target size %d", len(cfg.WarmAlpha), n)
	}
	if ctx := cfg.Context; ctx != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	nu := cfg.Nu
	if nu == 0 {
		nu = NuStar(cfg.Dim, cfg.MinPts, n)
	}
	sigma := cfg.Sigma
	if sigma == 0 {
		sigma = SigmaLowerBound(ds, ids)
	}
	tol := cfg.Tol
	if tol == 0 {
		tol = defaultTol
	}
	maxIter := cfg.MaxIter
	if maxIter == 0 {
		maxIter = 200*n + 10000
	}
	if fault.Armed(fault.SolverNonConverge) {
		// Deterministic injection: force MaxIter exhaustion after a single
		// pair update so the ErrNotConverged path runs without a
		// pathological input.
		maxIter = 1
	}

	m := &Model{
		IDs:   ids,
		Alpha: make([]float64, n),
		Sigma: sigma,
		Nu:    nu,
		ds:    ds,
	}
	m.Times.Rounds = 1
	if n == 1 {
		m.Upper = []float64{1}
		m.Alpha[0] = 1
		m.R2 = 0
		m.alphaDot = 1
		m.Converged = true
		return m, nil
	}
	if sigma < degenerateSigmaCutoff {
		return nil, fmt.Errorf("%w: sigma %g", ErrDegenerateSigma, sigma)
	}

	fill := engine.StartPhase()
	km := newKernelMatrix(ds, ids, sigma, cfg.Workers)

	weights := cfg.Weights
	if cfg.Times != nil {
		lambda := cfg.Lambda
		if lambda == 0 {
			lambda = 1.5
		}
		weights = adaptiveWeights(km, cfg.Times, lambda)
	}

	// Per-point upper bounds u_i = ω_i·C with C = 1/(ν·ñ). Guard
	// feasibility: Σu must exceed 1 for Σα = 1 to be reachable; rescale
	// degenerate weight vectors and floor individual weights so every point
	// stays eligible.
	c := 1 / (nu * float64(n))
	upper := make([]float64, n)
	var sumU float64
	for i := 0; i < n; i++ {
		w := 1.0
		if weights != nil {
			w = weights[i]
			if w < 1e-3 {
				w = 1e-3
			}
		}
		upper[i] = w * c
		sumU += upper[i]
	}
	if sumU < 1.0000001 {
		scale := 1.05 / sumU
		for i := range upper {
			upper[i] *= scale
		}
	}
	m.Upper = upper
	fill.Stop(&m.Times.Fill)

	solve := engine.StartPhase()
	converged, solveErr := m.solveSMO(cfg.Context, km, tol, maxIter, cfg.SecondOrder, !cfg.NoShrink, cfg.WarmAlpha)
	solve.Stop(&m.Times.Solve)
	if solveErr != nil {
		releaseMatrix(km)
		return nil, solveErr
	}
	m.Converged = converged

	fin := engine.StartPhase()
	m.finish(km)
	fin.Stop(&m.Times.Finish)
	releaseMatrix(km)

	if !m.Converged {
		m.Times.NotConverged = 1
		return m, fmt.Errorf("%w: %d iterations", ErrNotConverged, m.Iterations)
	}
	if nu <= allSVNuCap && n >= allSVMinTarget {
		sv := 0
		for _, a := range m.Alpha {
			if a > svThreshold {
				sv++
			}
		}
		if sv == n {
			return m, fmt.Errorf("%w: %d of %d targets (nu=%g)", ErrAllSupportVectors, sv, n, nu)
		}
	}
	return m, nil
}

// adaptiveWeights evaluates Eq. 7 from a prepared kernel matrix. For small
// dense matrices (ñ <= weightsExactCap) the kernel distance
// D_i = c + 1 − (2/ñ)·Σ_j K_ij falls out of the exact row sums. For larger
// targets it is estimated from a fixed set of evenly spaced pivot rows:
// D̂_i = ĉ + 1 − (2/m)·Σ_{p∈pivots} K_ip. Only the *ranking* of distances
// matters for the weights (they are normalized by the maximum), so the
// estimate preserves the behaviour at a fraction of the O(ñ²) cost — this
// keeps each SVDD training linear in ñ as the paper's cost analysis
// assumes. The cutoff is independent of the storage layout so that the
// widened dense cap leaves weight vectors unchanged.
func adaptiveWeights(km *kernelMatrix, times []int, lambda float64) []float64 {
	n := km.n
	dists := make([]float64, n)
	if km.full != nil && n <= weightsExactCap {
		rowSums := make([]float64, n)
		var double float64
		for i := 0; i < n; i++ {
			row := km.row(i)
			var s float64
			for _, v := range row {
				s += v
			}
			rowSums[i] = s
			double += s
		}
		nf := float64(n)
		c := double / (nf * nf)
		for i := 0; i < n; i++ {
			dists[i] = c + 1 - 2*rowSums[i]/nf
		}
	} else {
		const pivots = 96
		m := pivots
		if m > n {
			m = n
		}
		stride := float64(n) / float64(m)
		pivotIdx := make([]int, m)
		for p := 0; p < m; p++ {
			pivotIdx[p] = int(float64(p) * stride)
		}
		sums := make([]float64, n)
		var double float64
		for _, p := range pivotIdx {
			row := km.row(p)
			for i := 0; i < n; i++ {
				sums[i] += row[i]
			}
			for _, q := range pivotIdx {
				double += row[q]
			}
		}
		mf := float64(m)
		c := double / (mf * mf)
		for i := 0; i < n; i++ {
			dists[i] = c + 1 - 2*sums[i]/mf
		}
	}
	maxD := 0.0
	for i, d := range dists {
		if d < 0 {
			d = 0
			dists[i] = 0
		}
		if d > maxD {
			maxD = d
		}
	}
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		base := 1.0
		if maxD > 0 {
			base = 1 - dists[i]/maxD
		}
		w[i] = math.Pow(lambda, float64(times[i])) * base
	}
	return w
}

// initAlpha establishes the feasible starting point: the warm-started
// previous-round multipliers when supplied (clamped into the new boxes and
// renormalized to Σα = 1 in a cap-aware way), else the greedy fill that
// distributes the unit mass respecting caps.
func initAlpha(alpha, upper, warm []float64) {
	if warm != nil {
		var sum float64
		for i := range alpha {
			a := warm[i]
			if a < 0 {
				a = 0
			}
			if a > upper[i] {
				a = upper[i]
			}
			alpha[i] = a
			sum += a
		}
		switch {
		case sum > 1:
			// Scaling down keeps every multiplier inside its box.
			scale := 1 / sum
			for i := range alpha {
				alpha[i] *= scale
			}
			return
		case sum > 0:
			// Deficit: push the missing mass back onto the already-nonzero
			// multipliers (the previous round's support vectors),
			// proportionally to their remaining headroom. Keeping the start
			// vector as sparse as the previous solution matters more than
			// where exactly the mass lands — every nonzero multiplier costs
			// a kernel row for the initial gradient and an SMO step to clear
			// if misplaced. A greedy pass over the full target absorbs
			// whatever the support vectors' boxes cannot take (feasibility
			// Σ upper > 1 is guaranteed by the cap setup in Train).
			rem := 1 - sum
			for pass := 0; pass < 4 && rem > 1e-15; pass++ {
				var headroom float64
				for i := range alpha {
					if alpha[i] > 0 {
						headroom += upper[i] - alpha[i]
					}
				}
				if headroom <= 0 {
					break
				}
				scale := rem / headroom
				if scale > 1 {
					scale = 1
				}
				for i := range alpha {
					if alpha[i] > 0 {
						add := (upper[i] - alpha[i]) * scale
						alpha[i] += add
						rem -= add
					}
				}
			}
			for i := 0; i < len(alpha) && rem > 0; i++ {
				add := upper[i] - alpha[i]
				if add > rem {
					add = rem
				}
				if add > 0 {
					alpha[i] += add
					rem -= add
				}
			}
			return
		}
		// sum == 0 (all-new target or zeroed warm vector): cold start below.
	}
	remaining := 1.0
	for i := 0; i < len(alpha) && remaining > 0; i++ {
		a := math.Min(upper[i], remaining)
		alpha[i] = a
		remaining -= a
	}
}

// shrinkPeriod is the number of SMO iterations between working-set pruning
// passes. Pruning costs one scan over the active set, so it must be
// amortized over enough iterations; too long and the solver keeps scanning
// multipliers that have been pinned at their bounds for hundreds of
// iterations.
const shrinkPeriod = 64

// solveSMO runs SMO on the dual with first-order (maximal violating pair)
// or second-order (WSS2) working-set selection.
//
// With shrink set, the solver maintains an active working set: every
// shrinkPeriod iterations, multipliers pinned at a bound that cannot
// currently form a tol-violating pair (α_i = 0 with f_i within tol of the
// maximal gradient, or α_i = u_i with f_i within tol of the minimal one)
// are dropped from selection and from the incremental gradient update, so
// late iterations cost O(|A|) instead of O(ñ). When the active set
// converges, the gradient of every inactive multiplier is reconstructed and
// a full-pass KKT re-check runs over all ñ points; only if that passes is
// the model declared converged, so shrinking never changes the KKT
// conditions a converged model satisfies.
//
// The returned bool reports convergence: false means maxIter was exhausted
// and the current iterate is the best found. A non-nil ctx is polled every
// 1024 iterations; on cancellation the solve aborts with ctx's error.
func (m *Model) solveSMO(ctx context.Context, km *kernelMatrix, tol float64, maxIter int, secondOrder, shrink bool, warm []float64) (bool, error) {
	n := len(m.IDs)
	alpha := m.Alpha
	upper := m.Upper

	initAlpha(alpha, upper, warm)

	// f_i = Σ_j α_j K_ij maintained incrementally. The gradient of αᵀKα is
	// 2f; SMO moves mass from the max-gradient "down" candidate to the
	// min-gradient "up" candidate.
	f := make([]float64, n)
	for j := 0; j < n; j++ {
		if alpha[j] == 0 {
			continue
		}
		row := km.row(j)
		aj := alpha[j]
		for i := 0; i < n; i++ {
			f[i] += aj * row[i]
		}
	}

	// The active working set, as indices into the target. activeMask mirrors
	// it for the gradient reconstruction; shrunk records whether any
	// multiplier is currently excluded.
	active := make([]int32, n)
	for i := range active {
		active[i] = int32(i)
	}
	var activeMask []bool
	shrunk := false
	sincePrune := 0

	// unshrink brings every excluded multiplier back: gradients of the
	// inactive points are reconstructed and the working set reset to the
	// full target, so the next selection pass checks the full KKT
	// conditions.
	unshrink := func() {
		reconstructGradient(km, alpha, f, activeMask)
		active = active[:0]
		for i := 0; i < n; i++ {
			active = append(active, int32(i))
			activeMask[i] = true
		}
		shrunk = false
		sincePrune = 0
	}

	for iter := 0; iter < maxIter; iter++ {
		if ctx != nil && iter&1023 == 0 {
			if err := ctx.Err(); err != nil {
				m.Iterations = iter
				return false, err
			}
		}
		// Select the up candidate (smallest gradient among points that can
		// grow) and the maximal-violation down candidate.
		up, down := -1, -1
		upVal, downVal := math.Inf(1), math.Inf(-1)
		for _, ii := range active {
			i := int(ii)
			if alpha[i] < upper[i]-svThreshold && f[i] < upVal {
				upVal, up = f[i], i
			}
			if alpha[i] > svThreshold && f[i] > downVal {
				downVal, down = f[i], i
			}
		}
		if up < 0 || down < 0 || downVal-upVal < tol {
			if !shrunk {
				m.Iterations = iter
				return true, nil
			}
			// Final full-pass KKT re-check: bring the gradients of the
			// shrunk multipliers up to date, reactivate everything and
			// re-run the selection. A converged verdict is therefore always
			// issued against the full KKT conditions.
			unshrink()
			continue
		}
		if secondOrder {
			// WSS2: re-pick the down candidate to maximize the predicted
			// objective decrease (f_j − f_up)² / η against up.
			rowUp := km.row(up)
			best, bestGain := -1, 0.0
			for _, jj := range active {
				j := int(jj)
				if alpha[j] <= svThreshold || f[j]-upVal < tol {
					continue
				}
				eta := 2 - 2*rowUp[j]
				if eta < 1e-12 {
					eta = 1e-12
				}
				diff := f[j] - upVal
				if gain := diff * diff / eta; gain > bestGain {
					best, bestGain = j, gain
				}
			}
			if best >= 0 {
				down = best
			}
		}
		i, j := up, down
		// Closed-form step: minimize along α_i += Δ, α_j -= Δ.
		eta := 2 - 2*km.at(i, j) // K_ii + K_jj − 2K_ij with Gaussian diag 1
		var delta float64
		if eta > 1e-12 {
			delta = (f[j] - f[i]) / eta
		} else {
			// Degenerate direction (duplicate points): move as far as the
			// box allows; the objective is linear with negative slope.
			delta = math.Inf(1)
		}
		if maxStep := upper[i] - alpha[i]; delta > maxStep {
			delta = maxStep
		}
		if delta > alpha[j] {
			delta = alpha[j]
		}
		if delta <= 0 {
			if !shrunk {
				m.Iterations = iter
				return true, nil
			}
			// Numerically stuck pair inside a shrunk working set: run the
			// same full re-check as the converged path — the full set may
			// offer a pair that can still move.
			unshrink()
			continue
		}
		alpha[i] += delta
		alpha[j] -= delta
		rowI := km.row(i)
		rowJ := km.row(j)
		for _, kk := range active {
			k := int(kk)
			f[k] += delta * (rowI[k] - rowJ[k])
		}
		m.Iterations = iter + 1

		if !shrink {
			continue
		}
		sincePrune++
		if sincePrune < shrinkPeriod {
			continue
		}
		sincePrune = 0
		if activeMask == nil {
			activeMask = make([]bool, n)
			for i := range activeMask {
				activeMask[i] = true
			}
		}
		// Prune multipliers pinned at a bound that cannot currently form a
		// violating pair: at the lower bound they could only serve as the
		// up side, which needs downVal − f_i ≥ tol; at the upper bound only
		// as the down side, needing f_i − upVal ≥ tol. The extremes are the
		// pre-step selection values — a conservative snapshot, corrected by
		// the full re-check at convergence.
		out := active[:0]
		for _, ii := range active {
			k := int(ii)
			atLower := alpha[k] <= svThreshold
			atUpper := alpha[k] >= upper[k]-svThreshold
			if (atLower && downVal-f[k] < tol) || (atUpper && f[k]-upVal < tol) {
				activeMask[k] = false
				shrunk = true
				continue
			}
			out = append(out, ii)
		}
		active = out
	}
	return false, nil
}

// reconstructGradient recomputes f_i = Σ_j α_j K_ij for every inactive
// multiplier (the active ones are maintained incrementally). Cost is
// O(#SV · #inactive) row accesses — paid once per unshrink, not per
// iteration.
func reconstructGradient(km *kernelMatrix, alpha, f []float64, activeMask []bool) {
	n := len(alpha)
	stale := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		if !activeMask[i] {
			f[i] = 0
			stale = append(stale, int32(i))
		}
	}
	if len(stale) == 0 {
		return
	}
	for j := 0; j < n; j++ {
		if alpha[j] == 0 {
			continue
		}
		row := km.row(j)
		aj := alpha[j]
		for _, ii := range stale {
			f[ii] += aj * row[ii]
		}
	}
}

// finish computes αᵀKα and the radius R² from the normal support vectors.
func (m *Model) finish(km *kernelMatrix) {
	n := len(m.IDs)
	var dot float64
	f := make([]float64, n)
	for j := 0; j < n; j++ {
		if m.Alpha[j] <= svThreshold {
			continue
		}
		row := km.row(j)
		aj := m.Alpha[j]
		for i := 0; i < n; i++ {
			f[i] += aj * row[i]
		}
	}
	for i := 0; i < n; i++ {
		dot += m.Alpha[i] * f[i]
	}
	m.alphaDot = dot

	// R² from NSVs (0 < α < upper): feature-space distance of an on-sphere
	// point to the center. Fall back to the max over all SVs when every SV
	// sits at its bound. The per-SV distances are kept as boundary scores
	// for TopSupportVectors.
	m.svScore = make([]float64, n)
	var sum float64
	var count int
	var maxAny float64
	for i := 0; i < n; i++ {
		if m.Alpha[i] <= svThreshold {
			continue
		}
		d := 1 - 2*f[i] + dot
		m.svScore[i] = d
		if d > maxAny {
			maxAny = d
		}
		if m.Alpha[i] < m.Upper[i]-svThreshold {
			sum += d
			count++
		}
	}
	if count > 0 {
		m.R2 = sum / float64(count)
	} else {
		m.R2 = maxAny
	}
}

// SupportVectors returns the global ids of all support vectors (α_i > 0).
func (m *Model) SupportVectors() []int32 {
	var out []int32
	for i, a := range m.Alpha {
		if a > svThreshold {
			out = append(out, m.IDs[i])
		}
	}
	return out
}

// TopSupportVectors returns the global ids of the (at most) k support
// vectors farthest from the sphere center in feature space — the
// boundary-most points, which the adaptive weights (Eq. 7) deliberately
// push outside the sphere. DBSVEC uses this to keep the number of range
// queries per training at the ν budget (Section IV-C: ν is a lower bound on
// the SV fraction, and the paper controls the query cost through it).
// k <= 0 returns every support vector.
func (m *Model) TopSupportVectors(k int) []int32 {
	type sv struct {
		id    int32
		score float64
	}
	var all []sv
	for i, a := range m.Alpha {
		if a > svThreshold {
			score := 0.0
			if m.svScore != nil {
				score = m.svScore[i]
			}
			all = append(all, sv{id: m.IDs[i], score: score})
		}
	}
	if k <= 0 || len(all) <= k {
		out := make([]int32, len(all))
		for i, s := range all {
			out[i] = s.id
		}
		return out
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].score != all[b].score {
			return all[a].score > all[b].score
		}
		return all[a].id < all[b].id // deterministic tie break
	})
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

// BoundedSupportVectors returns the global ids of boundary support vectors
// (α_i at its cap, i.e. points on or outside the sphere). Detached models do
// not carry the per-point caps and return nil.
func (m *Model) BoundedSupportVectors() []int32 {
	if m.Upper == nil {
		return nil
	}
	var out []int32
	for i, a := range m.Alpha {
		if a >= m.Upper[i]-svThreshold {
			out = append(out, m.IDs[i])
		}
	}
	return out
}

// point returns the coordinates of target i: addressed by global id on a
// training-attached model, by target position on a detached one.
func (m *Model) point(i int) []float64 {
	if m.detached {
		return m.ds.Point(i)
	}
	return m.ds.Point(int(m.IDs[i]))
}

// Eval computes the discrimination value F(x) − R² of Eq. 12 for an
// arbitrary point: negative or zero inside the sphere, positive outside.
func (m *Model) Eval(x []float64) float64 {
	gamma := 1 / (2 * m.Sigma * m.Sigma)
	var s float64
	for i, a := range m.Alpha {
		if a <= svThreshold {
			continue
		}
		s += a * math.Exp(-vec.SqDist(m.point(i), x)*gamma)
	}
	return 1 - 2*s + m.alphaDot - m.R2
}

// ObjectiveValue returns the dual objective αᵀKα at the trained solution —
// the quantity SMO minimizes. Differential tests compare it across solver
// configurations (shrinking on/off, warm vs cold start), which must agree
// up to the convergence tolerance.
func (m *Model) ObjectiveValue() float64 { return m.alphaDot }

// SumAlpha returns Σα (1 up to solver tolerance); exposed for tests.
func (m *Model) SumAlpha() float64 {
	var s float64
	for _, a := range m.Alpha {
		s += a
	}
	return s
}
