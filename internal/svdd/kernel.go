package svdd

import (
	"math"
	"sync"

	"dbsvec/internal/dist"
	"dbsvec/internal/vec"
)

// GaussianKernel evaluates the Gaussian (RBF) kernel of Eq. 6,
// K(a,b) = exp(-||a-b||² / (2σ²)).
func GaussianKernel(a, b []float64, sigma float64) float64 {
	return math.Exp(-vec.SqDist(a, b) / (2 * sigma * sigma))
}

// kernelMatrix is a symmetric ñ×ñ Gaussian kernel matrix over a target set.
// Small targets are materialized densely; larger ones compute rows lazily
// and cache them, which keeps SMO at the paper's O(ñ) per iteration
// (Section IV-D) — only the rows the solver actually touches are evaluated.
type kernelMatrix struct {
	ds    *vec.Dataset
	m     dist.Matrix
	ids   []int32
	gamma float64 // 1/(2σ²)
	n     int
	full  []float64   // dense storage when n <= denseCap
	rows  [][]float64 // lazy row cache otherwise
	// norms caches ‖x_i‖² per target for the cached-norms distance identity;
	// nil below dist.NormCachedMinDim, where the identity does not pay off.
	// The identity reassociates arithmetic (ULP-level error), which the
	// tolerance-based SMO solver absorbs — range-query backends never use it.
	norms []float64
}

// denseCap is the largest target size for which the dense ñ×ñ kernel matrix
// is materialized eagerly. Beyond it, lazy rows win because SMO touches a
// small fraction of the matrix.
const denseCap = 256

// matrixPool recycles dense kernel-matrix backing slices. DBSVEC trains
// SVDD hundreds of times per run with similar target sizes, so reuse avoids
// repeated large allocations and their zeroing cost.
var matrixPool sync.Pool

func getMatrixBuf(n int) []float64 {
	if v := matrixPool.Get(); v != nil {
		buf := v.([]float64)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// releaseMatrix returns the model's dense matrix to the pool; called by
// Train once the solver is done with it.
func releaseMatrix(km *kernelMatrix) {
	if km.full != nil {
		matrixPool.Put(km.full) //nolint:staticcheck // slice reuse is the point
		km.full = nil
	}
	km.rows = nil
}

func newKernelMatrix(ds *vec.Dataset, ids []int32, sigma float64) *kernelMatrix {
	km := &kernelMatrix{ds: ds, m: ds.Matrix(), ids: ids, gamma: 1 / (2 * sigma * sigma), n: len(ids)}
	if ds.Dim() >= dist.NormCachedMinDim {
		km.norms = dist.NormsIDs(km.m, ids)
	}
	if km.n <= denseCap {
		km.full = getMatrixBuf(km.n * km.n)
		scratch := make([]float64, km.n)
		for i := 0; i < km.n; i++ {
			km.full[i*km.n+i] = 1
			row := scratch[:km.n-i-1]
			km.sqRow(i, i+1, row)
			for k, d2 := range row {
				v := math.Exp(-d2 * km.gamma)
				j := i + 1 + k
				km.full[i*km.n+j] = v
				km.full[j*km.n+i] = v
			}
		}
	} else {
		km.rows = make([][]float64, km.n)
	}
	return km
}

// sqRow writes the squared distances from target i to targets
// [off, off+len(out)) into out via the batched one-to-many kernel, routing
// through the cached-norms identity when it is enabled for this matrix.
func (km *kernelMatrix) sqRow(i, off int, out []float64) {
	q := km.ds.Point(int(km.ids[i]))
	sub := km.ids[off : off+len(out)]
	if km.norms != nil {
		dist.SqDistsToCached(km.m, q, km.norms[i], sub, km.norms[off:off+len(out)], out)
		return
	}
	dist.SqDistsTo(km.m, q, sub, out)
}

// row returns row i of the kernel matrix (length ñ), computing and caching
// it on first access.
func (km *kernelMatrix) row(i int) []float64 {
	if km.full != nil {
		return km.full[i*km.n : (i+1)*km.n]
	}
	if r := km.rows[i]; r != nil {
		return r
	}
	r := make([]float64, km.n)
	km.sqRow(i, 0, r)
	for j := range r {
		r[j] = math.Exp(-r[j] * km.gamma)
	}
	r[i] = 1
	km.rows[i] = r
	return r
}

// at returns K(i,j) without forcing a whole row when neither is cached.
func (km *kernelMatrix) at(i, j int) float64 {
	if i == j {
		return 1
	}
	if km.full != nil {
		return km.full[i*km.n+j]
	}
	if r := km.rows[i]; r != nil {
		return r[j]
	}
	if r := km.rows[j]; r != nil {
		return r[i]
	}
	return math.Exp(-vec.SqDist(km.ds.Point(int(km.ids[i])), km.ds.Point(int(km.ids[j]))) * km.gamma)
}

// KernelDistances evaluates the kernel distance function D(x) of Eq. 5 for
// every point of the target set: the squared feature-space distance from
// Φ(x_i) to the kernel centroid (1/ñ)ΣΦ(x_j). Exact O(ñ²) version; the
// solver's internal weight computation uses the pivot-sampled estimate
// instead.
func KernelDistances(ds *vec.Dataset, ids []int32, sigma float64) []float64 {
	n := len(ids)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	gamma := 1 / (2 * sigma * sigma)
	m := ds.Matrix()
	var norms []float64
	if ds.Dim() >= dist.NormCachedMinDim {
		norms = dist.NormsIDs(m, ids)
	}
	// s[i] = Σ_j K(x_i, x_j); the double sum is Σ_i s[i].
	s := make([]float64, n)
	scratch := make([]float64, n)
	var double float64
	for i := 0; i < n; i++ {
		s[i] += 1 // K(x_i,x_i)
		row := scratch[:n-i-1]
		if norms != nil {
			dist.SqDistsToCached(m, ds.Point(int(ids[i])), norms[i], ids[i+1:], norms[i+1:], row)
		} else {
			dist.SqDistsTo(m, ds.Point(int(ids[i])), ids[i+1:], row)
		}
		for k, d2 := range row {
			v := math.Exp(-d2 * gamma)
			s[i] += v
			s[i+1+k] += v
		}
	}
	for i := 0; i < n; i++ {
		double += s[i]
	}
	nf := float64(n)
	c := double / (nf * nf)
	for i := 0; i < n; i++ {
		d := c + 1 - 2*s[i]/nf
		if d < 0 {
			d = 0 // numeric guard; D is a squared norm
		}
		out[i] = d
	}
	return out
}

// SigmaLowerBound returns the paper's kernel width choice σ = r/√2
// (Section IV-B2), where r is the distance from the centroid of the target
// points to the farthest target point. A small positive floor keeps the
// kernel well-defined for degenerate targets (single point, duplicates).
func SigmaLowerBound(ds *vec.Dataset, ids []int32) float64 {
	const floor = 1e-9
	if len(ids) == 0 {
		return floor
	}
	mean := ds.Mean(ids)
	var maxD2 float64
	for _, id := range ids {
		if d2 := vec.SqDist(ds.Point(int(id)), mean); d2 > maxD2 {
			maxD2 = d2
		}
	}
	sigma := math.Sqrt(maxD2) / math.Sqrt2
	if sigma < floor {
		sigma = floor
	}
	return sigma
}

// NuStar returns the paper's adaptive penalty factor
// ν* = d·√(log_MinPts ñ)/ñ (Eq. 20), clamped into (0, 1].
func NuStar(dim, minPts, targetSize int) float64 {
	if targetSize <= 0 {
		return 1
	}
	nf := float64(targetSize)
	nu := 1 / nf // minimum meaningful value: a single support vector
	if minPts > 1 && targetSize > 1 {
		l := math.Log(nf) / math.Log(float64(minPts))
		if l > 0 {
			nu = float64(dim) * math.Sqrt(l) / nf
		}
	}
	if nu < 1/nf {
		nu = 1 / nf
	}
	if nu > 1 {
		nu = 1
	}
	return nu
}
