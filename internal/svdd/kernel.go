package svdd

import (
	"math"
	"sync"

	"dbsvec/internal/dist"
	"dbsvec/internal/engine"
	"dbsvec/internal/vec"
)

// GaussianKernel evaluates the Gaussian (RBF) kernel of Eq. 6,
// K(a,b) = exp(-||a-b||² / (2σ²)).
func GaussianKernel(a, b []float64, sigma float64) float64 {
	return math.Exp(-dist.SqDist(a, b) / (2 * sigma * sigma))
}

// kernelMatrix is a symmetric ñ×ñ Gaussian kernel matrix over a target set.
// Small targets (ñ <= weightsExactCap, whose exact adaptive-weights pass
// needs every row anyway) are materialized eagerly; with Workers > 1 the
// eager fill extends to denseCap and fans out across the worker pool. All
// other targets compute rows lazily and cache them, which keeps SMO at the
// paper's O(ñ) per iteration (Section IV-D) — only the rows the solver
// actually touches are evaluated, and with few support vectors that is a
// small fraction of the matrix. Both representations produce bit-identical
// entries (see at), so the storage choice never changes a trained model.
type kernelMatrix struct {
	ds    *vec.Dataset
	m     dist.Matrix
	m32   dist.Matrix32 // float32 mirror; Coords non-nil only in f32 storage mode
	ids   []int32
	gamma float64 // 1/(2σ²)
	n     int
	full  []float64   // dense storage when n <= denseCap
	rows  [][]float64 // lazy row cache otherwise
	// norms caches ‖x_i‖² per target for the cached-norms distance identity;
	// nil below dist.NormCachedMinDim, where the identity does not pay off,
	// and nil in float32 storage mode, where the identity's catastrophic
	// cancellation on large-magnitude coordinates is not worth the speedup.
	// The identity reassociates arithmetic (ULP-level error), which the
	// tolerance-based SMO solver absorbs — range-query backends never use it.
	norms []float64
}

// denseCap is the largest target size for which the ñ×ñ kernel matrix is
// materialized eagerly when Workers > 1. It matches the default
// MaxSVDDTarget cap, so parallel DBSVEC training rounds always take the
// dense path: the eager fill is embarrassingly parallel (ForRanges across
// the worker pool), while the lazy rows above serialize on the solver's
// access order. With a single worker the eager fill has no parallelism to
// exploit and computing the full matrix would waste work whenever the
// solver touches only a fraction of the rows, so serial trainings stay lazy
// above weightsExactCap.
const denseCap = 1024

// weightsExactCap is the largest target size for which the adaptive weights
// (Eq. 7) use exact kernel row sums — which read every row, so matrices up
// to this size are always filled eagerly. Beyond it the pivot-sampled
// estimate is used even when the matrix is dense. The cutoff matches the
// historical dense-storage bound so weight vectors — and hence trained
// models — are unchanged by the widened parallel denseCap.
const weightsExactCap = 256

// forceEagerFill makes newKernelMatrix materialize every target up to
// denseCap eagerly even with one worker — the strategy a non-adaptive
// serial implementation would use. Package benchmarks flip it to measure
// the adaptive fill against that baseline; it is never set in production.
var forceEagerFill = false

// parallelFillMin is the smallest target size worth fanning the dense fill
// across workers; below it goroutine startup dominates the O(ñ²) fill.
const parallelFillMin = 128

// matrixPool recycles dense kernel-matrix backing slices. DBSVEC trains
// SVDD hundreds of times per run with similar target sizes, so reuse avoids
// repeated large allocations and their zeroing cost.
var matrixPool sync.Pool

func getMatrixBuf(n int) []float64 {
	if v := matrixPool.Get(); v != nil {
		buf := v.([]float64)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// rowPool recycles lazy kernel rows the same way: SMO materializes a row per
// touched target, and consecutive trainings touch similar row counts at
// similar lengths.
var rowPool sync.Pool

func getRowBuf(n int) []float64 {
	if v := rowPool.Get(); v != nil {
		buf := v.([]float64)
		if cap(buf) >= n {
			return buf[:n]
		}
	}
	return make([]float64, n)
}

// releaseMatrix returns the model's dense matrix and any materialized lazy
// rows to their pools; called by Train once the solver is done with them.
func releaseMatrix(km *kernelMatrix) {
	if km.full != nil {
		matrixPool.Put(km.full) //nolint:staticcheck // slice reuse is the point
		km.full = nil
	}
	for i, r := range km.rows {
		if r != nil {
			rowPool.Put(r) //nolint:staticcheck // slice reuse is the point
			km.rows[i] = nil
		}
	}
	km.rows = nil
}

// newKernelMatrix builds the kernel matrix for the target set, fanning the
// dense fill across workers goroutines (<= 1 fills serially).
func newKernelMatrix(ds *vec.Dataset, ids []int32, sigma float64, workers int) *kernelMatrix {
	km := &kernelMatrix{ds: ds, m: ds.Matrix(), m32: ds.Matrix32(), ids: ids, gamma: 1 / (2 * sigma * sigma), n: len(ids)}
	if ds.Precision() == vec.F64 && ds.Dim() >= dist.NormCachedMinDim {
		km.norms = dist.NormsIDs(km.m, ids)
	}
	eager := km.n <= weightsExactCap ||
		(km.n <= denseCap && (workers > 1 || forceEagerFill))
	if eager {
		km.full = getMatrixBuf(km.n * km.n)
		km.fillDense(workers)
	} else {
		km.rows = make([][]float64, km.n)
	}
	return km
}

// fillBlock is the column-tile width of the dense fill: the fill walks the
// upper triangle in tiles of fillBlock columns so the tile's target rows stay
// resident in L1/L2 across all the query rows that scan them, instead of
// streaming the whole remainder of the matrix once per row.
const fillBlock = 128

// fillDense computes the dense matrix: the upper triangle via the batched
// distance kernels in cache-blocked column tiles, mirrored into the lower
// triangle. With workers > 1 the rows are partitioned into contiguous ranges
// of equal entry count (row i contributes n−i−1 upper-triangle entries) and
// filled concurrently. Each unordered pair (i,j) is written exactly once — by
// the range owning min(i,j) — so ranges touch disjoint matrix entries, and
// every entry is a per-pair-independent kernel evaluation, so neither the
// tiling nor the partitioning changes a single bit: the result is identical
// for every worker count and tile width.
func (km *kernelMatrix) fillDense(workers int) {
	n := km.n
	fill := func(lo, hi int) {
		scratch := make([]float64, fillBlock)
		for i := lo; i < hi; i++ {
			km.full[i*n+i] = 1
		}
		for j0 := lo + 1; j0 < n; j0 += fillBlock {
			j1 := min(j0+fillBlock, n)
			for i := lo; i < hi && i < j1; i++ {
				s := max(i+1, j0)
				if s >= j1 {
					continue
				}
				seg := scratch[:j1-s]
				km.sqRow(i, s, seg)
				for k, d2 := range seg {
					v := math.Exp(-d2 * km.gamma)
					j := s + k
					km.full[i*n+j] = v
					km.full[j*n+i] = v
				}
			}
		}
	}
	if workers <= 1 || n < parallelFillMin {
		fill(0, n)
		return
	}
	engine.ForRanges(workers, n, func(i int) int64 { return int64(n - i - 1) }, fill)
}

// sqRow writes the squared distances from target i to targets
// [off, off+len(out)) into out via the batched one-to-many kernel, routing
// through the cached-norms identity when it is enabled for this matrix.
func (km *kernelMatrix) sqRow(i, off int, out []float64) {
	q := km.ds.Point(int(km.ids[i]))
	sub := km.ids[off : off+len(out)]
	if km.norms != nil {
		dist.SqDistsToCached(km.m, q, km.norms[i], sub, km.norms[off:off+len(out)], out)
		return
	}
	if km.m32.Coords != nil {
		dist.SqDistsTo32(km.m32, q, sub, out)
		return
	}
	dist.SqDistsTo(km.m, q, sub, out)
}

// row returns row i of the kernel matrix (length ñ), computing and caching
// it on first access.
func (km *kernelMatrix) row(i int) []float64 {
	if km.full != nil {
		return km.full[i*km.n : (i+1)*km.n]
	}
	if r := km.rows[i]; r != nil {
		return r
	}
	r := getRowBuf(km.n)
	km.sqRow(i, 0, r)
	for j := range r {
		r[j] = math.Exp(-r[j] * km.gamma)
	}
	r[i] = 1
	km.rows[i] = r
	return r
}

// at returns K(i,j) without forcing a whole row when neither is cached. The
// scalar fallback mirrors the batched row kernels entry for entry — plain
// SqDist below the norm-caching threshold, the cached-norms identity above
// it — so the value is bit-identical to what a materialized row would hold.
// IEEE addition and multiplication are commutative, so the identity is also
// symmetric in (i,j); together this makes every K(i,j) independent of the
// storage mode, the fill order and the worker count.
func (km *kernelMatrix) at(i, j int) float64 {
	if i == j {
		return 1
	}
	if km.full != nil {
		return km.full[i*km.n+j]
	}
	if r := km.rows[i]; r != nil {
		return r[j]
	}
	if r := km.rows[j]; r != nil {
		return r[i]
	}
	var d2 float64
	if km.norms != nil {
		d2 = km.norms[j] + km.norms[i] - 2*dist.Dot(km.m.Row(int(km.ids[j])), km.m.Row(int(km.ids[i])))
		if d2 < 0 {
			d2 = 0
		}
	} else {
		d2 = dist.SqDist(km.m.Row(int(km.ids[i])), km.m.Row(int(km.ids[j])))
	}
	return math.Exp(-d2 * km.gamma)
}

// KernelDistances evaluates the kernel distance function D(x) of Eq. 5 for
// every point of the target set: the squared feature-space distance from
// Φ(x_i) to the kernel centroid (1/ñ)ΣΦ(x_j). Exact O(ñ²) version; the
// solver's internal weight computation uses the pivot-sampled estimate
// instead.
func KernelDistances(ds *vec.Dataset, ids []int32, sigma float64) []float64 {
	n := len(ids)
	out := make([]float64, n)
	if n == 0 {
		return out
	}
	gamma := 1 / (2 * sigma * sigma)
	m := ds.Matrix()
	m32 := ds.Matrix32()
	var norms []float64
	if ds.Precision() == vec.F64 && ds.Dim() >= dist.NormCachedMinDim {
		norms = dist.NormsIDs(m, ids)
	}
	// s[i] = Σ_j K(x_i, x_j); the double sum is Σ_i s[i].
	s := make([]float64, n)
	scratch := make([]float64, n)
	var double float64
	for i := 0; i < n; i++ {
		s[i] += 1 // K(x_i,x_i)
		row := scratch[:n-i-1]
		switch {
		case norms != nil:
			dist.SqDistsToCached(m, ds.Point(int(ids[i])), norms[i], ids[i+1:], norms[i+1:], row)
		case m32.Coords != nil:
			dist.SqDistsTo32(m32, ds.Point(int(ids[i])), ids[i+1:], row)
		default:
			dist.SqDistsTo(m, ds.Point(int(ids[i])), ids[i+1:], row)
		}
		for k, d2 := range row {
			v := math.Exp(-d2 * gamma)
			s[i] += v
			s[i+1+k] += v
		}
	}
	for i := 0; i < n; i++ {
		double += s[i]
	}
	nf := float64(n)
	c := double / (nf * nf)
	for i := 0; i < n; i++ {
		d := c + 1 - 2*s[i]/nf
		if d < 0 {
			d = 0 // numeric guard; D is a squared norm
		}
		out[i] = d
	}
	return out
}

// SigmaLowerBound returns the paper's kernel width choice σ = r/√2
// (Section IV-B2), where r is the distance from the centroid of the target
// points to the farthest target point. A small positive floor keeps the
// kernel well-defined for degenerate targets (single point, duplicates).
func SigmaLowerBound(ds *vec.Dataset, ids []int32) float64 {
	const floor = 1e-9
	if len(ids) == 0 {
		return floor
	}
	mean := ds.Mean(ids)
	var maxD2 float64
	for _, id := range ids {
		if d2 := vec.SqDist(ds.Point(int(id)), mean); d2 > maxD2 {
			maxD2 = d2
		}
	}
	sigma := math.Sqrt(maxD2) / math.Sqrt2
	if sigma < floor {
		sigma = floor
	}
	return sigma
}

// NuStar returns the paper's adaptive penalty factor
// ν* = d·√(log_MinPts ñ)/ñ (Eq. 20), clamped into (0, 1].
func NuStar(dim, minPts, targetSize int) float64 {
	if targetSize <= 0 {
		return 1
	}
	nf := float64(targetSize)
	nu := 1 / nf // minimum meaningful value: a single support vector
	if minPts > 1 && targetSize > 1 {
		l := math.Log(nf) / math.Log(float64(minPts))
		if l > 0 {
			nu = float64(dim) * math.Sqrt(l) / nf
		}
	}
	if nu < 1/nf {
		nu = 1 / nf
	}
	if nu > 1 {
		nu = 1
	}
	return nu
}
