package svdd

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"dbsvec/internal/fault"
	"dbsvec/internal/leakcheck"
	"dbsvec/internal/vec"
)

// countingCtx cancels itself after its Err method has been polled a fixed
// number of times — a deterministic stand-in for "the deadline fires while
// the solver is mid-iteration". Done deliberately returns nil (never ready):
// every consumer in this repository polls Err, and the nil channel proves it.
type countingCtx struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return nil }

func TestTrainNotConvergedReturnsBestIterate(t *testing.T) {
	ds, _ := blobWithOutliers(300, 11)
	m, err := Train(ds, allIDs(300), Config{Nu: 0.1, MaxIter: 3})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
	if m == nil {
		t.Fatal("want best-iterate model alongside ErrNotConverged")
	}
	if m.Converged {
		t.Error("Converged = true on a truncated solve")
	}
	if m.Iterations == 0 || m.Iterations > 3 {
		t.Errorf("Iterations = %d, want in (0, 3]", m.Iterations)
	}
	if m.Times.NotConverged != 1 || m.Times.Rounds != 1 {
		t.Errorf("Times counters = %+v, want Rounds=1 NotConverged=1", m.Times)
	}
	// The truncated iterate must still be dual-feasible: box constraints
	// and Σα = 1.
	var sum float64
	for i, a := range m.Alpha {
		if a < 0 || a > m.Upper[i]+1e-12 {
			t.Fatalf("alpha[%d] = %v outside box [0, %v]", i, a, m.Upper[i])
		}
		sum += a
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		t.Errorf("sum alpha = %v, want 1", sum)
	}
}

func TestTrainConvergedSetsFlag(t *testing.T) {
	ds, _ := blobWithOutliers(200, 12)
	m, err := Train(ds, allIDs(200), Config{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Converged {
		t.Error("Converged = false on an uncapped solve")
	}
	if m.Times.Rounds != 1 || m.Times.NotConverged != 0 {
		t.Errorf("Times counters = %+v, want Rounds=1 NotConverged=0", m.Times)
	}
}

func TestTrainDegenerateSigma(t *testing.T) {
	dup, _ := vec.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}})
	m, err := Train(dup, allIDs(3), Config{Nu: 0.5})
	if !errors.Is(err, ErrDegenerateSigma) {
		t.Fatalf("err = %v, want ErrDegenerateSigma", err)
	}
	if m != nil {
		t.Error("want nil model for a degenerate kernel width")
	}
	// A single point is a defined special case, not a degenerate one.
	if m, err := Train(dup, []int32{0}, Config{Nu: 0.5}); err != nil || !m.Converged {
		t.Errorf("single-point training: model=%v err=%v, want trivial converged model", m, err)
	}
}

func TestTrainCancelMidSolve(t *testing.T) {
	leakcheck.Check(t)
	ds, _ := blobWithOutliers(400, 13)
	// after=1 lets the entry check pass and cancels on the solver's first
	// in-loop poll — a solve truncated strictly mid-iteration.
	ctx := &countingCtx{Context: context.Background(), after: 1}
	m, err := Train(ds, allIDs(400), Config{Nu: 0.1, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if m != nil {
		t.Error("want nil model on cancellation")
	}
}

func TestTrainCancelledUpFront(t *testing.T) {
	leakcheck.Check(t)
	ds, _ := blobWithOutliers(100, 14)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if m, err := Train(ds, allIDs(100), Config{Nu: 0.1, Context: ctx, Workers: 4}); !errors.Is(err, context.Canceled) || m != nil {
		t.Fatalf("model=%v err=%v, want nil model and context.Canceled", m, err)
	}
}

func TestTrainInjectedNonConvergence(t *testing.T) {
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.SolverNonConverge, fault.Always()))
	defer restore()
	ds, _ := blobWithOutliers(300, 15)
	m, err := Train(ds, allIDs(300), Config{Nu: 0.1})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged under injection", err)
	}
	if m == nil || m.Converged {
		t.Fatalf("want non-converged best-iterate model, got %v", m)
	}
}

func TestTrainWorkerPanicContained(t *testing.T) {
	leakcheck.Check(t)
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.WorkerPanic, fault.Nth(1)))
	defer restore()
	ds, _ := blobWithOutliers(300, 16)
	// Workers > 1 routes the kernel fill through engine.ForRanges, whose
	// spawned workers carry the injection site.
	m, err := Train(ds, allIDs(300), Config{Nu: 0.1, Workers: 4})
	var wp *fault.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *fault.WorkerPanicError", err)
	}
	if !errors.Is(wp.Value.(error), fault.ErrInjected) {
		t.Errorf("panic value = %v, want injected error", wp.Value)
	}
	if m != nil {
		t.Error("want nil model after a contained panic")
	}
}
