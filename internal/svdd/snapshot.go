package svdd

import (
	"errors"
	"fmt"
	"math"

	"dbsvec/internal/vec"
)

// Snapshot is the complete, minimal serializable state of a trained Model:
// everything Eval, TopSupportVectors, and a warm restart need, and nothing
// the solver keeps for its own bookkeeping (kernel matrix, gradients,
// per-point caps). Only support vectors are retained — non-SV multipliers
// are zero and contribute nothing to Eq. 12 — together with their
// coordinates, so a snapshot is self-contained: it can be evaluated in a
// process that never saw the training dataset.
//
// The slices are parallel over the support vectors; Coords is row-major
// (len = len(IDs)·Dim). Snapshots are plain data with no hidden state, so
// they are what internal/data's model codec reads and writes.
type Snapshot struct {
	// Dim is the coordinate dimensionality.
	Dim int
	// Nu, Sigma and R2 are the trained model's penalty factor, kernel width
	// and squared feature-space radius.
	Nu    float64
	Sigma float64
	R2    float64
	// AlphaDot is the cached αᵀKα term of Eq. 12.
	AlphaDot float64
	// Iterations and Converged record the solve's outcome.
	Iterations int
	Converged  bool
	// IDs are the support vectors' global training-dataset ids. They give a
	// warm restart its alignment with a re-run's target sets; a detached
	// evaluation never dereferences them.
	IDs []int32
	// Alpha are the support vectors' Lagrange multipliers.
	Alpha []float64
	// Score are the feature-space boundary scores (distance² to the sphere
	// center) backing TopSupportVectors' ranking.
	Score []float64
	// Coords are the support vectors' coordinates, row-major.
	Coords []float64
}

// ErrBadSnapshot is returned by FromSnapshot for structurally invalid
// snapshots (mismatched slice lengths, non-positive dimension or kernel
// width, no support vectors).
var ErrBadSnapshot = errors.New("svdd: invalid model snapshot")

// SVCount returns the number of support vectors in the snapshot.
func (s *Snapshot) SVCount() int { return len(s.IDs) }

// validate checks the structural invariants FromSnapshot (and the codec)
// rely on.
func (s *Snapshot) validate() error {
	if s.Dim <= 0 {
		return fmt.Errorf("%w: dimension %d", ErrBadSnapshot, s.Dim)
	}
	k := len(s.IDs)
	if k == 0 {
		return fmt.Errorf("%w: no support vectors", ErrBadSnapshot)
	}
	if len(s.Alpha) != k || len(s.Score) != k || len(s.Coords) != k*s.Dim {
		return fmt.Errorf("%w: inconsistent lengths (ids %d, alpha %d, score %d, coords %d, dim %d)",
			ErrBadSnapshot, k, len(s.Alpha), len(s.Score), len(s.Coords), s.Dim)
	}
	if !(s.Sigma > 0) || math.IsInf(s.Sigma, 0) {
		return fmt.Errorf("%w: kernel width %g", ErrBadSnapshot, s.Sigma)
	}
	return nil
}

// Snapshot extracts the serializable state of the model: the support vectors
// (α_i above the solver's zero threshold) with their multipliers, boundary
// scores and coordinates, plus the scalar terms Eval needs. The returned
// snapshot owns its slices; mutating the model afterwards does not affect it.
func (m *Model) Snapshot() *Snapshot {
	dim := m.ds.Dim()
	s := &Snapshot{
		Dim:        dim,
		Nu:         m.Nu,
		Sigma:      m.Sigma,
		R2:         m.R2,
		AlphaDot:   m.alphaDot,
		Iterations: m.Iterations,
		Converged:  m.Converged,
	}
	for i, a := range m.Alpha {
		if a <= svThreshold {
			continue
		}
		s.IDs = append(s.IDs, m.IDs[i])
		s.Alpha = append(s.Alpha, a)
		sc := 0.0
		if m.svScore != nil {
			sc = m.svScore[i]
		}
		s.Score = append(s.Score, sc)
		s.Coords = append(s.Coords, m.point(i)...)
	}
	return s
}

// FromSnapshot rebuilds an evaluable Model from a snapshot. The model is
// *detached*: it carries its own copy of the support-vector coordinates and
// needs no training dataset, so Eval, SupportVectors, TopSupportVectors and
// warm-start extraction all work in a fresh process. Solver-only
// capabilities are absent (BoundedSupportVectors returns nil).
//
// The model aliases the snapshot's slices; callers must not mutate the
// snapshot afterwards.
func FromSnapshot(s *Snapshot) (*Model, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	ds, err := vec.NewDatasetUnchecked(s.Coords, s.Dim)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	return &Model{
		IDs:        s.IDs,
		Alpha:      s.Alpha,
		Sigma:      s.Sigma,
		Nu:         s.Nu,
		R2:         s.R2,
		Iterations: s.Iterations,
		Converged:  s.Converged,
		ds:         ds,
		alphaDot:   s.AlphaDot,
		svScore:    s.Score,
		detached:   true,
	}, nil
}
