package svdd

import (
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/vec"
)

func ringDataset(n int, r float64, jitter float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		theta := 2 * math.Pi * float64(i) / float64(n)
		rows[i] = []float64{
			r*math.Cos(theta) + rng.NormFloat64()*jitter,
			r*math.Sin(theta) + rng.NormFloat64()*jitter,
		}
	}
	ds, _ := vec.FromRows(rows)
	return ds
}

func blobWithOutliers(n int, seed int64) (*vec.Dataset, []int) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, n+3)
	for i := 0; i < n; i++ {
		rows = append(rows, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	outliers := []int{n, n + 1, n + 2}
	rows = append(rows, []float64{8, 0}, []float64{0, -7}, []float64{6, 6})
	ds, _ := vec.FromRows(rows)
	return ds, outliers
}

func allIDs(n int) []int32 {
	return vec.Iota(n)
}

func TestTrainEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	if _, err := Train(ds, nil, Config{Nu: 0.1}); err == nil {
		t.Error("want error for empty target")
	}
}

func TestTrainBadNu(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	if _, err := Train(ds, allIDs(2), Config{Nu: 1.5}); err == nil {
		t.Error("want error for nu > 1")
	}
	if _, err := Train(ds, allIDs(2), Config{Nu: -0.1}); err == nil {
		t.Error("want error for negative nu")
	}
}

func TestSinglePoint(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{3, 4}})
	m, err := Train(ds, allIDs(1), Config{Nu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.SupportVectors()) != 1 || m.Alpha[0] != 1 {
		t.Errorf("single point model: alpha=%v svs=%v", m.Alpha, m.SupportVectors())
	}
}

// The fundamental dual constraints must hold after training.
func TestDualConstraints(t *testing.T) {
	ds, _ := blobWithOutliers(200, 1)
	for _, nu := range []float64{0.05, 0.1, 0.3, 0.9} {
		m, err := Train(ds, allIDs(ds.Len()), Config{Nu: nu})
		if err != nil {
			t.Fatalf("nu=%g: %v", nu, err)
		}
		if s := m.SumAlpha(); math.Abs(s-1) > 1e-9 {
			t.Errorf("nu=%g: sum alpha = %v, want 1", nu, s)
		}
		for i, a := range m.Alpha {
			if a < -1e-12 || a > m.Upper[i]+1e-12 {
				t.Errorf("nu=%g: alpha[%d]=%v outside [0,%v]", nu, i, a, m.Upper[i])
			}
		}
	}
}

// ν bounds the SV fraction from below and the BSV fraction from above
// (Schölkopf et al., referenced in Section IV-C).
func TestNuControlsSVFraction(t *testing.T) {
	ds, _ := blobWithOutliers(300, 2)
	n := ds.Len()
	for _, nu := range []float64{0.05, 0.2, 0.5} {
		m, err := Train(ds, allIDs(n), Config{Nu: nu})
		if err != nil {
			t.Fatal(err)
		}
		svFrac := float64(len(m.SupportVectors())) / float64(n)
		bsvFrac := float64(len(m.BoundedSupportVectors())) / float64(n)
		if svFrac < nu-0.02 {
			t.Errorf("nu=%g: SV fraction %v below nu", nu, svFrac)
		}
		if bsvFrac > nu+0.02 {
			t.Errorf("nu=%g: BSV fraction %v above nu", nu, bsvFrac)
		}
	}
}

// More ν ⇒ at least roughly as many support vectors (monotone trend).
func TestNuMonotoneTrend(t *testing.T) {
	ds, _ := blobWithOutliers(250, 3)
	prev := 0
	for _, nu := range []float64{0.02, 0.1, 0.4} {
		m, err := Train(ds, allIDs(ds.Len()), Config{Nu: nu})
		if err != nil {
			t.Fatal(err)
		}
		k := len(m.SupportVectors())
		if k+3 < prev { // slack for solver ties
			t.Errorf("SV count dropped sharply as nu grew: %d -> %d", prev, k)
		}
		prev = k
	}
}

// Support vectors of a compact blob lie on its boundary: their distance
// from the centroid must be above the median distance.
func TestSupportVectorsOnBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 300
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2}
	}
	ds, _ := vec.FromRows(rows)
	m, err := Train(ds, allIDs(n), Config{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	mean := ds.Mean(allIDs(n))
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		dists[i] = vec.Dist(ds.Point(i), mean)
	}
	sorted := append([]float64(nil), dists...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	median := sorted[n/2]
	svs := m.SupportVectors()
	above := 0
	for _, id := range svs {
		if dists[id] > median {
			above++
		}
	}
	if frac := float64(above) / float64(len(svs)); frac < 0.8 {
		t.Errorf("only %.0f%% of support vectors beyond median distance", frac*100)
	}
}

// Eval must be <= 0 (inside) for deep interior points and > 0 for far
// exterior points.
func TestEvalSeparatesInteriorExterior(t *testing.T) {
	ds, outliers := blobWithOutliers(300, 5)
	ids := allIDs(300) // train only on the blob, not the outliers
	m, err := Train(ds, ids, Config{Nu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.Eval([]float64{0, 0}); v > 0 {
		t.Errorf("centroid evaluated outside the sphere: %v", v)
	}
	for _, o := range outliers {
		if v := m.Eval(ds.Point(o)); v <= 0 {
			t.Errorf("outlier %d evaluated inside the sphere: %v", o, v)
		}
	}
	if v := m.Eval([]float64{100, 100}); v <= 0 {
		t.Errorf("far point evaluated inside: %v", v)
	}
}

// Weighted training: points with tiny weights (low caps) should be pushed
// to their bound and become support vectors more readily than points with
// huge weights.
func TestWeightsSteerSupportVectors(t *testing.T) {
	ds := ringDataset(120, 10, 0.3, 6)
	n := ds.Len()
	// Give the first half tiny weights and the second half huge ones.
	w := make([]float64, n)
	for i := range w {
		if i < n/2 {
			w[i] = 0.05
		} else {
			w[i] = 20
		}
	}
	m, err := Train(ds, allIDs(n), Config{Nu: 0.2, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	low, high := 0, 0
	for _, id := range m.SupportVectors() {
		if int(id) < n/2 {
			low++
		} else {
			high++
		}
	}
	if low <= high {
		t.Errorf("low-weight half should dominate SVs: low=%d high=%d", low, high)
	}
}

func TestSigmaLowerBound(t *testing.T) {
	ds := ringDataset(100, 5, 0, 7)
	sigma := SigmaLowerBound(ds, allIDs(100))
	want := 5 / math.Sqrt2
	if math.Abs(sigma-want)/want > 0.05 {
		t.Errorf("sigma = %v, want ~%v", sigma, want)
	}
	// Degenerate target: all duplicates.
	dup, _ := vec.FromRows([][]float64{{1, 1}, {1, 1}})
	if s := SigmaLowerBound(dup, allIDs(2)); s <= 0 {
		t.Errorf("sigma on duplicates = %v, want positive floor", s)
	}
	if s := SigmaLowerBound(dup, nil); s <= 0 {
		t.Errorf("sigma on empty = %v, want positive floor", s)
	}
}

func TestNuStar(t *testing.T) {
	nu := NuStar(8, 100, 1000)
	if nu <= 0 || nu > 1 {
		t.Fatalf("NuStar out of range: %v", nu)
	}
	// ν* must never fall below 1/ñ.
	if nu < 1.0/1000 {
		t.Errorf("NuStar below 1/n: %v", nu)
	}
	// Extremes.
	if got := NuStar(2, 10, 0); got != 1 {
		t.Errorf("NuStar with empty target = %v, want 1", got)
	}
	if got := NuStar(1000, 2, 10); got != 1 {
		t.Errorf("NuStar should clamp to 1, got %v", got)
	}
}

func TestKernelDistances(t *testing.T) {
	// On a symmetric ring all kernel distances are (nearly) equal; a point
	// appended far away must get a larger kernel distance.
	ds := ringDataset(60, 5, 0, 8)
	rows := make([][]float64, 0, 61)
	for i := 0; i < 60; i++ {
		rows = append(rows, append([]float64(nil), ds.Point(i)...))
	}
	rows = append(rows, []float64{30, 30})
	ds2, _ := vec.FromRows(rows)
	dists := KernelDistances(ds2, allIDs(61), 5)
	far := dists[60]
	for i := 0; i < 60; i++ {
		if dists[i] >= far {
			t.Fatalf("ring point %d kernel distance %v >= far point %v", i, dists[i], far)
		}
	}
	// All distances are squared norms: non-negative.
	for i, d := range dists {
		if d < 0 {
			t.Errorf("negative kernel distance at %d: %v", i, d)
		}
	}
}

func TestKernelDistancesEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	if got := KernelDistances(ds, nil, 1); len(got) != 0 {
		t.Errorf("empty target should give empty distances, got %v", got)
	}
}

func TestGaussianKernelBasics(t *testing.T) {
	a := []float64{0, 0}
	if got := GaussianKernel(a, a, 1); got != 1 {
		t.Errorf("K(x,x) = %v, want 1", got)
	}
	near := GaussianKernel(a, []float64{0.1, 0}, 1)
	far := GaussianKernel(a, []float64{3, 0}, 1)
	if !(near > far && far > 0 && near < 1) {
		t.Errorf("kernel ordering wrong: near=%v far=%v", near, far)
	}
}

// Duplicate-heavy targets must not wedge the solver (η = 0 path).
func TestDuplicatePoints(t *testing.T) {
	rows := make([][]float64, 50)
	for i := range rows {
		rows[i] = []float64{float64(i % 3), 0}
	}
	ds, _ := vec.FromRows(rows)
	m, err := Train(ds, allIDs(50), Config{Nu: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.SumAlpha(); math.Abs(s-1) > 1e-9 {
		t.Errorf("sum alpha = %v", s)
	}
}

// Fixed sigma must be honored.
func TestExplicitSigma(t *testing.T) {
	ds := ringDataset(80, 5, 0.1, 9)
	m, err := Train(ds, allIDs(80), Config{Nu: 0.2, Sigma: 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if m.Sigma != 2.5 {
		t.Errorf("Sigma = %v, want 2.5", m.Sigma)
	}
}

func BenchmarkTrain500(b *testing.B) {
	ds, _ := blobWithOutliers(500, 10)
	ids := allIDs(ds.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Train(ds, ids, Config{Nu: 0.1}); err != nil {
			b.Fatal(err)
		}
	}
}
