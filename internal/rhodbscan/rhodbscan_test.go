package rhodbscan

import (
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/eval"
	"dbsvec/internal/vec"
)

func TestValidation(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	bad := []Params{
		{Eps: -1, MinPts: 3, Rho: 0.001},
		{Eps: 1, MinPts: 0, Rho: 0.001},
		{Eps: 1, MinPts: 3, Rho: -1},
		{Eps: 0, MinPts: 3, Rho: 0.001},
	}
	for i, p := range bad {
		if _, _, err := Run(ds, p); err == nil {
			t.Errorf("case %d: want error for %+v", i, p)
		}
	}
	if _, _, err := Run(nil, Params{Eps: 1, MinPts: 3, Rho: 0.001}); err == nil {
		t.Error("want error for nil dataset")
	}
}

func TestEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	res, _, err := Run(ds, Params{Eps: 1, MinPts: 3, Rho: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 {
		t.Error("empty dataset should yield no clusters")
	}
}

func TestTwoBlobs(t *testing.T) {
	ds := data.Blobs(800, 2, 2, 1.5, 100, 0.02, 1)
	p := Params{Eps: 3, MinPts: 8, Rho: 0.001}
	res, st, err := Run(ds, p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("clusters = %d, want 2", res.Clusters)
	}
	if st.Cells == 0 || st.CoreCells == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

// With small rho, the result must be close to exact DBSCAN (high recall).
func TestRecallAgainstDBSCAN(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		ds := data.Blobs(1000, 3, 4, 2, 100, 0.05, seed)
		dp := dbscan.Params{Eps: 4, MinPts: 8}
		truth, _, err := dbscan.Run(ds, dp, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Run(ds, Params{Eps: dp.Eps, MinPts: dp.MinPts, Rho: 0.001})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := eval.PairRecall(truth, got)
		if err != nil {
			t.Fatal(err)
		}
		if rec < 0.95 {
			t.Errorf("seed %d: recall %v < 0.95 at rho=0.001", seed, rec)
		}
	}
}

// rho-approximate semantics never label a DBSCAN-clustered point as noise
// when rho is tiny... but it may add tolerance-band points to clusters. We
// check the weaker guarantee: every exact core point is clustered.
func TestCorePointsClustered(t *testing.T) {
	ds := data.Blobs(600, 2, 3, 2, 100, 0.05, 3)
	dp := dbscan.Params{Eps: 3, MinPts: 6}
	mask, err := dbscan.CoreMask(ds, dp, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(ds, Params{Eps: dp.Eps, MinPts: dp.MinPts, Rho: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for i, isCore := range mask {
		if isCore && got.Labels[i] == cluster.Noise {
			t.Fatalf("exact core point %d labeled noise by rho-approx", i)
		}
	}
}

func TestHigherRhoStillClusters(t *testing.T) {
	ds := data.Blobs(500, 2, 2, 1.5, 100, 0, 4)
	res, _, err := Run(ds, Params{Eps: 3, MinPts: 8, Rho: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters < 1 || res.Clusters > 2 {
		t.Errorf("clusters = %d with rho=0.5", res.Clusters)
	}
}

func TestHighDimensionalRun(t *testing.T) {
	ds := data.DimSet(256, 16, 5)
	res, _, err := Run(ds, Params{Eps: 20, MinPts: 4, Rho: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters == 0 {
		t.Error("expected clusters in 16-d DimSet")
	}
}
