// Package rhodbscan implements ρ-approximate DBSCAN (Gan & Tao, SIGMOD
// 2015), the state-of-the-art grid-based DBSCAN approximation the paper
// compares against.
//
// The algorithm imposes a grid of cell width ε/√d, so any two points in the
// same cell are within ε of each other. Core-point tests and cluster
// connectivity are answered with ρ-approximate range counting: points
// within ε always count, points beyond ε(1+ρ) never count, and points in
// the tolerance band count whenever their whole cell fits inside it. Core
// cells are connected into clusters through approximate bichromatic
// closest-pair tests, and border points attach to any in-range core point.
//
// Neighbor cells are located through a kd-tree over cell centers; this
// keeps the structure functional in higher dimensions, where the original
// quadtree formulation exhausts memory (the behaviour Figure 6b reports).
package rhodbscan

import (
	"fmt"
	"math"
	"sort"

	"dbsvec/internal/cluster"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/index/grid"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/unionfind"
	"dbsvec/internal/vec"
)

// Params configures a run.
type Params struct {
	// Eps and MinPts are the DBSCAN parameters.
	Eps    float64
	MinPts int
	// Rho is the approximation tolerance (paper default 0.001). Must be
	// >= 0.
	Rho float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if err := (dbscan.Params{Eps: p.Eps, MinPts: p.MinPts}).Validate(); err != nil {
		return fmt.Errorf("rhodbscan: %w", err)
	}
	if p.Rho < 0 {
		return fmt.Errorf("rhodbscan: rho %g must be non-negative", p.Rho)
	}
	if p.Eps == 0 {
		return fmt.Errorf("rhodbscan: eps must be positive (grid width is eps/sqrt(d))")
	}
	return nil
}

// Stats reports work performed.
type Stats struct {
	// Cells is the number of occupied grid cells.
	Cells int
	// CoreCells is the number of cells containing at least one core point.
	CoreCells int
	// WholesaleCells counts cells whose population was counted without any
	// per-point distance computation.
	WholesaleCells int64
	// DistanceComputations counts point-to-point distance evaluations.
	DistanceComputations int64
}

type cellInfo struct {
	key  string
	pts  []int32
	rect vec.Rect
	core bool // contains at least one core point
}

// Run clusters ds with ρ-approximate DBSCAN.
func Run(ds *vec.Dataset, p Params) (*cluster.Result, Stats, error) {
	var st Stats
	if ds == nil {
		return nil, st, dbscan.ErrNilDataset
	}
	if err := p.Validate(); err != nil {
		return nil, st, err
	}
	n := ds.Len()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = cluster.Noise
	}
	res := &cluster.Result{Labels: labels}
	if n == 0 {
		return res, st, nil
	}

	d := ds.Dim()
	width := p.Eps / sqrtF(d)
	g := grid.New(ds, width)

	// Materialize cells and build a kd-tree over their centers so neighbor
	// lookup stays polynomial in d. Cells are sorted by key: map iteration
	// order would otherwise leak into border-point assignment and make runs
	// nondeterministic.
	var cells []cellInfo
	g.Cells(func(key string, pts []int32) {
		cells = append(cells, cellInfo{key: key, pts: pts, rect: g.RectOfKey(key)})
	})
	sort.Slice(cells, func(a, b int) bool { return cells[a].key < cells[b].key })
	st.Cells = len(cells)
	centers := make([]float64, 0, len(cells)*d)
	buf := make([]float64, d)
	for i := range cells {
		centers = append(centers, cells[i].rect.Center(buf)...)
	}
	centerDS, err := vec.NewDatasetUnchecked(centers, d)
	if err != nil {
		return nil, st, fmt.Errorf("rhodbscan: %w", err)
	}
	centerTree := kdtree.New(centerDS)

	outer := p.Eps * (1 + p.Rho)
	outer2 := outer * outer
	eps2 := p.Eps * p.Eps
	// Center-to-center reach: two cells can host an in-range pair only when
	// their centers are within outer + diag (diag = eps by construction).
	reach := outer + p.Eps

	// neighborsOf returns the cell indices within reach of cell ci.
	var nbuf []int32
	neighborsOf := func(ci int) []int32 {
		nbuf = centerTree.RangeQuery(centerDS.Point(ci), reach, nbuf[:0])
		return nbuf
	}

	// Phase 1: core-point marking with ρ-approximate counting.
	isCore := make([]bool, n)
	for ci := range cells {
		c := &cells[ci]
		if len(c.pts) >= p.MinPts {
			// Cell diameter <= eps: every member sees the whole cell.
			for _, id := range c.pts {
				isCore[id] = true
			}
			c.core = true
			st.WholesaleCells++
			continue
		}
		nbs := neighborsOf(ci)
		for _, id := range c.pts {
			q := ds.Point(int(id))
			count := 0
			for _, nb := range nbs {
				oc := &cells[nb]
				minD2 := oc.rect.MinDist2(q)
				if minD2 > eps2 {
					continue
				}
				if oc.rect.MaxDist2(q) <= outer2 {
					count += len(oc.pts) // tolerance-band wholesale count
					st.WholesaleCells++
				} else {
					st.DistanceComputations += int64(len(oc.pts))
					count += ds.CountWithinIDs(q, eps2, oc.pts, 0)
				}
				if count >= p.MinPts {
					break
				}
			}
			if count >= p.MinPts {
				isCore[id] = true
				c.core = true
			}
		}
	}

	// Phase 2: connect core cells through approximate closest-pair tests.
	dsu := unionfind.New(len(cells))
	for ci := range cells {
		if !cells[ci].core {
			continue
		}
		nbs := neighborsOf(ci)
		for _, nb := range nbs {
			cj := int(nb)
			if cj <= ci || !cells[cj].core || dsu.Same(int32(ci), int32(cj)) {
				continue
			}
			if coreCellsConnected(ds, &cells[ci], &cells[cj], isCore, outer2, &st) {
				dsu.Union(int32(ci), int32(cj))
			}
		}
	}
	for ci := range cells {
		if cells[ci].core {
			st.CoreCells++
		}
	}

	// Phase 3: label core points by their cell's component; attach border
	// points to any in-range core point.
	for ci := range cells {
		if !cells[ci].core {
			continue
		}
		root := dsu.Find(int32(ci))
		for _, id := range cells[ci].pts {
			if isCore[id] {
				labels[id] = root
			}
		}
	}
	for ci := range cells {
		c := &cells[ci]
		for _, id := range c.pts {
			if isCore[id] || labels[id] != cluster.Noise {
				continue
			}
			q := ds.Point(int(id))
			nbs := neighborsOf(ci)
		attach:
			for _, nb := range nbs {
				oc := &cells[nb]
				if !oc.core || oc.rect.MinDist2(q) > outer2 {
					continue
				}
				for _, o := range oc.pts {
					if !isCore[o] {
						continue
					}
					st.DistanceComputations++
					if ds.Dist2To(int(o), q) <= eps2 {
						labels[id] = labels[o]
						break attach
					}
				}
			}
		}
	}

	res.Compact()
	return res, st, nil
}

// coreCellsConnected reports whether two core cells contain core points
// within the ρ-tolerance radius of each other.
func coreCellsConnected(ds *vec.Dataset, a, b *cellInfo, isCore []bool, outer2 float64, st *Stats) bool {
	if a.rect.MinDist2Rect(b.rect) > outer2 {
		return false
	}
	for _, p := range a.pts {
		if !isCore[p] {
			continue
		}
		pp := ds.Point(int(p))
		if b.rect.MinDist2(pp) > outer2 {
			continue
		}
		for _, q := range b.pts {
			if !isCore[q] {
				continue
			}
			st.DistanceComputations++
			if ds.Dist2To(int(q), pp) <= outer2 {
				return true
			}
		}
	}
	return false
}

func sqrtF(d int) float64 {
	if d <= 0 {
		return 1
	}
	return math.Sqrt(float64(d))
}
