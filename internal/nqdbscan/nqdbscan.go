// Package nqdbscan implements the NQ-DBSCAN baseline (Chen et al., Pattern
// Recognition 2018): exact DBSCAN accelerated by a local neighborhood
// search over a cell grid that prunes unnecessary *distance computations*
// while — as the DBSVEC paper points out — still issuing a range query per
// point.
//
// Three NQ-style prunings are applied:
//
//  1. cells of width ε/√d with at least MinPts points are dense by
//     construction (cell diameter ≤ ε), so every member is a core point
//     without any counting query;
//  2. each cell's candidate neighbor cells are located once through a
//     kd-tree over cell centers and cached, so a range query only inspects
//     the local neighborhood instead of the whole grid directory;
//  3. range queries count whole cells wholesale when the cell rectangle
//     lies entirely within the query ball, computing point distances only
//     for straddling cells.
//
// The output is exactly DBSCAN's clustering.
package nqdbscan

import (
	"fmt"
	"math"
	"sort"

	"dbsvec/internal/cluster"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/index/grid"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/vec"
)

// Params are the DBSCAN parameters.
type Params struct {
	Eps    float64
	MinPts int
}

// Stats reports work performed.
type Stats struct {
	// RangeQueries counts neighborhood materializations (one per point, as
	// in DBSCAN — NQ-DBSCAN does not reduce their number).
	RangeQueries int64
	// DenseCells is the number of cells whose members were marked core
	// wholesale.
	DenseCells int
	// DistanceComputations counts point-to-point distance evaluations; the
	// quantity NQ-DBSCAN is designed to minimize.
	DistanceComputations int64
}

// cellSearcher answers exact ε-range queries through cached per-cell
// candidate lists.
type cellSearcher struct {
	ds        *vec.Dataset
	eps2      float64
	cells     [][]int32  // point ids per cell
	rects     []vec.Rect // cell rectangles
	pointCell []int32    // point id -> cell index
	centers   *kdtree.Tree
	centerDS  *vec.Dataset
	reach     float64 // center-to-center search radius
	neighbors [][]int32
	stats     *Stats
}

func newCellSearcher(ds *vec.Dataset, g *grid.Grid, eps float64, st *Stats) (*cellSearcher, error) {
	cs := &cellSearcher{
		ds:        ds,
		eps2:      eps * eps,
		pointCell: make([]int32, ds.Len()),
		stats:     st,
	}
	d := ds.Dim()
	// Collect and key-sort cells: map iteration order must not leak into
	// query result order (border-point ties would become nondeterministic).
	type keyed struct {
		key string
		pts []int32
	}
	var collected []keyed
	g.Cells(func(key string, pts []int32) {
		collected = append(collected, keyed{key: key, pts: pts})
	})
	sort.Slice(collected, func(a, b int) bool { return collected[a].key < collected[b].key })
	var centers []float64
	buf := make([]float64, d)
	for _, kc := range collected {
		idx := int32(len(cs.cells))
		cs.cells = append(cs.cells, kc.pts)
		rect := g.RectOfKey(kc.key)
		cs.rects = append(cs.rects, rect)
		centers = append(centers, rect.Center(buf)...)
		for _, id := range kc.pts {
			cs.pointCell[id] = idx
		}
	}
	centerDS, err := vec.NewDatasetUnchecked(centers, d)
	if err != nil {
		return nil, err
	}
	cs.centerDS = centerDS
	cs.centers = kdtree.New(centerDS)
	// Two points within eps have cell centers within eps + 2·(diag/2);
	// diag = width·√d = eps by construction.
	cs.reach = 2 * eps
	cs.neighbors = make([][]int32, len(cs.cells))
	return cs, nil
}

// neighborCells returns (computing and caching on first use) the candidate
// cells for queries from cell ci.
func (cs *cellSearcher) neighborCells(ci int32) []int32 {
	if nb := cs.neighbors[ci]; nb != nil {
		return nb
	}
	nb := cs.centers.RangeQuery(cs.centerDS.Point(int(ci)), cs.reach, nil)
	if nb == nil {
		nb = []int32{}
	}
	cs.neighbors[ci] = nb
	return nb
}

// query materializes the exact ε-neighborhood of point id into buf.
func (cs *cellSearcher) query(id int32, buf []int32) []int32 {
	q := cs.ds.Point(int(id))
	for _, nb := range cs.neighborCells(cs.pointCell[id]) {
		rect := cs.rects[nb]
		if rect.MinDist2(q) > cs.eps2 {
			continue
		}
		pts := cs.cells[nb]
		if rect.MaxDist2(q) <= cs.eps2 {
			buf = append(buf, pts...) // wholesale: no distance computations
			continue
		}
		cs.stats.DistanceComputations += int64(len(pts))
		buf = cs.ds.FilterWithinIDs(q, cs.eps2, pts, buf)
	}
	return buf
}

// Run clusters ds with NQ-DBSCAN. The result is identical to exact DBSCAN.
func Run(ds *vec.Dataset, p Params) (*cluster.Result, Stats, error) {
	var st Stats
	if ds == nil {
		return nil, st, dbscan.ErrNilDataset
	}
	if err := (dbscan.Params{Eps: p.Eps, MinPts: p.MinPts}).Validate(); err != nil {
		return nil, st, fmt.Errorf("nqdbscan: %w", err)
	}
	n := ds.Len()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = cluster.Unclassified
	}
	res := &cluster.Result{Labels: labels}
	if n == 0 {
		return res, st, nil
	}
	if p.Eps == 0 {
		// Degenerate grid width; fall back to plain exact DBSCAN.
		r, _, err := dbscan.Run(ds, dbscan.Params{Eps: p.Eps, MinPts: p.MinPts}, nil)
		return r, st, err
	}

	width := p.Eps / math.Sqrt(float64(ds.Dim()))
	g := grid.New(ds, width)
	cs, err := newCellSearcher(ds, g, p.Eps, &st)
	if err != nil {
		return nil, st, fmt.Errorf("nqdbscan: %w", err)
	}

	// Pruning 1: dense cells are all-core.
	isCore := make([]bool, n)
	for _, pts := range cs.cells {
		if len(pts) >= p.MinPts {
			st.DenseCells++
			for _, id := range pts {
				isCore[id] = true
			}
		}
	}

	var buf []int32
	query := func(id int32) []int32 {
		st.RangeQueries++
		buf = cs.query(id, buf[:0])
		return buf
	}

	var cid int32 = -1
	var seeds []int32
	for i := 0; i < n; i++ {
		if labels[i] != cluster.Unclassified {
			continue
		}
		nb := query(int32(i))
		if len(nb) < p.MinPts {
			labels[i] = cluster.Noise
			continue
		}
		cid++
		labels[i] = cid
		seeds = seeds[:0]
		for _, j := range nb {
			if j == int32(i) {
				continue
			}
			if labels[j] == cluster.Unclassified || labels[j] == cluster.Noise {
				labels[j] = cid
				seeds = append(seeds, j)
			}
		}
		for len(seeds) > 0 {
			j := seeds[len(seeds)-1]
			seeds = seeds[:len(seeds)-1]
			nb := query(j)
			if len(nb) < p.MinPts {
				continue
			}
			for _, q := range nb {
				switch labels[q] {
				case cluster.Unclassified:
					labels[q] = cid
					seeds = append(seeds, q)
				case cluster.Noise:
					labels[q] = cid
				}
			}
		}
	}
	res.Clusters = int(cid) + 1
	return res, st, nil
}
