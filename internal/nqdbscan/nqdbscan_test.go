package nqdbscan

import (
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/eval"
	"dbsvec/internal/vec"
)

func TestValidation(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	if _, _, err := Run(ds, Params{Eps: -1, MinPts: 3}); err == nil {
		t.Error("want error for negative eps")
	}
	if _, _, err := Run(ds, Params{Eps: 1, MinPts: 0}); err == nil {
		t.Error("want error for MinPts 0")
	}
	if _, _, err := Run(nil, Params{Eps: 1, MinPts: 3}); err == nil {
		t.Error("want error for nil dataset")
	}
}

func TestEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	res, _, err := Run(ds, Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 {
		t.Error("empty run should find nothing")
	}
}

func TestEpsZeroFallback(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{1, 1}, {1, 1}, {1, 1}, {5, 5}})
	res, _, err := Run(ds, Params{Eps: 0, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Errorf("clusters = %d, want 1", res.Clusters)
	}
}

// NQ-DBSCAN is exact: its labeling must match DBSCAN's (up to label
// permutation and border-point ties) on every workload.
func TestExactAgainstDBSCAN(t *testing.T) {
	workloads := []*vec.Dataset{
		data.Blobs(800, 2, 3, 2, 100, 0.05, 1),
		data.Blobs(600, 5, 4, 2, 100, 0.02, 2),
		data.Chameleon48K(3),
		data.Uniform(300, 2, 50, 4),
	}
	params := []dbscan.Params{
		{Eps: 3, MinPts: 8},
		{Eps: 4, MinPts: 6},
		{Eps: 8.5, MinPts: 20},
		{Eps: 2, MinPts: 5},
	}
	for w, ds := range workloads {
		p := params[w]
		truth, truthStats, err := dbscan.Run(ds, p, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := Run(ds, Params{Eps: p.Eps, MinPts: p.MinPts})
		if err != nil {
			t.Fatal(err)
		}
		if got.Clusters != truth.Clusters {
			t.Fatalf("workload %d: clusters %d != %d", w, got.Clusters, truth.Clusters)
		}
		rec, err := eval.PairRecall(truth, got)
		if err != nil {
			t.Fatal(err)
		}
		if rec < 0.999 {
			t.Fatalf("workload %d: recall %v, want 1 (exact algorithm)", w, rec)
		}
		for i := range got.Labels {
			if (got.Labels[i] == cluster.Noise) != (truth.Labels[i] == cluster.Noise) {
				t.Fatalf("workload %d: noise disagreement at %d", w, i)
			}
		}
		// Same number of range queries as DBSCAN (the paper's point).
		if st.RangeQueries != truthStats.RangeQueries {
			t.Errorf("workload %d: range queries %d != dbscan %d", w, st.RangeQueries, truthStats.RangeQueries)
		}
	}
}

func TestDenseCellShortcut(t *testing.T) {
	// A tight clump bigger than MinPts must trigger the dense-cell path.
	ds := data.Blobs(500, 2, 1, 0.01, 100, 0, 5)
	_, st, err := Run(ds, Params{Eps: 5, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if st.DenseCells == 0 {
		t.Error("expected at least one dense cell")
	}
}
