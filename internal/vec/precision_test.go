package vec

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dbsvec/internal/dist"
)

func randDataset(t *testing.T, rng *rand.Rand, n, d int) *Dataset {
	t.Helper()
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = (rng.Float64() - 0.5) * 2000
	}
	ds, err := NewDataset(coords, d)
	if err != nil {
		t.Fatal(err)
	}
	// The conversion tests need a true F64 starting point even when the
	// process default (DBSVEC_PRECISION=f32) makes constructors quantize.
	ds, err = ds.ToPrecision(F64)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestParsePrecision(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Precision
		ok   bool
	}{
		{"f64", F64, true}, {"float64", F64, true}, {"", F64, true},
		{"f32", F32, true}, {"float32", F32, true},
		{"f16", F64, false}, {"double", F64, false},
	} {
		got, err := ParsePrecision(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePrecision(%q) = (%v, %v), want (%v, ok=%v)", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Errorf("String() spellings wrong: %q %q", F64, F32)
	}
}

// TestToPrecision pins the conversion semantics: one quantization F64→F32
// that leaves the source untouched and keeps master == widened mirror; a
// no-op for matching precision; and F32→F64 dropping the mirror while
// keeping the quantized master (round-tripping back to F32 is then exact).
func TestToPrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := randDataset(t, rng, 40, 7)
	orig := append([]float64(nil), ds.Coords()...)

	if same, err := ds.ToPrecision(F64); err != nil || same != ds {
		t.Fatalf("ToPrecision(same) = (%p, %v), want receiver", same, err)
	}

	ds32, err := ds.ToPrecision(F32)
	if err != nil {
		t.Fatal(err)
	}
	if ds32.Precision() != F32 || ds.Precision() != F64 {
		t.Fatalf("precisions after convert: got %v / source %v", ds32.Precision(), ds.Precision())
	}
	for i, v := range ds.Coords() {
		if v != orig[i] {
			t.Fatalf("source coordinate %d mutated by conversion", i)
		}
	}
	m32 := ds32.Matrix32()
	if m32.Coords == nil || len(m32.Coords) != ds.Len()*ds.Dim() {
		t.Fatalf("F32 mirror missing or mis-sized")
	}
	for i, v := range ds32.Coords() {
		if v != float64(m32.Coords[i]) {
			t.Fatalf("master[%d] = %v is not the widening of mirror %v", i, v, m32.Coords[i])
		}
		if m32.Coords[i] != float32(orig[i]) {
			t.Fatalf("mirror[%d] not the rounding of the source", i)
		}
	}

	back, err := ds32.ToPrecision(F64)
	if err != nil {
		t.Fatal(err)
	}
	if back.Precision() != F64 || back.Matrix32().Coords != nil {
		t.Fatal("F32→F64 must drop the mirror")
	}
	// Master is already quantized, so a second F32 conversion is lossless.
	again, err := back.ToPrecision(F32)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again.Coords() {
		if again.Coords()[i] != ds32.Coords()[i] {
			t.Fatalf("re-quantization changed coordinate %d", i)
		}
	}
}

func TestToPrecisionOverflow(t *testing.T) {
	ds, err := NewDataset([]float64{1, 2, 1e300, 4}, 2)
	if DefaultPrecision() == F32 {
		// Under a global f32 default the constructor itself quantizes and
		// must already refuse the overflowing coordinate.
		if !errors.Is(err, ErrNotF32) {
			t.Fatalf("f32-default constructor err = %v, want ErrNotF32", err)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ToPrecision(F32); !errors.Is(err, ErrNotF32) {
		t.Fatalf("overflowing conversion err = %v, want ErrNotF32", err)
	}
}

func TestCloneSubsetPreservePrecision(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ds, err := randDataset(t, rng, 30, 5).ToPrecision(F32)
	if err != nil {
		t.Fatal(err)
	}
	cl := ds.Clone()
	if cl.Precision() != F32 {
		t.Fatal("Clone dropped F32 precision")
	}
	clm := cl.Matrix32()
	for i, v := range ds.Matrix32().Coords {
		if clm.Coords[i] != v {
			t.Fatalf("Clone mirror[%d] differs", i)
		}
	}
	sub := ds.Subset([]int32{3, 1, 7})
	if sub.Precision() != F32 || sub.Len() != 3 {
		t.Fatalf("Subset precision/len = %v/%d", sub.Precision(), sub.Len())
	}
	sm := sub.Matrix32()
	for k, id := range []int{3, 1, 7} {
		for j := 0; j < ds.Dim(); j++ {
			if sm.Coords[k*ds.Dim()+j] != ds.Matrix32().Row(id)[j] {
				t.Fatalf("Subset mirror row %d diverges from source row %d", k, id)
			}
			if sub.Point(k)[j] != float64(sm.Coords[k*ds.Dim()+j]) {
				t.Fatalf("Subset master not the widening of its mirror")
			}
		}
	}
}

// TestNormalizeToRequantizes checks that the sanctioned mutation keeps the
// two storage views consistent in F32 mode.
func TestNormalizeToRequantizes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds, err := randDataset(t, rng, 50, 3).ToPrecision(F32)
	if err != nil {
		t.Fatal(err)
	}
	ds.NormalizeTo(1e5)
	m32 := ds.Matrix32()
	for i, v := range ds.Coords() {
		if v != float64(m32.Coords[i]) {
			t.Fatalf("after NormalizeTo, master[%d] = %v diverges from mirror %v", i, v, m32.Coords[i])
		}
		if math.Abs(v) > 1e5 {
			t.Fatalf("normalized coordinate %d out of range: %v", i, v)
		}
	}
}

// TestRoutingMethodsBitIdentical checks the precision-routing convenience
// methods: on an F32 dataset they stream the mirror, yet must return exactly
// what the f64 kernels compute on the widened master — the method-level face
// of the kernel equivalence contract.
func TestRoutingMethodsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, d := range []int{2, 3, 9} {
		ds, err := randDataset(t, rng, 80, d).ToPrecision(F32)
		if err != nil {
			t.Fatal(err)
		}
		m := ds.Matrix() // widened master
		q := make([]float64, d)
		for j := range q {
			q[j] = (rng.Float64() - 0.5) * 2000
		}
		ids := []int32{5, 17, 5, 63, 0}

		got := make([]float64, ds.Len())
		want := make([]float64, ds.Len())
		ds.SqDistsToAll(q, got)
		dist.SqDistsToAll(m, q, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("d=%d: SqDistsToAll[%d] routed result not bit-identical", d, i)
			}
		}
		eps2 := want[ds.Len()/2]

		gi := make([]float64, len(ids))
		wi := make([]float64, len(ids))
		ds.SqDistsTo(q, ids, gi)
		dist.SqDistsTo(m, q, ids, wi)
		for k := range gi {
			if gi[k] != wi[k] {
				t.Fatalf("d=%d: SqDistsTo routed result not bit-identical", d)
			}
		}

		if g, w := ds.FilterWithin(q, eps2, nil), dist.FilterWithin(m, q, eps2, nil); !equalIDs(g, w) {
			t.Fatalf("d=%d: FilterWithin routed %v, want %v", d, g, w)
		}
		if g, w := ds.FilterWithinIDs(q, eps2, ids, nil), dist.FilterWithinIDs(m, q, eps2, ids, nil); !equalIDs(g, w) {
			t.Fatalf("d=%d: FilterWithinIDs routed %v, want %v", d, g, w)
		}
		if g, w := ds.CountWithin(q, eps2, 0), dist.CountWithin(m, q, eps2, 0); g != w {
			t.Fatalf("d=%d: CountWithin routed %d, want %d", d, g, w)
		}
		if g, w := ds.CountWithinIDs(q, eps2, ids, 0), dist.CountWithinIDs(m, q, eps2, ids, 0); g != w {
			t.Fatalf("d=%d: CountWithinIDs routed %d, want %d", d, g, w)
		}
	}
}

func equalIDs(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
