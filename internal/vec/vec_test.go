package vec

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewDataset(t *testing.T) {
	ds, err := NewDataset([]float64{1, 2, 3, 4, 5, 6}, 2)
	if err != nil {
		t.Fatalf("NewDataset: %v", err)
	}
	if ds.Len() != 3 || ds.Dim() != 2 {
		t.Fatalf("got n=%d d=%d, want 3,2", ds.Len(), ds.Dim())
	}
	if got := ds.Point(1); !reflect.DeepEqual(got, []float64{3, 4}) {
		t.Errorf("Point(1) = %v, want [3 4]", got)
	}
}

func TestNewDatasetErrors(t *testing.T) {
	if _, err := NewDataset([]float64{1, 2, 3}, 2); err == nil {
		t.Error("want error for non-multiple length")
	}
	if _, err := NewDataset(nil, 0); err == nil {
		t.Error("want error for zero dimension")
	}
	if _, err := NewDataset(nil, -3); err == nil {
		t.Error("want error for negative dimension")
	}
}

func TestFromRows(t *testing.T) {
	ds, err := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatalf("FromRows: %v", err)
	}
	if ds.Len() != 3 || ds.Dim() != 2 {
		t.Fatalf("got n=%d d=%d", ds.Len(), ds.Dim())
	}
}

func TestFromRowsEmpty(t *testing.T) {
	ds, err := FromRows(nil)
	if err != nil {
		t.Fatalf("FromRows(nil): %v", err)
	}
	if !ds.Empty() || ds.Len() != 0 {
		t.Error("empty input should produce empty dataset")
	}
}

func TestFromRowsRagged(t *testing.T) {
	if _, err := FromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("want error for ragged rows")
	}
}

func TestFromRowsNonFinite(t *testing.T) {
	if _, err := FromRows([][]float64{{1, math.NaN()}}); err == nil {
		t.Error("want error for NaN")
	}
	if _, err := FromRows([][]float64{{math.Inf(1), 0}}); err == nil {
		t.Error("want error for +Inf")
	}
}

func TestValidate(t *testing.T) {
	ds, err := NewDatasetUnchecked([]float64{1, 2, math.NaN(), 4}, 2)
	if err != nil {
		t.Fatalf("NewDatasetUnchecked: %v", err)
	}
	if err := ds.Validate(); err == nil {
		t.Error("Validate should detect NaN")
	}
	ds2, _ := NewDataset([]float64{1, 2, 3, 4}, 2)
	if err := ds2.Validate(); err != nil {
		t.Errorf("Validate on clean data: %v", err)
	}
}

// TestNewDatasetNonFinite is the regression test for the NewDataset /
// FromRows validation asymmetry: both constructors now share the same
// finite-value check, and NewDatasetUnchecked is the only way to wrap
// non-finite coordinates.
func TestNewDatasetNonFinite(t *testing.T) {
	if _, err := NewDataset([]float64{1, 2, math.NaN(), 4}, 2); err == nil {
		t.Error("NewDataset should reject NaN like FromRows does")
	}
	if _, err := NewDataset([]float64{math.Inf(-1), 0}, 2); err == nil {
		t.Error("NewDataset should reject -Inf like FromRows does")
	}
	if _, err := NewDatasetUnchecked([]float64{1, 2, math.NaN(), 4}, 2); err != nil {
		t.Errorf("NewDatasetUnchecked should accept non-finite values: %v", err)
	}
	// The structural checks still apply to the unchecked constructor.
	if _, err := NewDatasetUnchecked([]float64{1, 2, 3}, 2); err == nil {
		t.Error("NewDatasetUnchecked should reject non-multiple length")
	}
	if _, err := NewDatasetUnchecked(nil, 0); err == nil {
		t.Error("NewDatasetUnchecked should reject zero dimension")
	}
}

func TestDistances(t *testing.T) {
	ds, _ := FromRows([][]float64{{0, 0}, {3, 4}})
	if got := ds.Dist(0, 1); math.Abs(got-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := ds.Dist2(0, 1); math.Abs(got-25) > 1e-12 {
		t.Errorf("Dist2 = %v, want 25", got)
	}
	if got := ds.Dist2To(0, []float64{0, 2}); math.Abs(got-4) > 1e-12 {
		t.Errorf("Dist2To = %v, want 4", got)
	}
}

func TestDotNorm(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Norm2([]float64{3, 4}); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
}

func TestCloneAndSubset(t *testing.T) {
	ds, _ := FromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	cp := ds.Clone()
	cp.Coords()[0] = 99
	if ds.Point(0)[0] == 99 {
		t.Error("Clone must not share backing storage")
	}
	sub := ds.Subset([]int32{2, 0})
	if sub.Len() != 2 || sub.Point(0)[0] != 3 || sub.Point(1)[0] != 1 {
		t.Errorf("Subset wrong: %+v", sub.Coords())
	}
}

func TestMean(t *testing.T) {
	ds, _ := FromRows([][]float64{{0, 0}, {2, 4}})
	m := ds.Mean([]int32{0, 1})
	if m[0] != 1 || m[1] != 2 {
		t.Errorf("Mean = %v, want [1 2]", m)
	}
	z := ds.Mean(nil)
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Mean(nil) = %v, want zero", z)
	}
}

func TestBounds(t *testing.T) {
	ds, _ := FromRows([][]float64{{1, 9}, {-2, 5}, {4, 7}})
	lo, hi := ds.Bounds()
	if lo[0] != -2 || lo[1] != 5 || hi[0] != 4 || hi[1] != 9 {
		t.Errorf("Bounds lo=%v hi=%v", lo, hi)
	}
	var empty Dataset
	elo, ehi := empty.Bounds()
	if elo != nil || ehi != nil {
		t.Error("empty Bounds should return nils")
	}
}

func TestNormalizeTo(t *testing.T) {
	ds, _ := FromRows([][]float64{{0, 5}, {10, 5}, {5, 5}})
	ds.NormalizeTo(100)
	lo, hi := ds.Bounds()
	if lo[0] != 0 || hi[0] != 100 {
		t.Errorf("dim0 should span [0,100], got [%v,%v]", lo[0], hi[0])
	}
	// Constant dimension collapses to 0.
	if lo[1] != 0 || hi[1] != 0 {
		t.Errorf("constant dim should be 0, got [%v,%v]", lo[1], hi[1])
	}
}

func TestNormalizeEmptyNoop(t *testing.T) {
	ds, _ := FromRows(nil)
	if got := ds.NormalizeTo(10); got != ds {
		t.Error("NormalizeTo should return receiver")
	}
}

func TestRectBasics(t *testing.T) {
	r := NewRect(2)
	r.Extend([]float64{1, 2})
	r.Extend([]float64{3, 0})
	if !r.Contains([]float64{2, 1}) {
		t.Error("rect should contain interior point")
	}
	if r.Contains([]float64{4, 1}) {
		t.Error("rect should not contain exterior point")
	}
	if got := r.Area(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Area = %v, want 4", got)
	}
	if got := r.Margin(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Margin = %v, want 4", got)
	}
	c := r.Center(nil)
	if c[0] != 2 || c[1] != 1 {
		t.Errorf("Center = %v", c)
	}
}

func TestRectOfClone(t *testing.T) {
	r := RectOf([]float64{1, 2})
	cl := r.Clone()
	cl.Lo[0] = -5
	if r.Lo[0] != 1 {
		t.Error("Clone must not alias")
	}
}

func TestRectDistances(t *testing.T) {
	r := Rect{Lo: []float64{0, 0}, Hi: []float64{2, 2}}
	if got := r.MinDist2([]float64{1, 1}); got != 0 {
		t.Errorf("MinDist2 inside = %v, want 0", got)
	}
	if got := r.MinDist2([]float64{5, 2}); math.Abs(got-9) > 1e-12 {
		t.Errorf("MinDist2 outside = %v, want 9", got)
	}
	if got := r.MaxDist2([]float64{0, 0}); math.Abs(got-8) > 1e-12 {
		t.Errorf("MaxDist2 = %v, want 8", got)
	}
}

func TestRectOverlapEnlarge(t *testing.T) {
	a := Rect{Lo: []float64{0, 0}, Hi: []float64{2, 2}}
	b := Rect{Lo: []float64{1, 1}, Hi: []float64{3, 3}}
	if got := a.OverlapArea(b); math.Abs(got-1) > 1e-12 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	c := Rect{Lo: []float64{5, 5}, Hi: []float64{6, 6}}
	if got := a.OverlapArea(c); got != 0 {
		t.Errorf("disjoint OverlapArea = %v, want 0", got)
	}
	if got := a.EnlargedArea(b); math.Abs(got-9) > 1e-12 {
		t.Errorf("EnlargedArea = %v, want 9", got)
	}
	a2 := a.Clone()
	a2.ExtendRect(b)
	if a2.Lo[0] != 0 || a2.Hi[0] != 3 {
		t.Errorf("ExtendRect wrong: %+v", a2)
	}
}

// Property: SqDist is symmetric, non-negative, and zero iff equal vectors.
func TestSqDistProperties(t *testing.T) {
	f := func(a, b [4]float64) bool {
		av, bv := a[:], b[:]
		for i := range av {
			av[i] = math.Mod(av[i], 1e6)
			bv[i] = math.Mod(bv[i], 1e6)
			if math.IsNaN(av[i]) {
				av[i] = 0
			}
			if math.IsNaN(bv[i]) {
				bv[i] = 0
			}
		}
		d1 := SqDist(av, bv)
		d2 := SqDist(bv, av)
		return d1 >= 0 && math.Abs(d1-d2) <= 1e-9*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for Dist.
func TestTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 300; iter++ {
		d := 1 + rng.Intn(8)
		a := make([]float64, d)
		b := make([]float64, d)
		c := make([]float64, d)
		for j := 0; j < d; j++ {
			a[j], b[j], c[j] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}

// Property: MinDist2 of a rectangle to a point never exceeds the distance to
// any point inside the rectangle.
func TestRectMinDistProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		d := 1 + rng.Intn(5)
		r := NewRect(d)
		inside := make([]float64, d)
		for j := 0; j < d; j++ {
			lo := rng.NormFloat64() * 10
			hi := lo + rng.Float64()*10
			r.Lo[j], r.Hi[j] = lo, hi
			inside[j] = lo + rng.Float64()*(hi-lo)
		}
		q := make([]float64, d)
		for j := 0; j < d; j++ {
			q[j] = rng.NormFloat64() * 20
		}
		if r.MinDist2(q) > SqDist(q, inside)+1e-9 {
			t.Fatalf("MinDist2 exceeded actual distance: rect=%+v q=%v p=%v", r, q, inside)
		}
		if r.MaxDist2(q)+1e-9 < SqDist(q, inside) {
			t.Fatalf("MaxDist2 below actual distance")
		}
	}
}

func TestMinDist2Rect(t *testing.T) {
	a := Rect{Lo: []float64{0, 0}, Hi: []float64{2, 2}}
	b := Rect{Lo: []float64{1, 1}, Hi: []float64{3, 3}}
	if got := a.MinDist2Rect(b); got != 0 {
		t.Errorf("overlapping rects distance = %v, want 0", got)
	}
	c := Rect{Lo: []float64{5, 0}, Hi: []float64{6, 2}}
	if got := a.MinDist2Rect(c); math.Abs(got-9) > 1e-12 {
		t.Errorf("axis-gap distance = %v, want 9", got)
	}
	d := Rect{Lo: []float64{5, 6}, Hi: []float64{7, 8}}
	if got := a.MinDist2Rect(d); math.Abs(got-(9+16)) > 1e-12 {
		t.Errorf("diagonal-gap distance = %v, want 25", got)
	}
	// Symmetry.
	if a.MinDist2Rect(d) != d.MinDist2Rect(a) {
		t.Error("MinDist2Rect not symmetric")
	}
}

// Property: rect-to-rect min distance never exceeds the distance between
// any contained point pair.
func TestMinDist2RectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 300; iter++ {
		dim := 1 + rng.Intn(5)
		mk := func() (Rect, []float64) {
			r := NewRect(dim)
			inside := make([]float64, dim)
			for j := 0; j < dim; j++ {
				lo := rng.NormFloat64() * 10
				hi := lo + rng.Float64()*5
				r.Lo[j], r.Hi[j] = lo, hi
				inside[j] = lo + rng.Float64()*(hi-lo)
			}
			return r, inside
		}
		ra, pa := mk()
		rb, pb := mk()
		if ra.MinDist2Rect(rb) > SqDist(pa, pb)+1e-9 {
			t.Fatalf("rect min distance exceeds contained pair distance")
		}
	}
}

func BenchmarkSqDist8(b *testing.B) {
	x := make([]float64, 8)
	y := make([]float64, 8)
	for i := range x {
		x[i] = float64(i)
		y[i] = float64(i) * 1.5
	}
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SqDist(x, y)
	}
	_ = sink
}
