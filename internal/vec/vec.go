// Package vec provides the vector and dataset substrate shared by every
// clustering algorithm in this repository: flat column-free point storage,
// Euclidean geometry helpers, bounding boxes, and coordinate normalization.
//
// Points are stored in a single contiguous []float64 of length n*d so that
// range scans are cache friendly and the garbage collector sees one object
// per dataset instead of n. Algorithms address points by their integer id
// (0..n-1) and borrow read-only views via Dataset.Point.
//
// Storage precision is a property of the dataset, not of the code: every
// dataset carries a Precision. F64 (the default) is the historical layout
// and stays bit-identical to it. F32 quantizes every coordinate to float32
// exactly once — at construction or conversion — and keeps two consistent
// views: a contiguous float32 mirror that the memory-bound batch kernels
// stream (half the bytes per scan), and a float64 master holding the exact
// widening of the mirror, which serves Point, geometry helpers and index
// construction unchanged. Because the master equals the widened mirror and
// the f32 kernels accumulate in float64 (see internal/dist), both views
// yield bit-identical distances; the only rounding in F32 mode is the single
// quantization at ingest.
package vec

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"

	"dbsvec/internal/dist"
)

// Errors returned by dataset constructors and mutators.
var (
	ErrDimMismatch = errors.New("vec: point dimensionality does not match dataset")
	ErrBadDim      = errors.New("vec: dimensionality must be positive")
	ErrNonFinite   = errors.New("vec: coordinate is NaN or infinite")
	// ErrNotF32 reports a finite float64 coordinate whose float32 rounding
	// overflows to infinity, which F32 storage cannot represent.
	ErrNotF32 = errors.New("vec: coordinate overflows float32")
)

// Precision selects the point-storage layout of a Dataset.
type Precision uint8

// Supported storage precisions.
const (
	// F64 stores coordinates as float64 only: the default, bit-identical to
	// the historical single-precision-free layout.
	F64 Precision = iota
	// F32 stores a float32 mirror alongside the float64 master (the master
	// holding the exact widening of the mirror); hot scans stream the mirror.
	F32
)

// String returns the flag spelling of the precision ("f64" / "f32").
func (p Precision) String() string {
	if p == F32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses the flag spelling accepted by the CLIs.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "f64", "float64", "":
		return F64, nil
	case "f32", "float32":
		return F32, nil
	}
	return F64, fmt.Errorf("vec: unknown precision %q (want f64 or f32)", s)
}

// defaultPrecision is the construction-time default, read once from the
// DBSVEC_PRECISION environment variable ("f32" flips every dataset built by
// the constructors into float32 storage — the switch the CI float32-mode job
// uses to run the whole suite on f32 datasets). Unset or unparsable selects
// F64, so ordinary runs are unaffected.
var defaultPrecision = sync.OnceValue(func() Precision {
	p, err := ParsePrecision(os.Getenv("DBSVEC_PRECISION"))
	if err != nil {
		return F64
	}
	return p
})

// DefaultPrecision returns the process-wide construction default (F64 unless
// DBSVEC_PRECISION=f32). Tests that pin exact float64 golden values gate on
// it.
func DefaultPrecision() Precision { return defaultPrecision() }

// Dataset is an immutable-by-convention collection of n points in d
// dimensions backed by one flat slice. The zero value is unusable; construct
// with NewDataset or FromRows.
type Dataset struct {
	coords []float64 // len == n*d; in F32 mode the exact widening of coords32
	// coords32 is the float32 storage mirror, non-nil exactly when prec is
	// F32. It is quantized once at construction; the batch kernels stream it.
	coords32 []float32
	prec     Precision
	n        int
	d        int
}

// NewDataset wraps an existing flat coordinate slice. The slice length must
// be a multiple of d and every coordinate must be finite (the same contract
// FromRows enforces). The dataset takes ownership of coords; callers must
// not mutate it afterwards. Trusted internal producers of known-finite
// coordinates can skip the finite-value scan with NewDatasetUnchecked.
func NewDataset(coords []float64, d int) (*Dataset, error) {
	ds, err := NewDatasetUnchecked(coords, d)
	if err != nil {
		return nil, err
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// NewDatasetUnchecked is NewDataset without the finite-value scan. It is the
// documented escape hatch for trusted internal callers — synthetic data
// generators and derived datasets (cell centers, subsets) whose coordinates
// are finite by construction — where an extra O(n·d) pass per build would
// show up in benchmarks. Callers feeding external input must use NewDataset
// (or FromRows): NaN coordinates poison every distance comparison downstream.
func NewDatasetUnchecked(coords []float64, d int) (*Dataset, error) {
	if d <= 0 {
		return nil, ErrBadDim
	}
	if len(coords)%d != 0 {
		return nil, fmt.Errorf("vec: %d coordinates is not a multiple of dimension %d", len(coords), d)
	}
	ds := &Dataset{coords: coords, n: len(coords) / d, d: d}
	if DefaultPrecision() == F32 {
		if err := ds.quantize(); err != nil {
			return nil, err
		}
	}
	return ds, nil
}

// quantize flips the dataset into F32 storage in place: every master
// coordinate is rounded to float32 once, the mirror stores the rounded bits
// and the master is replaced by their exact widening. Finite coordinates
// beyond the float32 range fail with ErrNotF32 (quantizing them to ±Inf
// would poison every distance downstream).
func (ds *Dataset) quantize() error {
	mirror := make([]float32, len(ds.coords))
	for i, v := range ds.coords {
		f := float32(v)
		if math.IsInf(float64(f), 0) && !math.IsInf(v, 0) {
			return fmt.Errorf("%w: point %d dimension %d (%g)", ErrNotF32, i/ds.d, i%ds.d, v)
		}
		mirror[i] = f
		ds.coords[i] = float64(f)
	}
	ds.coords32 = mirror
	ds.prec = F32
	return nil
}

// Precision returns the dataset's storage precision.
func (ds *Dataset) Precision() Precision {
	if ds == nil {
		return F64
	}
	return ds.prec
}

// ToPrecision returns a dataset with the requested storage precision. A
// matching precision returns the receiver unchanged. F64→F32 returns a
// quantized copy (the receiver's coordinates are not mutated); the
// conversion is the one rounding step of float32 mode and fails with
// ErrNotF32 when a coordinate overflows the float32 range. F32→F64 drops the
// mirror; the master keeps the already-quantized values, so converting back
// does not recover the original float64 input.
func (ds *Dataset) ToPrecision(p Precision) (*Dataset, error) {
	if ds == nil || ds.prec == p {
		return ds, nil
	}
	if p == F64 {
		return &Dataset{coords: ds.coords, n: ds.n, d: ds.d}, nil
	}
	cp := &Dataset{coords: append([]float64(nil), ds.coords...), n: ds.n, d: ds.d}
	if err := cp.quantize(); err != nil {
		return nil, err
	}
	return cp, nil
}

// FromRows copies a row-per-point matrix into a new dataset. All rows must
// share the same length and contain only finite values.
func FromRows(rows [][]float64) (*Dataset, error) {
	if len(rows) == 0 {
		return &Dataset{coords: nil, n: 0, d: 1}, nil
	}
	d := len(rows[0])
	if d == 0 {
		return nil, ErrBadDim
	}
	coords := make([]float64, 0, len(rows)*d)
	for i, r := range rows {
		if len(r) != d {
			return nil, fmt.Errorf("%w: row %d has %d coordinates, want %d", ErrDimMismatch, i, len(r), d)
		}
		coords = append(coords, r...)
	}
	// The finite-value check is shared with NewDataset via Validate.
	return NewDataset(coords, d)
}

// Empty reports whether the dataset holds no points.
func (ds *Dataset) Empty() bool { return ds == nil || ds.n == 0 }

// Len returns the number of points n.
func (ds *Dataset) Len() int {
	if ds == nil {
		return 0
	}
	return ds.n
}

// Dim returns the dimensionality d.
func (ds *Dataset) Dim() int {
	if ds == nil {
		return 0
	}
	return ds.d
}

// Point returns a read-only view of point i. The returned slice aliases the
// dataset's backing array and must not be modified or retained across
// dataset mutations.
func (ds *Dataset) Point(i int) []float64 {
	return ds.coords[i*ds.d : i*ds.d+ds.d : i*ds.d+ds.d]
}

// Coords exposes the flat backing slice (length n*d). Read-only.
func (ds *Dataset) Coords() []float64 { return ds.coords }

// Clone returns a deep copy of the dataset, preserving its precision.
func (ds *Dataset) Clone() *Dataset {
	cp := make([]float64, len(ds.coords))
	copy(cp, ds.coords)
	out := &Dataset{coords: cp, prec: ds.prec, n: ds.n, d: ds.d}
	if ds.coords32 != nil {
		out.coords32 = append([]float32(nil), ds.coords32...)
	}
	return out
}

// Subset copies the points with the given ids into a new dataset, in order,
// preserving the precision. In F32 mode the master rows are already widened
// float32 values, so re-quantizing the subset is exact.
func (ds *Dataset) Subset(ids []int32) *Dataset {
	out := make([]float64, 0, len(ids)*ds.d)
	for _, id := range ids {
		out = append(out, ds.Point(int(id))...)
	}
	sub := &Dataset{coords: out, n: len(ids), d: ds.d}
	if ds.prec == F32 {
		mirror := make([]float32, len(out))
		for i, v := range out {
			mirror[i] = float32(v)
		}
		sub.coords32 = mirror
		sub.prec = F32
	}
	return sub
}

// Dist2 returns the squared Euclidean distance between points i and j.
func (ds *Dataset) Dist2(i, j int) float64 {
	return SqDist(ds.Point(i), ds.Point(j))
}

// Dist returns the Euclidean distance between points i and j.
func (ds *Dataset) Dist(i, j int) float64 {
	return math.Sqrt(ds.Dist2(i, j))
}

// Dist2To returns the squared Euclidean distance between point i and an
// arbitrary query vector q (len(q) must equal Dim()).
func (ds *Dataset) Dist2To(i int, q []float64) float64 {
	return SqDist(ds.Point(i), q)
}

// Matrix returns the dataset's flat float64 coordinate view for use with the
// batched kernels in internal/dist. No copying occurs; the matrix aliases
// the dataset's backing array. In F32 mode this is the widened master —
// valid for every kernel, but callers on hot paths should prefer the
// precision-routing Dataset methods (or Matrix32) to stream half the bytes.
func (ds *Dataset) Matrix() dist.Matrix {
	return dist.Matrix{Coords: ds.coords, Dim: ds.d}
}

// Matrix32 returns the float32 storage mirror for the batched f32 kernels.
// It is the zero Matrix32 (nil Coords) unless Precision() is F32.
func (ds *Dataset) Matrix32() dist.Matrix32 {
	return dist.Matrix32{Coords: ds.coords32, Dim: ds.d}
}

// SqDistsTo writes the squared distance from each of the points in ids to q
// into out (out[k] = dist²(ids[k], q); len(out) >= len(ids)). Like every
// convenience method below it routes to the f32 storage kernels in F32 mode;
// results are bit-identical to the float64 master either way.
func (ds *Dataset) SqDistsTo(q []float64, ids []int32, out []float64) {
	if ds.prec == F32 {
		dist.SqDistsTo32(ds.Matrix32(), q, ids, out)
		return
	}
	dist.SqDistsTo(ds.Matrix(), q, ids, out)
}

// SqDistsToAll writes the squared distance from every point to q into out
// (len(out) >= Len()).
func (ds *Dataset) SqDistsToAll(q []float64, out []float64) {
	if ds.prec == F32 {
		dist.SqDistsToAll32(ds.Matrix32(), q, out)
		return
	}
	dist.SqDistsToAll(ds.Matrix(), q, out)
}

// FilterWithin appends the ids of all points within squared distance eps2
// of q to buf, ascending, and returns the extended slice.
func (ds *Dataset) FilterWithin(q []float64, eps2 float64, buf []int32) []int32 {
	if ds.prec == F32 {
		return dist.FilterWithin32(ds.Matrix32(), q, eps2, buf)
	}
	return dist.FilterWithin(ds.Matrix(), q, eps2, buf)
}

// FilterWithinIDs appends the members of ids (in given order) within
// squared distance eps2 of q to buf and returns the extended slice.
func (ds *Dataset) FilterWithinIDs(q []float64, eps2 float64, ids, buf []int32) []int32 {
	if ds.prec == F32 {
		return dist.FilterWithinIDs32(ds.Matrix32(), q, eps2, ids, buf)
	}
	return dist.FilterWithinIDs(ds.Matrix(), q, eps2, ids, buf)
}

// CountWithin returns the number of points within squared distance eps2 of
// q; limit > 0 stops the scan early once reached.
func (ds *Dataset) CountWithin(q []float64, eps2 float64, limit int) int {
	if ds.prec == F32 {
		return dist.CountWithin32(ds.Matrix32(), q, eps2, limit)
	}
	return dist.CountWithin(ds.Matrix(), q, eps2, limit)
}

// CountWithinIDs counts the members of ids within squared distance eps2 of
// q, with the same limit semantics as CountWithin.
func (ds *Dataset) CountWithinIDs(q []float64, eps2 float64, ids []int32, limit int) int {
	if ds.prec == F32 {
		return dist.CountWithinIDs32(ds.Matrix32(), q, eps2, ids, limit)
	}
	return dist.CountWithinIDs(ds.Matrix(), q, eps2, ids, limit)
}

// SqDist returns the squared Euclidean distance between two equal-length
// vectors. It delegates to the shared kernel layer in internal/dist.
func SqDist(a, b []float64) float64 { return dist.SqDist(a, b) }

// Dist returns the Euclidean distance between two equal-length vectors.
func Dist(a, b []float64) float64 { return dist.Dist(a, b) }

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 { return dist.Dot(a, b) }

// Norm2 returns the squared Euclidean norm of v.
func Norm2(v []float64) float64 { return dist.Norm2(v) }

// Norm returns the Euclidean norm of v.
func Norm(v []float64) float64 { return dist.Norm(v) }

// Iota returns the identity id slice [0, 1, …, n-1]: the full-dataset id
// set consumed by index builders and whole-dataset SVDD training.
func Iota(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// Mean computes the coordinate-wise mean of the points with the given ids.
// It returns a zero vector when ids is empty.
func (ds *Dataset) Mean(ids []int32) []float64 {
	m := make([]float64, ds.d)
	if len(ids) == 0 {
		return m
	}
	for _, id := range ids {
		p := ds.Point(int(id))
		for j, v := range p {
			m[j] += v
		}
	}
	inv := 1 / float64(len(ids))
	for j := range m {
		m[j] *= inv
	}
	return m
}

// Bounds returns the per-dimension minimum and maximum over all points.
// For an empty dataset both slices are nil.
func (ds *Dataset) Bounds() (lo, hi []float64) {
	if ds.n == 0 {
		return nil, nil
	}
	lo = make([]float64, ds.d)
	hi = make([]float64, ds.d)
	copy(lo, ds.Point(0))
	copy(hi, ds.Point(0))
	for i := 1; i < ds.n; i++ {
		p := ds.Point(i)
		for j, v := range p {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// NormalizeTo linearly rescales every coordinate so each dimension spans
// [0, scale], matching the paper's experimental setup (coordinates
// normalized to [0,10^5]). Dimensions with zero extent map to 0. It returns
// the same dataset for chaining. This is the one sanctioned mutation of a
// dataset and must happen before any index is built over it.
func (ds *Dataset) NormalizeTo(scale float64) *Dataset {
	if ds.n == 0 {
		return ds
	}
	lo, hi := ds.Bounds()
	for j := 0; j < ds.d; j++ {
		ext := hi[j] - lo[j]
		if ext <= 0 {
			for i := 0; i < ds.n; i++ {
				ds.coords[i*ds.d+j] = 0
			}
			continue
		}
		f := scale / ext
		for i := 0; i < ds.n; i++ {
			ds.coords[i*ds.d+j] = (ds.coords[i*ds.d+j] - lo[j]) * f
		}
	}
	if ds.prec == F32 {
		// Rescaling happened on the float64 master; re-quantize so the mirror
		// and master stay two consistent views of one storage. Normalized
		// coordinates are bounded by |scale|, so this cannot overflow float32
		// for any sane scale.
		for i, v := range ds.coords {
			f := float32(v)
			ds.coords32[i] = f
			ds.coords[i] = float64(f)
		}
	}
	return ds
}

// Validate checks that every coordinate is finite.
func (ds *Dataset) Validate() error {
	for i, v := range ds.coords {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: point %d dimension %d", ErrNonFinite, i/ds.d, i%ds.d)
		}
	}
	return nil
}

// Rect is an axis-aligned hyper-rectangle used by spatial indexes.
type Rect struct {
	Lo, Hi []float64
}

// NewRect allocates a rectangle of dimensionality d initialized to the
// empty (inverted) state so that Extend works incrementally.
func NewRect(d int) Rect {
	lo := make([]float64, d)
	hi := make([]float64, d)
	for j := 0; j < d; j++ {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	return Rect{Lo: lo, Hi: hi}
}

// RectOf returns the tight bounding rectangle of a single point.
func RectOf(p []float64) Rect {
	lo := make([]float64, len(p))
	hi := make([]float64, len(p))
	copy(lo, p)
	copy(hi, p)
	return Rect{Lo: lo, Hi: hi}
}

// Clone deep-copies the rectangle.
func (r Rect) Clone() Rect {
	lo := make([]float64, len(r.Lo))
	hi := make([]float64, len(r.Hi))
	copy(lo, r.Lo)
	copy(hi, r.Hi)
	return Rect{Lo: lo, Hi: hi}
}

// Extend grows r in place to cover point p.
func (r *Rect) Extend(p []float64) {
	for j, v := range p {
		if v < r.Lo[j] {
			r.Lo[j] = v
		}
		if v > r.Hi[j] {
			r.Hi[j] = v
		}
	}
}

// ExtendRect grows r in place to cover another rectangle.
func (r *Rect) ExtendRect(o Rect) {
	for j := range r.Lo {
		if o.Lo[j] < r.Lo[j] {
			r.Lo[j] = o.Lo[j]
		}
		if o.Hi[j] > r.Hi[j] {
			r.Hi[j] = o.Hi[j]
		}
	}
}

// Contains reports whether point p lies inside (or on the border of) r.
func (r Rect) Contains(p []float64) bool {
	for j, v := range p {
		if v < r.Lo[j] || v > r.Hi[j] {
			return false
		}
	}
	return true
}

// Margin returns the sum of the rectangle's edge lengths (the R*-tree margin
// heuristic).
func (r Rect) Margin() float64 {
	var m float64
	for j := range r.Lo {
		m += r.Hi[j] - r.Lo[j]
	}
	return m
}

// Area returns the d-dimensional volume of the rectangle.
func (r Rect) Area() float64 {
	a := 1.0
	for j := range r.Lo {
		a *= r.Hi[j] - r.Lo[j]
	}
	return a
}

// EnlargedArea returns the volume r would have after absorbing o.
func (r Rect) EnlargedArea(o Rect) float64 {
	a := 1.0
	for j := range r.Lo {
		lo := math.Min(r.Lo[j], o.Lo[j])
		hi := math.Max(r.Hi[j], o.Hi[j])
		a *= hi - lo
	}
	return a
}

// OverlapArea returns the volume of the intersection of r and o, or 0 when
// they are disjoint.
func (r Rect) OverlapArea(o Rect) float64 {
	a := 1.0
	for j := range r.Lo {
		lo := math.Max(r.Lo[j], o.Lo[j])
		hi := math.Min(r.Hi[j], o.Hi[j])
		if hi <= lo {
			return 0
		}
		a *= hi - lo
	}
	return a
}

// MinDist2 returns the squared Euclidean distance from point q to the
// nearest point of the rectangle (0 when q is inside).
func (r Rect) MinDist2(q []float64) float64 {
	var s float64
	for j, v := range q {
		if v < r.Lo[j] {
			dv := r.Lo[j] - v
			s += dv * dv
		} else if v > r.Hi[j] {
			dv := v - r.Hi[j]
			s += dv * dv
		}
	}
	return s
}

// MinDist2Rect returns the squared Euclidean distance between the closest
// pair of points of two rectangles (0 when they intersect).
func (r Rect) MinDist2Rect(o Rect) float64 {
	var s float64
	for j := range r.Lo {
		if o.Hi[j] < r.Lo[j] {
			dv := r.Lo[j] - o.Hi[j]
			s += dv * dv
		} else if o.Lo[j] > r.Hi[j] {
			dv := o.Lo[j] - r.Hi[j]
			s += dv * dv
		}
	}
	return s
}

// MaxDist2 returns the squared Euclidean distance from point q to the
// farthest corner of the rectangle.
func (r Rect) MaxDist2(q []float64) float64 {
	var s float64
	for j, v := range q {
		a := v - r.Lo[j]
		b := r.Hi[j] - v
		m := math.Max(math.Abs(a), math.Abs(b))
		s += m * m
	}
	return s
}

// Center writes the rectangle's center into dst (allocating when dst is nil
// or too short) and returns it.
func (r Rect) Center(dst []float64) []float64 {
	if cap(dst) < len(r.Lo) {
		dst = make([]float64, len(r.Lo))
	}
	dst = dst[:len(r.Lo)]
	for j := range r.Lo {
		dst[j] = (r.Lo[j] + r.Hi[j]) / 2
	}
	return dst
}
