package lshdbscan

import (
	"testing"

	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/eval"
	"dbsvec/internal/lsh"
	"dbsvec/internal/vec"
)

func TestValidation(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	if _, _, err := Run(ds, Params{Eps: -1, MinPts: 3}); err == nil {
		t.Error("want error for negative eps")
	}
	if _, _, err := Run(ds, Params{Eps: 1, MinPts: 0}); err == nil {
		t.Error("want error for MinPts 0")
	}
	if _, _, err := Run(nil, Params{Eps: 1, MinPts: 3}); err == nil {
		t.Error("want error for nil dataset")
	}
}

func TestEmpty(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	res, _, err := Run(ds, Params{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 {
		t.Error("empty run should find nothing")
	}
}

func TestTwoBlobs(t *testing.T) {
	ds := data.Blobs(600, 2, 2, 1.5, 100, 0.02, 1)
	res, st, err := Run(ds, Params{Eps: 3, MinPts: 8})
	if err != nil {
		t.Fatal(err)
	}
	// LSH may fragment clusters but two blobs must produce at least 2.
	if res.Clusters < 2 {
		t.Errorf("clusters = %d, want >= 2", res.Clusters)
	}
	if st.RangeQueries == 0 || st.CandidateSum == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

// DBSCAN-LSH is approximate: recall against exact DBSCAN should be decent
// but may be below 1 — the behaviour Table III reports.
func TestRecallReasonable(t *testing.T) {
	ds := data.Blobs(1000, 4, 3, 2, 100, 0.03, 2)
	dp := dbscan.Params{Eps: 4, MinPts: 8}
	truth, _, err := dbscan.Run(ds, dp, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(ds, Params{Eps: dp.Eps, MinPts: dp.MinPts,
		Hash: lsh.Params{Tables: 8, Funcs: 2, Width: dp.Eps, Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eval.PairRecall(truth, got)
	if err != nil {
		t.Fatal(err)
	}
	if rec < 0.5 {
		t.Errorf("recall %v unreasonably low", rec)
	}
	t.Logf("DBSCAN-LSH recall: %v", rec)
}

// More hash tables monotonically improve recall toward exact DBSCAN (the
// knob the original paper exposes).
func TestMoreTablesImproveRecall(t *testing.T) {
	ds := data.Blobs(800, 4, 3, 2, 100, 0.02, 9)
	dp := dbscan.Params{Eps: 4, MinPts: 8}
	truth, _, err := dbscan.Run(ds, dp, nil)
	if err != nil {
		t.Fatal(err)
	}
	recallWith := func(tables int) float64 {
		got, _, err := Run(ds, Params{Eps: dp.Eps, MinPts: dp.MinPts,
			Hash: lsh.Params{Tables: tables, Funcs: 2, Width: dp.Eps, Seed: 7}})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := eval.PairRecall(truth, got)
		if err != nil {
			t.Fatal(err)
		}
		return rec
	}
	few := recallWith(2)
	many := recallWith(24)
	if many+0.02 < few {
		t.Errorf("recall should not degrade with more tables: L=2 %.3f vs L=24 %.3f", few, many)
	}
	if many < 0.9 {
		t.Errorf("24 tables should get close to exact, recall %.3f", many)
	}
}

func TestSubsetOfExactNeighbors(t *testing.T) {
	// LSH neighborhoods are subsets of true eps-neighborhoods, so LSH can
	// only under-count: no point clustered by LSH as core should be exact
	// noise... actually under-counting means fewer core points, so every
	// LSH cluster point must be non-noise in exact DBSCAN.
	ds := data.Blobs(500, 3, 2, 2, 100, 0.1, 4)
	dp := dbscan.Params{Eps: 3, MinPts: 6}
	truth, _, err := dbscan.Run(ds, dp, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := Run(ds, Params{Eps: dp.Eps, MinPts: dp.MinPts})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got.Labels {
		if got.Labels[i] >= 0 && truth.Labels[i] < 0 {
			t.Fatalf("LSH clustered point %d that exact DBSCAN calls noise", i)
		}
	}
}
