// Package lshdbscan implements the DBSCAN-LSH baseline (Li, Heinis & Luk,
// ADBIS 2016): DBSCAN whose ε-range queries are answered approximately from
// p-stable LSH buckets. Candidates are the points sharing at least one
// bucket with the query across L tables, filtered by an exact distance
// check; neighbors that never collide with the query are missed, which is
// the source of the recall loss the DBSVEC paper reports for this method.
package lshdbscan

import (
	"fmt"

	"dbsvec/internal/cluster"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/lsh"
	"dbsvec/internal/vec"
)

// Params configures a run.
type Params struct {
	// Eps and MinPts are the DBSCAN parameters.
	Eps    float64
	MinPts int
	// Hash configures the LSH structure. Zero values select L=8 tables of
	// k=2 functions with width eps — eight p-stable hash functions total,
	// matching the paper's experimental setup.
	Hash lsh.Params
}

// Stats reports work performed.
type Stats struct {
	// CandidateSum is the total number of LSH candidates inspected.
	CandidateSum int64
	// RangeQueries is the number of approximate range queries issued.
	RangeQueries int64
}

// Run clusters ds with DBSCAN-LSH.
func Run(ds *vec.Dataset, p Params) (*cluster.Result, Stats, error) {
	var st Stats
	if ds == nil {
		return nil, st, dbscan.ErrNilDataset
	}
	if err := (dbscan.Params{Eps: p.Eps, MinPts: p.MinPts}).Validate(); err != nil {
		return nil, st, fmt.Errorf("lshdbscan: %w", err)
	}
	hp := p.Hash
	if hp.Tables == 0 {
		hp.Tables = 8
	}
	if hp.Funcs == 0 {
		hp.Funcs = 2
	}
	if hp.Width == 0 {
		hp.Width = p.Eps
		if hp.Width <= 0 {
			hp.Width = 1
		}
	}
	n := ds.Len()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = cluster.Unclassified
	}
	res := &cluster.Result{Labels: labels}
	if n == 0 {
		return res, st, nil
	}
	h, err := lsh.New(ds, hp)
	if err != nil {
		return nil, st, fmt.Errorf("lshdbscan: %w", err)
	}

	eps2 := p.Eps * p.Eps
	seen := make([]bool, n)
	var cand, hood []int32

	// query materializes the approximate ε-neighborhood of point id.
	query := func(id int32) []int32 {
		st.RangeQueries++
		cand = h.Candidates(ds.Point(int(id)), cand[:0], seen)
		st.CandidateSum += int64(len(cand))
		hood = ds.FilterWithinIDs(ds.Point(int(id)), eps2, cand, hood[:0])
		return hood
	}

	var cid int32 = -1
	var seeds []int32
	for i := 0; i < n; i++ {
		if labels[i] != cluster.Unclassified {
			continue
		}
		nb := query(int32(i))
		if len(nb) < p.MinPts {
			labels[i] = cluster.Noise
			continue
		}
		cid++
		labels[i] = cid
		seeds = seeds[:0]
		for _, j := range nb {
			if j == int32(i) {
				continue
			}
			if labels[j] == cluster.Unclassified || labels[j] == cluster.Noise {
				labels[j] = cid
				seeds = append(seeds, j)
			}
		}
		for len(seeds) > 0 {
			j := seeds[len(seeds)-1]
			seeds = seeds[:len(seeds)-1]
			nb := query(j)
			if len(nb) < p.MinPts {
				continue
			}
			for _, q := range nb {
				switch labels[q] {
				case cluster.Unclassified:
					labels[q] = cid
					seeds = append(seeds, q)
				case cluster.Noise:
					labels[q] = cid
				}
			}
		}
	}
	res.Clusters = int(cid) + 1
	return res, st, nil
}
