package dist

// Matrix is a flat row-major view of n points in Dim dimensions
// (len(Coords) == n*Dim). It is the zero-cost bridge between vec.Dataset and
// the batched kernels below: vec.Dataset.Matrix returns one without copying.
type Matrix struct {
	Coords []float64
	Dim    int
}

// Len returns the number of rows (points).
func (m Matrix) Len() int {
	if m.Dim <= 0 {
		return 0
	}
	return len(m.Coords) / m.Dim
}

// Row returns a read-only view of row i.
func (m Matrix) Row(i int) []float64 {
	base := i * m.Dim
	return m.Coords[base : base+m.Dim : base+m.Dim]
}

// blockSize is the row-block width used by the fused filter/count kernels
// for d >= 4: distances for a block are computed by one workhorse call into
// a stack buffer, then thresholded. The block amortizes the (non-inlinable)
// workhorse call without materializing a full distance slice.
const blockSize = 64

// sqDistsRange writes ‖row(lo+k) − q‖² into out[k] for k in [0, hi-lo). The
// unrolled body is written out inline (not delegated to sqDistGeneric) so
// the whole batch runs in one call frame with q's bounds check hoisted; the
// accumulation order per row is exactly SqDist's, keeping batched results
// bit-identical to per-pair calls.
func sqDistsRange(m Matrix, q []float64, lo, hi int, out []float64) {
	dim := m.Dim
	switch dim {
	case 2:
		for i := lo; i < hi; i++ {
			out[i-lo] = SqDist2(m.Row(i), q)
		}
		return
	case 3:
		for i := lo; i < hi; i++ {
			out[i-lo] = SqDist3(m.Row(i), q)
		}
		return
	}
	q = q[:dim]
	base := lo * dim
	for i := lo; i < hi; i++ {
		row := m.Coords[base : base+dim : base+dim]
		base += dim
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := row[j] - q[j]
			d1 := row[j+1] - q[j+1]
			d2 := row[j+2] - q[j+2]
			d3 := row[j+3] - q[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			dv := row[j] - q[j]
			s += dv * dv
		}
		out[i-lo] = s
	}
}

// sqDistsGather is sqDistsRange for an explicit id list: out[k] =
// ‖row(ids[k]) − q‖².
func sqDistsGather(m Matrix, q []float64, ids []int32, out []float64) {
	dim := m.Dim
	switch dim {
	case 2:
		for k, id := range ids {
			out[k] = SqDist2(m.Row(int(id)), q)
		}
		return
	case 3:
		for k, id := range ids {
			out[k] = SqDist3(m.Row(int(id)), q)
		}
		return
	}
	q = q[:dim]
	for k, id := range ids {
		base := int(id) * dim
		row := m.Coords[base : base+dim : base+dim]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := row[j] - q[j]
			d1 := row[j+1] - q[j+1]
			d2 := row[j+2] - q[j+2]
			d3 := row[j+3] - q[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			dv := row[j] - q[j]
			s += dv * dv
		}
		out[k] = s
	}
}

// SqDistsTo writes the squared distance from each of the selected rows to q
// into out: out[k] = ‖row(ids[k]) − q‖². out must have length >= len(ids).
// This is the batched one-to-many kernel behind SVDD kernel rows and the
// metrics layer.
func SqDistsTo(m Matrix, q []float64, ids []int32, out []float64) {
	sqDistsGather(m, q, ids, out)
}

// SqDistsToAll writes the squared distance from every row to q into out:
// out[i] = ‖row(i) − q‖². out must have length >= m.Len().
func SqDistsToAll(m Matrix, q []float64, out []float64) {
	sqDistsRange(m, q, 0, m.Len(), out)
}

// MinSqDistsToAll lowers cur[i] to ‖row(i) − q‖² wherever that distance is
// smaller: the fused update step of k-means++ seeding.
func MinSqDistsToAll(m Matrix, q []float64, cur []float64) {
	n := m.Len()
	var block [blockSize]float64
	for s := 0; s < n; s += blockSize {
		e := s + blockSize
		if e > n {
			e = n
		}
		sqDistsRange(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] < cur[s+k] {
				cur[s+k] = block[k]
			}
		}
	}
}

// FilterWithin appends to buf the ids (ascending) of all rows within squared
// distance eps2 of q and returns the extended slice. It is the fused
// distance-plus-radius-test kernel behind the linear-scan backends.
func FilterWithin(m Matrix, q []float64, eps2 float64, buf []int32) []int32 {
	return FilterWithinRange(m, q, eps2, 0, m.Len(), buf)
}

// FilterWithinRange is FilterWithin restricted to rows [lo, hi); appended
// ids are absolute row indices. It backs sharded parallel scans.
func FilterWithinRange(m Matrix, q []float64, eps2 float64, lo, hi int, buf []int32) []int32 {
	switch m.Dim {
	case 2:
		for i := lo; i < hi; i++ {
			if SqDist2(m.Row(i), q) <= eps2 {
				buf = append(buf, int32(i))
			}
		}
		return buf
	case 3:
		for i := lo; i < hi; i++ {
			if SqDist3(m.Row(i), q) <= eps2 {
				buf = append(buf, int32(i))
			}
		}
		return buf
	}
	var block [blockSize]float64
	for s := lo; s < hi; s += blockSize {
		e := s + blockSize
		if e > hi {
			e = hi
		}
		sqDistsRange(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				buf = append(buf, int32(s+k))
			}
		}
	}
	return buf
}

// FilterWithinIDs appends to buf the members of ids (in given order) whose
// rows lie within squared distance eps2 of q and returns the extended
// slice. It is the leaf-scan kernel of the tree-based backends.
func FilterWithinIDs(m Matrix, q []float64, eps2 float64, ids, buf []int32) []int32 {
	switch m.Dim {
	case 2:
		for _, id := range ids {
			if SqDist2(m.Row(int(id)), q) <= eps2 {
				buf = append(buf, id)
			}
		}
		return buf
	case 3:
		for _, id := range ids {
			if SqDist3(m.Row(int(id)), q) <= eps2 {
				buf = append(buf, id)
			}
		}
		return buf
	}
	var block [blockSize]float64
	for s := 0; s < len(ids); s += blockSize {
		e := s + blockSize
		if e > len(ids) {
			e = len(ids)
		}
		sqDistsGather(m, q, ids[s:e], block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				buf = append(buf, ids[s+k])
			}
		}
	}
	return buf
}

// CountWithin returns |{i : ‖row(i) − q‖² <= eps2}|. limit > 0 stops the
// scan as soon as the count reaches limit (the returned count never exceeds
// it); limit <= 0 counts exhaustively.
func CountWithin(m Matrix, q []float64, eps2 float64, limit int) int {
	return CountWithinRange(m, q, eps2, 0, m.Len(), limit)
}

// CountWithinRange is CountWithin restricted to rows [lo, hi).
func CountWithinRange(m Matrix, q []float64, eps2 float64, lo, hi, limit int) int {
	count := 0
	switch m.Dim {
	case 2:
		for i := lo; i < hi; i++ {
			if SqDist2(m.Row(i), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	case 3:
		for i := lo; i < hi; i++ {
			if SqDist3(m.Row(i), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	}
	var block [blockSize]float64
	for s := lo; s < hi; s += blockSize {
		e := s + blockSize
		if e > hi {
			e = hi
		}
		sqDistsRange(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
	}
	return count
}

// CountWithinIDs counts the members of ids whose rows lie within squared
// distance eps2 of q, with the same limit semantics as CountWithin.
func CountWithinIDs(m Matrix, q []float64, eps2 float64, ids []int32, limit int) int {
	count := 0
	switch m.Dim {
	case 2:
		for _, id := range ids {
			if SqDist2(m.Row(int(id)), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	case 3:
		for _, id := range ids {
			if SqDist3(m.Row(int(id)), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	}
	var block [blockSize]float64
	for s := 0; s < len(ids); s += blockSize {
		e := s + blockSize
		if e > len(ids) {
			e = len(ids)
		}
		sqDistsGather(m, q, ids[s:e], block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
	}
	return count
}

// NearestIDs scans the selected rows for the one strictly closer to q than
// bestD and returns its id and squared distance, or (-1, bestD) when none
// beats the bound. Ties keep the earliest candidate, matching the
// deterministic leaf scans of the tree backends.
func NearestIDs(m Matrix, q []float64, ids []int32, bestD float64) (int32, float64) {
	best := int32(-1)
	for _, id := range ids {
		if d2 := SqDist(m.Row(int(id)), q); d2 < bestD {
			best, bestD = id, d2
		}
	}
	return best, bestD
}

// Nearest returns the index of the row closest to q and its squared
// distance, scanning rows in ascending order with strict-improvement ties
// (the first minimum wins). It returns (-1, 0) for an empty matrix.
func Nearest(m Matrix, q []float64) (int, float64) {
	n := m.Len()
	if n == 0 {
		return -1, 0
	}
	best := 0
	bestD := SqDist(m.Row(0), q)
	for i := 1; i < n; i++ {
		if d2 := SqDist(m.Row(i), q); d2 < bestD {
			best, bestD = i, d2
		}
	}
	return best, bestD
}
