package dist

import (
	"math"
	"math/rand"
	"testing"
)

// naiveSqDist is the scalar reference loop every kernel is checked against:
// the exact code the repository used before this package existed.
func naiveSqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		dv := av - b[i]
		s += dv * dv
	}
	return s
}

// ulpTol returns an absolute tolerance of roughly a few ULPs around v,
// scaled with dimensionality to cover reassociated accumulation.
func ulpTol(v float64, d int) float64 {
	return 1e-12 * (math.Abs(v) + 1) * float64(d+1)
}

func randVec(rng *rand.Rand, d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = (rng.Float64() - 0.5) * 200
	}
	return v
}

func randMatrix(rng *rand.Rand, n, d int) Matrix {
	return Matrix{Coords: randVec(rng, n*d), Dim: d}
}

// TestSqDistAgainstNaive is the differential property test of the unrolled
// kernel and its small-dimension specializations: for random dims 1..64
// (covering empty tails, odd lengths, and the d=2/d=3 fast paths) SqDist
// must agree with the naive reference within ULP-scale tolerance.
func TestSqDistAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for d := 1; d <= 64; d++ {
		for trial := 0; trial < 20; trial++ {
			a := randVec(rng, d)
			b := randVec(rng, d)
			want := naiveSqDist(a, b)
			got := SqDist(a, b)
			if math.Abs(got-want) > ulpTol(want, d) {
				t.Fatalf("d=%d: SqDist = %v, naive = %v", d, got, want)
			}
			if d >= 2 {
				if got2 := SqDist2(a, b); math.Abs(got2-naiveSqDist(a[:2], b[:2])) > ulpTol(want, 2) {
					t.Fatalf("d=%d: SqDist2 diverges", d)
				}
			}
			if d >= 3 {
				if got3 := SqDist3(a, b); math.Abs(got3-naiveSqDist(a[:3], b[:3])) > ulpTol(want, 3) {
					t.Fatalf("d=%d: SqDist3 diverges", d)
				}
			}
		}
	}
	// Zero-dimension edge: both empty.
	if got := SqDist(nil, nil); got != 0 {
		t.Fatalf("SqDist(nil, nil) = %v, want 0", got)
	}
}

// TestBatchedKernelsAgainstNaive checks that every fused/batched kernel
// agrees with per-pair naive evaluation across random dims, id subsets, and
// radii.
func TestBatchedKernelsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 13, 32, 64} {
		n := 50 + rng.Intn(50)
		m := randMatrix(rng, n, d)
		q := randVec(rng, d)

		// Random id subset with duplicates allowed.
		ids := make([]int32, rng.Intn(n)+1)
		for k := range ids {
			ids[k] = int32(rng.Intn(n))
		}

		out := make([]float64, n)
		SqDistsToAll(m, q, out)
		for i := 0; i < n; i++ {
			want := naiveSqDist(m.Row(i), q)
			if math.Abs(out[i]-want) > ulpTol(want, d) {
				t.Fatalf("d=%d: SqDistsToAll[%d] = %v, naive = %v", d, i, out[i], want)
			}
			// Fused kernels must be bit-identical to SqDist, not merely close.
			if out[i] != SqDist(m.Row(i), q) {
				t.Fatalf("d=%d: SqDistsToAll[%d] not bit-identical to SqDist", d, i)
			}
		}

		outIDs := make([]float64, len(ids))
		SqDistsTo(m, q, ids, outIDs)
		for k, id := range ids {
			if outIDs[k] != SqDist(m.Row(int(id)), q) {
				t.Fatalf("d=%d: SqDistsTo[%d] not bit-identical to SqDist", d, k)
			}
		}

		// Pick eps2 near the median distance so both branches are exercised.
		eps2 := out[n/2]
		var wantFilter []int32
		for i := 0; i < n; i++ {
			if SqDist(m.Row(i), q) <= eps2 {
				wantFilter = append(wantFilter, int32(i))
			}
		}
		gotFilter := FilterWithin(m, q, eps2, nil)
		if !int32Equal(gotFilter, wantFilter) {
			t.Fatalf("d=%d: FilterWithin = %v, want %v", d, gotFilter, wantFilter)
		}
		if got := CountWithin(m, q, eps2, 0); got != len(wantFilter) {
			t.Fatalf("d=%d: CountWithin = %d, want %d", d, got, len(wantFilter))
		}
		if len(wantFilter) >= 2 {
			if got := CountWithin(m, q, eps2, 2); got != 2 {
				t.Fatalf("d=%d: CountWithin(limit=2) = %d, want 2", d, got)
			}
		}

		// Range variant over a random window.
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		var wantRange []int32
		for i := lo; i < hi; i++ {
			if SqDist(m.Row(i), q) <= eps2 {
				wantRange = append(wantRange, int32(i))
			}
		}
		if got := FilterWithinRange(m, q, eps2, lo, hi, nil); !int32Equal(got, wantRange) {
			t.Fatalf("d=%d: FilterWithinRange = %v, want %v", d, got, wantRange)
		}
		if got := CountWithinRange(m, q, eps2, lo, hi, 0); got != len(wantRange) {
			t.Fatalf("d=%d: CountWithinRange = %d, want %d", d, got, len(wantRange))
		}

		// IDs variants.
		var wantIDs []int32
		for _, id := range ids {
			if SqDist(m.Row(int(id)), q) <= eps2 {
				wantIDs = append(wantIDs, id)
			}
		}
		if got := FilterWithinIDs(m, q, eps2, ids, nil); !int32Equal(got, wantIDs) {
			t.Fatalf("d=%d: FilterWithinIDs = %v, want %v", d, got, wantIDs)
		}
		if got := CountWithinIDs(m, q, eps2, ids, 0); got != len(wantIDs) {
			t.Fatalf("d=%d: CountWithinIDs = %d, want %d", d, got, len(wantIDs))
		}

		// Empty inputs stay empty.
		if got := FilterWithinIDs(m, q, eps2, nil, nil); len(got) != 0 {
			t.Fatalf("d=%d: FilterWithinIDs(empty) = %v", d, got)
		}
		if got := CountWithinRange(m, q, eps2, 3, 3, 0); got != 0 {
			t.Fatalf("d=%d: CountWithinRange(empty) = %d", d, got)
		}
	}
}

// TestNormCachedAgainstNaive checks the ‖a‖²+‖q‖²−2a·q path against the
// naive loop within ULP-scale tolerance, including the non-negativity
// clamp.
func TestNormCachedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{1, 2, 3, 8, 16, 32, 64} {
		n := 40
		m := randMatrix(rng, n, d)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		norms := NormsIDs(m, ids)
		for i, id := range ids {
			if norms[i] != Norm2(m.Row(int(id))) {
				t.Fatalf("d=%d: NormsIDs[%d] mismatch", d, i)
			}
		}
		q := randVec(rng, d)
		out := make([]float64, n)
		SqDistsToCached(m, q, Norm2(q), ids, norms, out)
		for i := 0; i < n; i++ {
			want := naiveSqDist(m.Row(i), q)
			// The cancellation error of the norm identity scales with the
			// magnitude of the norms, not of the distance.
			tol := 1e-9 * (norms[i] + Norm2(q) + 1)
			if math.Abs(out[i]-want) > tol {
				t.Fatalf("d=%d: cached[%d] = %v, naive = %v (tol %v)", d, i, out[i], want, tol)
			}
			if out[i] < 0 {
				t.Fatalf("d=%d: cached[%d] negative: %v", d, i, out[i])
			}
		}
		// A row measured against itself must clamp to exactly 0 or stay tiny.
		self := m.Row(0)
		selfOut := make([]float64, 1)
		SqDistsToCached(m, self, Norm2(self), ids[:1], norms[:1], selfOut)
		if selfOut[0] < 0 {
			t.Fatalf("self distance negative: %v", selfOut[0])
		}
	}
}

// TestNearestKernels pins the tie-breaking contract: the earliest candidate
// at the minimum distance wins, and the bound in NearestIDs is strict.
func TestNearestKernels(t *testing.T) {
	m := Matrix{Coords: []float64{0, 0, 1, 0, 1, 0, 2, 2}, Dim: 2}
	q := []float64{1, 0}
	// Rows 1 and 2 are duplicates at distance 0; row 1 comes first.
	if best, d2 := Nearest(m, q); best != 1 || d2 != 0 {
		t.Fatalf("Nearest = (%d, %v), want (1, 0)", best, d2)
	}
	ids := []int32{3, 2, 1}
	if best, d2 := NearestIDs(m, q, ids, math.Inf(1)); best != 2 || d2 != 0 {
		t.Fatalf("NearestIDs = (%d, %v), want (2, 0)", best, d2)
	}
	// Strict bound: nothing strictly closer than 0.
	if best, _ := NearestIDs(m, q, ids, 0); best != -1 {
		t.Fatalf("NearestIDs with bound 0 found %d, want -1", best)
	}
	if best, _ := Nearest(Matrix{Dim: 2}, q); best != -1 {
		t.Fatalf("Nearest on empty matrix = %d, want -1", best)
	}
	MinSqDistsToAll(m, q, []float64{0.5, 5, 5, 0.5})
}

// TestMinSqDistsToAll checks the fused k-means++ update against per-row
// evaluation.
func TestMinSqDistsToAll(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 30, 5)
	q := randVec(rng, 5)
	cur := make([]float64, 30)
	want := make([]float64, 30)
	for i := range cur {
		cur[i] = rng.Float64() * 100
		want[i] = cur[i]
		if d2 := SqDist(m.Row(i), q); d2 < want[i] {
			want[i] = d2
		}
	}
	MinSqDistsToAll(m, q, cur)
	for i := range cur {
		if cur[i] != want[i] {
			t.Fatalf("MinSqDistsToAll[%d] = %v, want %v", i, cur[i], want[i])
		}
	}
}

// TestDotNormAgainstNaive covers the unrolled Dot and Norm2 kernels.
func TestDotNormAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for d := 0; d <= 64; d++ {
		a := randVec(rng, d)
		b := randVec(rng, d)
		var dot, n2 float64
		for i := range a {
			dot += a[i] * b[i]
			n2 += a[i] * a[i]
		}
		if got := Dot(a, b); math.Abs(got-dot) > ulpTol(dot, d) {
			t.Fatalf("d=%d: Dot = %v, naive = %v", d, got, dot)
		}
		if got := Norm2(a); math.Abs(got-n2) > ulpTol(n2, d) {
			t.Fatalf("d=%d: Norm2 = %v, naive = %v", d, got, n2)
		}
		if got := Norm(a); math.Abs(got-math.Sqrt(n2)) > ulpTol(math.Sqrt(n2), d) {
			t.Fatalf("d=%d: Norm = %v", d, got)
		}
		if got := Dist(a, b); d > 0 && math.Abs(got-math.Sqrt(naiveSqDist(a, b))) > ulpTol(got, d) {
			t.Fatalf("d=%d: Dist = %v", d, got)
		}
	}
}

func int32Equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
