//go:build amd64

package dist

// hasAVX32 gates the assembly fast paths of the float32 widening kernels.
// The AVX kernels perform the same float64 operations in the same
// per-accumulator order as the pure-Go loops, so this is purely a dispatch
// decision; correctness never depends on it.
var hasAVX32 = cpuHasAVX()

// cpuHasAVX reports CPUID AVX support with OS-enabled YMM state (XGETBV).
// Implemented in f32_amd64.s.
func cpuHasAVX() bool

// sqDistGroups32AVX returns the partial squared distance (s0+s1)+(s2+s3)
// over the first 4*groups coordinates of one float32 row, widening each
// coordinate to float64 exactly like sqDistGeneric32's unrolled loop.
// groups must be >= 1. Implemented in f32_amd64.s.
func sqDistGroups32AVX(a *float32, q *float64, groups int) float64

// sqDistsRows4x32AVX computes squared distances for quads blocks of four
// consecutive rows of width dim = 4*groups, writing 4*quads results to out.
// Four accumulator registers, one per row, keep each row's add order
// identical to the scalar kernel while hiding the FP-add latency.
// groups and quads must be >= 1. Implemented in f32_amd64.s.
func sqDistsRows4x32AVX(a *float32, q *float64, groups, quads int, out *float64)

// dotGroups32AVX returns the partial dot product (s0+s1)+(s2+s3) over the
// first 4*groups coordinates of one float32 row, widening each coordinate to
// float64 exactly like Dot32's unrolled loop. groups must be >= 1.
// Implemented in f32_amd64.s.
func dotGroups32AVX(a *float32, q *float64, groups int) float64

// dotsRows4x32AVX computes dot products with q for quads blocks of four
// consecutive rows of width dim = 4*groups, writing 4*quads results to out:
// the dot-product sibling of sqDistsRows4x32AVX, identical layout and
// combine order. groups and quads must be >= 1. Implemented in f32_amd64.s.
func dotsRows4x32AVX(a *float32, q *float64, groups, quads int, out *float64)
