package dist

// Batched dot-product kernels and the fused eps-filters built on the
// cached-norms identity ‖a−q‖² = ‖a‖² + ‖q‖² − 2·a·q.
//
// The dot kernels (DotsTo / DotsToAll / DotsToRange) follow the determinism
// contract: per row they perform exactly the same float64 operations in the
// same order as Dot, so batched projections are bit-identical to per-pair
// calls — that is what lets parallel projection passes shard rows across
// workers without changing a single bit of the result.
//
// The Cached filters at the bottom of this file do NOT follow that contract:
// the identity reassociates the arithmetic (see norms.go), so their accept
// sets can differ from FilterWithin at ULP scale near the eps boundary. They
// are opt-in kernels for approximate candidate pipelines (the sDBSCAN-style
// random-projection mode in internal/lsh) and for pruning passes that carry
// their own conservative slack; they must never back an exact range-query
// path. Like the rest of the cached-norms machinery they are float64-only —
// float32 storage is the large-magnitude regime where the identity's
// cancellation bites (see f32.go).

// dotsRange writes row(lo+k)·q into out[k] for k in [0, hi-lo). The unrolled
// body is written out inline (not delegated to Dot) so the whole batch runs
// in one call frame with q's bounds check hoisted; the accumulation order
// per row is exactly Dot's, keeping batched results bit-identical to
// per-pair calls.
func dotsRange(m Matrix, q []float64, lo, hi int, out []float64) {
	dim := m.Dim
	q = q[:dim]
	base := lo * dim
	for i := lo; i < hi; i++ {
		row := m.Coords[base : base+dim : base+dim]
		base += dim
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			s0 += row[j] * q[j]
			s1 += row[j+1] * q[j+1]
			s2 += row[j+2] * q[j+2]
			s3 += row[j+3] * q[j+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			s += row[j] * q[j]
		}
		out[i-lo] = s
	}
}

// dotsGather is dotsRange for an explicit id list: out[k] = row(ids[k])·q.
func dotsGather(m Matrix, q []float64, ids []int32, out []float64) {
	dim := m.Dim
	q = q[:dim]
	for k, id := range ids {
		base := int(id) * dim
		row := m.Coords[base : base+dim : base+dim]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			s0 += row[j] * q[j]
			s1 += row[j+1] * q[j+1]
			s2 += row[j+2] * q[j+2]
			s3 += row[j+3] * q[j+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			s += row[j] * q[j]
		}
		out[k] = s
	}
}

// DotsTo writes the dot product of each selected row with q into out:
// out[k] = row(ids[k])·q. out must have length >= len(ids).
func DotsTo(m Matrix, q []float64, ids []int32, out []float64) {
	dotsGather(m, q, ids, out)
}

// DotsToAll writes the dot product of every row with q into out:
// out[i] = row(i)·q. out must have length >= m.Len(). This is the dense
// matrix-vector product behind batch hashing: projecting a whole dataset
// onto one direction is a single call.
func DotsToAll(m Matrix, q []float64, out []float64) {
	dotsRange(m, q, 0, m.Len(), out)
}

// DotsToRange is DotsToAll restricted to rows [lo, hi), writing
// row(lo+k)·q into out[k]. It backs sharded parallel projection passes:
// workers own disjoint row ranges and disjoint out windows, and per-row
// bit-identity to Dot makes the shard count invisible in the result.
func DotsToRange(m Matrix, q []float64, lo, hi int, out []float64) {
	dotsRange(m, q, lo, hi, out)
}

// Norms returns ‖row(i)‖² for every row: the per-dataset cache consumed by
// the Cached kernels below and by SqDistsToCached-style callers that address
// rows directly rather than through an id list.
func Norms(m Matrix) []float64 {
	n := m.Len()
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Norm2(m.Row(i))
	}
	return out
}

// SqDistsToAllCached writes ‖row(i) − q‖² for every row into out using the
// cached-norms identity: one dot product per row instead of a
// subtract-square-accumulate. norms must satisfy norms[i] = ‖row(i)‖² and
// qNorm must equal Norm2(q). Negative results from cancellation are clamped
// to 0. Reassociated arithmetic — ULP-divergent from SqDistsToAll, see the
// file comment. out must have length >= m.Len().
func SqDistsToAllCached(m Matrix, q []float64, qNorm float64, norms, out []float64) {
	n := m.Len()
	var block [blockSize]float64
	for s := 0; s < n; s += blockSize {
		e := s + blockSize
		if e > n {
			e = n
		}
		dotsRange(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			d2 := norms[s+k] + qNorm - 2*block[k]
			if d2 < 0 {
				d2 = 0
			}
			out[s+k] = d2
		}
	}
}

// FilterWithinCached appends to buf the ids (ascending) of all rows within
// squared distance eps2 of q, evaluating distances through the cached-norms
// identity, and returns the extended slice. norms[i] = ‖row(i)‖², qNorm =
// Norm2(q). The accept set can differ from FilterWithin at ULP scale near
// the boundary — approximate pipelines only.
func FilterWithinCached(m Matrix, q []float64, qNorm float64, norms []float64, eps2 float64, buf []int32) []int32 {
	n := m.Len()
	var block [blockSize]float64
	for s := 0; s < n; s += blockSize {
		e := s + blockSize
		if e > n {
			e = n
		}
		dotsRange(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			d2 := norms[s+k] + qNorm - 2*block[k]
			if d2 <= eps2 {
				buf = append(buf, int32(s+k))
			}
		}
	}
	return buf
}

// FilterWithinCachedIDs is FilterWithinCached for an explicit candidate list:
// it appends the members of ids (in given order) whose rows pass the cached
// eps test. norms is indexed by row id (norms[id] = ‖row(id)‖²), unlike
// SqDistsToCached's parallel-slice convention, because candidate lists are
// arbitrary subsets of a dataset-wide cache.
func FilterWithinCachedIDs(m Matrix, q []float64, qNorm float64, norms []float64, eps2 float64, ids, buf []int32) []int32 {
	var block [blockSize]float64
	for s := 0; s < len(ids); s += blockSize {
		e := s + blockSize
		if e > len(ids) {
			e = len(ids)
		}
		dotsGather(m, q, ids[s:e], block[:e-s])
		for k := 0; k < e-s; k++ {
			id := ids[s+k]
			d2 := norms[id] + qNorm - 2*block[k]
			if d2 <= eps2 {
				buf = append(buf, id)
			}
		}
	}
	return buf
}

// CountWithinCached counts rows within squared distance eps2 of q through
// the cached-norms identity, with the same limit semantics as CountWithin
// (limit > 0 stops the scan at limit; limit <= 0 counts exhaustively).
func CountWithinCached(m Matrix, q []float64, qNorm float64, norms []float64, eps2 float64, limit int) int {
	n := m.Len()
	count := 0
	var block [blockSize]float64
	for s := 0; s < n; s += blockSize {
		e := s + blockSize
		if e > n {
			e = n
		}
		dotsRange(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			d2 := norms[s+k] + qNorm - 2*block[k]
			if d2 <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
	}
	return count
}
