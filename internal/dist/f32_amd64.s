// AVX fast paths for the float32 widening kernels. Each lane of a YMM
// accumulator corresponds to one of the scalar kernel's four partial sums
// (s0..s3): VCVTPS2PD widens four float32 coordinates, and VSUBPD, VMULPD,
// VADDPD perform the identical float64 subtract/square/accumulate. The final
// combine adds (s0+s1)+(s2+s3) in the scalar kernel's order, so results are
// bit-identical to the pure-Go loops — only the instruction count changes.

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	CPUID
	MOVL CX, BX
	ANDL $0x18000000, BX // OSXSAVE (bit 27) | AVX (bit 28)
	CMPL BX, $0x18000000
	JNE  noavx
	XORL CX, CX
	XGETBV
	ANDL $6, AX          // XMM and YMM state enabled by the OS
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func sqDistGroups32AVX(a *float32, q *float64, groups int) float64
TEXT ·sqDistGroups32AVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ q+8(FP), BX
	MOVQ groups+16(FP), CX
	VXORPD Y0, Y0, Y0
grouploop1:
	VCVTPS2PD (SI), Y1
	VMOVUPD (BX), Y2
	VSUBPD Y2, Y1, Y1
	VMULPD Y1, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $32, BX
	DECQ CX
	JNZ grouploop1
	// Combine lanes as (s0+s1)+(s2+s3).
	VEXTRACTF128 $1, Y0, X1 // X1 = [s2, s3]
	VPERMILPD $1, X0, X2    // X2.low = s1
	VADDSD X2, X0, X0       // X0.low = s0+s1
	VPERMILPD $1, X1, X3    // X3.low = s3
	VADDSD X3, X1, X1       // X1.low = s2+s3
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func dotGroups32AVX(a *float32, q *float64, groups int) float64
TEXT ·dotGroups32AVX(SB), NOSPLIT, $0-32
	MOVQ a+0(FP), SI
	MOVQ q+8(FP), BX
	MOVQ groups+16(FP), CX
	VXORPD Y0, Y0, Y0
dotgrouploop1:
	VCVTPS2PD (SI), Y1
	VMOVUPD (BX), Y2
	VMULPD Y2, Y1, Y1
	VADDPD Y1, Y0, Y0
	ADDQ $16, SI
	ADDQ $32, BX
	DECQ CX
	JNZ dotgrouploop1
	// Combine lanes as (s0+s1)+(s2+s3).
	VEXTRACTF128 $1, Y0, X1 // X1 = [s2, s3]
	VPERMILPD $1, X0, X2    // X2.low = s1
	VADDSD X2, X0, X0       // X0.low = s0+s1
	VPERMILPD $1, X1, X3    // X3.low = s3
	VADDSD X3, X1, X1       // X1.low = s2+s3
	VADDSD X1, X0, X0
	VZEROUPPER
	MOVSD X0, ret+24(FP)
	RET

// func sqDistsRows4x32AVX(a *float32, q *float64, groups, quads int, out *float64)
TEXT ·sqDistsRows4x32AVX(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ q+8(FP), DX
	MOVQ groups+16(FP), R8
	MOVQ quads+24(FP), R9
	MOVQ out+32(FP), DI
	MOVQ R8, R10
	SHLQ $4, R10             // row stride in bytes: groups*16 == dim*4
	LEAQ (R10)(R10*2), R11   // 3*stride
quadloop:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ DX, BX
	MOVQ R8, CX
grouploop4:
	VMOVUPD (BX), Y4
	VCVTPS2PD (SI), Y5
	VCVTPS2PD (SI)(R10*1), Y6
	VCVTPS2PD (SI)(R10*2), Y7
	VCVTPS2PD (SI)(R11*1), Y8
	VSUBPD Y4, Y5, Y5
	VSUBPD Y4, Y6, Y6
	VSUBPD Y4, Y7, Y7
	VSUBPD Y4, Y8, Y8
	VMULPD Y5, Y5, Y5
	VMULPD Y6, Y6, Y6
	VMULPD Y7, Y7, Y7
	VMULPD Y8, Y8, Y8
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3
	ADDQ $16, SI
	ADDQ $32, BX
	DECQ CX
	JNZ grouploop4
	ADDQ R11, SI             // SI sits at row 1 of this quad; skip rows 1..3
	// Combine and store each row's lanes as (s0+s1)+(s2+s3).
	VEXTRACTF128 $1, Y0, X5
	VPERMILPD $1, X0, X6
	VADDSD X6, X0, X0
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X0, X0
	MOVSD X0, (DI)
	VEXTRACTF128 $1, Y1, X5
	VPERMILPD $1, X1, X6
	VADDSD X6, X1, X1
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X1, X1
	MOVSD X1, 8(DI)
	VEXTRACTF128 $1, Y2, X5
	VPERMILPD $1, X2, X6
	VADDSD X6, X2, X2
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X2, X2
	MOVSD X2, 16(DI)
	VEXTRACTF128 $1, Y3, X5
	VPERMILPD $1, X3, X6
	VADDSD X6, X3, X3
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X3, X3
	MOVSD X3, 24(DI)
	ADDQ $32, DI
	DECQ R9
	JNZ quadloop
	VZEROUPPER
	RET

// func dotsRows4x32AVX(a *float32, q *float64, groups, quads int, out *float64)
TEXT ·dotsRows4x32AVX(SB), NOSPLIT, $0-40
	MOVQ a+0(FP), SI
	MOVQ q+8(FP), DX
	MOVQ groups+16(FP), R8
	MOVQ quads+24(FP), R9
	MOVQ out+32(FP), DI
	MOVQ R8, R10
	SHLQ $4, R10             // row stride in bytes: groups*16 == dim*4
	LEAQ (R10)(R10*2), R11   // 3*stride
dotquadloop:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	MOVQ DX, BX
	MOVQ R8, CX
dotgrouploop4:
	VMOVUPD (BX), Y4
	VCVTPS2PD (SI), Y5
	VCVTPS2PD (SI)(R10*1), Y6
	VCVTPS2PD (SI)(R10*2), Y7
	VCVTPS2PD (SI)(R11*1), Y8
	VMULPD Y4, Y5, Y5
	VMULPD Y4, Y6, Y6
	VMULPD Y4, Y7, Y7
	VMULPD Y4, Y8, Y8
	VADDPD Y5, Y0, Y0
	VADDPD Y6, Y1, Y1
	VADDPD Y7, Y2, Y2
	VADDPD Y8, Y3, Y3
	ADDQ $16, SI
	ADDQ $32, BX
	DECQ CX
	JNZ dotgrouploop4
	ADDQ R11, SI             // SI sits at row 1 of this quad; skip rows 1..3
	// Combine and store each row's lanes as (s0+s1)+(s2+s3).
	VEXTRACTF128 $1, Y0, X5
	VPERMILPD $1, X0, X6
	VADDSD X6, X0, X0
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X0, X0
	MOVSD X0, (DI)
	VEXTRACTF128 $1, Y1, X5
	VPERMILPD $1, X1, X6
	VADDSD X6, X1, X1
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X1, X1
	MOVSD X1, 8(DI)
	VEXTRACTF128 $1, Y2, X5
	VPERMILPD $1, X2, X6
	VADDSD X6, X2, X2
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X2, X2
	MOVSD X2, 16(DI)
	VEXTRACTF128 $1, Y3, X5
	VPERMILPD $1, X3, X6
	VADDSD X6, X3, X3
	VPERMILPD $1, X5, X6
	VADDSD X6, X5, X5
	VADDSD X5, X3, X3
	MOVSD X3, 24(DI)
	ADDQ $32, DI
	DECQ R9
	JNZ dotquadloop
	VZEROUPPER
	RET
