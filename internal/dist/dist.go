// Package dist is the shared distance-kernel layer: every squared-Euclidean
// distance computed anywhere in this repository bottoms out in one of the
// kernels defined here. Distance evaluations dominate DBSCAN-family cost, so
// the loops in this package are the hottest code in the system and are
// written accordingly: the generic path is 4-way unrolled to break the
// floating-point add dependency chain, the ubiquitous d=2 and d=3 cases have
// branch-free specializations, and the one-to-many kernels fuse the distance
// loop with the radius test so candidate filtering never materializes a
// distance slice.
//
// The package sits below internal/vec: it operates on raw coordinate slices
// and the flat row-major Matrix view, imports nothing, and is re-exported
// through vec.Dataset convenience methods for callers that hold a dataset.
//
// Determinism contract: for a given pair of vectors every kernel in this
// package (except the cached-norms path in norms.go) performs the exact same
// floating-point operations in the exact same order as SqDist, so fused and
// batched kernels are bit-identical to per-pair calls. Range-query backends
// rely on this to stay bit-identical to the linear-scan oracle.
package dist

import "math"

// SqDist returns the squared Euclidean distance ‖a−b‖² between two
// equal-length vectors. Small dimensions dispatch to the specialized
// kernels; the generic path is 4-way unrolled.
func SqDist(a, b []float64) float64 {
	switch len(a) {
	case 2:
		return SqDist2(a, b)
	case 3:
		return SqDist3(a, b)
	}
	return sqDistGeneric(a, b)
}

// SqDist2 is the d=2 specialization of SqDist (the dominant case for the
// paper's spatial workloads). Callers must pass slices of length >= 2.
func SqDist2(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	return d0*d0 + d1*d1
}

// SqDist3 is the d=3 specialization of SqDist. Callers must pass slices of
// length >= 3.
func SqDist3(a, b []float64) float64 {
	d0 := a[0] - b[0]
	d1 := a[1] - b[1]
	d2 := a[2] - b[2]
	return d0*d0 + d1*d1 + d2*d2
}

// sqDistGeneric is the unrolled kernel behind SqDist for d not covered by a
// specialization. Four independent accumulators give the out-of-order core
// four parallel dependency chains instead of one serial chain of adds.
func sqDistGeneric(a, b []float64) float64 {
	n := len(a)
	b = b[:n] // one bounds check, then the loop body is check-free
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		dv := a[i] - b[i]
		s += dv * dv
	}
	return s
}

// Dist returns the Euclidean distance ‖a−b‖ between two equal-length
// vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// Dot returns the inner product a·b of two equal-length vectors, 4-way
// unrolled like SqDist.
func Dot(a, b []float64) float64 {
	n := len(a)
	b = b[:n]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < n; i++ {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the squared Euclidean norm ‖v‖².
func Norm2(v []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(v); i++ {
		s += v[i] * v[i]
	}
	return s
}

// Norm returns the Euclidean norm ‖v‖.
func Norm(v []float64) float64 { return math.Sqrt(Norm2(v)) }
