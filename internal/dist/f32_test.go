package dist

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// randMatrix32 draws a float32 matrix plus its widened float64 twin — the
// pair every equivalence test below compares across.
func randMatrix32(rng *rand.Rand, n, d int) (Matrix32, Matrix) {
	c32 := make([]float32, n*d)
	c64 := make([]float64, n*d)
	for i := range c32 {
		c32[i] = float32((rng.Float64() - 0.5) * 200)
		c64[i] = float64(c32[i])
	}
	return Matrix32{Coords: c32, Dim: d}, Matrix{Coords: c64, Dim: d}
}

// TestF32KernelsBitIdenticalToWidened is the equivalence contract of this
// file's package comment: every *32 kernel applied to float32 storage must
// return bit-identical results to its f64 counterpart applied to the widened
// rows — same ops, same order, float64 accumulation throughout. This is what
// lets vec's F32 storage mode keep the repository's determinism guarantees.
func TestF32KernelsBitIdenticalToWidened(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 13, 32, 64} {
		n := 50 + rng.Intn(200) // spans multiple blockSize windows
		m32, m64 := randMatrix32(rng, n, d)
		q := randVec(rng, d)

		// Random id subset with duplicates allowed.
		ids := make([]int32, rng.Intn(n)+1)
		for k := range ids {
			ids[k] = int32(rng.Intn(n))
		}

		for i := 0; i < n; i++ {
			if SqDist32(m32.Row(i), q) != SqDist(m64.Row(i), q) {
				t.Fatalf("d=%d: SqDist32 row %d not bit-identical", d, i)
			}
		}

		all32 := make([]float64, n)
		all64 := make([]float64, n)
		SqDistsToAll32(m32, q, all32)
		SqDistsToAll(m64, q, all64)
		for i := range all32 {
			if all32[i] != all64[i] {
				t.Fatalf("d=%d: SqDistsToAll32[%d] = %v, widened = %v", d, i, all32[i], all64[i])
			}
		}

		to32 := make([]float64, len(ids))
		to64 := make([]float64, len(ids))
		SqDistsTo32(m32, q, ids, to32)
		SqDistsTo(m64, q, ids, to64)
		for k := range to32 {
			if to32[k] != to64[k] {
				t.Fatalf("d=%d: SqDistsTo32[%d] not bit-identical", d, k)
			}
		}

		// eps2 near the median so both filter branches fire.
		eps2 := all64[n/2]
		if got, want := FilterWithin32(m32, q, eps2, nil), FilterWithin(m64, q, eps2, nil); !int32Equal(got, want) {
			t.Fatalf("d=%d: FilterWithin32 = %v, want %v", d, got, want)
		}
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		if got, want := FilterWithinRange32(m32, q, eps2, lo, hi, nil), FilterWithinRange(m64, q, eps2, lo, hi, nil); !int32Equal(got, want) {
			t.Fatalf("d=%d: FilterWithinRange32 = %v, want %v", d, got, want)
		}
		if got, want := FilterWithinIDs32(m32, q, eps2, ids, nil), FilterWithinIDs(m64, q, eps2, ids, nil); !int32Equal(got, want) {
			t.Fatalf("d=%d: FilterWithinIDs32 = %v, want %v", d, got, want)
		}
		if got, want := CountWithin32(m32, q, eps2, 0), CountWithin(m64, q, eps2, 0); got != want {
			t.Fatalf("d=%d: CountWithin32 = %d, want %d", d, got, want)
		}
		if got, want := CountWithin32(m32, q, eps2, 2), CountWithin(m64, q, eps2, 2); got != want {
			t.Fatalf("d=%d: CountWithin32(limit) = %d, want %d", d, got, want)
		}
		if got, want := CountWithinRange32(m32, q, eps2, lo, hi, 0), CountWithinRange(m64, q, eps2, lo, hi, 0); got != want {
			t.Fatalf("d=%d: CountWithinRange32 = %d, want %d", d, got, want)
		}
		if got, want := CountWithinIDs32(m32, q, eps2, ids, 0), CountWithinIDs(m64, q, eps2, ids, 0); got != want {
			t.Fatalf("d=%d: CountWithinIDs32 = %d, want %d", d, got, want)
		}

		cur32 := make([]float64, n)
		cur64 := make([]float64, n)
		for i := range cur32 {
			cur32[i] = rng.Float64() * 100
			cur64[i] = cur32[i]
		}
		MinSqDistsToAll32(m32, q, cur32)
		MinSqDistsToAll(m64, q, cur64)
		for i := range cur32 {
			if cur32[i] != cur64[i] {
				t.Fatalf("d=%d: MinSqDistsToAll32[%d] not bit-identical", d, i)
			}
		}
	}
}

// quantBound returns an upper bound on |‖a32−q‖² − ‖a−q‖²| where a32 is the
// round-to-nearest float32 quantization of a: per coordinate the storage
// error is δj ≤ ε·|aj| (ε = 2⁻²⁴ relative rounding of float32), and the
// squared-distance perturbation telescopes to Σ δj·(2|aj−qj| + δj). A factor
// covers the f64 kernels' own reassociated accumulation.
func quantBound(a, q []float64) float64 {
	const eps32 = 1.0 / (1 << 24)
	var bound float64
	for j := range a {
		delta := eps32 * math.Abs(a[j])
		bound += delta * (2*math.Abs(a[j]-q[j]) + delta)
	}
	return 4*bound + 1e-12
}

// TestF32QuantizationErrorBound is the differential fuzz of float32 storage
// against the unquantized float64 source: quantizing arbitrary doubles once
// and evaluating with the *32 kernels must stay within the analytically
// derived bound of the exact f64 result for every kernel.
func TestF32QuantizationErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(40)
		n := 20 + rng.Intn(60)
		// Exact doubles (not float32-representable), varied magnitude.
		scale := math.Pow(10, float64(rng.Intn(7))-3)
		m64 := Matrix{Coords: make([]float64, n*d), Dim: d}
		m32 := Matrix32{Coords: make([]float32, n*d), Dim: d}
		for i := range m64.Coords {
			m64.Coords[i] = (rng.Float64() - 0.5) * scale
			m32.Coords[i] = float32(m64.Coords[i])
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = (rng.Float64() - 0.5) * scale
		}

		exact := make([]float64, n)
		quant := make([]float64, n)
		SqDistsToAll(m64, q, exact)
		SqDistsToAll32(m32, q, quant)
		for i := 0; i < n; i++ {
			if diff, bound := math.Abs(quant[i]-exact[i]), quantBound(m64.Row(i), q); diff > bound {
				t.Fatalf("trial %d: row %d quantization error %v exceeds bound %v", trial, i, diff, bound)
			}
			if s := SqDist32(m32.Row(i), q); s != quant[i] {
				t.Fatalf("trial %d: SqDist32 disagrees with fused kernel", trial)
			}
		}
	}
}

// FuzzSqDist32 drives the scalar kernel with fuzzer-chosen bytes: any pair
// of finite vectors must satisfy the derived quantization bound and the
// widened bit-identity simultaneously.
func FuzzSqDist32(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 16 {
			return
		}
		d := len(raw) / 16 // 8 bytes per coordinate, two vectors
		a := make([]float64, d)
		q := make([]float64, d)
		for j := 0; j < d; j++ {
			a[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
			q[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[(d+j)*8:]))
			// Clamp to the finite float32-safe range the vec layer enforces.
			if math.IsNaN(a[j]) || math.Abs(a[j]) > math.MaxFloat32/2 {
				a[j] = 0
			}
			if math.IsNaN(q[j]) || math.Abs(q[j]) > math.MaxFloat32/2 {
				q[j] = 0
			}
		}
		a32 := make([]float32, d)
		widened := make([]float64, d)
		for j := range a {
			a32[j] = float32(a[j])
			widened[j] = float64(a32[j])
		}
		got := SqDist32(a32, q)
		if want := SqDist(widened, q); got != want {
			t.Fatalf("SqDist32 = %v, widened SqDist = %v", got, want)
		}
		exact := SqDist(a, q)
		if bound := quantBound(a, q); !math.IsInf(exact, 0) && math.Abs(got-exact) > bound {
			t.Fatalf("quantization error %v exceeds bound %v", math.Abs(got-exact), bound)
		}
	})
}
