package dist

// Float32 twins of the dot-product kernels: coordinates stream as float32,
// every multiply and add runs in float64, and per row the operations match
// Dot on the widened row exactly — same equivalence contract as f32.go. On
// amd64 with AVX the bodies dispatch to assembly (dotGroups32AVX /
// dotsRows4x32AVX in f32_amd64.s) that maps one YMM accumulator lane to each
// scalar partial sum, so the speedup never costs a ULP.
//
// The Cached eps-filters of dots.go are deliberately not mirrored here: the
// cached-norms identity cancels catastrophically in exactly the
// large-magnitude regime float32 storage targets (see f32.go and norms.go).

// Dot32 returns a·q with a stored as float32 and all arithmetic in float64;
// bit-identical to Dot(widen(a), q).
func Dot32(a []float32, q []float64) float64 {
	n := len(a)
	q = q[:n]
	var s float64
	i := 0
	if hasAVX32 && n >= 4 {
		g := n >> 2
		s = dotGroups32AVX(&a[0], &q[0], g)
		i = g << 2
	} else {
		var s0, s1, s2, s3 float64
		for ; i+4 <= n; i += 4 {
			s0 += float64(a[i]) * q[i]
			s1 += float64(a[i+1]) * q[i+1]
			s2 += float64(a[i+2]) * q[i+2]
			s3 += float64(a[i+3]) * q[i+3]
		}
		s = (s0 + s1) + (s2 + s3)
	}
	for ; i < n; i++ {
		s += float64(a[i]) * q[i]
	}
	return s
}

// dotsRange32 mirrors dotsRange over float32 rows.
func dotsRange32(m Matrix32, q []float64, lo, hi int, out []float64) {
	dim := m.Dim
	q = q[:dim]
	if hasAVX32 && dim >= 4 {
		dotsRangeAVX32(m, q, lo, hi, out)
		return
	}
	base := lo * dim
	for i := lo; i < hi; i++ {
		row := m.Coords[base : base+dim : base+dim]
		base += dim
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			s0 += float64(row[j]) * q[j]
			s1 += float64(row[j+1]) * q[j+1]
			s2 += float64(row[j+2]) * q[j+2]
			s3 += float64(row[j+3]) * q[j+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			s += float64(row[j]) * q[j]
		}
		out[i-lo] = s
	}
}

// dotsRangeAVX32 is the assembly-dispatched body of dotsRange32: four-row
// blocks go through dotsRows4x32AVX, stragglers and dims that are not a
// multiple of four go through the single-row kernel plus a scalar tail —
// the same dispatch shape as sqDistsRangeAVX32.
func dotsRangeAVX32(m Matrix32, q []float64, lo, hi int, out []float64) {
	dim := m.Dim
	g := dim >> 2
	w := g << 2
	base := lo * dim
	i := lo
	if w == dim {
		if quads := (hi - lo) >> 2; quads > 0 {
			dotsRows4x32AVX(&m.Coords[base], &q[0], g, quads, &out[0])
			i += quads << 2
			base = i * dim
		}
	}
	for ; i < hi; i++ {
		row := m.Coords[base : base+dim : base+dim]
		base += dim
		s := dotGroups32AVX(&row[0], &q[0], g)
		for j := w; j < dim; j++ {
			s += float64(row[j]) * q[j]
		}
		out[i-lo] = s
	}
}

// dotsGather32 mirrors dotsGather over float32 rows.
func dotsGather32(m Matrix32, q []float64, ids []int32, out []float64) {
	dim := m.Dim
	q = q[:dim]
	if hasAVX32 && dim >= 4 {
		g := dim >> 2
		w := g << 2
		for k, id := range ids {
			base := int(id) * dim
			row := m.Coords[base : base+dim : base+dim]
			s := dotGroups32AVX(&row[0], &q[0], g)
			for j := w; j < dim; j++ {
				s += float64(row[j]) * q[j]
			}
			out[k] = s
		}
		return
	}
	for k, id := range ids {
		base := int(id) * dim
		row := m.Coords[base : base+dim : base+dim]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			s0 += float64(row[j]) * q[j]
			s1 += float64(row[j+1]) * q[j+1]
			s2 += float64(row[j+2]) * q[j+2]
			s3 += float64(row[j+3]) * q[j+3]
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			s += float64(row[j]) * q[j]
		}
		out[k] = s
	}
}

// DotsTo32 is DotsTo over float32 rows: out[k] = row(ids[k])·q.
func DotsTo32(m Matrix32, q []float64, ids []int32, out []float64) {
	dotsGather32(m, q, ids, out)
}

// DotsToAll32 is DotsToAll over float32 rows.
func DotsToAll32(m Matrix32, q []float64, out []float64) {
	dotsRange32(m, q, 0, m.Len(), out)
}

// DotsToRange32 is DotsToRange over float32 rows.
func DotsToRange32(m Matrix32, q []float64, lo, hi int, out []float64) {
	dotsRange32(m, q, lo, hi, out)
}
