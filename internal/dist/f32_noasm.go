//go:build !amd64

package dist

// hasAVX32 is false off amd64: the float32 kernels always take the
// pure-Go loops, which define the reference semantics.
const hasAVX32 = false

func sqDistGroups32AVX(a *float32, q *float64, groups int) float64 {
	panic("dist: sqDistGroups32AVX called without amd64 support")
}

func sqDistsRows4x32AVX(a *float32, q *float64, groups, quads int, out *float64) {
	panic("dist: sqDistsRows4x32AVX called without amd64 support")
}

func dotGroups32AVX(a *float32, q *float64, groups int) float64 {
	panic("dist: dotGroups32AVX called without amd64 support")
}

func dotsRows4x32AVX(a *float32, q *float64, groups, quads int, out *float64) {
	panic("dist: dotsRows4x32AVX called without amd64 support")
}
