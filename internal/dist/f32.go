package dist

// Float32 storage kernels: the mixed-precision half of the distance layer.
// Points are *stored* as float32 (halving the bytes every memory-bound scan
// streams) but every arithmetic step runs in float64: coordinates are widened
// on load, differences, squares and accumulations are all double precision.
//
// Equivalence contract: each kernel below performs, per row, exactly the same
// float64 operations in exactly the same order as its f64 counterpart applied
// to the widened row (float64(row[j]) for every coordinate). A dataset that
// keeps a float64 master equal to the widened mirror (vec's F32 storage mode
// does; quantization happens once, at dataset construction) therefore gets
// bit-identical results from either path — the f32 kernels are purely a
// bandwidth optimization, never an extra rounding step. That is what keeps
// the repository's determinism story (index backends vs the linear oracle,
// parallel vs serial fills) intact in float32 mode.
//
// The cached-norms identity of norms.go is deliberately NOT mirrored here:
// ‖a‖²+‖q‖²−2a·q cancels catastrophically when norms are large relative to
// the distance, and float32 storage is exactly the regime (large-magnitude
// embeddings) where that bites. Float32-mode callers must use the plain
// kernels; vec gates the norms path to float64 storage.

// Matrix32 is a flat row-major view of n points in Dim dimensions stored as
// float32 (len(Coords) == n*Dim): the float32 sibling of Matrix.
type Matrix32 struct {
	Coords []float32
	Dim    int
}

// Len returns the number of rows (points).
func (m Matrix32) Len() int {
	if m.Dim <= 0 {
		return 0
	}
	return len(m.Coords) / m.Dim
}

// Row returns a read-only view of row i.
func (m Matrix32) Row(i int) []float32 {
	base := i * m.Dim
	return m.Coords[base : base+m.Dim : base+m.Dim]
}

// SqDist32 returns ‖a−q‖² with a stored as float32 and all arithmetic in
// float64; bit-identical to SqDist(widen(a), q).
func SqDist32(a []float32, q []float64) float64 {
	switch len(a) {
	case 2:
		return sqDist232(a, q)
	case 3:
		return sqDist332(a, q)
	}
	return sqDistGeneric32(a, q)
}

// sqDist232 mirrors SqDist2 with float32 loads.
func sqDist232(a []float32, q []float64) float64 {
	d0 := float64(a[0]) - q[0]
	d1 := float64(a[1]) - q[1]
	return d0*d0 + d1*d1
}

// sqDist332 mirrors SqDist3 with float32 loads.
func sqDist332(a []float32, q []float64) float64 {
	d0 := float64(a[0]) - q[0]
	d1 := float64(a[1]) - q[1]
	d2 := float64(a[2]) - q[2]
	return d0*d0 + d1*d1 + d2*d2
}

// sqDistGeneric32 mirrors sqDistGeneric: same 4-way unroll, same
// accumulator-combine order, float32 loads widened per element. On amd64
// with AVX the unrolled body dispatches to assembly (one accumulator lane
// per scalar partial sum — bit-identical, see f32_amd64.s).
func sqDistGeneric32(a []float32, q []float64) float64 {
	n := len(a)
	q = q[:n]
	var s float64
	i := 0
	if hasAVX32 && n >= 4 {
		g := n >> 2
		s = sqDistGroups32AVX(&a[0], &q[0], g)
		i = g << 2
	} else {
		var s0, s1, s2, s3 float64
		for ; i+4 <= n; i += 4 {
			d0 := float64(a[i]) - q[i]
			d1 := float64(a[i+1]) - q[i+1]
			d2 := float64(a[i+2]) - q[i+2]
			d3 := float64(a[i+3]) - q[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		s = (s0 + s1) + (s2 + s3)
	}
	for ; i < n; i++ {
		dv := float64(a[i]) - q[i]
		s += dv * dv
	}
	return s
}

// sqDistsRange32 mirrors sqDistsRange over float32 rows.
func sqDistsRange32(m Matrix32, q []float64, lo, hi int, out []float64) {
	dim := m.Dim
	switch dim {
	case 2:
		for i := lo; i < hi; i++ {
			out[i-lo] = sqDist232(m.Row(i), q)
		}
		return
	case 3:
		for i := lo; i < hi; i++ {
			out[i-lo] = sqDist332(m.Row(i), q)
		}
		return
	}
	q = q[:dim]
	if hasAVX32 && dim >= 4 {
		sqDistsRangeAVX32(m, q, lo, hi, out)
		return
	}
	base := lo * dim
	for i := lo; i < hi; i++ {
		row := m.Coords[base : base+dim : base+dim]
		base += dim
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := float64(row[j]) - q[j]
			d1 := float64(row[j+1]) - q[j+1]
			d2 := float64(row[j+2]) - q[j+2]
			d3 := float64(row[j+3]) - q[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			dv := float64(row[j]) - q[j]
			s += dv * dv
		}
		out[i-lo] = s
	}
}

// sqDistsRangeAVX32 is the assembly-dispatched body of sqDistsRange32:
// four-row blocks go through sqDistsRows4x32AVX (independent accumulators
// hide the FP-add latency), stragglers and dims that are not a multiple of
// four go through the single-row kernel plus a scalar tail.
func sqDistsRangeAVX32(m Matrix32, q []float64, lo, hi int, out []float64) {
	dim := m.Dim
	g := dim >> 2
	w := g << 2
	base := lo * dim
	i := lo
	if w == dim {
		if quads := (hi - lo) >> 2; quads > 0 {
			sqDistsRows4x32AVX(&m.Coords[base], &q[0], g, quads, &out[0])
			i += quads << 2
			base = i * dim
		}
	}
	for ; i < hi; i++ {
		row := m.Coords[base : base+dim : base+dim]
		base += dim
		s := sqDistGroups32AVX(&row[0], &q[0], g)
		for j := w; j < dim; j++ {
			dv := float64(row[j]) - q[j]
			s += dv * dv
		}
		out[i-lo] = s
	}
}

// sqDistsGather32 mirrors sqDistsGather over float32 rows.
func sqDistsGather32(m Matrix32, q []float64, ids []int32, out []float64) {
	dim := m.Dim
	switch dim {
	case 2:
		for k, id := range ids {
			out[k] = sqDist232(m.Row(int(id)), q)
		}
		return
	case 3:
		for k, id := range ids {
			out[k] = sqDist332(m.Row(int(id)), q)
		}
		return
	}
	q = q[:dim]
	if hasAVX32 && dim >= 4 {
		g := dim >> 2
		w := g << 2
		for k, id := range ids {
			base := int(id) * dim
			row := m.Coords[base : base+dim : base+dim]
			s := sqDistGroups32AVX(&row[0], &q[0], g)
			for j := w; j < dim; j++ {
				dv := float64(row[j]) - q[j]
				s += dv * dv
			}
			out[k] = s
		}
		return
	}
	for k, id := range ids {
		base := int(id) * dim
		row := m.Coords[base : base+dim : base+dim]
		var s0, s1, s2, s3 float64
		j := 0
		for ; j+4 <= dim; j += 4 {
			d0 := float64(row[j]) - q[j]
			d1 := float64(row[j+1]) - q[j+1]
			d2 := float64(row[j+2]) - q[j+2]
			d3 := float64(row[j+3]) - q[j+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		s := (s0 + s1) + (s2 + s3)
		for ; j < dim; j++ {
			dv := float64(row[j]) - q[j]
			s += dv * dv
		}
		out[k] = s
	}
}

// SqDistsTo32 is SqDistsTo over float32 rows: out[k] = ‖row(ids[k]) − q‖².
func SqDistsTo32(m Matrix32, q []float64, ids []int32, out []float64) {
	sqDistsGather32(m, q, ids, out)
}

// SqDistsToAll32 is SqDistsToAll over float32 rows.
func SqDistsToAll32(m Matrix32, q []float64, out []float64) {
	sqDistsRange32(m, q, 0, m.Len(), out)
}

// MinSqDistsToAll32 is MinSqDistsToAll over float32 rows.
func MinSqDistsToAll32(m Matrix32, q []float64, cur []float64) {
	n := m.Len()
	var block [blockSize]float64
	for s := 0; s < n; s += blockSize {
		e := s + blockSize
		if e > n {
			e = n
		}
		sqDistsRange32(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] < cur[s+k] {
				cur[s+k] = block[k]
			}
		}
	}
}

// FilterWithin32 is FilterWithin over float32 rows.
func FilterWithin32(m Matrix32, q []float64, eps2 float64, buf []int32) []int32 {
	return FilterWithinRange32(m, q, eps2, 0, m.Len(), buf)
}

// FilterWithinRange32 is FilterWithinRange over float32 rows.
func FilterWithinRange32(m Matrix32, q []float64, eps2 float64, lo, hi int, buf []int32) []int32 {
	switch m.Dim {
	case 2:
		for i := lo; i < hi; i++ {
			if sqDist232(m.Row(i), q) <= eps2 {
				buf = append(buf, int32(i))
			}
		}
		return buf
	case 3:
		for i := lo; i < hi; i++ {
			if sqDist332(m.Row(i), q) <= eps2 {
				buf = append(buf, int32(i))
			}
		}
		return buf
	}
	var block [blockSize]float64
	for s := lo; s < hi; s += blockSize {
		e := s + blockSize
		if e > hi {
			e = hi
		}
		sqDistsRange32(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				buf = append(buf, int32(s+k))
			}
		}
	}
	return buf
}

// FilterWithinIDs32 is FilterWithinIDs over float32 rows.
func FilterWithinIDs32(m Matrix32, q []float64, eps2 float64, ids, buf []int32) []int32 {
	switch m.Dim {
	case 2:
		for _, id := range ids {
			if sqDist232(m.Row(int(id)), q) <= eps2 {
				buf = append(buf, id)
			}
		}
		return buf
	case 3:
		for _, id := range ids {
			if sqDist332(m.Row(int(id)), q) <= eps2 {
				buf = append(buf, id)
			}
		}
		return buf
	}
	var block [blockSize]float64
	for s := 0; s < len(ids); s += blockSize {
		e := s + blockSize
		if e > len(ids) {
			e = len(ids)
		}
		sqDistsGather32(m, q, ids[s:e], block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				buf = append(buf, ids[s+k])
			}
		}
	}
	return buf
}

// CountWithin32 is CountWithin over float32 rows.
func CountWithin32(m Matrix32, q []float64, eps2 float64, limit int) int {
	return CountWithinRange32(m, q, eps2, 0, m.Len(), limit)
}

// CountWithinRange32 is CountWithinRange over float32 rows.
func CountWithinRange32(m Matrix32, q []float64, eps2 float64, lo, hi, limit int) int {
	count := 0
	switch m.Dim {
	case 2:
		for i := lo; i < hi; i++ {
			if sqDist232(m.Row(i), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	case 3:
		for i := lo; i < hi; i++ {
			if sqDist332(m.Row(i), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	}
	var block [blockSize]float64
	for s := lo; s < hi; s += blockSize {
		e := s + blockSize
		if e > hi {
			e = hi
		}
		sqDistsRange32(m, q, s, e, block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
	}
	return count
}

// CountWithinIDs32 is CountWithinIDs over float32 rows.
func CountWithinIDs32(m Matrix32, q []float64, eps2 float64, ids []int32, limit int) int {
	count := 0
	switch m.Dim {
	case 2:
		for _, id := range ids {
			if sqDist232(m.Row(int(id)), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	case 3:
		for _, id := range ids {
			if sqDist332(m.Row(int(id)), q) <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
		return count
	}
	var block [blockSize]float64
	for s := 0; s < len(ids); s += blockSize {
		e := s + blockSize
		if e > len(ids) {
			e = len(ids)
		}
		sqDistsGather32(m, q, ids[s:e], block[:e-s])
		for k := 0; k < e-s; k++ {
			if block[k] <= eps2 {
				count++
				if limit > 0 && count >= limit {
					return count
				}
			}
		}
	}
	return count
}
