package dist

// Cached-norms path: ‖a−q‖² = ‖a‖² + ‖q‖² − 2·a·q. With per-row norms
// precomputed once per dataset, a one-to-many evaluation costs one dot
// product per row instead of a subtract-square-accumulate, which wins for
// wide rows where the dot product's fused loop dominates. The identity
// reassociates the arithmetic, so results differ from SqDist at ULP scale —
// the cached path therefore is opt-in and never used by the range-query
// backends, whose outputs must stay bit-identical to the linear oracle (see
// the package determinism contract). SVDD kernel rows, which feed the
// results through exp() and a tolerance-based solver, use it for wide
// dimensions.

// NormCachedMinDim is the row width from which the cached-norms path is
// worth using. Below it the plain kernel is both faster (no extra norm
// lookups, no clamping) and exact, so callers should gate on
// m.Dim >= NormCachedMinDim.
const NormCachedMinDim = 16

// NormsIDs returns ‖row(id)‖² for each selected row, the per-dataset cache
// consumed by SqDistsToCached.
func NormsIDs(m Matrix, ids []int32) []float64 {
	out := make([]float64, len(ids))
	for k, id := range ids {
		out[k] = Norm2(m.Row(int(id)))
	}
	return out
}

// SqDistsToCached writes ‖row(ids[k]) − q‖² into out[k] using the cached
// norms identity. norms must be parallel to ids (norms[k] = ‖row(ids[k])‖²)
// and qNorm must equal Norm2(q). Negative results from cancellation are
// clamped to 0 since a squared distance cannot be negative. out must have
// length >= len(ids).
func SqDistsToCached(m Matrix, q []float64, qNorm float64, ids []int32, norms, out []float64) {
	for k, id := range ids {
		d2 := norms[k] + qNorm - 2*Dot(m.Row(int(id)), q)
		if d2 < 0 {
			d2 = 0
		}
		out[k] = d2
	}
}
