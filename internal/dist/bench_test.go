package dist

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks compare the unrolled/fused kernels against the naive scalar
// loops the repository used before this package existed. Run with
//
//	go test -bench=. -benchtime=2s ./internal/dist
//
// and see internal/dist/README.md for recorded results.

var (
	sinkF float64
	sinkI int
	sinkS []int32
)

func benchMatrix(n, d int) (Matrix, []float64) {
	rng := rand.New(rand.NewSource(7))
	coords := make([]float64, n*d)
	for i := range coords {
		coords[i] = rng.Float64() * 100
	}
	q := make([]float64, d)
	for i := range q {
		q[i] = rng.Float64() * 100
	}
	return Matrix{Coords: coords, Dim: d}, q
}

var benchDims = []int{2, 8, 32, 128}

func BenchmarkSqDist(b *testing.B) {
	for _, d := range benchDims {
		m, q := benchMatrix(2, d)
		a := m.Row(0)
		b.Run(fmt.Sprintf("unrolled/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF += SqDist(a, q)
			}
		})
		b.Run(fmt.Sprintf("naive/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkF += naiveSqDist(a, q)
			}
		})
	}
}

// BenchmarkSqDistsToAll measures the one-to-many path: the acceptance
// criterion is >= 1.3x throughput over the naive loop for d >= 8.
func BenchmarkSqDistsToAll(b *testing.B) {
	const n = 1024
	for _, d := range benchDims {
		m, q := benchMatrix(n, d)
		out := make([]float64, n)
		b.Run(fmt.Sprintf("kernel/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			for i := 0; i < b.N; i++ {
				SqDistsToAll(m, q, out)
			}
		})
		b.Run(fmt.Sprintf("naive/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			for i := 0; i < b.N; i++ {
				for j := 0; j < n; j++ {
					out[j] = naiveSqDist(m.Row(j), q)
				}
			}
		})
	}
}

func BenchmarkFilterWithin(b *testing.B) {
	const n = 1024
	for _, d := range benchDims {
		m, q := benchMatrix(n, d)
		// Radius chosen so roughly half the points pass.
		dists := make([]float64, n)
		SqDistsToAll(m, q, dists)
		eps2 := dists[0]
		for _, v := range dists {
			eps2 += v
		}
		eps2 /= float64(n)
		b.Run(fmt.Sprintf("fused/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			var buf []int32
			for i := 0; i < b.N; i++ {
				buf = FilterWithin(m, q, eps2, buf[:0])
			}
			sinkS = buf
		})
		b.Run(fmt.Sprintf("naive/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			var buf []int32
			for i := 0; i < b.N; i++ {
				buf = buf[:0]
				for j := 0; j < n; j++ {
					if naiveSqDist(m.Row(j), q) <= eps2 {
						buf = append(buf, int32(j))
					}
				}
			}
			sinkS = buf
		})
	}
}

func BenchmarkCountWithin(b *testing.B) {
	const n = 1024
	for _, d := range benchDims {
		m, q := benchMatrix(n, d)
		dists := make([]float64, n)
		SqDistsToAll(m, q, dists)
		var eps2 float64
		for _, v := range dists {
			eps2 += v
		}
		eps2 /= float64(n)
		b.Run(fmt.Sprintf("fused/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sinkI += CountWithin(m, q, eps2, 0)
			}
		})
	}
}

// BenchmarkFilterWithinPrecision compares float64 and float32 storage on the
// large-n batch range scan that motivates the mixed-precision layer: n is far
// past any cache level, d is the embedding-style width. The f32 path streams
// half the bytes and (on amd64) runs the AVX widening kernel; results are
// bit-identical to the f64 scan over the widened master, so the entire delta
// is bandwidth plus instruction count. BENCH_index.json records the same
// shape via benchall.
func BenchmarkFilterWithinPrecision(b *testing.B) {
	const n, d = 100_000, 32
	m, q := benchMatrix(n, d)
	m32 := Matrix32{Coords: make([]float32, len(m.Coords)), Dim: d}
	for i, v := range m.Coords {
		m32.Coords[i] = float32(v)
		m.Coords[i] = float64(m32.Coords[i]) // widened master: both scans see identical points
	}
	dists := make([]float64, n)
	SqDistsToAll(m, q, dists)
	var eps2 float64
	for _, v := range dists {
		eps2 += v
	}
	eps2 /= float64(n)
	b.Run("f64", func(b *testing.B) {
		b.SetBytes(int64(n * d * 8))
		var buf []int32
		for i := 0; i < b.N; i++ {
			buf = FilterWithin(m, q, eps2, buf[:0])
		}
		sinkS = buf
	})
	b.Run("f32", func(b *testing.B) {
		b.SetBytes(int64(n * d * 4))
		var buf []int32
		for i := 0; i < b.N; i++ {
			buf = FilterWithin32(m32, q, eps2, buf[:0])
		}
		sinkS = buf
	})
}

// BenchmarkSqDistsToCached compares the cached-norms identity against the
// plain kernel on the id-subset path; the crossover motivating
// NormCachedMinDim is visible in the d sweep.
func BenchmarkSqDistsToCached(b *testing.B) {
	const n = 1024
	for _, d := range benchDims {
		m, q := benchMatrix(n, d)
		ids := make([]int32, n)
		for i := range ids {
			ids[i] = int32(i)
		}
		norms := NormsIDs(m, ids)
		qn := Norm2(q)
		out := make([]float64, n)
		b.Run(fmt.Sprintf("cached/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			for i := 0; i < b.N; i++ {
				SqDistsToCached(m, q, qn, ids, norms, out)
			}
		})
		b.Run(fmt.Sprintf("plain/d=%d", d), func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			for i := 0; i < b.N; i++ {
				SqDistsTo(m, q, ids, out)
			}
		})
	}
}
