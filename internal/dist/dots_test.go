package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestDotKernelsMatchDot pins the determinism contract for the batched dot
// kernels: DotsToAll / DotsTo / DotsToRange must be bit-identical to per-row
// Dot calls for every row, range and id list.
func TestDotKernelsMatchDot(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 13, 32, 64} {
		n := 50 + rng.Intn(200)
		m := Matrix{Coords: make([]float64, n*d), Dim: d}
		for i := range m.Coords {
			m.Coords[i] = (rng.Float64() - 0.5) * 200
		}
		q := randVec(rng, d)

		all := make([]float64, n)
		DotsToAll(m, q, all)
		for i := 0; i < n; i++ {
			if want := Dot(m.Row(i), q); all[i] != want {
				t.Fatalf("d=%d: DotsToAll[%d] = %v, Dot = %v", d, i, all[i], want)
			}
		}

		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		rng64 := make([]float64, hi-lo)
		DotsToRange(m, q, lo, hi, rng64)
		for k := range rng64 {
			if rng64[k] != all[lo+k] {
				t.Fatalf("d=%d: DotsToRange[%d] = %v, want %v", d, k, rng64[k], all[lo+k])
			}
		}

		ids := make([]int32, rng.Intn(n)+1)
		for k := range ids {
			ids[k] = int32(rng.Intn(n))
		}
		to := make([]float64, len(ids))
		DotsTo(m, q, ids, to)
		for k, id := range ids {
			if to[k] != all[id] {
				t.Fatalf("d=%d: DotsTo[%d] = %v, want %v", d, k, to[k], all[id])
			}
		}
	}
}

// TestDot32BitIdenticalToWidened extends the f32 equivalence contract to the
// dot kernels: on float32 storage whose float64 twin is the exact widening,
// Dot32 and the batched variants must match the f64 kernels bit for bit —
// including the AVX dispatch on amd64.
func TestDot32BitIdenticalToWidened(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 13, 32, 64} {
		n := 50 + rng.Intn(200)
		m32, m64 := randMatrix32(rng, n, d)
		q := randVec(rng, d)

		for i := 0; i < n; i++ {
			if Dot32(m32.Row(i), q) != Dot(m64.Row(i), q) {
				t.Fatalf("d=%d: Dot32 row %d not bit-identical", d, i)
			}
		}

		all32 := make([]float64, n)
		all64 := make([]float64, n)
		DotsToAll32(m32, q, all32)
		DotsToAll(m64, q, all64)
		for i := range all32 {
			if all32[i] != all64[i] {
				t.Fatalf("d=%d: DotsToAll32[%d] = %v, widened = %v", d, i, all32[i], all64[i])
			}
		}

		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo)
		r32 := make([]float64, hi-lo)
		r64 := make([]float64, hi-lo)
		DotsToRange32(m32, q, lo, hi, r32)
		DotsToRange(m64, q, lo, hi, r64)
		for k := range r32 {
			if r32[k] != r64[k] {
				t.Fatalf("d=%d: DotsToRange32[%d] not bit-identical", d, k)
			}
		}

		ids := make([]int32, rng.Intn(n)+1)
		for k := range ids {
			ids[k] = int32(rng.Intn(n))
		}
		to32 := make([]float64, len(ids))
		to64 := make([]float64, len(ids))
		DotsTo32(m32, q, ids, to32)
		DotsTo(m64, q, ids, to64)
		for k := range to32 {
			if to32[k] != to64[k] {
				t.Fatalf("d=%d: DotsTo32[%d] not bit-identical", d, k)
			}
		}
	}
}

// TestNorms pins the all-rows norm cache against per-row Norm2.
func TestNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	m := Matrix{Coords: make([]float64, 37*5), Dim: 5}
	for i := range m.Coords {
		m.Coords[i] = (rng.Float64() - 0.5) * 20
	}
	norms := Norms(m)
	if len(norms) != 37 {
		t.Fatalf("Norms length = %d, want 37", len(norms))
	}
	for i := range norms {
		if want := Norm2(m.Row(i)); norms[i] != want {
			t.Fatalf("Norms[%d] = %v, want %v", i, norms[i], want)
		}
	}
}

// TestCachedFiltersMatchIdentity pins the fused Cached kernels against a
// straight-line evaluation of the norms identity: same Dot per row, same
// norms[i] + qNorm − 2·dot combination, so the fused block machinery must be
// bit-identical to the reference loop (the approximation lives in the
// identity itself, not in the fusion).
func TestCachedFiltersMatchIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, d := range []int{4, 16, 33, 64} {
		n := 80 + rng.Intn(150)
		m := Matrix{Coords: make([]float64, n*d), Dim: d}
		for i := range m.Coords {
			m.Coords[i] = (rng.Float64() - 0.5) * 10
		}
		q := randVec(rng, d)
		qNorm := Norm2(q)
		norms := Norms(m)

		ref := make([]float64, n)
		for i := 0; i < n; i++ {
			d2 := norms[i] + qNorm - 2*Dot(m.Row(i), q)
			if d2 < 0 {
				d2 = 0
			}
			ref[i] = d2
		}

		got := make([]float64, n)
		SqDistsToAllCached(m, q, qNorm, norms, got)
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("d=%d: SqDistsToAllCached[%d] = %v, reference = %v", d, i, got[i], ref[i])
			}
		}

		eps2 := ref[n/2]
		var want []int32
		for i := 0; i < n; i++ {
			if ref[i] <= eps2 {
				want = append(want, int32(i))
			}
		}
		if got := FilterWithinCached(m, q, qNorm, norms, eps2, nil); !int32Equal(got, want) {
			t.Fatalf("d=%d: FilterWithinCached = %v, want %v", d, got, want)
		}
		if got := CountWithinCached(m, q, qNorm, norms, eps2, 0); got != len(want) {
			t.Fatalf("d=%d: CountWithinCached = %d, want %d", d, got, len(want))
		}
		if got := CountWithinCached(m, q, qNorm, norms, eps2, 2); len(want) >= 2 && got != 2 {
			t.Fatalf("d=%d: CountWithinCached(limit=2) = %d, want 2", d, got)
		}

		ids := make([]int32, rng.Intn(n)+1)
		for k := range ids {
			ids[k] = int32(rng.Intn(n))
		}
		var wantIDs []int32
		for _, id := range ids {
			if ref[id] <= eps2 {
				wantIDs = append(wantIDs, id)
			}
		}
		if got := FilterWithinCachedIDs(m, q, qNorm, norms, eps2, ids, nil); !int32Equal(got, wantIDs) {
			t.Fatalf("d=%d: FilterWithinCachedIDs = %v, want %v", d, got, wantIDs)
		}
	}
}

// cachedIdentityBound bounds |cached − exact| for the norms identity on one
// row: norms, qNorm and the dot each accumulate O(d) roundings of relative
// size u = 2⁻⁵³, and the final combination cancels absolutely, so the error
// scales with the magnitudes going in, not with the distance coming out:
// (d+4)·u·(‖a‖² + ‖q‖² + 2|a·q|), widened by 4x for slack.
func cachedIdentityBound(na, nq, dot float64, d int) float64 {
	const u = 1.0 / (1 << 26) / (1 << 27) // 2⁻⁵³
	return 4*float64(d+4)*u*(na+nq+2*math.Abs(dot)) + 1e-300
}

// TestCachedIdentityErrorBound is the differential check of the cached path
// against the exact kernels: the ULP-scale divergence the docs promise must
// stay within the analytically derived cancellation bound.
func TestCachedIdentityErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(80)
		n := 10 + rng.Intn(50)
		scale := math.Pow(10, float64(rng.Intn(7))-3)
		m := Matrix{Coords: make([]float64, n*d), Dim: d}
		for i := range m.Coords {
			m.Coords[i] = (rng.Float64() - 0.5) * scale
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = (rng.Float64() - 0.5) * scale
		}
		qNorm := Norm2(q)
		norms := Norms(m)

		exact := make([]float64, n)
		cached := make([]float64, n)
		SqDistsToAll(m, q, exact)
		SqDistsToAllCached(m, q, qNorm, norms, cached)
		for i := 0; i < n; i++ {
			bound := cachedIdentityBound(norms[i], qNorm, Dot(m.Row(i), q), d)
			if diff := math.Abs(cached[i] - exact[i]); diff > bound {
				t.Fatalf("trial %d row %d: cached error %v exceeds bound %v", trial, i, diff, bound)
			}
		}
	}
}

// dotQuantBound bounds |a32·q − a·q| where a32 quantizes a to float32: per
// coordinate the storage error is δj ≤ 2⁻²⁴·|aj| and perturbs the product by
// δj·|qj|; the factor covers the kernels' own accumulation roundings.
func dotQuantBound(a, q []float64) float64 {
	const eps32 = 1.0 / (1 << 24)
	var bound float64
	for j := range a {
		bound += eps32 * math.Abs(a[j]) * math.Abs(q[j])
	}
	return 4*bound + 1e-12
}

// FuzzDotKernels drives the dot kernels with fuzzer-chosen bytes: for any
// pair of finite vectors, Dot32 must be bit-identical to Dot on the widened
// row, the batched kernels must agree with the scalar ones, and the
// quantized result must stay within the derived bound of the exact dot.
func FuzzDotKernels(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 16 {
			return
		}
		d := len(raw) / 16 // 8 bytes per coordinate, two vectors
		a := make([]float64, d)
		q := make([]float64, d)
		for j := 0; j < d; j++ {
			a[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[j*8:]))
			q[j] = math.Float64frombits(binary.LittleEndian.Uint64(raw[(d+j)*8:]))
			// Clamp to the finite float32-safe range the vec layer enforces.
			if math.IsNaN(a[j]) || math.Abs(a[j]) > math.MaxFloat32/2 {
				a[j] = 0
			}
			if math.IsNaN(q[j]) || math.Abs(q[j]) > math.MaxFloat32/2 {
				q[j] = 0
			}
		}
		a32 := make([]float32, d)
		widened := make([]float64, d)
		for j := range a {
			a32[j] = float32(a[j])
			widened[j] = float64(a32[j])
		}
		got := Dot32(a32, q)
		if want := Dot(widened, q); got != want {
			t.Fatalf("Dot32 = %v, widened Dot = %v", got, want)
		}
		var one [1]float64
		DotsToAll32(Matrix32{Coords: a32, Dim: d}, q, one[:])
		if one[0] != got {
			t.Fatalf("DotsToAll32 = %v, Dot32 = %v", one[0], got)
		}
		DotsToAll(Matrix{Coords: widened, Dim: d}, q, one[:])
		if one[0] != got {
			t.Fatalf("DotsToAll = %v, widened Dot = %v", one[0], got)
		}
		exact := Dot(a, q)
		if bound := dotQuantBound(a, q); !math.IsInf(exact, 0) && math.Abs(got-exact) > bound {
			t.Fatalf("quantization error %v exceeds bound %v", math.Abs(got-exact), bound)
		}
	})
}

// BenchmarkDotsToAll measures the dense projection pass at both storage
// precisions — the numbers behind the dot-kernel table in README.md.
func BenchmarkDotsToAll(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	const n = 1024
	for _, d := range []int{8, 32, 128, 256} {
		m32, m64 := randMatrix32(rng, n, d)
		q := randVec(rng, d)
		out := make([]float64, n)
		b.Run(fmt.Sprintf("f64/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DotsToAll(m64, q, out)
			}
		})
		b.Run(fmt.Sprintf("f32/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DotsToAll32(m32, q, out)
			}
		})
		b.Run(fmt.Sprintf("naive/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for r := 0; r < n; r++ {
					out[r] = Dot(m64.Row(r), q)
				}
			}
		})
	}
}

// BenchmarkFilterWithinCached compares the fused cached-identity filter with
// the exact fused filter at projection-friendly widths.
func BenchmarkFilterWithinCached(b *testing.B) {
	rng := rand.New(rand.NewSource(32))
	const n = 1024
	for _, d := range []int{16, 32, 128, 256} {
		m := Matrix{Coords: make([]float64, n*d), Dim: d}
		for i := range m.Coords {
			m.Coords[i] = (rng.Float64() - 0.5) * 2
		}
		q := randVec(rng, d)
		qNorm := Norm2(q)
		norms := Norms(m)
		all := make([]float64, n)
		SqDistsToAll(m, q, all)
		eps2 := all[n/2] // ~half the rows pass
		buf := make([]int32, 0, n)
		b.Run(fmt.Sprintf("cached/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf = FilterWithinCached(m, q, qNorm, norms, eps2, buf[:0])
			}
		})
		b.Run(fmt.Sprintf("exact/d=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				buf = FilterWithin(m, q, eps2, buf[:0])
			}
		})
	}
}
