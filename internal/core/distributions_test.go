package core

import (
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/data"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/eval"
	"dbsvec/internal/index/kdtree"
)

// TestTenDistributions reproduces the paper's Section III-C robustness
// claim: across ten qualitatively different data distributions, DBSVEC's
// result stays very close to DBSCAN's (the split conditions of Section
// III-C are rarely met), and the noise guarantee holds exactly on each.
func TestTenDistributions(t *testing.T) {
	const n = 800
	for _, dist := range data.Distributions() {
		dist := dist
		t.Run(dist.Name, func(t *testing.T) {
			ds := dist.Gen(n, 1)
			p := dbscan.Params{Eps: dist.Eps, MinPts: dist.MinPts}
			truth, _, err := dbscan.Run(ds, p, kdtree.Build)
			if err != nil {
				t.Fatal(err)
			}
			got, st, err := Run(ds, Options{Eps: dist.Eps, MinPts: dist.MinPts, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			rec, err := eval.PairRecall(truth, got)
			if err != nil {
				t.Fatal(err)
			}
			if rec < 0.95 {
				t.Errorf("recall %.4f below 0.95 (truth %d clusters, dbsvec %d)", rec, truth.Clusters, got.Clusters)
			}
			// Theorem 3 must hold exactly regardless of distribution.
			for i := range got.Labels {
				if (got.Labels[i] == cluster.Noise) != (truth.Labels[i] == cluster.Noise) {
					t.Fatalf("noise mismatch at point %d", i)
				}
			}
			t.Logf("recall=%.4f clusters=%d/%d rq=%d", rec, got.Clusters, truth.Clusters, st.RangeQueries)
		})
	}
}
