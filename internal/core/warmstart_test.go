package core

import (
	"testing"

	"dbsvec/internal/eval"
)

// TestWarmStartClusteringEquivalent pins the acceptance bound for the
// warm-started SVDD rounds: warm starting follows a different SMO iterate
// path, so individual multipliers may differ within solver tolerance, but
// the resulting clusterings must stay equivalent — ARI against the
// cold-start run within ε of 1 on the synthetic suite shapes.
func TestWarmStartClusteringEquivalent(t *testing.T) {
	const epsARI = 0.01
	for _, spec := range []struct {
		n, d int
		seed int64
	}{
		{900, 2, 7},
		{600, 8, 11},
		{2000, 2, 13},
	} {
		ds := detBlobs(spec.n, spec.d, spec.seed)
		cold, _, err := Run(ds, Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1, DisableWarmStart: true})
		if err != nil {
			t.Fatalf("n=%d d=%d cold: %v", spec.n, spec.d, err)
		}
		warm, _, err := Run(ds, Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1})
		if err != nil {
			t.Fatalf("n=%d d=%d warm: %v", spec.n, spec.d, err)
		}
		ari, err := eval.AdjustedRandIndex(cold, warm)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 1-epsARI {
			t.Errorf("n=%d d=%d: warm-vs-cold ARI = %v, want >= %v", spec.n, spec.d, ari, 1-epsARI)
		}
	}
}
