//go:build faultinject

package core

import (
	"errors"
	"fmt"
	"testing"

	"dbsvec/internal/fault"
)

// TestFaultInjectionSweep drives every injection point through several
// firing modes and asserts the blanket robustness contract: DBSVEC never
// crashes — each run ends in a valid clustering, a valid partial clustering
// with a *BudgetExceededError, or a typed error. Runs only under the
// faultinject build tag (the dedicated CI job).
func TestFaultInjectionSweep(t *testing.T) {
	if !fault.TagEnabled {
		t.Fatal("faultinject tag test compiled without the tag")
	}
	ds := threeBlobs(42)
	modes := []struct {
		name string
		mode fault.Mode
	}{
		{"always", fault.Always()},
		{"first", fault.Nth(1)},
		{"third", fault.Nth(3)},
		{"prob25", fault.Prob(0.25)},
	}
	for _, p := range fault.Points() {
		for _, m := range modes {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/%s/w%d", p, m.name, workers)
				t.Run(name, func(t *testing.T) {
					restore := fault.Activate(fault.NewInjector(7).Arm(p, m.mode))
					defer restore()
					res, st, err := Run(ds, Options{Eps: 3, MinPts: 10, Workers: workers, Seed: 7})
					switch {
					case err == nil:
						if res == nil {
							t.Fatal("nil result with nil error")
						}
						checkLabels(t, res)
					default:
						var be *BudgetExceededError
						var wp *fault.WorkerPanicError
						switch {
						case errors.As(err, &be):
							if res == nil {
								t.Fatal("budget error must come with a partial result")
							}
							checkLabels(t, res)
						case errors.As(err, &wp), errors.Is(err, fault.ErrInjected):
							if res != nil {
								t.Error("hard failure must not return a result")
							}
						default:
							t.Fatalf("untyped error escaped: %v", err)
						}
					}
					_ = st
				})
			}
		}
	}
}
