package core

import "dbsvec/internal/svdd"

// RetainedModel records one SVDD training event of a retained run. A
// sub-cluster that trained over several expansion rounds contributes one
// entry per round, so the retained set covers the full lifetime of each
// boundary — the final round's support vectors sit only on the final
// frontier, while earlier rounds cover the interior the frontier moved
// through. Entries are appended in training order, which is deterministic
// for a fixed seed and independent of the worker count.
type RetainedModel struct {
	// Cluster is the final compacted cluster id (an index into the result's
	// dense label space) the sub-cluster resolved to after merging.
	Cluster int32
	// Degraded marks a training round that failed recoverably and pushed
	// the sub-cluster onto the exact range-query fallback.
	Degraded bool
	// Snap is the model snapshot. It is nil only on degraded entries whose
	// solve produced no usable model (degenerate kernel width, empty
	// target); non-convergence and all-SV blowups still carry their
	// best-effort model.
	Snap *svdd.Snapshot
}

// retainModel snapshots a training round's model under the raw seed cluster
// id. finalizeRetained remaps the ids once merging has settled. Models whose
// multipliers all collapsed below the support-vector threshold retain no
// snapshot (nothing to evaluate against).
func (r *runner) retainModel(cid int32, m *svdd.Model, degraded bool) {
	if !r.retain {
		return
	}
	var snap *svdd.Snapshot
	if m != nil {
		if s := m.Snapshot(); s.SVCount() > 0 {
			snap = s
		}
	}
	if snap == nil && !degraded {
		return
	}
	r.retained = append(r.retained, RetainedModel{Cluster: cid, Degraded: degraded, Snap: snap})
}

// finalizeRetained rewrites the raw seed cluster ids of the retained entries
// into the final dense label space by replaying Compact's first-appearance
// remap over the canonicalized labels (which must already hold union-find
// roots). Entries whose cluster labels no point — every member re-absorbed
// by a merge that left the root unreferenced, or a tripped budget — are
// dropped: they have no final id to carry.
func (r *runner) finalizeRetained(labels []int32) []RetainedModel {
	if !r.retain {
		return nil
	}
	remap := make(map[int32]int32)
	next := int32(0)
	for _, l := range labels {
		if l < 0 {
			continue
		}
		if _, ok := remap[l]; !ok {
			remap[l] = next
			next++
		}
	}
	out := r.retained[:0]
	for _, e := range r.retained {
		final, ok := remap[r.clusterSet.Find(e.Cluster)]
		if !ok {
			continue
		}
		e.Cluster = final
		out = append(out, e)
	}
	return out
}

// priorAlphas flattens a snapshot set into a point-id → multiplier map for
// round-one warm restarts. When several snapshots carry the same point (a
// support vector that sat on a shared frontier), the largest multiplier wins;
// iterating the snapshots in slice order makes the tie-break deterministic.
func priorAlphas(snaps []*svdd.Snapshot) map[int32]float64 {
	prior := make(map[int32]float64)
	for _, s := range snaps {
		if s == nil {
			continue
		}
		for i, id := range s.IDs {
			if a := s.Alpha[i]; a > prior[id] {
				prior[id] = a
			}
		}
	}
	if len(prior) == 0 {
		return nil
	}
	return prior
}

// warmFromPrior maps the prior multipliers onto the target ids. Like
// warmAlphas it returns nil when the target shares no point with the prior
// set — a cold start is the better seed for genuinely new data.
func warmFromPrior(ids []int32, prior map[int32]float64) []float64 {
	warm := make([]float64, len(ids))
	any := false
	for i, id := range ids {
		if a, ok := prior[id]; ok {
			warm[i] = a
			any = true
		}
	}
	if !any {
		return nil
	}
	return warm
}
