package core

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"dbsvec/internal/engine"
	"dbsvec/internal/index"
	"dbsvec/internal/vec"
)

func detBlobs(n, d int, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{make([]float64, d), make([]float64, d), make([]float64, d)}
	for c := range centers {
		for j := range centers[c] {
			centers[c][j] = float64(c*40) + rng.Float64()*5
		}
	}
	coords := make([]float64, 0, n*d)
	for i := 0; i < n; i++ {
		c := centers[i%len(centers)]
		for j := 0; j < d; j++ {
			coords = append(coords, c[j]+rng.NormFloat64()*2)
		}
	}
	// A few far-out noise points.
	for i := 0; i < n/50+1; i++ {
		for j := 0; j < d; j++ {
			coords = append(coords, 200+rng.Float64()*100)
		}
	}
	ds, _ := vec.NewDataset(coords, d)
	return ds
}

// TestWorkersDeterminism is the engine's central guarantee: the same
// dataset and seed produce identical Labels, Clusters and θ-term Stats for
// every worker count, because each round's query batch is merged in
// query-index order.
func TestWorkersDeterminism(t *testing.T) {
	datasets := []*vec.Dataset{
		detBlobs(900, 2, 7),
		detBlobs(600, 8, 11),
	}
	for di, ds := range datasets {
		base, baseStats, err := Run(ds, Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1})
		if err != nil {
			t.Fatalf("dataset %d workers=1: %v", di, err)
		}
		for _, workers := range []int{2, 8} {
			res, st, err := Run(ds, Options{Eps: 6, MinPts: 8, Seed: 3, Workers: workers})
			if err != nil {
				t.Fatalf("dataset %d workers=%d: %v", di, workers, err)
			}
			if !reflect.DeepEqual(res.Labels, base.Labels) {
				t.Errorf("dataset %d: Labels differ between workers=1 and workers=%d", di, workers)
			}
			if res.Clusters != base.Clusters {
				t.Errorf("dataset %d: Clusters = %d (workers=%d), want %d", di, res.Clusters, workers, base.Clusters)
			}
			// Compare the deterministic counters; wall-clock phases and
			// SVDD stage times vary.
			a, b := baseStats, st
			a.Phases, b.Phases = engine.PhaseTimes{}, engine.PhaseTimes{}
			a.SVDD, b.SVDD = engine.SVDDTimes{}, engine.SVDDTimes{}
			a.IndexBuild, b.IndexBuild = 0, 0
			if a != b {
				t.Errorf("dataset %d: θ-term stats differ between workers=1 (%+v) and workers=%d (%+v)", di, a, workers, b)
			}
		}
	}
}

// cancellingBuilder wraps the linear index so the context is cancelled
// after a fixed number of range queries — landing mid-expansion, well past
// the first seed's query.
type cancellingIndex struct {
	index.Index
	cancel context.CancelFunc
	after  int64
	seen   atomic.Int64
}

func (c *cancellingIndex) RangeQuery(q []float64, eps float64, buf []int32) []int32 {
	if c.seen.Add(1) == c.after {
		c.cancel()
	}
	return c.Index.RangeQuery(q, eps, buf)
}

// TestCancellationMidExpansion verifies that ClusterContext-style
// cancellation is honored *inside* support-vector expansion rounds: the
// cancel fires during an expansion batch (after the seed query but long
// before the sweep completes) and Run must return the context's error.
func TestCancellationMidExpansion(t *testing.T) {
	ds := detBlobs(2000, 2, 13)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ci *cancellingIndex
	build := func(d *vec.Dataset) index.Index {
		ci = &cancellingIndex{Index: index.NewLinear(d), cancel: cancel, after: 4}
		return ci
	}
	_, _, err := Run(ds, Options{Eps: 6, MinPts: 8, Seed: 1, Context: ctx, IndexBuilder: build, Workers: 4})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The run must have stopped promptly: the first seed triggers an
	// expansion with many rounds of queries; cancellation after query 4
	// must prevent the sweep from anywhere near finishing.
	if seen := ci.seen.Load(); seen >= int64(ds.Len())/2 {
		t.Errorf("run issued %d queries after cancellation at query 4", seen)
	}
}

// noiseRingDataset builds a dense disk whose sparse outer ring leaves a
// handful of still-Noise points with absorbed-but-untested neighbors: a
// run over it performs RangeCounts only during noise verification (no
// cluster merges), so cancelling on the first RangeCount is guaranteed to
// land inside that phase.
func noiseRingDataset() *vec.Dataset {
	rng := rand.New(rand.NewSource(5))
	var coords []float64
	// Dense disk of radius 8 at (50,50): one cluster, no merges.
	for i := 0; i < 600; i++ {
		r := 8 * math.Sqrt(rng.Float64())
		a := rng.Float64() * 2 * math.Pi
		coords = append(coords, 50+r*math.Cos(a), 50+r*math.Sin(a))
	}
	// Sparse shell at radius 9.8: too sparse to seed, within eps of the
	// disk's edge, so some members end up Noise with absorbed neighbors
	// whose core status was never tested — noise verification work.
	for k := 0; k < 20; k++ {
		a := float64(k) / 20 * 2 * math.Pi
		coords = append(coords, 50+9.8*math.Cos(a), 50+9.8*math.Sin(a))
	}
	for k := 0; k < 6; k++ {
		a := float64(k)/6*2*math.Pi + 0.1
		coords = append(coords, 50+9.8*math.Cos(a), 50+9.8*math.Sin(a))
	}
	ds, _ := vec.NewDataset(coords, 2)
	return ds
}

// TestCancellationMidNoiseVerification cancels during the batched noise
// core tests: with the ring dataset no merges occur, so the first
// RangeCount — where the index fires the cancel — happens inside noise
// verification and Run must surface the context error from that phase.
func TestCancellationMidNoiseVerification(t *testing.T) {
	if vec.DefaultPrecision() == vec.F32 {
		// The dataset sits on a geometric knife edge (a shell exactly eps from
		// the disk) so that no merges occur; the global f32 quantization moves
		// shell points enough to trigger a merge and void the phase isolation
		// this test depends on. Phase behavior itself is precision-independent.
		t.Skip("noise-verification isolation requires exact f64 geometry")
	}
	ds := noiseRingDataset()
	// Warm-started SVDD rounds follow a different iterate path and can move
	// one boundary support vector enough to trigger a merge on this dataset;
	// the test depends on phase isolation, not warm starting, so pin the
	// cold-start path.
	opts := Options{Eps: 2, MinPts: 8, Seed: 1, DisableWarmStart: true}
	// Guard against the dataset drifting vacuous: a clean run must do
	// noise-verification counting and no merge-path counting.
	_, st, err := Run(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.RangeCounts == 0 || st.Merges != 0 {
		t.Fatalf("dataset no longer isolates noise verification: RangeCounts=%d Merges=%d", st.RangeCounts, st.Merges)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	build := func(d *vec.Dataset) index.Index {
		return &countCancellingIndex{Index: index.NewLinear(d), cancel: cancel}
	}
	opts.Context, opts.IndexBuilder, opts.Workers = ctx, build, 4
	_, _, err = Run(ds, opts)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

type countCancellingIndex struct {
	index.Index
	cancel context.CancelFunc
}

func (c *countCancellingIndex) RangeCount(q []float64, eps float64, limit int) int {
	c.cancel()
	return c.Index.RangeCount(q, eps, limit)
}
