package core

import (
	"testing"

	"dbsvec/internal/eval"
	"dbsvec/internal/svdd"
)

// TestRunRetainedMatchesRun: retention must not perturb the clustering —
// RunRetained's labels are bit-identical to Run's for the same options.
func TestRunRetainedMatchesRun(t *testing.T) {
	ds := detBlobs(900, 2, 7)
	opts := Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1}
	plain, _, err := Run(ds, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res, retained, st, err := RunRetained(ds, opts)
	if err != nil {
		t.Fatalf("RunRetained: %v", err)
	}
	if len(plain.Labels) != len(res.Labels) {
		t.Fatal("label length drifted")
	}
	for i := range plain.Labels {
		if plain.Labels[i] != res.Labels[i] {
			t.Fatalf("label %d drifted: %d != %d", i, plain.Labels[i], res.Labels[i])
		}
	}
	if len(retained) == 0 {
		t.Fatal("no models retained")
	}
	if st.RetainedModels != len(retained) {
		t.Fatalf("Stats.RetainedModels %d != len(retained) %d", st.RetainedModels, len(retained))
	}
}

// TestRunRetainedClusterIDs: every retained entry references a valid final
// cluster id, every non-degraded entry carries a snapshot whose dimension
// matches the dataset, and every final cluster that trained SVDD at least
// once is covered by some entry.
func TestRunRetainedClusterIDs(t *testing.T) {
	ds := detBlobs(2000, 2, 13)
	res, retained, st, err := RunRetained(ds, Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.SVDDTrainings == 0 {
		t.Fatal("run trained no SVDD models; test shape is wrong")
	}
	covered := make(map[int32]bool)
	for i, e := range retained {
		if e.Cluster < 0 || int(e.Cluster) >= res.Clusters {
			t.Fatalf("entry %d: cluster id %d outside [0,%d)", i, e.Cluster, res.Clusters)
		}
		if e.Snap == nil {
			if !e.Degraded {
				t.Fatalf("entry %d: non-degraded entry without snapshot", i)
			}
			continue
		}
		if e.Snap.Dim != ds.Dim() {
			t.Fatalf("entry %d: snapshot dim %d != dataset dim %d", i, e.Snap.Dim, ds.Dim())
		}
		if e.Snap.SVCount() == 0 {
			t.Fatalf("entry %d: retained snapshot with zero support vectors", i)
		}
		covered[e.Cluster] = true
	}
	if len(covered) == 0 {
		t.Fatal("no cluster covered by a retained snapshot")
	}
	// Degradation accounting: the number of degraded entries equals
	// Stats.Degraded.
	deg := 0
	for _, e := range retained {
		if e.Degraded {
			deg++
		}
	}
	if deg != st.Degraded {
		t.Fatalf("degraded entries %d != Stats.Degraded %d", deg, st.Degraded)
	}
}

// TestWarmRestartFromSnapshots pins the warm-restart acceptance criteria:
// re-clustering the same data seeded from a previous run's retained
// snapshots must reproduce the cold clustering at ARI >= 0.99 while spending
// strictly fewer total SMO iterations.
func TestWarmRestartFromSnapshots(t *testing.T) {
	for _, spec := range []struct {
		n, d int
		seed int64
	}{
		{900, 2, 7},
		{2000, 2, 13},
	} {
		ds := detBlobs(spec.n, spec.d, spec.seed)
		opts := Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1}
		cold, retained, coldStats, err := RunRetained(ds, opts)
		if err != nil {
			t.Fatalf("n=%d cold: %v", spec.n, err)
		}
		snaps := make([]*svdd.Snapshot, 0, len(retained))
		for _, e := range retained {
			if e.Snap != nil {
				snaps = append(snaps, e.Snap)
			}
		}
		if len(snaps) == 0 {
			t.Fatalf("n=%d: cold run retained no snapshots", spec.n)
		}

		wopts := opts
		wopts.WarmModels = snaps
		warm, warmStats, err := Run(ds, wopts)
		if err != nil {
			t.Fatalf("n=%d warm: %v", spec.n, err)
		}
		if warmStats.WarmRestarts == 0 {
			t.Fatalf("n=%d: no round was warm-restarted from the snapshots", spec.n)
		}
		ari, err := eval.AdjustedRandIndex(cold, warm)
		if err != nil {
			t.Fatal(err)
		}
		if ari < 0.99 {
			t.Errorf("n=%d: warm-restart ARI = %v, want >= 0.99", spec.n, ari)
		}
		if warmStats.SVDDIterations >= coldStats.SVDDIterations {
			t.Errorf("n=%d: warm restart spent %d SMO iterations, cold run %d — want strictly fewer",
				spec.n, warmStats.SVDDIterations, coldStats.SVDDIterations)
		}
	}
}

// TestWarmModelsDisabledByDisableWarmStart: DisableWarmStart neutralizes
// WarmModels entirely — identical run to a plain cold start, zero restarts.
func TestWarmModelsDisabledByDisableWarmStart(t *testing.T) {
	ds := detBlobs(600, 2, 11)
	opts := Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1}
	_, retained, _, err := RunRetained(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	snaps := make([]*svdd.Snapshot, 0, len(retained))
	for _, e := range retained {
		if e.Snap != nil {
			snaps = append(snaps, e.Snap)
		}
	}
	cold, coldStats, err := Run(ds, Options{Eps: 6, MinPts: 8, Seed: 3, Workers: 1, DisableWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := Run(ds, Options{
		Eps: 6, MinPts: 8, Seed: 3, Workers: 1,
		DisableWarmStart: true, WarmModels: snaps,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.WarmRestarts != 0 {
		t.Fatalf("DisableWarmStart run counted %d warm restarts", warmStats.WarmRestarts)
	}
	if coldStats.SVDDIterations != warmStats.SVDDIterations {
		t.Fatalf("iteration counts differ (%d vs %d): WarmModels leaked into a DisableWarmStart run",
			coldStats.SVDDIterations, warmStats.SVDDIterations)
	}
	for i := range cold.Labels {
		if cold.Labels[i] != warm.Labels[i] {
			t.Fatalf("label %d drifted", i)
		}
	}
}
