package core

import (
	"testing"

	"dbsvec/internal/svdd"
	"dbsvec/internal/vec"
)

func budgetRunner(opts Options, ds *vec.Dataset) *runner {
	return &runner{ds: ds, opts: opts}
}

func TestSVBudget(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	// NuMin: exactly the single-vector minimum budget.
	r := budgetRunner(Options{NuMin: true, MinPts: 10}, ds)
	if got := r.svBudget(100); got != 1 {
		t.Errorf("NuMin budget = %d, want 1", got)
	}
	// Explicit nu: ceil(1.5*nu*n) with the floor of 6.
	r = budgetRunner(Options{Nu: 0.5, MinPts: 10}, ds)
	if got := r.svBudget(100); got != 75 {
		t.Errorf("nu=0.5 budget = %d, want 75", got)
	}
	r = budgetRunner(Options{Nu: 0.01, MinPts: 10}, ds)
	if got := r.svBudget(100); got != 6 {
		t.Errorf("tiny-nu budget = %d, want floor 6", got)
	}
}

func TestEffectiveNu(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	r := budgetRunner(Options{NuMin: true}, ds)
	if got := r.effectiveNu(200); got != 1.0/200 {
		t.Errorf("NuMin effective nu = %v", got)
	}
	r = budgetRunner(Options{Nu: 0.3}, ds)
	if got := r.effectiveNu(200); got != 0.3 {
		t.Errorf("explicit effective nu = %v", got)
	}
	r = budgetRunner(Options{MinPts: 20}, ds)
	want := svdd.NuStar(2, 20, 200)
	if got := r.effectiveNu(200); got != want {
		t.Errorf("adaptive effective nu = %v, want %v", got, want)
	}
}

// DBSVEC_min must actually run at roughly one queried support vector per
// training round (the paper's minimum-nu variant).
func TestNuMinQueriesFewSVs(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}, {40, 40}}, 300, 2, 0, 0, 5)
	_, st, err := Run(ds, Options{Eps: 3, MinPts: 8, NuMin: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.SVDDTrainings == 0 {
		t.Fatal("no trainings recorded")
	}
	perRound := float64(st.SupportVectors) / float64(st.SVDDTrainings)
	// Stall-escalation rounds query the full SV set, so the average sits
	// above 1; it must still stay far below the default ν* budgets.
	if perRound > 8 {
		t.Errorf("DBSVEC_min queried %.1f SVs per round, want close to 1", perRound)
	}
}

func TestSampleTargetsCap(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}})
	r := budgetRunner(Options{MaxSVDDTarget: 8}, ds)
	targets := make([]target, 100)
	for i := range targets {
		targets[i] = target{id: int32(i)}
	}
	ids := r.sampleTargets(targets)
	if len(ids) != 8 {
		t.Fatalf("sampled %d ids, want 8", len(ids))
	}
	seen := map[int32]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate id in sample")
		}
		seen[id] = true
		if id < 0 || id >= 100 {
			t.Fatalf("id %d out of range", id)
		}
	}
	// Small target sets pass through unchanged.
	ids = r.sampleTargets(targets[:5])
	if len(ids) != 5 {
		t.Errorf("small set sampled to %d", len(ids))
	}
}
