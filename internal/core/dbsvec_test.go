package core

import (
	"math/rand"
	"testing"

	"dbsvec/internal/cluster"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/index/kdtree"
	"dbsvec/internal/vec"
)

func gaussBlobs(centers [][]float64, per int, sd float64, noise int, span float64, seed int64) *vec.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := len(centers[0])
	rows := make([][]float64, 0, len(centers)*per+noise)
	for _, c := range centers {
		for i := 0; i < per; i++ {
			p := make([]float64, d)
			for j := 0; j < d; j++ {
				p[j] = c[j] + rng.NormFloat64()*sd
			}
			rows = append(rows, p)
		}
	}
	for i := 0; i < noise; i++ {
		p := make([]float64, d)
		for j := 0; j < d; j++ {
			p[j] = rng.Float64() * span
		}
		rows = append(rows, p)
	}
	ds, _ := vec.FromRows(rows)
	return ds
}

func TestTwoBlobsBasic(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}, {50, 50}}, 300, 1.5, 0, 0, 1)
	res, st, err := Run(ds, Options{Eps: 3, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("Clusters = %d, want 2", res.Clusters)
	}
	// The point of DBSVEC: far fewer range queries than points.
	if st.RangeQueries >= int64(ds.Len()) {
		t.Errorf("RangeQueries = %d, not fewer than n = %d", st.RangeQueries, ds.Len())
	}
	if st.Seeds < 2 {
		t.Errorf("Seeds = %d, want >= 2", st.Seeds)
	}
	if st.SVDDTrainings == 0 {
		t.Error("expected at least one SVDD training")
	}
}

func TestValidation(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}}, 10, 1, 0, 0, 2)
	cases := []Options{
		{Eps: -1, MinPts: 5},
		{Eps: 1, MinPts: 0},
		{Eps: 1, MinPts: 5, Nu: 2},
		{Eps: 1, MinPts: 5, Nu: -0.5},
		{Eps: 1, MinPts: 5, MemoryFactor: 0.5},
	}
	for i, o := range cases {
		if _, _, err := Run(ds, o); err == nil {
			t.Errorf("case %d: want validation error for %+v", i, o)
		}
	}
	if _, _, err := Run(nil, Options{Eps: 1, MinPts: 5}); err == nil {
		t.Error("want error for nil dataset")
	}
}

func TestEmptyDataset(t *testing.T) {
	ds, _ := vec.FromRows(nil)
	res, st, err := Run(ds, Options{Eps: 1, MinPts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 || st.RangeQueries != 0 {
		t.Error("empty run should do nothing")
	}
}

func TestAllNoise(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}}, 1, 0, 20, 1000, 3)
	res, st, err := Run(ds, Options{Eps: 1, MinPts: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 0 {
		t.Errorf("Clusters = %d, want 0", res.Clusters)
	}
	if res.NoiseCount() != ds.Len() {
		t.Errorf("NoiseCount = %d, want %d", res.NoiseCount(), ds.Len())
	}
	if st.NoiseList != ds.Len() {
		t.Errorf("NoiseList = %d, want %d", st.NoiseList, ds.Len())
	}
}

func TestSingleDenseCluster(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0, 0}}, 500, 2, 0, 0, 4)
	res, _, err := Run(ds, Options{Eps: 2, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 1 {
		t.Fatalf("Clusters = %d, want 1", res.Clusters)
	}
	if res.NoiseCount() > ds.Len()/20 {
		t.Errorf("too much noise in a dense blob: %d", res.NoiseCount())
	}
}

// Theorem 1 (Necessity): every DBSVEC cluster is a subset of some DBSCAN
// cluster — no DBSVEC cluster ever mixes points from two DBSCAN clusters or
// absorbs DBSCAN noise.
func TestTheorem1Necessity(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ds := gaussBlobs([][]float64{{0, 0}, {30, 0}, {15, 40}}, 200, 2, 30, 120, seed)
		p := dbscan.Params{Eps: 3, MinPts: 8}
		truth, _, err := dbscan.Run(ds, p, kdtree.Build)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Run(ds, Options{Eps: p.Eps, MinPts: p.MinPts, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		// For each DBSVEC cluster, all its points must map to one DBSCAN
		// cluster... except border points, which DBSCAN may legally assign
		// to any adjacent cluster. Restrict the check to core points.
		coreMask, err := dbscan.CoreMask(ds, p, kdtree.Build)
		if err != nil {
			t.Fatal(err)
		}
		owner := make(map[int32]int32)
		for i, l := range got.Labels {
			if l < 0 || !coreMask[i] {
				continue
			}
			dl := truth.Labels[i]
			if dl == cluster.Noise {
				t.Fatalf("seed %d: DBSVEC clustered core point %d that DBSCAN calls noise", seed, i)
			}
			if prev, ok := owner[l]; ok && prev != dl {
				t.Fatalf("seed %d: DBSVEC cluster %d spans DBSCAN clusters %d and %d", seed, l, prev, dl)
			}
			owner[l] = dl
		}
		// Clustered DBSVEC points must be clustered in DBSCAN too.
		for i, l := range got.Labels {
			if l >= 0 && truth.Labels[i] == cluster.Noise {
				t.Fatalf("seed %d: point %d clustered by DBSVEC but noise in DBSCAN", seed, i)
			}
		}
	}
}

// Theorem 3 (Noise Guarantee): DBSVEC and DBSCAN find exactly the same
// noise points.
func TestTheorem3NoiseEquality(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ds := gaussBlobs([][]float64{{0, 0}, {25, 25}}, 150, 2, 40, 100, seed+10)
		p := dbscan.Params{Eps: 3, MinPts: 6}
		truth, _, err := dbscan.Run(ds, p, kdtree.Build)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := Run(ds, Options{Eps: p.Eps, MinPts: p.MinPts, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Labels {
			gn := got.Labels[i] == cluster.Noise
			tn := truth.Labels[i] == cluster.Noise
			if gn != tn {
				t.Fatalf("seed %d: noise disagreement at point %d (dbsvec=%v dbscan=%v)", seed, i, gn, tn)
			}
		}
	}
}

// DBSVEC with nu -> 1 degenerates toward DBSCAN: it must find the same
// cluster count on well-separated data.
func TestHighNuMatchesDBSCANClusters(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}, {60, 60}, {0, 60}}, 120, 1.5, 0, 0, 5)
	p := dbscan.Params{Eps: 3, MinPts: 8}
	truth, _, _ := dbscan.Run(ds, p, nil)
	got, _, err := Run(ds, Options{Eps: p.Eps, MinPts: p.MinPts, Nu: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	if got.Clusters != truth.Clusters {
		t.Errorf("clusters: dbsvec=%d dbscan=%d", got.Clusters, truth.Clusters)
	}
}

// Ablations must run and still satisfy Theorem 1 style guarantees.
func TestAblationsRun(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}, {40, 40}}, 200, 2, 20, 80, 6)
	opts := []Options{
		{Eps: 3, MinPts: 8, DisableWeights: true},         // \WF
		{Eps: 3, MinPts: 8, LearnThreshold: -1},           // \IL
		{Eps: 3, MinPts: 8, RandomKernel: true, Seed: 42}, // \OK
		{Eps: 3, MinPts: 8, NuMin: true},                  // DBSVEC_min
		{Eps: 3, MinPts: 8, Nu: 0.5, MemoryFactor: 2},     // explicit knobs
		{Eps: 3, MinPts: 8, IndexBuilder: kdtree.Build},   // indexed backend
		{Eps: 3, MinPts: 8, MaxSVDDTarget: 64},            // tiny target cap
		{Eps: 3, MinPts: 8, LearnThreshold: 1},            // aggressive IL
	}
	for i, o := range opts {
		res, st, err := Run(ds, o)
		if err != nil {
			t.Fatalf("ablation %d: %v", i, err)
		}
		if res.Clusters < 2 {
			t.Errorf("ablation %d: clusters=%d, want >=2", i, res.Clusters)
		}
		if st.RangeQueries == 0 {
			t.Errorf("ablation %d: no range queries recorded", i)
		}
	}
}

// Sub-cluster merging: a dumbbell (two lobes joined by a dense bridge) must
// come out as one cluster even though expansion may seed both lobes
// separately.
func TestMergingDumbbell(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows := make([][]float64, 0, 900)
	for i := 0; i < 300; i++ {
		rows = append(rows, []float64{rng.NormFloat64() * 2, rng.NormFloat64() * 2})
	}
	for i := 0; i < 300; i++ {
		rows = append(rows, []float64{30 + rng.NormFloat64()*2, rng.NormFloat64() * 2})
	}
	for i := 0; i < 300; i++ { // bridge
		rows = append(rows, []float64{rng.Float64() * 30, rng.NormFloat64() * 0.5})
	}
	ds, _ := vec.FromRows(rows)
	p := dbscan.Params{Eps: 2, MinPts: 6}
	truth, _, _ := dbscan.Run(ds, p, nil)
	got, st, err := Run(ds, Options{Eps: p.Eps, MinPts: p.MinPts})
	if err != nil {
		t.Fatal(err)
	}
	if truth.Clusters != 1 {
		t.Skipf("ground truth found %d clusters; geometry assumption broken", truth.Clusters)
	}
	if got.Clusters != 1 {
		t.Errorf("dumbbell split into %d clusters (merges=%d)", got.Clusters, st.Merges)
	}
}

// Border points: DBSVEC must attach noise-list points that have a core
// neighbor (noise verification).
func TestNoiseVerificationAttachesBorder(t *testing.T) {
	// Dense line plus one point hanging off the end within eps of a core
	// point. Visit order puts the border point first so it lands on the
	// noise list.
	rows := [][]float64{{2.5, 0}} // border point visited first
	for i := 0; i < 30; i++ {
		rows = append(rows, []float64{float64(i) * 0.1, 0})
	}
	ds, _ := vec.FromRows(rows)
	res, _, err := Run(ds, Options{Eps: 0.35, MinPts: 4})
	if err != nil {
		t.Fatal(err)
	}
	truth, _, _ := dbscan.Run(ds, dbscan.Params{Eps: 0.35, MinPts: 4}, nil)
	if (res.Labels[0] == cluster.Noise) != (truth.Labels[0] == cluster.Noise) {
		t.Errorf("border/noise disagreement: dbsvec=%d dbscan=%d", res.Labels[0], truth.Labels[0])
	}
}

// The θ bound: total range queries must stay well below n on clustered data.
func TestThetaFarBelowN(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}, {80, 80}, {0, 80}, {80, 0}}, 1000, 3, 50, 160, 8)
	_, st, err := Run(ds, Options{Eps: 4, MinPts: 20})
	if err != nil {
		t.Fatal(err)
	}
	n := int64(ds.Len())
	if st.RangeQueries > n/2 {
		t.Errorf("RangeQueries = %d, want < n/2 = %d", st.RangeQueries, n/2)
	}
	t.Logf("n=%d rangeQueries=%d rangeCounts=%d seeds=%d svs=%d merges=%d noiselist=%d trainings=%d",
		n, st.RangeQueries, st.RangeCounts, st.Seeds, st.SupportVectors, st.Merges, st.NoiseList, st.SVDDTrainings)
}

func TestDeterminism(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}, {30, 30}}, 200, 2, 20, 60, 9)
	a, _, err := Run(ds, Options{Eps: 3, MinPts: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(ds, Options{Eps: 3, MinPts: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("nondeterministic labels at %d", i)
		}
	}
}

func BenchmarkDBSVEC4Blobs(b *testing.B) {
	ds := gaussBlobs([][]float64{{0, 0}, {80, 80}, {0, 80}, {80, 0}}, 2000, 3, 100, 160, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(ds, Options{Eps: 4, MinPts: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
