package core

import (
	"math"

	"dbsvec/internal/cluster"
)

// noiseVerification is the final DBSVEC phase (Algorithm 2 line 16): every
// potential noise point either joins the cluster of its nearest core
// neighbor or is confirmed as noise. The ε-neighborhoods stored during
// initialization are reused, so the only new work is core-point tests on
// the (fewer than MinPts) neighbors of each candidate — the paper's
// O(MinPts·l·n) term. Those tests have no ordering dependency, so they are
// collected up front (deduplicated, first-seen order) and submitted as one
// counting-query batch on the engine; the attach pass below then runs
// sequentially against the warmed core cache, keeping labels and stats
// identical to the sequential formulation for every worker count.
func (r *runner) noiseVerification() error {
	if err := r.checkpoint(); err != nil {
		return err
	}
	// corePending marks ids already collected into the batch; it never
	// escapes this function (every pending id is resolved below).
	const corePending coreState = 3
	var cand []int32
	for k, id := range r.noiseIDs {
		if r.labels[id] != cluster.Noise {
			continue // absorbed by an expansion in the meantime
		}
		for _, q := range r.noiseHoods[k] {
			if q != id && r.core[q] == coreUnknown {
				r.core[q] = corePending
				cand = append(cand, q)
			}
		}
	}
	if len(cand) > 0 {
		counts, err := r.eng.Counts(r.ctx, cand, r.opts.MinPts)
		if err != nil {
			for _, q := range cand {
				r.core[q] = coreUnknown
			}
			return r.queryErr(err)
		}
		r.stats.RangeCounts += int64(len(cand))
		for i, q := range cand {
			if counts[i] >= r.opts.MinPts {
				r.core[q] = coreYes
			} else {
				r.core[q] = coreNo
			}
		}
	}

	for k, id := range r.noiseIDs {
		if r.labels[id] != cluster.Noise {
			continue
		}
		hood := r.noiseHoods[k]
		best := int32(-1)
		bestD := math.Inf(1)
		for _, q := range hood {
			if q == id {
				continue
			}
			// A core neighbor must itself be clustered; a core point is
			// never noise, and every core point seen by the main loop was
			// assigned a cluster.
			if !r.isCore(q) || r.labels[q] < 0 {
				continue
			}
			if d := r.ds.Dist2(int(id), int(q)); d < bestD {
				best, bestD = q, d
			}
		}
		if best >= 0 {
			r.labels[id] = r.labels[best]
		}
	}
	return nil
}
