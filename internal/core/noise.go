package core

import (
	"math"

	"dbsvec/internal/cluster"
)

// noiseVerification is the final DBSVEC phase (Algorithm 2 line 16): every
// potential noise point either joins the cluster of its nearest core
// neighbor or is confirmed as noise. The ε-neighborhoods stored during
// initialization are reused, so the only new work is core-point tests on
// the (fewer than MinPts) neighbors of each candidate — the paper's
// O(MinPts·l·n) term.
func (r *runner) noiseVerification() {
	for k, id := range r.noiseIDs {
		if r.labels[id] != cluster.Noise {
			continue // absorbed by an expansion in the meantime
		}
		hood := r.noiseHoods[k]
		best := int32(-1)
		bestD := math.Inf(1)
		for _, q := range hood {
			if q == id {
				continue
			}
			// A core neighbor must itself be clustered; a core point is
			// never noise, and every core point seen by the main loop was
			// assigned a cluster.
			if !r.isCore(q) || r.labels[q] < 0 {
				continue
			}
			if d := r.ds.Dist2(int(id), int(q)); d < bestD {
				best, bestD = q, d
			}
		}
		if best >= 0 {
			r.labels[id] = r.labels[best]
		}
	}
}
