package core

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"dbsvec/internal/cluster"
	"dbsvec/internal/eval"
	"dbsvec/internal/fault"
	"dbsvec/internal/leakcheck"
	"dbsvec/internal/vec"
)

// countingCtx cancels itself after its Err method has been polled a fixed
// number of times; every consumer in this repository polls Err (never Done),
// which the nil Done channel proves.
type countingCtx struct {
	context.Context
	after int64
	calls atomic.Int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) Done() <-chan struct{} { return nil }

// checkLabels asserts the labeling invariants that every result — complete
// or budget-partial — must satisfy: each label is Noise or a dense cluster
// id in [0, Clusters), and every id in that range is used.
func checkLabels(t *testing.T, res *cluster.Result) {
	t.Helper()
	used := make([]bool, res.Clusters)
	for i, l := range res.Labels {
		switch {
		case l == cluster.Noise:
		case l >= 0 && int(l) < res.Clusters:
			used[l] = true
		default:
			t.Fatalf("label[%d] = %d outside [0, %d) ∪ {Noise}", i, l, res.Clusters)
		}
	}
	for id, u := range used {
		if !u {
			t.Errorf("cluster id %d unused", id)
		}
	}
}

func threeBlobs(seed int64) *vec.Dataset {
	return gaussBlobs([][]float64{{0, 0}, {50, 50}, {0, 50}}, 200, 1.5, 30, 80, seed)
}

func TestBudgetSVDDRounds(t *testing.T) {
	ds := threeBlobs(1)
	opts := Options{Eps: 3, MinPts: 10, Budget: Budget{MaxSVDDRounds: 1}}
	res, st, err := Run(ds, opts)
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if be.Limit != "svdd-rounds" || be.SVDDRounds < 1 {
		t.Errorf("unexpected budget error: %+v", be)
	}
	if res == nil {
		t.Fatal("want partial result alongside budget error")
	}
	checkLabels(t, res)
	if st.SVDDTrainings < 1 {
		t.Errorf("SVDDTrainings = %d, want >= 1", st.SVDDTrainings)
	}
	// Unbudgeted, the same run needs several trainings.
	_, full, err := Run(ds, Options{Eps: 3, MinPts: 10})
	if err != nil {
		t.Fatal(err)
	}
	if full.SVDDTrainings <= 1 {
		t.Skip("dataset too easy to exercise the round budget")
	}
	if st.SVDDTrainings >= full.SVDDTrainings {
		t.Errorf("budgeted run trained %d times, full run %d — budget had no effect",
			st.SVDDTrainings, full.SVDDTrainings)
	}
}

func TestBudgetRangeQueries(t *testing.T) {
	ds := threeBlobs(2)
	res, st, err := Run(ds, Options{Eps: 3, MinPts: 10, Budget: Budget{MaxRangeQueries: 10}})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if be.Limit != "range-queries" {
		t.Errorf("Limit = %q, want range-queries", be.Limit)
	}
	if res == nil {
		t.Fatal("want partial result alongside budget error")
	}
	checkLabels(t, res)
	if got := st.RangeQueries + st.RangeCounts; got < 10 {
		t.Errorf("queries at trip = %d, want >= 10", got)
	}
}

func TestBudgetDurationExpiredUpFront(t *testing.T) {
	leakcheck.Check(t)
	ds := threeBlobs(3)
	res, _, err := Run(ds, Options{Eps: 3, MinPts: 10, Budget: Budget{MaxDuration: time.Nanosecond}})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError", err)
	}
	if be.Limit != "duration" {
		t.Errorf("Limit = %q, want duration", be.Limit)
	}
	if res == nil {
		t.Fatal("want partial (all-noise) result")
	}
	checkLabels(t, res)
	for i, l := range res.Labels {
		if l != cluster.Noise {
			t.Fatalf("label[%d] = %d, want Noise everywhere on an instantly expired budget", i, l)
		}
	}
}

func TestInjectedDeadlineFire(t *testing.T) {
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.DeadlineFire, fault.Nth(3)))
	defer restore()
	ds := threeBlobs(4)
	res, _, err := Run(ds, Options{Eps: 3, MinPts: 10})
	var be *BudgetExceededError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BudgetExceededError from injected deadline", err)
	}
	if be.Limit != "duration" {
		t.Errorf("Limit = %q, want duration", be.Limit)
	}
	if res == nil {
		t.Fatal("want partial result")
	}
	checkLabels(t, res)
}

func TestExternalCancelPreCancelled(t *testing.T) {
	leakcheck.Check(t)
	ds := threeBlobs(5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := Run(ds, Options{Eps: 3, MinPts: 10, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("external cancellation must discard partial work")
	}
}

func TestExternalCancelMidRun(t *testing.T) {
	leakcheck.Check(t)
	ds := threeBlobs(6)
	// Let a handful of checkpoints pass, then cancel: the run is cut off
	// somewhere inside the seed sweep or an expansion round.
	ctx := &countingCtx{Context: context.Background(), after: 8}
	res, _, err := Run(ds, Options{Eps: 3, MinPts: 10, Context: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("external cancellation must discard partial work")
	}
}

func TestExternalCancelBeatsBudget(t *testing.T) {
	// When both an external cancellation and a budget limit are in play,
	// the cancellation wins: hard error, no partial result.
	ds := threeBlobs(7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, _, err := Run(ds, Options{
		Eps: 3, MinPts: 10, Context: ctx,
		Budget: Budget{MaxSVDDRounds: 1, MaxDuration: time.Nanosecond},
	})
	if !errors.Is(err, context.Canceled) || res != nil {
		t.Fatalf("res=%v err=%v, want nil result and context.Canceled", res, err)
	}
}

func TestDegradedFallbackKeepsARI(t *testing.T) {
	ds := threeBlobs(8)
	opts := Options{Eps: 3, MinPts: 10}
	clean, cleanStats, err := Run(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cleanStats.Degraded != 0 {
		t.Fatalf("clean run reported %d degraded sub-clusters", cleanStats.Degraded)
	}

	restore := fault.Activate(fault.NewInjector(1).Arm(fault.SolverNonConverge, fault.Always()))
	defer restore()
	degraded, degStats, err := Run(ds, opts)
	if err != nil {
		t.Fatalf("degraded run must still succeed, got %v", err)
	}
	if degStats.Degraded == 0 {
		t.Fatal("injection fired on every training yet Degraded = 0")
	}
	checkLabels(t, degraded)
	ari, err := eval.AdjustedRandIndex(clean, degraded)
	if err != nil {
		t.Fatal(err)
	}
	if ari < 0.95 {
		t.Errorf("ARI(clean, degraded) = %v, want >= 0.95", ari)
	}
}

func TestWorkerPanicContained(t *testing.T) {
	leakcheck.Check(t)
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.WorkerPanic, fault.Nth(1)))
	defer restore()
	ds := threeBlobs(9)
	res, _, err := Run(ds, Options{Eps: 3, MinPts: 10, Workers: 4})
	var wp *fault.WorkerPanicError
	if !errors.As(err, &wp) {
		t.Fatalf("err = %v, want *fault.WorkerPanicError", err)
	}
	if len(wp.Stack) == 0 {
		t.Error("worker panic lost its stack trace")
	}
	if res != nil {
		t.Error("want nil result after a contained panic")
	}
}

func TestIndexQueryErrorPropagates(t *testing.T) {
	restore := fault.Activate(fault.NewInjector(1).Arm(fault.IndexQueryError, fault.Nth(1)))
	defer restore()
	ds := threeBlobs(10)
	res, _, err := Run(ds, Options{Eps: 3, MinPts: 10})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("err = %v, want injected query error", err)
	}
	if res != nil {
		t.Error("want nil result on a query error")
	}
}

func TestInvalidParamsTaxonomy(t *testing.T) {
	ds := gaussBlobs([][]float64{{0, 0}}, 10, 1, 0, 0, 2)
	cases := []Options{
		{Eps: 0, MinPts: 5},
		{Eps: -1, MinPts: 5},
		{Eps: 1, MinPts: 0},
		{Eps: 1, MinPts: 5, Nu: 2},
		{Eps: 1, MinPts: 5, MemoryFactor: 0.5},
		{Eps: 1, MinPts: 5, Workers: -1},
		{Eps: 1, MinPts: 5, MaxSVDDTarget: -1},
		{Eps: 1, MinPts: 5, LearnThreshold: -2},
		{Eps: 1, MinPts: 5, Budget: Budget{MaxDuration: -time.Second}},
		{Eps: 1, MinPts: 5, Budget: Budget{MaxSVDDRounds: -1}},
		{Eps: 1, MinPts: 5, Budget: Budget{MaxRangeQueries: -1}},
	}
	for i, o := range cases {
		_, _, err := Run(ds, o)
		if !errors.Is(err, ErrInvalidParams) {
			t.Errorf("case %d: err = %v, want ErrInvalidParams for %+v", i, err, o)
		}
	}
}
