package core

import (
	"errors"
	"fmt"
	"time"
)

// Budget bounds the work a DBSVEC run may perform. The zero value disables
// every limit. Limits are enforced at round boundaries (seed sweep steps,
// expansion rounds, noise verification) and — for MaxDuration — inside
// long-running primitives via a context deadline, so a tripped budget stops
// the run within one query batch or SVDD solve checkpoint.
//
// A budgeted run that trips does NOT fail: Run returns the best-effort
// partial clustering built so far (every label is a valid cluster id or
// Noise — unreached points are reported as Noise) together with a
// *BudgetExceededError describing which limit fired.
type Budget struct {
	// MaxDuration caps wall-clock time. Enforced via a context deadline
	// derived for the run, so it also interrupts index construction and
	// mid-solve SVDD iterations.
	MaxDuration time.Duration
	// MaxSVDDRounds caps the number of SVDD trainings (Stats.SVDDTrainings).
	MaxSVDDRounds int
	// MaxRangeQueries caps the total number of range queries and counting
	// queries (Stats.RangeQueries + Stats.RangeCounts).
	MaxRangeQueries int64
}

func (b Budget) enabled() bool {
	return b.MaxDuration > 0 || b.MaxSVDDRounds > 0 || b.MaxRangeQueries > 0
}

func (b Budget) validate() error {
	if b.MaxDuration < 0 {
		return fmt.Errorf("%w: budget MaxDuration %v must be non-negative", ErrInvalidParams, b.MaxDuration)
	}
	if b.MaxSVDDRounds < 0 {
		return fmt.Errorf("%w: budget MaxSVDDRounds %d must be non-negative", ErrInvalidParams, b.MaxSVDDRounds)
	}
	if b.MaxRangeQueries < 0 {
		return fmt.Errorf("%w: budget MaxRangeQueries %d must be non-negative", ErrInvalidParams, b.MaxRangeQueries)
	}
	return nil
}

// BudgetExceededError reports that a run stopped early because a Budget
// limit fired. It accompanies a *valid partial result*, not a nil one.
type BudgetExceededError struct {
	// Limit names the limit that fired: "duration", "svdd-rounds" or
	// "range-queries".
	Limit string
	// Elapsed is the wall-clock time consumed when the limit fired.
	Elapsed time.Duration
	// SVDDRounds and RangeQueries snapshot the corresponding work counters
	// at the moment the limit fired.
	SVDDRounds   int
	RangeQueries int64
}

func (e *BudgetExceededError) Error() string {
	return fmt.Sprintf("dbsvec: budget exceeded (%s) after %v, %d svdd rounds, %d range queries",
		e.Limit, e.Elapsed, e.SVDDRounds, e.RangeQueries)
}

// errBudget is the internal control-flow sentinel that unwinds a tripped
// budget out of the expansion machinery; Run translates it into the
// runner's recorded *BudgetExceededError plus a partial result.
var errBudget = errors.New("dbsvec: budget exhausted")
