package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dbsvec/internal/cluster"
	"dbsvec/internal/dbscan"
	"dbsvec/internal/vec"
)

// randomWorkload builds a random mixture of blobs and noise plus random
// clustering parameters from a seed.
func randomWorkload(seed int64) (*vec.Dataset, Options) {
	rng := rand.New(rand.NewSource(seed))
	blobs := 1 + rng.Intn(4)
	per := 40 + rng.Intn(120)
	sd := 0.5 + rng.Float64()*2.5
	d := 2 + rng.Intn(3)
	rows := make([][]float64, 0, blobs*per+30)
	for b := 0; b < blobs; b++ {
		c := make([]float64, d)
		for j := range c {
			c[j] = rng.Float64() * 80
		}
		for i := 0; i < per; i++ {
			p := make([]float64, d)
			for j := 0; j < d; j++ {
				p[j] = c[j] + rng.NormFloat64()*sd
			}
			rows = append(rows, p)
		}
	}
	noise := rng.Intn(30)
	for i := 0; i < noise; i++ {
		p := make([]float64, d)
		for j := range p {
			p[j] = rng.Float64() * 100
		}
		rows = append(rows, p)
	}
	ds, _ := vec.FromRows(rows)
	opts := Options{
		Eps:    sd * (1.5 + rng.Float64()*2),
		MinPts: 3 + rng.Intn(10),
		Seed:   seed,
	}
	return ds, opts
}

// Property (Theorem 3): over random workloads and parameters, DBSVEC's
// noise set equals DBSCAN's.
func TestQuickNoiseEquality(t *testing.T) {
	f := func(seed int64) bool {
		ds, opts := randomWorkload(seed)
		truth, _, err := dbscan.Run(ds, dbscan.Params{Eps: opts.Eps, MinPts: opts.MinPts}, nil)
		if err != nil {
			return false
		}
		got, _, err := Run(ds, opts)
		if err != nil {
			return false
		}
		for i := range got.Labels {
			if (got.Labels[i] == cluster.Noise) != (truth.Labels[i] == cluster.Noise) {
				t.Logf("seed %d: noise mismatch at %d", seed, i)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property (Theorem 1): over random workloads, no DBSVEC cluster mixes core
// points from two different DBSCAN clusters.
func TestQuickNecessity(t *testing.T) {
	f := func(seed int64) bool {
		ds, opts := randomWorkload(seed)
		p := dbscan.Params{Eps: opts.Eps, MinPts: opts.MinPts}
		truth, _, err := dbscan.Run(ds, p, nil)
		if err != nil {
			return false
		}
		mask, err := dbscan.CoreMask(ds, p, nil)
		if err != nil {
			return false
		}
		got, _, err := Run(ds, opts)
		if err != nil {
			return false
		}
		owner := map[int32]int32{}
		for i, l := range got.Labels {
			if l < 0 || !mask[i] {
				continue
			}
			dl := truth.Labels[i]
			if dl < 0 {
				t.Logf("seed %d: clustered core point %d is DBSCAN noise", seed, i)
				return false
			}
			if prev, ok := owner[l]; ok && prev != dl {
				t.Logf("seed %d: DBSVEC cluster %d spans DBSCAN clusters %d,%d", seed, l, prev, dl)
				return false
			}
			owner[l] = dl
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: labels are always a valid Result — dense ids, Clusters
// consistent, every point labeled.
func TestQuickResultWellFormed(t *testing.T) {
	f := func(seed int64) bool {
		ds, opts := randomWorkload(seed)
		got, _, err := Run(ds, opts)
		if err != nil {
			return false
		}
		if len(got.Labels) != ds.Len() {
			return false
		}
		seen := map[int32]bool{}
		for _, l := range got.Labels {
			if l == cluster.Unclassified {
				t.Logf("seed %d: unclassified label leaked", seed)
				return false
			}
			if l >= 0 {
				if int(l) >= got.Clusters {
					t.Logf("seed %d: label %d >= Clusters %d", seed, l, got.Clusters)
					return false
				}
				seen[l] = true
			}
		}
		return len(seen) == got.Clusters
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
