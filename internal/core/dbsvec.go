// Package core implements DBSVEC (Algorithms 2 and 3 of the paper):
// density-based clustering that expands sub-clusters by running range
// queries only on *core support vectors* found by SVDD, instead of on every
// point as DBSCAN does.
//
// The four phases of the algorithm map to this implementation as follows:
//
//   - initialization: scan for an unclassified point, test it with one range
//     query, and seed a new sub-cluster from its ε-neighborhood
//     (Algorithm 2 lines 2–8);
//   - support vector expansion: train (weighted, incremental) SVDD on the
//     sub-cluster and grow it from the ε-neighborhoods of the core support
//     vectors until no new points arrive (Algorithm 3);
//   - sub-cluster merging: when an expansion touches a point already owned
//     by another sub-cluster and that point proves to be a core point, the
//     two sub-clusters are united (Algorithm 2 line 11, Algorithm 3
//     line 13) — implemented with a union–find over cluster ids;
//   - noise verification: each potential noise point is confirmed as noise
//     or attached to the cluster of its nearest core neighbor, reusing the
//     ε-neighborhood already computed during initialization (Algorithm 2
//     line 16).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"dbsvec/internal/cluster"
	"dbsvec/internal/engine"
	"dbsvec/internal/fault"
	"dbsvec/internal/index"
	"dbsvec/internal/svdd"
	"dbsvec/internal/unionfind"
	"dbsvec/internal/vec"
)

// Options configures a DBSVEC run. The zero value of every optional field
// selects the paper's default behaviour.
type Options struct {
	// Eps is the ε radius (required, >= 0).
	Eps float64
	// MinPts is the density threshold (required, >= 1).
	MinPts int

	// Nu overrides the penalty factor ν. 0 selects the adaptive ν* of
	// Eq. 20. Set NuMin for the paper's DBSVEC_min variant (ν = 1/ñ).
	Nu    float64
	NuMin bool

	// MemoryFactor is the λ > 1 coefficient of the penalty weights (Eq. 7).
	// 0 selects 1.5.
	MemoryFactor float64

	// LearnThreshold is the incremental-learning threshold T: points that
	// participated in more than T SVDD trainings leave the target set.
	// 0 selects the paper's T = 3; negative disables incremental learning
	// (the DBSVEC\IL ablation).
	LearnThreshold int

	// DisableWeights turns off the adaptive penalty weights (the DBSVEC\WF
	// ablation): plain SVDD with uniform ω_i = 1.
	DisableWeights bool

	// RandomKernel replaces the σ = r/√2 rule with a σ drawn uniformly from
	// [min pairwise distance, max pairwise distance] of the target set (the
	// DBSVEC\OK ablation).
	RandomKernel bool

	// Seed drives the RandomKernel draw. Ignored otherwise.
	Seed int64

	// IndexBuilder supplies the range-query backend. nil selects the linear
	// scan — DBSVEC needs no index (Section III-D).
	IndexBuilder index.Builder

	// IndexBuilderCtx, when non-nil, takes precedence over IndexBuilder and
	// supplies a cancellable backend construction: a Budget deadline or a
	// cancelled Context interrupts the build itself instead of waiting for
	// it to finish. The tree backends export native CtxBuilders;
	// index.WithContext adapts any plain Builder.
	IndexBuilderCtx index.CtxBuilder

	// MaxSVDDTarget caps the SVDD target-set size; larger targets are
	// deterministically subsampled before training. 0 selects 1024. The cap
	// bounds the O(ñ²) kernel work per training round; incremental learning
	// keeps targets under it in normal operation.
	MaxSVDDTarget int

	// DisableWarmStart cold-starts every SVDD training round instead of
	// seeding the solver with the previous round's multipliers for the
	// surviving target points (Section IV-B1 guarantees consecutive rounds
	// share most of their target set, so the warm start typically lands
	// near the new optimum). Warm starting converges to the same dual at
	// the same KKT tolerance, but along a different iterate path, so
	// multipliers — and in rare near-tie cases cluster boundaries — can
	// differ within solver tolerance. Set this for A/B benchmarking or when
	// exact equivalence with cold-start runs is required. It also disables
	// warm restarts from WarmModels.
	DisableWarmStart bool

	// WarmModels supplies a previous run's retained SVDD snapshots as the
	// warm-restart source: the FIRST training round of every sub-cluster
	// seeds the solver from the saved multipliers of overlapping points
	// (subsequent rounds warm-start from the in-run previous model as
	// usual). On unchanged or mostly-overlapping data the saved alphas sit
	// near each round-one optimum, so a warm restart reproduces the cold
	// clustering within solver tolerance at strictly fewer SMO iterations.
	// nil (or DisableWarmStart) cold-starts round one.
	WarmModels []*svdd.Snapshot

	// Workers is the query-execution worker count: each expansion round's
	// support-vector query set and the noise list's pending core tests are
	// submitted as one batch fanned across this many goroutines. <= 0
	// selects GOMAXPROCS; 1 runs fully sequentially. Results are merged in
	// query-index order, so Labels and the θ-term Stats are identical for
	// every worker count given a fixed seed.
	Workers int

	// Context, when non-nil, allows cancelling a long run: Run returns
	// ctx.Err() with partial work discarded. Checked between seeds and
	// inside expansion rounds and noise verification (the engine checks it
	// throughout every query batch).
	Context context.Context

	// Budget bounds the run's work. Unlike an external cancellation, a
	// tripped budget returns a best-effort *partial* clustering together
	// with a *BudgetExceededError. The zero value disables every limit.
	Budget Budget
}

// ErrInvalidParams is the root of the parameter-validation taxonomy: every
// rejection of malformed Options wraps it, so callers can classify any
// up-front failure with errors.Is(err, ErrInvalidParams) and read the
// specific violation from the message.
var ErrInvalidParams = errors.New("dbsvec: invalid parameters")

func (o Options) validate() error {
	if o.Eps <= 0 {
		return fmt.Errorf("%w: eps %g must be positive", ErrInvalidParams, o.Eps)
	}
	if o.MinPts < 1 {
		return fmt.Errorf("%w: MinPts %d must be at least 1", ErrInvalidParams, o.MinPts)
	}
	if o.Nu < 0 || o.Nu > 1 {
		return fmt.Errorf("%w: nu %g must be in (0,1] (0 selects the adaptive ν*)", ErrInvalidParams, o.Nu)
	}
	if o.MemoryFactor < 0 || (o.MemoryFactor > 0 && o.MemoryFactor <= 1) {
		return fmt.Errorf("%w: memory factor λ %g must exceed 1", ErrInvalidParams, o.MemoryFactor)
	}
	if o.Workers < 0 {
		return fmt.Errorf("%w: Workers %d must be non-negative (0 selects GOMAXPROCS)", ErrInvalidParams, o.Workers)
	}
	if o.MaxSVDDTarget < 0 {
		return fmt.Errorf("%w: MaxSVDDTarget %d must be non-negative", ErrInvalidParams, o.MaxSVDDTarget)
	}
	if o.LearnThreshold < -1 {
		return fmt.Errorf("%w: LearnThreshold %d must be -1 (disabled), 0 (default) or positive", ErrInvalidParams, o.LearnThreshold)
	}
	return o.Budget.validate()
}

// Stats reports the work a run performed. The paper's cost model
// (Section III-D) is O(θn) with θ = s + 1 + k + m + MinPts·l; the fields
// expose every term so tests and the experiment harness can validate that
// θ ≪ n.
type Stats struct {
	// Seeds is s: the number of sub-cluster seeds.
	Seeds int
	// SupportVectors is k: total support vectors across all SVDD trainings.
	SupportVectors int64
	// Merges is m: the number of sub-cluster merges.
	Merges int
	// NoiseList is l: the number of potential noise points.
	NoiseList int
	// RangeQueries counts full ε-range queries (neighbor materialization).
	RangeQueries int64
	// RangeCounts counts core-point tests answered with counting queries.
	RangeCounts int64
	// SVDDTrainings is the number of SVDD models fitted.
	SVDDTrainings int
	// SVDDIterations is the total number of SMO pair updates.
	SVDDIterations int64
	// Degraded counts the sub-clusters whose SVDD training failed in a
	// recoverable way (non-convergence, degenerate kernel width, all-SV
	// blowup) and that were therefore completed by the exact range-query
	// expansion fallback instead of support-vector expansion. A degraded
	// sub-cluster loses the θ speedup but keeps DBSCAN-exact semantics.
	Degraded int
	// WarmRestarts counts the training rounds seeded from a prior run's
	// snapshots (Options.WarmModels) rather than cold or from the in-run
	// previous round.
	WarmRestarts int
	// RetainedModels is the number of per-sub-cluster SVDD snapshots the run
	// retained (RunRetained only; 0 for Run).
	RetainedModels int
	// IndexBuild is the wall-clock spent constructing the range-query index
	// before clustering starts. Not part of the θ model; determinism
	// comparisons must ignore it.
	IndexBuild time.Duration
	// Phases is the per-phase wall-clock breakdown (Init = seed sweep,
	// Expand = SV expansion, Verify = noise verification). Not part of the
	// θ model; determinism comparisons must ignore it.
	Phases engine.PhaseTimes
	// SVDD is the per-stage wall-clock of all SVDD trainings (kernel fill /
	// SMO solve / radius extraction), a sub-breakdown of Phases.Expand.
	// Like Phases it varies run to run.
	SVDD engine.SVDDTimes
}

// Theta returns the paper's θ = s + 1 + k + m + MinPts·l for a run over a
// dataset clustered with the given MinPts.
func (s Stats) Theta(minPts int) float64 {
	return float64(s.Seeds) + 1 + float64(s.SupportVectors) + float64(s.Merges) + float64(minPts*s.NoiseList)
}

// ErrNilDataset is returned for a nil dataset.
var ErrNilDataset = errors.New("dbsvec: nil dataset")

const (
	defaultMemoryFactor  = 1.5
	defaultLearnThresh   = 3
	defaultMaxSVDDTarget = 1024
)

// coreState is tri-state knowledge about the core-point property.
type coreState int8

const (
	coreUnknown coreState = iota
	coreYes
	coreNo
)

type runner struct {
	ds   *vec.Dataset
	opts Options
	// ctx is the run's working context: the caller's Context with the
	// Budget.MaxDuration deadline layered on top. parent is the caller's
	// context alone — checking it apart from ctx is what distinguishes an
	// external cancellation (hard error, partial work discarded) from a
	// budget trip (partial result returned).
	ctx    context.Context
	parent context.Context
	start  time.Time
	// budgetErr records the first Budget limit that fired (see trip).
	budgetErr *BudgetExceededError
	idx       index.Index
	// eng fans each round's SV query set and the noise list's core tests
	// across the worker pool; the sequential seed queries go through idx.
	eng    *engine.Engine
	labels []int32
	// clusterSet maps raw cluster ids (one per seed) to merged sets.
	clusterSet *unionfind.DSU
	core       []coreState
	stats      Stats
	rng        *rand.Rand
	// counters holds the SVDD participation counts t_i of the current
	// sub-cluster's target points (reset per expansion).
	counters map[int32]int

	// Potential noise points and the ε-neighborhoods captured when they
	// failed the seed test (reused by noise verification).
	noiseIDs   []int32
	noiseHoods [][]int32

	buf []int32
	// cand is the per-round batch of support vectors awaiting queries.
	cand []int32

	// retain enables model retention (RunRetained): every training round
	// appends a snapshot to retained under its raw seed cluster id, and
	// finalizeRetained rewrites the ids into the final dense label space.
	retain   bool
	retained []RetainedModel
	// warmPrior is Options.WarmModels flattened to point id → multiplier;
	// the first training round of each sub-cluster seeds the solver from it.
	warmPrior map[int32]float64
}

// Run executes DBSVEC over ds and returns the clustering, run statistics,
// and an error for invalid inputs.
//
// Failure contract:
//   - invalid Options wrap ErrInvalidParams; a nil dataset is ErrNilDataset;
//   - an external cancellation (Options.Context) returns the context's error
//     with partial work discarded;
//   - a tripped Options.Budget returns a *valid partial clustering* plus a
//     *BudgetExceededError — every label is a cluster id or Noise;
//   - a panic anywhere in the run (worker goroutines included) is contained
//     and returned as a *fault.WorkerPanicError, never a crash.
func Run(ds *vec.Dataset, opts Options) (*cluster.Result, Stats, error) {
	res, _, st, err := run(ds, opts, false)
	return res, st, err
}

// RunRetained is Run plus model retention: every successfully trained
// per-sub-cluster SVDD model (and every degradation event) is snapshotted
// and returned as a RetainedModel list whose Cluster fields reference the
// final compacted cluster ids of the result. The retained set is what the
// top-level Model artifact serializes and what a later run's
// Options.WarmModels consumes.
func RunRetained(ds *vec.Dataset, opts Options) (*cluster.Result, []RetainedModel, Stats, error) {
	return run(ds, opts, true)
}

func run(ds *vec.Dataset, opts Options, retain bool) (res *cluster.Result, retained []RetainedModel, st Stats, err error) {
	var r *runner
	defer func() {
		if v := recover(); v != nil {
			res, retained, err = nil, nil, fault.AsWorkerPanic(v)
			if r != nil {
				st = r.stats
			}
		}
	}()
	if ds == nil {
		return nil, nil, Stats{}, ErrNilDataset
	}
	if err := opts.validate(); err != nil {
		return nil, nil, Stats{}, err
	}
	if opts.MemoryFactor == 0 {
		opts.MemoryFactor = defaultMemoryFactor
	}
	if opts.LearnThreshold == 0 {
		opts.LearnThreshold = defaultLearnThresh
	}
	if opts.MaxSVDDTarget == 0 {
		opts.MaxSVDDTarget = defaultMaxSVDDTarget
	}
	buildCtx := opts.IndexBuilderCtx
	if buildCtx == nil {
		build := opts.IndexBuilder
		if build == nil {
			build = index.BuildLinear
		}
		buildCtx = index.WithContext(build)
	}

	parent := opts.Context
	if parent == nil {
		parent = context.Background()
	}
	start := time.Now()
	ctx := parent
	if opts.Budget.MaxDuration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(parent, start.Add(opts.Budget.MaxDuration))
		defer cancel()
	}

	n := ds.Len()
	r = &runner{
		ds:         ds,
		opts:       opts,
		ctx:        ctx,
		parent:     parent,
		start:      start,
		labels:     make([]int32, n),
		clusterSet: unionfind.New(0),
		core:       make([]coreState, n),
		rng:        rand.New(rand.NewSource(opts.Seed)),
		retain:     retain,
	}
	if !opts.DisableWarmStart && len(opts.WarmModels) > 0 {
		r.warmPrior = priorAlphas(opts.WarmModels)
	}
	for i := range r.labels {
		r.labels[i] = cluster.Unclassified
	}

	buildStart := time.Now()
	idx, buildErr := buildCtx(ctx, ds)
	r.stats.IndexBuild = time.Since(buildStart)
	if buildErr != nil {
		if perr := parent.Err(); perr != nil {
			return nil, nil, r.stats, perr
		}
		if opts.Budget.MaxDuration > 0 && ctx.Err() != nil {
			// The duration budget expired during index construction:
			// nothing was clustered, so the best-effort partial result is
			// "everything noise".
			_ = r.trip("duration")
			for i := range r.labels {
				r.labels[i] = cluster.Noise
			}
			return (&cluster.Result{Labels: r.labels}).Compact(), nil, r.stats, r.budgetErr
		}
		return nil, nil, r.stats, buildErr
	}
	r.idx = idx
	r.eng = engine.New(ds, idx, opts.Eps, opts.Workers)

	if n == 0 {
		return &cluster.Result{Labels: r.labels}, nil, r.stats, nil
	}

	// Initialization sweep (Algorithm 2). Seed queries are inherently
	// sequential (each depends on the labels the previous expansion wrote);
	// the expansions they trigger run their rounds on the engine.
	var runErr error
	sweep := engine.StartPhase()
	for i := 0; i < n; i++ {
		if i%256 == 0 {
			if err := r.checkpoint(); err != nil {
				runErr = err
				break
			}
		}
		if r.labels[i] != cluster.Unclassified {
			continue
		}
		hood := r.rangeQuery(int32(i))
		if len(hood) < opts.MinPts {
			r.core[i] = coreNo
			r.labels[i] = cluster.Noise
			r.noiseIDs = append(r.noiseIDs, int32(i))
			r.noiseHoods = append(r.noiseHoods, append([]int32(nil), hood...))
			continue
		}
		r.core[i] = coreYes
		cid := r.clusterSet.Add()
		r.stats.Seeds++
		r.labels[i] = cid
		newClu := make([]int32, 0, len(hood))
		newClu = append(newClu, int32(i))
		for _, j := range hood {
			if j == int32(i) {
				continue
			}
			switch r.labels[j] {
			case cluster.Unclassified, cluster.Noise:
				r.labels[j] = cid
				newClu = append(newClu, j)
			default:
				r.maybeMerge(j, cid)
			}
		}
		expand := engine.StartPhase()
		expandErr := r.svExpandCluster(newClu, cid)
		expand.Stop(&r.stats.Phases.Expand)
		if expandErr != nil {
			runErr = expandErr
			break
		}
	}
	sweep.Stop(&r.stats.Phases.Init)
	r.stats.Phases.Init -= r.stats.Phases.Expand // sweep time minus nested expansions
	if runErr != nil && !errors.Is(runErr, errBudget) {
		return nil, nil, r.stats, runErr
	}

	r.stats.NoiseList = len(r.noiseIDs)
	if runErr == nil {
		verify := engine.StartPhase()
		verifyErr := r.noiseVerification()
		verify.Stop(&r.stats.Phases.Verify)
		if verifyErr != nil {
			if !errors.Is(verifyErr, errBudget) {
				return nil, nil, r.stats, verifyErr
			}
			runErr = verifyErr
		}
	}

	// Canonicalize merged cluster ids into dense labels. Compact maps every
	// negative label — including points a tripped budget left Unclassified —
	// to Noise, so a partial result satisfies the same labeling invariants
	// as a complete one. The retained entries are remapped against the
	// canonicalized labels BEFORE Compact rewrites them in place.
	for i, l := range r.labels {
		if l >= 0 {
			r.labels[i] = r.clusterSet.Find(l)
		}
	}
	retained = r.finalizeRetained(r.labels)
	r.stats.RetainedModels = len(retained)
	res = (&cluster.Result{Labels: r.labels}).Compact()
	if runErr != nil {
		return res, retained, r.stats, r.budgetErr
	}
	return res, retained, r.stats, nil
}

// checkpoint is the per-round budget and cancellation gate. External
// cancellation wins over any budget limit; a fired limit is recorded once
// via trip and unwound with the errBudget sentinel.
func (r *runner) checkpoint() error {
	if err := r.parent.Err(); err != nil {
		return err
	}
	if fault.Error(fault.DeadlineFire) != nil {
		return r.trip("duration")
	}
	b := r.opts.Budget
	if !b.enabled() {
		return nil
	}
	if b.MaxDuration > 0 && r.ctx.Err() != nil {
		return r.trip("duration")
	}
	if b.MaxSVDDRounds > 0 && r.stats.SVDDTrainings >= b.MaxSVDDRounds {
		return r.trip("svdd-rounds")
	}
	if b.MaxRangeQueries > 0 && r.stats.RangeQueries+r.stats.RangeCounts >= b.MaxRangeQueries {
		return r.trip("range-queries")
	}
	return nil
}

// trip records the first budget limit that fired and returns the errBudget
// sentinel that unwinds the run to its partial-result finalization.
func (r *runner) trip(limit string) error {
	if r.budgetErr == nil {
		r.budgetErr = &BudgetExceededError{
			Limit:        limit,
			Elapsed:      time.Since(r.start),
			SVDDRounds:   r.stats.SVDDTrainings,
			RangeQueries: r.stats.RangeQueries + r.stats.RangeCounts,
		}
	}
	return errBudget
}

// queryErr classifies an error that surfaced from a query batch or an SVDD
// solve: an external cancellation is returned as the caller's context error,
// a deadline raced by the duration budget becomes a budget trip, anything
// else passes through unchanged.
func (r *runner) queryErr(err error) error {
	if err == nil {
		return nil
	}
	if perr := r.parent.Err(); perr != nil {
		return perr
	}
	if r.opts.Budget.MaxDuration > 0 && errors.Is(err, context.DeadlineExceeded) {
		return r.trip("duration")
	}
	return err
}

// rangeQuery materializes the ε-neighborhood of point id (shared buffer).
func (r *runner) rangeQuery(id int32) []int32 {
	r.stats.RangeQueries++
	r.buf = r.idx.RangeQuery(r.ds.Point(int(id)), r.opts.Eps, r.buf[:0])
	return r.buf
}

// isCore answers the core-point test with caching; counting queries stop at
// MinPts.
func (r *runner) isCore(id int32) bool {
	switch r.core[id] {
	case coreYes:
		return true
	case coreNo:
		return false
	}
	r.stats.RangeCounts++
	ok := r.idx.RangeCount(r.ds.Point(int(id)), r.opts.Eps, r.opts.MinPts) >= r.opts.MinPts
	if ok {
		r.core[id] = coreYes
	} else {
		r.core[id] = coreNo
	}
	return ok
}

// maybeMerge unites the cluster owning point j with cid when j is a core
// point (Lemma 3). Non-core overlap points stay where they are.
func (r *runner) maybeMerge(j, cid int32) {
	owner := r.labels[j]
	if owner < 0 || r.clusterSet.Same(owner, cid) {
		return
	}
	if r.isCore(j) {
		r.clusterSet.Union(owner, cid)
		r.stats.Merges++
	}
}

// target tracks one SVDD target point and its participation counter t_i.
type target struct {
	id    int32
	times int
}

// svExpandCluster is Algorithm 3, iteratively: train SVDD on the target
// set, range-query the core support vectors (as one engine batch per
// round), absorb their neighborhoods, and repeat until the sub-cluster
// stops growing. Returns the context's error when the run is cancelled
// mid-round.
func (r *runner) svExpandCluster(initial []int32, cid int32) error {
	targets := make([]target, 0, len(initial))
	r.counters = make(map[int32]int, len(initial))
	for _, id := range initial {
		targets = append(targets, target{id: id})
		r.counters[id] = 0
	}

	// prev carries the previous round's model for warm-starting; Section
	// IV-B1's incremental learning keeps consecutive target sets mostly
	// overlapping, so the previous multipliers start the solver near the
	// new optimum.
	var prev *svdd.Model
	for len(targets) > 0 {
		if err := r.checkpoint(); err != nil {
			return err
		}
		ids := r.sampleTargets(targets)
		model, err := r.trainSVDD(ids, prev)
		if model != nil {
			r.stats.SVDDTrainings++
			r.stats.SVDDIterations += int64(model.Iterations)
		}
		if err != nil {
			switch {
			case errors.Is(err, svdd.ErrNotConverged),
				errors.Is(err, svdd.ErrDegenerateSigma),
				errors.Is(err, svdd.ErrAllSupportVectors):
				// Graceful degradation: the SVDD model for THIS sub-cluster
				// is unusable (or unreliable), so finish the sub-cluster with
				// exact range-query expansion from its current target set.
				// Other sub-clusters keep the support-vector fast path. The
				// event is retained (with the best-effort model when one
				// exists) so saved artifacts record which boundaries are
				// trustworthy.
				r.stats.Degraded++
				r.retainModel(cid, model, true)
				frontier := make([]int32, len(targets))
				for i, tg := range targets {
					frontier[i] = tg.id
				}
				return r.exactExpand(frontier, cid)
			case errors.Is(err, svdd.ErrEmptyTarget):
				return nil
			default:
				return r.queryErr(err)
			}
		}
		prev = model
		r.retainModel(cid, model, false)
		budget := r.svBudget(len(ids))
		svs := model.TopSupportVectors(budget)
		r.stats.SupportVectors += int64(len(svs))

		fresh, err := r.expandFrom(svs, cid, nil)
		if err != nil {
			return err
		}
		if len(fresh) == 0 {
			// Stall escalation: the ν budget may have trimmed exactly the
			// support vector that would have advanced the frontier (e.g. a
			// thin bridge). Retry once with the solver's full SV set before
			// declaring the sub-cluster closed — this happens at most once
			// per sub-cluster lifetime stall, so the amortized cost is
			// negligible while it removes most budget-induced splits.
			rest := model.TopSupportVectors(0)
			if len(rest) > len(svs) {
				r.stats.SupportVectors += int64(len(rest) - len(svs))
				fresh, err = r.expandFrom(rest, cid, svs)
				if err != nil {
					return err
				}
			}
			if len(fresh) == 0 {
				return nil
			}
		}
		targets = r.nextTargets(targets, fresh)
	}
	return nil
}

// expandFrom submits the round's core support vectors as one batch of
// ε-range queries and absorbs their neighborhoods into cluster cid,
// returning the newly labeled points. Support vectors present in skip are
// not re-queried.
//
// The batch is race-free and worker-count-invariant by construction: the
// query set is fixed before the batch (processing one support vector never
// flips the core state of another one in the same round, because support
// vectors belong to the expanding cluster while in-round core updates only
// touch points of *other* clusters), the queries themselves are pure reads,
// and the absorb/merge pass below consumes the results sequentially in
// query-index order — so labels and stats match the sequential run bit for
// bit.
func (r *runner) expandFrom(svs []int32, cid int32, skip []int32) ([]int32, error) {
	var skipSet map[int32]bool
	if len(skip) > 0 {
		skipSet = make(map[int32]bool, len(skip))
		for _, s := range skip {
			skipSet[s] = true
		}
	}
	cand := r.cand[:0]
	for _, sv := range svs {
		if skipSet[sv] || r.core[sv] == coreNo {
			continue
		}
		cand = append(cand, sv)
	}
	r.cand = cand
	if len(cand) == 0 {
		return nil, nil
	}
	hoods, err := r.eng.Neighborhoods(r.ctx, cand)
	if err != nil {
		return nil, r.queryErr(err)
	}
	r.stats.RangeQueries += int64(len(cand))

	var fresh []int32
	for qi, sv := range cand {
		hood := hoods[qi]
		if len(hood) < r.opts.MinPts {
			r.core[sv] = coreNo
			continue
		}
		r.core[sv] = coreYes
		for _, p := range hood {
			switch r.labels[p] {
			case cluster.Unclassified, cluster.Noise:
				r.labels[p] = cid
				fresh = append(fresh, p)
			default:
				r.maybeMerge(p, cid)
			}
		}
	}
	return fresh, nil
}

// exactExpand is the degradation fallback: classic DBSCAN frontier
// expansion over the sub-cluster, one ε-range query per member instead of
// per core support vector. It produces exactly the density-reachable set of
// the frontier (Lemma 1 semantics without the SV shortcut), so a degraded
// sub-cluster differs from the SV-expanded one only where the SVDD budget
// would have split a thin bridge — never by mislabeling.
func (r *runner) exactExpand(frontier []int32, cid int32) error {
	for len(frontier) > 0 {
		if err := r.checkpoint(); err != nil {
			return err
		}
		cand := make([]int32, 0, len(frontier))
		for _, id := range frontier {
			if r.core[id] != coreNo {
				cand = append(cand, id)
			}
		}
		if len(cand) == 0 {
			return nil
		}
		hoods, err := r.eng.Neighborhoods(r.ctx, cand)
		if err != nil {
			return r.queryErr(err)
		}
		r.stats.RangeQueries += int64(len(cand))
		var fresh []int32
		for qi, id := range cand {
			hood := hoods[qi]
			if len(hood) < r.opts.MinPts {
				r.core[id] = coreNo
				continue
			}
			r.core[id] = coreYes
			for _, p := range hood {
				switch r.labels[p] {
				case cluster.Unclassified, cluster.Noise:
					r.labels[p] = cid
					fresh = append(fresh, p)
				default:
					r.maybeMerge(p, cid)
				}
			}
		}
		frontier = fresh
	}
	return nil
}

// nextTargets applies incremental learning (Section IV-B1): bump every
// participation counter, drop points beyond the threshold T, then append
// the freshly absorbed points with t = 0.
func (r *runner) nextTargets(targets []target, fresh []int32) []target {
	out := targets[:0]
	for _, tg := range targets {
		tg.times++
		if r.opts.LearnThreshold >= 0 && tg.times > r.opts.LearnThreshold {
			delete(r.counters, tg.id)
			continue
		}
		r.counters[tg.id] = tg.times
		out = append(out, tg)
	}
	for _, id := range fresh {
		out = append(out, target{id: id})
		r.counters[id] = 0
	}
	return out
}

// sampleTargets extracts the id list for SVDD training, deterministically
// subsampling when the target set exceeds the cap.
func (r *runner) sampleTargets(targets []target) []int32 {
	capN := r.opts.MaxSVDDTarget
	if len(targets) <= capN {
		ids := make([]int32, len(targets))
		for i, tg := range targets {
			ids[i] = tg.id
		}
		return ids
	}
	ids := make([]int32, 0, capN)
	stride := float64(len(targets)) / float64(capN)
	for i := 0; i < capN; i++ {
		ids = append(ids, targets[int(float64(i)*stride)].id)
	}
	return ids
}

// svBudget returns the number of support vectors whose ε-neighborhoods are
// queried per training round: the ν budget of Section IV-C (ν bounds the
// SV fraction from below, and the paper controls the query cost — and hence
// the accuracy/efficiency trade-off of Figure 8 — through it), with 50%
// slack because solver solutions carry slightly more mass than the bound.
func (r *runner) svBudget(targetSize int) int {
	if r.opts.NuMin {
		// DBSVEC_min deliberately runs at the single-vector minimum.
		return 1
	}
	nu := r.effectiveNu(targetSize)
	k := int(math.Ceil(1.5 * nu * float64(targetSize)))
	// Floor the budget so low-dimensional runs (where ν*·ñ is tiny) still
	// advance the frontier by several neighborhoods per round.
	if k < 6 {
		k = 6
	}
	return k
}

// effectiveNu resolves the ν actually used for a target of the given size.
func (r *runner) effectiveNu(targetSize int) float64 {
	switch {
	case r.opts.NuMin:
		return 1 / float64(targetSize)
	case r.opts.Nu > 0:
		return r.opts.Nu
	default:
		return svdd.NuStar(r.ds.Dim(), r.opts.MinPts, targetSize)
	}
}

// trainSVDD fits the (weighted) SVDD model for the current target ids,
// warm-starting from the previous round's model when one is supplied and
// warm starts are enabled.
func (r *runner) trainSVDD(ids []int32, prev *svdd.Model) (*svdd.Model, error) {
	cfg := svdd.Config{
		Dim:     r.ds.Dim(),
		MinPts:  r.opts.MinPts,
		Workers: r.eng.Workers(),
		Context: r.ctx,
	}
	if !r.opts.DisableWarmStart {
		if prev != nil {
			cfg.WarmAlpha = warmAlphas(ids, prev)
		} else if r.warmPrior != nil {
			// Round one of a sub-cluster: restart from the saved multipliers
			// of a previous run's snapshots (Options.WarmModels).
			if w := warmFromPrior(ids, r.warmPrior); w != nil {
				cfg.WarmAlpha = w
				r.stats.WarmRestarts++
			}
		}
	}
	switch {
	case r.opts.NuMin:
		cfg.Nu = 1 / float64(len(ids))
	case r.opts.Nu > 0:
		cfg.Nu = r.opts.Nu
	}

	if r.opts.RandomKernel {
		cfg.Sigma = r.randomSigma(ids)
	}

	if !r.opts.DisableWeights {
		// Adaptive penalty weights (Eq. 7): the SVDD solver computes them
		// from its own kernel matrix; we supply each point's participation
		// count t_i. Fresh points (t = 0) far from the kernel centroid get
		// the smallest weights and the loosest multiplier caps — exactly
		// the points the paper wants selected as support vectors.
		times := make([]int, len(ids))
		for i, id := range ids {
			times[i] = r.counters[id]
		}
		cfg.Times = times
		cfg.Lambda = r.opts.MemoryFactor
	}
	model, err := svdd.Train(r.ds, ids, cfg)
	if model != nil {
		r.stats.SVDD.Add(model.Times)
	}
	return model, err
}

// warmAlphas maps the previous model's multipliers onto the new target ids
// (0 for points that were not in the previous round). The solver clamps and
// renormalizes, so dropped mass from departed points is redistributed there.
func warmAlphas(ids []int32, prev *svdd.Model) []float64 {
	prevAlpha := make(map[int32]float64, len(prev.IDs))
	for i, id := range prev.IDs {
		if a := prev.Alpha[i]; a > 0 {
			prevAlpha[id] = a
		}
	}
	warm := make([]float64, len(ids))
	any := false
	for i, id := range ids {
		if a, ok := prevAlpha[id]; ok {
			warm[i] = a
			any = true
		}
	}
	if !any {
		return nil // disjoint target: a cold start is the better seed
	}
	return warm
}

// randomSigma draws σ uniformly from [min,max] pairwise distance of the
// target (the DBSVEC\OK ablation). Pairwise extremes are estimated from a
// bounded sample to stay subquadratic.
func (r *runner) randomSigma(ids []int32) float64 {
	sample := ids
	if len(sample) > 256 {
		sample = sample[:256]
	}
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < len(sample); i++ {
		for j := i + 1; j < len(sample); j++ {
			d := r.ds.Dist(int(sample[i]), int(sample[j]))
			if d < minD && d > 0 {
				minD = d
			}
			if d > maxD {
				maxD = d
			}
		}
	}
	if math.IsInf(minD, 1) || maxD <= 0 {
		return 1e-9
	}
	return minD + r.rng.Float64()*(maxD-minD)
}
