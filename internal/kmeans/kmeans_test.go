package kmeans

import (
	"math"
	"testing"

	"dbsvec/internal/data"
	"dbsvec/internal/vec"
)

func TestValidation(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {1, 1}})
	if _, _, _, err := Run(nil, Params{K: 1}); err == nil {
		t.Error("want error for nil dataset")
	}
	if _, _, _, err := Run(ds, Params{K: 0}); err == nil {
		t.Error("want error for k=0")
	}
	if _, _, _, err := Run(ds, Params{K: 3}); err == nil {
		t.Error("want error for k > n")
	}
}

func TestWellSeparatedBlobs(t *testing.T) {
	ds := data.Blobs(600, 2, 3, 1, 100, 0, 1)
	res, centers, st, err := Run(ds, Params{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 3 || len(centers) != 3 {
		t.Fatalf("clusters=%d centers=%d", res.Clusters, len(centers))
	}
	if st.Iterations == 0 {
		t.Error("no iterations recorded")
	}
	// Every cluster non-empty and labels valid.
	sizes := res.Sizes()
	for c, s := range sizes {
		if s == 0 {
			t.Errorf("cluster %c empty", c)
		}
	}
	// Inertia should be small relative to a single-cluster solution.
	one, _, st1, err := Run(ds, Params{K: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	_ = one
	if st.Inertia >= st1.Inertia {
		t.Errorf("k=3 inertia %v not better than k=1 %v", st.Inertia, st1.Inertia)
	}
}

func TestKEqualsN(t *testing.T) {
	ds, _ := vec.FromRows([][]float64{{0, 0}, {10, 10}, {20, 20}})
	res, _, st, err := Run(ds, Params{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 3 {
		t.Fatalf("clusters = %d", res.Clusters)
	}
	if st.Inertia > 1e-9 {
		t.Errorf("inertia %v should be ~0 when k=n", st.Inertia)
	}
}

func TestDuplicatePoints(t *testing.T) {
	rows := make([][]float64, 40)
	for i := range rows {
		rows[i] = []float64{float64(i % 2), 0} // only two distinct locations
	}
	ds, _ := vec.FromRows(rows)
	res, centers, _, err := Run(ds, Params{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters != 2 {
		t.Fatalf("clusters = %d", res.Clusters)
	}
	// Centers must converge onto the two distinct locations.
	found0, found1 := false, false
	for _, c := range centers {
		if math.Abs(c[0]) < 1e-6 {
			found0 = true
		}
		if math.Abs(c[0]-1) < 1e-6 {
			found1 = true
		}
	}
	if !found0 || !found1 {
		t.Errorf("centers did not converge to the two locations: %v", centers)
	}
}

func TestDeterminism(t *testing.T) {
	ds := data.Blobs(300, 3, 4, 2, 100, 0, 4)
	a, _, _, err := Run(ds, Params{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, _, err := Run(ds, Params{K: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed should give same labels")
		}
	}
}
