// Package kmeans implements Lloyd's k-means (Hartigan & Wong lineage) with
// k-means++ seeding. It is the partitioning-based baseline of the paper's
// Table IV clustering-validation experiment.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dbsvec/internal/cluster"
	"dbsvec/internal/vec"
)

// Params configures a run.
type Params struct {
	// K is the number of clusters. Must be >= 1 and <= n.
	K int
	// MaxIter caps Lloyd iterations; 0 selects 100.
	MaxIter int
	// Tol stops iteration when total center movement falls below it;
	// 0 selects 1e-6.
	Tol float64
	// Seed drives k-means++ seeding.
	Seed int64
}

// Stats reports work performed.
type Stats struct {
	// Iterations is the number of Lloyd rounds executed.
	Iterations int
	// Inertia is the final sum of squared distances to assigned centers.
	Inertia float64
}

// Errors.
var (
	ErrNilDataset = errors.New("kmeans: nil dataset")
	ErrBadK       = errors.New("kmeans: k out of range")
)

// Run clusters ds into K groups and returns labels, the final centers, and
// statistics.
func Run(ds *vec.Dataset, p Params) (*cluster.Result, [][]float64, Stats, error) {
	var st Stats
	if ds == nil {
		return nil, nil, st, ErrNilDataset
	}
	n, d := ds.Len(), ds.Dim()
	if p.K < 1 || p.K > n {
		return nil, nil, st, fmt.Errorf("%w: k=%d n=%d", ErrBadK, p.K, n)
	}
	maxIter := p.MaxIter
	if maxIter == 0 {
		maxIter = 100
	}
	tol := p.Tol
	if tol == 0 {
		tol = 1e-6
	}
	rng := rand.New(rand.NewSource(p.Seed))

	centers := seedPlusPlus(ds, p.K, rng)
	labels := make([]int32, n)
	counts := make([]int, p.K)
	sums := make([]float64, p.K*d)

	for iter := 0; iter < maxIter; iter++ {
		st.Iterations = iter + 1
		// Assignment step.
		st.Inertia = 0
		for i := 0; i < n; i++ {
			pt := ds.Point(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < p.K; c++ {
				if dd := vec.SqDist(pt, centers[c]); dd < bestD {
					best, bestD = c, dd
				}
			}
			labels[i] = int32(best)
			st.Inertia += bestD
		}
		// Update step.
		for c := range counts {
			counts[c] = 0
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := 0; i < n; i++ {
			c := int(labels[i])
			counts[c]++
			pt := ds.Point(i)
			for j := 0; j < d; j++ {
				sums[c*d+j] += pt[j]
			}
		}
		var moved float64
		for c := 0; c < p.K; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at a random point.
				copy(centers[c], ds.Point(rng.Intn(n)))
				moved += tol + 1
				continue
			}
			inv := 1 / float64(counts[c])
			for j := 0; j < d; j++ {
				nv := sums[c*d+j] * inv
				moved += math.Abs(nv - centers[c][j])
				centers[c][j] = nv
			}
		}
		if moved < tol {
			break
		}
	}
	res := &cluster.Result{Labels: labels, Clusters: p.K}
	return res, centers, st, nil
}

// seedPlusPlus picks K initial centers with k-means++ (D² sampling).
func seedPlusPlus(ds *vec.Dataset, k int, rng *rand.Rand) [][]float64 {
	n, d := ds.Len(), ds.Dim()
	centers := make([][]float64, 0, k)
	first := make([]float64, d)
	copy(first, ds.Point(rng.Intn(n)))
	centers = append(centers, first)

	dist2 := make([]float64, n)
	for i := 0; i < n; i++ {
		dist2[i] = vec.SqDist(ds.Point(i), first)
	}
	for len(centers) < k {
		var total float64
		for _, dd := range dist2 {
			total += dd
		}
		var idx int
		if total <= 0 {
			idx = rng.Intn(n) // all remaining points coincide with centers
		} else {
			target := rng.Float64() * total
			acc := 0.0
			idx = n - 1
			for i, dd := range dist2 {
				acc += dd
				if acc >= target {
					idx = i
					break
				}
			}
		}
		c := make([]float64, d)
		copy(c, ds.Point(idx))
		centers = append(centers, c)
		for i := 0; i < n; i++ {
			if dd := vec.SqDist(ds.Point(i), c); dd < dist2[i] {
				dist2[i] = dd
			}
		}
	}
	return centers
}
